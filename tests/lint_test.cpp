// Tests for the lrt-lint static analyzer: the diagnostic engine, every
// rule pass against seeded fixture programs, severity configuration, the
// output renderers (text / JSON / SARIF 2.1.0), and the acceptance gate
// that every shipped examples/htl program lints without errors.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.h"
#include "lint/sarif.h"

namespace lrt::lint {
namespace {

bool has_rule(const LintResult& result, std::string_view rule_id) {
  return std::any_of(result.diagnostics.begin(), result.diagnostics.end(),
                     [rule_id](const Diagnostic& diag) {
                       return diag.rule_id == rule_id;
                     });
}

const Diagnostic& first_of(const LintResult& result,
                           std::string_view rule_id) {
  const auto it =
      std::find_if(result.diagnostics.begin(), result.diagnostics.end(),
                   [rule_id](const Diagnostic& diag) {
                     return diag.rule_id == rule_id;
                   });
  EXPECT_NE(it, result.diagnostics.end()) << "no diagnostic " << rule_id;
  return *it;
}

LintResult lint_or_die(std::string_view source,
                       const LintOptions& options = {}) {
  auto result = lint_source(source, options);
  EXPECT_TRUE(result.ok()) << result.status().to_string();
  return std::move(*result);
}

// ---------------------------------------------------------------------------
// DiagnosticEngine.

TEST(Diagnostic, SeverityRoundTrip) {
  EXPECT_EQ(to_string(Severity::kError), "error");
  EXPECT_EQ(parse_severity("warning"), Severity::kWarning);
  EXPECT_EQ(parse_severity("off"), Severity::kOff);
  EXPECT_FALSE(parse_severity("fatal").has_value());
}

TEST(Diagnostic, ToStringIncludesLocationSeverityAndRule) {
  Diagnostic diag;
  diag.rule_id = "LRT001";
  diag.severity = Severity::kError;
  diag.location = {"a.htl", 3, 7};
  diag.message = "boom";
  EXPECT_EQ(diag.to_string(), "a.htl:3:7: error: boom [LRT001]");
}

TEST(Diagnostic, EngineAppliesSeverityOverride) {
  DiagnosticEngine engine;
  ASSERT_TRUE(engine.configure_flag("LRT007=error").ok());
  Diagnostic diag;
  diag.rule_id = "LRT007";
  diag.severity = Severity::kWarning;
  EXPECT_TRUE(engine.report(std::move(diag)));
  ASSERT_EQ(engine.diagnostics().size(), 1u);
  EXPECT_EQ(engine.diagnostics()[0].severity, Severity::kError);
  EXPECT_EQ(engine.error_count(), 1);
}

TEST(Diagnostic, EngineDropsDisabledRule) {
  DiagnosticEngine engine;
  engine.configure("LRT006", {.enabled = false});
  Diagnostic diag;
  diag.rule_id = "LRT006";
  EXPECT_FALSE(engine.report(std::move(diag)));
  EXPECT_TRUE(engine.diagnostics().empty());
}

TEST(Diagnostic, EngineRejectsMalformedFlag) {
  DiagnosticEngine engine;
  EXPECT_FALSE(engine.configure_flag("LRT001").ok());
  EXPECT_FALSE(engine.configure_flag("LRT001=loud").ok());
}

TEST(Diagnostic, SortByLocationOrdersFileLineColumn) {
  DiagnosticEngine engine;
  Diagnostic late;
  late.rule_id = "LRT005";
  late.location = {"a.htl", 9, 1};
  Diagnostic early;
  early.rule_id = "LRT006";
  early.location = {"a.htl", 2, 4};
  EXPECT_TRUE(engine.report(std::move(late)));
  EXPECT_TRUE(engine.report(std::move(early)));
  engine.sort_by_location();
  EXPECT_EQ(engine.diagnostics()[0].location.line, 2);
  EXPECT_EQ(engine.diagnostics()[1].location.line, 9);
}

TEST(Rules, CatalogFindsRulesByIdAndName) {
  ASSERT_NE(find_rule("LRT004"), nullptr);
  EXPECT_EQ(find_rule("LRT004")->name, "lrc-infeasible");
  ASSERT_NE(find_rule("race-write-write"), nullptr);
  EXPECT_EQ(find_rule("race-write-write")->id, "LRT001");
  EXPECT_EQ(find_rule("no-such-rule"), nullptr);
}

// ---------------------------------------------------------------------------
// Rule passes on fixture programs.

constexpr std::string_view kCleanProgram = R"(program clean {
  communicator raw : real period 5 init 0.0 lrc 0.5;
  communicator mid : real period 5 init 0.0 lrc 0.7;
  communicator act : real period 10 init 0.0 lrc 0.7;
  module sense {
    task t input (raw[0]) output (mid[1]) model series;
    mode main period 10 { invoke t; }
    start main;
  }
  module control {
    task u input (mid[1]) output (act[1]) model series;
    mode main period 10 { invoke u; }
    start main;
  }
  architecture {
    host h1 reliability 0.99;
    host h2 reliability 0.99;
    sensor s1 reliability 0.98;
  }
  mapping {
    map t to h1, h2;
    map u to h1;
    bind raw to s1;
  }
}
)";

TEST(Lint, CleanProgramOnlyNotes) {
  const LintResult result = lint_or_die(kCleanProgram);
  EXPECT_TRUE(result.flattened);
  EXPECT_TRUE(result.arch_checked);
  EXPECT_EQ(result.errors(), 0) << render_text(result.diagnostics);
  EXPECT_EQ(result.warnings(), 0) << render_text(result.diagnostics);
  // act is written but never read: the sole (note) finding.
  EXPECT_TRUE(has_rule(result, kRuleNeverReadOutput));
  EXPECT_TRUE(result.clean());
}

TEST(Lint, DetectsWriteRaceWithinMode) {
  const LintResult result = lint_or_die(R"(program race {
  communicator raw : real period 10 init 0.0 lrc 0.5;
  communicator c : real period 10 init 0.0 lrc 0.9;
  module m {
    task t1 input (raw[0]) output (c[1]) model series;
    task t2 input (raw[0]) output (c[1]) model series;
    mode main period 10 { invoke t1; invoke t2; }
    start main;
  }
}
)");
  const Diagnostic& diag = first_of(result, kRuleWriteRace);
  EXPECT_EQ(diag.severity, Severity::kError);
  EXPECT_NE(diag.message.find("write-write race"), std::string::npos);
  EXPECT_NE(diag.message.find("c[1]"), std::string::npos);
  EXPECT_GT(diag.location.line, 0);
  EXPECT_GT(diag.location.column, 0);
  // The frontend also rejects the program (rule 3), but LRT001 already
  // explains why: no redundant LRT000.
  EXPECT_FALSE(has_rule(result, kRuleCompileError));
  EXPECT_FALSE(result.clean());
}

TEST(Lint, DetectsCrossModuleTwoWriters) {
  const LintResult result = lint_or_die(R"(program race2 {
  communicator raw : real period 10 init 0.0 lrc 0.5;
  communicator c : real period 10 init 0.0 lrc 0.9;
  module a {
    task t1 input (raw[0]) output (c[1]) model series;
    mode main period 10 { invoke t1; }
    start main;
  }
  module b {
    task t2 input (raw[0]) output (c[2]) model series;
    mode main period 10 { invoke t2; }
    start main;
  }
}
)");
  const Diagnostic& diag = first_of(result, kRuleWriteRace);
  EXPECT_NE(diag.message.find("two writers"), std::string::npos);
  EXPECT_NE(diag.message.find("run concurrently"), std::string::npos);
}

TEST(Lint, DetectsInfeasibleLrc) {
  // SRG ceiling of out: sensor 0.9 * task on the single 0.9 host = 0.81,
  // so lrc 0.95 is unachievable under any mapping.
  const LintResult result = lint_or_die(R"(program infeasible {
  communicator raw : real period 10 init 0.0 lrc 0.5;
  communicator out : real period 10 init 0.0 lrc 0.95;
  module m {
    task t input (raw[0]) output (out[1]) model series;
    mode main period 10 { invoke t; }
    start main;
  }
  architecture {
    host h1 reliability 0.9;
    sensor s1 reliability 0.9;
  }
  mapping {
    map t to h1;
    bind raw to s1;
  }
}
)");
  ASSERT_TRUE(result.arch_checked);
  const Diagnostic& diag = first_of(result, kRuleLrcInfeasible);
  EXPECT_EQ(diag.severity, Severity::kError);
  EXPECT_NE(diag.message.find("'out'"), std::string::npos);
  EXPECT_NE(diag.message.find("0.81"), std::string::npos);
  EXPECT_FALSE(diag.fixit.empty());
  EXPECT_FALSE(result.clean());
}

TEST(Lint, FeasibleLrcUnderReplicationNotReported) {
  // One 0.9 host cannot meet lrc 0.98 but two can:
  // 1 - (1 - 0.9)^2 = 0.99 >= 0.98. The ceiling uses full replication,
  // so no finding.
  const LintResult result = lint_or_die(R"(program feasible {
  communicator raw : real period 10 init 0.0 lrc 0.5;
  communicator out : real period 10 init 0.0 lrc 0.98;
  module m {
    task t input (raw[0]) output (out[1]) model series;
    mode main period 10 { invoke t; }
    start main;
  }
  architecture {
    host h1 reliability 0.9;
    host h2 reliability 0.9;
    sensor s1 reliability 0.999;
  }
  mapping {
    map t to h1;
    bind raw to s1;
  }
}
)");
  ASSERT_TRUE(result.arch_checked);
  EXPECT_FALSE(has_rule(result, kRuleLrcInfeasible))
      << render_text(result.diagnostics);
}

TEST(Lint, DetectsMissingDefault) {
  const LintResult result = lint_or_die(R"(program nodefaults {
  communicator raw : real period 10 init 0.0 lrc 0.5;
  communicator out : real period 10 init 0.0 lrc 0.9;
  module m {
    task t input (raw[0]) output (out[1]) model parallel;
    mode main period 10 { invoke t; }
    start main;
  }
}
)");
  const Diagnostic& diag = first_of(result, kRuleMissingDefault);
  EXPECT_EQ(diag.severity, Severity::kWarning);
  EXPECT_NE(diag.message.find("parallel"), std::string::npos);
  EXPECT_NE(diag.fixit.find("defaults"), std::string::npos);
}

TEST(Lint, DetectsDeadAndNeverReadCommunicators) {
  const LintResult result = lint_or_die(R"(program dead {
  communicator unused : real period 10 init 0.0 lrc 0.5;
  communicator raw : real period 10 init 0.0 lrc 0.5;
  communicator out : real period 10 init 0.0 lrc 0.9;
  module m {
    task t input (raw[0]) output (out[1]) model series;
    mode main period 10 { invoke t; }
    start main;
  }
}
)");
  const Diagnostic& dead = first_of(result, kRuleDeadCommunicator);
  EXPECT_EQ(dead.severity, Severity::kWarning);
  EXPECT_NE(dead.message.find("'unused'"), std::string::npos);
  EXPECT_EQ(dead.location.line, 2);
  const Diagnostic& never = first_of(result, kRuleNeverReadOutput);
  EXPECT_EQ(never.severity, Severity::kNote);
  EXPECT_NE(never.message.find("'out'"), std::string::npos);
}

TEST(Lint, SwitchConditionCountsAsRead) {
  // `flag` is only consumed by a switch condition — not dead.
  const LintResult result = lint_or_die(R"(program switchread {
  communicator raw : real period 10 init 0.0 lrc 0.5;
  communicator flag : bool period 10 init false lrc 0.5;
  module m {
    task t input (raw[0]) output (flag[1]) model series;
    mode main period 10 { invoke t; switch (flag) to main; }
    start main;
  }
}
)");
  EXPECT_FALSE(has_rule(result, kRuleDeadCommunicator));
  EXPECT_FALSE(has_rule(result, kRuleNeverReadOutput));
}

TEST(Lint, DetectsPeriodMismatch) {
  const LintResult result = lint_or_die(R"(program drift {
  communicator raw : real period 7 init 0.0 lrc 0.5;
  communicator out : real period 10 init 0.0 lrc 0.9;
  module m {
    task t input (raw[0]) output (out[1]) model series;
    mode main period 10 { invoke t; }
    start main;
  }
}
)");
  const Diagnostic& diag = first_of(result, kRulePeriodMismatch);
  EXPECT_EQ(diag.severity, Severity::kError);
  EXPECT_NE(diag.message.find("does not divide"), std::string::npos);
}

TEST(Lint, DetectsInstanceBeyondModePeriod) {
  const LintResult result = lint_or_die(R"(program beyond {
  communicator raw : real period 10 init 0.0 lrc 0.5;
  communicator out : real period 10 init 0.0 lrc 0.9;
  module m {
    task t input (raw[0]) output (out[3]) model series;
    mode main period 10 { invoke t; }
    start main;
  }
}
)");
  const Diagnostic& diag = first_of(result, kRulePeriodMismatch);
  EXPECT_NE(diag.message.find("beyond the period"), std::string::npos);
}

TEST(Lint, DetectsUnreachableMode) {
  const LintResult result = lint_or_die(R"(program orphanmode {
  communicator raw : real period 10 init 0.0 lrc 0.5;
  communicator out : real period 10 init 0.0 lrc 0.9;
  module m {
    task t input (raw[0]) output (out[1]) model series;
    mode main period 10 { invoke t; }
    mode orphan period 10 { invoke t; }
    start main;
  }
}
)");
  const Diagnostic& diag = first_of(result, kRuleUnreachableMode);
  EXPECT_EQ(diag.severity, Severity::kWarning);
  EXPECT_NE(diag.message.find("'orphan'"), std::string::npos);
  EXPECT_NE(diag.message.find("'main'"), std::string::npos);
}

TEST(Lint, SwitchTargetIsReachable) {
  const LintResult result = lint_or_die(R"(program reach {
  communicator raw : real period 10 init 0.0 lrc 0.5;
  communicator flag : bool period 10 init false lrc 0.5;
  module m {
    task t input (raw[0]) output (flag[1]) model series;
    mode main period 10 { invoke t; switch (flag) to other; }
    mode other period 10 { invoke t; }
    start main;
  }
}
)");
  EXPECT_FALSE(has_rule(result, kRuleUnreachableMode));
}

TEST(Lint, DetectsDuplicateWritePort) {
  const LintResult result = lint_or_die(R"(program dup {
  communicator raw : real period 10 init 0.0 lrc 0.5;
  communicator out : real period 10 init 0.0 lrc 0.9;
  module m {
    task t input (raw[0]) output (out[1], out[1]) model series;
    mode main period 10 { invoke t; }
    start main;
  }
}
)");
  const Diagnostic& diag = first_of(result, kRuleDuplicateWritePort);
  EXPECT_EQ(diag.severity, Severity::kError);
  EXPECT_NE(diag.message.find("rule 4"), std::string::npos);
  EXPECT_FALSE(has_rule(result, kRuleCompileError));
}

TEST(Lint, ReportsUnsafeCycleAsError) {
  const LintResult result = lint_or_die(R"(program unsafe {
  communicator c : real period 10 init 0.0 lrc 0.9;
  module m {
    task t input (c[0]) output (c[1]) model series;
    mode main period 10 { invoke t; }
    start main;
  }
}
)");
  EXPECT_TRUE(has_rule(result, kRuleMemoryCycle));
  const Diagnostic& diag = first_of(result, kRuleUnsafeCycle);
  EXPECT_EQ(diag.severity, Severity::kError);
  EXPECT_NE(diag.message.find("independent"), std::string::npos);
  EXPECT_NE(diag.fixit.find("model independent"), std::string::npos);
}

TEST(Lint, SafeCycleIsOnlyAWarning) {
  const LintResult result = lint_or_die(R"(program safe {
  communicator c : real period 10 init 0.0 lrc 0.9;
  module m {
    task t input (c[0]) output (c[1]) model independent defaults (0.0);
    mode main period 10 { invoke t; }
    start main;
  }
}
)");
  EXPECT_TRUE(has_rule(result, kRuleMemoryCycle));
  EXPECT_FALSE(has_rule(result, kRuleUnsafeCycle));
  EXPECT_EQ(result.errors(), 0) << render_text(result.diagnostics);
}

TEST(Lint, ParseErrorBecomesLocatedCompileError) {
  LintOptions options;
  options.file = "bad.htl";
  const LintResult result =
      lint_or_die("program broken {\n  communicator ;\n}\n", options);
  const Diagnostic& diag = first_of(result, kRuleCompileError);
  EXPECT_EQ(diag.severity, Severity::kError);
  EXPECT_EQ(diag.location.file, "bad.htl");
  EXPECT_EQ(diag.location.line, 2);
  EXPECT_GT(diag.location.column, 0);
  EXPECT_FALSE(result.flattened);
}

// ---------------------------------------------------------------------------
// Configuration.

TEST(Lint, RuleFlagPromotesSeverity) {
  LintOptions options;
  options.rule_flags = {"missing-default=error"};
  const LintResult result = lint_or_die(R"(program promote {
  communicator raw : real period 10 init 0.0 lrc 0.5;
  communicator out : real period 10 init 0.0 lrc 0.9;
  module m {
    task t input (raw[0]) output (out[1]) model parallel;
    mode main period 10 { invoke t; }
    start main;
  }
}
)",
                                        options);
  EXPECT_EQ(first_of(result, kRuleMissingDefault).severity,
            Severity::kError);
  EXPECT_FALSE(result.clean());
}

TEST(Lint, RuleFlagSilencesRule) {
  LintOptions options;
  options.rule_flags = {"LRT006=off", "LRT007=off"};
  const LintResult result = lint_or_die(R"(program silence {
  communicator raw : real period 10 init 0.0 lrc 0.5;
  communicator out : real period 10 init 0.0 lrc 0.9;
  module m {
    task t input (raw[0]) output (out[1]) model parallel;
    mode main period 10 { invoke t; }
    start main;
  }
}
)",
                                        options);
  EXPECT_FALSE(has_rule(result, kRuleNeverReadOutput));
  EXPECT_FALSE(has_rule(result, kRuleMissingDefault));
}

TEST(Lint, UnknownRuleFlagIsAnError) {
  LintOptions options;
  options.rule_flags = {"LRT999=off"};
  const auto result = lint_source(kCleanProgram, options);
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Renderers.

TEST(Render, TextIncludesLocationSeverityRuleAndFixit) {
  const LintResult result = lint_or_die(R"(program textual {
  communicator raw : real period 10 init 0.0 lrc 0.5;
  communicator out : real period 10 init 0.0 lrc 0.9;
  module m {
    task t input (raw[0]) output (out[1]) model parallel;
    mode main period 10 { invoke t; }
    start main;
  }
}
)");
  const std::string text = render_text(result.diagnostics);
  EXPECT_NE(text.find("warning:"), std::string::npos);
  EXPECT_NE(text.find("[LRT007]"), std::string::npos);
  EXPECT_NE(text.find("fix-it:"), std::string::npos);
  EXPECT_NE(text.find(":5:"), std::string::npos);  // task t's line
}

TEST(Render, JsonCarriesCounts) {
  const LintResult result = lint_or_die(kCleanProgram);
  const std::string json = to_json(result.diagnostics);
  EXPECT_NE(json.find("\"diagnostics\""), std::string::npos);
  EXPECT_NE(json.find("\"counts\""), std::string::npos);
  EXPECT_NE(json.find("\"errors\":0"), std::string::npos);
}

TEST(Render, SarifDocumentStructure) {
  LintOptions options;
  options.file = "race.htl";
  const LintResult result = lint_or_die(R"(program race {
  communicator raw : real period 10 init 0.0 lrc 0.5;
  communicator c : real period 10 init 0.0 lrc 0.9;
  module m {
    task t1 input (raw[0]) output (c[1]) model series;
    task t2 input (raw[0]) output (c[1]) model series;
    mode main period 10 { invoke t1; invoke t2; }
    start main;
  }
}
)",
                                        options);
  const std::string sarif = to_sarif(result.diagnostics);
  EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("sarif-schema-2.1.0.json"), std::string::npos);
  EXPECT_NE(sarif.find("\"name\":\"lrt_lint\""), std::string::npos);
  // The driver advertises the full rule catalog...
  for (const RuleInfo& rule : rule_catalog()) {
    EXPECT_NE(sarif.find("\"id\":\"" + std::string(rule.id) + "\""),
              std::string::npos);
  }
  // ...and the race result carries its physical location.
  EXPECT_NE(sarif.find("\"ruleId\":\"LRT001\""), std::string::npos);
  EXPECT_NE(sarif.find("\"level\":\"error\""), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\":\"race.htl\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startColumn\""), std::string::npos);
}

TEST(Render, SarifOmitsRegionForWholeFileFindings) {
  std::vector<Diagnostic> diags(1);
  diags[0].rule_id = "LRT000";
  diags[0].severity = Severity::kError;
  diags[0].location = {"x.htl", 0, 0};
  diags[0].message = "whole-file finding";
  const std::string sarif = to_sarif(diags);
  EXPECT_EQ(sarif.find("\"region\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// The CI gate condition: shipped example programs lint clean.

TEST(Lint, ShippedExamplesHaveNoErrors) {
  const std::filesystem::path dir = LRT_EXAMPLES_HTL_DIR;
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  int linted = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".htl") continue;
    std::ifstream file(entry.path());
    ASSERT_TRUE(file.good()) << entry.path();
    std::ostringstream buffer;
    buffer << file.rdbuf();
    LintOptions options;
    options.file = entry.path().filename().string();
    const LintResult result = lint_or_die(buffer.str(), options);
    EXPECT_EQ(result.errors(), 0)
        << entry.path() << ":\n" << render_text(result.diagnostics);
    EXPECT_TRUE(result.flattened) << entry.path();
    ++linted;
  }
  EXPECT_GE(linted, 5);
}

}  // namespace
}  // namespace lrt::lint
