// Tests for the lrt-lint static analyzer: the diagnostic engine, every
// rule pass against seeded fixture programs, severity configuration, the
// output renderers (text / JSON / SARIF 2.1.0), and the acceptance gate
// that every shipped examples/htl program lints without errors.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/fixit.h"
#include "lint/lint.h"
#include "lint/sarif.h"

namespace lrt::lint {
namespace {

bool has_rule(const LintResult& result, std::string_view rule_id) {
  return std::any_of(result.diagnostics.begin(), result.diagnostics.end(),
                     [rule_id](const Diagnostic& diag) {
                       return diag.rule_id == rule_id;
                     });
}

const Diagnostic& first_of(const LintResult& result,
                           std::string_view rule_id) {
  const auto it =
      std::find_if(result.diagnostics.begin(), result.diagnostics.end(),
                   [rule_id](const Diagnostic& diag) {
                     return diag.rule_id == rule_id;
                   });
  EXPECT_NE(it, result.diagnostics.end()) << "no diagnostic " << rule_id;
  return *it;
}

LintResult lint_or_die(std::string_view source,
                       const LintOptions& options = {}) {
  auto result = lint_source(source, options);
  EXPECT_TRUE(result.ok()) << result.status().to_string();
  return std::move(*result);
}

// ---------------------------------------------------------------------------
// DiagnosticEngine.

TEST(Diagnostic, SeverityRoundTrip) {
  EXPECT_EQ(to_string(Severity::kError), "error");
  EXPECT_EQ(parse_severity("warning"), Severity::kWarning);
  EXPECT_EQ(parse_severity("off"), Severity::kOff);
  EXPECT_FALSE(parse_severity("fatal").has_value());
}

TEST(Diagnostic, ToStringIncludesLocationSeverityAndRule) {
  Diagnostic diag;
  diag.rule_id = "LRT001";
  diag.severity = Severity::kError;
  diag.location = {"a.htl", 3, 7};
  diag.message = "boom";
  EXPECT_EQ(diag.to_string(), "a.htl:3:7: error: boom [LRT001]");
}

TEST(Diagnostic, EngineAppliesSeverityOverride) {
  DiagnosticEngine engine;
  ASSERT_TRUE(engine.configure_flag("LRT007=error").ok());
  Diagnostic diag;
  diag.rule_id = "LRT007";
  diag.severity = Severity::kWarning;
  EXPECT_TRUE(engine.report(std::move(diag)));
  ASSERT_EQ(engine.diagnostics().size(), 1u);
  EXPECT_EQ(engine.diagnostics()[0].severity, Severity::kError);
  EXPECT_EQ(engine.error_count(), 1);
}

TEST(Diagnostic, EngineDropsDisabledRule) {
  DiagnosticEngine engine;
  engine.configure("LRT006", {.enabled = false});
  Diagnostic diag;
  diag.rule_id = "LRT006";
  EXPECT_FALSE(engine.report(std::move(diag)));
  EXPECT_TRUE(engine.diagnostics().empty());
}

TEST(Diagnostic, EngineRejectsMalformedFlag) {
  DiagnosticEngine engine;
  EXPECT_FALSE(engine.configure_flag("LRT001").ok());
  EXPECT_FALSE(engine.configure_flag("LRT001=loud").ok());
}

TEST(Diagnostic, SortByLocationOrdersFileLineColumn) {
  DiagnosticEngine engine;
  Diagnostic late;
  late.rule_id = "LRT005";
  late.location = {"a.htl", 9, 1};
  Diagnostic early;
  early.rule_id = "LRT006";
  early.location = {"a.htl", 2, 4};
  EXPECT_TRUE(engine.report(std::move(late)));
  EXPECT_TRUE(engine.report(std::move(early)));
  engine.sort_by_location();
  EXPECT_EQ(engine.diagnostics()[0].location.line, 2);
  EXPECT_EQ(engine.diagnostics()[1].location.line, 9);
}

TEST(Rules, CatalogFindsRulesByIdAndName) {
  ASSERT_NE(find_rule("LRT004"), nullptr);
  EXPECT_EQ(find_rule("LRT004")->name, "lrc-infeasible");
  ASSERT_NE(find_rule("race-write-write"), nullptr);
  EXPECT_EQ(find_rule("race-write-write")->id, "LRT001");
  EXPECT_EQ(find_rule("no-such-rule"), nullptr);
}

// ---------------------------------------------------------------------------
// Rule passes on fixture programs.

constexpr std::string_view kCleanProgram = R"(program clean {
  communicator raw : real period 5 init 0.0 lrc 0.5;
  communicator mid : real period 5 init 0.0 lrc 0.7;
  communicator act : real period 10 init 0.0 lrc 0.7;
  module sense {
    task t input (raw[0]) output (mid[1]) model series;
    mode main period 10 { invoke t; }
    start main;
  }
  module control {
    task u input (mid[1]) output (act[1]) model series;
    mode main period 10 { invoke u; }
    start main;
  }
  architecture {
    host h1 reliability 0.99;
    host h2 reliability 0.99;
    sensor s1 reliability 0.98;
  }
  mapping {
    map t to h1, h2;
    map u to h1;
    bind raw to s1;
  }
}
)";

TEST(Lint, CleanProgramOnlyNotes) {
  const LintResult result = lint_or_die(kCleanProgram);
  EXPECT_TRUE(result.flattened);
  EXPECT_TRUE(result.arch_checked);
  EXPECT_EQ(result.errors(), 0) << render_text(result.diagnostics);
  EXPECT_EQ(result.warnings(), 0) << render_text(result.diagnostics);
  // act is written but never read: the sole (note) finding.
  EXPECT_TRUE(has_rule(result, kRuleNeverReadOutput));
  EXPECT_TRUE(result.clean());
}

TEST(Lint, DetectsWriteRaceWithinMode) {
  const LintResult result = lint_or_die(R"(program race {
  communicator raw : real period 10 init 0.0 lrc 0.5;
  communicator c : real period 10 init 0.0 lrc 0.9;
  module m {
    task t1 input (raw[0]) output (c[1]) model series;
    task t2 input (raw[0]) output (c[1]) model series;
    mode main period 10 { invoke t1; invoke t2; }
    start main;
  }
}
)");
  const Diagnostic& diag = first_of(result, kRuleWriteRace);
  EXPECT_EQ(diag.severity, Severity::kError);
  EXPECT_NE(diag.message.find("write-write race"), std::string::npos);
  EXPECT_NE(diag.message.find("c[1]"), std::string::npos);
  EXPECT_GT(diag.location.line, 0);
  EXPECT_GT(diag.location.column, 0);
  // The frontend also rejects the program (rule 3), but LRT001 already
  // explains why: no redundant LRT000.
  EXPECT_FALSE(has_rule(result, kRuleCompileError));
  EXPECT_FALSE(result.clean());
}

TEST(Lint, DetectsCrossModuleTwoWriters) {
  const LintResult result = lint_or_die(R"(program race2 {
  communicator raw : real period 10 init 0.0 lrc 0.5;
  communicator c : real period 10 init 0.0 lrc 0.9;
  module a {
    task t1 input (raw[0]) output (c[1]) model series;
    mode main period 10 { invoke t1; }
    start main;
  }
  module b {
    task t2 input (raw[0]) output (c[2]) model series;
    mode main period 10 { invoke t2; }
    start main;
  }
}
)");
  const Diagnostic& diag = first_of(result, kRuleWriteRace);
  EXPECT_NE(diag.message.find("two writers"), std::string::npos);
  EXPECT_NE(diag.message.find("run concurrently"), std::string::npos);
}

TEST(Lint, DetectsInfeasibleLrc) {
  // SRG ceiling of out: sensor 0.9 * task on the single 0.9 host = 0.81,
  // so lrc 0.95 is unachievable under any mapping.
  const LintResult result = lint_or_die(R"(program infeasible {
  communicator raw : real period 10 init 0.0 lrc 0.5;
  communicator out : real period 10 init 0.0 lrc 0.95;
  module m {
    task t input (raw[0]) output (out[1]) model series;
    mode main period 10 { invoke t; }
    start main;
  }
  architecture {
    host h1 reliability 0.9;
    sensor s1 reliability 0.9;
  }
  mapping {
    map t to h1;
    bind raw to s1;
  }
}
)");
  ASSERT_TRUE(result.arch_checked);
  const Diagnostic& diag = first_of(result, kRuleLrcInfeasible);
  EXPECT_EQ(diag.severity, Severity::kError);
  EXPECT_NE(diag.message.find("'out'"), std::string::npos);
  EXPECT_NE(diag.message.find("0.81"), std::string::npos);
  EXPECT_FALSE(diag.fixit.empty());
  EXPECT_FALSE(result.clean());
}

TEST(Lint, FeasibleLrcUnderReplicationNotReported) {
  // One 0.9 host cannot meet lrc 0.98 but two can:
  // 1 - (1 - 0.9)^2 = 0.99 >= 0.98. The ceiling uses full replication,
  // so no finding.
  const LintResult result = lint_or_die(R"(program feasible {
  communicator raw : real period 10 init 0.0 lrc 0.5;
  communicator out : real period 10 init 0.0 lrc 0.98;
  module m {
    task t input (raw[0]) output (out[1]) model series;
    mode main period 10 { invoke t; }
    start main;
  }
  architecture {
    host h1 reliability 0.9;
    host h2 reliability 0.9;
    sensor s1 reliability 0.999;
  }
  mapping {
    map t to h1;
    bind raw to s1;
  }
}
)");
  ASSERT_TRUE(result.arch_checked);
  EXPECT_FALSE(has_rule(result, kRuleLrcInfeasible))
      << render_text(result.diagnostics);
}

TEST(Lint, DetectsMissingDefault) {
  const LintResult result = lint_or_die(R"(program nodefaults {
  communicator raw : real period 10 init 0.0 lrc 0.5;
  communicator out : real period 10 init 0.0 lrc 0.9;
  module m {
    task t input (raw[0]) output (out[1]) model parallel;
    mode main period 10 { invoke t; }
    start main;
  }
}
)");
  const Diagnostic& diag = first_of(result, kRuleMissingDefault);
  EXPECT_EQ(diag.severity, Severity::kWarning);
  EXPECT_NE(diag.message.find("parallel"), std::string::npos);
  EXPECT_NE(diag.fixit.find("defaults"), std::string::npos);
}

TEST(Lint, DetectsDeadAndNeverReadCommunicators) {
  const LintResult result = lint_or_die(R"(program dead {
  communicator unused : real period 10 init 0.0 lrc 0.5;
  communicator raw : real period 10 init 0.0 lrc 0.5;
  communicator out : real period 10 init 0.0 lrc 0.9;
  module m {
    task t input (raw[0]) output (out[1]) model series;
    mode main period 10 { invoke t; }
    start main;
  }
}
)");
  const Diagnostic& dead = first_of(result, kRuleDeadCommunicator);
  EXPECT_EQ(dead.severity, Severity::kWarning);
  EXPECT_NE(dead.message.find("'unused'"), std::string::npos);
  EXPECT_EQ(dead.location.line, 2);
  const Diagnostic& never = first_of(result, kRuleNeverReadOutput);
  EXPECT_EQ(never.severity, Severity::kNote);
  EXPECT_NE(never.message.find("'out'"), std::string::npos);
}

TEST(Lint, SwitchConditionCountsAsRead) {
  // `flag` is only consumed by a switch condition — not dead.
  const LintResult result = lint_or_die(R"(program switchread {
  communicator raw : real period 10 init 0.0 lrc 0.5;
  communicator flag : bool period 10 init false lrc 0.5;
  module m {
    task t input (raw[0]) output (flag[1]) model series;
    mode main period 10 { invoke t; switch (flag) to main; }
    start main;
  }
}
)");
  EXPECT_FALSE(has_rule(result, kRuleDeadCommunicator));
  EXPECT_FALSE(has_rule(result, kRuleNeverReadOutput));
}

TEST(Lint, DetectsPeriodMismatch) {
  const LintResult result = lint_or_die(R"(program drift {
  communicator raw : real period 7 init 0.0 lrc 0.5;
  communicator out : real period 10 init 0.0 lrc 0.9;
  module m {
    task t input (raw[0]) output (out[1]) model series;
    mode main period 10 { invoke t; }
    start main;
  }
}
)");
  const Diagnostic& diag = first_of(result, kRulePeriodMismatch);
  EXPECT_EQ(diag.severity, Severity::kError);
  EXPECT_NE(diag.message.find("does not divide"), std::string::npos);
}

TEST(Lint, DetectsInstanceBeyondModePeriod) {
  const LintResult result = lint_or_die(R"(program beyond {
  communicator raw : real period 10 init 0.0 lrc 0.5;
  communicator out : real period 10 init 0.0 lrc 0.9;
  module m {
    task t input (raw[0]) output (out[3]) model series;
    mode main period 10 { invoke t; }
    start main;
  }
}
)");
  const Diagnostic& diag = first_of(result, kRulePeriodMismatch);
  EXPECT_NE(diag.message.find("beyond the period"), std::string::npos);
}

TEST(Lint, DetectsUnreachableMode) {
  const LintResult result = lint_or_die(R"(program orphanmode {
  communicator raw : real period 10 init 0.0 lrc 0.5;
  communicator out : real period 10 init 0.0 lrc 0.9;
  module m {
    task t input (raw[0]) output (out[1]) model series;
    mode main period 10 { invoke t; }
    mode orphan period 10 { invoke t; }
    start main;
  }
}
)");
  const Diagnostic& diag = first_of(result, kRuleUnreachableMode);
  EXPECT_EQ(diag.severity, Severity::kWarning);
  EXPECT_NE(diag.message.find("'orphan'"), std::string::npos);
  EXPECT_NE(diag.message.find("'main'"), std::string::npos);
}

TEST(Lint, SwitchTargetIsReachable) {
  const LintResult result = lint_or_die(R"(program reach {
  communicator raw : real period 10 init 0.0 lrc 0.5;
  communicator flag : bool period 10 init false lrc 0.5;
  module m {
    task t input (raw[0]) output (flag[1]) model series;
    mode main period 10 { invoke t; switch (flag) to other; }
    mode other period 10 { invoke t; }
    start main;
  }
}
)");
  EXPECT_FALSE(has_rule(result, kRuleUnreachableMode));
}

TEST(Lint, DetectsDuplicateWritePort) {
  const LintResult result = lint_or_die(R"(program dup {
  communicator raw : real period 10 init 0.0 lrc 0.5;
  communicator out : real period 10 init 0.0 lrc 0.9;
  module m {
    task t input (raw[0]) output (out[1], out[1]) model series;
    mode main period 10 { invoke t; }
    start main;
  }
}
)");
  const Diagnostic& diag = first_of(result, kRuleDuplicateWritePort);
  EXPECT_EQ(diag.severity, Severity::kError);
  EXPECT_NE(diag.message.find("rule 4"), std::string::npos);
  EXPECT_FALSE(has_rule(result, kRuleCompileError));
}

TEST(Lint, ReportsUnsafeCycleAsError) {
  const LintResult result = lint_or_die(R"(program unsafe {
  communicator c : real period 10 init 0.0 lrc 0.9;
  module m {
    task t input (c[0]) output (c[1]) model series;
    mode main period 10 { invoke t; }
    start main;
  }
}
)");
  EXPECT_TRUE(has_rule(result, kRuleMemoryCycle));
  const Diagnostic& diag = first_of(result, kRuleUnsafeCycle);
  EXPECT_EQ(diag.severity, Severity::kError);
  EXPECT_NE(diag.message.find("independent"), std::string::npos);
  EXPECT_NE(diag.fixit.find("model independent"), std::string::npos);
}

TEST(Lint, SafeCycleIsOnlyAWarning) {
  const LintResult result = lint_or_die(R"(program safe {
  communicator c : real period 10 init 0.0 lrc 0.9;
  module m {
    task t input (c[0]) output (c[1]) model independent defaults (0.0);
    mode main period 10 { invoke t; }
    start main;
  }
}
)");
  EXPECT_TRUE(has_rule(result, kRuleMemoryCycle));
  EXPECT_FALSE(has_rule(result, kRuleUnsafeCycle));
  EXPECT_EQ(result.errors(), 0) << render_text(result.diagnostics);
}

TEST(Lint, ParseErrorBecomesLocatedCompileError) {
  LintOptions options;
  options.file = "bad.htl";
  const LintResult result =
      lint_or_die("program broken {\n  communicator ;\n}\n", options);
  const Diagnostic& diag = first_of(result, kRuleCompileError);
  EXPECT_EQ(diag.severity, Severity::kError);
  EXPECT_EQ(diag.location.file, "bad.htl");
  EXPECT_EQ(diag.location.line, 2);
  EXPECT_GT(diag.location.column, 0);
  EXPECT_FALSE(result.flattened);
}

// ---------------------------------------------------------------------------
// Configuration.

TEST(Lint, RuleFlagPromotesSeverity) {
  LintOptions options;
  options.rule_flags = {"missing-default=error"};
  const LintResult result = lint_or_die(R"(program promote {
  communicator raw : real period 10 init 0.0 lrc 0.5;
  communicator out : real period 10 init 0.0 lrc 0.9;
  module m {
    task t input (raw[0]) output (out[1]) model parallel;
    mode main period 10 { invoke t; }
    start main;
  }
}
)",
                                        options);
  EXPECT_EQ(first_of(result, kRuleMissingDefault).severity,
            Severity::kError);
  EXPECT_FALSE(result.clean());
}

TEST(Lint, RuleFlagSilencesRule) {
  LintOptions options;
  options.rule_flags = {"LRT006=off", "LRT007=off"};
  const LintResult result = lint_or_die(R"(program silence {
  communicator raw : real period 10 init 0.0 lrc 0.5;
  communicator out : real period 10 init 0.0 lrc 0.9;
  module m {
    task t input (raw[0]) output (out[1]) model parallel;
    mode main period 10 { invoke t; }
    start main;
  }
}
)",
                                        options);
  EXPECT_FALSE(has_rule(result, kRuleNeverReadOutput));
  EXPECT_FALSE(has_rule(result, kRuleMissingDefault));
}

TEST(Lint, UnknownRuleFlagIsAnError) {
  LintOptions options;
  options.rule_flags = {"LRT999=off"};
  const auto result = lint_source(kCleanProgram, options);
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Renderers.

TEST(Render, TextIncludesLocationSeverityRuleAndFixit) {
  const LintResult result = lint_or_die(R"(program textual {
  communicator raw : real period 10 init 0.0 lrc 0.5;
  communicator out : real period 10 init 0.0 lrc 0.9;
  module m {
    task t input (raw[0]) output (out[1]) model parallel;
    mode main period 10 { invoke t; }
    start main;
  }
}
)");
  const std::string text = render_text(result.diagnostics);
  EXPECT_NE(text.find("warning:"), std::string::npos);
  EXPECT_NE(text.find("[LRT007]"), std::string::npos);
  EXPECT_NE(text.find("fix-it:"), std::string::npos);
  EXPECT_NE(text.find(":5:"), std::string::npos);  // task t's line
}

TEST(Render, JsonCarriesCounts) {
  const LintResult result = lint_or_die(kCleanProgram);
  const std::string json = to_json(result.diagnostics);
  EXPECT_NE(json.find("\"diagnostics\""), std::string::npos);
  EXPECT_NE(json.find("\"counts\""), std::string::npos);
  EXPECT_NE(json.find("\"errors\":0"), std::string::npos);
}

TEST(Render, SarifDocumentStructure) {
  LintOptions options;
  options.file = "race.htl";
  const LintResult result = lint_or_die(R"(program race {
  communicator raw : real period 10 init 0.0 lrc 0.5;
  communicator c : real period 10 init 0.0 lrc 0.9;
  module m {
    task t1 input (raw[0]) output (c[1]) model series;
    task t2 input (raw[0]) output (c[1]) model series;
    mode main period 10 { invoke t1; invoke t2; }
    start main;
  }
}
)",
                                        options);
  const std::string sarif = to_sarif(result.diagnostics);
  EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("sarif-schema-2.1.0.json"), std::string::npos);
  EXPECT_NE(sarif.find("\"name\":\"lrt_lint\""), std::string::npos);
  // The driver advertises the full rule catalog...
  for (const RuleInfo& rule : rule_catalog()) {
    EXPECT_NE(sarif.find("\"id\":\"" + std::string(rule.id) + "\""),
              std::string::npos);
  }
  // ...and the race result carries its physical location.
  EXPECT_NE(sarif.find("\"ruleId\":\"LRT001\""), std::string::npos);
  EXPECT_NE(sarif.find("\"level\":\"error\""), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\":\"race.htl\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startColumn\""), std::string::npos);
}

TEST(Render, SarifOmitsRegionForWholeFileFindings) {
  std::vector<Diagnostic> diags(1);
  diags[0].rule_id = "LRT000";
  diags[0].severity = Severity::kError;
  diags[0].location = {"x.htl", 0, 0};
  diags[0].message = "whole-file finding";
  const std::string sarif = to_sarif(diags);
  EXPECT_EQ(sarif.find("\"region\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Cross-mode rules over the mode-product supergraph (LRT011-LRT019).

// A race that only exists once module `a` switches into mode `hot` —
// reachable, because task `quiet` writes the guard.
constexpr std::string_view kReachableCrossRace = R"(program xrace {
  communicator raw : real period 10 init 0.0 lrc 0.5;
  communicator go : bool period 10 init false lrc 0.5;
  communicator c : real period 10 init 0.0 lrc 0.5;
  module a {
    task quiet input (raw[0]) output (go[1]) model series;
    task loud input (raw[0]) output (c[1]) model series;
    mode safe period 10 { invoke quiet; switch (go) to hot; }
    mode hot period 10 { invoke loud; }
    start safe;
  }
  module b {
    task writer input (raw[0]) output (c[1]) model series;
    mode main period 10 { invoke writer; }
    start main;
  }
}
)";

// The same shape, but nothing ever writes the guard: the racy mode is
// unreachable in the product, so only the per-mode LRT001 approximation
// fires.
constexpr std::string_view kUnreachableCrossRace = R"(program deadrace {
  communicator raw : real period 10 init 0.0 lrc 0.5;
  communicator go : bool period 10 init false lrc 0.5;
  communicator x : real period 10 init 0.0 lrc 0.5;
  communicator c : real period 10 init 0.0 lrc 0.5;
  module a {
    task quiet input (raw[0]) output (x[1]) model series;
    task loud input (raw[0]) output (c[1]) model series;
    mode safe period 10 { invoke quiet; switch (go) to hot; }
    mode hot period 10 { invoke loud; }
    start safe;
  }
  module b {
    task writer input (raw[0]) output (c[1]) model series;
    mode main period 10 { invoke writer; }
    start main;
  }
}
)";

TEST(ProductLint, CrossModeRaceFiresInReachableCombination) {
  const LintResult result = lint_or_die(kReachableCrossRace);
  const Diagnostic& diag = first_of(result, kRuleCrossModeRace);
  EXPECT_EQ(diag.severity, Severity::kError);
  EXPECT_NE(diag.message.find("mode combination"), std::string::npos);
  EXPECT_NE(diag.message.find("hot"), std::string::npos);
  ASSERT_FALSE(diag.related.empty());
  EXPECT_GT(diag.related[0].location.line, 0);
  EXPECT_GT(result.product_nodes, 1);
}

TEST(ProductLint, CrossModeRaceSilentBehindDeadGuard) {
  // LRT001's module-level approximation still fires (it assumes every
  // invoked pair can co-execute); the product rule knows better. Turn
  // LRT001 off to observe LRT011's precision in isolation.
  LintOptions options;
  options.rule_flags = {"LRT001=off"};
  const LintResult result = lint_or_die(kUnreachableCrossRace, options);
  EXPECT_FALSE(has_rule(result, kRuleCrossModeRace))
      << render_text(result.diagnostics);
  // The dead guard and the product-unreachable mode are the findings.
  EXPECT_TRUE(has_rule(result, kRuleDeadSwitch));
}

TEST(ProductLint, ReadBeforeAnyWriteOnSomePath) {
  const LintResult result = lint_or_die(R"(program earlyread {
  communicator raw : real period 10 init 0.0 lrc 0.5;
  communicator go : bool period 10 init false lrc 0.5;
  communicator data : real period 10 init 0.0 lrc 0.5;
  communicator out : real period 10 init 0.0 lrc 0.5;
  module producer {
    task idle input (raw[0]) output (go[1]) model series;
    task produce input (raw[0]) output (data[1]) model series;
    mode warmup period 10 { invoke idle; switch (go) to run; }
    mode run period 10 { invoke produce; }
    start warmup;
  }
  module consumer {
    task consume input (data[0]) output (out[1]) model series;
    mode main period 10 { invoke consume; }
    start main;
  }
}
)");
  const Diagnostic& diag = first_of(result, kRuleReadNeverWritten);
  EXPECT_EQ(diag.severity, Severity::kWarning);
  EXPECT_NE(diag.message.find("'data'"), std::string::npos);
  EXPECT_NE(diag.message.find("init"), std::string::npos);
  // Only `data` fires: `raw` has no writer anywhere (a sensor input),
  // and `go` is written in the very node that reads it.
  EXPECT_EQ(std::count_if(result.diagnostics.begin(),
                          result.diagnostics.end(),
                          [](const Diagnostic& d) {
                            return d.rule_id == kRuleReadNeverWritten;
                          }),
            1);
}

TEST(ProductLint, ReadCoLocatedWithWriteIsInitIdiom) {
  // `c[0]` is read at the start of the period and written later in the
  // same mode — the init-read idiom, not a finding.
  const LintResult result = lint_or_die(R"(program initidiom {
  communicator raw : real period 10 init 0.0 lrc 0.5;
  communicator c : real period 5 init 0.0 lrc 0.5;
  module m {
    task t input (raw[0], c[0]) output (c[2])
      model independent defaults (0.0, 0.0);
    mode main period 10 { invoke t; }
    start main;
  }
}
)");
  EXPECT_FALSE(has_rule(result, kRuleReadNeverWritten))
      << render_text(result.diagnostics);
}

TEST(ProductLint, DeadWriteOverwrittenOnEveryPath) {
  const LintResult result = lint_or_die(R"(program wasted {
  communicator raw : real period 10 init 0.0 lrc 0.5;
  communicator g1 : bool period 10 init false lrc 0.5;
  communicator g2 : bool period 10 init false lrc 0.5;
  communicator c : real period 10 init 0.0 lrc 0.5;
  communicator out : real period 10 init 0.0 lrc 0.5;
  module m {
    task w input (raw[0]) output (c[1], g1[1]) model series;
    task x input (raw[0]) output (c[1], g2[1]) model series;
    task r input (c[0]) output (out[1]) model series;
    mode first period 10 { invoke w; switch (g1) to second; }
    mode second period 10 { invoke x; switch (g2) to third; }
    mode third period 10 { invoke r; }
    start first;
  }
}
)");
  const Diagnostic& diag = first_of(result, kRuleDeadWrite);
  EXPECT_EQ(diag.severity, Severity::kWarning);
  // w's write in `first` is overwritten by x before r can read it...
  EXPECT_NE(diag.message.find("'w'"), std::string::npos);
  EXPECT_NE(diag.message.find("'c[1]'"), std::string::npos);
  // ...but x's write reaches the reader, and a terminal mode without
  // switches is not a livelock.
  EXPECT_EQ(std::count_if(result.diagnostics.begin(),
                          result.diagnostics.end(),
                          [](const Diagnostic& d) {
                            return d.rule_id == kRuleDeadWrite &&
                                   d.message.find("'x'") !=
                                       std::string::npos;
                          }),
            0);
  EXPECT_FALSE(has_rule(result, kRuleSwitchLivelock));
}

TEST(ProductLint, WriteReachingReaderIsNotDead) {
  const LintResult result = lint_or_die(R"(program useful {
  communicator raw : real period 10 init 0.0 lrc 0.5;
  communicator c : real period 10 init 0.0 lrc 0.5;
  communicator out : real period 10 init 0.0 lrc 0.5;
  module m {
    task w input (raw[0]) output (c[1]) model series;
    task r input (c[1]) output (out[1]) model series;
    mode main period 10 { invoke w; invoke r; }
    start main;
  }
}
)");
  EXPECT_FALSE(has_rule(result, kRuleDeadWrite))
      << render_text(result.diagnostics);
}

TEST(ProductLint, DeadSwitchCarriesDeletionEdit) {
  const LintResult result = lint_or_die(kUnreachableCrossRace);
  const Diagnostic& diag = first_of(result, kRuleDeadSwitch);
  EXPECT_EQ(diag.severity, Severity::kWarning);
  EXPECT_NE(diag.message.find("can never fire"), std::string::npos);
  ASSERT_FALSE(diag.edits.empty());
  EXPECT_EQ(diag.edits[0].kind, FixEdit::Kind::kDeleteStatement);
  // Mode `hot` is switch-reachable for LRT009 but product-unreachable.
  EXPECT_FALSE(has_rule(result, kRuleUnreachableMode));
  EXPECT_EQ(std::count_if(result.diagnostics.begin(),
                          result.diagnostics.end(),
                          [](const Diagnostic& d) {
                            return d.rule_id == kRuleDeadSwitch &&
                                   d.message.find("mode product") !=
                                       std::string::npos;
                          }),
            1);
}

TEST(ProductLint, ModeCombinationLrcInfeasible) {
  // In mode `lo` the output chain runs from the good sensor (ceiling
  // ~0.989 >= 0.8). Switching to `hi` re-sources it from the bad sensor:
  // ceiling ~0.4995 < 0.8, so the constraint is only violated there.
  const LintResult result = lint_or_die(R"(program modeinfeasible {
  communicator raw : real period 10 init 0.0 lrc 0.5;
  communicator raw2 : real period 10 init 0.0 lrc 0.3;
  communicator go : bool period 10 init false lrc 0.5;
  communicator out : real period 10 init 0.0 lrc 0.8;
  module m {
    task tl input (raw[0]) output (out[1], go[1]) model series;
    task th input (raw2[0]) output (out[1]) model series;
    mode lo period 10 { invoke tl; switch (go) to hi; }
    mode hi period 10 { invoke th; }
    start lo;
  }
  architecture {
    host h1 reliability 0.999;
    sensor good reliability 0.99;
    sensor bad reliability 0.5;
  }
  mapping {
    map tl to h1;
    map th to h1;
    bind raw to good;
    bind raw2 to bad;
  }
}
)");
  ASSERT_TRUE(result.arch_checked);
  // Feasible at start: no LRT004.
  EXPECT_FALSE(has_rule(result, kRuleLrcInfeasible))
      << render_text(result.diagnostics);
  const Diagnostic& diag = first_of(result, kRuleModeLrcInfeasible);
  EXPECT_EQ(diag.severity, Severity::kError);
  EXPECT_NE(diag.message.find("'out'"), std::string::npos);
  EXPECT_NE(diag.message.find("hi"), std::string::npos);
  ASSERT_FALSE(diag.related.empty());  // the switch path that gets there
  EXPECT_FALSE(result.clean());
}

TEST(ProductLint, SwitchLivelockWhenEveryGuardIsDead) {
  const LintResult result = lint_or_die(R"(program livelock {
  communicator raw : real period 10 init 0.0 lrc 0.5;
  communicator stuck : bool period 10 init false lrc 0.5;
  communicator out : real period 10 init 0.0 lrc 0.5;
  module m {
    task t input (raw[0]) output (out[1]) model series;
    mode main period 10 { invoke t; switch (stuck) to other; }
    mode other period 10 { invoke t; }
    start main;
  }
}
)");
  const Diagnostic& diag = first_of(result, kRuleSwitchLivelock);
  EXPECT_EQ(diag.severity, Severity::kWarning);
  EXPECT_NE(diag.message.find("'main'"), std::string::npos);
  EXPECT_NE(diag.message.find("never be left"), std::string::npos);
  EXPECT_TRUE(has_rule(result, kRuleDeadSwitch));
}

TEST(ProductLint, PeriodDisharmonyAcrossModules) {
  const LintResult result = lint_or_die(R"(program disharmony {
  communicator raw : real period 10 init 0.0 lrc 0.5;
  communicator go : bool period 10 init false lrc 0.5;
  communicator c : real period 10 init 0.0 lrc 0.5;
  communicator d : real period 10 init 0.0 lrc 0.5;
  module a {
    task t1 input (raw[0]) output (go[1]) model series;
    task t2 input (raw[0]) output (c[1]) model series;
    mode fast period 10 { invoke t1; switch (go) to slow; }
    mode slow period 20 { invoke t2; }
    start fast;
  }
  module b {
    task t3 input (raw[0]) output (d[1]) model series;
    mode main period 10 { invoke t3; }
    start main;
  }
}
)");
  const Diagnostic& diag = first_of(result, kRulePeriodDisharmony);
  EXPECT_EQ(diag.severity, Severity::kError);
  EXPECT_NE(diag.message.find("periods disagree"), std::string::npos);
  EXPECT_NE(diag.message.find("a.slow=20"), std::string::npos);
  EXPECT_NE(diag.message.find("b.main=10"), std::string::npos);
  EXPECT_GT(diag.location.line, 0);  // anchored at the switch
  EXPECT_FALSE(result.clean());
}

TEST(ProductLint, RefinementPrecheckTotalityAndInjectivity) {
  const LintResult result = lint_or_die(R"(program child refines parent {
  communicator raw : real period 10 init 0.0 lrc 0.5;
  communicator o1 : real period 10 init 0.0 lrc 0.5;
  communicator o2 : real period 10 init 0.0 lrc 0.5;
  communicator o3 : real period 10 init 0.0 lrc 0.5;
  module m {
    task t1 input (raw[0]) output (o1[1]) model series;
    task t2 input (raw[0]) output (o2[1]) model series;
    task t3 input (raw[0]) output (o3[1]) model series;
    mode main period 10 { invoke t1; invoke t2; invoke t3; }
    start main;
  }
  refine task t1 to p1;
  refine task t2 to p1;
}
)");
  // t3 has no refine declaration (kappa not total), and p1 is targeted
  // twice (kappa not injective).
  const auto count = std::count_if(result.diagnostics.begin(),
                                   result.diagnostics.end(),
                                   [](const Diagnostic& d) {
                                     return d.rule_id ==
                                            kRuleRefinementPrecheck;
                                   });
  EXPECT_EQ(count, 2) << render_text(result.diagnostics);
  bool saw_totality = false;
  bool saw_injectivity = false;
  for (const Diagnostic& diag : result.diagnostics) {
    if (diag.rule_id != kRuleRefinementPrecheck) continue;
    if (diag.message.find("total") != std::string::npos) {
      saw_totality = true;
      EXPECT_NE(diag.message.find("'t3'"), std::string::npos);
    }
    if (diag.message.find("injective") != std::string::npos) {
      saw_injectivity = true;
      ASSERT_FALSE(diag.related.empty());
    }
  }
  EXPECT_TRUE(saw_totality);
  EXPECT_TRUE(saw_injectivity);
}

TEST(ProductLint, NonRefiningProgramSkipsPrecheck) {
  const LintResult result = lint_or_die(kCleanProgram);
  EXPECT_FALSE(has_rule(result, kRuleRefinementPrecheck));
}

TEST(ProductLint, NodeCapDegradesWithNote) {
  LintOptions options;
  options.max_product_nodes = 1;
  const LintResult result = lint_or_die(kReachableCrossRace, options);
  const Diagnostic& diag = first_of(result, kRuleSupergraphCapped);
  EXPECT_EQ(diag.severity, Severity::kNote);
  EXPECT_NE(diag.message.find("cap of 1"), std::string::npos);
  // The product rules stepped aside: the reachable race is NOT reported
  // by LRT011 (LRT001 still covers it per-module).
  EXPECT_FALSE(has_rule(result, kRuleCrossModeRace));
  EXPECT_TRUE(has_rule(result, kRuleWriteRace));
}

TEST(ProductLint, CountsNodesAndIterations) {
  const LintResult result = lint_or_die(kReachableCrossRace);
  EXPECT_EQ(result.product_nodes, 2);  // (safe,main) and (hot,main)
  EXPECT_GT(result.fixpoint_iterations, 0);
}

// ---------------------------------------------------------------------------
// Determinism and deduplication.

TEST(Determinism, RepeatedRunsAreByteIdentical) {
  for (const std::string_view source :
       {kReachableCrossRace, kUnreachableCrossRace, kCleanProgram}) {
    const LintResult first = lint_or_die(source);
    const LintResult second = lint_or_die(source);
    EXPECT_EQ(render_text(first.diagnostics),
              render_text(second.diagnostics));
    EXPECT_EQ(to_sarif(first.diagnostics), to_sarif(second.diagnostics));
    EXPECT_EQ(to_json(first.diagnostics), to_json(second.diagnostics));
  }
}

TEST(Determinism, EngineDedupesIdenticalFindings) {
  DiagnosticEngine engine;
  Diagnostic diag;
  diag.rule_id = "LRT011";
  diag.severity = Severity::kError;
  diag.location = {"a.htl", 4, 2};
  diag.message = "same finding";
  EXPECT_TRUE(engine.report(diag));
  EXPECT_TRUE(engine.report(diag));
  Diagnostic different = diag;
  different.message = "different finding";
  EXPECT_TRUE(engine.report(different));
  engine.sort_and_dedupe();
  ASSERT_EQ(engine.diagnostics().size(), 2u);
  EXPECT_NE(engine.diagnostics()[0].message,
            engine.diagnostics()[1].message);
}

TEST(Determinism, DedupeKeepsSortedOrder) {
  DiagnosticEngine engine;
  for (const int line : {9, 2, 9, 2, 5}) {
    Diagnostic diag;
    diag.rule_id = "LRT005";
    diag.location = {"a.htl", line, 1};
    diag.message = "m";
    EXPECT_TRUE(engine.report(std::move(diag)));
  }
  engine.sort_and_dedupe();
  ASSERT_EQ(engine.diagnostics().size(), 3u);
  EXPECT_EQ(engine.diagnostics()[0].location.line, 2);
  EXPECT_EQ(engine.diagnostics()[1].location.line, 5);
  EXPECT_EQ(engine.diagnostics()[2].location.line, 9);
}

// ---------------------------------------------------------------------------
// Fix-its (lint::apply_fixits and the --fix pipeline).

TEST(Fixit, InsertsExplicitDefaults) {
  constexpr std::string_view kSource = R"(program nodefaults {
  communicator raw : real period 10 init 0.0 lrc 0.5;
  communicator flag : bool period 10 init false lrc 0.5;
  communicator out : real period 10 init 0.0 lrc 0.9;
  module m {
    task t input (raw[0], flag[0]) output (out[1]) model parallel;
    mode main period 10 { invoke t; }
    start main;
  }
}
)";
  const LintResult before = lint_or_die(kSource);
  ASSERT_TRUE(has_rule(before, kRuleMissingDefault));
  const auto fixed = apply_fixits(kSource, before.diagnostics);
  ASSERT_TRUE(fixed.ok()) << fixed.status().to_string();
  EXPECT_EQ(fixed->applied, 1);
  // One zero literal per input, typed from the communicator declaration.
  EXPECT_NE(fixed->text.find("defaults (0.0, false)"), std::string::npos);
  const LintResult after = lint_or_die(fixed->text);
  EXPECT_FALSE(has_rule(after, kRuleMissingDefault))
      << render_text(after.diagnostics);
  // Applying again finds nothing left to do.
  const auto again = apply_fixits(fixed->text, after.diagnostics);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->applied, 0);
  EXPECT_EQ(again->text, fixed->text);
}

TEST(Fixit, DeletesDeadCommunicatorStatement) {
  constexpr std::string_view kSource = R"(program dead {
  communicator unused : real period 10 init 0.0 lrc 0.5;
  communicator raw : real period 10 init 0.0 lrc 0.5;
  communicator out : real period 10 init 0.0 lrc 0.9;
  module m {
    task t input (raw[0]) output (out[1]) model series;
    mode main period 10 { invoke t; }
    start main;
  }
}
)";
  const LintResult before = lint_or_die(kSource);
  ASSERT_TRUE(has_rule(before, kRuleDeadCommunicator));
  const auto fixed = apply_fixits(kSource, before.diagnostics);
  ASSERT_TRUE(fixed.ok());
  EXPECT_EQ(fixed->applied, 1);
  EXPECT_EQ(fixed->text.find("unused"), std::string::npos);
  const LintResult after = lint_or_die(fixed->text);
  EXPECT_FALSE(has_rule(after, kRuleDeadCommunicator));
  EXPECT_FALSE(has_rule(after, kRuleCompileError))
      << render_text(after.diagnostics);
}

TEST(Fixit, DeletesDuplicateWritePort) {
  constexpr std::string_view kSource = R"(program dup {
  communicator raw : real period 10 init 0.0 lrc 0.5;
  communicator out : real period 10 init 0.0 lrc 0.9;
  module m {
    task t input (raw[0]) output (out[1], out[1]) model series;
    mode main period 10 { invoke t; }
    start main;
  }
}
)";
  const LintResult before = lint_or_die(kSource);
  ASSERT_TRUE(has_rule(before, kRuleDuplicateWritePort));
  const auto fixed = apply_fixits(kSource, before.diagnostics);
  ASSERT_TRUE(fixed.ok());
  EXPECT_EQ(fixed->applied, 1);
  EXPECT_NE(fixed->text.find("output (out[1])"), std::string::npos);
  const LintResult after = lint_or_die(fixed->text);
  EXPECT_FALSE(has_rule(after, kRuleDuplicateWritePort));
  EXPECT_FALSE(has_rule(after, kRuleCompileError))
      << render_text(after.diagnostics);
}

TEST(Fixit, DeletesDeadSwitchAndRelintsWithoutErrors) {
  constexpr std::string_view kSource = R"(program livelock {
  communicator raw : real period 10 init 0.0 lrc 0.5;
  communicator stuck : bool period 10 init false lrc 0.5;
  communicator out : real period 10 init 0.0 lrc 0.5;
  module m {
    task t input (raw[0]) output (out[1]) model series;
    mode main period 10 { invoke t; switch (stuck) to other; }
    mode other period 10 { invoke t; }
    start main;
  }
}
)";
  const LintResult before = lint_or_die(kSource);
  ASSERT_TRUE(has_rule(before, kRuleDeadSwitch));
  const auto fixed = apply_fixits(kSource, before.diagnostics);
  ASSERT_TRUE(fixed.ok());
  EXPECT_GE(fixed->applied, 1);
  EXPECT_EQ(fixed->text.find("switch"), std::string::npos);
  const LintResult after = lint_or_die(fixed->text);
  EXPECT_FALSE(has_rule(after, kRuleDeadSwitch));
  EXPECT_FALSE(has_rule(after, kRuleSwitchLivelock));
  EXPECT_EQ(after.errors(), 0) << render_text(after.diagnostics);
}

TEST(Fixit, AnchorOutsideSourceIsAnError) {
  std::vector<Diagnostic> diags(1);
  diags[0].edits.push_back(
      {FixEdit::Kind::kDeleteStatement, /*line=*/99, /*column=*/1, ""});
  const auto fixed = apply_fixits("one line only\n", diags);
  EXPECT_EQ(fixed.status().code(), StatusCode::kInvalidArgument);
}

TEST(Fixit, OverlappingEditsApplyFirstAndSkipRest) {
  // Two deletions of overlapping statements: one applies, one is
  // skipped and counted.
  std::vector<Diagnostic> diags(2);
  diags[0].edits.push_back({FixEdit::Kind::kDeleteStatement, 1, 1, ""});
  diags[1].edits.push_back({FixEdit::Kind::kDeleteStatement, 1, 3, ""});
  const auto fixed = apply_fixits("ab cd;\nrest;\n", diags);
  ASSERT_TRUE(fixed.ok());
  EXPECT_EQ(fixed->applied, 1);
  EXPECT_EQ(fixed->skipped, 1);
  EXPECT_NE(fixed->text.find("rest;"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Related locations in the renderers.

TEST(Render, TextShowsRelatedLocations) {
  const LintResult result = lint_or_die(kReachableCrossRace);
  const std::string text = render_text(result.diagnostics);
  EXPECT_NE(text.find("related:"), std::string::npos);
}

TEST(Render, SarifCarriesRelatedLocations) {
  LintOptions options;
  options.file = "xrace.htl";
  const LintResult result = lint_or_die(kReachableCrossRace, options);
  const std::string sarif = to_sarif(result.diagnostics);
  EXPECT_NE(sarif.find("\"relatedLocations\""), std::string::npos);
  EXPECT_NE(sarif.find("the other writer"), std::string::npos);
  const std::string json = to_json(result.diagnostics);
  EXPECT_NE(json.find("\"related\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// The CI gate condition: shipped example programs lint clean.

TEST(Lint, ShippedExamplesHaveNoErrors) {
  const std::filesystem::path dir = LRT_EXAMPLES_HTL_DIR;
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  int linted = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".htl") continue;
    std::ifstream file(entry.path());
    ASSERT_TRUE(file.good()) << entry.path();
    std::ostringstream buffer;
    buffer << file.rdbuf();
    LintOptions options;
    options.file = entry.path().filename().string();
    const LintResult result = lint_or_die(buffer.str(), options);
    EXPECT_EQ(result.errors(), 0)
        << entry.path() << ":\n" << render_text(result.diagnostics);
    EXPECT_TRUE(result.flattened) << entry.path();
    ++linted;
  }
  EXPECT_GE(linted, 5);
}

}  // namespace
}  // namespace lrt::lint
