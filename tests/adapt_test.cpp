// Unit tests for src/adapt: failure-detector thresholds and hysteresis,
// online LRC monitoring, repair planning (full recovery and slack-ordered
// graceful degradation), the self-healing controller end-to-end, and the
// Monte Carlo recovery validator.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "adapt/failure_detector.h"
#include "adapt/lrc_monitor.h"
#include "adapt/recovery_validation.h"
#include "adapt/repair_planner.h"
#include "adapt/self_healing.h"
#include "plant/three_tank_system.h"
#include "sim/monte_carlo.h"
#include "sim/runtime.h"
#include "support/rng.h"
#include "tests/test_util.h"

namespace lrt::adapt {
namespace {

using test::comm;
using test::task;

// --- failure detector ---

TEST(FailureDetector, TransientNoiseNeverSuspects) {
  // 10k Bernoulli(0.9) draws: P(24 consecutive misses) ~ 1e-24 per point,
  // so any suspicion would be a detector bug, not bad luck.
  FailureDetector detector(1, 0, {});
  Xoshiro256 rng(kDefaultRngSeed);
  for (int i = 0; i < 10'000; ++i) {
    detector.record_host(i, 0, rng.bernoulli(0.9));
  }
  EXPECT_FALSE(detector.any_host_suspected());
  EXPECT_NE(detector.host_health(0), ComponentHealth::kSuspectedDead);
  EXPECT_NEAR(detector.host_reliability(0), 0.9, 0.15);
}

TEST(FailureDetector, ConsecutiveMissesTripSuspicion) {
  FailureDetectorOptions options;
  options.suspect_after_misses = 24;
  FailureDetector detector(2, 0, options);
  for (int i = 0; i < 23; ++i) detector.record_host(i, 0, false);
  EXPECT_FALSE(detector.any_host_suspected());
  detector.record_host(23, 0, false);
  EXPECT_EQ(detector.host_health(0), ComponentHealth::kSuspectedDead);
  EXPECT_EQ(detector.host_suspected_since(0), 23);
  EXPECT_EQ(detector.suspected_hosts(), (std::vector<arch::HostId>{0}));
  EXPECT_EQ(detector.surviving_hosts(), (std::vector<arch::HostId>{1}));
}

TEST(FailureDetector, HysteresisRequiresConsecutiveSuccessesToRevive) {
  FailureDetectorOptions options;
  options.suspect_after_misses = 4;
  options.revive_after_successes = 8;
  FailureDetector detector(1, 0, options);
  for (int i = 0; i < 4; ++i) detector.record_host(i, 0, false);
  ASSERT_TRUE(detector.any_host_suspected());
  // A lucky streak shorter than the hysteresis does not revive...
  for (int i = 0; i < 7; ++i) detector.record_host(10 + i, 0, true);
  EXPECT_TRUE(detector.any_host_suspected());
  // ...and a miss resets the streak.
  detector.record_host(20, 0, false);
  for (int i = 0; i < 7; ++i) detector.record_host(30 + i, 0, true);
  EXPECT_TRUE(detector.any_host_suspected());
  detector.record_host(40, 0, true);
  EXPECT_FALSE(detector.any_host_suspected());
  EXPECT_EQ(detector.host_suspected_since(0), -1);
}

TEST(FailureDetector, DegradedIsSoftWarningNotSuspicion) {
  FailureDetectorOptions options;
  options.window = 20;
  options.degraded_threshold = 0.75;
  FailureDetector detector(1, 1, options);
  // Alternate hit/miss: 50% windowed reliability, never 24 in a row.
  for (int i = 0; i < 40; ++i) detector.record_sensor(i, 0, i % 2 == 0);
  EXPECT_EQ(detector.sensor_health(0), ComponentHealth::kDegraded);
  EXPECT_NEAR(detector.sensor_reliability(0), 0.5, 1e-9);
}

// --- LRC monitor ---

TEST(LrcMonitor, GradesHealthyAtRiskViolated) {
  spec::SpecificationConfig config;
  config.communicators = {comm("in", 10, 0.5), comm("c", 10, 0.9)};
  config.tasks = {task("t", {{"in", 0}}, {{"c", 1}})};
  const spec::Specification spec = test::build_spec(std::move(config));

  LrcMonitorOptions options;
  options.window = 50;
  options.min_updates = 10;
  const spec::CommId c = *spec.find_communicator("c");
  LrcMonitor monitor(spec, options);
  EXPECT_EQ(monitor.state(c), LrcState::kHealthy);  // no evidence yet

  for (int i = 0; i < 50; ++i) monitor.record_update(i, c, true);
  EXPECT_EQ(monitor.state(c), LrcState::kHealthy);
  EXPECT_DOUBLE_EQ(monitor.windowed_rate(c), 1.0);

  // 40/50: below mu = 0.9, but the 99% Wilson interval still reaches it.
  for (int i = 0; i < 10; ++i) monitor.record_update(50 + i, c, false);
  EXPECT_EQ(monitor.state(c), LrcState::kAtRisk);
  EXPECT_EQ(monitor.endangered(), (std::vector<spec::CommId>{c}));

  // 15/50: the whole interval sits below mu.
  for (int i = 0; i < 25; ++i) monitor.record_update(60 + i, c, false);
  EXPECT_EQ(monitor.state(c), LrcState::kViolated);
  EXPECT_EQ(monitor.updates_seen(c), 85);

  // The window forgets: refilling with successes recovers kHealthy.
  for (int i = 0; i < 50; ++i) monitor.record_update(100 + i, c, true);
  EXPECT_EQ(monitor.state(c), LrcState::kHealthy);
}

TEST(LrcMonitor, ResetForgetsWindowButKeepsLifetimeCounts) {
  // Regression for the remap/live-update install path: evidence gathered
  // against the OUTGOING mapping must not poison the verdict on the one
  // being installed.
  spec::SpecificationConfig config;
  config.communicators = {comm("in", 10, 0.5), comm("c", 10, 0.9)};
  config.tasks = {task("t", {{"in", 0}}, {{"c", 1}})};
  const spec::Specification spec = test::build_spec(std::move(config));

  LrcMonitorOptions options;
  options.window = 50;
  options.min_updates = 10;
  const spec::CommId c = *spec.find_communicator("c");
  LrcMonitor monitor(spec, options);

  // Drive the old mapping into a statistical violation.
  for (int i = 0; i < 50; ++i) monitor.record_update(i, c, i % 4 == 0);
  ASSERT_EQ(monitor.state(c), LrcState::kViolated);

  monitor.reset(500);
  EXPECT_EQ(monitor.last_reset(), 500);
  // Windowed evidence is gone: back to the no-evidence grade and rate.
  EXPECT_EQ(monitor.state(c), LrcState::kHealthy);
  EXPECT_DOUBLE_EQ(monitor.windowed_rate(c), 1.0);
  EXPECT_TRUE(monitor.endangered().empty());
  // Lifetime update count survives on purpose.
  EXPECT_EQ(monitor.updates_seen(c), 50);

  // Fewer than min_updates post-reset failures must not re-trip the
  // verdict off stale ring slots.
  for (int i = 0; i < 5; ++i) monitor.record_update(500 + i, c, false);
  EXPECT_EQ(monitor.state(c), LrcState::kHealthy);
  // A full fresh window grades on post-reset evidence alone.
  for (int i = 0; i < 50; ++i) monitor.record_update(510 + i, c, true);
  EXPECT_EQ(monitor.state(c), LrcState::kHealthy);
  EXPECT_DOUBLE_EQ(monitor.windowed_rate(c), 1.0);
  EXPECT_EQ(monitor.updates_seen(c), 105);
}

// --- repair planner ---

plant::ThreeTankScenario adaptive_scenario(int host_count) {
  plant::ThreeTankScenario scenario;
  scenario.variant = plant::ThreeTankVariant::kReplicatedTasks;
  scenario.lrc_controls = 0.98;
  scenario.host_count = host_count;
  return scenario;
}

TEST(RepairPlanner, RemapsAroundDeadHostWithoutShedding) {
  auto system = plant::make_three_tank_system(adaptive_scenario(3));
  ASSERT_TRUE(system.ok());
  const auto plan = plan_repair(*system->implementation,
                                std::vector<arch::HostId>{0});
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(plan->feasible);
  EXPECT_TRUE(plan->schedulable);
  EXPECT_TRUE(plan->shed_communicators.empty());
  // No task may remain on the dead h1.
  for (const auto& mapping : plan->config.task_mappings) {
    for (const std::string& host : mapping.hosts) {
      EXPECT_NE(host, "h1") << mapping.task;
    }
  }
  // The re-analysis restores the replicated control guarantee on {h2, h3}.
  for (const reliability::CommunicatorVerdict& verdict :
       plan->reliability.verdicts) {
    EXPECT_TRUE(verdict.satisfied) << verdict.name;
    if (verdict.name == "u1" || verdict.name == "u2") {
      EXPECT_NEAR(verdict.srg, 0.98000199, 1e-8);
    }
  }
}

TEST(RepairPlanner, CapacityStarvedPlatformShedsInSlackOrder) {
  auto system = plant::make_three_tank_system(adaptive_scenario(2));
  ASSERT_TRUE(system.ok());
  const auto plan = plan_repair(*system->implementation,
                                std::vector<arch::HostId>{0});
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(plan->feasible);
  // One 0.99 host caps lambda_u at 0.970299 < 0.98: both control LRCs go,
  // least achievable slack first (tie broken by CommId => u1 before u2).
  EXPECT_EQ(plan->shed_communicators,
            (std::vector<std::string>{"u1", "u2"}));
  for (const reliability::CommunicatorVerdict& verdict :
       plan->reliability.verdicts) {
    if (verdict.name != "u1" && verdict.name != "u2") {
      EXPECT_TRUE(verdict.satisfied) << verdict.name;
    }
  }
}

TEST(RepairPlanner, RejectsTotalLossAndBadIds) {
  auto system = plant::make_three_tank_system(adaptive_scenario(2));
  ASSERT_TRUE(system.ok());
  EXPECT_EQ(plan_repair(*system->implementation,
                        std::vector<arch::HostId>{0, 1})
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(plan_repair(*system->implementation,
                        std::vector<arch::HostId>{7})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(RepairPlanner, PreservesReexecutionBudgetOnNewHosts) {
  test::System system;
  system.spec = std::make_unique<spec::Specification>(
      test::build_spec(test::chain_spec_config(1, 10, 0.9)));
  arch::ArchitectureConfig arch_config;
  arch_config.hosts = {{"h1", 0.95}, {"h2", 0.95}};
  arch_config.sensors = {{"s", 0.999}};
  system.arch = std::make_unique<arch::Architecture>(
      std::move(arch::Architecture::Build(std::move(arch_config))).value());
  impl::ImplementationConfig config;
  config.task_mappings = {{"task1", {"h1"}, /*reexecutions=*/2}};
  config.sensor_bindings = {{"c0", "s"}};
  system.impl = std::make_unique<impl::Implementation>(
      std::move(impl::Implementation::Build(*system.spec, *system.arch,
                                            std::move(config)))
          .value());

  const auto plan = plan_repair(*system.impl, std::vector<arch::HostId>{0});
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(plan->feasible);
  ASSERT_EQ(plan->config.task_mappings.size(), 1u);
  EXPECT_EQ(plan->config.task_mappings[0].hosts,
            (std::vector<std::string>{"h2"}));
  EXPECT_EQ(plan->config.task_mappings[0].reexecutions, 2);
  EXPECT_EQ(plan->config.sensor_bindings[0].sensor, "s");
}

// --- self-healing controller end-to-end ---

sim::SimulationOptions unplug_run(std::int64_t periods) {
  sim::SimulationOptions options;
  options.periods = periods;
  options.actuator_comms = {"u1", "u2"};
  options.faults.host_events = {{periods / 5 * 500, 0, false}};
  return options;
}

TEST(SelfHealing, DetectsRepairsAndRecovers) {
  auto system = plant::make_three_tank_system(adaptive_scenario(3));
  ASSERT_TRUE(system.ok());
  SelfHealingController controller(*system->implementation);
  sim::NullEnvironment env;
  sim::SimulationOptions options = unplug_run(200);
  options.monitor = &controller;
  const auto result = sim::simulate(*system->implementation, env, options);
  ASSERT_TRUE(result.ok()) << result.status();

  EXPECT_EQ(result->remaps_installed, 1);
  ASSERT_TRUE(controller.repaired());
  EXPECT_TRUE(controller.last_error().ok());
  const RepairRecord& repair = controller.repairs().front();
  EXPECT_EQ(repair.dead_hosts, (std::vector<arch::HostId>{0}));
  EXPECT_GT(repair.committed_at, options.faults.host_events[0].time);
  EXPECT_TRUE(repair.plan.feasible);
  EXPECT_EQ(controller.detector().host_health(0),
            ComponentHealth::kSuspectedDead);
  EXPECT_EQ(&controller.active().specification(),
            system->specification.get());

  // Post-repair evidence accumulated and healthy for the control comms.
  const auto u1 = static_cast<std::size_t>(
      *system->specification->find_communicator("u1"));
  const auto& stats = controller.post_repair_stats()[u1];
  ASSERT_GT(stats.updates, 0);
  EXPECT_GT(static_cast<double>(stats.reliable_updates) /
                static_cast<double>(stats.updates),
            0.95);
}

TEST(SelfHealing, ObserveOnlyModeNeverRemaps) {
  auto system = plant::make_three_tank_system(adaptive_scenario(3));
  ASSERT_TRUE(system.ok());
  SelfHealingOptions options;
  options.enable_repair = false;
  SelfHealingController controller(*system->implementation, options);
  sim::NullEnvironment env;
  sim::SimulationOptions run = unplug_run(100);
  run.monitor = &controller;
  const auto result = sim::simulate(*system->implementation, env, run);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->remaps_installed, 0);
  EXPECT_FALSE(controller.repaired());
  // The detector still saw the unplug.
  EXPECT_TRUE(controller.detector().any_host_suspected());
}

TEST(SelfHealing, NominalBernoulliFaultsNeverTriggerRepair) {
  auto system = plant::make_three_tank_system(adaptive_scenario(3));
  ASSERT_TRUE(system.ok());
  SelfHealingController controller(*system->implementation);
  sim::NullEnvironment env;
  sim::SimulationOptions options = unplug_run(300);
  options.faults.host_events.clear();  // pure Bernoulli at hrel = 0.99
  options.monitor = &controller;
  const auto result = sim::simulate(*system->implementation, env, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->remaps_installed, 0);
  EXPECT_FALSE(controller.repaired());
  EXPECT_FALSE(controller.detector().any_host_suspected());
}

// --- recovery validator ---

TEST(RecoveryValidator, ValidatesPostRepairReliability) {
  auto system = plant::make_three_tank_system(adaptive_scenario(3));
  ASSERT_TRUE(system.ok());
  RecoveryValidationOptions options;
  options.monte_carlo.trials = 8;
  options.monte_carlo.simulation = unplug_run(200);
  const RecoveryValidator validator(options);
  const auto report = validator.run(*system->implementation);
  ASSERT_TRUE(report.ok()) << report.status();

  EXPECT_EQ(report->repaired_trials, 8);
  EXPECT_EQ(report->degraded_trials, 0);
  EXPECT_EQ(report->unrepaired_trials, 0);
  EXPECT_EQ(report->monte_carlo.remaps_installed, 8);
  EXPECT_TRUE(report->shed_communicators.empty());
  EXPECT_TRUE(report->recovery_validated) << report->summary();
  for (const CommRecovery& comm : report->communicators) {
    EXPECT_GT(comm.updates, 0) << comm.name;
    EXPECT_GE(comm.interval.high, comm.lrc) << comm.name;
    if (comm.name == "u1" || comm.name == "u2") {
      EXPECT_NEAR(comm.reanalyzed_srg, 0.98000199, 1e-8);
    }
  }
}

TEST(RecoveryValidator, NominalCampaignReportsNoRepairs) {
  auto system = plant::make_three_tank_system(adaptive_scenario(3));
  ASSERT_TRUE(system.ok());
  RecoveryValidationOptions options;
  options.monte_carlo.trials = 6;
  options.monte_carlo.simulation = unplug_run(100);
  options.monte_carlo.simulation.faults.host_events.clear();
  const RecoveryValidator validator(options);
  const auto report = validator.run(*system->implementation);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->repaired_trials, 0);
  EXPECT_EQ(report->unrepaired_trials, 6);
  EXPECT_FALSE(report->recovery_validated);  // nothing to validate
}

TEST(RecoveryValidator, JsonReportIsWellFormed) {
  auto system = plant::make_three_tank_system(adaptive_scenario(3));
  ASSERT_TRUE(system.ok());
  RecoveryValidationOptions options;
  options.monte_carlo.trials = 2;
  options.monte_carlo.simulation = unplug_run(100);
  const RecoveryValidator validator(options);
  const auto report = validator.run(*system->implementation);
  ASSERT_TRUE(report.ok());
  const std::string json = to_json(*report);
  for (const char* key :
       {"\"repaired_trials\"", "\"degraded_trials\"",
        "\"recovery_validated\"", "\"shed_communicators\"",
        "\"reanalyzed_srg\"", "\"ci_high\"", "\"shed\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

}  // namespace
}  // namespace lrt::adapt
