// Differential oracle for the parallel event engine (ctest label
// `differential`): Engine::kParallelEvent must be bit-identical to
// Engine::kEvent (and therefore to Engine::kTick) — results, value
// traces, RNG-driven fault outcomes, shared obs counters — for every
// thread count, on workloads that actually shard into several logical
// processes as well as on ones that coalesce (monitors, stateful
// environments, single components). A mismatch writes
// des-mismatch-<seed>.json next to the binary so CI can upload the
// failing configuration as an artifact.
#include <cstdint>
#include <fstream>
#include <memory>
#include <regex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "adapt/self_healing.h"
#include "gen/workload.h"
#include "lrt/lrt.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "plant/three_tank_system.h"
#include "sim/monte_carlo.h"
#include "sim/runtime.h"
#include "support/rng.h"
#include "tests/test_util.h"

namespace lrt::sim {
namespace {

using spec::Time;
using Engine = SimulationOptions::Engine;

// --- oracle plumbing ---

/// Engine-private diagnostics that legitimately differ between the
/// sequential and parallel cores: the sequential engine skips grid
/// instants the sharded calendars visit (and vice versa), and the LP /
/// queue telemetry only exists under the parallel engine. Everything
/// else must match exactly.
bool diagnostic_counter(std::string_view name) {
  return name == "sim.ticks_skipped" || name == "sim.null_messages" ||
         name.substr(0, 7) == "sim.lp_" || name.substr(0, 10) == "sim.queue_";
}

/// Field-by-field equality, exact on doubles: the engines run the same
/// arithmetic in the same order, so even rounding must agree.
void expect_identical(const SimulationResult& a, const SimulationResult& b) {
  EXPECT_EQ(a.periods, b.periods);
  EXPECT_EQ(a.ticks, b.ticks);
  EXPECT_EQ(a.invocations, b.invocations);
  EXPECT_EQ(a.invocation_failures, b.invocation_failures);
  EXPECT_EQ(a.committed_updates, b.committed_updates);
  EXPECT_EQ(a.vote_divergences, b.vote_divergences);
  EXPECT_EQ(a.deadline_misses, b.deadline_misses);
  EXPECT_EQ(a.remaps_installed, b.remaps_installed);
  ASSERT_EQ(a.comm_stats.size(), b.comm_stats.size());
  for (std::size_t c = 0; c < a.comm_stats.size(); ++c) {
    const CommStats& as = a.comm_stats[c];
    const CommStats& bs = b.comm_stats[c];
    EXPECT_EQ(as.name, bs.name);
    EXPECT_EQ(as.samples, bs.samples) << as.name;
    EXPECT_EQ(as.reliable_samples, bs.reliable_samples) << as.name;
    EXPECT_EQ(as.limit_average, bs.limit_average) << as.name;
    EXPECT_EQ(as.updates, bs.updates) << as.name;
    EXPECT_EQ(as.reliable_updates, bs.reliable_updates) << as.name;
  }
  ASSERT_EQ(a.value_traces.size(), b.value_traces.size());
  for (const auto& [name, trace] : a.value_traces) {
    const auto it = b.value_traces.find(name);
    ASSERT_NE(it, b.value_traces.end()) << name;
    EXPECT_EQ(trace, it->second) << name;
  }
}

struct RunOutput {
  SimulationResult result;
  obs::MetricsSnapshot metrics;
};

/// One simulation with a private metrics registry, so per-run counters
/// can be compared across engines without pooling.
RunOutput run_config(const impl::Implementation& impl,
                     SimulationOptions options, Engine engine, int threads) {
  obs::MetricsRegistry registry;
  obs::Sink sink(&registry, nullptr);
  NullEnvironment env;
  options.engine = engine;
  options.threads = threads;
  options.sink = &sink;
  auto result = simulate(impl, env, options);
  EXPECT_TRUE(result.ok()) << result.status();
  RunOutput output;
  if (result.ok()) output.result = std::move(result).value();
  output.metrics = registry.snapshot();
  return output;
}

/// Runs tick, sequential event, and the parallel engine at 1/2/8
/// threads; every result (and every shared counter) must be identical.
/// On mismatch, dumps a replay artifact for CI.
void expect_parallel_identical(const impl::Implementation& impl,
                               const SimulationOptions& options,
                               std::uint64_t seed, const std::string& what) {
  const RunOutput tick = run_config(impl, options, Engine::kTick, 0);
  const RunOutput event = run_config(impl, options, Engine::kEvent, 0);
  expect_identical(tick.result, event.result);
  for (const int threads : {1, 2, 8}) {
    const RunOutput par =
        run_config(impl, options, Engine::kParallelEvent, threads);
    SCOPED_TRACE(what + " @" + std::to_string(threads) + " threads");
    expect_identical(event.result, par.result);
    // Shared counters agree both ways; only engine diagnostics may
    // differ. sim.events in particular must match: the parallel engine
    // counts each owned activation exactly once across the shards.
    for (const auto& [name, value] : event.metrics.counters) {
      if (diagnostic_counter(name)) continue;
      EXPECT_EQ(par.metrics.counter(name), value) << name;
    }
    for (const auto& [name, value] : par.metrics.counters) {
      if (diagnostic_counter(name)) continue;
      EXPECT_EQ(event.metrics.counter(name), value) << name;
    }
    EXPECT_EQ(par.metrics.counter("sim.events"),
              event.metrics.counter("sim.events"));
  }
  if (testing::Test::HasFailure()) {
    std::ofstream artifact("des-mismatch-" + std::to_string(seed) + ".json");
    artifact << "{\"seed\": " << seed << ", \"what\": \"" << what
             << "\", \"periods\": " << options.periods
             << ", \"broadcast_reliability\": "
             << options.broadcast_reliability
             << ", \"model_execution_time\": "
             << (options.model_execution_time ? "true" : "false")
             << ", \"faults_seed\": " << options.faults.seed
             << ", \"tick\": " << to_json(tick.result)
             << ", \"event\": " << to_json(event.result) << "}\n";
  }
}

/// G host-disjoint pipeline groups with one-directional data edges:
///   group g:  sens -> g_c0 -> t1 -> g_c1 -> t2 -> g_c2
///   bridge g (g>0): reads (g-1)_c2 and the foreign sensor (g-1)_c0,
///                   writes g_c3.
/// Every group's tasks are replicated on the group's private host pair,
/// so voting stays intra-group, the partition keeps one component per
/// group, bridges become LP channel edges (lookahead 2 periods), and
/// foreign sensor reads exercise the shadow-replay path.
test::System multi_group_system(int groups, Time period = 10) {
  auto cname = [](int g, int k) {
    return "g" + std::to_string(g) + "_c" + std::to_string(k);
  };
  auto tname = [](int g, const char* role) {
    return "g" + std::to_string(g) + "_" + role;
  };
  spec::SpecificationConfig config;
  config.name = "multigroup";
  for (int g = 0; g < groups; ++g) {
    for (int k = 0; k <= 2; ++k) {
      config.communicators.push_back(test::comm(cname(g, k), period, 0.3));
    }
    if (g > 0) {
      config.communicators.push_back(test::comm(cname(g, 3), period, 0.3));
    }
    config.tasks.push_back(
        test::task(tname(g, "t1"), {{cname(g, 0), 0}}, {{cname(g, 1), 1}}));
    config.tasks.push_back(
        test::task(tname(g, "t2"), {{cname(g, 1), 1}}, {{cname(g, 2), 2}}));
    if (g > 0) {
      config.tasks.push_back(
          test::task(tname(g, "bridge"),
                     {{cname(g - 1, 2), 2}, {cname(g - 1, 0), 2}},
                     {{cname(g, 3), 3}}));
    }
  }

  test::System system;
  system.spec =
      std::make_unique<spec::Specification>(test::build_spec(config));

  arch::ArchitectureConfig arch_config;
  for (int g = 0; g < groups; ++g) {
    arch_config.hosts.push_back({"h" + std::to_string(2 * g), 0.9});
    arch_config.hosts.push_back({"h" + std::to_string(2 * g + 1), 0.9});
  }
  impl::ImplementationConfig impl_config;
  for (int g = 0; g < groups; ++g) {
    const std::vector<std::string> pair = {"h" + std::to_string(2 * g),
                                           "h" + std::to_string(2 * g + 1)};
    impl_config.task_mappings.push_back({tname(g, "t1"), pair});
    impl_config.task_mappings.push_back({tname(g, "t2"), pair});
    if (g > 0) impl_config.task_mappings.push_back({tname(g, "bridge"), pair});
    arch_config.sensors.push_back({"sens_" + cname(g, 0), 0.95});
    impl_config.sensor_bindings.push_back(
        {cname(g, 0), "sens_" + cname(g, 0)});
  }

  auto arch_result = arch::Architecture::Build(std::move(arch_config));
  EXPECT_TRUE(arch_result.ok()) << arch_result.status();
  system.arch =
      std::make_unique<arch::Architecture>(std::move(arch_result).value());
  auto impl_result = impl::Implementation::Build(*system.spec, *system.arch,
                                                 std::move(impl_config));
  EXPECT_TRUE(impl_result.ok()) << impl_result.status();
  system.impl =
      std::make_unique<impl::Implementation>(std::move(impl_result).value());
  return system;
}

/// A fault plan exercising every RNG site plus scripted availability
/// flips on each group's first host, deliberately off the harmonic grid.
SimulationOptions multi_group_options(std::uint64_t seed, int groups) {
  SimulationOptions options;
  options.periods = 40;
  options.broadcast_reliability = 0.9;
  options.faults.seed = seed * 7919 + 1;
  for (int g = 0; g < groups; ++g) {
    options.faults.host_events.push_back(
        {.time = 7 + 13 * g, .host = 2 * g, .up = false});
    options.faults.host_events.push_back(
        {.time = 203 + 17 * g, .host = 2 * g, .up = true});
  }
  return options;
}

// --- the differential suites ---

TEST(ParallelRuntimeDifferential, MultiGroupPipelineShards) {
  const int kGroups = 3;
  test::System system = multi_group_system(kGroups);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SimulationOptions options = multi_group_options(seed, kGroups);
    for (const auto& comm : system.spec->communicators()) {
      options.record_values_for.push_back(comm.name);
    }
    expect_parallel_identical(*system.impl, options, seed,
                              "multi-group pipeline");
  }
  // The workload must genuinely shard: three host-disjoint components,
  // so 8 threads yield 3 LPs that synchronize through null messages,
  // while a budget of 1 coalesces to the sequential engine (no LP
  // diagnostics at all).
  const SimulationOptions options = multi_group_options(1, kGroups);
  const RunOutput par8 =
      run_config(*system.impl, options, Engine::kParallelEvent, 8);
  EXPECT_EQ(par8.metrics.counter("sim.lp_count"), kGroups);
  EXPECT_GT(par8.metrics.counter("sim.null_messages"), 0);
  const RunOutput par2 =
      run_config(*system.impl, options, Engine::kParallelEvent, 2);
  EXPECT_EQ(par2.metrics.counter("sim.lp_count"), 2);
  const RunOutput par1 =
      run_config(*system.impl, options, Engine::kParallelEvent, 1);
  EXPECT_EQ(par1.metrics.counter("sim.lp_count"), 0);
}

TEST(ParallelRuntimeDifferential, MultiGroupTimedExecution) {
  // Timed mode switches the channel lookahead derivation from write
  // offsets to WCTT lower bounds; the default platform metrics give
  // every edge lookahead 1 — the tightest legal bound.
  const int kGroups = 3;
  test::System system = multi_group_system(kGroups);
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    SimulationOptions options = multi_group_options(seed, kGroups);
    options.model_execution_time = true;
    expect_parallel_identical(*system.impl, options, seed, "timed groups");
  }
}

TEST(ParallelRuntimeDifferential, RandomizedWorkloads) {
  // Generated topologies land anywhere between one fully-merged
  // component (coalesce path) and several independent ones; both must
  // agree with the sequential engines under fault injection.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Xoshiro256 rng(seed);
    gen::WorkloadOptions shape;
    shape.with_functions = true;
    shape.max_hosts = 3;
    auto workload = gen::random_workload(rng, shape);
    ASSERT_TRUE(workload.ok()) << workload.status();

    const Time horizon = 40 * workload->specification->base_lcm();
    SimulationOptions options;
    options.periods = 40;
    options.broadcast_reliability = 0.9;
    options.faults.seed = seed * 7919 + 1;
    options.faults.host_events.push_back(
        {.time = horizon / 3 + 1, .host = 0, .up = false});
    options.faults.host_events.push_back(
        {.time = 2 * horizon / 3 + 1, .host = 0, .up = true});
    for (const auto& comm : workload->specification->communicators()) {
      options.record_values_for.push_back(comm.name);
    }
    expect_parallel_identical(*workload->implementation, options, seed,
                              "random workload");
  }
}

TEST(ParallelRuntimeDifferential, MidRunRemapCoalescesToEventEngine) {
  // A monitor may install a remap at any boundary, which would dirty
  // the partition mid-run — the parallel engine must detect the monitor
  // and coalesce, reproducing the tick engine's repair bit-for-bit.
  auto run = [](Engine engine) {
    plant::ThreeTankScenario scenario;
    scenario.variant = plant::ThreeTankVariant::kReplicatedTasks;
    scenario.lrc_controls = 0.98;
    scenario.host_count = 3;
    auto system = plant::make_three_tank_system(scenario);
    EXPECT_TRUE(system.ok()) << system.status();
    adapt::SelfHealingController controller(*system->implementation);
    NullEnvironment env;
    SimulationOptions options;
    options.engine = engine;
    options.threads = 8;
    options.periods = 200;
    options.actuator_comms = {"u1", "u2"};
    options.faults.host_events = {{.time = 20'000, .host = 0, .up = false}};
    options.monitor = &controller;
    auto result = simulate(*system->implementation, env, options);
    EXPECT_TRUE(result.ok()) << result.status();
    return std::pair(std::move(result).value(),
                     controller.repairs().empty()
                         ? Time{-1}
                         : controller.repairs().front().committed_at);
  };
  const auto [tick, tick_repair_at] = run(Engine::kTick);
  const auto [par, par_repair_at] = run(Engine::kParallelEvent);
  expect_identical(tick, par);
  EXPECT_EQ(tick_repair_at, par_repair_at);
  EXPECT_GE(tick.remaps_installed, 1);
}

TEST(ParallelRuntimeDifferential, StatefulEnvironmentCoalesces) {
  // The three-tank ODE environment mutates state in advance(), so it is
  // not parallel_safe(): the parallel engine must fall back to the
  // sequential event core and match the tick engine exactly, plant
  // metrics included.
  auto run = [](Engine engine) {
    auto system = plant::make_three_tank_system({});
    EXPECT_TRUE(system.ok()) << system.status();
    plant::ThreeTankEnvironment env({}, 0.4, 0.3);
    SimulationOptions options;
    options.engine = engine;
    options.threads = 8;
    options.periods = 40;
    options.actuator_comms = {"u1", "u2"};
    options.record_values_for = {"l1", "u1"};
    options.faults.host_events.push_back(
        {.time = 5'000, .host = 1, .up = false});
    auto result = simulate(*system->implementation, env, options);
    EXPECT_TRUE(result.ok()) << result.status();
    return std::pair(std::move(result).value(), env.metrics());
  };
  const auto [tick, tick_metrics] = run(Engine::kTick);
  const auto [par, par_metrics] = run(Engine::kParallelEvent);
  expect_identical(tick, par);
  EXPECT_EQ(tick_metrics.samples, par_metrics.samples);
  EXPECT_EQ(tick_metrics.rms_error1, par_metrics.rms_error1);
  EXPECT_EQ(tick_metrics.rms_error2, par_metrics.rms_error2);
  EXPECT_EQ(tick_metrics.max_error1, par_metrics.max_error1);
  EXPECT_EQ(tick_metrics.max_error2, par_metrics.max_error2);
}

TEST(ParallelRuntimeDifferential, MonteCarloThreadPrecedence) {
  // MonteCarloOptions::threads > 1 must win over the engine's LP pool:
  // every (outer threads) campaign runs each trial single-threaded, and
  // the report stays bit-identical to the tick reference — including
  // outer == 1, where the inner LP pool actually spins up.
  test::System system = multi_group_system(3);
  auto report_json = [&](Engine engine, unsigned outer, int inner) {
    MonteCarloOptions options;
    options.simulation.engine = engine;
    options.simulation.threads = inner;
    options.simulation.periods = 20;
    options.trials = 10;
    options.seed = 20260809;
    options.threads = outer;
    const auto report = MonteCarloRunner(options).run(*system.impl);
    EXPECT_TRUE(report.ok()) << report.status();
    std::string json = to_json(*report);
    json = std::regex_replace(
        json,
        std::regex(
            "\"(elapsed_seconds|trials_per_second|threads)\":[0-9.eE+-]+"),
        "\"$1\":0");
    return json;
  };
  const std::string reference = report_json(Engine::kTick, 1, 0);
  for (const unsigned outer : {1u, 2u, 8u}) {
    EXPECT_EQ(report_json(Engine::kParallelEvent, outer, 8), reference)
        << outer << " outer threads";
  }
}

TEST(ParallelRuntimeDifferential, FacadeEnginePassthrough) {
  // lrt::simulate forwards SimulationOptions verbatim: selecting the
  // parallel engine (and a thread budget) at the facade must hit the
  // same sharded path and the same numbers.
  test::System system = multi_group_system(2);
  const lrt::Workload workload =
      lrt::borrow_workload(*system.spec, *system.arch);
  lrt::SimulateOptions options;
  options.simulation.periods = 25;
  options.simulation.broadcast_reliability = 0.9;
  options.simulation.engine = Engine::kTick;
  const auto tick = lrt::simulate(workload, *system.impl, options);
  ASSERT_TRUE(tick.ok()) << tick.status();
  options.simulation.engine = Engine::kParallelEvent;
  options.simulation.threads = 4;
  const auto par = lrt::simulate(workload, *system.impl, options);
  ASSERT_TRUE(par.ok()) << par.status();
  expect_identical(*tick, *par);
}

}  // namespace
}  // namespace lrt::sim
