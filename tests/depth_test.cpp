// Additional depth tests across modules: edge cases and cross-checks not
// covered by the per-module suites.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "ecode/program.h"
#include "gen/workload.h"
#include "plant/three_tank_system.h"
#include "reliability/analysis.h"
#include "sched/schedulability.h"
#include "sched/timeline.h"
#include "sim/runtime.h"
#include "spec/spec_graph.h"
#include "support/rational.h"
#include "tests/test_util.h"

namespace lrt {
namespace {

// --- streaming operators ---

TEST(Streams, ValueAndRationalAndStatus) {
  std::ostringstream out;
  out << spec::Value::real(1.5) << " " << spec::Value::bottom() << " "
      << Rational(3, 4) << " " << InvalidArgumentError("x");
  EXPECT_EQ(out.str(), "1.5 \xE2\x8A\xA5 3/4 INVALID_ARGUMENT: x");
}

TEST(Streams, FailureModelNames) {
  EXPECT_EQ(spec::to_string(spec::FailureModel::kSeries), "series");
  EXPECT_EQ(spec::to_string(spec::FailureModel::kParallel), "parallel");
  EXPECT_EQ(spec::to_string(spec::FailureModel::kIndependent),
            "independent");
}

// --- specification edges ---

TEST(SpecEdge, OutputInstanceAtExactHyperperiodBoundary) {
  // Task writes instance 2 of a period-10 comm => write time 20 = pi_S.
  spec::SpecificationConfig config;
  config.communicators = {test::comm("in", 10), test::comm("out", 10)};
  config.tasks = {test::task("t", {{"in", 1}}, {{"out", 2}})};
  const auto spec = spec::Specification::Build(std::move(config));
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->hyperperiod(), 20);
  EXPECT_EQ(spec->write_time(0), 20);
  // And that boundary write commits at the start of the next period.
  auto system = test::single_host_system(
      [&] {
        spec::SpecificationConfig c;
        c.communicators = {test::comm("in", 10), test::comm("out", 10)};
        c.tasks = {test::task("t", {{"in", 1}}, {{"out", 2}})};
        return c;
      }(),
      1.0, 1.0);
  sim::NullEnvironment env;
  sim::SimulationOptions options;
  options.periods = 10;
  const auto result = sim::simulate(*system.impl, env, options);
  ASSERT_TRUE(result.ok());
  // 9 of the 10 boundary writes land inside the horizon.
  EXPECT_EQ(result->find("out")->updates, 9);
  EXPECT_EQ(result->find("out")->reliable_updates, 9);
}

TEST(SpecEdge, TaskReadingSameCommTwiceAtDifferentInstances) {
  spec::SpecificationConfig config;
  config.communicators = {test::comm("in", 5), test::comm("out", 5)};
  config.tasks = {test::task("t", {{"in", 0}, {"in", 2}}, {{"out", 3}})};
  const auto spec = spec::Specification::Build(std::move(config));
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->read_time(0), 10);
  EXPECT_EQ(spec->input_comm_set(0).size(), 1u);
  const auto& task = spec->task(0);
  EXPECT_EQ(task.inputs.size(), 2u);
  EXPECT_EQ(task.defaults.size(), 2u);
}

// --- scheduling edges ---

TEST(SchedEdge, IdleGapsBetweenStaggeredJobs) {
  // Two tasks with disjoint LETs leave an idle gap; EDF must idle, not
  // run early.
  spec::SpecificationConfig config;
  config.communicators = {test::comm("in", 10), test::comm("a", 10),
                          test::comm("b", 10)};
  config.tasks = {test::task("t1", {{"in", 0}}, {{"a", 1}}),
                  test::task("t2", {{"in", 2}}, {{"b", 3}})};
  auto system = test::single_host_system(std::move(config));
  const auto report = sched::analyze_schedulability(*system.impl);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->schedulable);
  const auto& slices = report->host_schedules[0].slices;
  ASSERT_EQ(slices.size(), 2u);
  EXPECT_EQ(slices[0].start, 0);
  EXPECT_EQ(slices[1].start, 20);  // waits for t2's release
}

TEST(SchedEdge, TimelineWidthClamped) {
  auto system = test::single_host_system(test::chain_spec_config(1));
  const auto report = sched::analyze_schedulability(*system.impl);
  const std::string tiny = sched::render_timeline(*report, *system.impl, 1);
  EXPECT_NE(tiny.find("h0 |"), std::string::npos);  // still renders
}

// --- e-code edges ---

TEST(EcodeEdge, LastBlockFutureWrapsToFirst) {
  auto system = plant::make_three_tank_system({});
  const auto program = ecode::generate_ecode(*system->implementation, 2);
  ASSERT_TRUE(program.ok());
  // The final future instruction targets the first block's address.
  const auto& code = program->code;
  int last_future = -1;
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (code[i].op == ecode::Opcode::kFuture) {
      last_future = static_cast<int>(i);
    }
  }
  ASSERT_NE(last_future, -1);
  EXPECT_EQ(code[static_cast<std::size_t>(last_future)].arg1,
            program->blocks.front().second);
  // Its delta closes the period: last block time + delta = period + first.
  const auto last_block = program->blocks.back();
  EXPECT_EQ(last_block.first +
                code[static_cast<std::size_t>(last_future)].arg0,
            program->period + program->blocks.front().first);
}

// --- reliability edges ---

TEST(ReliabilityEdge, SinglePhaseTimeDependentEqualsStatic) {
  auto system = test::single_host_system(test::chain_spec_config(2), 0.9,
                                         0.8);
  const auto static_report = reliability::analyze(*system.impl);
  const std::vector<impl::Implementation> phases = {*system.impl};
  const auto dynamic_report = reliability::analyze_time_dependent(phases);
  ASSERT_TRUE(static_report.ok());
  ASSERT_TRUE(dynamic_report.ok());
  ASSERT_EQ(static_report->verdicts.size(), dynamic_report->verdicts.size());
  for (std::size_t c = 0; c < static_report->verdicts.size(); ++c) {
    EXPECT_DOUBLE_EQ(static_report->verdicts[c].srg,
                     dynamic_report->verdicts[c].srg);
  }
}

TEST(ReliabilityEdge, ViolationsPreserveDeclarationOrder) {
  spec::SpecificationConfig config;
  config.communicators = {test::comm("in", 10, 0.99),
                          test::comm("mid", 10, 0.99),
                          test::comm("out", 10, 0.99)};
  config.tasks = {test::task("t1", {{"in", 0}}, {{"mid", 1}}),
                  test::task("t2", {{"mid", 1}}, {{"out", 2}})};
  auto system = test::single_host_system(std::move(config), 0.9, 0.9);
  const auto report = reliability::analyze(*system.impl);
  ASSERT_TRUE(report.ok());
  const auto violations = report->violations();
  ASSERT_EQ(violations.size(), 3u);
  EXPECT_EQ(violations[0].name, "in");
  EXPECT_EQ(violations[1].name, "mid");
  EXPECT_EQ(violations[2].name, "out");
  // Slack degrades down the chain.
  EXPECT_GT(violations[0].slack, violations[1].slack);
  EXPECT_GT(violations[1].slack, violations[2].slack);
}

// --- simulation edges ---

TEST(SimEdge, LimitAverageVsUpdateRateForSparseWrites) {
  // l-style comm: period 10, written once per 50-tick specification
  // period. Samples (every 10) share the fate of the last write, so
  // limavg ~ update rate in the long run.
  spec::SpecificationConfig config;
  config.communicators = {test::comm("in", 50), test::comm("out", 10)};
  config.tasks = {test::task("t", {{"in", 0}}, {{"out", 1}})};
  auto system = test::single_host_system(std::move(config), 0.8, 1.0);
  sim::NullEnvironment env;
  sim::SimulationOptions options;
  options.periods = 100'000;
  options.faults.seed = 61;
  const auto result = sim::simulate(*system.impl, env, options);
  ASSERT_TRUE(result.ok());
  const auto* out = result->find("out");
  EXPECT_NEAR(out->limit_average, out->update_rate(), 0.01);
  EXPECT_NEAR(out->update_rate(), 0.8, 0.01);
  // 5 samples per update.
  EXPECT_NEAR(static_cast<double>(out->samples) /
                  static_cast<double>(out->updates),
              5.0, 0.1);
}

TEST(SimEdge, RecordingMultipleCommsKeepsThemAligned) {
  auto system = test::single_host_system(test::chain_spec_config(2), 1.0,
                                         1.0);
  sim::NullEnvironment env;
  sim::SimulationOptions options;
  options.periods = 7;
  options.record_values_for = {"c0", "c1", "c2"};
  const auto result = sim::simulate(*system.impl, env, options);
  ASSERT_TRUE(result.ok());
  // pi_S = 20 with period-10 communicators: 2 access instants per period.
  EXPECT_EQ(result->value_traces.at("c0").size(), 14u);
  EXPECT_EQ(result->value_traces.at("c1").size(), 14u);
  EXPECT_EQ(result->value_traces.at("c2").size(), 14u);
}

// --- generator LRC bounds ---

TEST(GenEdge, LrcRangeRespected) {
  gen::WorkloadOptions options;
  options.min_lrc = 0.31;
  options.max_lrc = 0.32;
  Xoshiro256 rng(13);
  const auto workload = gen::random_workload(rng, options);
  ASSERT_TRUE(workload.ok());
  for (const auto& comm : workload->specification->communicators()) {
    EXPECT_GE(comm.lrc, 0.31);
    EXPECT_LE(comm.lrc, 0.32);
  }
}

// --- graph DOT on the 3TS (smoke + structure) ---

TEST(GraphEdge, ThreeTankDotIsWellFormed) {
  auto system = plant::make_three_tank_system({});
  const spec::SpecificationGraph graph(*system->specification);
  const std::string dot = graph.to_dot();
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'), 1);
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '}'), 1);
  EXPECT_NE(dot.find("\"t1\" [shape=box"), std::string::npos);
  EXPECT_NE(dot.find("\"l1@1\" -> \"t1\""), std::string::npos);
}

}  // namespace
}  // namespace lrt
