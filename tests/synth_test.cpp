// Unit tests for src/synth: greedy and exhaustive replication synthesis,
// optimality on small systems, unsatisfiable requirements, the paper's
// scenario-1 replication rediscovered automatically, and the fast engine's
// equivalence/determinism contract against the reference engine.
#include <gtest/gtest.h>

#include "gen/workload.h"
#include "plant/three_tank_system.h"
#include "reliability/analysis.h"
#include "sched/schedulability.h"
#include "support/rng.h"
#include "synth/synthesis.h"
#include "tests/test_util.h"

namespace lrt::synth {
namespace {

using test::comm;
using test::task;

struct Fixture {
  std::unique_ptr<spec::Specification> spec;
  std::unique_ptr<arch::Architecture> arch;
  std::vector<impl::ImplementationConfig::SensorBinding> bindings;
};

/// sensor "in" -> t1 -> "mid" -> t2 -> "out"; LRCs adjustable.
Fixture chain_fixture(double lrc_mid, double lrc_out,
                      std::vector<arch::Host> hosts) {
  Fixture f;
  spec::SpecificationConfig config;
  config.communicators = {comm("in", 10, 0.5), comm("mid", 10, lrc_mid),
                          comm("out", 10, lrc_out)};
  config.tasks = {task("t1", {{"in", 0}}, {{"mid", 1}}),
                  task("t2", {{"mid", 1}}, {{"out", 2}})};
  f.spec = std::make_unique<spec::Specification>(
      test::build_spec(std::move(config)));
  arch::ArchitectureConfig arch_config;
  arch_config.hosts = std::move(hosts);
  arch_config.sensors = {{"s", 0.999}};
  f.arch = std::make_unique<arch::Architecture>(
      std::move(arch::Architecture::Build(std::move(arch_config))).value());
  f.bindings = {{"in", "s"}};
  return f;
}

SynthesisOptions strategy(SynthesisOptions::Strategy s) {
  SynthesisOptions options;
  options.strategy = s;
  return options;
}

class BothStrategies
    : public ::testing::TestWithParam<SynthesisOptions::Strategy> {};

TEST_P(BothStrategies, EasyRequirementUsesSingleReplicas) {
  // LRC 0.9 with 0.99 hosts: one host per task suffices.
  Fixture f = chain_fixture(0.9, 0.9, {{"h1", 0.99}, {"h2", 0.99}});
  const auto result =
      synthesize(*f.spec, *f.arch, f.bindings, strategy(GetParam()));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->replication_count, 2u);

  // The synthesized config must actually be valid.
  auto impl = impl::Implementation::Build(*f.spec, *f.arch, result->config);
  ASSERT_TRUE(impl.ok());
  EXPECT_TRUE(reliability::analyze(*impl)->reliable);
}

TEST_P(BothStrategies, TightRequirementForcesReplication) {
  // lambda_out needs >= 0.985; a single 0.99 host chain gives
  // 0.999*0.99*0.99 = 0.979 < 0.985, so at least one task must replicate.
  Fixture f = chain_fixture(0.9, 0.985, {{"h1", 0.99}, {"h2", 0.99}});
  const auto result =
      synthesize(*f.spec, *f.arch, f.bindings, strategy(GetParam()));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GE(result->replication_count, 3u);
  auto impl = impl::Implementation::Build(*f.spec, *f.arch, result->config);
  ASSERT_TRUE(impl.ok());
  EXPECT_TRUE(reliability::analyze(*impl)->reliable);
}

TEST_P(BothStrategies, ImpossibleRequirementIsUnsatisfiable) {
  // Even full replication gives lambda_out <= 0.999 * (1-0.01^2)^2 < 0.9999.
  Fixture f = chain_fixture(0.9, 0.9999, {{"h1", 0.99}, {"h2", 0.99}});
  const auto result =
      synthesize(*f.spec, *f.arch, f.bindings, strategy(GetParam()));
  EXPECT_EQ(result.status().code(), StatusCode::kUnsatisfiable);
}

INSTANTIATE_TEST_SUITE_P(Strategies, BothStrategies,
                         ::testing::Values(
                             SynthesisOptions::Strategy::kExhaustive,
                             SynthesisOptions::Strategy::kGreedy));

TEST(Synthesis, GreedyMatchesExhaustiveCostOnSmallSystems) {
  for (const double lrc : {0.9, 0.95, 0.975, 0.985}) {
    Fixture f = chain_fixture(lrc, lrc, {{"h1", 0.99}, {"h2", 0.98}});
    const auto exhaustive = synthesize(
        *f.spec, *f.arch, f.bindings,
        strategy(SynthesisOptions::Strategy::kExhaustive));
    const auto greedy =
        synthesize(*f.spec, *f.arch, f.bindings,
                   strategy(SynthesisOptions::Strategy::kGreedy));
    ASSERT_TRUE(exhaustive.ok()) << exhaustive.status();
    ASSERT_TRUE(greedy.ok()) << greedy.status();
    EXPECT_EQ(greedy->replication_count, exhaustive->replication_count)
        << "lrc=" << lrc;
    EXPECT_LE(greedy->candidates_evaluated,
              exhaustive->candidates_evaluated);
  }
}

TEST(Synthesis, RediscoversPaperScenario1) {
  // 3TS with LRC 0.98 on u1/u2: the baseline single mapping fails; the
  // synthesizer must find a replicated mapping, as the paper does by hand.
  plant::ThreeTankScenario scenario;
  scenario.lrc_controls = 0.98;
  auto system = plant::make_three_tank_system(scenario);
  ASSERT_TRUE(system.ok());

  const auto result = synthesize(
      *system->specification, *system->architecture,
      {{"s1", "sensor1"}, {"s2", "sensor2"}},
      strategy(SynthesisOptions::Strategy::kGreedy));
  ASSERT_TRUE(result.ok()) << result.status();
  auto impl = impl::Implementation::Build(*system->specification,
                                          *system->architecture,
                                          result->config);
  ASSERT_TRUE(impl.ok());
  const auto report = reliability::analyze(*impl);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->reliable);
  // More than one replica per task on average is NOT needed: only the
  // support of u1/u2 must be reinforced.
  EXPECT_LE(result->replication_count, 10u);
  EXPECT_GE(result->replication_count, 7u);
}

TEST(Synthesis, MaxReplicationBoundIsRespected) {
  Fixture f = chain_fixture(0.9, 0.985, {{"h1", 0.99}, {"h2", 0.99}});
  SynthesisOptions options = strategy(SynthesisOptions::Strategy::kExhaustive);
  options.max_replication_per_task = 1;  // forbids the needed replication
  const auto result = synthesize(*f.spec, *f.arch, f.bindings, options);
  EXPECT_EQ(result.status().code(), StatusCode::kUnsatisfiable);

  SynthesisOptions bad = strategy(SynthesisOptions::Strategy::kGreedy);
  bad.max_replication_per_task = 0;
  EXPECT_EQ(synthesize(*f.spec, *f.arch, f.bindings, bad).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(Synthesis, RejectsUnsafeCycle) {
  spec::SpecificationConfig config;
  config.communicators = {comm("c", 10, 0.5)};
  config.tasks = {task("t", {{"c", 0}}, {{"c", 1}})};
  auto spec = std::make_unique<spec::Specification>(
      test::build_spec(std::move(config)));
  arch::ArchitectureConfig arch_config;
  arch_config.hosts = {{"h1", 0.99}};
  auto arch = std::make_unique<arch::Architecture>(
      std::move(arch::Architecture::Build(std::move(arch_config))).value());
  EXPECT_EQ(synthesize(*spec, *arch, {}).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(Synthesis, SchedulabilityConstraintLimitsReplication) {
  // Tight WCET: a second replica of t1 on the same (only schedulable) slot
  // is impossible; the synthesizer must respect schedulability when asked.
  Fixture f = chain_fixture(0.9, 0.985, {{"h1", 0.99}, {"h2", 0.99}});
  // Rebuild arch with WCET that fills the whole LET window.
  arch::ArchitectureConfig arch_config;
  arch_config.hosts = {{"h1", 0.99}, {"h2", 0.99}};
  arch_config.sensors = {{"s", 0.999}};
  arch_config.default_wcet = 8;  // windows are [0,10) and [10,20), wctt 1
  arch_config.default_wctt = 1;
  f.arch = std::make_unique<arch::Architecture>(
      std::move(arch::Architecture::Build(std::move(arch_config))).value());

  SynthesisOptions with_sched =
      strategy(SynthesisOptions::Strategy::kExhaustive);
  with_sched.require_schedulable = true;
  const auto result = synthesize(*f.spec, *f.arch, f.bindings, with_sched);
  // Replication across two hosts is fine (each host runs one replica);
  // whatever is returned must be schedulable AND reliable.
  ASSERT_TRUE(result.ok()) << result.status();
  auto impl = impl::Implementation::Build(*f.spec, *f.arch, result->config);
  ASSERT_TRUE(impl.ok());
  EXPECT_TRUE(reliability::analyze(*impl)->reliable);
  EXPECT_TRUE(sched::analyze_schedulability(*impl)->schedulable);
}

TEST(Synthesis, AllowedHostsRestrictTheSearch) {
  // Three hosts, but h1 is off-limits (the adaptive layer's repair path):
  // no synthesized mapping may use it.
  Fixture f = chain_fixture(0.9, 0.9,
                            {{"h1", 0.99}, {"h2", 0.99}, {"h3", 0.99}});
  SynthesisOptions options = strategy(SynthesisOptions::Strategy::kGreedy);
  options.allowed_hosts = {1, 2};
  const auto result = synthesize(*f.spec, *f.arch, f.bindings, options);
  ASSERT_TRUE(result.ok()) << result.status();
  for (const auto& mapping : result->config.task_mappings) {
    for (const std::string& host : mapping.hosts) {
      EXPECT_NE(host, "h1") << mapping.task;
    }
  }

  SynthesisOptions bad = strategy(SynthesisOptions::Strategy::kGreedy);
  bad.allowed_hosts = {7};
  EXPECT_EQ(synthesize(*f.spec, *f.arch, f.bindings, bad).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(Synthesis, RelaxedLrcsWaiveUnsatisfiableConstraints) {
  // 0.9999 on "out" is impossible on two 0.99 hosts; waiving it makes the
  // remaining constraints (mid at 0.9) trivially satisfiable.
  Fixture f = chain_fixture(0.9, 0.9999, {{"h1", 0.99}, {"h2", 0.99}});
  SynthesisOptions options = strategy(SynthesisOptions::Strategy::kGreedy);
  options.relaxed_lrcs = {*f.spec->find_communicator("out")};
  const auto result = synthesize(*f.spec, *f.arch, f.bindings, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->replication_count, 2u);
}

TEST(Synthesis, TaskRedundancyIsCarriedIntoTheConfig) {
  Fixture f = chain_fixture(0.9, 0.9, {{"h1", 0.99}, {"h2", 0.99}});
  SynthesisOptions options = strategy(SynthesisOptions::Strategy::kGreedy);
  options.task_redundancy = {{2, 0, 0}, {0, 0, 0}};
  const auto result = synthesize(*f.spec, *f.arch, f.bindings, options);
  ASSERT_TRUE(result.ok()) << result.status();
  const spec::TaskId t1 = *f.spec->find_task("t1");
  auto impl = impl::Implementation::Build(*f.spec, *f.arch, result->config);
  ASSERT_TRUE(impl.ok());
  EXPECT_EQ(impl->reexecutions(t1), 2);

  SynthesisOptions bad = strategy(SynthesisOptions::Strategy::kGreedy);
  bad.task_redundancy = {{1, 0, 0}};  // wrong arity: spec has two tasks
  EXPECT_EQ(synthesize(*f.spec, *f.arch, f.bindings, bad).status().code(),
            StatusCode::kInvalidArgument);
}

bool same_config(const impl::ImplementationConfig& a,
                 const impl::ImplementationConfig& b) {
  if (a.task_mappings.size() != b.task_mappings.size()) return false;
  for (std::size_t t = 0; t < a.task_mappings.size(); ++t) {
    if (a.task_mappings[t].task != b.task_mappings[t].task) return false;
    if (a.task_mappings[t].hosts != b.task_mappings[t].hosts) return false;
  }
  return true;
}

TEST(Synthesis, PinnedHostsAreHonoredEvenWhenSuboptimal) {
  // Easy LRCs: the optimum is one replica per task (cost 2). Pinning t1
  // to {h1, h2} must be respected verbatim, not optimized away.
  Fixture f = chain_fixture(0.9, 0.9, {{"h1", 0.99}, {"h2", 0.99}});
  for (const auto engine : {SynthesisOptions::Engine::kFast,
                            SynthesisOptions::Engine::kReference}) {
    for (const auto strat : {SynthesisOptions::Strategy::kGreedy,
                             SynthesisOptions::Strategy::kExhaustive}) {
      SynthesisOptions options = strategy(strat);
      options.engine = engine;
      options.pinned_hosts = {{0, 1}, {}};
      const auto result = synthesize(*f.spec, *f.arch, f.bindings, options);
      ASSERT_TRUE(result.ok()) << result.status();
      EXPECT_EQ(result->replication_count, 3u);
      bool found_t1 = false;
      for (const auto& mapping : result->config.task_mappings) {
        if (mapping.task != "t1") continue;
        found_t1 = true;
        EXPECT_EQ(mapping.hosts,
                  (std::vector<std::string>{"h1", "h2"}));
      }
      EXPECT_TRUE(found_t1);
    }
  }
}

TEST(Synthesis, PinnedHostsEnginesAgree) {
  // A pin plus a tight LRC on the free task: both engines, both
  // strategies, must land on the same cost (and the exhaustive pair on
  // the same mapping).
  Fixture f = chain_fixture(0.9, 0.985,
                            {{"h1", 0.99}, {"h2", 0.99}, {"h3", 0.98}});
  std::vector<std::size_t> costs;
  std::vector<impl::ImplementationConfig> exhaustive_configs;
  for (const auto engine : {SynthesisOptions::Engine::kFast,
                            SynthesisOptions::Engine::kReference}) {
    for (const auto strat : {SynthesisOptions::Strategy::kGreedy,
                             SynthesisOptions::Strategy::kExhaustive}) {
      SynthesisOptions options = strategy(strat);
      options.engine = engine;
      options.pinned_hosts = {{}, {1, 2}};
      const auto result = synthesize(*f.spec, *f.arch, f.bindings, options);
      ASSERT_TRUE(result.ok()) << result.status();
      costs.push_back(result->replication_count);
      if (strat == SynthesisOptions::Strategy::kExhaustive) {
        exhaustive_configs.push_back(result->config);
      }
    }
  }
  for (const std::size_t cost : costs) EXPECT_EQ(cost, costs[0]);
  ASSERT_EQ(exhaustive_configs.size(), 2u);
  ASSERT_EQ(exhaustive_configs[0].task_mappings.size(),
            exhaustive_configs[1].task_mappings.size());
  for (std::size_t i = 0; i < exhaustive_configs[0].task_mappings.size();
       ++i) {
    EXPECT_EQ(exhaustive_configs[0].task_mappings[i].task,
              exhaustive_configs[1].task_mappings[i].task);
    EXPECT_EQ(exhaustive_configs[0].task_mappings[i].hosts,
              exhaustive_configs[1].task_mappings[i].hosts);
  }
}

TEST(Synthesis, PinnedHostsValidation) {
  Fixture f = chain_fixture(0.9, 0.9, {{"h1", 0.99}, {"h2", 0.99}});

  SynthesisOptions wrong_size;
  wrong_size.pinned_hosts = {{0}};  // 1 entry for a 2-task spec
  const auto sized = synthesize(*f.spec, *f.arch, f.bindings, wrong_size);
  EXPECT_EQ(sized.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(sized.status().message().find(
                "pinned_hosts must be empty or give one (possibly empty) "
                "host set per task"),
            std::string::npos)
      << sized.status();

  SynthesisOptions outside;
  outside.allowed_hosts = {0};
  outside.pinned_hosts = {{1}, {}};  // h2 is excluded by allowed_hosts
  const auto escaped = synthesize(*f.spec, *f.arch, f.bindings, outside);
  EXPECT_EQ(escaped.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(escaped.status().message().find(
                "pinned_hosts references host 1 outside the usable "
                "(allowed) host set"),
            std::string::npos)
      << escaped.status();

  SynthesisOptions too_big;
  too_big.max_replication_per_task = 1;
  too_big.pinned_hosts = {{0, 1}, {}};
  const auto oversized = synthesize(*f.spec, *f.arch, f.bindings, too_big);
  EXPECT_EQ(oversized.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(oversized.status().message().find(
                "a pinned_hosts set exceeds max_replication_per_task"),
            std::string::npos)
      << oversized.status();
}

TEST(FastEngine, MatchesReferenceOnRandomWorkloads) {
  // The fast engine must agree with the reference engine verdict-for-
  // verdict: same mapping for exhaustive, same mapping for greedy, same
  // error code when unsatisfiable.
  gen::WorkloadOptions workload_options;
  workload_options.max_layers = 2;  // keeps reference exhaustive tractable
  workload_options.max_tasks_per_layer = 2;
  workload_options.max_hosts = 3;
  workload_options.min_lrc = 0.4;
  workload_options.max_lrc = 0.95;  // tight enough to force replication
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    Xoshiro256 rng(seed);
    const auto workload = gen::random_workload(rng, workload_options);
    ASSERT_TRUE(workload.ok()) << workload.status();
    std::vector<impl::ImplementationConfig::SensorBinding> bindings =
        workload->implementation_config.sensor_bindings;
    for (const auto s : {SynthesisOptions::Strategy::kExhaustive,
                         SynthesisOptions::Strategy::kGreedy}) {
      SynthesisOptions fast = strategy(s);
      SynthesisOptions reference = strategy(s);
      reference.engine = SynthesisOptions::Engine::kReference;
      const auto fast_result = synthesize(*workload->specification,
                                          *workload->architecture, bindings,
                                          fast);
      const auto ref_result = synthesize(*workload->specification,
                                         *workload->architecture, bindings,
                                         reference);
      ASSERT_EQ(fast_result.ok(), ref_result.ok())
          << "seed " << seed << ": fast " << fast_result.status()
          << " vs reference " << ref_result.status();
      if (!fast_result.ok()) {
        EXPECT_EQ(fast_result.status().code(), ref_result.status().code())
            << "seed " << seed;
        continue;
      }
      EXPECT_EQ(fast_result->replication_count,
                ref_result->replication_count)
          << "seed " << seed;
      EXPECT_TRUE(same_config(fast_result->config, ref_result->config))
          << "seed " << seed;
    }
  }
}

TEST(FastEngine, ParallelExhaustiveIsDeterministic) {
  // Same mapping and cost for every thread count, equal to the
  // single-threaded (and reference) result.
  Fixture f = chain_fixture(0.95, 0.985,
                            {{"h1", 0.99}, {"h2", 0.98}, {"h3", 0.97}});
  SynthesisOptions reference =
      strategy(SynthesisOptions::Strategy::kExhaustive);
  reference.engine = SynthesisOptions::Engine::kReference;
  const auto baseline = synthesize(*f.spec, *f.arch, f.bindings, reference);
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  for (const unsigned threads : {1u, 2u, 8u}) {
    SynthesisOptions options =
        strategy(SynthesisOptions::Strategy::kExhaustive);
    options.threads = threads;
    const auto result = synthesize(*f.spec, *f.arch, f.bindings, options);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->replication_count, baseline->replication_count)
        << threads << " threads";
    EXPECT_TRUE(same_config(result->config, baseline->config))
        << threads << " threads";
  }
}

TEST(FastEngine, ExhaustivePrunesMostOfTheSearchTree) {
  // On the paper's 3TS system the branch-and-bound fast path must reach
  // the same mapping with a fraction of the reference engine's full
  // builds — the >= 10x bar BENCH_synthesis.json tracks.
  plant::ThreeTankScenario scenario;
  scenario.lrc_controls = 0.98;
  auto system = plant::make_three_tank_system(scenario);
  ASSERT_TRUE(system.ok());
  const std::vector<impl::ImplementationConfig::SensorBinding> bindings = {
      {"s1", "sensor1"}, {"s2", "sensor2"}};

  SynthesisOptions fast = strategy(SynthesisOptions::Strategy::kExhaustive);
  SynthesisOptions reference =
      strategy(SynthesisOptions::Strategy::kExhaustive);
  reference.engine = SynthesisOptions::Engine::kReference;
  const auto fast_result = synthesize(*system->specification,
                                      *system->architecture, bindings, fast);
  const auto ref_result = synthesize(*system->specification,
                                     *system->architecture, bindings,
                                     reference);
  ASSERT_TRUE(fast_result.ok()) << fast_result.status();
  ASSERT_TRUE(ref_result.ok()) << ref_result.status();
  EXPECT_TRUE(same_config(fast_result->config, ref_result->config));
  EXPECT_GT(fast_result->subtrees_pruned, 0);
  // "Full analyze-equivalent evaluations": the reference engine does one
  // per candidate; the fast engine only gates surviving leaves.
  EXPECT_GE(ref_result->full_evals, 10 * fast_result->full_evals);
}

TEST(FastEngine, ExhaustiveHostCountGuard) {
  // >= 2^21 subsets per task would hang; the limit is a clean error (and
  // the subset mask is 64-bit, so no UB on the way there). Greedy has no
  // such limit: 40 hosts are fine.
  std::vector<arch::Host> many_hosts;
  for (int h = 0; h < 40; ++h) {
    many_hosts.push_back({"h" + std::to_string(h), 0.99});
  }
  Fixture f = chain_fixture(0.9, 0.9, many_hosts);

  SynthesisOptions exhaustive =
      strategy(SynthesisOptions::Strategy::kExhaustive);
  const auto rejected = synthesize(*f.spec, *f.arch, f.bindings, exhaustive);
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);

  // Restricting to kMaxExhaustiveHosts usable hosts is accepted.
  SynthesisOptions capped = strategy(SynthesisOptions::Strategy::kExhaustive);
  for (arch::HostId h = 0; h < kMaxExhaustiveHosts; ++h) {
    capped.allowed_hosts.push_back(h);
  }
  capped.max_replication_per_task = 1;
  EXPECT_TRUE(synthesize(*f.spec, *f.arch, f.bindings, capped).ok());

  const auto greedy_result = synthesize(
      *f.spec, *f.arch, f.bindings,
      strategy(SynthesisOptions::Strategy::kGreedy));
  ASSERT_TRUE(greedy_result.ok()) << greedy_result.status();
  EXPECT_EQ(greedy_result->replication_count, 2u);
}

TEST(FastEngine, CountersAreConsistent) {
  Fixture f = chain_fixture(0.95, 0.985, {{"h1", 0.99}, {"h2", 0.98}});
  for (const auto s : {SynthesisOptions::Strategy::kExhaustive,
                       SynthesisOptions::Strategy::kGreedy}) {
    const auto result = synthesize(*f.spec, *f.arch, f.bindings, strategy(s));
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->candidates_evaluated,
              result->full_evals + result->incremental_evals);
    EXPECT_GT(result->incremental_evals, 0);
  }
}

}  // namespace
}  // namespace lrt::synth
