// Unit tests for src/plant: the RK4 integrator, three-tank dynamics,
// controllers, and the closed-loop 3TS environment.
#include <gtest/gtest.h>

#include <cmath>

#include "plant/ode.h"
#include "plant/three_tank.h"
#include "plant/three_tank_system.h"
#include "sim/runtime.h"

namespace lrt::plant {
namespace {

// --- RK4 ---

TEST(Rk4, ExponentialDecay) {
  // dx/dt = -x, x(0) = 1 => x(1) = e^-1; RK4 at dt = 0.1 is ~1e-6 accurate.
  std::array<double, 1> state{1.0};
  const auto deriv = [](const std::array<double, 1>& x) {
    return std::array<double, 1>{-x[0]};
  };
  for (int i = 0; i < 10; ++i) state = rk4_step<1>(state, deriv, 0.1);
  EXPECT_NEAR(state[0], std::exp(-1.0), 1e-6);
}

TEST(Rk4, HarmonicOscillatorConservesEnergy) {
  // x'' = -x as a 2D system; energy x^2 + v^2 stays ~1 over one period.
  std::array<double, 2> state{1.0, 0.0};
  const auto deriv = [](const std::array<double, 2>& s) {
    return std::array<double, 2>{s[1], -s[0]};
  };
  const double dt = 0.01;
  const int steps = static_cast<int>(2.0 * M_PI / dt);
  for (int i = 0; i < steps; ++i) state = rk4_step<2>(state, deriv, dt);
  EXPECT_NEAR(state[0] * state[0] + state[1] * state[1], 1.0, 1e-6);
}

// --- plant dynamics ---

TEST(ThreeTankPlant, StartsEmptyAndFillsUnderPumping) {
  ThreeTankPlant plant;
  EXPECT_DOUBLE_EQ(plant.level(1), 0.0);
  plant.set_pump(1, 1.0);
  plant.step(60.0);
  EXPECT_GT(plant.level(1), 0.05);
  // Water flows through tank3 toward tank2.
  EXPECT_GT(plant.level(3), 0.0);
  EXPECT_GE(plant.level(1), plant.level(3));
}

TEST(ThreeTankPlant, DrainsWithoutPumping) {
  ThreeTankPlant plant;
  plant.set_pump(1, 1.0);
  plant.step(120.0);
  const double filled = plant.level(1);
  plant.set_pump(1, 0.0);
  plant.step(300.0);
  EXPECT_LT(plant.level(1), filled);
}

TEST(ThreeTankPlant, LevelsStayWithinBounds) {
  ThreeTankPlant plant;
  plant.set_pump(1, 1.0);
  plant.set_pump(2, 1.0);
  plant.step(3600.0);
  for (int tank = 1; tank <= 3; ++tank) {
    EXPECT_GE(plant.level(tank), 0.0);
    EXPECT_LE(plant.level(tank), ThreeTankParams{}.max_level);
  }
}

TEST(ThreeTankPlant, PerturbationLowersSteadyState) {
  ThreeTankPlant nominal;
  nominal.set_pump(1, 0.5);
  nominal.step(1200.0);

  ThreeTankPlant perturbed;
  perturbed.set_pump(1, 0.5);
  perturbed.set_perturbation(1, 1.0);  // extra evacuation tap open
  perturbed.step(1200.0);

  EXPECT_LT(perturbed.level(1), nominal.level(1));
}

TEST(ThreeTankPlant, PumpCommandsAreClamped) {
  ThreeTankPlant plant;
  plant.set_pump(1, 2.5);
  EXPECT_DOUBLE_EQ(plant.pump(1), 1.0);
  plant.set_pump(1, -1.0);
  EXPECT_DOUBLE_EQ(plant.pump(1), 0.0);
}

// --- controllers ---

TEST(PiController, ProportionalResponseClamped) {
  const PiController pi(25.0, 0.0, 0.4, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(pi.proportional(0.4), 0.0);   // at setpoint
  EXPECT_DOUBLE_EQ(pi.proportional(0.0), 1.0);   // far below: saturates
  EXPECT_NEAR(pi.proportional(0.39), 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(pi.proportional(0.5), 0.0);   // above: clamp at 0
}

TEST(PiController, IntegralActionRemovesOffset) {
  // Plant: dx/dt = u - 0.5 (constant load); P alone leaves an offset,
  // PI drives x to the setpoint.
  const double setpoint = 1.0;
  PiController pi(2.0, 0.5, setpoint, 0.0, 2.0);
  double x = 0.0;
  const double dt = 0.05;
  for (int i = 0; i < 4000; ++i) {
    const double u = pi.update(x, dt);
    x += (u - 0.5) * dt;
  }
  EXPECT_NEAR(x, setpoint, 0.01);
}

TEST(PiController, ClosedLoopRegulatesTankLevel) {
  ThreeTankPlant plant;
  PiController pi(25.0, 0.05, 0.4, 0.0, 1.0);
  // 0.5 s control period for 2000 s.
  for (int i = 0; i < 4000; ++i) {
    plant.set_pump(1, pi.update(plant.level(1), 0.5));
    plant.step(0.5);
  }
  EXPECT_NEAR(plant.level(1), 0.4, 0.02);
}

// --- scenario construction sanity ---

TEST(ThreeTankSystem, BaselineShape) {
  auto system = make_three_tank_system({});
  ASSERT_TRUE(system.ok());
  const auto& spec = *system->specification;
  EXPECT_EQ(spec.tasks().size(), 6u);
  EXPECT_EQ(spec.communicators().size(), 8u);
  EXPECT_EQ(spec.hyperperiod(), 500);
  EXPECT_EQ(system->implementation->replication_count(), 6u);
}

TEST(ThreeTankSystem, ReplicatedSensorShape) {
  ThreeTankScenario scenario;
  scenario.variant = ThreeTankVariant::kReplicatedSensors;
  auto system = make_three_tank_system(scenario);
  ASSERT_TRUE(system.ok());
  EXPECT_EQ(system->specification->communicators().size(), 10u);
  EXPECT_EQ(system->architecture->sensors().size(), 4u);
}

TEST(ThreeTankSystem, ReplicatedTaskShape) {
  ThreeTankScenario scenario;
  scenario.variant = ThreeTankVariant::kReplicatedTasks;
  auto system = make_three_tank_system(scenario);
  ASSERT_TRUE(system.ok());
  EXPECT_EQ(system->implementation->replication_count(), 8u);
}

// --- closed loop through the distributed runtime (mini E5) ---

TEST(ThreeTankEnvironment, ClosedLoopThroughRuntimeSettles) {
  auto system = make_three_tank_system({});
  ASSERT_TRUE(system.ok());
  ThreeTankEnvironment env({}, 0.40, 0.30, /*tick_seconds=*/1e-3,
                           /*warmup_seconds=*/400.0);
  sim::SimulationOptions options;
  options.periods = 1200;  // 600 s at 0.5 s per period
  options.actuator_comms = {"u1", "u2"};
  options.faults.inject_invocation_faults = false;
  options.faults.inject_sensor_faults = false;
  const auto result = sim::simulate(*system->implementation, env, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->vote_divergences, 0);
  const ControlMetrics metrics = env.metrics();
  ASSERT_GT(metrics.samples, 0);
  // The proportional controller holds the levels near the setpoints.
  EXPECT_LT(metrics.rms_error1, 0.02) << "rms1=" << metrics.rms_error1;
  EXPECT_LT(metrics.rms_error2, 0.02) << "rms2=" << metrics.rms_error2;
}

TEST(ThreeTankEnvironment, HoldsPumpCommandOnBottom) {
  ThreeTankEnvironment env({}, 0.4, 0.3);
  env.write_actuator("u1", 0, spec::Value::real(0.7));
  EXPECT_DOUBLE_EQ(env.plant().pump(1), 0.7);
  env.write_actuator("u1", 100, spec::Value::bottom());
  EXPECT_DOUBLE_EQ(env.plant().pump(1), 0.7);  // held
}

TEST(ThreeTankEnvironment, SensorsReadTankLevels) {
  ThreeTankEnvironment env({}, 0.4, 0.3);
  env.plant().set_pump(1, 1.0);
  env.plant().step(60.0);
  const double level = env.plant().level(1);
  EXPECT_DOUBLE_EQ(env.read_sensor("s1", 0).as_real(), level);
  EXPECT_DOUBLE_EQ(env.read_sensor("s1a", 0).as_real(), level);
  EXPECT_DOUBLE_EQ(env.read_sensor("s1b", 0).as_real(), level);
  EXPECT_DOUBLE_EQ(env.read_sensor("s2", 0).as_real(), env.plant().level(2));
}

}  // namespace
}  // namespace lrt::plant
