// Tests for the JSON writer and the report exporters.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "plant/three_tank_system.h"
#include "reliability/analysis.h"
#include "sched/schedulability.h"
#include "sim/runtime.h"
#include "support/json.h"

namespace lrt {
namespace {

TEST(JsonWriter, Primitives) {
  JsonWriter json;
  json.begin_object();
  json.key("s");
  json.value("text");
  json.key("d");
  json.value(0.5);
  json.key("i");
  json.value(std::int64_t{-7});
  json.key("b");
  json.value(true);
  json.key("n");
  json.null();
  json.end_object();
  EXPECT_EQ(std::move(json).str(),
            R"({"s":"text","d":0.5,"i":-7,"b":true,"n":null})");
}

TEST(JsonWriter, NestedContainers) {
  JsonWriter json;
  json.begin_object();
  json.key("list");
  json.begin_array();
  json.value(1);
  json.begin_object();
  json.key("x");
  json.value(2);
  json.end_object();
  json.begin_array();
  json.end_array();
  json.end_array();
  json.end_object();
  EXPECT_EQ(std::move(json).str(), R"({"list":[1,{"x":2},[]]})");
}

TEST(JsonWriter, EscapesStrings) {
  JsonWriter json;
  json.begin_array();
  json.value("a\"b\\c\nd\te");
  json.value(std::string_view("\x01", 1));
  json.end_array();
  EXPECT_EQ(std::move(json).str(), "[\"a\\\"b\\\\c\\nd\\te\",\"\\u0001\"]");
}

TEST(JsonWriter, NonFiniteNumbersBecomeNull) {
  JsonWriter json;
  json.begin_array();
  json.value(std::numeric_limits<double>::infinity());
  json.value(std::nan(""));
  json.end_array();
  EXPECT_EQ(std::move(json).str(), "[null,null]");
}

TEST(JsonExport, ReliabilityReport) {
  auto system = plant::make_three_tank_system({});
  const auto report = reliability::analyze(*system->implementation);
  const std::string json = reliability::to_json(*report);
  EXPECT_NE(json.find(R"("reliable":true)"), std::string::npos) << json;
  EXPECT_NE(json.find(R"("name":"u1")"), std::string::npos);
  EXPECT_NE(json.find(R"("srg":0.970299)"), std::string::npos);
  EXPECT_NE(json.find(R"("memory_free":true)"), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(JsonExport, SchedulabilityReport) {
  auto system = plant::make_three_tank_system({});
  const auto report = sched::analyze_schedulability(*system->implementation);
  const std::string json = sched::to_json(*report, *system->implementation);
  EXPECT_NE(json.find(R"("schedulable":true)"), std::string::npos);
  EXPECT_NE(json.find(R"("host":"h3")"), std::string::npos);
  EXPECT_NE(json.find(R"("task":"read1")"), std::string::npos);
  EXPECT_NE(json.find(R"("start":)"), std::string::npos);
}

TEST(JsonExport, SimulationResult) {
  auto system = plant::make_three_tank_system({});
  sim::NullEnvironment env;
  sim::SimulationOptions options;
  options.periods = 1000;
  options.actuator_comms = {"u1", "u2"};
  const auto result = sim::simulate(*system->implementation, env, options);
  const std::string json = sim::to_json(*result);
  EXPECT_NE(json.find(R"("periods":1000)"), std::string::npos);
  EXPECT_NE(json.find(R"("name":"u1")"), std::string::npos);
  EXPECT_NE(json.find(R"("ci_low":)"), std::string::npos);
  EXPECT_NE(json.find(R"("deadline_misses":0)"), std::string::npos);
}

}  // namespace
}  // namespace lrt
