// Unit tests for src/impl: replication-mapping validation and sensor
// bindings.
#include <gtest/gtest.h>

#include "impl/implementation.h"
#include "tests/test_util.h"

namespace lrt::impl {
namespace {

using test::comm;
using test::task;

struct Fixture {
  spec::Specification spec;
  arch::Architecture arch;
};

Fixture make_fixture() {
  spec::SpecificationConfig spec_config;
  spec_config.communicators = {comm("in", 10), comm("mid", 10),
                               comm("out", 10)};
  spec_config.tasks = {task("t1", {{"in", 0}}, {{"mid", 1}}),
                       task("t2", {{"mid", 1}}, {{"out", 2}})};

  arch::ArchitectureConfig arch_config;
  arch_config.hosts = {{"h1", 0.99}, {"h2", 0.95}};
  arch_config.sensors = {{"s", 0.9}};

  auto arch_result = arch::Architecture::Build(std::move(arch_config));
  EXPECT_TRUE(arch_result.ok());
  return {test::build_spec(std::move(spec_config)),
          std::move(arch_result).value()};
}

ImplementationConfig valid_config() {
  ImplementationConfig config;
  config.task_mappings = {{"t1", {"h1"}}, {"t2", {"h1", "h2"}}};
  config.sensor_bindings = {{"in", "s"}};
  return config;
}

TEST(Implementation, BuildsValidMapping) {
  const Fixture f = make_fixture();
  const auto impl = Implementation::Build(f.spec, f.arch, valid_config());
  ASSERT_TRUE(impl.ok());
  EXPECT_EQ(impl->hosts_for(*f.spec.find_task("t1")).size(), 1u);
  EXPECT_EQ(impl->hosts_for(*f.spec.find_task("t2")).size(), 2u);
  EXPECT_EQ(impl->replication_count(), 3u);
  const spec::CommId in = *f.spec.find_communicator("in");
  EXPECT_EQ(impl->sensor_for(in), *f.arch.find_sensor("s"));
}

TEST(Implementation, RejectsUnmappedTask) {
  const Fixture f = make_fixture();
  ImplementationConfig config;
  config.task_mappings = {{"t1", {"h1"}}};
  config.sensor_bindings = {{"in", "s"}};
  EXPECT_EQ(Implementation::Build(f.spec, f.arch, std::move(config))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(Implementation, RejectsUnknownTaskOrHost) {
  const Fixture f = make_fixture();
  ImplementationConfig config = valid_config();
  config.task_mappings.push_back({"ghost", {"h1"}});
  EXPECT_EQ(Implementation::Build(f.spec, f.arch, std::move(config))
                .status()
                .code(),
            StatusCode::kNotFound);

  ImplementationConfig config2 = valid_config();
  config2.task_mappings[0].hosts = {"ghost"};
  EXPECT_EQ(Implementation::Build(f.spec, f.arch, std::move(config2))
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(Implementation, RejectsEmptyHostSet) {
  const Fixture f = make_fixture();
  ImplementationConfig config = valid_config();
  config.task_mappings[0].hosts = {};
  EXPECT_EQ(Implementation::Build(f.spec, f.arch, std::move(config))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(Implementation, RejectsDuplicateHostInSet) {
  const Fixture f = make_fixture();
  ImplementationConfig config = valid_config();
  config.task_mappings[1].hosts = {"h1", "h1"};
  EXPECT_FALSE(Implementation::Build(f.spec, f.arch, std::move(config)).ok());
}

TEST(Implementation, RejectsDoubleMapping) {
  const Fixture f = make_fixture();
  ImplementationConfig config = valid_config();
  config.task_mappings.push_back({"t1", {"h2"}});
  EXPECT_EQ(Implementation::Build(f.spec, f.arch, std::move(config))
                .status()
                .code(),
            StatusCode::kAlreadyExists);
}

TEST(Implementation, RejectsMissingSensorBinding) {
  const Fixture f = make_fixture();
  ImplementationConfig config;
  config.task_mappings = {{"t1", {"h1"}}, {"t2", {"h2"}}};
  EXPECT_EQ(Implementation::Build(f.spec, f.arch, std::move(config))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(Implementation, RejectsSensorOnWrittenCommunicator) {
  const Fixture f = make_fixture();
  ImplementationConfig config = valid_config();
  config.sensor_bindings.push_back({"mid", "s"});
  EXPECT_EQ(Implementation::Build(f.spec, f.arch, std::move(config))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(Implementation, RejectsUnknownSensor) {
  const Fixture f = make_fixture();
  ImplementationConfig config = valid_config();
  config.sensor_bindings = {{"in", "ghost"}};
  EXPECT_EQ(Implementation::Build(f.spec, f.arch, std::move(config))
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(Implementation, RejectsDoubleSensorBinding) {
  const Fixture f = make_fixture();
  ImplementationConfig config = valid_config();
  config.sensor_bindings.push_back({"in", "s"});
  EXPECT_EQ(Implementation::Build(f.spec, f.arch, std::move(config))
                .status()
                .code(),
            StatusCode::kAlreadyExists);
}

TEST(Implementation, HostsAreSortedAndDeduplicated) {
  const Fixture f = make_fixture();
  ImplementationConfig config = valid_config();
  config.task_mappings[1].hosts = {"h2", "h1"};
  const auto impl = Implementation::Build(f.spec, f.arch, std::move(config));
  ASSERT_TRUE(impl.ok());
  const auto& hosts = impl->hosts_for(*f.spec.find_task("t2"));
  ASSERT_EQ(hosts.size(), 2u);
  EXPECT_LT(hosts[0], hosts[1]);
}

TEST(Implementation, ToConfigRoundTrips) {
  const Fixture f = make_fixture();
  ImplementationConfig config = valid_config();
  config.name = "round-trip";
  config.task_mappings[0].reexecutions = 2;
  config.task_mappings[0].checkpoints = 1;
  config.task_mappings[0].checkpoint_overhead = 3;
  const auto original =
      Implementation::Build(f.spec, f.arch, std::move(config));
  ASSERT_TRUE(original.ok());

  const ImplementationConfig reconstructed = original->to_config();
  EXPECT_EQ(reconstructed.name, "round-trip");
  const auto rebuilt =
      Implementation::Build(f.spec, f.arch, reconstructed);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  for (const char* name : {"t1", "t2"}) {
    const spec::TaskId t = *f.spec.find_task(name);
    EXPECT_EQ(rebuilt->hosts_for(t), original->hosts_for(t)) << name;
    EXPECT_EQ(rebuilt->reexecutions(t), original->reexecutions(t)) << name;
    EXPECT_EQ(rebuilt->checkpoints(t), original->checkpoints(t)) << name;
    EXPECT_EQ(rebuilt->checkpoint_overhead(t),
              original->checkpoint_overhead(t))
        << name;
  }
  EXPECT_EQ(rebuilt->sensor_for(*f.spec.find_communicator("in")),
            original->sensor_for(*f.spec.find_communicator("in")));
}

}  // namespace
}  // namespace lrt::impl
