// Unit tests for src/arch: architecture validation and WCET/WCTT lookup.
#include <gtest/gtest.h>

#include "arch/architecture.h"

namespace lrt::arch {
namespace {

ArchitectureConfig basic_config() {
  ArchitectureConfig config;
  config.hosts = {{"h1", 0.99}, {"h2", 0.95}};
  config.sensors = {{"s1", 0.9}};
  return config;
}

TEST(Architecture, BuildsAndLooksUp) {
  const auto arch = Architecture::Build(basic_config());
  ASSERT_TRUE(arch.ok());
  EXPECT_EQ(arch->hosts().size(), 2u);
  EXPECT_EQ(arch->sensors().size(), 1u);
  ASSERT_TRUE(arch->find_host("h2").has_value());
  EXPECT_DOUBLE_EQ(arch->host(*arch->find_host("h2")).reliability, 0.95);
  ASSERT_TRUE(arch->find_sensor("s1").has_value());
  EXPECT_FALSE(arch->find_host("nope").has_value());
  EXPECT_FALSE(arch->find_sensor("nope").has_value());
}

TEST(Architecture, RejectsNoHosts) {
  ArchitectureConfig config;
  EXPECT_EQ(Architecture::Build(std::move(config)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(Architecture, RejectsBadReliability) {
  ArchitectureConfig config = basic_config();
  config.hosts.push_back({"bad", 0.0});
  EXPECT_FALSE(Architecture::Build(std::move(config)).ok());

  ArchitectureConfig config2 = basic_config();
  config2.sensors.push_back({"bad", 1.5});
  EXPECT_FALSE(Architecture::Build(std::move(config2)).ok());
}

TEST(Architecture, RejectsDuplicates) {
  ArchitectureConfig config = basic_config();
  config.hosts.push_back({"h1", 0.5});
  EXPECT_EQ(Architecture::Build(std::move(config)).status().code(),
            StatusCode::kAlreadyExists);

  ArchitectureConfig config2 = basic_config();
  config2.sensors.push_back({"s1", 0.5});
  EXPECT_EQ(Architecture::Build(std::move(config2)).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(Architecture, RejectsInvalidNames) {
  ArchitectureConfig config;
  config.hosts = {{"bad name", 0.9}};
  EXPECT_FALSE(Architecture::Build(std::move(config)).ok());
}

TEST(Architecture, ExplicitMetricsOverrideDefaults) {
  ArchitectureConfig config = basic_config();
  config.default_wcet = 7;
  config.default_wctt = 3;
  config.metrics = {{"t", "h1", 20, 4}};
  const auto arch = Architecture::Build(std::move(config));
  ASSERT_TRUE(arch.ok());
  const HostId h1 = *arch->find_host("h1");
  const HostId h2 = *arch->find_host("h2");
  EXPECT_EQ(*arch->wcet("t", h1), 20);
  EXPECT_EQ(*arch->wctt("t", h1), 4);
  EXPECT_EQ(*arch->wcet("t", h2), 7);   // falls back to default
  EXPECT_EQ(*arch->wcet("other", h1), 7);
  EXPECT_EQ(*arch->wctt("other", h2), 3);
}

TEST(Architecture, MissingMetricWithoutDefaultIsError) {
  ArchitectureConfig config = basic_config();
  config.default_wcet = std::nullopt;
  config.default_wctt = std::nullopt;
  config.metrics = {{"t", "h1", 20, 4}};
  const auto arch = Architecture::Build(std::move(config));
  ASSERT_TRUE(arch.ok());
  EXPECT_TRUE(arch->wcet("t", *arch->find_host("h1")).ok());
  EXPECT_EQ(arch->wcet("t", *arch->find_host("h2")).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(arch->wcet("unknown", *arch->find_host("h1")).status().code(),
            StatusCode::kNotFound);
}

TEST(Architecture, RejectsMetricForUnknownHost) {
  ArchitectureConfig config = basic_config();
  config.metrics = {{"t", "ghost", 10, 1}};
  EXPECT_EQ(Architecture::Build(std::move(config)).status().code(),
            StatusCode::kNotFound);
}

TEST(Architecture, RejectsNonPositiveMetric) {
  ArchitectureConfig config = basic_config();
  config.metrics = {{"t", "h1", 0, 1}};
  EXPECT_FALSE(Architecture::Build(std::move(config)).ok());
}

TEST(Architecture, RejectsDuplicateMetricEntry) {
  ArchitectureConfig config = basic_config();
  config.metrics = {{"t", "h1", 10, 1}, {"t", "h1", 12, 2}};
  EXPECT_EQ(Architecture::Build(std::move(config)).status().code(),
            StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace lrt::arch
