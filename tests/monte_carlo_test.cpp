// MonteCarloRunner: thread-count invariance, CI shrinkage, validation
// flags, and the underlying ThreadPool.
#include "sim/monte_carlo.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <vector>

#include "plant/three_tank_system.h"
#include "reliability/analysis.h"
#include "support/thread_pool.h"
#include "tests/test_util.h"

namespace lrt::sim {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  constexpr std::int64_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(kCount, [&](std::int64_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<std::int64_t> order;
  pool.parallel_for(5, [&](std::int64_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::int64_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ZeroAndNegativeCountsAreNoOps) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(0, [&](std::int64_t) { ++calls; });
  pool.parallel_for(-3, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(16,
                                 [&](std::int64_t i) {
                                   if (i == 7) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // The pool survives a throwing job.
  std::atomic<int> calls{0};
  pool.parallel_for(8, [&](std::int64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 8);
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::int64_t> sum{0};
    pool.parallel_for(100, [&](std::int64_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 4950);
  }
}

MonteCarloOptions fast_options(std::int64_t trials, std::int64_t periods,
                               unsigned threads) {
  MonteCarloOptions options;
  options.trials = trials;
  options.simulation.periods = periods;
  options.seed = 42;
  options.threads = threads;
  return options;
}

TEST(MonteCarlo, RejectsNonPositiveTrialCount) {
  auto system = test::single_host_system(test::chain_spec_config(1));
  MonteCarloRunner runner(fast_options(0, 10, 1));
  const auto report = runner.run(*system.impl);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(MonteCarlo, AggregatesAreThreadCountInvariant) {
  auto system = test::single_host_system(test::chain_spec_config(2), 0.9,
                                         0.8);
  std::vector<ValidationReport> reports;
  for (const unsigned threads : {1u, 2u, 8u}) {
    MonteCarloRunner runner(fast_options(24, 200, threads));
    auto report = runner.run(*system.impl);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_EQ(report->threads, threads);
    reports.push_back(std::move(report).value());
  }
  for (std::size_t i = 1; i < reports.size(); ++i) {
    const ValidationReport& a = reports[0];
    const ValidationReport& b = reports[i];
    EXPECT_EQ(a.invocations, b.invocations);
    EXPECT_EQ(a.invocation_failures, b.invocation_failures);
    EXPECT_EQ(a.committed_updates, b.committed_updates);
    ASSERT_EQ(a.communicators.size(), b.communicators.size());
    for (std::size_t c = 0; c < a.communicators.size(); ++c) {
      EXPECT_EQ(a.communicators[c].updates, b.communicators[c].updates);
      EXPECT_EQ(a.communicators[c].reliable_updates,
                b.communicators[c].reliable_updates);
      // Bit-identical, not merely close: the reduction order is fixed.
      EXPECT_EQ(a.communicators[c].empirical, b.communicators[c].empirical);
      EXPECT_EQ(a.communicators[c].mean_limit_average,
                b.communicators[c].mean_limit_average);
      EXPECT_EQ(a.communicators[c].stddev_limit_average,
                b.communicators[c].stddev_limit_average);
      EXPECT_EQ(a.communicators[c].interval.low,
                b.communicators[c].interval.low);
      EXPECT_EQ(a.communicators[c].interval.high,
                b.communicators[c].interval.high);
    }
  }
}

TEST(MonteCarlo, SameSeedReproducesDifferentSeedPerturbs) {
  auto system = test::single_host_system(test::chain_spec_config(1), 0.9,
                                         0.8);
  MonteCarloRunner runner(fast_options(8, 100, 2));
  const auto a = runner.run(*system.impl);
  const auto b = runner.run(*system.impl);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->find("c1")->reliable_updates, b->find("c1")->reliable_updates);

  auto other_options = fast_options(8, 100, 2);
  other_options.seed = 43;
  const auto c = MonteCarloRunner(other_options).run(*system.impl);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->find("c1")->reliable_updates, c->find("c1")->reliable_updates);
}

TEST(MonteCarlo, ConfidenceIntervalShrinksWithTrialCount) {
  auto system = test::single_host_system(test::chain_spec_config(1), 0.9,
                                         0.8);
  const auto width = [&](std::int64_t trials) {
    MonteCarloRunner runner(fast_options(trials, 100, 0));
    const auto report = runner.run(*system.impl);
    EXPECT_TRUE(report.ok()) << report.status();
    const CommAggregate* c1 = report->find("c1");
    EXPECT_NE(c1, nullptr);
    return c1->interval.high - c1->interval.low;
  };
  const double narrow = width(64);
  const double wide = width(4);
  EXPECT_LT(narrow, wide);
  // Pooling 16x the updates shrinks the Wilson interval roughly 4x.
  EXPECT_LT(narrow, 0.5 * wide);
}

TEST(MonteCarlo, EmpiricalMatchesAnalyticOnThreeTank) {
  auto system = plant::make_three_tank_system({});
  ASSERT_TRUE(system.ok());
  MonteCarloOptions options = fast_options(20, 400, 0);
  options.simulation.actuator_comms = {"u1", "u2"};
  MonteCarloRunner runner(options);
  const auto report = runner.run(*system->implementation);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->analysis_sound) << report->summary();
  EXPECT_TRUE(report->implementation_reliable) << report->summary();
  EXPECT_EQ(report->vote_divergences, 0);
  const CommAggregate* u1 = report->find("u1");
  ASSERT_NE(u1, nullptr);
  EXPECT_NEAR(u1->analytic_srg, 0.970299, 1e-9);
  // ~16k pooled updates: the 99% interval comfortably contains lambda_u1.
  EXPECT_TRUE(u1->interval.contains(u1->analytic_srg)) << report->summary();
  EXPECT_GT(report->trials_per_second, 0.0);
}

TEST(MonteCarlo, FlagsImplementationMissingItsLrc) {
  // lambda_c1 = 0.9 * 0.8 = 0.72 while mu_c1 = 0.99: the analysis already
  // rejects the implementation, and the empirical interval must agree
  // (meets_lrc false) without impugning the analysis (analysis_sound).
  auto system = test::single_host_system(
      test::chain_spec_config(1, 10, 0.99), 0.9, 0.8);
  const auto analytic = reliability::analyze(*system.impl);
  ASSERT_TRUE(analytic.ok());
  EXPECT_FALSE(analytic->reliable);

  MonteCarloRunner runner(fast_options(16, 400, 0));
  const auto report = runner.run(*system.impl);
  ASSERT_TRUE(report.ok()) << report.status();
  const CommAggregate* c1 = report->find("c1");
  ASSERT_NE(c1, nullptr);
  EXPECT_FALSE(c1->meets_lrc) << report->summary();
  EXPECT_TRUE(c1->analysis_sound) << report->summary();
  EXPECT_FALSE(report->implementation_reliable);
  EXPECT_TRUE(report->analysis_sound);
}

TEST(MonteCarlo, JsonReportIsWellFormedAndComplete) {
  auto system = test::single_host_system(test::chain_spec_config(1));
  MonteCarloRunner runner(fast_options(4, 50, 2));
  const auto report = runner.run(*system.impl);
  ASSERT_TRUE(report.ok());
  const std::string json = to_json(*report);
  for (const char* key :
       {"\"implementation\"", "\"trials\"", "\"seed\"", "\"threads\"",
        "\"analysis_sound\"", "\"implementation_reliable\"",
        "\"communicators\"", "\"empirical\"", "\"ci_low\"", "\"ci_high\"",
        "\"analytic_srg\"", "\"lrc\"", "\"trials_per_second\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

/// Poisons a trial: answering the first period boundary with an
/// implementation built on a foreign specification makes the runtime
/// reject the remap, so simulate() returns an error for that trial.
class PoisonMonitor final : public RuntimeMonitor {
 public:
  explicit PoisonMonitor(const impl::Implementation* foreign)
      : foreign_(foreign) {}
  const impl::Implementation* on_period_boundary(spec::Time) override {
    return foreign_;
  }

 private:
  const impl::Implementation* foreign_;
};

TEST(MonteCarlo, FailingTrialsDegradeGracefully) {
  auto system = test::single_host_system(test::chain_spec_config(1), 0.9,
                                         0.8);
  auto foreign = test::single_host_system(test::chain_spec_config(1));
  PoisonMonitor poison(foreign.impl.get());

  MonteCarloOptions options = fast_options(6, 50, 2);
  options.monitor_factory = [&](std::int64_t trial) -> RuntimeMonitor* {
    return (trial == 1 || trial == 4) ? &poison : nullptr;
  };
  MonteCarloRunner runner(options);
  const auto report = runner.run(*system.impl);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->failed_trials, 2);
  EXPECT_NE(report->first_trial_error.find("trial 1"), std::string::npos)
      << report->first_trial_error;
  EXPECT_NE(report->summary().find("degraded"), std::string::npos);

  // Aggregates pool over the 4 survivors only — identical to a clean
  // 4-trial campaign over the surviving seeds? Not in general (seeds
  // differ per trial index), but the pooled counts must match a manual
  // re-pool of the surviving trials; cheap invariant: every counter is
  // positive and updates match between report and communicators.
  EXPECT_GT(report->invocations, 0);
  const CommAggregate* c1 = report->find("c1");
  ASSERT_NE(c1, nullptr);
  EXPECT_GT(c1->updates, 0);
  // JSON carries the degradation fields.
  const std::string json = to_json(*report);
  EXPECT_NE(json.find("\"failed_trials\""), std::string::npos);
  EXPECT_NE(json.find("\"first_trial_error\""), std::string::npos);
}

TEST(MonteCarlo, FailedTrialsDoNotPerturbSurvivorAggregates) {
  // A campaign where trial 2 dies must pool exactly the outcomes of the
  // same trials run individually (per-trial seeds depend only on the
  // trial index, so survivors are unaffected by the failure).
  auto system = test::single_host_system(test::chain_spec_config(1), 0.9,
                                         0.8);
  auto foreign = test::single_host_system(test::chain_spec_config(1));
  PoisonMonitor poison(foreign.impl.get());

  MonteCarloOptions failing = fast_options(4, 80, 1);
  failing.monitor_factory = [&](std::int64_t trial) -> RuntimeMonitor* {
    return trial == 2 ? &poison : nullptr;
  };
  const auto degraded = MonteCarloRunner(failing).run(*system.impl);
  ASSERT_TRUE(degraded.ok());
  ASSERT_EQ(degraded->failed_trials, 1);

  // Per-trial seeds depend only on the trial index, so the survivors of
  // the degraded campaign ran exactly as in a clean one: the clean pooled
  // counts must equal the degraded counts plus trial 2's own contribution.
  const auto full = MonteCarloRunner(fast_options(4, 80, 1))
                        .run(*system.impl);
  ASSERT_TRUE(full.ok());
  MonteCarloOptions skip_all_but_2 = fast_options(4, 80, 1);
  skip_all_but_2.monitor_factory = [&](std::int64_t trial)
      -> RuntimeMonitor* { return trial == 2 ? nullptr : &poison; };
  const auto only_2 = MonteCarloRunner(skip_all_but_2).run(*system.impl);
  ASSERT_TRUE(only_2.ok());
  ASSERT_EQ(only_2->failed_trials, 3);
  EXPECT_EQ(degraded->find("c1")->updates + only_2->find("c1")->updates,
            full->find("c1")->updates);
  EXPECT_EQ(degraded->find("c1")->reliable_updates +
                only_2->find("c1")->reliable_updates,
            full->find("c1")->reliable_updates);
  EXPECT_EQ(degraded->trials, 4);
}

TEST(MonteCarlo, AllTrialsFailingIsAnError) {
  auto system = test::single_host_system(test::chain_spec_config(1));
  auto foreign = test::single_host_system(test::chain_spec_config(1));
  PoisonMonitor poison(foreign.impl.get());
  MonteCarloOptions options = fast_options(3, 20, 2);
  options.monitor_factory = [&](std::int64_t) -> RuntimeMonitor* {
    return &poison;
  };
  const auto report = MonteCarloRunner(options).run(*system.impl);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().to_string().find("all 3 trials failed"),
            std::string::npos)
      << report.status();
}

TEST(MonteCarlo, MonitorFactoryIsCalledOncePerTrial) {
  auto system = test::single_host_system(test::chain_spec_config(1));
  MonteCarloOptions options = fast_options(5, 20, 2);
  std::atomic<int> calls{0};
  std::set<std::int64_t> seen;
  std::mutex mutex;
  options.monitor_factory = [&](std::int64_t trial) -> RuntimeMonitor* {
    calls.fetch_add(1);
    const std::lock_guard<std::mutex> lock(mutex);
    seen.insert(trial);
    return nullptr;
  };
  const auto report = MonteCarloRunner(options).run(*system.impl);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(calls.load(), 5);
  EXPECT_EQ(seen.size(), 5u);
}

TEST(MonteCarlo, CustomEnvironmentFactoryIsUsedPerTrial) {
  auto system = test::single_host_system(test::chain_spec_config(1));
  MonteCarloOptions options = fast_options(6, 20, 3);
  std::atomic<int> built{0};
  options.environment_factory = [&]() -> std::unique_ptr<Environment> {
    built.fetch_add(1);
    return std::make_unique<NullEnvironment>();
  };
  MonteCarloRunner runner(options);
  const auto report = runner.run(*system.impl);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(built.load(), 6);
}

}  // namespace
}  // namespace lrt::sim
