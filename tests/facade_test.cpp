// Differential tests for the lrt:: facade (lrt/lrt.h): every wrapper must
// be bit-identical to the direct subsystem entry point it fronts, and the
// workload-membership check must reject subjects built against foreign
// models at the API boundary.
#include <gtest/gtest.h>

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "lint/lint.h"
#include "lint/sarif.h"
#include "lrt/lrt.h"
#include "plant/three_tank_system.h"
#include "reliability/analysis.h"
#include "sim/environment.h"
#include "sim/monte_carlo.h"
#include "sim/runtime.h"
#include "support/status.h"
#include "synth/synthesis.h"

namespace lrt {
namespace {

/// The quickstart pipeline's models, small enough for fast simulation.
Result<Workload> make_quickstart_workload() {
  spec::SpecificationConfig spec_config;
  spec_config.name = "facade_test";
  spec_config.communicators = {
      {"s", spec::ValueType::kReal, spec::Value::real(0.0), 10, 0.95},
      {"level", spec::ValueType::kReal, spec::Value::real(0.0), 10, 0.90},
  };
  spec::SpecificationConfig::TaskConfig filter;
  filter.name = "filter";
  filter.inputs = {{"s", 0}};
  filter.outputs = {{"level", 1}};
  filter.model = spec::FailureModel::kSeries;
  filter.function = [](std::span<const spec::Value> in) {
    return std::vector<spec::Value>{spec::Value::real(in[0].as_real())};
  };
  spec_config.tasks.push_back(std::move(filter));

  arch::ArchitectureConfig arch_config;
  arch_config.hosts = {{"h1", 0.99}, {"h2", 0.97}};
  arch_config.sensors = {{"gauge", 0.98}};
  arch_config.default_wcet = 4;
  arch_config.default_wctt = 1;
  return build_workload(std::move(spec_config), std::move(arch_config));
}

Result<impl::Implementation> make_quickstart_impl(const Workload& workload) {
  impl::ImplementationConfig config;
  config.task_mappings = {{"filter", {"h1", "h2"}}};
  config.sensor_bindings = {{"s", "gauge"}};
  return build_implementation(workload, std::move(config));
}

/// Drops the wall-clock fields (elapsed_seconds, trials_per_second) from a
/// ValidationReport JSON so two runs of the same campaign compare equal.
std::string strip_timing(std::string json) {
  const std::size_t begin = json.find("\"elapsed_seconds\"");
  const std::size_t end = json.find("\"invocations\"");
  EXPECT_NE(begin, std::string::npos);
  EXPECT_NE(end, std::string::npos);
  if (begin != std::string::npos && end != std::string::npos && begin < end)
    json.erase(begin, end - begin);
  return json;
}

TEST(Facade, BuildWorkloadValidatesConfigs) {
  spec::SpecificationConfig bad_spec;  // no communicators, no tasks
  arch::ArchitectureConfig arch_config;
  arch_config.hosts = {{"h1", 0.99}};
  const auto workload =
      build_workload(std::move(bad_spec), std::move(arch_config));
  EXPECT_FALSE(workload.ok());
}

TEST(Facade, BuildWorkloadSharesOwnership) {
  const auto workload = make_quickstart_workload();
  ASSERT_TRUE(workload.ok()) << workload.status().to_string();
  ASSERT_NE(workload->spec, nullptr);
  ASSERT_NE(workload->arch, nullptr);
  EXPECT_EQ(workload->spec->name(), "facade_test");
}

TEST(Facade, BorrowWorkloadAliasesWithoutOwning) {
  auto system = plant::make_three_tank_system({});
  ASSERT_TRUE(system.ok());
  const Workload workload =
      borrow_workload(*system->specification, *system->architecture);
  EXPECT_EQ(workload.spec.get(), system->specification.get());
  EXPECT_EQ(workload.arch.get(), system->architecture.get());
}

TEST(Facade, AnalyzeMatchesDirectCall) {
  auto system = plant::make_three_tank_system({});
  ASSERT_TRUE(system.ok());
  const Workload workload =
      borrow_workload(*system->specification, *system->architecture);
  const auto facade = analyze(workload, *system->implementation);
  const auto direct = reliability::analyze(*system->implementation);
  ASSERT_TRUE(facade.ok()) << facade.status().to_string();
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(reliability::to_json(*facade), reliability::to_json(*direct));
}

TEST(Facade, SimulateMatchesDirectCall) {
  const auto workload = make_quickstart_workload();
  ASSERT_TRUE(workload.ok());
  const auto impl = make_quickstart_impl(*workload);
  ASSERT_TRUE(impl.ok()) << impl.status().to_string();

  SimulateOptions options;
  options.simulation.periods = 2000;
  options.simulation.faults.seed = 99;
  const auto facade = simulate(*workload, *impl, options);
  ASSERT_TRUE(facade.ok()) << facade.status().to_string();

  sim::NullEnvironment env;
  const auto direct = sim::simulate(*impl, env, options.simulation);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(sim::to_json(*facade), sim::to_json(*direct));
}

TEST(Facade, SimulateHonorsCallerEnvironment) {
  const auto workload = make_quickstart_workload();
  ASSERT_TRUE(workload.ok());
  const auto impl = make_quickstart_impl(*workload);
  ASSERT_TRUE(impl.ok());

  SimulateOptions options;
  options.simulation.periods = 100;
  sim::NullEnvironment env;
  options.environment = &env;
  const auto result = simulate(*workload, *impl, options);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_EQ(result->periods, 100);
}

TEST(Facade, ValidateMatchesDirectCall) {
  auto system = plant::make_three_tank_system({});
  ASSERT_TRUE(system.ok());
  const Workload workload =
      borrow_workload(*system->specification, *system->architecture);

  sim::MonteCarloOptions options;
  options.trials = 16;
  options.simulation.periods = 200;
  options.threads = 2;
  options.simulation.actuator_comms = {"u1", "u2"};
  const auto facade = validate(workload, *system->implementation, options);
  ASSERT_TRUE(facade.ok()) << facade.status().to_string();

  const sim::MonteCarloRunner runner(options);
  const auto direct = runner.run(*system->implementation);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(strip_timing(sim::to_json(*facade)),
            strip_timing(sim::to_json(*direct)));
}

TEST(Facade, SynthesizeMatchesDirectCall) {
  auto system = plant::make_three_tank_system({});
  ASSERT_TRUE(system.ok());
  const Workload workload =
      borrow_workload(*system->specification, *system->architecture);
  const std::vector<impl::ImplementationConfig::SensorBinding> bindings = {
      {"s1", "sensor1"}, {"s2", "sensor2"}};

  const auto facade = synthesize(workload, bindings);
  ASSERT_TRUE(facade.ok()) << facade.status().to_string();
  const auto direct = synth::synthesize(*system->specification,
                                        *system->architecture, bindings);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(facade->replication_count, direct->replication_count);
  EXPECT_EQ(facade->candidates_evaluated, direct->candidates_evaluated);
  ASSERT_EQ(facade->config.task_mappings.size(),
            direct->config.task_mappings.size());
  for (std::size_t i = 0; i < facade->config.task_mappings.size(); ++i) {
    EXPECT_EQ(facade->config.task_mappings[i].task,
              direct->config.task_mappings[i].task);
    EXPECT_EQ(facade->config.task_mappings[i].hosts,
              direct->config.task_mappings[i].hosts);
  }
}

TEST(Facade, CheckMatchesLintSource) {
  const char* source = R"(program p {
  communicator c : real period 10 init 0.0 lrc 0.9;
})";
  const auto facade = check(source);
  const auto direct = lint::lint_source(source);
  ASSERT_TRUE(facade.ok()) << facade.status().to_string();
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(lint::to_json(facade->diagnostics),
            lint::to_json(direct->diagnostics));
}

TEST(Facade, MembershipCheckRejectsForeignImplementation) {
  auto system_a = plant::make_three_tank_system({});
  auto system_b = plant::make_three_tank_system({});
  ASSERT_TRUE(system_a.ok());
  ASSERT_TRUE(system_b.ok());
  const Workload workload_b =
      borrow_workload(*system_b->specification, *system_b->architecture);

  // system_a's implementation was built against system_a's models — a
  // state/lifetime violation, not a malformed argument.
  const auto analysis = analyze(workload_b, *system_a->implementation);
  ASSERT_FALSE(analysis.ok());
  EXPECT_EQ(analysis.status().code(), StatusCode::kFailedPrecondition);

  const auto simulation = simulate(workload_b, *system_a->implementation);
  EXPECT_FALSE(simulation.ok());
  const auto validation = validate(workload_b, *system_a->implementation);
  EXPECT_FALSE(validation.ok());
}

}  // namespace
}  // namespace lrt
