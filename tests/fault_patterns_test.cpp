// Tests for the failure-pattern baseline analysis: liveness under explicit
// patterns, tolerance degrees on the 3TS scenarios, and consistency with
// the probabilistic (SRG) view.
#include <gtest/gtest.h>

#include "plant/three_tank_system.h"
#include "reliability/analysis.h"
#include "reliability/fault_patterns.h"
#include "tests/test_util.h"

namespace lrt::reliability {
namespace {

using test::comm;
using test::task;

TEST(FaultPatterns, EmptyPatternKeepsEverythingLive) {
  auto system = test::single_host_system(test::chain_spec_config(2));
  for (spec::CommId c = 0;
       c < static_cast<spec::CommId>(system.spec->communicators().size());
       ++c) {
    const auto live = live_under_pattern(*system.impl, c, {});
    ASSERT_TRUE(live.ok());
    EXPECT_TRUE(*live);
  }
}

TEST(FaultPatterns, KillingOnlyHostKillsChain) {
  auto system = test::single_host_system(test::chain_spec_config(2));
  FaultPattern pattern;
  pattern.hosts = {0};
  const auto c1 = *system.spec->find_communicator("c1");
  const auto c0 = *system.spec->find_communicator("c0");
  EXPECT_FALSE(*live_under_pattern(*system.impl, c1, pattern));
  // The sensor communicator itself survives a host failure.
  EXPECT_TRUE(*live_under_pattern(*system.impl, c0, pattern));
}

TEST(FaultPatterns, KillingSensorPropagatesPerModel) {
  // Parallel task with two sensors: one sensor death survivable, both not.
  spec::SpecificationConfig config;
  config.communicators = {comm("sa", 10), comm("sb", 10), comm("out", 10)};
  config.tasks = {task("t", {{"sa", 0}, {"sb", 0}}, {{"out", 1}},
                       spec::FailureModel::kParallel)};
  auto system = test::single_host_system(std::move(config));
  const auto out = *system.spec->find_communicator("out");
  const auto sa = *system.spec->find_communicator("sa");

  FaultPattern one;
  one.sensors = {system.impl->sensor_for(sa)};
  EXPECT_TRUE(*live_under_pattern(*system.impl, out, one));

  FaultPattern both;
  both.sensors = {0, 1};
  EXPECT_FALSE(*live_under_pattern(*system.impl, out, both));
}

TEST(FaultPatterns, SeriesTaskDiesWithAnyInput) {
  spec::SpecificationConfig config;
  config.communicators = {comm("sa", 10), comm("sb", 10), comm("out", 10)};
  config.tasks = {task("t", {{"sa", 0}, {"sb", 0}}, {{"out", 1}},
                       spec::FailureModel::kSeries)};
  auto system = test::single_host_system(std::move(config));
  const auto out = *system.spec->find_communicator("out");
  FaultPattern one;
  one.sensors = {0};
  EXPECT_FALSE(*live_under_pattern(*system.impl, out, one));
}

TEST(FaultPatterns, IndependentTaskIgnoresInputs) {
  spec::SpecificationConfig config;
  config.communicators = {comm("s", 10), comm("out", 10)};
  config.tasks = {task("t", {{"s", 0}}, {{"out", 1}},
                       spec::FailureModel::kIndependent)};
  auto system = test::single_host_system(std::move(config));
  const auto out = *system.spec->find_communicator("out");
  FaultPattern pattern;
  pattern.sensors = {0};
  EXPECT_TRUE(*live_under_pattern(*system.impl, out, pattern));
}

TEST(FaultPatterns, ThreeTankBaselineToleratesNothingOnControls) {
  auto system = plant::make_three_tank_system({});
  const auto report = analyze_fault_patterns(*system->implementation, 2);
  ASSERT_TRUE(report.ok());
  const auto verdict_of = [&](const char* name) {
    for (const auto& verdict : report->verdicts) {
      if (verdict.name == name) return verdict;
    }
    return PatternVerdict{};
  };
  // u1 dies when h1 (t1's only host) dies: degree 0.
  EXPECT_EQ(verdict_of("u1").tolerance_degree, 0);
  EXPECT_EQ(verdict_of("l1").tolerance_degree, 0);  // h3 or sensor1
  EXPECT_EQ(verdict_of("s1").tolerance_degree, 0);  // sensor1
}

TEST(FaultPatterns, ThreeTankScenario1ToleratesOneHostOnControls) {
  // The paper's experiment: with t1, t2 replicated on {h1, h2}, unplugging
  // one host leaves the controls live — degree >= 1 against host faults.
  // (Killing h3 or a sensor still kills the upstream level, so we restrict
  // the pattern to the replicated pair.)
  plant::ThreeTankScenario scenario;
  scenario.variant = plant::ThreeTankVariant::kReplicatedTasks;
  auto system = plant::make_three_tank_system(scenario);
  const auto u1 = *system->specification->find_communicator("u1");
  FaultPattern h1_dead;
  h1_dead.hosts = {*system->architecture->find_host("h1")};
  EXPECT_TRUE(*live_under_pattern(*system->implementation, u1, h1_dead));
  FaultPattern h2_dead;
  h2_dead.hosts = {*system->architecture->find_host("h2")};
  EXPECT_TRUE(*live_under_pattern(*system->implementation, u1, h2_dead));
  FaultPattern both_dead;
  both_dead.hosts = {*system->architecture->find_host("h1"),
                     *system->architecture->find_host("h2")};
  EXPECT_FALSE(*live_under_pattern(*system->implementation, u1, both_dead));
}

TEST(FaultPatterns, MinimalCutsAreReported) {
  auto system = plant::make_three_tank_system({});
  const auto report = analyze_fault_patterns(*system->implementation, 2);
  ASSERT_TRUE(report.ok());
  for (const auto& verdict : report->verdicts) {
    if (verdict.tolerance_degree < report->max_failures) {
      EXPECT_EQ(verdict.minimal_cut.size(),
                static_cast<std::size_t>(verdict.tolerance_degree + 1))
          << verdict.name;
    }
  }
  const std::string summary = report->summary(*system->architecture);
  EXPECT_NE(summary.find("u1"), std::string::npos);
  EXPECT_NE(summary.find("killed by"), std::string::npos);
}

TEST(FaultPatterns, DegreeZeroImpliesSingleComponentDependency) {
  // Consistency with the probabilistic view: a communicator with
  // tolerance degree >= 1 against every component must have SRG strictly
  // greater than any single supporting component could give alone...
  // verified here on scenario 1: u1 has higher SRG than baseline u1.
  auto base = plant::make_three_tank_system({});
  plant::ThreeTankScenario s1;
  s1.variant = plant::ThreeTankVariant::kReplicatedTasks;
  auto repl = plant::make_three_tank_system(s1);
  const auto srgs_base = compute_srgs(*base->implementation);
  const auto srgs_repl = compute_srgs(*repl->implementation);
  const auto u1b = *base->specification->find_communicator("u1");
  const auto u1r = *repl->specification->find_communicator("u1");
  EXPECT_GT((*srgs_repl)[static_cast<std::size_t>(u1r)],
            (*srgs_base)[static_cast<std::size_t>(u1b)]);
}

TEST(FaultPatterns, RejectsBadInput) {
  auto system = test::single_host_system(test::chain_spec_config(1));
  EXPECT_EQ(analyze_fault_patterns(*system.impl, -1).status().code(),
            StatusCode::kInvalidArgument);
  FaultPattern bad;
  bad.hosts = {42};
  EXPECT_EQ(live_under_pattern(*system.impl, 0, bad).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(live_under_pattern(*system.impl, 99, {}).status().code(),
            StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace lrt::reliability
