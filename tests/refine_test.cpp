// Unit tests for src/refine: the kappa-map shape checks, every refinement
// constraint (a), (b1)-(b6), and the Prop. 2 transfer of validity on a
// concrete refinement chain.
#include <gtest/gtest.h>

#include <cmath>

#include "refine/refinement.h"
#include "reliability/analysis.h"
#include "sched/schedulability.h"
#include "tests/test_util.h"

namespace lrt::refine {
namespace {

using test::comm;
using test::task;

/// Builds a small system: sensor comm "in" -> task "<tname>" -> comm "out".
/// Knobs cover everything the refinement constraints look at.
struct Knobs {
  std::string task_name = "t";
  std::int64_t in_instance = 0;   // read time = 10 * in_instance
  std::int64_t out_instance = 4;  // write time = 10 * out_instance
  double out_lrc = 0.8;
  spec::FailureModel model = spec::FailureModel::kSeries;
  std::vector<std::string> hosts = {"h1"};
  spec::Time wcet = 5;
  spec::Time wctt = 2;
  double host1_rel = 0.99;
  bool extra_input = false;  // add a second sensor comm "in2"
};

test::System build(const Knobs& knobs) {
  test::System system;
  spec::SpecificationConfig config;
  config.communicators = {comm("in", 10, 0.85),
                          comm("out", 10, knobs.out_lrc)};
  if (knobs.extra_input) config.communicators.push_back(comm("in2", 10, 0.85));
  std::vector<std::pair<std::string, std::int64_t>> inputs = {
      {"in", knobs.in_instance}};
  if (knobs.extra_input) inputs.push_back({"in2", knobs.in_instance});
  config.tasks = {task(knobs.task_name, inputs, {{"out", knobs.out_instance}},
                       knobs.model)};
  system.spec = std::make_unique<spec::Specification>(
      test::build_spec(std::move(config)));

  arch::ArchitectureConfig arch_config;
  arch_config.hosts = {{"h1", knobs.host1_rel}, {"h2", 0.9}};
  arch_config.sensors = {{"s", 0.9}, {"s2", 0.9}};
  arch_config.default_wcet = knobs.wcet;
  arch_config.default_wctt = knobs.wctt;
  system.arch = std::make_unique<arch::Architecture>(
      std::move(arch::Architecture::Build(std::move(arch_config))).value());

  impl::ImplementationConfig impl_config;
  impl_config.task_mappings = {{knobs.task_name, knobs.hosts}};
  impl_config.sensor_bindings = {{"in", "s"}};
  if (knobs.extra_input) impl_config.sensor_bindings.push_back({"in2", "s2"});
  system.impl = std::make_unique<impl::Implementation>(
      std::move(impl::Implementation::Build(*system.spec, *system.arch,
                                            std::move(impl_config)))
          .value());
  return system;
}

RefinementMap kappa_t_to_t(const std::string& from = "t",
                           const std::string& to = "t") {
  return {{{from, to}}};
}

TEST(Refinement, IdenticalSystemRefinesItself) {
  const auto a = build({});
  const auto b = build({});
  const auto report = check_refinement(*a.impl, *b.impl, kappa_t_to_t());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->refines) << report->summary();
}

TEST(Refinement, KappaMustBeTotal) {
  const auto a = build({});
  const auto b = build({});
  const auto report = check_refinement(*a.impl, *b.impl, RefinementMap{});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->refines);
  EXPECT_EQ(report->violations[0].constraint, "kappa");
}

TEST(Refinement, KappaUnknownNamesAreErrors) {
  const auto a = build({});
  const auto b = build({});
  EXPECT_EQ(check_refinement(*a.impl, *b.impl, kappa_t_to_t("ghost", "t"))
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(check_refinement(*a.impl, *b.impl, kappa_t_to_t("t", "ghost"))
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(Refinement, ConstraintA_HostSetsMustMatch) {
  const auto a = build({});
  Knobs other;
  other.host1_rel = 0.5;  // same names, different reliability
  const auto b = build(other);
  const auto report = check_refinement(*a.impl, *b.impl, kappa_t_to_t());
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->refines);
  EXPECT_EQ(report->violations[0].constraint, "a");
}

TEST(Refinement, ConstraintB1_SameReplicationSet) {
  Knobs refining;
  refining.hosts = {"h1", "h2"};
  const auto a = build(refining);
  const auto b = build({});
  const auto report = check_refinement(*a.impl, *b.impl, kappa_t_to_t());
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->refines);
  EXPECT_EQ(report->violations[0].constraint, "b1");
}

TEST(Refinement, ConstraintB2_WcetMustNotGrow) {
  Knobs refining;
  refining.wcet = 9;
  const auto a = build(refining);
  const auto b = build({});  // wcet 5
  const auto report = check_refinement(*a.impl, *b.impl, kappa_t_to_t());
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->refines);
  EXPECT_EQ(report->violations[0].constraint, "b2");
  // The other direction (shrinking WCET) is allowed.
  const auto reverse = check_refinement(*b.impl, *a.impl, kappa_t_to_t());
  EXPECT_TRUE(reverse->refines) << reverse->summary();
}

TEST(Refinement, ConstraintB3_LetMustContainRefinedLet) {
  // Refining LET [10, 40) does not contain refined LET [0, 40).
  Knobs refining;
  refining.in_instance = 1;
  const auto a = build(refining);
  const auto b = build({});
  const auto report = check_refinement(*a.impl, *b.impl, kappa_t_to_t());
  EXPECT_FALSE(report->refines);
  EXPECT_EQ(report->violations[0].constraint, "b3");

  // Refining LET [0, 30) vs refined [0, 40): write too early.
  Knobs early;
  early.out_instance = 3;
  const auto c = build(early);
  const auto report2 = check_refinement(*c.impl, *b.impl, kappa_t_to_t());
  EXPECT_FALSE(report2->refines);
  EXPECT_EQ(report2->violations[0].constraint, "b3");

  // A wider refining LET is fine: refined [10, 30) inside refining [0, 40).
  Knobs narrow;
  narrow.in_instance = 1;
  narrow.out_instance = 3;
  const auto d = build(narrow);
  const auto report3 = check_refinement(*b.impl, *d.impl, kappa_t_to_t());
  EXPECT_TRUE(report3->refines) << report3->summary();
}

TEST(Refinement, ConstraintB4_OutputLrcBounded) {
  Knobs refining;
  refining.out_lrc = 0.95;  // exceeds the refined task's 0.8
  const auto a = build(refining);
  const auto b = build({});
  const auto report = check_refinement(*a.impl, *b.impl, kappa_t_to_t());
  EXPECT_FALSE(report->refines);
  EXPECT_EQ(report->violations[0].constraint, "b4");
  // Lower LRC refines fine ("writes ... with less logical reliability").
  const auto reverse = check_refinement(*b.impl, *a.impl, kappa_t_to_t());
  EXPECT_TRUE(reverse->refines) << reverse->summary();
}

TEST(Refinement, ConstraintB5_SameFailureModel) {
  Knobs refining;
  refining.model = spec::FailureModel::kParallel;
  const auto a = build(refining);
  const auto b = build({});
  const auto report = check_refinement(*a.impl, *b.impl, kappa_t_to_t());
  EXPECT_FALSE(report->refines);
  // b5 must be among the violations (b6 may also fire for model 2).
  bool found_b5 = false;
  for (const auto& violation : report->violations) {
    if (violation.constraint == "b5") found_b5 = true;
  }
  EXPECT_TRUE(found_b5) << report->summary();
}

TEST(Refinement, ConstraintB6_SeriesRequiresInputSubset) {
  // Series refining task reads MORE communicators than the refined: bad.
  Knobs refining;
  refining.extra_input = true;
  const auto a = build(refining);
  const auto b = build({});
  const auto report = check_refinement(*a.impl, *b.impl, kappa_t_to_t());
  EXPECT_FALSE(report->refines);
  EXPECT_EQ(report->violations[0].constraint, "b6");
  // Reading fewer is fine for series.
  const auto reverse = check_refinement(*b.impl, *a.impl, kappa_t_to_t());
  EXPECT_TRUE(reverse->refines) << reverse->summary();
}

TEST(Refinement, ConstraintB6_ParallelRequiresInputSuperset) {
  Knobs refined;
  refined.model = spec::FailureModel::kParallel;
  refined.extra_input = true;
  const auto b = build(refined);
  Knobs refining = refined;
  refining.extra_input = false;  // subset: violates the parallel direction
  const auto a = build(refining);
  const auto report = check_refinement(*a.impl, *b.impl, kappa_t_to_t());
  EXPECT_FALSE(report->refines);
  EXPECT_EQ(report->violations[0].constraint, "b6");
  const auto reverse = check_refinement(*b.impl, *a.impl, kappa_t_to_t());
  EXPECT_TRUE(reverse->refines) << reverse->summary();
}

// --- Prop. 2 on a concrete pair: validity transfers along refinement ---

TEST(Refinement, ValidityTransfersToRefiningSystem) {
  // Refined (abstract): tight LET, generous WCET budget, LRC 0.8.
  Knobs abstract_knobs;
  abstract_knobs.in_instance = 1;   // LET [10, 40)
  abstract_knobs.out_instance = 4;
  abstract_knobs.wcet = 10;
  abstract_knobs.out_lrc = 0.8;
  const auto abstract_sys = build(abstract_knobs);

  // Refining (concrete): wider LET [0, 40), smaller WCET, lower LRC.
  Knobs concrete_knobs = abstract_knobs;
  concrete_knobs.in_instance = 0;
  concrete_knobs.wcet = 6;
  concrete_knobs.out_lrc = 0.7;
  const auto concrete_sys = build(concrete_knobs);

  const auto refinement =
      check_refinement(*concrete_sys.impl, *abstract_sys.impl, kappa_t_to_t());
  ASSERT_TRUE(refinement.ok());
  ASSERT_TRUE(refinement->refines) << refinement->summary();

  // The abstract system is valid (schedulable + reliable)...
  const auto abstract_sched = sched::analyze_schedulability(*abstract_sys.impl);
  const auto abstract_rel = reliability::analyze(*abstract_sys.impl);
  ASSERT_TRUE(abstract_sched.ok());
  ASSERT_TRUE(abstract_rel.ok());
  EXPECT_TRUE(abstract_sched->schedulable);
  EXPECT_TRUE(abstract_rel->reliable);

  // ... and Prop. 2 promises the concrete one is too. Verify directly.
  const auto concrete_sched = sched::analyze_schedulability(*concrete_sys.impl);
  const auto concrete_rel = reliability::analyze(*concrete_sys.impl);
  ASSERT_TRUE(concrete_sched.ok());
  ASSERT_TRUE(concrete_rel.ok());
  EXPECT_TRUE(concrete_sched->schedulable);
  EXPECT_TRUE(concrete_rel->reliable);
}

TEST(Refinement, TransitivityAlongAMonotoneChain) {
  // C (most abstract) <- B <- A: each step shrinks WCET, widens the LET,
  // and lowers the output LRC. Every adjacent pair refines, and so does
  // the composite A -> C (the relation is transitive).
  Knobs c_knobs;  // abstract: LET [20, 40), wcet 10, LRC 0.9
  c_knobs.in_instance = 2;
  c_knobs.out_instance = 4;
  c_knobs.wcet = 10;
  c_knobs.out_lrc = 0.9;
  Knobs b_knobs = c_knobs;  // LET [10, 40), wcet 8, LRC 0.85
  b_knobs.in_instance = 1;
  b_knobs.wcet = 8;
  b_knobs.out_lrc = 0.85;
  Knobs a_knobs = b_knobs;  // LET [0, 40), wcet 6, LRC 0.8
  a_knobs.in_instance = 0;
  a_knobs.wcet = 6;
  a_knobs.out_lrc = 0.8;

  const auto a = build(a_knobs);
  const auto b = build(b_knobs);
  const auto c = build(c_knobs);
  EXPECT_TRUE(check_refinement(*a.impl, *b.impl, kappa_t_to_t())->refines);
  EXPECT_TRUE(check_refinement(*b.impl, *c.impl, kappa_t_to_t())->refines);
  EXPECT_TRUE(check_refinement(*a.impl, *c.impl, kappa_t_to_t())->refines);
  // Anti-symmetry: the reverse directions fail.
  EXPECT_FALSE(check_refinement(*c.impl, *a.impl, kappa_t_to_t())->refines);
}

TEST(Refinement, KappaMustBeInjective) {
  // Two refining tasks funneled onto one refined task: kappa must be
  // one-to-one into tset, so this is a "kappa" violation (not an error).
  const auto a = test::single_host_system(test::chain_spec_config(2));
  const auto b = test::single_host_system(test::chain_spec_config(2));
  RefinementMap kappa;
  kappa.task_map = {{"task1", "task1"}, {"task2", "task1"}};
  const auto report = check_refinement(*a.impl, *b.impl, kappa);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->refines);
  // The funnel itself is tagged "kappa"; the mismatched (t', kappa(t'))
  // pair may add local-constraint violations on top.
  bool funneled = false;
  for (const auto& violation : report->violations) {
    if (violation.constraint == "kappa" &&
        violation.detail.find("two refining tasks map to refined task") !=
            std::string::npos) {
      funneled = true;
    }
  }
  EXPECT_TRUE(funneled) << report->summary();
}

TEST(Refinement, KappaDuplicateDomainEntryIsViolation) {
  // The same refining task mapped twice: the second entry is flagged, and
  // the unmapped sibling additionally breaks totality — all tagged "kappa".
  const auto a = test::single_host_system(test::chain_spec_config(2));
  const auto b = test::single_host_system(test::chain_spec_config(2));
  RefinementMap kappa;
  kappa.task_map = {{"task1", "task1"}, {"task1", "task2"}};
  const auto report = check_refinement(*a.impl, *b.impl, kappa);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->refines);
  bool duplicate = false;
  bool non_total = false;
  for (const auto& violation : report->violations) {
    EXPECT_EQ(violation.constraint, "kappa") << violation.detail;
    if (violation.detail.find("mapped twice") != std::string::npos) {
      duplicate = true;
    }
    if (violation.detail.find("kappa must be total") != std::string::npos) {
      non_total = true;
    }
  }
  EXPECT_TRUE(duplicate) << report->summary();
  EXPECT_TRUE(non_total) << report->summary();
}

TEST(Refinement, KappaDanglingNamesNameTheCulprit) {
  const auto a = build({});
  const auto b = build({});
  const auto forward = check_refinement(*a.impl, *b.impl,
                                        kappa_t_to_t("ghost", "t"));
  EXPECT_EQ(forward.status().code(), StatusCode::kNotFound);
  EXPECT_NE(forward.status().message().find("unknown refining task 'ghost'"),
            std::string::npos)
      << forward.status();
  const auto backward = check_refinement(*a.impl, *b.impl,
                                         kappa_t_to_t("t", "ghost"));
  EXPECT_EQ(backward.status().code(), StatusCode::kNotFound);
  EXPECT_NE(backward.status().message().find("unknown refined task 'ghost'"),
            std::string::npos)
      << backward.status();
}

TEST(Refinement, ConstraintB4_EqualityAtTheCeilingPasses) {
  // b4 is "comm.lrc > max_lrc", strictly: demanding EXACTLY the refined
  // task's maximum output LRC is a legal refinement; one ulp above is not.
  Knobs at_ceiling;
  at_ceiling.out_lrc = 0.8;  // == the default refined task's LRC
  const auto a = build(at_ceiling);
  const auto b = build({});
  const auto equal = check_refinement(*a.impl, *b.impl, kappa_t_to_t());
  ASSERT_TRUE(equal.ok());
  EXPECT_TRUE(equal->refines) << equal->summary();

  Knobs above;
  above.out_lrc = std::nextafter(0.8, 1.0);
  const auto c = build(above);
  const auto report = check_refinement(*c.impl, *b.impl, kappa_t_to_t());
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->refines);
  ASSERT_EQ(report->violations.size(), 1u) << report->summary();
  EXPECT_EQ(report->violations[0].constraint, "b4");
}

TEST(Refinement, ConstraintB6_IdenticalIcsetPassesBothModels) {
  // Equal input-communicator sets satisfy BOTH directions of (b6): the
  // subset demand of model 1 (series) and the superset demand of model 2
  // (parallel).
  for (const spec::FailureModel model :
       {spec::FailureModel::kSeries, spec::FailureModel::kParallel}) {
    Knobs knobs;
    knobs.model = model;
    knobs.extra_input = true;
    const auto a = build(knobs);
    const auto b = build(knobs);
    const auto report = check_refinement(*a.impl, *b.impl, kappa_t_to_t());
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->refines) << report->summary();
  }
}

TEST(Refinement, SummaryListsViolations) {
  Knobs refining;
  refining.wcet = 9;
  const auto a = build(refining);
  const auto b = build({});
  const auto report = check_refinement(*a.impl, *b.impl, kappa_t_to_t());
  EXPECT_NE(report->summary().find("DOES NOT REFINE"), std::string::npos);
  EXPECT_NE(report->summary().find("b2"), std::string::npos);
}

}  // namespace
}  // namespace lrt::refine
