// Differential tests for the incremental SRG evaluator: its SRGs must be
// BIT-identical (==, not approximately equal) to reliability::analyze's
// from-scratch induction, across randomized workloads, random single-task
// host-set mutations, and undo-trail rollbacks — the contract the fast
// synthesis engine's correctness rests on.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "gen/workload.h"
#include "reliability/analysis.h"
#include "reliability/incremental.h"
#include "support/rng.h"
#include "tests/test_util.h"

namespace lrt::reliability {
namespace {

gen::WorkloadOptions workload_options() {
  gen::WorkloadOptions options;
  options.max_layers = 4;
  options.max_tasks_per_layer = 3;
  options.max_hosts = 3;
  options.min_lrc = 0.3;
  options.max_lrc = 0.9;  // some verdicts flip under mutations
  return options;
}

/// The mutated implementation rebuilt from scratch: assignment[t] replaces
/// I(t) in the workload's config, everything else unchanged.
impl::Implementation rebuild(
    const gen::Workload& workload,
    const std::vector<std::vector<arch::HostId>>& assignment) {
  impl::ImplementationConfig config = workload.implementation_config;
  const spec::Specification& spec = *workload.specification;
  for (auto& mapping : config.task_mappings) {
    const auto t = spec.find_task(mapping.task);
    EXPECT_TRUE(t.has_value()) << mapping.task;
    mapping.hosts.clear();
    for (const arch::HostId h : assignment[static_cast<std::size_t>(*t)]) {
      mapping.hosts.push_back(workload.architecture->host(h).name);
    }
  }
  auto result = impl::Implementation::Build(spec, *workload.architecture,
                                            std::move(config));
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).value();
}

/// Asserts eval's full state equals analyze()'s for `impl`, bitwise.
void expect_bit_identical(const SrgEvaluator& eval,
                          const impl::Implementation& impl,
                          const std::string& context) {
  const auto srgs = compute_srgs(impl);
  ASSERT_TRUE(srgs.ok()) << context << ": " << srgs.status();
  ASSERT_EQ(eval.srgs().size(), srgs->size()) << context;
  for (std::size_t c = 0; c < srgs->size(); ++c) {
    EXPECT_EQ(eval.srgs()[c], (*srgs)[c]) << context << " comm " << c;
  }
  const spec::Specification& spec = impl.specification();
  for (spec::TaskId t = 0; t < static_cast<spec::TaskId>(spec.tasks().size());
       ++t) {
    EXPECT_EQ(eval.task_lambda(t), task_reliability(impl, t))
        << context << " task " << t;
  }
  const auto report = analyze(impl);
  ASSERT_TRUE(report.ok()) << context;
  EXPECT_EQ(eval.all_lrcs_satisfied(), report->reliable) << context;
  for (const CommunicatorVerdict& verdict : report->verdicts) {
    EXPECT_EQ(eval.satisfied(verdict.comm), verdict.satisfied)
        << context << " comm " << verdict.comm;
    EXPECT_EQ(eval.slack(verdict.comm), verdict.slack)
        << context << " comm " << verdict.comm;
  }
}

TEST(SrgEvaluator, MatchesAnalyzeOnRandomWorkloads) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    Xoshiro256 rng(seed);
    const auto workload = gen::random_workload(rng, workload_options());
    ASSERT_TRUE(workload.ok()) << workload.status();
    const auto eval =
        SrgEvaluator::FromImplementation(*workload->implementation);
    ASSERT_TRUE(eval.ok()) << eval.status();
    expect_bit_identical(*eval, *workload->implementation,
                         "seed " + std::to_string(seed));
  }
}

TEST(SrgEvaluator, MatchesAnalyzeUnderRandomSingleTaskMutations) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Xoshiro256 rng(seed * 7919 + 1);
    const auto workload = gen::random_workload(rng, workload_options());
    ASSERT_TRUE(workload.ok()) << workload.status();
    const spec::Specification& spec = *workload->specification;
    const arch::Architecture& arch = *workload->architecture;
    auto eval = SrgEvaluator::FromImplementation(*workload->implementation);
    ASSERT_TRUE(eval.ok()) << eval.status();

    const auto num_tasks = static_cast<spec::TaskId>(spec.tasks().size());
    const auto num_hosts = arch.hosts().size();
    std::vector<std::vector<arch::HostId>> assignment;
    for (spec::TaskId t = 0; t < num_tasks; ++t) {
      assignment.push_back(workload->implementation->hosts_for(t));
    }

    for (int mutation = 0; mutation < 25; ++mutation) {
      // Random task, random nonempty host subset (ascending, like
      // Implementation stores it).
      const auto t = static_cast<spec::TaskId>(
          rng.next_below(static_cast<std::uint64_t>(num_tasks)));
      const std::uint64_t mask =
          1 + rng.next_below((std::uint64_t{1} << num_hosts) - 1);
      auto& hosts = assignment[static_cast<std::size_t>(t)];
      hosts.clear();
      for (std::size_t h = 0; h < num_hosts; ++h) {
        if ((mask >> h) & 1u) hosts.push_back(static_cast<arch::HostId>(h));
      }
      eval->set_task_hosts(t, hosts);
      const impl::Implementation mutated = rebuild(*workload, assignment);
      expect_bit_identical(*eval, mutated,
                           "seed " + std::to_string(seed) + " mutation " +
                               std::to_string(mutation));
      // The dirty cone never exceeds a full from-scratch pass.
      EXPECT_LE(eval->comm_updates(),
                eval->evals() *
                    static_cast<std::int64_t>(spec.communicators().size()));
    }
  }
}

TEST(SrgEvaluator, RollbackRestoresBitIdenticalState) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Xoshiro256 rng(seed * 104729 + 3);
    const auto workload = gen::random_workload(rng, workload_options());
    ASSERT_TRUE(workload.ok()) << workload.status();
    auto eval = SrgEvaluator::FromImplementation(*workload->implementation);
    ASSERT_TRUE(eval.ok()) << eval.status();

    const std::vector<double> srgs_before = eval->srgs();
    const bool satisfied_before = eval->all_lrcs_satisfied();
    const spec::Specification& spec = *workload->specification;
    const auto num_tasks = static_cast<spec::TaskId>(spec.tasks().size());
    const auto num_hosts = workload->architecture->hosts().size();

    const SrgEvaluator::Mark mark = eval->mark();
    for (int mutation = 0; mutation < 10; ++mutation) {
      const auto t = static_cast<spec::TaskId>(
          rng.next_below(static_cast<std::uint64_t>(num_tasks)));
      const std::uint64_t mask =
          1 + rng.next_below((std::uint64_t{1} << num_hosts) - 1);
      std::vector<arch::HostId> hosts;
      for (std::size_t h = 0; h < num_hosts; ++h) {
        if ((mask >> h) & 1u) hosts.push_back(static_cast<arch::HostId>(h));
      }
      eval->set_task_hosts(t, hosts);
    }
    eval->rollback(mark);

    ASSERT_EQ(eval->srgs().size(), srgs_before.size());
    for (std::size_t c = 0; c < srgs_before.size(); ++c) {
      EXPECT_EQ(eval->srgs()[c], srgs_before[c]) << "seed " << seed
                                                 << " comm " << c;
    }
    EXPECT_EQ(eval->all_lrcs_satisfied(), satisfied_before) << seed;
    // Rolled back to the snapshot: a from-scratch analysis of the
    // original implementation must still agree.
    expect_bit_identical(*eval, *workload->implementation,
                         "post-rollback seed " + std::to_string(seed));
  }
}

TEST(SrgEvaluator, CopiesAreIndependent) {
  // The parallel search clones one evaluator per worker; a clone's
  // mutations must not leak into the original.
  Xoshiro256 rng(42);
  const auto workload = gen::random_workload(rng, workload_options());
  ASSERT_TRUE(workload.ok()) << workload.status();
  const auto eval =
      SrgEvaluator::FromImplementation(*workload->implementation);
  ASSERT_TRUE(eval.ok()) << eval.status();

  SrgEvaluator clone = *eval;
  const std::vector<double> srgs_before = eval->srgs();
  const std::vector<arch::HostId> all_hosts = [&] {
    std::vector<arch::HostId> hosts;
    for (std::size_t h = 0; h < workload->architecture->hosts().size(); ++h) {
      hosts.push_back(static_cast<arch::HostId>(h));
    }
    return hosts;
  }();
  for (spec::TaskId t = 0;
       t < static_cast<spec::TaskId>(workload->specification->tasks().size());
       ++t) {
    clone.set_task_hosts(t, all_hosts);
  }
  for (std::size_t c = 0; c < srgs_before.size(); ++c) {
    EXPECT_EQ(eval->srgs()[c], srgs_before[c]) << c;
  }
  expect_bit_identical(*eval, *workload->implementation, "original");
}

TEST(SrgEvaluator, CreateValidatesArguments) {
  const test::System system =
      test::single_host_system(test::chain_spec_config(2));
  // One sensor slot per communicator is required.
  const auto too_few = SrgEvaluator::Create(*system.spec, *system.arch, {});
  EXPECT_EQ(too_few.status().code(), StatusCode::kInvalidArgument);

  // A read input communicator with an unbound (-1) sensor is rejected.
  std::vector<arch::SensorId> unbound(system.spec->communicators().size(),
                                      -1);
  const auto missing =
      SrgEvaluator::Create(*system.spec, *system.arch, unbound);
  EXPECT_EQ(missing.status().code(), StatusCode::kInvalidArgument);

  // Wrong re-execution arity.
  std::vector<arch::SensorId> sensors(system.spec->communicators().size(),
                                      -1);
  sensors[0] = 0;  // c0 is the only read input communicator
  const auto bad_reexec = SrgEvaluator::Create(*system.spec, *system.arch,
                                               sensors, {1, 2, 3, 4, 5});
  EXPECT_EQ(bad_reexec.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace lrt::reliability
