// Shared helpers for constructing small systems in tests.
#ifndef LRT_TESTS_TEST_UTIL_H_
#define LRT_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "arch/architecture.h"
#include "impl/implementation.h"
#include "spec/specification.h"

namespace lrt::test {

/// A heap-owned (spec, arch, impl) triple with stable addresses.
struct System {
  std::unique_ptr<spec::Specification> spec;
  std::unique_ptr<arch::Architecture> arch;
  std::unique_ptr<impl::Implementation> impl;
};

/// Shorthand for a real-typed communicator declaration.
inline spec::Communicator comm(std::string name, spec::Time period,
                               double lrc = 1.0) {
  return {std::move(name), spec::ValueType::kReal, spec::Value::real(0.0),
          period, lrc};
}

/// Shorthand for a task config reading/writing (comm, instance) pairs.
inline spec::SpecificationConfig::TaskConfig task(
    std::string name,
    std::vector<std::pair<std::string, std::int64_t>> inputs,
    std::vector<std::pair<std::string, std::int64_t>> outputs,
    spec::FailureModel model = spec::FailureModel::kSeries) {
  spec::SpecificationConfig::TaskConfig config;
  config.name = std::move(name);
  config.inputs = std::move(inputs);
  config.outputs = std::move(outputs);
  config.model = model;
  return config;
}

/// Builds a specification or aborts the test with the error message.
inline spec::Specification build_spec(spec::SpecificationConfig config) {
  auto result = spec::Specification::Build(std::move(config));
  if (!result.ok()) {
    ADD_FAILURE() << "spec build failed: " << result.status();
    std::abort();
  }
  return std::move(result).value();
}

/// One-sensor-in, chain-of-tasks specification:
///   sensor comm c0 -> task1 -> c1 -> task2 -> c2 -> ... -> cN
/// Every communicator has period `period` (tasks write instance k+1 etc.).
inline spec::SpecificationConfig chain_spec_config(int tasks,
                                                   spec::Time period = 10,
                                                   double lrc = 0.5) {
  spec::SpecificationConfig config;
  config.name = "chain";
  for (int i = 0; i <= tasks; ++i) {
    config.communicators.push_back(comm("c" + std::to_string(i), period, lrc));
  }
  for (int i = 0; i < tasks; ++i) {
    config.tasks.push_back(task("task" + std::to_string(i + 1),
                                {{"c" + std::to_string(i), i}},
                                {{"c" + std::to_string(i + 1), i + 1}}));
  }
  return config;
}

/// Builds a System where every task runs on one host of reliability
/// `host_rel` (host "h0"), and every input communicator is read from a
/// sensor of reliability `sensor_rel`.
inline System single_host_system(spec::SpecificationConfig spec_config,
                                 double host_rel = 0.9,
                                 double sensor_rel = 0.95) {
  System system;
  system.spec = std::make_unique<spec::Specification>(
      build_spec(std::move(spec_config)));

  arch::ArchitectureConfig arch_config;
  arch_config.hosts.push_back({"h0", host_rel});
  impl::ImplementationConfig impl_config;
  for (const auto& task : system.spec->tasks()) {
    impl_config.task_mappings.push_back({task.name, {"h0"}});
  }
  for (spec::CommId c = 0;
       c < static_cast<spec::CommId>(system.spec->communicators().size());
       ++c) {
    if (system.spec->is_input_communicator(c) &&
        !system.spec->readers_of(c).empty()) {
      const std::string& name = system.spec->communicator(c).name;
      arch_config.sensors.push_back({"sens_" + name, sensor_rel});
      impl_config.sensor_bindings.push_back({name, "sens_" + name});
    }
  }

  auto arch_result = arch::Architecture::Build(std::move(arch_config));
  if (!arch_result.ok()) {
    ADD_FAILURE() << "arch build failed: " << arch_result.status();
    std::abort();
  }
  system.arch =
      std::make_unique<arch::Architecture>(std::move(arch_result).value());

  auto impl_result = impl::Implementation::Build(
      *system.spec, *system.arch, std::move(impl_config));
  if (!impl_result.ok()) {
    ADD_FAILURE() << "impl build failed: " << impl_result.status();
    std::abort();
  }
  system.impl =
      std::make_unique<impl::Implementation>(std::move(impl_result).value());
  return system;
}

}  // namespace lrt::test

#endif  // LRT_TESTS_TEST_UTIL_H_
