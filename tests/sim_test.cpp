// Unit tests for src/sim: the trace operators, runtime semantics (voting,
// persistence, failure models, replication), SLLN convergence of empirical
// limit averages to the analytical SRGs, the memory-cycle pathology, and
// scripted host kills.
#include <gtest/gtest.h>

#include <array>

#include "plant/three_tank_system.h"
#include "reliability/analysis.h"
#include "sim/runtime.h"
#include "tests/test_util.h"

namespace lrt::sim {
namespace {

using spec::Value;
using test::comm;
using test::task;

// --- trace operators ---

TEST(Trace, ReliabilityAbstraction) {
  const std::vector<Value> values = {Value::real(1.0), Value::bottom(),
                                     Value::integer(3), Value::bottom()};
  const std::vector<int> abstract = reliability_abstraction(values);
  EXPECT_EQ(abstract, (std::vector<int>{1, 0, 1, 0}));
}

TEST(Trace, LimitAverage) {
  EXPECT_DOUBLE_EQ(limit_average(std::vector<int>{1, 0, 1, 0}), 0.5);
  EXPECT_DOUBLE_EQ(limit_average(std::vector<int>{1, 1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(limit_average(std::vector<int>{}), 1.0);
}

TEST(Trace, WilsonIntervalKnownValues) {
  // 80/100 at 95% (z = 1.96): Wilson gives roughly [0.711, 0.867].
  const ConfidenceInterval ci = wilson_interval(80, 100, 1.96);
  EXPECT_NEAR(ci.low, 0.7112, 0.002);
  EXPECT_NEAR(ci.high, 0.8665, 0.002);
  EXPECT_TRUE(ci.contains(0.8));
  EXPECT_FALSE(ci.contains(0.5));
}

TEST(Trace, WilsonIntervalEdgeCases) {
  const ConfidenceInterval zero = wilson_interval(0, 0);
  EXPECT_DOUBLE_EQ(zero.low, 0.0);
  EXPECT_DOUBLE_EQ(zero.high, 1.0);
  // All successes: upper bound is 1, lower bound strictly below.
  const ConfidenceInterval all = wilson_interval(50, 50);
  EXPECT_DOUBLE_EQ(all.high, 1.0);
  EXPECT_GT(all.low, 0.85);
  // No successes: lower bound 0.
  const ConfidenceInterval none = wilson_interval(0, 50);
  EXPECT_DOUBLE_EQ(none.low, 0.0);
  EXPECT_LT(none.high, 0.15);
  // Width shrinks with n.
  EXPECT_GT(wilson_interval(8, 10).high - wilson_interval(8, 10).low,
            wilson_interval(800, 1000).high - wilson_interval(800, 1000).low);
}

TEST(Trace, AnalyticSrgInsideSimulatedInterval) {
  auto system = test::single_host_system(test::chain_spec_config(1), 0.9,
                                         0.8);
  NullEnvironment env;
  SimulationOptions options;
  options.periods = 50'000;
  options.faults.seed = 19;
  const auto result = simulate(*system.impl, env, options);
  ASSERT_TRUE(result.ok());
  const auto srgs = reliability::compute_srgs(*system.impl);
  const auto c1 = *system.spec->find_communicator("c1");
  const ConfidenceInterval ci =
      result->find("c1")->update_rate_interval(/*z=*/3.3);  // ~99.9%
  EXPECT_TRUE(ci.contains((*srgs)[static_cast<std::size_t>(c1)]))
      << "[" << ci.low << ", " << ci.high << "]";
}

TEST(Trace, AccumulatorMatchesBatch) {
  ReliabilityAccumulator acc;
  const std::vector<int> bits = {1, 0, 1, 1, 0, 1};
  for (const int b : bits) acc.record(b == 1);
  EXPECT_EQ(acc.samples(), 6);
  EXPECT_EQ(acc.reliable(), 4);
  EXPECT_DOUBLE_EQ(acc.average(), limit_average(bits));
}

// --- runtime basics ---

SimulationOptions fast_options(std::int64_t periods, std::uint64_t seed = 1) {
  SimulationOptions options;
  options.periods = periods;
  options.faults.seed = seed;
  return options;
}

TEST(Runtime, PerfectSystemIsFullyReliable) {
  auto system = test::single_host_system(test::chain_spec_config(2),
                                         /*host_rel=*/1.0,
                                         /*sensor_rel=*/1.0);
  NullEnvironment env;
  const auto result = simulate(*system.impl, env, fast_options(100));
  ASSERT_TRUE(result.ok());
  for (const CommStats& stats : result->comm_stats) {
    EXPECT_DOUBLE_EQ(stats.limit_average, 1.0) << stats.name;
  }
  EXPECT_EQ(result->invocation_failures, 0);
  EXPECT_EQ(result->vote_divergences, 0);
}

TEST(Runtime, RejectsBadOptions) {
  auto system = test::single_host_system(test::chain_spec_config(1));
  NullEnvironment env;
  EXPECT_FALSE(simulate(*system.impl, env, fast_options(0)).ok());
  SimulationOptions bad = fast_options(10);
  bad.broadcast_reliability = 0.0;
  EXPECT_FALSE(simulate(*system.impl, env, bad).ok());
  SimulationOptions unknown = fast_options(10);
  unknown.record_values_for = {"ghost"};
  EXPECT_EQ(simulate(*system.impl, env, unknown).status().code(),
            StatusCode::kNotFound);
}

TEST(Runtime, ValueTraceRecordsTaskOutput) {
  // One task doubling its input; sensor returns a constant 21.
  spec::SpecificationConfig config;
  config.communicators = {comm("in", 10), comm("out", 10)};
  auto doubler = task("t", {{"in", 0}}, {{"out", 1}});
  doubler.function = [](std::span<const Value> inputs) {
    return std::vector<Value>{Value::real(2.0 * inputs[0].as_real())};
  };
  config.tasks = {doubler};
  auto system = test::single_host_system(std::move(config), 1.0, 1.0);

  class ConstEnv final : public Environment {
   public:
    Value read_sensor(std::string_view, spec::Time) override {
      return Value::real(21.0);
    }
    void write_actuator(std::string_view, spec::Time,
                        const Value&) override {}
  } env;

  SimulationOptions options = fast_options(3);
  options.record_values_for = {"out"};
  const auto result = simulate(*system.impl, env, options);
  ASSERT_TRUE(result.ok());
  const auto& trace = result->value_traces.at("out");
  ASSERT_EQ(trace.size(), 3u);  // one access instant per period
  EXPECT_EQ(trace[0], Value::real(0.0));  // init, written only at t=10
  EXPECT_EQ(trace[1], Value::real(42.0));
  EXPECT_EQ(trace[2], Value::real(42.0));
}

TEST(Runtime, EmpiricalRateMatchesSrg_SingleTask) {
  // Host 0.9, sensor 0.8, series task: lambda_out = 0.72.
  auto system = test::single_host_system(test::chain_spec_config(1), 0.9,
                                         0.8);
  NullEnvironment env;
  const auto result = simulate(*system.impl, env, fast_options(200'000, 7));
  ASSERT_TRUE(result.ok());
  const auto srgs = reliability::compute_srgs(*system.impl);
  ASSERT_TRUE(srgs.ok());
  const CommStats* out = result->find("c1");
  ASSERT_NE(out, nullptr);
  EXPECT_NEAR(out->limit_average,
              (*srgs)[static_cast<std::size_t>(
                  *system.spec->find_communicator("c1"))],
              0.005);
}

TEST(Runtime, ReplicationImprovesEmpiricalRate) {
  // Build t on one host vs two hosts at 0.8; empirical rates should
  // bracket 0.8 and 0.96 respectively (sensor perfect).
  const auto build = [](std::vector<std::string> hosts) {
    test::System system;
    spec::SpecificationConfig config = test::chain_spec_config(1);
    system.spec = std::make_unique<spec::Specification>(
        test::build_spec(std::move(config)));
    arch::ArchitectureConfig arch_config;
    arch_config.hosts = {{"h1", 0.8}, {"h2", 0.8}};
    arch_config.sensors = {{"s", 1.0}};
    system.arch = std::make_unique<arch::Architecture>(
        std::move(arch::Architecture::Build(std::move(arch_config))).value());
    impl::ImplementationConfig impl_config;
    impl_config.task_mappings = {{"task1", std::move(hosts)}};
    impl_config.sensor_bindings = {{"c0", "s"}};
    system.impl = std::make_unique<impl::Implementation>(
        std::move(impl::Implementation::Build(*system.spec, *system.arch,
                                              std::move(impl_config)))
            .value());
    return system;
  };

  NullEnvironment env;
  const auto single = build({"h1"});
  const auto result1 = simulate(*single.impl, env, fast_options(100'000, 3));
  ASSERT_TRUE(result1.ok());
  EXPECT_NEAR(result1->find("c1")->limit_average, 0.8, 0.01);

  const auto replicated = build({"h1", "h2"});
  const auto result2 =
      simulate(*replicated.impl, env, fast_options(100'000, 3));
  ASSERT_TRUE(result2.ok());
  EXPECT_NEAR(result2->find("c1")->limit_average, 0.96, 0.01);
  EXPECT_EQ(result2->vote_divergences, 0);
}

// SLLN (Prop. 1): the empirical limit average converges to the SRG as the
// trace grows; verify the deviation shrinks with length on the 3TS system.
TEST(Runtime, SllnConvergenceOnThreeTank) {
  auto system = plant::make_three_tank_system({});
  ASSERT_TRUE(system.ok());
  const auto srgs = reliability::compute_srgs(*system->implementation);
  ASSERT_TRUE(srgs.ok());
  const auto u1 = *system->specification->find_communicator("u1");
  const double analytic = (*srgs)[static_cast<std::size_t>(u1)];

  NullEnvironment env;
  double previous_error = 1.0;
  for (const std::int64_t periods : {1'000, 100'000}) {
    const auto result =
        simulate(*system->implementation, env, fast_options(periods, 11));
    ASSERT_TRUE(result.ok());
    const double error =
        std::abs(result->find("u1")->limit_average - analytic);
    EXPECT_LT(error, previous_error + 0.01);
    previous_error = error;
  }
  EXPECT_LT(previous_error, 0.003);
}

// --- failure-model runtime semantics ---

test::System diamond_system(spec::FailureModel model) {
  spec::SpecificationConfig config;
  config.communicators = {comm("sa", 10), comm("sb", 10), comm("out", 10)};
  auto t = task("t", {{"sa", 0}, {"sb", 0}}, {{"out", 1}}, model);
  t.defaults = {Value::real(-1.0), Value::real(-1.0)};
  config.tasks = {t};
  return test::single_host_system(std::move(config), /*host_rel=*/1.0,
                                  /*sensor_rel=*/0.7);
}

TEST(Runtime, SeriesModelFailsOnAnyBadInput) {
  auto system = diamond_system(spec::FailureModel::kSeries);
  NullEnvironment env;
  const auto result = simulate(*system.impl, env, fast_options(100'000, 5));
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->find("out")->limit_average, 0.7 * 0.7, 0.01);
}

TEST(Runtime, ParallelModelSurvivesOneBadInput) {
  auto system = diamond_system(spec::FailureModel::kParallel);
  NullEnvironment env;
  const auto result = simulate(*system.impl, env, fast_options(100'000, 5));
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->find("out")->limit_average, 1.0 - 0.3 * 0.3, 0.01);
}

TEST(Runtime, IndependentModelAlwaysExecutes) {
  auto system = diamond_system(spec::FailureModel::kIndependent);
  NullEnvironment env;
  const auto result = simulate(*system.impl, env, fast_options(50'000, 5));
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->find("out")->limit_average, 1.0);
}

// --- the paper's memory-cycle pathology (Section 3 / experiment E7) ---

TEST(Runtime, UnsafeCycleDegradesToZero) {
  // Series task reading and writing c on a 0.99 host: one failure poisons
  // the loop forever, so the long-run average tends to 0.
  spec::SpecificationConfig config;
  config.communicators = {comm("c", 10, 0.5)};
  config.communicators[0].init = Value::real(1.0);
  config.tasks = {task("t", {{"c", 0}}, {{"c", 1}})};
  auto system = test::single_host_system(std::move(config), 0.99, 1.0);
  NullEnvironment env;
  const auto result = simulate(*system.impl, env, fast_options(20'000, 9));
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->find("c")->limit_average, 0.02);
}

TEST(Runtime, IndependentModelRescuesCycle) {
  spec::SpecificationConfig config;
  config.communicators = {comm("c", 10, 0.5)};
  auto t = task("t", {{"c", 0}}, {{"c", 1}}, spec::FailureModel::kIndependent);
  t.defaults = {Value::real(0.0)};
  config.tasks = {t};
  auto system = test::single_host_system(std::move(config), 0.9, 1.0);
  NullEnvironment env;
  const auto result = simulate(*system.impl, env, fast_options(100'000, 9));
  ASSERT_TRUE(result.ok());
  // Matches the fixpoint SRG lambda = lambda_t = 0.9.
  EXPECT_NEAR(result->find("c")->limit_average, 0.9, 0.01);
}

// --- scripted host kills ---

TEST(Runtime, KillingOnlyHostSilencesTask) {
  auto system = test::single_host_system(test::chain_spec_config(1), 1.0,
                                         1.0);
  NullEnvironment env;
  SimulationOptions options = fast_options(100);
  options.faults.host_events = {{0, 0, false}};  // kill h0 at t=0
  const auto result = simulate(*system.impl, env, options);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->find("c1")->update_rate(), 0.0);
}

TEST(Runtime, ReplicaCoversKilledHost) {
  test::System system;
  system.spec = std::make_unique<spec::Specification>(
      test::build_spec(test::chain_spec_config(1)));
  arch::ArchitectureConfig arch_config;
  arch_config.hosts = {{"h1", 1.0}, {"h2", 1.0}};
  arch_config.sensors = {{"s", 1.0}};
  system.arch = std::make_unique<arch::Architecture>(
      std::move(arch::Architecture::Build(std::move(arch_config))).value());
  impl::ImplementationConfig impl_config;
  impl_config.task_mappings = {{"task1", {"h1", "h2"}}};
  impl_config.sensor_bindings = {{"c0", "s"}};
  system.impl = std::make_unique<impl::Implementation>(
      std::move(impl::Implementation::Build(*system.spec, *system.arch,
                                            std::move(impl_config)))
          .value());

  NullEnvironment env;
  SimulationOptions options = fast_options(100);
  options.faults.host_events = {{0, 0, false}};  // kill h1 immediately
  const auto result = simulate(*system.impl, env, options);
  ASSERT_TRUE(result.ok());
  // h2 still updates c1 every period.
  EXPECT_DOUBLE_EQ(result->find("c1")->limit_average, 1.0);
  EXPECT_EQ(result->vote_divergences, 0);
}

TEST(Runtime, HostRestoreResumesExecution) {
  auto system = test::single_host_system(test::chain_spec_config(1), 1.0,
                                         1.0);
  NullEnvironment env;
  SimulationOptions options = fast_options(100);
  // Down for the first half of the run.
  const spec::Time half = system.spec->hyperperiod() * 50;
  options.faults.host_events = {{0, 0, false}, {half, 0, true}};
  const auto result = simulate(*system.impl, env, options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->find("c1")->update_rate(), 0.5, 0.02);
}

TEST(Runtime, HostEventValidatesHostId) {
  auto system = test::single_host_system(test::chain_spec_config(1));
  NullEnvironment env;
  SimulationOptions options = fast_options(10);
  options.faults.host_events = {{0, 99, false}};
  EXPECT_EQ(simulate(*system.impl, env, options).status().code(),
            StatusCode::kOutOfRange);
}

// --- time-dependent implementations (paper Section 3) ---

TEST(Runtime, TimeDependentMappingAlternates) {
  // h1 = 1.0, h2 always down (kill at t=0). Alternating t between them
  // yields exactly every second update reliable => limavg 0.5.
  test::System system;
  system.spec = std::make_unique<spec::Specification>(
      test::build_spec(test::chain_spec_config(1)));
  arch::ArchitectureConfig arch_config;
  arch_config.hosts = {{"h1", 1.0}, {"h2", 1.0}};
  arch_config.sensors = {{"s", 1.0}};
  system.arch = std::make_unique<arch::Architecture>(
      std::move(arch::Architecture::Build(std::move(arch_config))).value());

  const auto build = [&system](const char* host) {
    impl::ImplementationConfig config;
    config.task_mappings = {{"task1", {host}}};
    config.sensor_bindings = {{"c0", "s"}};
    return std::move(impl::Implementation::Build(*system.spec, *system.arch,
                                                 std::move(config)))
        .value();
  };
  const std::array<impl::Implementation, 2> phases = {build("h1"),
                                                      build("h2")};

  NullEnvironment env;
  SimulationOptions options = fast_options(1000);
  options.faults.host_events = {{0, 1, false}};  // h2 permanently down
  const auto result = simulate_time_dependent(phases, env, options);
  ASSERT_TRUE(result.ok()) << result.status();
  // 999 commits in 1000 periods (the last period's write lands after the
  // horizon), 500 of them from the even (h1) phases.
  EXPECT_NEAR(result->find("c1")->update_rate(), 0.5, 1e-3);
}

TEST(Runtime, TimeDependentMatchesPhaseMeanStatistically) {
  // Paper E8 hosts: alternating between 0.95 and 0.85 => limavg 0.9.
  test::System system;
  system.spec = std::make_unique<spec::Specification>(
      test::build_spec(test::chain_spec_config(1)));
  arch::ArchitectureConfig arch_config;
  arch_config.hosts = {{"h1", 0.95}, {"h2", 0.85}};
  arch_config.sensors = {{"s", 1.0}};
  system.arch = std::make_unique<arch::Architecture>(
      std::move(arch::Architecture::Build(std::move(arch_config))).value());
  const auto build = [&system](const char* host) {
    impl::ImplementationConfig config;
    config.task_mappings = {{"task1", {host}}};
    config.sensor_bindings = {{"c0", "s"}};
    return std::move(impl::Implementation::Build(*system.spec, *system.arch,
                                                 std::move(config)))
        .value();
  };
  const std::array<impl::Implementation, 2> phases = {build("h1"),
                                                      build("h2")};
  NullEnvironment env;
  const auto result =
      simulate_time_dependent(phases, env, fast_options(200'000, 17));
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->find("c1")->limit_average, 0.9, 0.005);
}

TEST(Runtime, TimeDependentRejectsMismatchedPhases) {
  auto a = test::single_host_system(test::chain_spec_config(1));
  auto b = test::single_host_system(test::chain_spec_config(1));
  const std::array<impl::Implementation, 2> phases = {*a.impl, *b.impl};
  NullEnvironment env;
  EXPECT_EQ(
      simulate_time_dependent(phases, env, fast_options(10)).status().code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(simulate_time_dependent({}, env, fast_options(10)).status().code(),
            StatusCode::kInvalidArgument);
}

// --- unreliable (but atomic) broadcast ---

TEST(Runtime, BroadcastLossReducesRate) {
  auto system = test::single_host_system(test::chain_spec_config(1), 1.0,
                                         1.0);
  NullEnvironment env;
  SimulationOptions options = fast_options(100'000, 13);
  options.broadcast_reliability = 0.9;
  const auto result = simulate(*system.impl, env, options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->find("c1")->limit_average, 0.9, 0.01);
  EXPECT_EQ(result->vote_divergences, 0);  // atomicity preserved
}

// --- runtime monitor hooks (adaptive layer) ---

/// Collects every on_update outcome for one communicator.
class UpdateRecorder final : public RuntimeMonitor {
 public:
  explicit UpdateRecorder(spec::CommId comm) : comm_(comm) {}

  void on_update(spec::Time now, spec::CommId comm, bool reliable,
                 int contributors) override {
    if (comm != comm_) return;
    times_.push_back(now);
    reliable_.push_back(reliable);
    contributors_.push_back(contributors);
  }

  /// Fraction of reliable updates committed in [from, to).
  [[nodiscard]] double rate_between(spec::Time from, spec::Time to) const {
    std::int64_t total = 0;
    std::int64_t good = 0;
    for (std::size_t i = 0; i < times_.size(); ++i) {
      if (times_[i] < from || times_[i] >= to) continue;
      ++total;
      if (reliable_[i]) ++good;
    }
    return total == 0 ? 1.0
                      : static_cast<double>(good) /
                            static_cast<double>(total);
  }

  [[nodiscard]] int contributors_at(spec::Time when) const {
    for (std::size_t i = 0; i < times_.size(); ++i) {
      if (times_[i] == when) return contributors_[i];
    }
    return -1;
  }

 private:
  spec::CommId comm_;
  std::vector<spec::Time> times_;
  std::vector<bool> reliable_;
  std::vector<int> contributors_;
};

TEST(RuntimeMonitor, WindowedReliabilityDipsAndRecoversAcrossKillRestore) {
  // Fault-free single-host chain; h0 is unplugged for the middle third of
  // the run and restored. The per-window update reliability of c1 must be
  // 1 before the kill, 0 while down, and 1 again after the restore.
  auto system = test::single_host_system(test::chain_spec_config(1), 1.0,
                                         1.0);
  const spec::CommId c1 = *system.spec->find_communicator("c1");
  UpdateRecorder recorder(c1);
  NullEnvironment env;
  SimulationOptions options = fast_options(300);
  const spec::Time down = system.spec->hyperperiod() * 100;
  const spec::Time up = system.spec->hyperperiod() * 200;
  options.faults.host_events = {{down, 0, false}, {up, 0, true}};
  options.monitor = &recorder;
  const auto result = simulate(*system.impl, env, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_DOUBLE_EQ(recorder.rate_between(0, down), 1.0);
  EXPECT_DOUBLE_EQ(recorder.rate_between(down + 1, up), 0.0);
  EXPECT_DOUBLE_EQ(recorder.rate_between(up + 1, options.periods *
                                                     system.spec
                                                         ->hyperperiod()),
                   1.0);
  EXPECT_EQ(result->remaps_installed, 0);
}

TEST(RuntimeMonitor, RestoredHostRejoinsVoting) {
  // task1 replicated on {h1, h2}; h1 is killed and later restored. The
  // vote contributor count for c1 reads 2 -> 1 -> 2.
  test::System system;
  system.spec = std::make_unique<spec::Specification>(
      test::build_spec(test::chain_spec_config(1)));
  arch::ArchitectureConfig arch_config;
  arch_config.hosts = {{"h1", 1.0}, {"h2", 1.0}};
  arch_config.sensors = {{"s", 1.0}};
  system.arch = std::make_unique<arch::Architecture>(
      std::move(arch::Architecture::Build(std::move(arch_config))).value());
  impl::ImplementationConfig impl_config;
  impl_config.task_mappings = {{"task1", {"h1", "h2"}}};
  impl_config.sensor_bindings = {{"c0", "s"}};
  system.impl = std::make_unique<impl::Implementation>(
      std::move(impl::Implementation::Build(*system.spec, *system.arch,
                                            std::move(impl_config)))
          .value());

  const spec::CommId c1 = *system.spec->find_communicator("c1");
  UpdateRecorder recorder(c1);
  NullEnvironment env;
  SimulationOptions options = fast_options(300);
  const spec::Time period = system.spec->hyperperiod();
  options.faults.host_events = {{period * 100, 0, false},
                                {period * 200, 0, true}};
  options.monitor = &recorder;
  const auto result = simulate(*system.impl, env, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(recorder.contributors_at(period * 50), 2);
  EXPECT_EQ(recorder.contributors_at(period * 150), 1);
  EXPECT_EQ(recorder.contributors_at(period * 250), 2);
  // Down for a third of the run, but one replica always survives.
  EXPECT_DOUBLE_EQ(result->find("c1")->limit_average, 1.0);
}

/// Always answers the period boundary with a fixed implementation.
class FixedRemap final : public RuntimeMonitor {
 public:
  explicit FixedRemap(const impl::Implementation* next) : next_(next) {}
  const impl::Implementation* on_period_boundary(spec::Time) override {
    return next_;
  }

 private:
  const impl::Implementation* next_;
};

TEST(RuntimeMonitor, RemapMustShareSpecificationAndArchitecture) {
  auto system = test::single_host_system(test::chain_spec_config(1));
  auto foreign = test::single_host_system(test::chain_spec_config(1));
  FixedRemap monitor(foreign.impl.get());
  NullEnvironment env;
  SimulationOptions options = fast_options(10);
  options.monitor = &monitor;
  EXPECT_EQ(simulate(*system.impl, env, options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(RuntimeMonitor, IdenticalRemapInstallsOnce) {
  // Returning the same replacement at every boundary installs it once.
  auto system = test::single_host_system(test::chain_spec_config(1), 1.0,
                                         1.0);
  impl::ImplementationConfig same = system.impl->to_config();
  auto replacement = impl::Implementation::Build(*system.spec, *system.arch,
                                                 std::move(same));
  ASSERT_TRUE(replacement.ok());
  FixedRemap monitor(&*replacement);
  NullEnvironment env;
  SimulationOptions options = fast_options(50);
  options.monitor = &monitor;
  const auto result = simulate(*system.impl, env, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->remaps_installed, 1);
  EXPECT_DOUBLE_EQ(result->find("c1")->limit_average, 1.0);
}

}  // namespace
}  // namespace lrt::sim
