// Robustness and determinism fuzzing for the lrt-lint analyzer: every
// truncated or mutated source must lint without crashing, and linting the
// same bytes twice must render byte-identical text and SARIF (the
// diagnostics are the CI contract, so any nondeterminism is a bug).
// Generated gen/ workloads round-trip through the HTL printer and must
// lint error-free. Failures dump a reproducer `lint-fuzz-*.htl` next to
// the test binary so CI can upload it.
#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "arch/architecture.h"
#include "gen/workload.h"
#include "htl/ast.h"
#include "htl/printer.h"
#include "lint/lint.h"
#include "lint/sarif.h"
#include "support/rng.h"

namespace lrt::lint {
namespace {

// The htl_fuzz_test seed program, plus a second module so mutations can
// perturb the mode-product rules (LRT011-LRT017), not just the frontend.
constexpr std::string_view kValid = R"(
program fuzz {
  communicator in : real period 10 init 0.0 lrc 0.5;
  communicator go : bool period 20 init false lrc 0.9;
  communicator out : real period 20 init 0.0 lrc 0.8;
  module m {
    task t input (in[0], go[0]) output (out[1])
      model parallel defaults (1.5, true);
    mode a period 20 { invoke t; switch (go) to b; }
    mode b period 20 { }
    start a;
  }
  module n {
    task u input (out[1]) output (go[2]) model series;
    mode main period 20 { invoke u; }
    start main;
  }
  architecture {
    host h1 reliability 0.99;
    sensor s reliability 0.9;
    metrics default wcet 3 wctt 1;
  }
  mapping { map t to h1 retries 1; map u to h1; bind in to s; }
}
)";

void dump_reproducer(const std::string& name, std::string_view source) {
  std::ofstream out("lint-fuzz-" + name + ".htl");
  out << source;
}

/// Lints `source` twice and checks the rendered text and SARIF agree
/// byte-for-byte. Returns the first result for further checks.
LintResult lint_deterministically(const std::string& name,
                                  std::string_view source) {
  LintOptions options;
  options.file = "fuzz.htl";
  auto first = lint_source(source, options);
  auto second = lint_source(source, options);
  // Only invalid options produce a bad status, and ours are fixed.
  EXPECT_TRUE(first.ok()) << first.status().to_string();
  EXPECT_TRUE(second.ok()) << second.status().to_string();
  const std::string text_a = render_text(first->diagnostics);
  const std::string text_b = render_text(second->diagnostics);
  const std::string sarif_a = to_sarif(first->diagnostics);
  const std::string sarif_b = to_sarif(second->diagnostics);
  if (text_a != text_b || sarif_a != sarif_b) {
    dump_reproducer(name, source);
    ADD_FAILURE() << "nondeterministic diagnostics, reproducer lint-fuzz-"
                  << name << ".htl";
  }
  return std::move(*first);
}

TEST(LintFuzz, EveryTruncationLintsDeterministically) {
  const std::string source(kValid);
  for (std::size_t cut = 0; cut < source.size(); cut += 3) {
    lint_deterministically("truncation-" + std::to_string(cut),
                           source.substr(0, cut));
  }
}

TEST(LintFuzz, SingleCharacterMutationsLintDeterministically) {
  const std::string source(kValid);
  Xoshiro256 rng(2024);
  constexpr std::string_view kAlphabet = "{}()[];:,.0123456789abcxyz_ $#";
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = source;
    const std::size_t pos = rng.next_below(mutated.size());
    mutated[pos] = kAlphabet[rng.next_below(kAlphabet.size())];
    lint_deterministically("mutation-" + std::to_string(trial), mutated);
  }
}

TEST(LintFuzz, TokenDeletionsLintDeterministically) {
  const std::string source(kValid);
  Xoshiro256 rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = source;
    const std::size_t pos = rng.next_below(mutated.size());
    const std::size_t len =
        std::min<std::size_t>(1 + rng.next_below(12), mutated.size() - pos);
    mutated.erase(pos, len);
    lint_deterministically("deletion-" + std::to_string(trial), mutated);
  }
}

/// One gen/ workload rendered back to HTL source: a single module whose
/// mode invokes every task once per specification period.
std::string workload_to_htl(const gen::Workload& workload) {
  const spec::Specification& spec = *workload.specification;
  htl::ProgramAst program;
  program.name = "generated";
  for (spec::CommId c = 0;
       c < static_cast<spec::CommId>(spec.communicators().size()); ++c) {
    const spec::Communicator& comm = spec.communicator(c);
    htl::CommunicatorAst decl;
    decl.name = comm.name;
    decl.type = comm.type;
    decl.init = comm.init;
    decl.period = comm.period;
    decl.lrc = comm.lrc;
    program.communicators.push_back(std::move(decl));
  }
  htl::ModuleAst module;
  module.name = "m";
  htl::ModeAst mode;
  mode.name = "main";
  mode.period = spec.hyperperiod();
  for (const spec::Task& task : spec.tasks()) {
    htl::TaskAst decl;
    decl.name = task.name;
    for (const spec::PortRef& port : task.inputs) {
      decl.inputs.push_back(
          {spec.communicator(port.comm).name, port.instance, 0, 0});
    }
    for (const spec::PortRef& port : task.outputs) {
      decl.outputs.push_back(
          {spec.communicator(port.comm).name, port.instance, 0, 0});
    }
    decl.model = task.model;
    decl.defaults = task.defaults;
    module.tasks.push_back(std::move(decl));
    mode.invokes.push_back(task.name);
  }
  module.modes.push_back(std::move(mode));
  module.start_mode = "main";
  program.modules.push_back(std::move(module));

  const arch::ArchitectureConfig& arch = workload.architecture_config;
  htl::ArchitectureAst architecture;
  for (const arch::Host& host : arch.hosts) {
    architecture.hosts.push_back({host.name, host.reliability, 0, 0});
  }
  for (const arch::Sensor& sensor : arch.sensors) {
    architecture.sensors.push_back({sensor.name, sensor.reliability, 0, 0});
  }
  architecture.metrics.push_back({"", "", arch.default_wcet.value_or(1),
                                  arch.default_wctt.value_or(1), 0, 0});
  program.architecture = std::move(architecture);

  const impl::ImplementationConfig& impl = workload.implementation_config;
  htl::MappingAst mapping;
  for (const auto& task_mapping : impl.task_mappings) {
    htl::MapAst map;
    map.task = task_mapping.task;
    map.hosts = task_mapping.hosts;
    map.retries = task_mapping.reexecutions;
    mapping.maps.push_back(std::move(map));
  }
  for (const auto& binding : impl.sensor_bindings) {
    mapping.binds.push_back({binding.communicator, binding.sensor, 0, 0});
  }
  program.mapping = std::move(mapping);
  return htl::to_source(program);
}

TEST(LintFuzz, GeneratedWorkloadsLintWithoutErrors) {
  Xoshiro256 rng(1234);
  gen::WorkloadOptions options;
  options.max_layers = 3;
  options.max_tasks_per_layer = 3;
  for (int trial = 0; trial < 25; ++trial) {
    const auto workload = gen::random_workload(rng, options);
    ASSERT_TRUE(workload.ok()) << workload.status().to_string();
    const std::string source = workload_to_htl(*workload);
    const std::string name = "workload-" + std::to_string(trial);
    const LintResult result = lint_deterministically(name, source);
    // Workloads are valid by construction (acyclic, race-free, mapped,
    // bound), so any error except an LRC-feasibility finding — which
    // correctly depends on the randomly drawn reliabilities — is a lint
    // bug.
    for (const Diagnostic& diag : result.diagnostics) {
      if (diag.severity != Severity::kError) continue;
      if (diag.rule_id == kRuleLrcInfeasible ||
          diag.rule_id == kRuleModeLrcInfeasible) {
        continue;
      }
      dump_reproducer(name, source);
      ADD_FAILURE() << "generated workload lints with errors, reproducer "
                    << "lint-fuzz-" << name << ".htl:\n"
                    << render_text(result.diagnostics);
      break;
    }
  }
}

}  // namespace
}  // namespace lrt::lint
