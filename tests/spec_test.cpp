// Unit tests for src/spec: Value semantics, specification well-formedness
// (the paper's rules 1-4), derived timing (read/write times, pi_S), and the
// Fig. 1 example.
#include <gtest/gtest.h>

#include "spec/specification.h"
#include "tests/test_util.h"

namespace lrt::spec {
namespace {

using test::comm;
using test::task;

// --- Value ---

TEST(Value, DefaultIsBottom) {
  const Value v;
  EXPECT_TRUE(v.is_bottom());
  EXPECT_EQ(v, Value::bottom());
}

TEST(Value, TypedPayloads) {
  EXPECT_DOUBLE_EQ(Value::real(2.5).as_real(), 2.5);
  EXPECT_EQ(Value::integer(-3).as_int(), -3);
  EXPECT_TRUE(Value::boolean(true).as_bool());
  EXPECT_FALSE(Value::real(1.0).is_bottom());
}

TEST(Value, ConformanceIncludesBottom) {
  EXPECT_TRUE(Value::bottom().conforms_to(ValueType::kReal));
  EXPECT_TRUE(Value::bottom().conforms_to(ValueType::kBool));
  EXPECT_TRUE(Value::real(1.0).conforms_to(ValueType::kReal));
  EXPECT_FALSE(Value::real(1.0).conforms_to(ValueType::kInt));
  EXPECT_FALSE(Value::integer(1).conforms_to(ValueType::kBool));
}

TEST(Value, EqualityDistinguishesBottom) {
  EXPECT_EQ(Value::bottom(), Value::bottom());
  EXPECT_NE(Value::bottom(), Value::real(0.0));
  EXPECT_EQ(Value::real(1.5), Value::real(1.5));
  EXPECT_NE(Value::real(1.5), Value::real(1.6));
  EXPECT_NE(Value::integer(1), Value::boolean(true));
}

TEST(Value, ZeroValues) {
  EXPECT_EQ(zero_value(ValueType::kReal), Value::real(0.0));
  EXPECT_EQ(zero_value(ValueType::kInt), Value::integer(0));
  EXPECT_EQ(zero_value(ValueType::kBool), Value::boolean(false));
}

// --- Specification: Fig. 1 of the paper ---
// c1..c4 with periods 2, 3, 4, 2; task t reads the second instances of c1
// and c2 (i = 1) and updates the third instance of c3 (i = 2) and the sixth
// instance of c4 (i = 5). Its LET is [3, 8].

SpecificationConfig fig1_config() {
  SpecificationConfig config;
  config.name = "fig1";
  config.communicators = {comm("c1", 2), comm("c2", 3), comm("c3", 4),
                          comm("c4", 2)};
  config.tasks = {
      task("t", {{"c1", 1}, {"c2", 1}}, {{"c3", 2}, {"c4", 5}})};
  return config;
}

TEST(Specification, Fig1Timing) {
  const Specification spec = test::build_spec(fig1_config());
  const TaskId t = *spec.find_task("t");
  EXPECT_EQ(spec.read_time(t), 3);   // max(2*1, 3*1)
  EXPECT_EQ(spec.write_time(t), 8);  // min(4*2, 2*5)
  EXPECT_EQ(spec.base_lcm(), 12);    // lcm(2,3,4,2)
  // pi_S = 12 * ceil(8/12) = 12.
  EXPECT_EQ(spec.hyperperiod(), 12);
}

TEST(Specification, Fig1Classification) {
  const Specification spec = test::build_spec(fig1_config());
  EXPECT_TRUE(spec.is_input_communicator(*spec.find_communicator("c1")));
  EXPECT_TRUE(spec.is_input_communicator(*spec.find_communicator("c2")));
  EXPECT_FALSE(spec.is_input_communicator(*spec.find_communicator("c3")));
  EXPECT_TRUE(spec.is_output_communicator(*spec.find_communicator("c3")));
  const TaskId t = *spec.find_task("t");
  EXPECT_EQ(spec.writer_of(*spec.find_communicator("c3")), t);
  EXPECT_EQ(spec.writer_of(*spec.find_communicator("c1")), std::nullopt);
  EXPECT_EQ(spec.input_comm_set(t).size(), 2u);
}

TEST(Specification, HyperperiodRoundsUpToLcmMultiple) {
  // Periods 2 and 3 (lcm 6) with a write at time 8 => pi_S = 12.
  SpecificationConfig config;
  config.communicators = {comm("a", 2), comm("b", 3)};
  config.tasks = {task("t", {{"a", 1}}, {{"b", 2}, {"a", 4}})};
  // write time = min(3*2, 2*4) = 6 => pi_S = 6.
  const Specification spec = test::build_spec(std::move(config));
  EXPECT_EQ(spec.hyperperiod(), 6);

  SpecificationConfig config2;
  config2.communicators = {comm("a", 2), comm("b", 3)};
  config2.tasks = {task("t", {{"a", 1}}, {{"a", 4}})};
  // write time = 8 => pi_S = 6 * ceil(8/6) = 12.
  const Specification spec2 = test::build_spec(std::move(config2));
  EXPECT_EQ(spec2.hyperperiod(), 12);
}

TEST(Specification, InstancesPerPeriod) {
  const Specification spec = test::build_spec(fig1_config());
  EXPECT_EQ(spec.instances_per_period(*spec.find_communicator("c1")), 6);
  EXPECT_EQ(spec.instances_per_period(*spec.find_communicator("c2")), 4);
  EXPECT_EQ(spec.instances_per_period(*spec.find_communicator("c3")), 3);
}

// --- Well-formedness rules ---

TEST(SpecificationValidation, Rule1RequiresInputsAndOutputs) {
  SpecificationConfig no_inputs;
  no_inputs.communicators = {comm("c", 2)};
  no_inputs.tasks = {task("t", {}, {{"c", 1}})};
  EXPECT_EQ(Specification::Build(std::move(no_inputs)).status().code(),
            StatusCode::kInvalidArgument);

  SpecificationConfig no_outputs;
  no_outputs.communicators = {comm("c", 2)};
  no_outputs.tasks = {task("t", {{"c", 0}}, {})};
  EXPECT_EQ(Specification::Build(std::move(no_outputs)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SpecificationValidation, Rule2RequiresReadBeforeWrite) {
  SpecificationConfig config;
  config.communicators = {comm("a", 2), comm("b", 2)};
  // read time 4, write time 2: invalid.
  config.tasks = {task("t", {{"a", 2}}, {{"b", 1}})};
  const auto result = Specification::Build(std::move(config));
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("rule 2"), std::string::npos);
}

TEST(SpecificationValidation, Rule3RejectsTwoWriters) {
  SpecificationConfig config;
  config.communicators = {comm("in", 2), comm("out", 2)};
  config.tasks = {task("t1", {{"in", 0}}, {{"out", 1}}),
                  task("t2", {{"in", 0}}, {{"out", 2}})};
  const auto result = Specification::Build(std::move(config));
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("rule 3"), std::string::npos);
}

TEST(SpecificationValidation, Rule4RejectsDuplicateInstanceWrite) {
  SpecificationConfig config;
  config.communicators = {comm("in", 2), comm("out", 2)};
  config.tasks = {task("t", {{"in", 0}}, {{"out", 1}, {"out", 1}})};
  const auto result = Specification::Build(std::move(config));
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("rule 4"), std::string::npos);
}

TEST(SpecificationValidation, SameTaskMayWriteDistinctInstances) {
  SpecificationConfig config;
  config.communicators = {comm("in", 2), comm("out", 2)};
  config.tasks = {task("t", {{"in", 0}}, {{"out", 1}, {"out", 2}})};
  EXPECT_TRUE(Specification::Build(std::move(config)).ok());
}

TEST(SpecificationValidation, RejectsDuplicateNames) {
  SpecificationConfig config;
  config.communicators = {comm("c", 2), comm("c", 3)};
  EXPECT_EQ(Specification::Build(std::move(config)).status().code(),
            StatusCode::kAlreadyExists);

  SpecificationConfig config2;
  config2.communicators = {comm("a", 2), comm("b", 2)};
  config2.tasks = {task("t", {{"a", 0}}, {{"b", 1}}),
                   task("t", {{"a", 0}}, {{"b", 2}})};
  EXPECT_EQ(Specification::Build(std::move(config2)).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(SpecificationValidation, RejectsBadPeriodAndLrc) {
  SpecificationConfig config;
  config.communicators = {comm("c", 0)};
  EXPECT_FALSE(Specification::Build(std::move(config)).ok());

  SpecificationConfig config2;
  config2.communicators = {comm("c", 2, 0.0)};  // LRC must be > 0
  EXPECT_FALSE(Specification::Build(std::move(config2)).ok());

  SpecificationConfig config3;
  config3.communicators = {comm("c", 2, 1.5)};
  EXPECT_FALSE(Specification::Build(std::move(config3)).ok());
}

TEST(SpecificationValidation, RejectsUnknownCommunicatorReference) {
  SpecificationConfig config;
  config.communicators = {comm("a", 2)};
  config.tasks = {task("t", {{"nope", 0}}, {{"a", 1}})};
  EXPECT_EQ(Specification::Build(std::move(config)).status().code(),
            StatusCode::kNotFound);
}

TEST(SpecificationValidation, RejectsOutputInstanceZero) {
  SpecificationConfig config;
  config.communicators = {comm("a", 2), comm("b", 2)};
  config.tasks = {task("t", {{"a", 0}}, {{"b", 0}})};
  EXPECT_EQ(Specification::Build(std::move(config)).status().code(),
            StatusCode::kOutOfRange);
}

TEST(SpecificationValidation, RejectsNegativeInputInstance) {
  SpecificationConfig config;
  config.communicators = {comm("a", 2), comm("b", 2)};
  config.tasks = {task("t", {{"a", -1}}, {{"b", 1}})};
  EXPECT_EQ(Specification::Build(std::move(config)).status().code(),
            StatusCode::kOutOfRange);
}

TEST(SpecificationValidation, RejectsInitTypeMismatch) {
  SpecificationConfig config;
  config.communicators.push_back(
      {"c", ValueType::kInt, Value::real(1.0), 2, 1.0});
  EXPECT_EQ(Specification::Build(std::move(config)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SpecificationValidation, DefaultsMustMatchInputArity) {
  SpecificationConfig config;
  config.communicators = {comm("a", 2), comm("b", 2)};
  auto bad = task("t", {{"a", 0}}, {{"b", 1}});
  bad.defaults = {Value::real(0.0), Value::real(1.0)};
  config.tasks = {bad};
  EXPECT_EQ(Specification::Build(std::move(config)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SpecificationValidation, BottomDefaultRejected) {
  SpecificationConfig config;
  config.communicators = {comm("a", 2), comm("b", 2)};
  auto bad = task("t", {{"a", 0}}, {{"b", 1}});
  bad.defaults = {Value::bottom()};
  config.tasks = {bad};
  EXPECT_EQ(Specification::Build(std::move(config)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SpecificationValidation, EmptyDefaultsFilledWithZeros) {
  SpecificationConfig config;
  config.communicators = {comm("a", 2), comm("b", 2)};
  config.tasks = {task("t", {{"a", 0}}, {{"b", 1}})};
  const Specification spec = test::build_spec(std::move(config));
  const Task& t = spec.task(0);
  ASSERT_EQ(t.defaults.size(), 1u);
  EXPECT_EQ(t.defaults[0], Value::real(0.0));
}

TEST(SpecificationValidation, RejectsEmptyCommunicatorSet) {
  SpecificationConfig config;
  EXPECT_FALSE(Specification::Build(std::move(config)).ok());
}

TEST(Specification, LookupByName) {
  const Specification spec = test::build_spec(fig1_config());
  EXPECT_TRUE(spec.find_communicator("c1").has_value());
  EXPECT_FALSE(spec.find_communicator("zz").has_value());
  EXPECT_TRUE(spec.find_task("t").has_value());
  EXPECT_FALSE(spec.find_task("zz").has_value());
}

TEST(Specification, ReadersTracksDistinctTasks) {
  SpecificationConfig config;
  config.communicators = {comm("in", 2), comm("o1", 2), comm("o2", 2)};
  config.tasks = {task("t1", {{"in", 0}, {"in", 1}}, {{"o1", 2}}),
                  task("t2", {{"in", 0}}, {{"o2", 2}})};
  const Specification spec = test::build_spec(std::move(config));
  const CommId in = *spec.find_communicator("in");
  // t1 reads `in` twice but is registered once.
  EXPECT_EQ(spec.readers_of(in).size(), 2u);
  EXPECT_EQ(spec.input_comm_set(*spec.find_task("t1")).size(), 1u);
}

}  // namespace
}  // namespace lrt::spec
