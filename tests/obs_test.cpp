// Unit tests for src/obs: metrics merge determinism across thread counts,
// histogram bucket-edge semantics, trace-ring overflow, Chrome trace
// round-trip through the support/json parser, and the null-sink macro
// surface.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/session.h"
#include "obs/sink.h"
#include "obs/trace.h"
#include "support/json.h"

namespace lrt::obs {
namespace {

// --- MetricsRegistry ---

/// The reference workload: 1200 counter bumps, 300 gauge writes from one
/// logical stream, and 600 histogram samples, split across `threads`
/// workers. Counter adds and histogram records commute, so every split
/// must merge to the same snapshot.
void run_workload(MetricsRegistry& registry, unsigned threads) {
  constexpr int kItems = 1200;
  std::vector<std::thread> workers;
  for (unsigned w = 0; w < threads; ++w) {
    workers.emplace_back([&registry, w, threads] {
      for (int i = static_cast<int>(w); i < kItems;
           i += static_cast<int>(threads)) {
        registry.counter_add("work.items");
        if (i % 3 == 0) registry.counter_add("work.triples", 2);
        if (i % 2 == 0)
          registry.histogram_record("work.cost", 0.5 * (i % 40));
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  // Gauges keep the latest write; a single writer keeps that
  // deterministic regardless of how the counters were sharded.
  for (int i = 0; i < 300; ++i)
    registry.gauge_set("work.level", static_cast<double>(i));
}

TEST(MetricsRegistry, SnapshotIsDeterministicAcrossThreadCounts) {
  std::string reference;
  for (const unsigned threads : {1u, 2u, 8u}) {
    MetricsRegistry registry;
    run_workload(registry, threads);
    const std::string json = registry.snapshot().to_json();
    if (reference.empty()) {
      reference = json;
    } else {
      EXPECT_EQ(json, reference) << "thread count " << threads;
    }
  }
  EXPECT_NE(reference.find("\"work.items\":1200"), std::string::npos)
      << reference;
}

TEST(MetricsRegistry, CountersAccumulateAndDefaultToZero) {
  MetricsRegistry registry;
  registry.counter_add("a");
  registry.counter_add("a", 41);
  const MetricsSnapshot snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counter("a"), 42);
  EXPECT_EQ(snapshot.counter("never.touched"), 0);
}

TEST(MetricsRegistry, SnapshotOrdersEntriesByName) {
  MetricsRegistry registry;
  registry.counter_add("zeta");
  registry.counter_add("alpha");
  registry.counter_add("mid");
  const MetricsSnapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.counters.size(), 3u);
  EXPECT_EQ(snapshot.counters[0].first, "alpha");
  EXPECT_EQ(snapshot.counters[1].first, "mid");
  EXPECT_EQ(snapshot.counters[2].first, "zeta");
}

TEST(MetricsRegistry, HistogramBucketEdgesAreInclusiveUpperBounds) {
  MetricsRegistry registry;
  registry.set_histogram_buckets("h", {1.0, 10.0, 100.0});
  // One sample per region: at/below an edge counts in that edge's bucket,
  // above the last edge counts in the overflow bucket.
  registry.histogram_record("h", 0.5);    // <= 1       -> bucket 0
  registry.histogram_record("h", 1.0);    // == edge    -> bucket 0
  registry.histogram_record("h", 1.01);   // (1, 10]    -> bucket 1
  registry.histogram_record("h", 10.0);   // == edge    -> bucket 1
  registry.histogram_record("h", 100.0);  // == edge    -> bucket 2
  registry.histogram_record("h", 1e9);    // overflow   -> bucket 3
  const MetricsSnapshot snapshot = registry.snapshot();
  const HistogramSnapshot* h = snapshot.histogram("h");
  ASSERT_NE(h, nullptr);
  ASSERT_EQ(h->upper_edges.size(), 3u);
  ASSERT_EQ(h->buckets.size(), 4u);
  EXPECT_EQ(h->buckets[0], 2);
  EXPECT_EQ(h->buckets[1], 2);
  EXPECT_EQ(h->buckets[2], 1);
  EXPECT_EQ(h->buckets[3], 1);
  EXPECT_EQ(h->count, 6);
  EXPECT_DOUBLE_EQ(h->min, 0.5);
  EXPECT_DOUBLE_EQ(h->max, 1e9);
}

TEST(MetricsRegistry, HistogramTracksSumMinMax) {
  MetricsRegistry registry;
  registry.histogram_record("h", 2.0);
  registry.histogram_record("h", -3.0);
  registry.histogram_record("h", 7.0);
  const MetricsSnapshot snapshot = registry.snapshot();
  const HistogramSnapshot* h = snapshot.histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 3);
  EXPECT_DOUBLE_EQ(h->sum, 6.0);
  EXPECT_DOUBLE_EQ(h->min, -3.0);
  EXPECT_DOUBLE_EQ(h->max, 7.0);
}

TEST(MetricsRegistry, GaugeKeepsLatestWrite) {
  MetricsRegistry registry;
  registry.gauge_set("g", 1.0);
  registry.gauge_set("g", 5.0);
  registry.gauge_set("g", 3.0);
  const MetricsSnapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snapshot.gauges[0].second, 3.0);
}

TEST(MetricsRegistry, SnapshotJsonParsesBack) {
  MetricsRegistry registry;
  registry.counter_add("c", 7);
  registry.gauge_set("g", 2.5);
  registry.histogram_record("h", 1.0);
  const auto parsed = parse_json(registry.snapshot().to_json());
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  const JsonValue* counters = parsed->find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* c = counters->find("c");
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(c->number, 7.0);
  ASSERT_NE(parsed->find("gauges"), nullptr);
  ASSERT_NE(parsed->find("histograms"), nullptr);
}

// --- Tracer ---

TEST(Tracer, RingOverflowDropsOldestAndCountsDrops) {
  MetricsRegistry metrics;
  Tracer tracer(/*capacity=*/4);
  tracer.set_drop_counter(&metrics);
  for (int i = 0; i < 10; ++i) {
    tracer.instant("test", "e" + std::to_string(i));
  }
  const std::vector<TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest first, and the six oldest (e0..e5) were dropped.
  EXPECT_EQ(events[0].name, "e6");
  EXPECT_EQ(events[1].name, "e7");
  EXPECT_EQ(events[2].name, "e8");
  EXPECT_EQ(events[3].name, "e9");
  EXPECT_EQ(tracer.dropped(), 6);
  EXPECT_EQ(metrics.snapshot().counter("trace.dropped"), 6);
}

TEST(Tracer, ChromeJsonRoundTripsThroughSupportJson) {
  Tracer tracer;
  tracer.complete("sim", "run", 10, 250, {{"trials", 32.0}});
  tracer.instant("adapt", "repair", {{"host", 1.0}, {"t", 4000.0}});
  const auto parsed = parse_json(tracer.to_chrome_json());
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  const JsonValue* events = parsed->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array.size(), 2u);

  const JsonValue& span = events->array[0];
  ASSERT_NE(span.find("ph"), nullptr);
  EXPECT_EQ(span.find("ph")->string, "X");
  EXPECT_EQ(span.find("cat")->string, "sim");
  EXPECT_EQ(span.find("name")->string, "run");
  EXPECT_DOUBLE_EQ(span.find("ts")->number, 10.0);
  EXPECT_DOUBLE_EQ(span.find("dur")->number, 240.0);
  const JsonValue* span_args = span.find("args");
  ASSERT_NE(span_args, nullptr);
  ASSERT_NE(span_args->find("trials"), nullptr);
  EXPECT_DOUBLE_EQ(span_args->find("trials")->number, 32.0);

  const JsonValue& instant = events->array[1];
  EXPECT_EQ(instant.find("ph")->string, "i");
  EXPECT_EQ(instant.find("cat")->string, "adapt");
  ASSERT_NE(instant.find("args"), nullptr);
  EXPECT_DOUBLE_EQ(instant.find("args")->find("host")->number, 1.0);
}

TEST(Tracer, JsonlEmitsOneParsableObjectPerLine) {
  Tracer tracer;
  tracer.instant("a", "one");
  tracer.instant("b", "two");
  const std::string jsonl = tracer.to_jsonl();
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < jsonl.size()) {
    const std::size_t end = jsonl.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    lines.push_back(jsonl.substr(start, end - start));
    start = end + 1;
  }
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& line : lines) {
    const auto parsed = parse_json(line);
    ASSERT_TRUE(parsed.ok()) << line;
    EXPECT_TRUE(parsed->is_object());
  }
}

TEST(Tracer, AssignsDenseThreadIds) {
  Tracer tracer;
  tracer.instant("t", "main");
  std::thread([&tracer] { tracer.instant("t", "worker"); }).join();
  const std::vector<TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].tid, 0u);
  EXPECT_EQ(events[1].tid, 1u);
}

// --- Sink / macros ---

TEST(Sink, NullSinkHelpersAreNoOps) {
  const Sink sink;
  EXPECT_FALSE(sink.enabled());
  sink.counter_add("x");
  sink.gauge_set("x", 1.0);
  sink.histogram_record("x", 1.0);
  sink.instant("cat", "x");  // must not crash
}

TEST(Sink, ResolveFallsBackToGlobal) {
  ASSERT_EQ(global_sink(), nullptr);
  MetricsRegistry metrics;
  Sink sink(&metrics, nullptr);
  EXPECT_EQ(resolve_sink(&sink), &sink);
  EXPECT_EQ(resolve_sink(nullptr), nullptr);
  Sink* previous = set_global_sink(&sink);
  EXPECT_EQ(previous, nullptr);
  EXPECT_EQ(resolve_sink(nullptr), &sink);
  set_global_sink(nullptr);
  EXPECT_EQ(resolve_sink(nullptr), nullptr);
}

TEST(Sink, MacrosAreInertWithoutGlobalSinkAndLiveWithOne) {
  ASSERT_EQ(global_sink(), nullptr);
  {
    LRT_TRACE_SPAN("test", "disabled");
    LRT_COUNTER_ADD("test.count", 1);
  }
  MetricsRegistry metrics;
  Tracer tracer;
  Sink sink(&metrics, &tracer);
  set_global_sink(&sink);
  {
    LRT_TRACE_SPAN("test", "enabled");
    LRT_COUNTER_ADD("test.count", 3);
  }
  set_global_sink(nullptr);
  EXPECT_EQ(metrics.snapshot().counter("test.count"), 3);
  const std::vector<TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "enabled");
  EXPECT_EQ(events[0].phase, TraceEvent::Phase::kComplete);
}

// --- ScopedSession ---

TEST(ScopedSession, InertWhenNoPathsRequested) {
  const SessionOptions options;
  const ScopedSession session(options);
  EXPECT_EQ(global_sink(), nullptr);
}

TEST(ScopedSession, InstallsAndRemovesGlobalSink) {
  SessionOptions options;
  options.metrics_out = testing::TempDir() + "obs_session_metrics.json";
  options.trace_out = testing::TempDir() + "obs_session_trace.json";
  {
    const ScopedSession session(options);
    ASSERT_NE(global_sink(), nullptr);
    LRT_COUNTER_ADD("session.count", 5);
  }
  EXPECT_EQ(global_sink(), nullptr);
  std::FILE* metrics = std::fopen(options.metrics_out.c_str(), "r");
  ASSERT_NE(metrics, nullptr);
  std::string text(1 << 16, '\0');
  text.resize(std::fread(text.data(), 1, text.size(), metrics));
  std::fclose(metrics);
  const auto parsed = parse_json(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  const JsonValue* counters = parsed->find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->find("session.count"), nullptr);
  EXPECT_DOUBLE_EQ(counters->find("session.count")->number, 5.0);

  std::FILE* trace = std::fopen(options.trace_out.c_str(), "r");
  ASSERT_NE(trace, nullptr);
  std::fclose(trace);
}

}  // namespace
}  // namespace lrt::obs
