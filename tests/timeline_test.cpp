// Tests for the ASCII schedule renderer.
#include <gtest/gtest.h>

#include "plant/three_tank_system.h"
#include "sched/schedulability.h"
#include "sched/timeline.h"
#include "tests/test_util.h"

namespace lrt::sched {
namespace {

TEST(Timeline, RendersHostsAndLegend) {
  auto system = plant::make_three_tank_system({});
  ASSERT_TRUE(system.ok());
  const auto report = analyze_schedulability(*system->implementation);
  ASSERT_TRUE(report.ok());
  const std::string timeline =
      render_timeline(*report, *system->implementation);
  // One row per host plus header and legend.
  EXPECT_NE(timeline.find("h1 |"), std::string::npos);
  EXPECT_NE(timeline.find("h2 |"), std::string::npos);
  EXPECT_NE(timeline.find("h3 |"), std::string::npos);
  EXPECT_NE(timeline.find("legend:"), std::string::npos);
  EXPECT_NE(timeline.find("=t1"), std::string::npos);
  EXPECT_NE(timeline.find("=read1"), std::string::npos);
  EXPECT_EQ(timeline.find("INFEASIBLE"), std::string::npos);
}

TEST(Timeline, ShortSlicesStayVisible) {
  auto system = test::single_host_system(test::chain_spec_config(1));
  const auto report = analyze_schedulability(*system.impl);
  ASSERT_TRUE(report.ok());
  const std::string timeline = render_timeline(*report, *system.impl, 10);
  // The single task paints at least one 'A' cell.
  EXPECT_NE(timeline.find('A'), std::string::npos);
}

TEST(Timeline, MarksInfeasibleHosts) {
  // WCET larger than the window.
  test::System system = test::single_host_system(test::chain_spec_config(1));
  arch::ArchitectureConfig arch_config;
  arch_config.hosts = {{"h0", 0.9}};
  arch_config.sensors = {{"sens_c0", 0.9}};
  arch_config.default_wcet = 100;
  arch_config.default_wctt = 1;
  system.arch = std::make_unique<arch::Architecture>(
      std::move(arch::Architecture::Build(std::move(arch_config))).value());
  impl::ImplementationConfig impl_config;
  impl_config.task_mappings = {{"task1", {"h0"}}};
  impl_config.sensor_bindings = {{"c0", "sens_c0"}};
  system.impl = std::make_unique<impl::Implementation>(
      std::move(impl::Implementation::Build(*system.spec, *system.arch,
                                            std::move(impl_config)))
          .value());
  const auto report = analyze_schedulability(*system.impl);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->schedulable);
  const std::string timeline = render_timeline(*report, *system.impl);
  EXPECT_NE(timeline.find("INFEASIBLE"), std::string::npos);
}

}  // namespace
}  // namespace lrt::sched
