// Unit tests for src/support: Status/Result, Rational, RNG, math helpers,
// string helpers, hashing, and the argument parser.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "support/argparse.h"
#include "support/hash.h"
#include "support/math_util.h"
#include "support/rational.h"
#include "support/rng.h"
#include "support/status.h"
#include "support/strings.h"

namespace lrt {
namespace {

// --- Status / Result ---

TEST(Status, DefaultIsOk) {
  const Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.to_string(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  const Status status = InvalidArgumentError("bad period");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad period");
  EXPECT_EQ(status.to_string(), "INVALID_ARGUMENT: bad period");
}

TEST(Status, AllFactoriesProduceDistinctCodes) {
  const std::vector<Status> statuses = {
      InvalidArgumentError("a"), NotFoundError("b"), AlreadyExistsError("c"),
      FailedPreconditionError("d"), OutOfRangeError("e"),
      UnsatisfiableError("f"), ParseError("g"), InternalError("h")};
  std::set<StatusCode> codes;
  for (const Status& status : statuses) codes.insert(status.code());
  EXPECT_EQ(codes.size(), statuses.size());
}

TEST(Result, HoldsValue) {
  const Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value_or(7), 42);
}

TEST(Result, HoldsError) {
  const Result<int> result = NotFoundError("missing");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.value_or(7), 7);
}

Result<int> half_of_even(int x) {
  if (x % 2 != 0) return InvalidArgumentError("odd");
  return x / 2;
}

Result<int> quarter(int x) {
  LRT_ASSIGN_OR_RETURN(const int half, half_of_even(x));
  LRT_ASSIGN_OR_RETURN(const int q, half_of_even(half));
  return q;
}

TEST(Result, AssignOrReturnPropagates) {
  EXPECT_EQ(*quarter(8), 2);
  EXPECT_FALSE(quarter(6).ok());   // 3 is odd
  EXPECT_FALSE(quarter(7).ok());
}

// --- Rational ---

TEST(Rational, NormalizesSignAndGcd) {
  const Rational r(6, -4);
  EXPECT_EQ(r.num(), -3);
  EXPECT_EQ(r.den(), 2);
}

TEST(Rational, Arithmetic) {
  const Rational a(1, 3);
  const Rational b(1, 6);
  EXPECT_EQ(a + b, Rational(1, 2));
  EXPECT_EQ(a - b, Rational(1, 6));
  EXPECT_EQ(a * b, Rational(1, 18));
  EXPECT_EQ(a / b, Rational(2));
  EXPECT_EQ(-a, Rational(-1, 3));
}

TEST(Rational, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_LE(Rational(5), Rational(5));
}

TEST(Rational, IntegerConversion) {
  EXPECT_TRUE(Rational(8, 4).is_integer());
  EXPECT_EQ(Rational(8, 4).to_integer(), 2);
  EXPECT_FALSE(Rational(1, 2).is_integer());
  EXPECT_DOUBLE_EQ(Rational(1, 2).to_double(), 0.5);
}

TEST(Rational, FloorCeil) {
  EXPECT_EQ(floor(Rational(7, 2)), 3);
  EXPECT_EQ(ceil(Rational(7, 2)), 4);
  EXPECT_EQ(floor(Rational(-7, 2)), -4);
  EXPECT_EQ(ceil(Rational(-7, 2)), -3);
  EXPECT_EQ(floor(Rational(4)), 4);
  EXPECT_EQ(ceil(Rational(4)), 4);
}

TEST(Rational, ToString) {
  EXPECT_EQ(Rational(3).to_string(), "3");
  EXPECT_EQ(Rational(-1, 2).to_string(), "-1/2");
}

// --- RNG ---

TEST(Rng, DeterministicForSeed) {
  Xoshiro256 a(12345);
  Xoshiro256 b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, DoubleInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Xoshiro256 rng(99);
  const int n = 200'000;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  const double rate = static_cast<double>(hits) / n;
  EXPECT_NEAR(rate, 0.3, 0.01);
}

TEST(Rng, BernoulliDegenerateProbabilities) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, NextBelowStaysInRange) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, SplitProducesIndependentStream) {
  Xoshiro256 parent(42);
  Xoshiro256 child = parent.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next() == child.next()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

// --- math_util ---

TEST(MathUtil, LcmGcd) {
  const std::vector<std::int64_t> values = {2, 3, 4, 2};
  EXPECT_EQ(lcm_all(values), 12);
  EXPECT_EQ(gcd_all(values), 1);
  const std::vector<std::int64_t> harmonic = {100, 500};
  EXPECT_EQ(lcm_all(harmonic), 500);
  EXPECT_EQ(gcd_all(harmonic), 100);
  EXPECT_EQ(lcm_all({}), 1);
  EXPECT_EQ(gcd_all({}), 0);
}

TEST(MathUtil, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 5), 2);
  EXPECT_EQ(ceil_div(11, 5), 3);
  EXPECT_EQ(ceil_div(0, 5), 0);
}

TEST(MathUtil, ProbabilityPredicates) {
  EXPECT_TRUE(is_probability(0.0));
  EXPECT_TRUE(is_probability(1.0));
  EXPECT_FALSE(is_probability(-0.1));
  EXPECT_FALSE(is_probability(1.1));
  EXPECT_FALSE(is_probability(std::nan("")));
  EXPECT_FALSE(is_reliability(0.0));
  EXPECT_TRUE(is_reliability(1.0));
  EXPECT_TRUE(is_reliability(1e-9));
}

TEST(MathUtil, SeriesAndParallelComposition) {
  const std::vector<double> ps = {0.9, 0.8};
  EXPECT_NEAR(series_and(ps), 0.72, 1e-12);
  EXPECT_NEAR(parallel_or(ps), 1.0 - 0.1 * 0.2, 1e-12);
  EXPECT_DOUBLE_EQ(series_and({}), 1.0);
  EXPECT_DOUBLE_EQ(parallel_or({}), 0.0);
}

TEST(MathUtil, PaperReplicationExample) {
  // Paper Section 1: two hosts with SRG 0.8 => 1 - 0.2^2 = 0.96 >= 0.9.
  const std::vector<double> two_hosts = {0.8, 0.8};
  EXPECT_NEAR(parallel_or(two_hosts), 0.96, 1e-12);
  EXPECT_TRUE(approx_ge(parallel_or(two_hosts), 0.9));
}

TEST(MathUtil, ApproxComparisons) {
  EXPECT_TRUE(approx_equal(0.1 + 0.2, 0.3));
  EXPECT_FALSE(approx_equal(0.1, 0.2));
  EXPECT_TRUE(approx_ge(0.3, 0.3 + 1e-12));
  EXPECT_FALSE(approx_ge(0.2, 0.3));
}

// --- strings ---

TEST(Strings, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x y \t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"x"}, ","), "x");
}

TEST(Strings, IsIdentifier) {
  EXPECT_TRUE(is_identifier("t1"));
  EXPECT_TRUE(is_identifier("_private"));
  EXPECT_TRUE(is_identifier("Read_1"));
  EXPECT_FALSE(is_identifier(""));
  EXPECT_FALSE(is_identifier("1task"));
  EXPECT_FALSE(is_identifier("a-b"));
  EXPECT_FALSE(is_identifier("a b"));
}

TEST(Strings, FormatDouble) {
  EXPECT_EQ(format_double(0.5), "0.5");
  EXPECT_EQ(format_double(0.970299), "0.970299");
}

// --- Wire-stable status code names ---

TEST(Status, CodeNamesRoundTrip) {
  const StatusCode codes[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kNotFound,     StatusCode::kAlreadyExists,
      StatusCode::kFailedPrecondition, StatusCode::kOutOfRange,
      StatusCode::kUnsatisfiable, StatusCode::kParseError,
      StatusCode::kInternal,     StatusCode::kUnavailable,
      StatusCode::kDeadlineExceeded};
  for (const StatusCode code : codes) {
    const std::string_view name = status_code_name(code);
    EXPECT_EQ(status_code_from_name(name), code) << name;
  }
  EXPECT_EQ(status_code_name(StatusCode::kInvalidArgument),
            "kInvalidArgument");
  EXPECT_FALSE(status_code_from_name("INVALID_ARGUMENT").has_value());
  EXPECT_FALSE(status_code_from_name("").has_value());
}

// --- Hashing ---

TEST(Hash, BytesAreStableAndSeedChained) {
  const std::uint64_t first = hash_bytes("abc");
  EXPECT_EQ(first, hash_bytes("abc"));  // deterministic across calls
  EXPECT_NE(first, hash_bytes("abd"));
  EXPECT_NE(first, hash_bytes("abc", first));  // seed chains
  EXPECT_NE(hash_bytes(""), hash_bytes("", 1));
}

// --- ArgParser subcommands ---

TEST(ArgParser, SubcommandReceivesItsFlagValues) {
  // Regression: the nested parser used to be handed an argc computed
  // AFTER the parent's argc was overwritten with its compacted count,
  // so `lrtd serve --socket /x` silently kept every default.
  ArgParser parser("tool", "test tool");
  ArgParser& serve = parser.add_subcommand("serve", "run the server");
  std::string socket = "/tmp/default.sock";
  std::int64_t threads = 0;
  serve.add_string("--socket", &socket, "socket path");
  serve.add_int("--threads", &threads, "worker count");

  const char* argv[] = {"tool", "serve", "--socket", "/tmp/custom.sock",
                        "--threads", "7"};
  const Status status =
      parser.parse(6, const_cast<char**>(argv));
  ASSERT_TRUE(status.ok()) << status.to_string();
  EXPECT_EQ(parser.selected_subcommand(), "serve");
  EXPECT_EQ(parser.subcommand_parser(), &serve);
  EXPECT_EQ(socket, "/tmp/custom.sock");
  EXPECT_EQ(threads, 7);
}

TEST(ArgParser, ParentFlagsMayPrecedeTheSubcommand) {
  ArgParser parser("tool", "test tool");
  bool verbose = false;
  parser.add_flag("--verbose", &verbose, "chatty output");
  ArgParser& ping = parser.add_subcommand("ping", "ping the server");
  std::string socket;
  ping.add_string("--socket", &socket, "socket path");

  const char* argv[] = {"tool", "--verbose", "ping", "--socket", "/s"};
  const Status status = parser.parse(5, const_cast<char**>(argv));
  ASSERT_TRUE(status.ok()) << status.to_string();
  EXPECT_TRUE(verbose);
  EXPECT_EQ(parser.selected_subcommand(), "ping");
  EXPECT_EQ(socket, "/s");
}

TEST(ArgParser, MissingOrUnknownSubcommandIsAnError) {
  ArgParser parser("tool", "test tool");
  (void)parser.add_subcommand("serve", "run the server");

  const char* missing[] = {"tool"};
  EXPECT_FALSE(parser.parse(1, const_cast<char**>(missing)).ok());

  ArgParser again("tool", "test tool");
  (void)again.add_subcommand("serve", "run the server");
  const char* unknown[] = {"tool", "fly"};
  EXPECT_FALSE(again.parse(2, const_cast<char**>(unknown)).ok());
}

}  // namespace
}  // namespace lrt
