// Edge cases of the calendar-queue event wheel: the deterministic
// simultaneous-event order, wheel rollover past the hyperperiod,
// cancellation, the empty-calendar fast-forward, and a randomized
// differential against a reference heap.
#include "sim/event_queue.h"

#include <algorithm>
#include <cstdint>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "support/rng.h"

namespace lrt::sim {
namespace {

std::vector<Event> drain(EventQueue& queue) {
  std::vector<Event> popped;
  while (!queue.empty()) {
    EXPECT_EQ(queue.next_time(), queue.next_time());  // peek is pure
    popped.push_back(queue.pop());
  }
  return popped;
}

TEST(EventQueue, SimultaneousEventsPopInClassThenInsertionOrder) {
  EventQueue queue(/*bucket_width=*/4, /*num_buckets=*/8);
  // Insert at one instant in an order scrambled across classes; two
  // kCommAccess entries distinguish the insertion-sequence tie-break.
  queue.schedule(10, EventClass::kTaskRelease, 7);
  queue.schedule(10, EventClass::kCommAccess, 1);
  queue.schedule(10, EventClass::kHostAvailability, 0);
  queue.schedule(10, EventClass::kCommAccess, 2);
  queue.schedule(10, EventClass::kPeriodBoundary, 0);

  const std::vector<Event> popped = drain(queue);
  ASSERT_EQ(popped.size(), 5u);
  EXPECT_EQ(popped[0].klass, EventClass::kHostAvailability);
  EXPECT_EQ(popped[1].klass, EventClass::kPeriodBoundary);
  EXPECT_EQ(popped[2].klass, EventClass::kCommAccess);
  EXPECT_EQ(popped[2].payload, 1u);  // scheduled before payload 2
  EXPECT_EQ(popped[3].klass, EventClass::kCommAccess);
  EXPECT_EQ(popped[3].payload, 2u);
  EXPECT_EQ(popped[4].klass, EventClass::kTaskRelease);
}

TEST(EventQueue, OrderIsIndependentOfBucketGeometry) {
  // The same schedule under adversarial geometries (width 1, width larger
  // than every timestamp, a 2-bucket wheel) must pop identically.
  const std::vector<std::pair<spec::Time, EventClass>> inserts = {
      {30, EventClass::kCommAccess},  {5, EventClass::kTaskRelease},
      {30, EventClass::kTaskRelease}, {0, EventClass::kPeriodBoundary},
      {17, EventClass::kCommAccess},  {5, EventClass::kCommAccess},
      {64, EventClass::kHostAvailability}};
  std::vector<std::vector<Event>> runs;
  for (const auto& [width, buckets] :
       std::vector<std::pair<spec::Time, std::size_t>>{
           {1, 2}, {1, 256}, {7, 4}, {1000, 8}}) {
    EventQueue queue(width, buckets);
    for (const auto& [time, klass] : inserts) queue.schedule(time, klass);
    runs.push_back(drain(queue));
  }
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].size(), runs[0].size());
    for (std::size_t i = 0; i < runs[0].size(); ++i) {
      EXPECT_EQ(runs[r][i].time, runs[0][i].time) << "run " << r;
      EXPECT_EQ(runs[r][i].klass, runs[0][i].klass) << "run " << r;
      EXPECT_EQ(runs[r][i].seq, runs[0][i].seq) << "run " << r;
    }
  }
}

TEST(EventQueue, WheelRolloverPastHyperperiod) {
  // Wheel span is 4 * 8 = 32 ticks; a periodic source rescheduling itself
  // crosses the year boundary many times (the hyperperiod-crossing case
  // of the event runtime, where releases re-arm at t + pi_S).
  EventQueue queue(/*bucket_width=*/4, /*num_buckets=*/8);
  queue.schedule(0, EventClass::kCommAccess);
  spec::Time expected = 0;
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(queue.next_time(), expected);
    const Event event = queue.pop();
    EXPECT_EQ(event.time, expected);
    queue.schedule(event.time + 13, EventClass::kCommAccess);
    expected += 13;  // 13 shares no factor with the wheel span
  }
  EXPECT_EQ(queue.size(), 1u);
}

TEST(EventQueue, CancelRemovesPendingEvent) {
  EventQueue queue(/*bucket_width=*/2, /*num_buckets=*/4);
  const EventQueue::Handle keep =
      queue.schedule(6, EventClass::kTaskRelease, 1);
  const EventQueue::Handle gone =
      queue.schedule(3, EventClass::kTaskRelease, 2);
  EXPECT_TRUE(queue.cancel(gone));
  EXPECT_FALSE(queue.cancel(gone)) << "double-cancel must report false";
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue.next_time(), 6);  // the cancelled min is never surfaced
  const Event event = queue.pop();
  EXPECT_EQ(event.payload, 1u);
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(queue.cancel(keep)) << "popped handles are dead";
  EXPECT_FALSE(queue.cancel(EventQueue::kInvalidHandle));
}

TEST(EventQueue, CancellingWholeBucketLeavesQueueConsistent) {
  EventQueue queue(/*bucket_width=*/10, /*num_buckets=*/4);
  std::vector<EventQueue::Handle> handles;
  for (spec::Time t = 0; t < 12; ++t) {
    handles.push_back(queue.schedule(t, EventClass::kCommAccess, t));
  }
  // Tombstone the entire first bucket [0, 10).
  for (spec::Time t = 0; t < 10; ++t) EXPECT_TRUE(queue.cancel(handles[t]));
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.pop().payload, 10u);
  EXPECT_EQ(queue.pop().payload, 11u);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, EmptyCalendarFastForwardSkipsIdleYears) {
  // One event a million ticks out on a tiny wheel: pop must find it
  // without ever spinning a tick-per-bucket scan (this completing at all
  // in test time is the property; years span 8 ticks here).
  EventQueue queue(/*bucket_width=*/1, /*num_buckets=*/8);
  queue.schedule(1'000'000, EventClass::kCommAccess, 42);
  queue.schedule(2'000'003, EventClass::kTaskRelease, 43);
  EXPECT_EQ(queue.next_time(), 1'000'000);
  EXPECT_EQ(queue.pop().payload, 42u);
  EXPECT_EQ(queue.next_time(), 2'000'003);
  EXPECT_EQ(queue.pop().payload, 43u);
}

TEST(EventQueue, SchedulingBehindTheCursorRewindsTheScan) {
  EventQueue queue(/*bucket_width=*/2, /*num_buckets=*/4);
  queue.schedule(100, EventClass::kCommAccess, 1);
  EXPECT_EQ(queue.next_time(), 100);  // fast-forwards the cursor to t=100
  // The event runtime schedules strictly forward, but the structure must
  // stay a correct priority queue for out-of-order inserts too.
  queue.schedule(4, EventClass::kCommAccess, 2);
  EXPECT_EQ(queue.next_time(), 4);
  EXPECT_EQ(queue.pop().payload, 2u);
  EXPECT_EQ(queue.pop().payload, 1u);
}

TEST(EventQueue, StaleHandlesStayDeadAfterSlotReuse) {
  EventQueue queue(/*bucket_width=*/1, /*num_buckets=*/4);
  const EventQueue::Handle a = queue.schedule(5, EventClass::kCommAccess, 1);
  EXPECT_TRUE(queue.cancel(a));
  // The next schedule recycles a's slot under a bumped generation: the
  // stale handle must not be able to reach the new occupant.
  const EventQueue::Handle b = queue.schedule(9, EventClass::kCommAccess, 2);
  EXPECT_NE(a, b);
  EXPECT_FALSE(queue.cancel(a));
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue.pop().payload, 2u);
  EXPECT_FALSE(queue.cancel(b)) << "popped handles are dead";
  EXPECT_EQ(queue.stats().scheduled, 2);
  EXPECT_EQ(queue.stats().cancelled, 1);
  EXPECT_EQ(queue.stats().popped, 1);
}

TEST(EventQueue, WheelResizesWithPopulation) {
  EventQueue queue(/*bucket_width=*/1, /*num_buckets=*/2);
  ASSERT_EQ(queue.num_buckets(), 2u);
  std::vector<EventQueue::Handle> handles;
  for (spec::Time t = 0; t < 100; ++t) {
    handles.push_back(
        queue.schedule(t, EventClass::kCommAccess,
                       static_cast<std::uint64_t>(t)));
  }
  // Doubles whenever live > 4 * buckets: at 9, 17, 33, and 65 entries.
  EXPECT_EQ(queue.num_buckets(), 32u);
  const std::int64_t grow_resizes = queue.stats().resizes;
  EXPECT_EQ(grow_resizes, 4);
  for (spec::Time t = 0; t < 99; ++t) EXPECT_TRUE(queue.cancel(handles[t]));
  EXPECT_LT(queue.num_buckets(), 32u);
  EXPECT_GE(queue.num_buckets(), 2u);
  EXPECT_GT(queue.stats().resizes, grow_resizes);
  // The survivor still pops correctly off the shrunken wheel.
  EXPECT_EQ(queue.pop().payload, 99u);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, SteadyStateHoldsAllocationsFlat) {
  // A periodic source rescheduling itself forever: after warmup the slot
  // free list and the bucket capacities absorb all churn — thousands of
  // further cycles cause zero new heap growth.
  EventQueue queue(/*bucket_width=*/4, /*num_buckets=*/8);
  queue.schedule(0, EventClass::kCommAccess);
  for (int i = 0; i < 100; ++i) {
    const Event event = queue.pop();
    queue.schedule(event.time + 7, EventClass::kCommAccess);
  }
  const std::int64_t warm_allocations = queue.stats().allocations;
  const std::int64_t warm_resizes = queue.stats().resizes;
  for (int i = 0; i < 5000; ++i) {
    const Event event = queue.pop();
    queue.schedule(event.time + 7, EventClass::kCommAccess);
  }
  EXPECT_EQ(queue.stats().allocations, warm_allocations);
  EXPECT_EQ(queue.stats().resizes, warm_resizes);
  EXPECT_EQ(queue.stats().scheduled, 5101);
  EXPECT_EQ(queue.stats().popped, 5100);
}

TEST(EventQueue, ResizesNeverChangePopOrder) {
  // The same traffic on geometries that resize at different points (the
  // 2-bucket wheels grow repeatedly, the 256-bucket one mostly shrinks)
  // must tell the same (time, class, seq) story: the total order is a
  // pure function of the schedule history.
  std::vector<std::vector<Event>> runs;
  std::int64_t max_resizes = 0;
  for (const auto& [width, buckets] :
       std::vector<std::pair<spec::Time, std::size_t>>{
           {1, 2}, {3, 2}, {1, 256}, {50, 4}}) {
    EventQueue queue(width, buckets);
    Xoshiro256 rng(7);
    std::vector<EventQueue::Handle> handles;
    for (std::uint64_t i = 0; i < 300; ++i) {
      handles.push_back(queue.schedule(
          static_cast<spec::Time>(rng.next_below(500)),
          static_cast<EventClass>(rng.next_below(4)), i));
    }
    for (std::size_t i = 0; i < handles.size(); i += 3) {
      EXPECT_TRUE(queue.cancel(handles[i]));
    }
    runs.push_back(drain(queue));
    max_resizes = std::max(max_resizes, queue.stats().resizes);
  }
  EXPECT_GT(max_resizes, 0) << "traffic never exercised a resize";
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].size(), runs[0].size());
    for (std::size_t i = 0; i < runs[0].size(); ++i) {
      EXPECT_EQ(runs[r][i].time, runs[0][i].time) << "run " << r;
      EXPECT_EQ(runs[r][i].klass, runs[0][i].klass) << "run " << r;
      EXPECT_EQ(runs[r][i].seq, runs[0][i].seq) << "run " << r;
      EXPECT_EQ(runs[r][i].payload, runs[0][i].payload) << "run " << r;
    }
  }
}

TEST(EventQueue, RandomizedDifferentialAgainstReferenceHeap) {
  // Mixed schedule/cancel/pop traffic against a tombstone-free reference
  // ordered by the same (time, class, seq) key.
  using Key = std::tuple<spec::Time, int, std::uint64_t>;
  Xoshiro256 rng(20260808);
  for (int round = 0; round < 20; ++round) {
    EventQueue queue(/*bucket_width=*/1 + round % 5,
                     /*num_buckets=*/2 + round % 7);
    std::vector<std::pair<EventQueue::Handle, Key>> live;
    spec::Time horizon = 0;
    for (int op = 0; op < 400; ++op) {
      const double roll = rng.next_double();
      if (roll < 0.55 || live.empty()) {
        const spec::Time time =
            horizon + static_cast<spec::Time>(rng.next_below(50));
        const auto klass = static_cast<EventClass>(rng.next_below(4));
        const EventQueue::Handle handle = queue.schedule(time, klass);
        live.emplace_back(handle,
                          Key{time, static_cast<int>(klass), handle});
      } else if (roll < 0.7 && !live.empty()) {
        const std::size_t pick = rng.next_below(live.size());
        EXPECT_TRUE(queue.cancel(live[pick].first));
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      } else {
        // Rebuild the reference min from the live set (handles are issued
        // in insertion order, so they stand in for seq).
        const auto min_it = std::min_element(
            live.begin(), live.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
        ASSERT_EQ(queue.size(), live.size());
        const Event event = queue.pop();
        EXPECT_EQ(event.time, std::get<0>(min_it->second));
        EXPECT_EQ(static_cast<int>(event.klass), std::get<1>(min_it->second));
        horizon = event.time;  // pops are monotone in this traffic pattern
        live.erase(min_it);
      }
    }
  }
}

}  // namespace
}  // namespace lrt::sim
