// Tests for the voting routine: the paper's any-non-bottom policy, the
// majority extension, divergence accounting, and end-to-end agreement of
// the two policies under the paper's determinism assumptions.
#include <gtest/gtest.h>

#include <memory>

#include "sim/runtime.h"
#include "sim/voting.h"
#include "tests/test_util.h"

namespace lrt::sim {
namespace {

using spec::Value;

TEST(Vote, AllBottomYieldsBottom) {
  const std::vector<Value> candidates = {Value::bottom(), Value::bottom()};
  std::int64_t divergences = 0;
  EXPECT_TRUE(vote(candidates, VotingPolicy::kAnyNonBottom, &divergences)
                  .is_bottom());
  EXPECT_TRUE(
      vote(candidates, VotingPolicy::kMajority, &divergences).is_bottom());
  EXPECT_EQ(divergences, 0);
  EXPECT_TRUE(vote({}, VotingPolicy::kAnyNonBottom).is_bottom());
}

TEST(Vote, AnyNonBottomPicksFirstReliable) {
  const std::vector<Value> candidates = {Value::bottom(), Value::real(3.0),
                                         Value::real(3.0)};
  std::int64_t divergences = 0;
  EXPECT_EQ(vote(candidates, VotingPolicy::kAnyNonBottom, &divergences),
            Value::real(3.0));
  EXPECT_EQ(divergences, 0);
}

TEST(Vote, MajorityPicksMostFrequent) {
  const std::vector<Value> candidates = {Value::real(1.0), Value::real(2.0),
                                         Value::real(2.0)};
  std::int64_t divergences = 0;
  EXPECT_EQ(vote(candidates, VotingPolicy::kMajority, &divergences),
            Value::real(2.0));
  EXPECT_EQ(divergences, 1);  // distinct non-bottom values observed
}

TEST(Vote, MajorityTieBreaksFirstSeen) {
  const std::vector<Value> candidates = {Value::real(5.0), Value::real(6.0)};
  EXPECT_EQ(vote(candidates, VotingPolicy::kMajority), Value::real(5.0));
}

TEST(Vote, AnyNonBottomCountsDivergenceButKeepsFirst) {
  const std::vector<Value> candidates = {Value::real(1.0), Value::real(2.0)};
  std::int64_t divergences = 0;
  EXPECT_EQ(vote(candidates, VotingPolicy::kAnyNonBottom, &divergences),
            Value::real(1.0));
  EXPECT_EQ(divergences, 1);
}

/// A replicated system whose two replicas produce identical outputs: the
/// two policies must commit identical traces (the paper's situation).
TEST(Vote, PoliciesCoincideUnderDeterminism) {
  test::System system;
  system.spec = std::make_unique<spec::Specification>(
      test::build_spec(test::chain_spec_config(1)));
  arch::ArchitectureConfig arch_config;
  arch_config.hosts = {{"h1", 0.9}, {"h2", 0.9}};
  arch_config.sensors = {{"s", 0.9}};
  system.arch = std::make_unique<arch::Architecture>(
      std::move(arch::Architecture::Build(std::move(arch_config))).value());
  impl::ImplementationConfig impl_config;
  impl_config.task_mappings = {{"task1", {"h1", "h2"}}};
  impl_config.sensor_bindings = {{"c0", "s"}};
  system.impl = std::make_unique<impl::Implementation>(
      std::move(impl::Implementation::Build(*system.spec, *system.arch,
                                            std::move(impl_config)))
          .value());

  NullEnvironment env;
  SimulationOptions options;
  options.periods = 5000;
  options.faults.seed = 3;
  options.record_values_for = {"c1"};

  options.voting_policy = VotingPolicy::kAnyNonBottom;
  const auto any = simulate(*system.impl, env, options);
  ASSERT_TRUE(any.ok());
  options.voting_policy = VotingPolicy::kMajority;
  const auto majority = simulate(*system.impl, env, options);
  ASSERT_TRUE(majority.ok());

  EXPECT_EQ(any->vote_divergences, 0);
  EXPECT_EQ(majority->vote_divergences, 0);
  const auto& trace_a = any->value_traces.at("c1");
  const auto& trace_m = majority->value_traces.at("c1");
  ASSERT_EQ(trace_a.size(), trace_m.size());
  for (std::size_t i = 0; i < trace_a.size(); ++i) {
    EXPECT_EQ(trace_a[i], trace_m[i]) << "sample " << i;
  }
}

/// A deliberately non-deterministic task (violating the paper's
/// assumption) makes replicas disagree: the runtime must detect it.
TEST(Vote, DivergenceDetectedWhenDeterminismViolated) {
  spec::SpecificationConfig config;
  config.communicators = {test::comm("in", 10), test::comm("out", 10)};
  auto bad = test::task("t", {{"in", 0}}, {{"out", 1}});
  auto counter = std::make_shared<int>(0);
  bad.function = [counter](std::span<const Value>) {
    // Each replica invocation returns a different value.
    return std::vector<Value>{Value::integer((*counter)++)};
  };
  config.communicators[1].type = spec::ValueType::kInt;
  config.communicators[1].init = Value::integer(0);
  config.tasks = {bad};

  test::System system;
  system.spec = std::make_unique<spec::Specification>(
      test::build_spec(std::move(config)));
  arch::ArchitectureConfig arch_config;
  arch_config.hosts = {{"h1", 1.0}, {"h2", 1.0}};
  arch_config.sensors = {{"s", 1.0}};
  system.arch = std::make_unique<arch::Architecture>(
      std::move(arch::Architecture::Build(std::move(arch_config))).value());
  impl::ImplementationConfig impl_config;
  impl_config.task_mappings = {{"t", {"h1", "h2"}}};
  impl_config.sensor_bindings = {{"in", "s"}};
  system.impl = std::make_unique<impl::Implementation>(
      std::move(impl::Implementation::Build(*system.spec, *system.arch,
                                            std::move(impl_config)))
          .value());

  NullEnvironment env;
  SimulationOptions options;
  options.periods = 100;
  const auto result = simulate(*system.impl, env, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->vote_divergences, 0);
}

}  // namespace
}  // namespace lrt::sim
