// Tests for the workload generator: structural guarantees (acyclic,
// race-free, fully mapped), option handling, determinism, and tree mode.
#include <gtest/gtest.h>

#include <set>

#include "gen/workload.h"
#include "reliability/analysis.h"
#include "sched/schedulability.h"
#include "spec/spec_graph.h"

namespace lrt::gen {
namespace {

TEST(Workload, GeneratedSystemsAreWellFormed) {
  Xoshiro256 rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const auto workload = random_workload(rng);
    ASSERT_TRUE(workload.ok()) << workload.status();
    const spec::SpecificationGraph graph(*workload->specification);
    EXPECT_TRUE(graph.is_memory_free());
    // Analyzable out of the box.
    EXPECT_TRUE(reliability::analyze(*workload->implementation).ok());
    EXPECT_TRUE(
        sched::analyze_schedulability(*workload->implementation).ok());
  }
}

TEST(Workload, DeterministicForSeed) {
  Xoshiro256 rng_a(77);
  Xoshiro256 rng_b(77);
  const auto a = random_workload(rng_a);
  const auto b = random_workload(rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->specification->tasks().size(),
            b->specification->tasks().size());
  ASSERT_EQ(a->specification->communicators().size(),
            b->specification->communicators().size());
  const auto srg_a = reliability::compute_srgs(*a->implementation);
  const auto srg_b = reliability::compute_srgs(*b->implementation);
  for (std::size_t c = 0; c < srg_a->size(); ++c) {
    EXPECT_DOUBLE_EQ((*srg_a)[c], (*srg_b)[c]);
  }
}

TEST(Workload, RespectsSizeBounds) {
  WorkloadOptions options;
  options.min_layers = options.max_layers = 3;
  options.min_tasks_per_layer = options.max_tasks_per_layer = 2;
  options.min_hosts = options.max_hosts = 4;
  Xoshiro256 rng(5);
  const auto workload = random_workload(rng, options);
  ASSERT_TRUE(workload.ok());
  EXPECT_EQ(workload->specification->tasks().size(), 6u);
  EXPECT_EQ(workload->architecture->hosts().size(), 4u);
}

TEST(Workload, TreeModeConsumesEachCommunicatorOnce) {
  WorkloadOptions options;
  options.tree_structured = true;
  options.max_layers = 4;
  options.max_fan_in = 3;
  Xoshiro256 rng(9);
  for (int trial = 0; trial < 25; ++trial) {
    const auto workload = random_workload(rng, options);
    ASSERT_TRUE(workload.ok());
    std::set<spec::CommId> consumed;
    for (const auto& task : workload->specification->tasks()) {
      for (const auto& port : task.inputs) {
        EXPECT_TRUE(consumed.insert(port.comm).second)
            << "communicator consumed twice in tree mode (trial " << trial
            << ")";
      }
    }
  }
}

TEST(Workload, FunctionsAttachWhenRequested) {
  WorkloadOptions options;
  options.with_functions = true;
  Xoshiro256 rng(3);
  const auto workload = random_workload(rng, options);
  ASSERT_TRUE(workload.ok());
  for (const auto& task : workload->specification->tasks()) {
    EXPECT_TRUE(static_cast<bool>(task.function)) << task.name;
  }
  Xoshiro256 rng2(3);
  const auto plain = random_workload(rng2);
  for (const auto& task : plain.value().specification->tasks()) {
    EXPECT_FALSE(static_cast<bool>(task.function)) << task.name;
  }
}

TEST(Workload, RejectsDegenerateOptions) {
  WorkloadOptions options;
  options.min_hosts = 0;
  Xoshiro256 rng(1);
  EXPECT_EQ(random_workload(rng, options).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace lrt::gen
