// Tests for the time-redundancy extension (re-execution): analytic task
// reliability, schedulability demand inflation, runtime semantics, and
// agreement between analysis and simulation.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "ecode/emachine.h"
#include "reliability/analysis.h"
#include "sched/schedulability.h"
#include "sim/runtime.h"
#include "tests/test_util.h"

namespace lrt {
namespace {

/// One task on one host with the given re-execution count and WCET.
test::System retry_system(int reexecutions, double host_rel,
                          spec::Time wcet = 2, spec::Time period = 10) {
  test::System system;
  system.spec = std::make_unique<spec::Specification>(
      test::build_spec(test::chain_spec_config(1, period)));
  arch::ArchitectureConfig arch_config;
  arch_config.hosts = {{"h0", host_rel}};
  arch_config.sensors = {{"s", 1.0}};
  arch_config.default_wcet = wcet;
  arch_config.default_wctt = 1;
  system.arch = std::make_unique<arch::Architecture>(
      std::move(arch::Architecture::Build(std::move(arch_config))).value());
  impl::ImplementationConfig impl_config;
  impl_config.task_mappings = {{"task1", {"h0"}, reexecutions}};
  impl_config.sensor_bindings = {{"c0", "s"}};
  system.impl = std::make_unique<impl::Implementation>(
      std::move(impl::Implementation::Build(*system.spec, *system.arch,
                                            std::move(impl_config)))
          .value());
  return system;
}

TEST(Reexecution, RejectsNegativeCount) {
  auto system = test::single_host_system(test::chain_spec_config(1));
  impl::ImplementationConfig config;
  config.task_mappings = {{"task1", {"h0"}, -1}};
  config.sensor_bindings = {{"c0", "sens_c0"}};
  EXPECT_EQ(impl::Implementation::Build(*system.spec, *system.arch,
                                        std::move(config))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(Reexecution, TaskReliabilityClosedForm) {
  for (const int k : {0, 1, 2, 5}) {
    auto system = retry_system(k, 0.8);
    // 1 - 0.2^(k+1).
    EXPECT_NEAR(reliability::task_reliability(*system.impl, 0),
                1.0 - std::pow(0.2, k + 1), 1e-12)
        << "k=" << k;
  }
}

TEST(Reexecution, OneRetryMatchesTwoWayReplication) {
  // Time redundancy k=1 on one 0.8 host == space redundancy on two 0.8
  // hosts: both give 0.96 (the paper's introductory replication number).
  auto time_red = retry_system(1, 0.8);
  EXPECT_NEAR(reliability::task_reliability(*time_red.impl, 0), 0.96,
              1e-12);
}

TEST(Reexecution, InflatesScheduleDemand) {
  // wcet 2, window [0, 10 - 1): k=3 => demand 8 fits; k=4 => 10 > 9.
  auto fits = retry_system(3, 0.9, /*wcet=*/2);
  const auto ok = sched::analyze_schedulability(*fits.impl);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok->schedulable);
  EXPECT_EQ(ok->jobs[0].wcet, 8);

  auto overloaded = retry_system(4, 0.9, /*wcet=*/2);
  const auto bad = sched::analyze_schedulability(*overloaded.impl);
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad->schedulable);
}

TEST(Reexecution, RuntimeMatchesAnalyticRate) {
  auto system = retry_system(2, 0.7);
  const auto srgs = reliability::compute_srgs(*system.impl);
  ASSERT_TRUE(srgs.ok());
  const double analytic =
      (*srgs)[static_cast<std::size_t>(*system.spec->find_communicator("c1"))];
  EXPECT_NEAR(analytic, 1.0 - std::pow(0.3, 3), 1e-12);

  sim::NullEnvironment env;
  sim::SimulationOptions options;
  options.periods = 200'000;
  options.faults.seed = 41;
  const auto direct = sim::simulate(*system.impl, env, options);
  ASSERT_TRUE(direct.ok());
  EXPECT_NEAR(direct->find("c1")->update_rate(), analytic, 0.005);

  const auto machine = ecode::run_emachine(*system.impl, env, options);
  ASSERT_TRUE(machine.ok());
  EXPECT_NEAR(machine->find("c1")->update_rate(), analytic, 0.005);
}

TEST(Reexecution, RetriesDoNotHelpDownedHost) {
  // Re-execution masks transient faults, not a dead host.
  auto system = retry_system(5, 1.0);
  sim::NullEnvironment env;
  sim::SimulationOptions options;
  options.periods = 100;
  options.faults.host_events = {{0, 0, false}};
  const auto result = sim::simulate(*system.impl, env, options);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->find("c1")->update_rate(), 0.0);
}

TEST(Checkpointing, ShrinksReservedDemand) {
  // wcet 12, 2 retries: without checkpoints reserve 36; with 2 checkpoints
  // (overhead 1) the segment is 4, so reserve 12 + 2*1 + 2*(4+1) = 24.
  auto plain = retry_system(2, 0.9, /*wcet=*/12, /*period=*/100);
  EXPECT_EQ(plain.impl->reserved_demand(0, 12), 36);

  auto system = test::single_host_system(test::chain_spec_config(1, 100));
  arch::ArchitectureConfig arch_config;
  arch_config.hosts = {{"h0", 0.9}};
  arch_config.sensors = {{"s", 1.0}};
  arch_config.default_wcet = 12;
  arch_config.default_wctt = 1;
  system.arch = std::make_unique<arch::Architecture>(
      std::move(arch::Architecture::Build(std::move(arch_config))).value());
  impl::ImplementationConfig impl_config;
  impl::ImplementationConfig::TaskMapping mapping;
  mapping.task = "task1";
  mapping.hosts = {"h0"};
  mapping.reexecutions = 2;
  mapping.checkpoints = 2;
  mapping.checkpoint_overhead = 1;
  impl_config.task_mappings = {mapping};
  impl_config.sensor_bindings = {{"c0", "s"}};
  system.impl = std::make_unique<impl::Implementation>(
      std::move(impl::Implementation::Build(*system.spec, *system.arch,
                                            std::move(impl_config)))
          .value());
  EXPECT_EQ(system.impl->reserved_demand(0, 12), 24);
  const auto report = sched::analyze_schedulability(*system.impl);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->jobs[0].wcet, 24);
  // Reliability is untouched by checkpointing (same retry count).
  EXPECT_NEAR(reliability::task_reliability(*system.impl, 0),
              1.0 - 0.001, 1e-12);
}

TEST(Checkpointing, MakesOtherwiseInfeasibleRetriesSchedulable) {
  // Window ~ period 20 - wctt 1 = 19; wcet 8 with 2 retries reserves 24:
  // infeasible. Three checkpoints (segment 2, overhead 0) reserve
  // 8 + 2*2 = 12: feasible. Same reliability either way.
  const auto build = [](int checkpoints) {
    auto system = test::single_host_system(test::chain_spec_config(1, 20));
    arch::ArchitectureConfig arch_config;
    arch_config.hosts = {{"h0", 0.8}};
    arch_config.sensors = {{"s", 1.0}};
    arch_config.default_wcet = 8;
    arch_config.default_wctt = 1;
    system.arch = std::make_unique<arch::Architecture>(
        std::move(arch::Architecture::Build(std::move(arch_config))).value());
    impl::ImplementationConfig impl_config;
    impl::ImplementationConfig::TaskMapping mapping;
    mapping.task = "task1";
    mapping.hosts = {"h0"};
    mapping.reexecutions = 2;
    mapping.checkpoints = checkpoints;
    impl_config.task_mappings = {mapping};
    impl_config.sensor_bindings = {{"c0", "s"}};
    system.impl = std::make_unique<impl::Implementation>(
        std::move(impl::Implementation::Build(*system.spec, *system.arch,
                                              std::move(impl_config)))
            .value());
    return system;
  };
  auto plain = build(0);
  EXPECT_FALSE(sched::analyze_schedulability(*plain.impl)->schedulable);
  auto checkpointed = build(3);
  EXPECT_TRUE(sched::analyze_schedulability(*checkpointed.impl)->schedulable);
  EXPECT_DOUBLE_EQ(reliability::task_reliability(*plain.impl, 0),
                   reliability::task_reliability(*checkpointed.impl, 0));

  // The timed runtime honours the shrunken recovery budget: no misses.
  sim::NullEnvironment env;
  sim::SimulationOptions options;
  options.periods = 20'000;
  options.faults.seed = 53;
  options.model_execution_time = true;
  const auto run = sim::simulate(*checkpointed.impl, env, options);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->deadline_misses, 0);
  EXPECT_NEAR(run->find("c1")->update_rate(), 1.0 - 0.2 * 0.2 * 0.2, 0.01);
}

TEST(Checkpointing, RejectsCheckpointsWithoutRetries) {
  auto system = test::single_host_system(test::chain_spec_config(1));
  impl::ImplementationConfig config;
  impl::ImplementationConfig::TaskMapping mapping;
  mapping.task = "task1";
  mapping.hosts = {"h0"};
  mapping.checkpoints = 2;  // no reexecutions
  config.task_mappings = {mapping};
  config.sensor_bindings = {{"c0", "sens_c0"}};
  EXPECT_EQ(impl::Implementation::Build(*system.spec, *system.arch,
                                        std::move(config))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(Reexecution, CombinesWithReplication) {
  // Two hosts at 0.8, one retry each: per host 0.96, combined
  // 1 - 0.04^2 = 0.9984.
  test::System system;
  system.spec = std::make_unique<spec::Specification>(
      test::build_spec(test::chain_spec_config(1)));
  arch::ArchitectureConfig arch_config;
  arch_config.hosts = {{"h1", 0.8}, {"h2", 0.8}};
  arch_config.sensors = {{"s", 1.0}};
  system.arch = std::make_unique<arch::Architecture>(
      std::move(arch::Architecture::Build(std::move(arch_config))).value());
  impl::ImplementationConfig impl_config;
  impl_config.task_mappings = {{"task1", {"h1", "h2"}, 1}};
  impl_config.sensor_bindings = {{"c0", "s"}};
  system.impl = std::make_unique<impl::Implementation>(
      std::move(impl::Implementation::Build(*system.spec, *system.arch,
                                            std::move(impl_config)))
          .value());
  EXPECT_NEAR(reliability::task_reliability(*system.impl, 0), 0.9984,
              1e-12);
}

}  // namespace
}  // namespace lrt
