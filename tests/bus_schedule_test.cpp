// Tests for the broadcast-bus schedule synthesis.
#include <gtest/gtest.h>

#include <memory>

#include "plant/three_tank_system.h"
#include "sched/schedulability.h"
#include "tests/test_util.h"

namespace lrt::sched {
namespace {

TEST(BusSchedule, ThreeTankBusFits) {
  auto system = plant::make_three_tank_system({});
  const auto report = analyze_schedulability(*system->implementation);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->schedulable);
  const auto bus = analyze_bus_schedule(*system->implementation, *report);
  ASSERT_TRUE(bus.ok()) << bus.status();
  EXPECT_TRUE(bus->feasible) << bus->diagnostic;
  // One broadcast per replication.
  EXPECT_EQ(bus->slices.size(), system->implementation->replication_count());
  // Slices are chronological and non-overlapping.
  for (std::size_t i = 1; i < bus->slices.size(); ++i) {
    EXPECT_GE(bus->slices[i].start, bus->slices[i - 1].end);
  }
  // Every broadcast starts after its task's completion and ends by the
  // write time.
  std::vector<spec::Time> completion(
      system->specification->tasks().size() *
          system->architecture->hosts().size(),
      0);
  for (const HostSchedule& host : report->host_schedules) {
    for (const ScheduleSlice& slice : host.slices) {
      auto& cell = completion[static_cast<std::size_t>(slice.task) *
                                  system->architecture->hosts().size() +
                              static_cast<std::size_t>(host.host)];
      cell = std::max(cell, slice.end);
    }
  }
  for (const BusSlice& slice : bus->slices) {
    EXPECT_GE(slice.start,
              completion[static_cast<std::size_t>(slice.task) *
                             system->architecture->hosts().size() +
                         static_cast<std::size_t>(slice.host)]);
    EXPECT_LE(slice.end,
              system->specification->write_time(slice.task));
  }
}

/// Many replications with long WCTTs on a narrow window saturate the bus.
TEST(BusSchedule, SaturatedBusReportsInfeasible) {
  test::System system;
  spec::SpecificationConfig config;
  config.communicators = {test::comm("in", 10)};
  for (int i = 0; i < 3; ++i) {
    config.communicators.push_back(test::comm("o" + std::to_string(i), 10));
    config.tasks.push_back(test::task("t" + std::to_string(i), {{"in", 0}},
                                      {{"o" + std::to_string(i), 1}}));
  }
  system.spec = std::make_unique<spec::Specification>(
      test::build_spec(std::move(config)));
  arch::ArchitectureConfig arch_config;
  arch_config.hosts = {{"h1", 0.9}, {"h2", 0.9}, {"h3", 0.9}};
  arch_config.sensors = {{"s", 0.9}};
  arch_config.default_wcet = 1;
  arch_config.default_wctt = 4;  // 3 broadcasts x 4 > 10 - 1
  system.arch = std::make_unique<arch::Architecture>(
      std::move(arch::Architecture::Build(std::move(arch_config))).value());
  impl::ImplementationConfig impl_config;
  impl_config.task_mappings = {
      {"t0", {"h1"}}, {"t1", {"h2"}}, {"t2", {"h3"}}};
  impl_config.sensor_bindings = {{"in", "s"}};
  system.impl = std::make_unique<impl::Implementation>(
      std::move(impl::Implementation::Build(*system.spec, *system.arch,
                                            std::move(impl_config)))
          .value());

  const auto report = analyze_schedulability(*system.impl);
  ASSERT_TRUE(report.ok());
  // Hosts are fine (wcet 1), the bus is not: deadline shrink makes the
  // per-host check optimistic about shared bus contention...
  const auto bus = analyze_bus_schedule(*system.impl, *report);
  ASSERT_TRUE(bus.ok());
  EXPECT_FALSE(bus->feasible);
  EXPECT_NE(bus->diagnostic.find("misses write time"), std::string::npos);
}

TEST(BusSchedule, RequiresFeasibleHostSchedules) {
  test::System system = test::single_host_system(test::chain_spec_config(1));
  arch::ArchitectureConfig arch_config;
  arch_config.hosts = {{"h0", 0.9}};
  arch_config.sensors = {{"sens_c0", 0.9}};
  arch_config.default_wcet = 100;  // infeasible
  arch_config.default_wctt = 1;
  system.arch = std::make_unique<arch::Architecture>(
      std::move(arch::Architecture::Build(std::move(arch_config))).value());
  impl::ImplementationConfig impl_config;
  impl_config.task_mappings = {{"task1", {"h0"}}};
  impl_config.sensor_bindings = {{"c0", "sens_c0"}};
  system.impl = std::make_unique<impl::Implementation>(
      std::move(impl::Implementation::Build(*system.spec, *system.arch,
                                            std::move(impl_config)))
          .value());
  const auto report = analyze_schedulability(*system.impl);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->schedulable);
  EXPECT_EQ(analyze_bus_schedule(*system.impl, *report).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace lrt::sched
