// Property-based tests over randomly generated systems (seeded, layered
// dataflow DAGs with random failure models, replication mappings, and
// reliabilities):
//
//   P1  SRG induction == greatest-fixpoint iteration (acyclic specs)
//   P2  SRG == RBD evaluation
//   P3  SRGs are probabilities; raising every host reliability never
//       lowers any SRG (monotonicity of the rules)
//   P4  every system refines itself under the identity kappa; shrinking
//       WCETs preserves refinement (one-step transitivity probe)
//   P5  E-machine executing generated E-code == direct runtime, value
//       trace for value trace, on fault-free runs with real task functions
//   P6  empirical update rates converge to the analytic SRGs under fault
//       injection, and voting never diverges
//   P7  synthesized mappings are always valid; exhaustive cost is never
//       worse than greedy cost
#include <gtest/gtest.h>

#include <memory>

#include "ecode/emachine.h"
#include "gen/workload.h"
#include "refine/refinement.h"
#include "reliability/analysis.h"
#include "reliability/rbd.h"
#include "sim/runtime.h"
#include "support/math_util.h"
#include "support/rng.h"
#include "synth/synthesis.h"
#include "tests/test_util.h"

namespace lrt {
namespace {

/// Thin adapter over gen::random_workload keeping the field names the
/// P-tests use; configs are retained for building variants.
struct RandomSystem {
  std::unique_ptr<spec::Specification> spec;
  std::unique_ptr<arch::Architecture> arch;
  std::unique_ptr<impl::Implementation> impl;
  impl::ImplementationConfig impl_config;
  arch::ArchitectureConfig arch_config;
};

RandomSystem random_system(Xoshiro256& rng, bool with_functions = false,
                           bool tree_structured = false) {
  gen::WorkloadOptions options;
  options.with_functions = with_functions;
  options.tree_structured = tree_structured;
  auto workload = gen::random_workload(rng, options);
  RandomSystem system;
  system.spec = std::move(workload->specification);
  system.arch = std::move(workload->architecture);
  system.impl = std::move(workload->implementation);
  system.impl_config = std::move(workload->implementation_config);
  system.arch_config = std::move(workload->architecture_config);
  return system;
}

class RandomSystems : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomSystems, P1_InductionEqualsFixpoint) {
  Xoshiro256 rng(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    const RandomSystem system = random_system(rng);
    const auto induction = reliability::compute_srgs(*system.impl);
    ASSERT_TRUE(induction.ok());
    const auto fixpoint = reliability::compute_srgs_fixpoint(*system.impl);
    ASSERT_EQ(induction->size(), fixpoint.size());
    for (std::size_t c = 0; c < fixpoint.size(); ++c) {
      EXPECT_NEAR((*induction)[c], fixpoint[c], 1e-12)
          << "trial " << trial << " comm " << c;
    }
  }
}

TEST_P(RandomSystems, P2_RbdEqualsInduction) {
  Xoshiro256 rng(GetParam() ^ 0xbeef);
  for (int trial = 0; trial < 25; ++trial) {
    const RandomSystem system = random_system(rng);
    const auto srgs = reliability::compute_srgs(*system.impl);
    ASSERT_TRUE(srgs.ok());
    for (spec::CommId c = 0;
         c < static_cast<spec::CommId>(srgs->size()); ++c) {
      const auto diagram = reliability::build_srg_rbd(*system.impl, c);
      ASSERT_TRUE(diagram.ok());
      EXPECT_NEAR(diagram->rbd.reliability(diagram->root),
                  (*srgs)[static_cast<std::size_t>(c)], 1e-12)
          << "trial " << trial << " comm " << c;
    }
  }
}

TEST_P(RandomSystems, P3_SrgsAreProbabilitiesAndMonotone) {
  Xoshiro256 rng(GetParam() ^ 0xcafe);
  for (int trial = 0; trial < 25; ++trial) {
    const RandomSystem system = random_system(rng);
    const auto base = reliability::compute_srgs(*system.impl);
    ASSERT_TRUE(base.ok());
    for (const double srg : *base) {
      EXPECT_TRUE(is_probability(srg));
    }

    // Raise every host reliability halfway to 1.
    arch::ArchitectureConfig boosted_config = system.arch_config;
    for (auto& host : boosted_config.hosts) {
      host.reliability += (1.0 - host.reliability) / 2;
    }
    const auto boosted_arch = std::make_unique<arch::Architecture>(
        std::move(arch::Architecture::Build(boosted_config)).value());
    const auto boosted_impl = impl::Implementation::Build(
        *system.spec, *boosted_arch, system.impl_config);
    ASSERT_TRUE(boosted_impl.ok());
    const auto boosted = reliability::compute_srgs(*boosted_impl);
    ASSERT_TRUE(boosted.ok());
    for (std::size_t c = 0; c < base->size(); ++c) {
      EXPECT_GE((*boosted)[c] + 1e-12, (*base)[c])
          << "trial " << trial << " comm " << c;
    }
  }
}

TEST_P(RandomSystems, P4_RefinementReflexiveAndWcetShrinkable) {
  Xoshiro256 rng(GetParam() ^ 0xf00d);
  for (int trial = 0; trial < 15; ++trial) {
    const RandomSystem system = random_system(rng);
    refine::RefinementMap identity;
    for (const auto& task : system.spec->tasks()) {
      identity.task_map.emplace_back(task.name, task.name);
    }
    const auto self =
        refine::check_refinement(*system.impl, *system.impl, identity);
    ASSERT_TRUE(self.ok());
    EXPECT_TRUE(self->refines) << self->summary();
  }
}

TEST_P(RandomSystems, P5_EMachineMatchesRuntimeFaultFree) {
  Xoshiro256 rng(GetParam() ^ 0x5eed);
  for (int trial = 0; trial < 8; ++trial) {
    const RandomSystem system = random_system(rng, /*with_functions=*/true);

    sim::SimulationOptions options;
    options.periods = 50;
    options.faults.inject_invocation_faults = false;
    options.faults.inject_sensor_faults = false;
    for (const auto& comm : system.spec->communicators()) {
      options.record_values_for.push_back(comm.name);
    }

    class RampEnv final : public sim::Environment {
     public:
      spec::Value read_sensor(std::string_view comm, spec::Time now) override {
        return spec::Value::real(static_cast<double>(now % 97) +
                                 static_cast<double>(comm.size()));
      }
      void write_actuator(std::string_view, spec::Time,
                          const spec::Value&) override {}
    };

    RampEnv env_a;
    const auto direct = sim::simulate(*system.impl, env_a, options);
    ASSERT_TRUE(direct.ok());
    RampEnv env_b;
    const auto machine = ecode::run_emachine(*system.impl, env_b, options);
    ASSERT_TRUE(machine.ok());

    for (const auto& comm : system.spec->communicators()) {
      const auto& a = direct->value_traces.at(comm.name);
      const auto& b = machine->value_traces.at(comm.name);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i], b[i]) << "trial " << trial << " comm " << comm.name
                              << " sample " << i;
      }
    }
    EXPECT_EQ(direct->vote_divergences, 0);
    EXPECT_EQ(machine->vote_divergences, 0);
  }
}

TEST_P(RandomSystems, P6_EmpiricalRatesMatchAnalysisOnTrees) {
  // On tree-structured dataflow the SRG rules are exact (independent
  // inputs), so the empirical rate must converge to them.
  Xoshiro256 rng(GetParam() ^ 0xd1ce);
  for (int trial = 0; trial < 4; ++trial) {
    const RandomSystem system =
        random_system(rng, /*with_functions=*/false, /*tree_structured=*/true);
    const auto srgs = reliability::compute_srgs(*system.impl);
    ASSERT_TRUE(srgs.ok());
    sim::NullEnvironment env;
    sim::SimulationOptions options;
    options.periods = 60'000;
    options.faults.seed = GetParam() * 977 + static_cast<std::uint64_t>(trial);
    const auto result = sim::simulate(*system.impl, env, options);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->vote_divergences, 0);
    for (std::size_t c = 0; c < srgs->size(); ++c) {
      const auto& stats = result->comm_stats[c];
      if (stats.updates == 0) continue;  // unused communicator
      EXPECT_NEAR(stats.update_rate(), (*srgs)[c], 0.02)
          << "trial " << trial << " comm " << stats.name;
    }
  }
}

TEST_P(RandomSystems, P7_SynthesisProducesValidMinimalMappings) {
  Xoshiro256 rng(GetParam() ^ 0xab1e);
  for (int trial = 0; trial < 6; ++trial) {
    const RandomSystem system = random_system(rng);
    // Ask for LRCs achievable by full replication: cap each at 90% of the
    // fully replicated SRG.
    impl::ImplementationConfig full_config = system.impl_config;
    for (auto& mapping : full_config.task_mappings) {
      mapping.hosts.clear();
      for (const auto& host : system.arch->hosts()) {
        mapping.hosts.push_back(host.name);
      }
    }
    const auto full_impl = impl::Implementation::Build(
        *system.spec, *system.arch, full_config);
    ASSERT_TRUE(full_impl.ok());
    const auto ceiling = reliability::compute_srgs(*full_impl);
    ASSERT_TRUE(ceiling.ok());

    spec::SpecificationConfig relaxed;
    relaxed.name = "relaxed";
    for (spec::CommId c = 0;
         c < static_cast<spec::CommId>(system.spec->communicators().size());
         ++c) {
      spec::Communicator comm = system.spec->communicator(c);
      comm.lrc = std::max(1e-6, 0.9 * (*ceiling)[static_cast<std::size_t>(c)]);
      relaxed.communicators.push_back(std::move(comm));
    }
    for (const auto& task : system.spec->tasks()) {
      spec::SpecificationConfig::TaskConfig tc;
      tc.name = task.name;
      for (const auto& port : task.inputs) {
        tc.inputs.emplace_back(
            system.spec->communicator(port.comm).name, port.instance);
      }
      for (const auto& port : task.outputs) {
        tc.outputs.emplace_back(
            system.spec->communicator(port.comm).name, port.instance);
      }
      tc.model = task.model;
      relaxed.tasks.push_back(std::move(tc));
    }
    const auto relaxed_spec = std::make_unique<spec::Specification>(
        test::build_spec(std::move(relaxed)));

    std::vector<impl::ImplementationConfig::SensorBinding> bindings =
        system.impl_config.sensor_bindings;

    synth::SynthesisOptions greedy;
    greedy.strategy = synth::SynthesisOptions::Strategy::kGreedy;
    const auto greedy_result =
        synth::synthesize(*relaxed_spec, *system.arch, bindings, greedy);
    ASSERT_TRUE(greedy_result.ok())
        << "trial " << trial << ": " << greedy_result.status();

    auto check_impl = impl::Implementation::Build(
        *relaxed_spec, *system.arch, greedy_result->config);
    ASSERT_TRUE(check_impl.ok());
    EXPECT_TRUE(reliability::analyze(*check_impl)->reliable);

    synth::SynthesisOptions exhaustive;
    exhaustive.strategy = synth::SynthesisOptions::Strategy::kExhaustive;
    const auto exhaustive_result =
        synth::synthesize(*relaxed_spec, *system.arch, bindings, exhaustive);
    ASSERT_TRUE(exhaustive_result.ok());
    EXPECT_LE(exhaustive_result->replication_count,
              greedy_result->replication_count)
        << "trial " << trial;
  }
}

// P8 — shared dependencies (diamonds). The paper's SRG rules multiply
// input SRGs as if input failures were independent. When two inputs share
// an ancestor, failures are positively correlated; by the FKG inequality
// the *series* rule remains a sound lower bound (the paper's "at least
// lambda_c" claim), while the *parallel* rule becomes optimistic — the
// structural reason the paper's scenario 2 replicates physically
// independent sensors rather than reusing one.
TEST(DiamondCorrelation, SeriesIsLowerBoundParallelIsUpperBound) {
  // s -> a (task ta), s -> b (task tb); c reads {a, b}.
  const auto build = [](spec::FailureModel model) {
    spec::SpecificationConfig config;
    config.communicators = {test::comm("s", 10, 0.5),
                            test::comm("a", 10, 0.5),
                            test::comm("b", 10, 0.5),
                            test::comm("c", 10, 0.5)};
    config.tasks = {test::task("ta", {{"s", 0}}, {{"a", 1}}),
                    test::task("tb", {{"s", 0}}, {{"b", 1}}),
                    test::task("tc", {{"a", 1}, {"b", 1}}, {{"c", 2}},
                               model)};
    // Perfect hosts: the only failure source is the shared sensor, which
    // maximizes the correlation effect.
    return test::single_host_system(std::move(config), /*host_rel=*/1.0,
                                    /*sensor_rel=*/0.7);
  };

  sim::NullEnvironment env;
  sim::SimulationOptions options;
  options.periods = 200'000;
  options.faults.seed = 99;

  // Series: analytic q*p*p = 0.49; truth P(s ok) = 0.7.
  auto series_sys = build(spec::FailureModel::kSeries);
  const auto series_srg = reliability::compute_srgs(*series_sys.impl);
  const auto series_run = sim::simulate(*series_sys.impl, env, options);
  const auto c_id = *series_sys.spec->find_communicator("c");
  EXPECT_NEAR((*series_srg)[static_cast<std::size_t>(c_id)], 0.49, 1e-12);
  EXPECT_NEAR(series_run->find("c")->update_rate(), 0.7, 0.01);
  EXPECT_GE(series_run->find("c")->update_rate() + 0.01,
            (*series_srg)[static_cast<std::size_t>(c_id)]);  // lower bound OK

  // Parallel: analytic 1-(1-p)^2 = 0.91; truth still 0.7 (both inputs die
  // together when the shared sensor fails).
  auto parallel_sys = build(spec::FailureModel::kParallel);
  const auto parallel_srg = reliability::compute_srgs(*parallel_sys.impl);
  const auto parallel_run = sim::simulate(*parallel_sys.impl, env, options);
  EXPECT_NEAR((*parallel_srg)[static_cast<std::size_t>(c_id)], 0.91, 1e-12);
  EXPECT_NEAR(parallel_run->find("c")->update_rate(), 0.7, 0.01);
  EXPECT_LT(parallel_run->find("c")->update_rate(),
            (*parallel_srg)[static_cast<std::size_t>(c_id)]);  // optimistic!
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSystems,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

}  // namespace
}  // namespace lrt
