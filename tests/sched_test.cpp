// Unit tests for src/sched: LET job windows, EDF feasibility, schedule
// synthesis, bus utilization, and the demand-bound oracle (including a
// randomized agreement property between the two feasibility criteria).
#include <gtest/gtest.h>

#include "plant/three_tank_system.h"
#include "sched/schedulability.h"
#include "support/rng.h"
#include "tests/test_util.h"

namespace lrt::sched {
namespace {

using test::comm;
using test::task;

/// One task on one host, with adjustable WCET/WCTT.
test::System one_task_system(spec::Time period, std::int64_t in_instance,
                             std::int64_t out_instance, spec::Time wcet,
                             spec::Time wctt) {
  spec::SpecificationConfig config;
  config.communicators = {comm("in", period), comm("out", period)};
  config.tasks = {task("t", {{"in", in_instance}}, {{"out", out_instance}})};
  auto system = test::single_host_system(std::move(config));
  // Rebuild architecture with the requested metrics.
  arch::ArchitectureConfig arch_config;
  arch_config.hosts = {{"h0", 0.9}};
  arch_config.sensors = {{"sens_in", 0.95}};
  arch_config.default_wcet = wcet;
  arch_config.default_wctt = wctt;
  system.arch = std::make_unique<arch::Architecture>(
      std::move(arch::Architecture::Build(std::move(arch_config))).value());
  impl::ImplementationConfig impl_config;
  impl_config.task_mappings = {{"t", {"h0"}}};
  impl_config.sensor_bindings = {{"in", "sens_in"}};
  system.impl = std::make_unique<impl::Implementation>(
      std::move(impl::Implementation::Build(*system.spec, *system.arch,
                                            std::move(impl_config)))
          .value());
  return system;
}

TEST(Schedulability, SingleTaskFits) {
  // LET window [0, 10); wcet 5 + wctt 2 => deadline 8.
  auto system = one_task_system(10, 0, 1, /*wcet=*/5, /*wctt=*/2);
  const auto report = analyze_schedulability(*system.impl);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->schedulable);
  ASSERT_EQ(report->jobs.size(), 1u);
  EXPECT_EQ(report->jobs[0].release, 0);
  EXPECT_EQ(report->jobs[0].deadline, 8);
  ASSERT_EQ(report->host_schedules.size(), 1u);
  ASSERT_EQ(report->host_schedules[0].slices.size(), 1u);
  EXPECT_EQ(report->host_schedules[0].slices[0].start, 0);
  EXPECT_EQ(report->host_schedules[0].slices[0].end, 5);
}

TEST(Schedulability, WcetExceedingWindowFails) {
  auto system = one_task_system(10, 0, 1, /*wcet=*/9, /*wctt=*/2);
  const auto report = analyze_schedulability(*system.impl);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->schedulable);
  EXPECT_FALSE(report->host_schedules[0].feasible);
  EXPECT_NE(report->host_schedules[0].diagnostic.find("exceeds LET window"),
            std::string::npos);
}

TEST(Schedulability, TransmissionTimeShrinksDeadline) {
  // Window [0, 10): wcet 8 + wctt 1 fits exactly (deadline 9).
  auto fits = one_task_system(10, 0, 1, 8, 1);
  EXPECT_TRUE(analyze_schedulability(*fits.impl)->schedulable);
  // wctt 3 leaves only 7 < 8.
  auto tight = one_task_system(10, 0, 1, 8, 3);
  EXPECT_FALSE(analyze_schedulability(*tight.impl)->schedulable);
}

/// Two tasks sharing one host with staggered LETs.
test::System two_task_system(spec::Time wcet) {
  spec::SpecificationConfig config;
  config.communicators = {comm("in", 10), comm("a", 10), comm("b", 10)};
  config.tasks = {task("t1", {{"in", 0}}, {{"a", 1}}),
                  task("t2", {{"in", 0}}, {{"b", 1}})};
  auto system = test::single_host_system(std::move(config));
  arch::ArchitectureConfig arch_config;
  arch_config.hosts = {{"h0", 0.9}};
  arch_config.sensors = {{"sens_in", 0.95}};
  arch_config.default_wcet = wcet;
  arch_config.default_wctt = 1;
  system.arch = std::make_unique<arch::Architecture>(
      std::move(arch::Architecture::Build(std::move(arch_config))).value());
  impl::ImplementationConfig impl_config;
  impl_config.task_mappings = {{"t1", {"h0"}}, {"t2", {"h0"}}};
  impl_config.sensor_bindings = {{"in", "sens_in"}};
  system.impl = std::make_unique<impl::Implementation>(
      std::move(impl::Implementation::Build(*system.spec, *system.arch,
                                            std::move(impl_config)))
          .value());
  return system;
}

TEST(Schedulability, ContentionOnSharedHost) {
  // Both windows are [0, 9); two tasks of wcet 4 fit (8 <= 9), wcet 5 do
  // not (10 > 9).
  auto fits = two_task_system(4);
  EXPECT_TRUE(analyze_schedulability(*fits.impl)->schedulable);
  auto overloaded = two_task_system(5);
  const auto report = analyze_schedulability(*overloaded.impl);
  EXPECT_FALSE(report->schedulable);
  EXPECT_NE(report->host_schedules[0].diagnostic.find("deadline"),
            std::string::npos);
}

TEST(Schedulability, ReplicationAddsJobsPerHost) {
  spec::SpecificationConfig config;
  config.communicators = {comm("in", 10), comm("out", 10)};
  config.tasks = {task("t", {{"in", 0}}, {{"out", 1}})};
  auto spec = std::make_unique<spec::Specification>(
      test::build_spec(std::move(config)));
  arch::ArchitectureConfig arch_config;
  arch_config.hosts = {{"h1", 0.9}, {"h2", 0.9}};
  arch_config.sensors = {{"s", 0.9}};
  auto arch = std::make_unique<arch::Architecture>(
      std::move(arch::Architecture::Build(std::move(arch_config))).value());
  impl::ImplementationConfig impl_config;
  impl_config.task_mappings = {{"t", {"h1", "h2"}}};
  impl_config.sensor_bindings = {{"in", "s"}};
  auto impl = impl::Implementation::Build(*spec, *arch,
                                          std::move(impl_config));
  ASSERT_TRUE(impl.ok());
  const auto report = analyze_schedulability(*impl);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->jobs.size(), 2u);
  EXPECT_TRUE(report->schedulable);
}

TEST(Schedulability, ThreeTankSystemIsSchedulable) {
  auto system = plant::make_three_tank_system({});
  ASSERT_TRUE(system.ok());
  const auto report = analyze_schedulability(*system->implementation);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->schedulable) << report->summary();
  EXPECT_LT(report->bus_utilization, 1.0);
}

TEST(Schedulability, PreemptionProducesSplitSlices) {
  // t_long: window [0, 20), wcet 10. t_short: window [5, 9), wcet 2.
  // EDF preempts t_long at t=5 (t_short's deadline 9 < 18).
  spec::SpecificationConfig config;
  config.communicators = {comm("in", 5), comm("a", 20), comm("b", 10)};
  config.tasks = {task("t_long", {{"in", 0}}, {{"a", 1}}),
                  task("t_short", {{"in", 1}}, {{"b", 1}})};
  auto system = test::single_host_system(std::move(config));
  arch::ArchitectureConfig arch_config;
  arch_config.hosts = {{"h0", 0.9}};
  arch_config.sensors = {{"sens_in", 0.95}};
  arch_config.metrics = {{"t_long", "h0", 10, 2}, {"t_short", "h0", 2, 1}};
  system.arch = std::make_unique<arch::Architecture>(
      std::move(arch::Architecture::Build(std::move(arch_config))).value());
  impl::ImplementationConfig impl_config;
  impl_config.task_mappings = {{"t_long", {"h0"}}, {"t_short", {"h0"}}};
  impl_config.sensor_bindings = {{"in", "sens_in"}};
  system.impl = std::make_unique<impl::Implementation>(
      std::move(impl::Implementation::Build(*system.spec, *system.arch,
                                            std::move(impl_config)))
          .value());

  const auto report = analyze_schedulability(*system.impl);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->schedulable) << report->summary();
  const auto& slices = report->host_schedules[0].slices;
  ASSERT_EQ(slices.size(), 3u);  // t_long [0,5), t_short [5,7), t_long [7,12)
  EXPECT_EQ(system.spec->task(slices[0].task).name, "t_long");
  EXPECT_EQ(system.spec->task(slices[1].task).name, "t_short");
  EXPECT_EQ(system.spec->task(slices[2].task).name, "t_long");
  EXPECT_EQ(slices[1].start, 5);
  EXPECT_EQ(slices[1].end, 7);
}

TEST(DemandBound, MatchesEdfOnHandCases) {
  std::vector<JobWindow> feasible = {{0, 0, 0, 8, 4, 1},
                                     {1, 0, 0, 9, 4, 1}};
  EXPECT_TRUE(demand_bound_feasible(feasible));
  std::vector<JobWindow> infeasible = {{0, 0, 0, 8, 5, 1},
                                       {1, 0, 0, 9, 5, 1}};
  EXPECT_FALSE(demand_bound_feasible(infeasible));
}

TEST(DemandBound, SeparateHostsDoNotInterfere) {
  std::vector<JobWindow> jobs = {{0, 0, 0, 8, 8, 1},
                                 {1, 1, 0, 8, 8, 1}};
  EXPECT_TRUE(demand_bound_feasible(jobs));
}

// Property: EDF simulation and the processor-demand criterion agree on
// random synchronous job sets.
class EdfVsDemandBound : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EdfVsDemandBound, Agree) {
  Xoshiro256 rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    // Random job set on one host within a period of 40.
    const int n = 1 + static_cast<int>(rng.next_below(5));
    spec::SpecificationConfig config;
    config.communicators = {comm("in", 40)};
    arch::ArchitectureConfig arch_config;
    arch_config.hosts = {{"h0", 0.9}};
    arch_config.sensors = {{"sens_in", 0.95}};
    impl::ImplementationConfig impl_config;
    impl_config.sensor_bindings = {{"in", "sens_in"}};
    for (int i = 0; i < n; ++i) {
      const std::string out = "o" + std::to_string(i);
      // Output instance in [1, 4] on a period-10 comm => write in [10, 40].
      const auto out_inst =
          1 + static_cast<std::int64_t>(rng.next_below(4));
      config.communicators.push_back(comm(out, 10));
      config.tasks.push_back(
          task("t" + std::to_string(i), {{"in", 0}}, {{out, out_inst}}));
      const auto wcet = 1 + static_cast<spec::Time>(rng.next_below(8));
      arch_config.metrics.push_back(
          {"t" + std::to_string(i), "h0", wcet, 1});
      impl_config.task_mappings.push_back(
          {"t" + std::to_string(i), {"h0"}});
    }
    auto spec_result = spec::Specification::Build(std::move(config));
    ASSERT_TRUE(spec_result.ok()) << spec_result.status();
    auto arch_result = arch::Architecture::Build(std::move(arch_config));
    ASSERT_TRUE(arch_result.ok());
    auto impl_result = impl::Implementation::Build(
        *spec_result, *arch_result, std::move(impl_config));
    ASSERT_TRUE(impl_result.ok());

    const auto report = analyze_schedulability(*impl_result);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->host_schedules[0].feasible,
              demand_bound_feasible(report->jobs))
        << "trial " << trial << ": EDF and demand bound disagree\n"
        << report->summary();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EdfVsDemandBound,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(Schedulability, SummaryMentionsVerdict) {
  auto system = one_task_system(10, 0, 1, 5, 2);
  const auto report = analyze_schedulability(*system.impl);
  EXPECT_NE(report->summary().find("SCHEDULABLE"), std::string::npos);
}

}  // namespace
}  // namespace lrt::sched
