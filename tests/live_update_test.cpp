// Tests for src/adapt/live_update: the four-stage update transaction
// against a live 3TS runtime — dirty-cone diffing, the refinement fast
// path vs pinned re-synthesis, boundary installs, probation rollback, and
// verify-stage atomicity. Labeled `differential`: the committed splice is
// replayed on both engines and must be bit-identical.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "adapt/live_update.h"
#include "plant/three_tank_system.h"
#include "sim/runtime.h"

namespace lrt::adapt {
namespace {

constexpr double kSetpoint1 = 0.40;
constexpr double kSetpoint2 = 0.30;
constexpr spec::Time kHyper = 500;

spec::Value control_law(double setpoint, const spec::Value& level) {
  const double command =
      plant::kThreeTankGain * (setpoint - level.as_real());
  return spec::Value::real(command < 0.0 ? 0.0
                                         : (command > 1.0 ? 1.0 : command));
}

/// The 3TS specification, optionally with a pass-through `filter1` task
/// spliced between read1 and t1 (new communicator f1; t1 retimed to read
/// it). Mirrors examples/live_update.cpp.
spec::SpecificationConfig make_spec(bool with_filter, double filter_lrc,
                                    double lrc_controls = 0.97) {
  spec::SpecificationConfig config;
  config.name = with_filter ? "three_tank_filtered" : "three_tank";
  const auto comm = [&config](const std::string& name, spec::Time period,
                              double lrc) {
    config.communicators.push_back(
        {name, spec::ValueType::kReal, spec::Value::real(0.0), period, lrc});
  };
  comm("s1", 500, 0.99);
  comm("s2", 500, 0.99);
  comm("l1", 100, 0.97);
  comm("l2", 100, 0.97);
  comm("u1", 100, lrc_controls);
  comm("u2", 100, lrc_controls);
  comm("r1", 500, 0.9);
  comm("r2", 500, 0.9);
  if (with_filter) comm("f1", 100, filter_lrc);

  for (const int tank : {1, 2}) {
    const std::string i = std::to_string(tank);
    spec::SpecificationConfig::TaskConfig read;
    read.name = "read" + i;
    read.inputs = {{"s" + i, 0}};
    read.outputs = {{"l" + i, 1}};
    read.model = spec::FailureModel::kParallel;
    read.function = [](std::span<const spec::Value> in) {
      return std::vector<spec::Value>{in[0]};
    };
    config.tasks.push_back(std::move(read));
  }
  if (with_filter) {
    spec::SpecificationConfig::TaskConfig filter;
    filter.name = "filter1";
    filter.inputs = {{"l1", 1}};
    filter.outputs = {{"f1", 2}};
    filter.model = spec::FailureModel::kSeries;
    filter.function = [](std::span<const spec::Value> in) {
      return std::vector<spec::Value>{in[0]};
    };
    config.tasks.push_back(std::move(filter));
  }
  for (const int tank : {1, 2}) {
    const std::string i = std::to_string(tank);
    const double setpoint = tank == 1 ? kSetpoint1 : kSetpoint2;
    spec::SpecificationConfig::TaskConfig control;
    control.name = "t" + i;
    control.inputs = {tank == 1 && with_filter
                          ? std::pair<std::string, std::int64_t>{"f1", 2}
                          : std::pair<std::string, std::int64_t>{"l" + i,
                                                                 1}};
    control.outputs = {{"u" + i, 3}};
    control.model = spec::FailureModel::kSeries;
    control.function = [setpoint](std::span<const spec::Value> in) {
      return std::vector<spec::Value>{control_law(setpoint, in[0])};
    };
    config.tasks.push_back(std::move(control));
  }
  for (const int tank : {1, 2}) {
    const std::string i = std::to_string(tank);
    spec::SpecificationConfig::TaskConfig estimate;
    estimate.name = "estimate" + i;
    estimate.inputs = {{"l" + i, 1}, {"u" + i, 0}};
    estimate.outputs = {{"r" + i, 1}};
    estimate.model = spec::FailureModel::kSeries;
    estimate.function = [](std::span<const spec::Value> in) {
      return std::vector<spec::Value>{in[0]};
    };
    config.tasks.push_back(std::move(estimate));
  }
  return config;
}

arch::ArchitectureConfig make_arch() {
  arch::ArchitectureConfig config;
  config.name = "three_tank_arch";
  for (const std::string name : {"h1", "h2", "h3"}) {
    config.hosts.push_back({name, 0.99});
  }
  for (const std::string name : {"sensor1", "sensor2"}) {
    config.sensors.push_back({name, 0.99});
  }
  config.default_wcet = 10;
  config.default_wctt = 5;
  return config;
}

impl::ImplementationConfig make_mapping() {
  impl::ImplementationConfig config;
  config.name = "three_tank_impl";
  config.task_mappings.push_back({"t1", {"h1"}});
  config.task_mappings.push_back({"t2", {"h2"}});
  for (const std::string task :
       {"read1", "read2", "estimate1", "estimate2"}) {
    config.task_mappings.push_back({task, {"h3"}});
  }
  config.sensor_bindings = {{"s1", "sensor1"}, {"s2", "sensor2"}};
  return config;
}

/// Deterministic run: faults off, plant-driven values, both controls
/// actuated and traced.
sim::SimulationOptions run_options(std::int64_t periods,
                                   sim::SimulationOptions::Engine engine) {
  sim::SimulationOptions options;
  options.engine = engine;
  options.periods = periods;
  options.faults.inject_invocation_faults = false;
  options.faults.inject_sensor_faults = false;
  options.actuator_comms = {"u1", "u2"};
  options.record_values_for = {"u1", "u2", "l2"};
  return options;
}

void expect_same_traces(const sim::SimulationResult& a,
                        const sim::SimulationResult& b) {
  ASSERT_EQ(a.value_traces.size(), b.value_traces.size());
  for (const auto& [name, trace] : a.value_traces) {
    const auto it = b.value_traces.find(name);
    ASSERT_NE(it, b.value_traces.end()) << name;
    ASSERT_EQ(trace.size(), it->second.size()) << name;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      EXPECT_TRUE(trace[i] == it->second[i]) << name << "[" << i << "]";
    }
  }
}

void expect_same_comm_stats(const sim::SimulationResult& a,
                            const sim::SimulationResult& b,
                            const std::vector<std::string>& names) {
  for (const std::string& name : names) {
    const sim::CommStats* sa = a.find(name);
    const sim::CommStats* sb = b.find(name);
    ASSERT_NE(sa, nullptr) << name;
    ASSERT_NE(sb, nullptr) << name;
    EXPECT_EQ(sa->samples, sb->samples) << name;
    EXPECT_EQ(sa->updates, sb->updates) << name;
    EXPECT_EQ(sa->reliable_samples, sb->reliable_samples) << name;
    EXPECT_EQ(sa->reliable_updates, sb->reliable_updates) << name;
  }
}

const std::vector<std::string> kPersisting = {"s1", "s2", "l1", "l2",
                                              "u1", "u2", "r1", "r2"};

struct Fixture {
  std::unique_ptr<spec::Specification> spec;
  std::unique_ptr<arch::Architecture> arch;
  std::unique_ptr<impl::Implementation> impl;
};

Fixture running_system() {
  Fixture f;
  f.spec = std::make_unique<spec::Specification>(
      std::move(spec::Specification::Build(make_spec(false, 0.97)))
          .value());
  f.arch = std::make_unique<arch::Architecture>(
      std::move(arch::Architecture::Build(make_arch())).value());
  f.impl = std::make_unique<impl::Implementation>(
      std::move(impl::Implementation::Build(*f.spec, *f.arch,
                                            make_mapping()))
          .value());
  return f;
}

constexpr std::int64_t kPeriods = 16;
constexpr spec::Time kSwapAt = kPeriods / 2 * kHyper;

LiveUpdateOptions policy() {
  LiveUpdateOptions options;
  options.probation_periods = 3;
  options.earliest_install = kSwapAt;
  return options;
}

/// One full updated run: propose at 0, install at kSwapAt, run kPeriods.
Result<std::pair<sim::SimulationResult, UpdateReport>> run_updated(
    const Fixture& f, sim::SimulationOptions::Engine engine,
    double filter_lrc = 0.97) {
  UpdateEngine update_engine(*f.impl, policy());
  LRT_RETURN_IF_ERROR(update_engine.propose(0, make_spec(true, filter_lrc)));
  sim::SimulationOptions options = run_options(kPeriods, engine);
  options.monitor = &update_engine;
  plant::ThreeTankEnvironment env(plant::ThreeTankParams{}, kSetpoint1,
                                  kSetpoint2);
  LRT_ASSIGN_OR_RETURN(sim::SimulationResult result,
                       sim::simulate(*f.impl, env, options));
  return std::make_pair(std::move(result), update_engine.report());
}

sim::SimulationResult run_baseline(const Fixture& f,
                                   sim::SimulationOptions::Engine engine) {
  plant::ThreeTankEnvironment env(plant::ThreeTankParams{}, kSetpoint1,
                                  kSetpoint2);
  auto result = sim::simulate(*f.impl, env, run_options(kPeriods, engine));
  EXPECT_TRUE(result.ok()) << result.status();
  return *std::move(result);
}

TEST(LiveUpdate, CommittedSpliceInstallsAtBoundary) {
  const Fixture f = running_system();
  const auto story =
      run_updated(f, sim::SimulationOptions::Engine::kTick);
  ASSERT_TRUE(story.ok()) << story.status();
  const UpdateReport& report = story->second;
  EXPECT_EQ(report.state, UpdateState::kCommitted) << report.summary();
  EXPECT_EQ(report.path, UpdatePath::kResynthesized);
  EXPECT_EQ(report.proposed_at, 0);
  EXPECT_EQ(report.installed_at, kSwapAt);
  EXPECT_GE(report.resolved_at, kSwapAt);
  EXPECT_EQ(story->first.spec_swaps, 1);
  // The dirty cone: filter1 is new, t1 reads the new f1, and the LRC
  // change on nothing else — estimate1 is downstream of u1? No: u1 is
  // untouched, but t1's rewrite taints u1, whose reader estimate1 then
  // taints r1. Everything on tank 2 stays clean.
  EXPECT_EQ(report.dirty_tasks,
            (std::vector<std::string>{"estimate1", "filter1", "t1"}));
  EXPECT_EQ(report.dirty_comms,
            (std::vector<std::string>{"f1", "r1", "u1"}));
}

TEST(LiveUpdate, ZeroMissedUpdatesAcrossSwap) {
  // The filter is a pass-through, so a run that spliced it mid-flight
  // must commit exactly the same updates — and the same VALUES — as one
  // that never updated, for every persisting communicator.
  const Fixture f = running_system();
  const auto story =
      run_updated(f, sim::SimulationOptions::Engine::kTick);
  ASSERT_TRUE(story.ok()) << story.status();
  ASSERT_EQ(story->second.state, UpdateState::kCommitted);
  const sim::SimulationResult baseline =
      run_baseline(f, sim::SimulationOptions::Engine::kTick);
  expect_same_comm_stats(story->first, baseline, kPersisting);
  expect_same_traces(story->first, baseline);
}

TEST(LiveUpdate, TickEventBitIdentity) {
  // The whole transaction — install instant included — replayed on the
  // calendar-queue engine must be bit-identical to the tick engine.
  const Fixture f = running_system();
  const auto tick = run_updated(f, sim::SimulationOptions::Engine::kTick);
  const auto event = run_updated(f, sim::SimulationOptions::Engine::kEvent);
  ASSERT_TRUE(tick.ok()) << tick.status();
  ASSERT_TRUE(event.ok()) << event.status();
  EXPECT_EQ(tick->second.installed_at, event->second.installed_at);
  EXPECT_EQ(tick->second.state, event->second.state);
  EXPECT_EQ(tick->first.spec_swaps, event->first.spec_swaps);
  EXPECT_EQ(tick->first.committed_updates, event->first.committed_updates);
  EXPECT_EQ(tick->first.invocations, event->first.invocations);
  EXPECT_EQ(tick->first.deadline_misses, event->first.deadline_misses);
  expect_same_comm_stats(tick->first, event->first, kPersisting);
  expect_same_traces(tick->first, event->first);
}

TEST(LiveUpdate, RejectedProposalLeavesRuntimeUntouched) {
  // f1 at LRC 0.9999 is unattainable on 0.99 hosts: verify must reject,
  // and the run must be indistinguishable from one that never proposed.
  const Fixture f = running_system();
  for (const auto engine : {sim::SimulationOptions::Engine::kTick,
                            sim::SimulationOptions::Engine::kEvent}) {
    const auto story = run_updated(f, engine, /*filter_lrc=*/0.9999);
    ASSERT_TRUE(story.ok()) << story.status();
    const UpdateReport& report = story->second;
    EXPECT_EQ(report.state, UpdateState::kRejected) << report.summary();
    EXPECT_NE(report.detail.find("re-synthesis failed"), std::string::npos)
        << report.detail;
    EXPECT_EQ(report.installed_at, -1);
    EXPECT_EQ(story->first.spec_swaps, 0);
    const sim::SimulationResult baseline = run_baseline(f, engine);
    expect_same_comm_stats(story->first, baseline, kPersisting);
    expect_same_traces(story->first, baseline);
  }
}

TEST(LiveUpdate, RefinementFastPathSkipsSynthesis) {
  // Same task set, lower LRC demand on the controls: the carried mapping
  // refines the running one (identity kappa), so verify stages it with
  // zero search and the update still installs and commits.
  const Fixture f = running_system();
  UpdateEngine engine(*f.impl, policy());
  ASSERT_TRUE(engine
                  .propose(0, make_spec(false, 0.97,
                                        /*lrc_controls=*/0.9))
                  .ok());
  EXPECT_EQ(engine.state(), UpdateState::kStaged);
  EXPECT_EQ(engine.report().path, UpdatePath::kRefined);
  EXPECT_TRUE(engine.report().refinement.refines)
      << engine.report().refinement.summary();

  sim::SimulationOptions options =
      run_options(kPeriods, sim::SimulationOptions::Engine::kTick);
  options.monitor = &engine;
  plant::ThreeTankEnvironment env(plant::ThreeTankParams{}, kSetpoint1,
                                  kSetpoint2);
  const auto result = sim::simulate(*f.impl, env, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(engine.state(), UpdateState::kCommitted);
  EXPECT_EQ(engine.report().installed_at, kSwapAt);
  EXPECT_EQ(result->spec_swaps, 1);
}

TEST(LiveUpdate, ProbationRollbackRestoresPriorWorkload) {
  // Drive the monitor interface by hand: install the splice, then report
  // enough failed f1 updates to statistically violate its LRC inside the
  // probation window. The next update point must atomically restore the
  // prior workload.
  const Fixture f = running_system();
  LiveUpdateOptions options = policy();
  options.earliest_install = 0;
  options.lrc.window = 20;
  options.lrc.min_updates = 10;
  UpdateEngine engine(*f.impl, options);
  ASSERT_TRUE(engine.propose(0, make_spec(true, 0.97)).ok());
  ASSERT_EQ(engine.state(), UpdateState::kStaged);

  const impl::Implementation* staged = engine.on_update_point(kHyper);
  ASSERT_NE(staged, nullptr);
  EXPECT_NE(staged, f.impl.get());
  EXPECT_EQ(staged, &engine.active());
  EXPECT_EQ(engine.state(), UpdateState::kProbation);
  EXPECT_EQ(engine.report().installed_at, kHyper);

  const auto f1 = staged->specification().find_communicator("f1");
  ASSERT_TRUE(f1.has_value());
  for (int i = 0; i < 12; ++i) {
    engine.on_update(kHyper + 100 * (i + 1), *f1, false, 0);
  }
  const impl::Implementation* restored = engine.on_update_point(2 * kHyper);
  EXPECT_EQ(restored, f.impl.get());
  EXPECT_EQ(&engine.active(), f.impl.get());
  EXPECT_EQ(engine.state(), UpdateState::kRolledBack);
  EXPECT_EQ(engine.report().resolved_at, 2 * kHyper);
  EXPECT_NE(engine.report().detail.find("probation: LRC of 'f1'"),
            std::string::npos)
      << engine.report().detail;
  // The transaction is spent: no further swaps come out of this engine.
  EXPECT_EQ(engine.on_update_point(3 * kHyper), nullptr);
}

TEST(LiveUpdate, ProbationSurvivalCommits) {
  // The mirror image: a probation window with healthy updates commits at
  // the first update point past probation_ends_.
  const Fixture f = running_system();
  LiveUpdateOptions options = policy();
  options.earliest_install = 0;
  options.probation_periods = 2;
  UpdateEngine engine(*f.impl, options);
  ASSERT_TRUE(engine.propose(0, make_spec(true, 0.97)).ok());
  const impl::Implementation* staged = engine.on_update_point(kHyper);
  ASSERT_NE(staged, nullptr);
  const auto f1 = staged->specification().find_communicator("f1");
  ASSERT_TRUE(f1.has_value());
  for (int i = 0; i < 10; ++i) {
    engine.on_update(kHyper + 100 * (i + 1), *f1, true, 1);
  }
  EXPECT_EQ(engine.on_update_point(2 * kHyper), nullptr);
  EXPECT_EQ(engine.state(), UpdateState::kProbation);
  EXPECT_EQ(engine.on_update_point(3 * kHyper), nullptr);
  EXPECT_EQ(engine.state(), UpdateState::kCommitted);
  EXPECT_EQ(engine.report().resolved_at, 3 * kHyper);
  EXPECT_EQ(&engine.active(), staged);
}

TEST(LiveUpdate, EarliestInstallDefersTheSwap) {
  const Fixture f = running_system();
  UpdateEngine engine(*f.impl, policy());  // earliest_install = kSwapAt
  ASSERT_TRUE(engine.propose(0, make_spec(true, 0.97)).ok());
  EXPECT_EQ(engine.on_update_point(kHyper), nullptr);
  EXPECT_EQ(engine.state(), UpdateState::kStaged);
  EXPECT_NE(engine.on_update_point(kSwapAt), nullptr);
}

TEST(LiveUpdate, SecondProposeWhileInFlightFails) {
  const Fixture f = running_system();
  UpdateEngine engine(*f.impl, policy());
  ASSERT_TRUE(engine.propose(0, make_spec(true, 0.97)).ok());
  const Status again = engine.propose(100, make_spec(true, 0.97));
  EXPECT_EQ(again.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(again.message().find("already in flight"), std::string::npos)
      << again;
}

TEST(LiveUpdate, MalformedProposalRejectsWithoutStaging) {
  const Fixture f = running_system();
  UpdateEngine engine(*f.impl, policy());
  spec::SpecificationConfig broken = make_spec(true, 0.97);
  broken.tasks[2].outputs = {{"no_such_comm", 2}};
  ASSERT_TRUE(engine.propose(0, std::move(broken)).ok());
  EXPECT_EQ(engine.state(), UpdateState::kRejected);
  EXPECT_NE(engine.report().detail.find(
                "proposed specification is malformed"),
            std::string::npos)
      << engine.report().detail;
  EXPECT_EQ(engine.on_update_point(kSwapAt), nullptr);
}

TEST(LiveUpdate, ResynthesisPinsTheCleanRegion) {
  // Every task outside the dirty cone must keep its running hosts in the
  // staged mapping — the search only had the cone as a degree of freedom.
  const Fixture f = running_system();
  LiveUpdateOptions options = policy();
  options.earliest_install = 0;
  UpdateEngine engine(*f.impl, options);
  ASSERT_TRUE(engine.propose(0, make_spec(true, 0.97)).ok());
  ASSERT_EQ(engine.state(), UpdateState::kStaged);
  const impl::Implementation* staged = engine.on_update_point(kHyper);
  ASSERT_NE(staged, nullptr);
  const spec::Specification& to = staged->specification();
  const spec::Specification& from = f.impl->specification();
  for (const std::string clean :
       {"read1", "read2", "t2", "estimate2"}) {
    const auto t_new = to.find_task(clean);
    const auto t_old = from.find_task(clean);
    ASSERT_TRUE(t_new.has_value() && t_old.has_value()) << clean;
    EXPECT_EQ(staged->hosts_for(*t_new), f.impl->hosts_for(*t_old))
        << clean;
  }
}

}  // namespace
}  // namespace lrt::adapt
