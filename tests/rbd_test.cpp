// Unit tests for the reliability-block-diagram algebra and the SRG<->RBD
// bridge (cross-validation of the paper's SRG rules against the RBD model
// it cites as closest related work).
#include <gtest/gtest.h>

#include "plant/three_tank_system.h"
#include "reliability/analysis.h"
#include "reliability/rbd.h"
#include "support/math_util.h"
#include "tests/test_util.h"

namespace lrt::reliability {
namespace {

using test::comm;
using test::task;

TEST(Rbd, ComponentEvaluatesToItsReliability) {
  Rbd rbd;
  const auto c = rbd.component(0.75, "x");
  EXPECT_DOUBLE_EQ(rbd.reliability(c), 0.75);
  EXPECT_EQ(rbd.to_string(c), "x=0.75");
}

TEST(Rbd, SeriesIsProduct) {
  Rbd rbd;
  const auto root =
      rbd.series({rbd.component(0.9), rbd.component(0.8), rbd.component(0.5)});
  EXPECT_NEAR(rbd.reliability(root), 0.9 * 0.8 * 0.5, 1e-15);
}

TEST(Rbd, ParallelIsComplementProduct) {
  Rbd rbd;
  const auto root = rbd.parallel({rbd.component(0.8), rbd.component(0.8)});
  EXPECT_NEAR(rbd.reliability(root), 0.96, 1e-15);
}

TEST(Rbd, PaperIntroExample) {
  // Section 1: SRG 0.8 hosts, LRC 0.9 => two replicas suffice because
  // 1 - 0.2^2 = 0.96 >= 0.9.
  Rbd rbd;
  const auto root = rbd.parallel({rbd.component(0.8, "h1"),
                                  rbd.component(0.8, "h2")});
  EXPECT_TRUE(lrt::approx_ge(rbd.reliability(root), 0.9));
  EXPECT_EQ(rbd.to_string(root), "OR(h1=0.8, h2=0.8)");
}

TEST(Rbd, KofNBoundaryCasesMatchSeriesAndParallel) {
  const std::vector<double> ps = {0.9, 0.8, 0.7, 0.6};
  Rbd rbd;
  std::vector<Rbd::NodeId> components;
  for (const double p : ps) components.push_back(rbd.component(p));
  const auto one_of = rbd.k_of_n(1, components);
  const auto all_of = rbd.k_of_n(4, components);
  const auto par = rbd.parallel(components);
  const auto ser = rbd.series(components);
  EXPECT_NEAR(rbd.reliability(one_of), rbd.reliability(par), 1e-15);
  EXPECT_NEAR(rbd.reliability(all_of), rbd.reliability(ser), 1e-15);
}

TEST(Rbd, KofNClosedFormForIdenticalComponents) {
  // 2-of-3 with p = 0.9: 3 p^2 (1-p) + p^3 = 0.972.
  Rbd rbd;
  const auto root = rbd.k_of_n(
      2, {rbd.component(0.9), rbd.component(0.9), rbd.component(0.9)});
  EXPECT_NEAR(rbd.reliability(root), 0.972, 1e-12);
}

TEST(Rbd, KofNIsMonotoneInK) {
  Rbd rbd;
  std::vector<Rbd::NodeId> components;
  for (int i = 0; i < 5; ++i) components.push_back(rbd.component(0.85));
  double previous = 1.0;
  for (int k = 1; k <= 5; ++k) {
    const double r = rbd.reliability(rbd.k_of_n(k, components));
    EXPECT_LE(r, previous + 1e-15) << "k=" << k;
    previous = r;
  }
}

// --- SRG <-> RBD bridge ---

TEST(SrgRbd, MatchesInductionOnThreeTank) {
  for (const auto variant : {plant::ThreeTankVariant::kBaseline,
                             plant::ThreeTankVariant::kReplicatedTasks,
                             plant::ThreeTankVariant::kReplicatedSensors}) {
    plant::ThreeTankScenario scenario;
    scenario.variant = variant;
    auto system = plant::make_three_tank_system(scenario);
    ASSERT_TRUE(system.ok());
    const auto srgs = compute_srgs(*system->implementation);
    ASSERT_TRUE(srgs.ok());
    for (spec::CommId c = 0;
         c < static_cast<spec::CommId>(
                 system->specification->communicators().size());
         ++c) {
      const auto diagram = build_srg_rbd(*system->implementation, c);
      ASSERT_TRUE(diagram.ok());
      EXPECT_NEAR(diagram->rbd.reliability(diagram->root),
                  (*srgs)[static_cast<std::size_t>(c)], 1e-12)
          << system->specification->communicator(c).name;
    }
  }
}

TEST(SrgRbd, StructureOfReplicatedTask) {
  plant::ThreeTankScenario scenario;
  scenario.variant = plant::ThreeTankVariant::kReplicatedTasks;
  auto system = plant::make_three_tank_system(scenario);
  const auto u1 = *system->specification->find_communicator("u1");
  const auto diagram = build_srg_rbd(*system->implementation, u1);
  ASSERT_TRUE(diagram.ok());
  const std::string text = diagram->rbd.to_string(diagram->root);
  // u1 = AND(OR(h1, h2) [t1 replicas], l1-subtree ...).
  EXPECT_NE(text.find("OR(h1=0.99, h2=0.99)"), std::string::npos) << text;
  EXPECT_NE(text.find("AND("), std::string::npos);
  EXPECT_NE(text.find("sensor1"), std::string::npos);
}

TEST(SrgRbd, IndependentModelCutsInputs) {
  spec::SpecificationConfig config;
  config.communicators = {comm("in", 10, 0.5), comm("out", 10, 0.5)};
  config.tasks = {task("t", {{"in", 0}}, {{"out", 1}},
                       spec::FailureModel::kIndependent)};
  auto system = test::single_host_system(std::move(config), 0.9, 0.2);
  const auto out = *system.spec->find_communicator("out");
  const auto diagram = build_srg_rbd(*system.impl, out);
  ASSERT_TRUE(diagram.ok());
  EXPECT_DOUBLE_EQ(diagram->rbd.reliability(diagram->root), 0.9);
  // The unreliable sensor must not appear in the diagram at all.
  EXPECT_EQ(diagram->rbd.to_string(diagram->root).find("sens"),
            std::string::npos);
}

TEST(SrgRbd, RejectsUnsafeCycleAndBadId) {
  spec::SpecificationConfig config;
  config.communicators = {comm("c", 10, 0.5)};
  config.tasks = {task("t", {{"c", 0}}, {{"c", 1}})};
  auto system = test::single_host_system(std::move(config), 0.9, 1.0);
  EXPECT_EQ(build_srg_rbd(*system.impl, 0).status().code(),
            StatusCode::kFailedPrecondition);
  auto ok = test::single_host_system(test::chain_spec_config(1));
  EXPECT_EQ(build_srg_rbd(*ok.impl, 99).status().code(),
            StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace lrt::reliability
