// Unit tests for src/htl: lexer, parser, semantic checks, flattening, the
// architecture/mapping blocks, mode selection, and refinement declarations.
#include <gtest/gtest.h>

#include "htl/compiler.h"
#include "htl/lexer.h"
#include "htl/parser.h"
#include "reliability/analysis.h"

namespace lrt::htl {
namespace {

// --- lexer ---

TEST(Lexer, TokenizesAllKinds) {
  const auto tokens = lex("prog { c1[2] : 3.5 , ; ( ) -7 1e3 }");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> kinds;
  for (const Token& token : *tokens) kinds.push_back(token.kind);
  EXPECT_EQ(kinds,
            (std::vector<TokenKind>{
                TokenKind::kIdentifier, TokenKind::kLBrace,
                TokenKind::kIdentifier, TokenKind::kLBracket,
                TokenKind::kInteger, TokenKind::kRBracket, TokenKind::kColon,
                TokenKind::kFloat, TokenKind::kComma, TokenKind::kSemicolon,
                TokenKind::kLParen, TokenKind::kRParen, TokenKind::kInteger,
                TokenKind::kFloat, TokenKind::kRBrace,
                TokenKind::kEndOfFile}));
  EXPECT_EQ((*tokens)[12].text, "-7");
}

TEST(Lexer, SkipsComments) {
  const auto tokens = lex("a // line comment\n/* block\ncomment */ b");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 3u);
  EXPECT_EQ((*tokens)[0].text, "a");
  EXPECT_EQ((*tokens)[1].text, "b");
  EXPECT_EQ((*tokens)[1].line, 3);
}

TEST(Lexer, ReportsPosition) {
  const auto tokens = lex("ab\n  cd");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].line, 2);
  EXPECT_EQ((*tokens)[1].column, 3);
}

TEST(Lexer, RejectsStrayCharacters) {
  EXPECT_EQ(lex("a $ b").status().code(), StatusCode::kParseError);
  EXPECT_EQ(lex("/* unterminated").status().code(), StatusCode::kParseError);
  EXPECT_EQ(lex("1.").status().code(), StatusCode::kParseError);
  EXPECT_EQ(lex("1e").status().code(), StatusCode::kParseError);
}

// --- parser ---

constexpr std::string_view kMinimalProgram = R"(
program mini {
  communicator in : real period 10 init 0.0 lrc 0.5;
  communicator out : real period 10 init 0.0 lrc 0.5;
  module m {
    task t input (in[0]) output (out[1]) model series;
    mode main period 10 { invoke t; }
    start main;
  }
}
)";

TEST(Parser, ParsesMinimalProgram) {
  const auto program = parse(kMinimalProgram);
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_EQ(program->name, "mini");
  ASSERT_EQ(program->communicators.size(), 2u);
  EXPECT_EQ(program->communicators[0].name, "in");
  EXPECT_EQ(program->communicators[0].period, 10);
  ASSERT_EQ(program->modules.size(), 1u);
  const ModuleAst& module = program->modules[0];
  ASSERT_EQ(module.tasks.size(), 1u);
  EXPECT_EQ(module.tasks[0].inputs[0].communicator, "in");
  EXPECT_EQ(module.tasks[0].outputs[0].instance, 1);
  EXPECT_EQ(module.start_mode, "main");
  EXPECT_FALSE(program->refines.has_value());
}

TEST(Parser, ParsesTypesAndLiterals) {
  const auto program = parse(R"(
    program p {
      communicator a : int period 5 init -3 lrc 0.9;
      communicator b : bool period 5 init true lrc 1.0;
      communicator c : real period 5 init 2.5 lrc 0.25;
    }
  )");
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_EQ(program->communicators[0].init, spec::Value::integer(-3));
  EXPECT_EQ(program->communicators[1].init, spec::Value::boolean(true));
  EXPECT_EQ(program->communicators[2].init, spec::Value::real(2.5));
}

TEST(Parser, ParsesModelsDefaultsAndSwitches) {
  const auto program = parse(R"(
    program p {
      communicator go : bool period 10 init false lrc 1.0;
      communicator x : real period 10 init 0.0 lrc 0.5;
      communicator y : real period 10 init 0.0 lrc 0.5;
      module m {
        task t input (x[0], go[0]) output (y[1])
          model parallel defaults (1.5, false);
        mode a period 10 { invoke t; switch (go) to b; }
        mode b period 10 { switch (go) to a; }
        start a;
      }
    }
  )");
  ASSERT_TRUE(program.ok()) << program.status();
  const TaskAst& t = program->modules[0].tasks[0];
  EXPECT_EQ(t.model, spec::FailureModel::kParallel);
  ASSERT_EQ(t.defaults.size(), 2u);
  EXPECT_EQ(t.defaults[0], spec::Value::real(1.5));
  EXPECT_EQ(t.defaults[1], spec::Value::boolean(false));
  ASSERT_EQ(program->modules[0].modes.size(), 2u);
  EXPECT_EQ(program->modules[0].modes[0].switches[0].target, "b");
}

TEST(Parser, ParsesArchitectureAndMapping) {
  const auto program = parse(R"(
    program p {
      communicator in : real period 10 init 0.0 lrc 0.5;
      communicator out : real period 10 init 0.0 lrc 0.5;
      module m {
        task t input (in[0]) output (out[1]);
        mode main period 10 { invoke t; }
        start main;
      }
      architecture {
        host h1 reliability 0.99;
        host h2 reliability 0.95;
        sensor s reliability 0.9;
        metrics default wcet 3 wctt 1;
        metrics task t on h1 wcet 5 wctt 2;
      }
      mapping {
        map t to h1, h2;
        bind in to s;
      }
    }
  )");
  ASSERT_TRUE(program.ok()) << program.status();
  ASSERT_TRUE(program->architecture.has_value());
  EXPECT_EQ(program->architecture->hosts.size(), 2u);
  EXPECT_EQ(program->architecture->metrics.size(), 2u);
  EXPECT_TRUE(program->architecture->metrics[0].task.empty());
  ASSERT_TRUE(program->mapping.has_value());
  EXPECT_EQ(program->mapping->maps[0].hosts.size(), 2u);
  EXPECT_EQ(program->mapping->binds[0].sensor, "s");
}

TEST(Parser, ParsesRetriesInMapping) {
  const auto program = parse(R"(
    program p {
      communicator in : real period 10 init 0.0 lrc 0.5;
      communicator out : real period 10 init 0.0 lrc 0.5;
      module m {
        task t input (in[0]) output (out[1]);
        mode main period 10 { invoke t; }
        start main;
      }
      architecture {
        host h1 reliability 0.9;
        sensor s reliability 0.9;
        metrics default wcet 1 wctt 1;
      }
      mapping { map t to h1 retries 2; bind in to s; }
    }
  )");
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_EQ(program->mapping->maps[0].retries, 2);

  // The compiled implementation carries the retry count, so the analytic
  // task reliability is 1 - 0.1^3.
  const auto system = compile(R"(
    program p {
      communicator in : real period 10 init 0.0 lrc 0.5;
      communicator out : real period 10 init 0.0 lrc 0.5;
      module m {
        task t input (in[0]) output (out[1]);
        mode main period 10 { invoke t; }
        start main;
      }
      architecture {
        host h1 reliability 0.9;
        sensor s reliability 0.9;
        metrics default wcet 1 wctt 1;
      }
      mapping { map t to h1 retries 2; bind in to s; }
    }
  )");
  ASSERT_TRUE(system.ok());
  EXPECT_EQ(system->implementation->reexecutions(0), 2);
  EXPECT_NEAR(reliability::task_reliability(*system->implementation, 0),
              1.0 - 0.001, 1e-12);
}

TEST(Parser, ParsesCheckpointsInMapping) {
  const auto system = compile(R"(
    program p {
      communicator in : real period 100 init 0.0 lrc 0.5;
      communicator out : real period 100 init 0.0 lrc 0.5;
      module m {
        task t input (in[0]) output (out[1]);
        mode main period 100 { invoke t; }
        start main;
      }
      architecture {
        host h1 reliability 0.9;
        sensor s reliability 0.9;
        metrics default wcet 12 wctt 1;
      }
      mapping { map t to h1 retries 2 checkpoints 2 overhead 1; bind in to s; }
    }
  )");
  ASSERT_TRUE(system.ok()) << system.status();
  EXPECT_EQ(system->implementation->checkpoints(0), 2);
  EXPECT_EQ(system->implementation->checkpoint_overhead(0), 1);
  // 12 + 2*1 + 2*(4 + 1) = 24.
  EXPECT_EQ(system->implementation->reserved_demand(0, 12), 24);
}

TEST(Parser, DiagnosticsCarryLocation) {
  const auto result = parse("program p {\n  bogus\n}");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
}

TEST(Parser, RejectsMalformedConstructs) {
  EXPECT_FALSE(parse("module m {}").ok());                 // no 'program'
  EXPECT_FALSE(parse("program p { communicator c; }").ok());
  EXPECT_FALSE(parse("program p { } trailing").ok());
  EXPECT_FALSE(
      parse("program p { mapping {} mapping {} }").ok());  // duplicate
}

// --- compiler / flattening ---

TEST(Compiler, FlattensMinimalProgram) {
  const auto system = compile(kMinimalProgram);
  ASSERT_TRUE(system.ok()) << system.status();
  const spec::Specification& spec = *system->specification;
  EXPECT_EQ(spec.name(), "mini");
  EXPECT_EQ(spec.tasks().size(), 1u);
  EXPECT_EQ(spec.hyperperiod(), 10);
  EXPECT_EQ(system->architecture, nullptr);
  EXPECT_EQ(system->implementation, nullptr);
}

TEST(Compiler, BindsFunctionsFromRegistry) {
  FunctionRegistry registry;
  registry["t"] = [](std::span<const spec::Value>) {
    return std::vector<spec::Value>{spec::Value::real(7.0)};
  };
  const auto system = compile(kMinimalProgram, registry);
  ASSERT_TRUE(system.ok());
  const spec::Task& t = system->specification->task(0);
  ASSERT_TRUE(static_cast<bool>(t.function));
  EXPECT_EQ(t.function({})[0], spec::Value::real(7.0));
}

TEST(Compiler, FullPipelineYieldsAnalyzableImplementation) {
  const auto system = compile(R"(
    program full {
      communicator in : real period 10 init 0.0 lrc 0.9;
      communicator out : real period 10 init 0.0 lrc 0.9;
      module m {
        task t input (in[0]) output (out[1]);
        mode main period 10 { invoke t; }
        start main;
      }
      architecture {
        host h1 reliability 0.99;
        sensor s reliability 0.95;
        metrics default wcet 3 wctt 1;
      }
      mapping { map t to h1; bind in to s; }
    }
  )");
  ASSERT_TRUE(system.ok()) << system.status();
  ASSERT_NE(system->implementation, nullptr);
  const auto report = reliability::analyze(*system->implementation);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->reliable);  // 0.99 * 0.95 = 0.9405 >= 0.9
}

TEST(Compiler, ModeSelectionPicksAlternateMode) {
  constexpr std::string_view source = R"(
    program modes {
      communicator go : bool period 20 init false lrc 1.0;
      communicator x : real period 20 init 0.0 lrc 0.5;
      communicator slow : real period 20 init 0.0 lrc 0.5;
      communicator fast : real period 20 init 0.0 lrc 0.5;
      module m {
        task t_slow input (x[0]) output (slow[1]);
        task t_fast input (x[0]) output (fast[1]);
        mode normal period 20 { invoke t_slow; switch (go) to boost; }
        mode boost period 20 { invoke t_fast; switch (go) to normal; }
        start normal;
      }
    }
  )";
  const auto normal = compile(source);
  ASSERT_TRUE(normal.ok()) << normal.status();
  EXPECT_TRUE(normal->specification->find_task("t_slow").has_value());
  EXPECT_FALSE(normal->specification->find_task("t_fast").has_value());

  ModeSelection selection;
  selection.mode_by_module["m"] = "boost";
  const auto boost = compile(source, {}, selection);
  ASSERT_TRUE(boost.ok()) << boost.status();
  EXPECT_TRUE(boost->specification->find_task("t_fast").has_value());
  EXPECT_FALSE(boost->specification->find_task("t_slow").has_value());
}

TEST(Compiler, SemanticChecks) {
  // Switch on a non-bool communicator.
  EXPECT_EQ(compile(R"(
    program p {
      communicator x : real period 10 init 0.0 lrc 0.5;
      communicator y : real period 10 init 0.0 lrc 0.5;
      module m {
        task t input (x[0]) output (y[1]);
        mode a period 10 { invoke t; switch (x) to a; }
        start a;
      }
    }
  )").status().code(), StatusCode::kParseError);

  // Invoking an unknown task.
  EXPECT_EQ(compile(R"(
    program p {
      communicator x : real period 10 init 0.0 lrc 0.5;
      module m { mode a period 10 { invoke ghost; } start a; }
    }
  )").status().code(), StatusCode::kParseError);

  // Switch to an unknown mode.
  EXPECT_EQ(compile(R"(
    program p {
      communicator go : bool period 10 init false lrc 1.0;
      communicator y : real period 10 init 0.0 lrc 0.5;
      module m {
        task t input (go[0]) output (y[1]);
        mode a period 10 { invoke t; switch (go) to ghost; }
        start a;
      }
    }
  )").status().code(), StatusCode::kParseError);

  // Mode period mismatch with derived specification period.
  EXPECT_EQ(compile(R"(
    program p {
      communicator x : real period 10 init 0.0 lrc 0.5;
      communicator y : real period 10 init 0.0 lrc 0.5;
      module m {
        task t input (x[0]) output (y[1]);
        mode a period 30 { invoke t; }
        start a;
      }
    }
  )").status().code(), StatusCode::kParseError);

  // Two modules with different selected mode periods.
  EXPECT_EQ(compile(R"(
    program p {
      communicator x : real period 10 init 0.0 lrc 0.5;
      communicator y : real period 10 init 0.0 lrc 0.5;
      communicator z : real period 20 init 0.0 lrc 0.5;
      module m1 {
        task t1 input (x[0]) output (y[1]);
        mode a period 10 { invoke t1; } start a;
      }
      module m2 {
        task t2 input (x[0]) output (z[1]);
        mode b period 20 { invoke t2; } start b;
      }
    }
  )").status().code(), StatusCode::kParseError);

  // Mapping without an architecture block.
  EXPECT_EQ(compile(R"(
    program p {
      communicator x : real period 10 init 0.0 lrc 0.5;
      communicator y : real period 10 init 0.0 lrc 0.5;
      module m {
        task t input (x[0]) output (y[1]);
        mode a period 10 { invoke t; } start a;
      }
      mapping { map t to h1; }
    }
  )").status().code(), StatusCode::kParseError);
}

// --- refinement declarations ---

TEST(Compiler, RefinementMapExtraction) {
  const auto program = parse(R"(
    program child refines parent {
      communicator x : real period 10 init 0.0 lrc 0.5;
      communicator y : real period 10 init 0.0 lrc 0.5;
      module m {
        task t_impl input (x[0]) output (y[1]);
        mode a period 10 { invoke t_impl; } start a;
      }
      refine task t_impl to t_abstract;
    }
  )");
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_EQ(program->refines, "parent");
  const auto map = refinement_map(*program);
  ASSERT_TRUE(map.ok());
  ASSERT_EQ(map->task_map.size(), 1u);
  EXPECT_EQ(map->task_map[0].first, "t_impl");
  EXPECT_EQ(map->task_map[0].second, "t_abstract");
}

TEST(Compiler, RefinementMapRequiresParent) {
  const auto program = parse(kMinimalProgram);
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(refinement_map(*program).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(Compiler, DuplicateRefineDeclarationRejected) {
  const auto program = parse(R"(
    program child refines parent {
      communicator x : real period 10 init 0.0 lrc 0.5;
      communicator y : real period 10 init 0.0 lrc 0.5;
      module m {
        task t input (x[0]) output (y[1]);
        mode a period 10 { invoke t; } start a;
      }
      refine task t to a1;
      refine task t to a2;
    }
  )");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(refinement_map(*program).status().code(),
            StatusCode::kParseError);
}

}  // namespace
}  // namespace lrt::htl
