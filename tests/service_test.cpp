// End-to-end tests for lrtd (DESIGN.md §5k): the Service request handler
// (wire envelope, fingerprint cache, delta analyzes, deadlines,
// idempotent replay) and the AF_UNIX Server transport (framing,
// admission control, worker-count-independent response bytes).
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "arch/arch_json.h"
#include "arch/architecture.h"
#include "impl/impl_json.h"
#include "impl/implementation.h"
#include "lrt/lrt.h"
#include "reliability/analysis.h"
#include "service/client.h"
#include "service/frame.h"
#include "service/protocol.h"
#include "service/server.h"
#include "service/service.h"
#include "spec/spec_json.h"
#include "spec/specification.h"
#include "support/json.h"
#include "support/status.h"

namespace lrt::service {
namespace {

bool contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

/// The quickstart workload: two communicators, one mappable task, two
/// hosts — small enough that a cold analyze is microseconds.
spec::SpecificationConfig make_spec_config() {
  spec::SpecificationConfig config;
  config.name = "service_test";
  config.communicators = {
      {"s", spec::ValueType::kReal, spec::Value::real(0.0), 10, 0.95},
      {"level", spec::ValueType::kReal, spec::Value::real(0.0), 10, 0.90},
  };
  spec::SpecificationConfig::TaskConfig filter;
  filter.name = "filter";
  filter.inputs = {{"s", 0}};
  filter.outputs = {{"level", 1}};
  filter.model = spec::FailureModel::kSeries;
  config.tasks.push_back(std::move(filter));
  return config;
}

arch::ArchitectureConfig make_arch_config() {
  arch::ArchitectureConfig config;
  config.name = "service_arch";
  config.hosts = {{"h1", 0.99}, {"h2", 0.97}};
  config.sensors = {{"gauge", 0.98}};
  config.default_wcet = 4;
  config.default_wctt = 1;
  return config;
}

impl::ImplementationConfig make_impl_config(
    std::vector<std::string> filter_hosts) {
  impl::ImplementationConfig config;
  config.task_mappings = {{"filter", std::move(filter_hosts), 0, 0, 0}};
  config.sensor_bindings = {{"s", "gauge"}};
  return config;
}

/// {"schema":1,"id":id,"verb":verb, <extra fields>} — `extra` is raw
/// JSON members ("\"key\":value,...") or empty.
std::string make_frame(std::string_view id, std::string_view verb,
                       std::string_view extra = {}) {
  std::string frame = "{\"schema\":1,\"id\":\"" + std::string(id) +
                      "\",\"verb\":\"" + std::string(verb) + "\"";
  if (!extra.empty()) {
    frame += ",";
    frame += extra;
  }
  frame += "}";
  return frame;
}

std::string cold_analyze_extra(const impl::ImplementationConfig& config) {
  return "\"spec\":" + spec::to_json(make_spec_config()) +
         ",\"arch\":" + arch::to_json(make_arch_config()) +
         ",\"implementation\":" + impl::to_json(config);
}

std::string mutate_extra(std::string_view fingerprint, std::string_view task,
                         const std::vector<std::string>& hosts,
                         bool full_report = false) {
  JsonWriter hosts_json;
  hosts_json.begin_array();
  for (const std::string& host : hosts) hosts_json.value(host);
  hosts_json.end_array();
  std::string extra = "\"fingerprint\":\"" + std::string(fingerprint) +
                      "\",\"mutate\":{\"task\":\"" + std::string(task) +
                      "\",\"hosts\":" + std::move(hosts_json).str() + "}";
  if (full_report) extra += ",\"full_report\":true";
  return extra;
}

/// Extracts result.fingerprint from an ok frame.
std::string response_fingerprint(const std::string& frame) {
  const std::string key = "\"fingerprint\":\"";
  const std::size_t at = frame.find(key);
  EXPECT_NE(at, std::string::npos) << frame;
  if (at == std::string::npos) return {};
  return frame.substr(at + key.size(), 16);
}

std::string handle_ok(Service& service, const std::string& frame) {
  ServiceReply reply = service.handle(frame);
  EXPECT_TRUE(contains(reply.frame, "\"ok\":true")) << reply.frame;
  return std::move(reply.frame);
}

std::string handle_error(Service& service, const std::string& frame,
                         std::string_view code) {
  ServiceReply reply = service.handle(frame);
  EXPECT_TRUE(contains(reply.frame, "\"ok\":false")) << reply.frame;
  EXPECT_TRUE(
      contains(reply.frame, "\"code\":\"" + std::string(code) + "\""))
      << reply.frame;
  return std::move(reply.frame);
}

/// A deterministic clock: every now_ms() call advances time by `step`.
/// handle() reads the clock once at arrival, run_verb once more when a
/// deadline is set, and do_batch twice per deadline-checked item.
struct FakeClock {
  std::int64_t now = 0;
  std::int64_t step = 100;
  std::function<std::int64_t()> fn() {
    return [this] {
      now += step;
      return now;
    };
  }
};

// ---------------------------------------------------------------------------
// Protocol vocabulary.

TEST(Protocol, VerbNamesRoundTrip) {
  const Verb verbs[] = {Verb::kPing,     Verb::kAnalyze, Verb::kSynthesize,
                        Verb::kValidate, Verb::kLint,    Verb::kUpdateCheck,
                        Verb::kBatch,    Verb::kShutdown};
  for (const Verb verb : verbs) {
    const std::optional<Verb> back = verb_from_name(verb_name(verb));
    ASSERT_TRUE(back.has_value()) << verb_name(verb);
    EXPECT_EQ(*back, verb);
  }
  EXPECT_EQ(verb_from_name("update_check"), Verb::kUpdateCheck);
  EXPECT_FALSE(verb_from_name("no_such_verb").has_value());
}

TEST(Protocol, FingerprintFormatRoundTrips) {
  for (const std::uint64_t fp :
       {std::uint64_t{0}, std::uint64_t{0xdeadbeef},
        std::uint64_t{0xffffffffffffffff}}) {
    const std::string text = format_fingerprint(fp);
    EXPECT_EQ(text.size(), 16u);
    EXPECT_EQ(parse_fingerprint(text), fp);
  }
  EXPECT_FALSE(parse_fingerprint("").has_value());
  EXPECT_FALSE(parse_fingerprint("12345").has_value());
  EXPECT_FALSE(parse_fingerprint("ABCDEF0123456789").has_value());
  EXPECT_FALSE(parse_fingerprint("0123456789abcdef0").has_value());
}

TEST(Protocol, ExtractRequestIdIsBestEffort) {
  EXPECT_EQ(extract_request_id("{\"id\":\"r7\",\"verb\":\"ping\"}"), "r7");
  EXPECT_FALSE(extract_request_id("{\"id\":42}").has_value());
  EXPECT_FALSE(extract_request_id("not json").has_value());
}

TEST(Protocol, ErrorFrameRendersNullId) {
  const std::string frame =
      make_error_frame(std::nullopt, InvalidArgumentError("bad"));
  EXPECT_TRUE(contains(frame, "\"id\":null")) << frame;
  EXPECT_TRUE(contains(frame, "\"code\":\"kInvalidArgument\"")) << frame;
}

// ---------------------------------------------------------------------------
// Envelope handling.

TEST(Service, PingAndEnvelopeErrors) {
  Service service;
  const std::string pong = handle_ok(service, make_frame("p1", "ping"));
  EXPECT_TRUE(contains(pong, "\"pong\":true")) << pong;

  // Not JSON at all: error with a null id.
  ServiceReply garbled = service.handle("not json");
  EXPECT_TRUE(contains(garbled.frame, "\"id\":null")) << garbled.frame;
  EXPECT_TRUE(contains(garbled.frame, "\"ok\":false"));

  handle_error(service, "{\"schema\":1,\"verb\":\"ping\"}",
               "kInvalidArgument");  // no id
  handle_error(service, "{\"schema\":2,\"id\":\"x\",\"verb\":\"ping\"}",
               "kInvalidArgument");  // foreign schema
  handle_error(service, make_frame("x", "no_such_verb"),
               "kInvalidArgument");  // unknown verb
}

// ---------------------------------------------------------------------------
// Analyze: cold path, delta path, and their byte-identity contract.

TEST(Service, ColdAnalyzeMatchesFacadeReport) {
  auto workload = lrt::build_workload(make_spec_config(), make_arch_config());
  ASSERT_TRUE(workload.ok());
  auto impl =
      lrt::build_implementation(*workload, make_impl_config({"h1", "h2"}));
  ASSERT_TRUE(impl.ok());
  auto direct = lrt::analyze(*workload, *impl);
  ASSERT_TRUE(direct.ok());

  Service service;
  const std::string frame = handle_ok(
      service, make_frame("c1", "analyze",
                          cold_analyze_extra(make_impl_config({"h1", "h2"}))));
  // The embedded report is byte-identical to the one-shot facade call's.
  EXPECT_TRUE(contains(frame, reliability::to_json(*direct))) << frame;
  EXPECT_EQ(response_fingerprint(frame),
            format_fingerprint(workload->fingerprint()));
  EXPECT_EQ(service.resident_count(), 1u);
}

TEST(Service, MutateHitIsByteIdenticalToColdRebuild) {
  // Warm service: cold analyze on {h1,h2}, then a delta to {h2}.
  Service warm;
  const std::string cold = handle_ok(
      warm, make_frame("c1", "analyze",
                       cold_analyze_extra(make_impl_config({"h1", "h2"}))));
  const std::string fp = response_fingerprint(cold);
  const std::string hit = handle_ok(
      warm, make_frame("m1", "analyze",
                       mutate_extra(fp, "filter", {"h2"}, true)));

  // Fresh service: the mutated config analyzed cold, same request id —
  // the whole response frame must match byte for byte.
  Service fresh;
  const std::string rebuilt = handle_ok(
      fresh,
      make_frame("m1", "analyze",
                 cold_analyze_extra(make_impl_config({"h2"}))));
  EXPECT_EQ(hit, rebuilt);
}

TEST(Service, MutateDefaultsToCompactVerdict) {
  Service service;
  const std::string cold = handle_ok(
      service, make_frame("c1", "analyze",
                          cold_analyze_extra(make_impl_config({"h1", "h2"}))));
  EXPECT_TRUE(contains(cold, "\"report\":")) << cold;
  const std::string fp = response_fingerprint(cold);

  const std::string compact = handle_ok(
      service,
      make_frame("m1", "analyze", mutate_extra(fp, "filter", {"h2"})));
  EXPECT_FALSE(contains(compact, "\"report\":")) << compact;
  EXPECT_TRUE(contains(compact, "\"reliable\":")) << compact;
  EXPECT_TRUE(contains(compact, "\"unsatisfied_comms\":")) << compact;

  // The compact verdict agrees with the full report's summary fields.
  const std::string full = handle_ok(
      service,
      make_frame("m2", "analyze", mutate_extra(fp, "filter", {"h2"}, true)));
  const auto verdict_of = [](const std::string& frame) {
    const std::size_t begin = frame.find("\"reliable\":");
    const std::size_t end = frame.find(",\"report\"");
    return frame.substr(begin, end == std::string::npos
                                   ? frame.find("}}") - begin
                                   : end - begin);
  };
  EXPECT_EQ(verdict_of(compact), verdict_of(full));
}

TEST(Service, FingerprintAddressingAndNotFound) {
  Service service;
  const std::string cold = handle_ok(
      service, make_frame("c1", "analyze",
                          cold_analyze_extra(make_impl_config({"h1"}))));
  const std::string fp = response_fingerprint(cold);

  // Resident hit by fingerprint alone.
  const std::string hit = handle_ok(
      service,
      make_frame("m1", "analyze", mutate_extra(fp, "filter", {"h1", "h2"})));
  EXPECT_EQ(response_fingerprint(hit), fp);

  // Unknown fingerprint: typed kNotFound telling the caller to resend.
  const std::string miss = handle_error(
      service,
      make_frame("m2", "analyze",
                 mutate_extra("0000000000000000", "filter", {"h1"})),
      "kNotFound");
  EXPECT_TRUE(contains(miss, "resend 'spec' and 'arch'")) << miss;
}

TEST(Service, InvalidMutateDoesNotPoisonResidentState) {
  Service warm;
  const std::string cold = handle_ok(
      warm, make_frame("c1", "analyze",
                       cold_analyze_extra(make_impl_config({"h1", "h2"}))));
  const std::string fp = response_fingerprint(cold);

  handle_error(warm,
               make_frame("e1", "analyze",
                          mutate_extra(fp, "no_such_task", {"h1"})),
               "kNotFound");
  handle_error(warm,
               make_frame("e2", "analyze",
                          mutate_extra(fp, "filter", {"no_such_host"})),
               "kNotFound");
  handle_error(warm,
               make_frame("e3", "analyze",
                          mutate_extra(fp, "filter", {"h1", "h1"})),
               "kInvalidArgument");
  handle_error(warm,
               make_frame("e4", "analyze", mutate_extra(fp, "filter", {})),
               "kInvalidArgument");

  // After four rejected mutations the evaluator still answers the next
  // delta with the same bytes a fresh cold analysis produces.
  const std::string hit = handle_ok(
      warm, make_frame("m1", "analyze",
                       mutate_extra(fp, "filter", {"h2"}, true)));
  Service fresh;
  const std::string rebuilt = handle_ok(
      fresh,
      make_frame("m1", "analyze",
                 cold_analyze_extra(make_impl_config({"h2"}))));
  EXPECT_EQ(hit, rebuilt);
}

TEST(Service, MutateWithoutResidentImplementationFailsPrecondition) {
  Service service;
  // spec+arch make the workload resident, but no implementation was ever
  // analyzed — a delta has nothing to mutate.
  const std::string extra =
      "\"spec\":" + spec::to_json(make_spec_config()) +
      ",\"arch\":" + arch::to_json(make_arch_config()) +
      ",\"mutate\":{\"task\":\"filter\",\"hosts\":[\"h1\"]}";
  const std::string frame = handle_error(
      service, make_frame("m1", "analyze", extra), "kFailedPrecondition");
  EXPECT_TRUE(contains(frame, "send a full 'implementation' first")) << frame;
}

TEST(Service, AnalyzeNeedsExactlyOneOfImplementationAndMutate) {
  Service service;
  const std::string neither =
      "\"spec\":" + spec::to_json(make_spec_config()) +
      ",\"arch\":" + arch::to_json(make_arch_config());
  handle_error(service, make_frame("a1", "analyze", neither),
               "kInvalidArgument");
  const std::string both =
      neither + ",\"implementation\":" +
      impl::to_json(make_impl_config({"h1"})) +
      ",\"mutate\":{\"task\":\"filter\",\"hosts\":[\"h1\"]}";
  handle_error(service, make_frame("a2", "analyze", both),
               "kInvalidArgument");
}

// ---------------------------------------------------------------------------
// Idempotent replay.

TEST(Service, ReplayedIdReturnsCachedBytesWithoutReExecuting) {
  Service service;
  const std::string first = handle_ok(
      service, make_frame("dup", "analyze",
                          cold_analyze_extra(make_impl_config({"h1", "h2"}))));

  // A different body under the same id proves the cached bytes come
  // back without the verb running: a ping would otherwise answer pong.
  ServiceReply replay = service.handle(make_frame("dup", "ping"));
  EXPECT_EQ(replay.frame, first);
  EXPECT_FALSE(contains(replay.frame, "pong"));
}

// ---------------------------------------------------------------------------
// LRU bound on resident workloads.

TEST(Service, LruEvictsBeyondResidencyBound) {
  ServiceOptions options;
  options.max_resident_workloads = 1;
  Service service(options);

  const std::string first = handle_ok(
      service, make_frame("c1", "analyze",
                          cold_analyze_extra(make_impl_config({"h1"}))));
  const std::string fp_a = response_fingerprint(first);

  // A second workload (different host reliability) displaces the first.
  arch::ArchitectureConfig other_arch = make_arch_config();
  other_arch.hosts[0].reliability = 0.991;
  const std::string other_extra =
      "\"spec\":" + spec::to_json(make_spec_config()) +
      ",\"arch\":" + arch::to_json(other_arch) +
      ",\"implementation\":" + impl::to_json(make_impl_config({"h1"}));
  const std::string second =
      handle_ok(service, make_frame("c2", "analyze", other_extra));
  EXPECT_NE(response_fingerprint(second), fp_a);
  EXPECT_EQ(service.resident_count(), 1u);

  handle_error(service,
               make_frame("m1", "analyze",
                          mutate_extra(fp_a, "filter", {"h1"})),
               "kNotFound");
}

// ---------------------------------------------------------------------------
// Deadlines (injected clock: each now_ms() call advances 100ms).

TEST(Service, ExpiredDeadlineYieldsTypedTimeoutAndIsNotCached) {
  FakeClock clock;
  ServiceOptions options;
  options.clock_ms = clock.fn();
  Service service(options);

  // arrival=100 (deadline_at=150), verb check=200 -> expired.
  const std::string frame = handle_error(
      service, make_frame("d1", "ping", "\"deadline_ms\":50"),
      "kDeadlineExceeded");
  EXPECT_TRUE(contains(frame, "expired before the ping verb ran")) << frame;

  // A retry of the same id gets a fresh attempt, not the failure
  // replayed: with time rewound the same request now succeeds.
  clock.now = 0;
  const std::string retry = handle_ok(
      service, make_frame("d1", "ping", "\"deadline_ms\":50000"));
  EXPECT_TRUE(contains(retry, "\"pong\":true")) << retry;
}

TEST(Service, GenerousDeadlinePasses) {
  FakeClock clock;
  ServiceOptions options;
  options.clock_ms = clock.fn();
  Service service(options);
  handle_ok(service, make_frame("d2", "ping", "\"deadline_ms\":10000"));
}

TEST(Service, BatchDegradesToPartialResultsOnDeadline) {
  FakeClock clock;
  ServiceOptions options;
  options.clock_ms = clock.fn();
  Service service(options);

  // Clock trace at step=100 with deadline_ms=450 (deadline_at=550):
  // arrival=100, outer check=200, item0 check=300 + verb check=400 (ok),
  // item1 check=500 + verb check=600 (expired inside run_verb), item2
  // check=700 (expired before parsing).
  const std::string items =
      "\"deadline_ms\":450,\"items\":["
      "{\"schema\":1,\"id\":\"b0\",\"verb\":\"ping\"},"
      "{\"schema\":1,\"id\":\"b1\",\"verb\":\"ping\"},"
      "{\"schema\":1,\"id\":\"b2\",\"verb\":\"ping\"}]";
  const std::string frame =
      handle_ok(service, make_frame("batch1", "batch", items));
  EXPECT_TRUE(contains(frame, "\"id\":\"b0\",\"ok\":true")) << frame;
  EXPECT_TRUE(contains(frame, "\"pong\":true")) << frame;
  EXPECT_TRUE(contains(frame, "\"id\":\"b1\",\"ok\":false")) << frame;
  EXPECT_TRUE(contains(frame, "\"id\":\"b2\",\"ok\":false")) << frame;
  EXPECT_TRUE(contains(frame, "batch deadline expired before item 2"))
      << frame;

  // Partial batches are never cached: replayed with time rewound and a
  // slower clock, every item completes.
  clock.now = 0;
  clock.step = 1;
  const std::string retry =
      handle_ok(service, make_frame("batch1", "batch", items));
  EXPECT_TRUE(contains(retry, "\"id\":\"b1\",\"ok\":true")) << retry;
  EXPECT_TRUE(contains(retry, "\"id\":\"b2\",\"ok\":true")) << retry;
  EXPECT_FALSE(contains(retry, "\"ok\":false")) << retry;
}

TEST(Service, BatchRejectsNestedBatchAndShutdown) {
  Service service;
  const std::string items =
      "\"items\":["
      "{\"schema\":1,\"id\":\"n0\",\"verb\":\"batch\",\"items\":[]},"
      "{\"schema\":1,\"id\":\"n1\",\"verb\":\"shutdown\"}]";
  const std::string frame =
      handle_ok(service, make_frame("batch2", "batch", items));
  EXPECT_TRUE(contains(frame, "'batch' is not allowed inside a batch"))
      << frame;
  EXPECT_TRUE(contains(frame, "'shutdown' is not allowed inside a batch"))
      << frame;
}

// ---------------------------------------------------------------------------
// Framing.

TEST(Frame, RoundTripsOverSocketpair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string payload = "{\"hello\":\"world\"}";
  ASSERT_TRUE(write_frame(fds[0], payload).ok());
  ASSERT_TRUE(write_frame(fds[0], "").ok());
  auto first = read_frame(fds[1]);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->has_value());
  EXPECT_EQ(**first, payload);
  auto second = read_frame(fds[1]);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(**second, "");

  // Clean EOF at a frame boundary is nullopt, not an error.
  ::close(fds[0]);
  auto eof = read_frame(fds[1]);
  ASSERT_TRUE(eof.ok());
  EXPECT_FALSE(eof->has_value());
  ::close(fds[1]);
}

TEST(Frame, RejectsOversizedLengthPrefix) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const unsigned char huge[4] = {0xff, 0xff, 0xff, 0xff};  // 4 GiB
  ASSERT_EQ(::write(fds[0], huge, sizeof huge),
            static_cast<ssize_t>(sizeof huge));
  auto result = read_frame(fds[1]);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  ::close(fds[0]);
  ::close(fds[1]);
}

// ---------------------------------------------------------------------------
// The AF_UNIX server.

std::string test_socket_path(std::string_view tag) {
  return "/tmp/lrt_service_test_" + std::to_string(::getpid()) + "_" +
         std::string(tag) + ".sock";
}

TEST(Server, ServesPingAndShutsDownGracefully) {
  ServerOptions options;
  options.socket_path = test_socket_path("ping");
  options.threads = 2;
  auto server = Server::Start(options);
  ASSERT_TRUE(server.ok()) << server.status().to_string();

  auto client = Client::Connect(options.socket_path);
  ASSERT_TRUE(client.ok()) << client.status().to_string();
  auto pong = client->call(make_frame("p1", "ping"));
  ASSERT_TRUE(pong.ok()) << pong.status().to_string();
  EXPECT_TRUE(contains(*pong, "\"pong\":true")) << *pong;

  auto stopping = client->call(make_frame("s1", "shutdown"));
  ASSERT_TRUE(stopping.ok());
  EXPECT_TRUE(contains(*stopping, "\"stopping\":true")) << *stopping;
  (*server)->Wait();

  // The socket path is unlinked; a new connect finds nothing listening.
  EXPECT_NE(::access(options.socket_path.c_str(), F_OK), 0);
  EXPECT_FALSE(Client::Connect(options.socket_path).ok());
}

TEST(Server, ResponseBytesAreIndependentOfWorkerCount) {
  // One connection replaying the same request log must read the same
  // response bytes from a serial server and an 8-worker server.
  std::vector<std::string> log;
  log.push_back(make_frame("c1", "analyze",
                           cold_analyze_extra(make_impl_config({"h1", "h2"}))));
  const std::string fp =
      format_fingerprint(lrt::fingerprint(make_spec_config(),
                                          make_arch_config()));
  for (int i = 0; i < 8; ++i) {
    std::string request_id = "m";
    request_id += std::to_string(i);
    log.push_back(make_frame(
        request_id, "analyze",
        mutate_extra(fp, "filter", {i % 2 == 0 ? "h2" : "h1"}, i % 3 == 0)));
  }
  log.push_back(make_frame("p1", "ping"));
  log.push_back(make_frame(
      "l1", "lint",
      "\"source\":\"program p { communicator c : real period 10 init 0.0 "
      "lrc 0.9; }\""));

  const auto replay = [&](unsigned threads) {
    ServerOptions options;
    options.socket_path =
        test_socket_path("replay" + std::to_string(threads));
    options.threads = threads;
    auto server = Server::Start(options);
    EXPECT_TRUE(server.ok()) << server.status().to_string();
    auto client = Client::Connect(options.socket_path);
    EXPECT_TRUE(client.ok());
    std::string stream;
    for (const std::string& frame : log) {
      auto response = client->call(frame);
      EXPECT_TRUE(response.ok()) << response.status().to_string();
      if (response.ok()) {
        stream += *response;
        stream += '\n';
      }
    }
    (*server)->Stop();
    (*server)->Wait();
    return stream;
  };

  const std::string serial = replay(1);
  const std::string parallel = replay(8);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

TEST(Server, ShedsBeyondPendingBoundWithoutPoisoningState) {
  ServerOptions options;
  options.socket_path = test_socket_path("shed");
  options.threads = 1;
  options.max_pending = 1;
  auto server = Server::Start(options);
  ASSERT_TRUE(server.ok()) << server.status().to_string();

  // While a slow validate occupies the single pending slot, every frame
  // the reader sees is shed with a typed kUnavailable reply.
  auto client = Client::Connect(options.socket_path);
  ASSERT_TRUE(client.ok());

  const std::string validate_frame = make_frame(
      "v1", "validate",
      "\"spec\":" + spec::to_json(make_spec_config()) +
          ",\"arch\":" + arch::to_json(make_arch_config()) +
          ",\"implementation\":" + impl::to_json(make_impl_config({"h1"})) +
          ",\"trials\":4000,\"periods\":60,\"seed\":11");

  // Client::call is lockstep, so drive the flood through the shed
  // window: the validate stays in flight (pending == max_pending) while
  // its response is unwritten, and every frame the reader sees in that
  // window is shed. Sending via a second connection keeps the first
  // connection's FIFO intact.
  auto flood = Client::Connect(options.socket_path);
  ASSERT_TRUE(flood.ok());

  std::thread slow([&] {
    auto response = client->call(validate_frame);
    ASSERT_TRUE(response.ok());
    EXPECT_TRUE(contains(*response, "\"ok\":true")) << *response;
    EXPECT_TRUE(contains(*response, "\"validation\"")) << *response;
  });

  // Retry pings until one lands inside the validate's service window and
  // is shed. The single worker guarantees the window exists.
  bool shed_seen = false;
  for (int i = 0; i < 2000 && !shed_seen; ++i) {
    auto response = flood->call(make_frame("f" + std::to_string(i), "ping"));
    ASSERT_TRUE(response.ok());
    if (contains(*response, "\"code\":\"kUnavailable\"")) {
      EXPECT_TRUE(contains(*response, "overloaded")) << *response;
      shed_seen = true;
    }
  }
  slow.join();
  EXPECT_TRUE(shed_seen);

  // Shedding poisons nothing: the same connection still analyzes. A
  // kUnavailable here is the advertised retry contract (the validate's
  // pending slot frees a moment after its response is written), so
  // retry with fresh ids until admitted.
  bool analyzed = false;
  for (int i = 0; i < 100 && !analyzed; ++i) {
    auto cold = flood->call(
        make_frame("c" + std::to_string(i), "analyze",
                   cold_analyze_extra(make_impl_config({"h1", "h2"}))));
    ASSERT_TRUE(cold.ok());
    if (contains(*cold, "\"ok\":true")) {
      analyzed = true;
    } else {
      EXPECT_TRUE(contains(*cold, "\"code\":\"kUnavailable\"")) << *cold;
      // Back off: on one core a tight retry loop can starve the worker
      // of the cycles it needs to retire the validate and free the slot.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_TRUE(analyzed);

  (*server)->Stop();
  (*server)->Wait();
}

}  // namespace
}  // namespace lrt::service
