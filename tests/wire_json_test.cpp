// The canonical wire codecs behind lrtd (DESIGN.md §5k): every config
// document must round-trip exactly (to_json -> from_json -> to_json is
// byte-identical), reject foreign schema versions, and hash to a stable,
// canonical-order-insensitive workload fingerprint.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "arch/arch_json.h"
#include "arch/architecture.h"
#include "impl/impl_json.h"
#include "impl/implementation.h"
#include "lrt/lrt.h"
#include "reliability/analysis.h"
#include "spec/spec_json.h"
#include "spec/specification.h"
#include "support/json.h"
#include "support/status.h"

namespace lrt {
namespace {

spec::SpecificationConfig make_spec_config() {
  spec::SpecificationConfig config;
  config.name = "wire_spec";
  config.communicators = {
      {"s", spec::ValueType::kReal, spec::Value::real(0.5), 10, 0.95},
      {"level", spec::ValueType::kReal, spec::Value::real(0.0), 10, 0.90},
      {"alarm", spec::ValueType::kBool, spec::Value::boolean(false), 20,
       0.80},
  };
  spec::SpecificationConfig::TaskConfig filter;
  filter.name = "filter";
  filter.inputs = {{"s", 0}};
  filter.outputs = {{"level", 1}};
  filter.model = spec::FailureModel::kSeries;
  config.tasks.push_back(std::move(filter));
  spec::SpecificationConfig::TaskConfig monitor;
  monitor.name = "monitor";
  monitor.inputs = {{"level", 1}};
  monitor.outputs = {{"alarm", 1}};
  monitor.model = spec::FailureModel::kIndependent;
  monitor.defaults = {spec::Value::real(0.0)};
  config.tasks.push_back(std::move(monitor));
  return config;
}

arch::ArchitectureConfig make_arch_config() {
  arch::ArchitectureConfig config;
  config.name = "wire_arch";
  config.hosts = {{"h1", 0.99}, {"h2", 0.97}};
  config.sensors = {{"gauge", 0.98}};
  config.metrics = {{"filter", "h1", 3, 1}, {"filter", "h2", 4, 2}};
  config.default_wcet = 4;
  config.default_wctt = 1;
  return config;
}

impl::ImplementationConfig make_impl_config() {
  impl::ImplementationConfig config;
  config.name = "wire_impl";
  config.task_mappings = {{"filter", {"h1", "h2"}, 1, 0, 0},
                          {"monitor", {"h2"}, 0, 0, 0}};
  config.sensor_bindings = {{"s", "gauge"}};
  return config;
}

TEST(WireJson, SpecificationConfigRoundTripsExactly) {
  const std::string first = spec::to_json(make_spec_config());
  const auto decoded = spec::specification_config_from_json(first);
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_EQ(spec::to_json(*decoded), first);
}

TEST(WireJson, ArchitectureConfigRoundTripsExactly) {
  const std::string first = arch::to_json(make_arch_config());
  const auto decoded = arch::architecture_config_from_json(first);
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_EQ(arch::to_json(*decoded), first);
}

TEST(WireJson, ImplementationConfigRoundTripsExactly) {
  const std::string first = impl::to_json(make_impl_config());
  const auto decoded = impl::implementation_config_from_json(first);
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_EQ(impl::to_json(*decoded), first);
}

TEST(WireJson, BuiltModelsRoundTripThroughConfigs) {
  // Build -> to_config -> to_json -> from_json -> Build -> to_json must
  // close the loop: the canonical document of a built model re-parses to
  // the same canonical document.
  auto workload = build_workload(make_spec_config(), make_arch_config());
  ASSERT_TRUE(workload.ok()) << workload.status().to_string();
  const std::string spec_json = spec::to_json(workload->spec->to_config());
  const std::string arch_json = arch::to_json(workload->arch->to_config());

  const auto spec_config = spec::specification_config_from_json(spec_json);
  ASSERT_TRUE(spec_config.ok());
  const auto arch_config = arch::architecture_config_from_json(arch_json);
  ASSERT_TRUE(arch_config.ok());
  auto rebuilt = build_workload(*spec_config, *arch_config);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(spec::to_json(rebuilt->spec->to_config()), spec_json);
  EXPECT_EQ(arch::to_json(rebuilt->arch->to_config()), arch_json);
}

TEST(WireJson, ReliabilityReportRoundTripsExactly) {
  auto workload = build_workload(make_spec_config(), make_arch_config());
  ASSERT_TRUE(workload.ok());
  auto impl = build_implementation(*workload, make_impl_config());
  ASSERT_TRUE(impl.ok());
  auto report = analyze(*workload, *impl);
  ASSERT_TRUE(report.ok());

  const std::string first = reliability::to_json(*report);
  const auto document = parse_json(first);
  ASSERT_TRUE(document.ok()) << first;
  const auto decoded = reliability::report_from_json(*document);
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_EQ(reliability::to_json(*decoded), first);
}

TEST(WireJson, ForeignSchemaVersionIsRejected) {
  for (const std::string& document :
       {spec::to_json(make_spec_config()), arch::to_json(make_arch_config()),
        impl::to_json(make_impl_config())}) {
    std::string foreign = document;
    const std::size_t at = foreign.find("\"schema\":1");
    ASSERT_NE(at, std::string::npos) << document;
    foreign.replace(at, 10, "\"schema\":2");

    const auto spec_result = spec::specification_config_from_json(foreign);
    const auto arch_result = arch::architecture_config_from_json(foreign);
    const auto impl_result = impl::implementation_config_from_json(foreign);
    EXPECT_FALSE(spec_result.ok());
    EXPECT_FALSE(arch_result.ok());
    EXPECT_FALSE(impl_result.ok());
  }
}

TEST(WireJson, ValueCodecRoundTrips) {
  const std::vector<spec::Value> values = {
      spec::Value::real(3.25), spec::Value::real(-0.0),
      spec::Value::boolean(true), spec::Value::boolean(false)};
  for (const spec::Value& value : values) {
    JsonWriter json;
    spec::write_json(value, json);
    const std::string text = std::move(json).str();
    const auto document = parse_json(text);
    ASSERT_TRUE(document.ok()) << text;
    const auto decoded = spec::value_from_json(*document, "value");
    ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
    JsonWriter again;
    spec::write_json(*decoded, again);
    EXPECT_EQ(std::move(again).str(), text);
  }
}

TEST(WireJson, FingerprintIsStable) {
  auto first = build_workload(make_spec_config(), make_arch_config());
  auto second = build_workload(make_spec_config(), make_arch_config());
  ASSERT_TRUE(first.ok()) << first.status().to_string();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->fingerprint(), second->fingerprint());
  EXPECT_EQ(first->fingerprint(),
            fingerprint(first->spec->to_config(), first->arch->to_config()));
}

TEST(WireJson, FingerprintIgnoresMetricDeclarationOrder) {
  arch::ArchitectureConfig shuffled = make_arch_config();
  std::swap(shuffled.metrics[0], shuffled.metrics[1]);
  auto canonical = build_workload(make_spec_config(), make_arch_config());
  auto permuted = build_workload(make_spec_config(), std::move(shuffled));
  ASSERT_TRUE(canonical.ok());
  ASSERT_TRUE(permuted.ok());
  // Architecture::to_config sorts metric entries, so the fingerprint of
  // the built workload is declaration-order-insensitive.
  EXPECT_EQ(canonical->fingerprint(), permuted->fingerprint());
}

TEST(WireJson, FingerprintSeparatesDifferentWorkloads) {
  arch::ArchitectureConfig changed = make_arch_config();
  changed.hosts[0].reliability = 0.991;
  auto base = build_workload(make_spec_config(), make_arch_config());
  auto other = build_workload(make_spec_config(), std::move(changed));
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(other.ok());
  EXPECT_NE(base->fingerprint(), other->fingerprint());
}

}  // namespace
}  // namespace lrt
