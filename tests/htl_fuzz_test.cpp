// Robustness tests for the HTL frontend: every truncation, mutation, and
// random-garbage input must produce a clean ParseError (or parse), never a
// crash or a hang. Seeded, so failures reproduce.
#include <gtest/gtest.h>

#include <string>

#include "htl/compiler.h"
#include "htl/parser.h"
#include "support/rng.h"

namespace lrt::htl {
namespace {

constexpr std::string_view kValid = R"(
program fuzz {
  communicator in : real period 10 init 0.0 lrc 0.5;
  communicator go : bool period 20 init false lrc 0.9;
  communicator out : real period 20 init 0.0 lrc 0.8;
  module m {
    task t input (in[0], go[0]) output (out[1])
      model parallel defaults (1.5, true);
    mode a period 20 { invoke t; switch (go) to b; }
    mode b period 20 { }
    start a;
  }
  architecture {
    host h1 reliability 0.99;
    sensor s reliability 0.9;
    metrics default wcet 3 wctt 1;
  }
  mapping { map t to h1 retries 1; bind in to s; bind go to s; }
}
)";

TEST(HtlFuzz, EveryTruncationIsHandled) {
  const std::string source(kValid);
  for (std::size_t cut = 0; cut < source.size(); cut += 3) {
    const std::string truncated = source.substr(0, cut);
    const auto result = parse(truncated);
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kParseError)
          << "cut at " << cut;
    }
  }
}

TEST(HtlFuzz, SingleCharacterMutationsAreHandled) {
  const std::string source(kValid);
  Xoshiro256 rng(2024);
  constexpr std::string_view kAlphabet = "{}()[];:,.0123456789abcxyz_ $#";
  for (int trial = 0; trial < 400; ++trial) {
    std::string mutated = source;
    const std::size_t pos = rng.next_below(mutated.size());
    mutated[pos] = kAlphabet[rng.next_below(kAlphabet.size())];
    const auto result = parse(mutated);
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kParseError)
          << "mutation at " << pos << " -> '" << mutated[pos] << "'";
    } else {
      // A program that still parses must also flatten without crashing
      // (it may legitimately fail semantic checks).
      const auto compiled = compile(mutated);
      (void)compiled;
    }
  }
}

TEST(HtlFuzz, RandomGarbageIsHandled) {
  Xoshiro256 rng(7);
  constexpr std::string_view kAlphabet =
      "program module task mode {}()[];:, 0123456789.eE+- abc_ \n\t\"";
  for (int trial = 0; trial < 300; ++trial) {
    std::string garbage;
    const std::size_t length = rng.next_below(200);
    for (std::size_t i = 0; i < length; ++i) {
      garbage += kAlphabet[rng.next_below(kAlphabet.size())];
    }
    const auto result = parse(garbage);
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kParseError);
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

TEST(HtlFuzz, TokenDeletionIsHandled) {
  Xoshiro256 rng(99);
  const std::string source(kValid);
  for (int trial = 0; trial < 200; ++trial) {
    // Delete a random span of up to 12 characters.
    std::string mutated = source;
    const std::size_t pos = rng.next_below(mutated.size());
    const std::size_t len =
        std::min<std::size_t>(1 + rng.next_below(12), mutated.size() - pos);
    mutated.erase(pos, len);
    const auto result = parse(mutated);
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kParseError);
    }
  }
}

}  // namespace
}  // namespace lrt::htl
