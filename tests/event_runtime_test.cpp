// Differential oracle for the event engine (ctest label `differential`):
// Engine::kEvent must be bit-identical to Engine::kTick — results, value
// traces, monitor callback sequences, RNG-driven fault outcomes, obs
// counters — on randomized workloads, fault plans (including off-grid
// scripted host events), timed execution, mid-run remaps, the adapt
// self-healing path, the Monte Carlo runner at several thread counts, and
// the lrt:: facade. A mismatch writes des-mismatch-<seed>.json next to
// the binary so CI can upload the failing workload spec as an artifact.
#include <cstdint>
#include <fstream>
#include <memory>
#include <regex>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "adapt/self_healing.h"
#include "gen/workload.h"
#include "lrt/lrt.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "plant/three_tank_system.h"
#include "sim/monte_carlo.h"
#include "sim/runtime.h"
#include "support/rng.h"
#include "tests/test_util.h"

namespace lrt::sim {
namespace {

using spec::Time;
using Engine = SimulationOptions::Engine;

// --- oracle plumbing ---

/// One recorded RuntimeMonitor callback; the engines must produce the
/// exact same sequence (the adapt layer's entire view of a run).
struct Callback {
  int kind = 0;  ///< 0 invocation, 1 sensor, 2 update, 3 boundary
  Time now = 0;
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::int64_t c = 0;
  friend bool operator==(const Callback&, const Callback&) = default;
};

class RecordingMonitor : public RuntimeMonitor {
 public:
  void on_invocation(Time now, spec::TaskId task, arch::HostId host,
                     bool success) override {
    calls.push_back({0, now, task, host, success ? 1 : 0});
  }
  void on_sensor_update(Time now, spec::CommId comm, arch::SensorId sensor,
                        bool reliable) override {
    calls.push_back({1, now, comm, sensor, reliable ? 1 : 0});
  }
  void on_update(Time now, spec::CommId comm, bool reliable,
                 int contributors) override {
    calls.push_back({2, now, comm, reliable ? 1 : 0, contributors});
  }
  const impl::Implementation* on_period_boundary(Time now) override {
    calls.push_back({3, now, 0, 0, 0});
    return nullptr;
  }

  std::vector<Callback> calls;
};

/// Field-by-field equality, exact on doubles: the engines run the same
/// arithmetic in the same order, so even rounding must agree.
void expect_identical(const SimulationResult& tick,
                      const SimulationResult& event) {
  EXPECT_EQ(tick.periods, event.periods);
  EXPECT_EQ(tick.ticks, event.ticks);
  EXPECT_EQ(tick.invocations, event.invocations);
  EXPECT_EQ(tick.invocation_failures, event.invocation_failures);
  EXPECT_EQ(tick.committed_updates, event.committed_updates);
  EXPECT_EQ(tick.vote_divergences, event.vote_divergences);
  EXPECT_EQ(tick.deadline_misses, event.deadline_misses);
  EXPECT_EQ(tick.remaps_installed, event.remaps_installed);
  ASSERT_EQ(tick.comm_stats.size(), event.comm_stats.size());
  for (std::size_t c = 0; c < tick.comm_stats.size(); ++c) {
    const CommStats& ts = tick.comm_stats[c];
    const CommStats& es = event.comm_stats[c];
    EXPECT_EQ(ts.name, es.name);
    EXPECT_EQ(ts.samples, es.samples) << ts.name;
    EXPECT_EQ(ts.reliable_samples, es.reliable_samples) << ts.name;
    EXPECT_EQ(ts.limit_average, es.limit_average) << ts.name;
    EXPECT_EQ(ts.updates, es.updates) << ts.name;
    EXPECT_EQ(ts.reliable_updates, es.reliable_updates) << ts.name;
  }
  ASSERT_EQ(tick.value_traces.size(), event.value_traces.size());
  for (const auto& [name, trace] : tick.value_traces) {
    const auto it = event.value_traces.find(name);
    ASSERT_NE(it, event.value_traces.end()) << name;
    EXPECT_EQ(trace, it->second) << name;
  }
}

/// Runs the same configuration on both engines with fresh recording
/// monitors and checks everything matched. On a mismatch, dumps the
/// failing configuration for the CI artifact.
void expect_engines_agree(const impl::Implementation& impl,
                          Environment& tick_env, Environment& event_env,
                          SimulationOptions options, std::uint64_t seed,
                          const std::string& what) {
  RecordingMonitor tick_monitor;
  options.engine = Engine::kTick;
  options.monitor = &tick_monitor;
  const auto tick = simulate(impl, tick_env, options);
  ASSERT_TRUE(tick.ok()) << tick.status();

  RecordingMonitor event_monitor;
  options.engine = Engine::kEvent;
  options.monitor = &event_monitor;
  const auto event = simulate(impl, event_env, options);
  ASSERT_TRUE(event.ok()) << event.status();

  expect_identical(*tick, *event);
  EXPECT_EQ(tick_monitor.calls.size(), event_monitor.calls.size());
  EXPECT_TRUE(tick_monitor.calls == event_monitor.calls)
      << "monitor callback sequences diverged (" << what << ")";
  if (testing::Test::HasFailure()) {
    // Reproduction artifact: everything needed to replay the workload.
    std::ofstream artifact("des-mismatch-" + std::to_string(seed) + ".json");
    artifact << "{\"seed\": " << seed << ", \"what\": \"" << what
             << "\", \"periods\": " << options.periods
             << ", \"broadcast_reliability\": "
             << options.broadcast_reliability
             << ", \"model_execution_time\": "
             << (options.model_execution_time ? "true" : "false")
             << ", \"faults_seed\": " << options.faults.seed
             << ", \"tick\": " << to_json(*tick)
             << ", \"event\": " << to_json(*event) << "}\n";
  }
}

/// A fault plan exercising the RNG (every invocation and sensor draw) and
/// scripted availability flips, including instants off the harmonic grid.
SimulationOptions faulty_options(std::uint64_t seed, Time horizon_hint) {
  SimulationOptions options;
  options.periods = 40;
  options.broadcast_reliability = 0.9;
  options.faults.seed = seed * 7919 + 1;
  options.faults.host_events.push_back(
      {.time = horizon_hint / 3 + 1, .host = 0, .up = false});
  options.faults.host_events.push_back(
      {.time = 2 * horizon_hint / 3 + 1, .host = 0, .up = true});
  return options;
}

// --- the differential suites ---

TEST(EventRuntimeDifferential, RandomizedWorkloads) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    Xoshiro256 rng(seed);
    gen::WorkloadOptions shape;
    shape.with_functions = true;  // arithmetic values, not just bottom/ok
    shape.max_hosts = 3;
    auto workload = gen::random_workload(rng, shape);
    ASSERT_TRUE(workload.ok()) << workload.status();

    SimulationOptions options =
        faulty_options(seed, 40 * workload->specification->base_lcm());
    for (const auto& comm : workload->specification->communicators()) {
      options.record_values_for.push_back(comm.name);
    }
    NullEnvironment tick_env;
    NullEnvironment event_env;
    expect_engines_agree(*workload->implementation, tick_env, event_env,
                         options, seed, "random workload");
  }
}

TEST(EventRuntimeDifferential, TimedExecutionMode) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Xoshiro256 rng(seed);
    gen::WorkloadOptions shape;
    shape.wcet = 2 + static_cast<Time>(seed % 4);
    shape.wctt = 1 + static_cast<Time>(seed % 3);
    auto workload = gen::random_workload(rng, shape);
    ASSERT_TRUE(workload.ok()) << workload.status();

    SimulationOptions options =
        faulty_options(seed, 40 * workload->specification->base_lcm());
    options.model_execution_time = true;
    NullEnvironment tick_env;
    NullEnvironment event_env;
    expect_engines_agree(*workload->implementation, tick_env, event_env,
                         options, seed, "timed execution");
  }
}

/// Varied communicator periods make the harmonic grid strictly finer than
/// any single period (gcd < min period), so the event engine actually
/// skips instants; scripted events intentionally land off the grid.
TEST(EventRuntimeDifferential, VariedPeriodChainWithOffGridHostEvents) {
  spec::SpecificationConfig config;
  config.name = "varied";
  config.communicators = {test::comm("c0", 6, 0.3), test::comm("c1", 4, 0.3),
                          test::comm("c2", 10, 0.3)};
  config.tasks = {test::task("task1", {{"c0", 1}}, {{"c1", 2}}),
                  test::task("task2", {{"c1", 1}}, {{"c2", 2}})};
  test::System system = test::single_host_system(std::move(config), 0.9, 0.9);

  SimulationOptions options;
  options.periods = 50;
  options.broadcast_reliability = 0.85;
  options.record_values_for = {"c0", "c1", "c2"};
  // Step is gcd(6,4,10) = 2; odd times sit between ticks.
  options.faults.host_events.push_back({.time = 7, .host = 0, .up = false});
  options.faults.host_events.push_back({.time = 13, .host = 0, .up = true});
  options.faults.host_events.push_back({.time = 121, .host = 0, .up = false});
  options.faults.host_events.push_back({.time = 240, .host = 0, .up = true});
  NullEnvironment tick_env;
  NullEnvironment event_env;
  expect_engines_agree(*system.impl, tick_env, event_env, options,
                       /*seed=*/601, "varied periods");
}

TEST(EventRuntimeDifferential, ThreeTankClosedLoopEnvironment) {
  // A stateful plant: the environment integrates an ODE in advance() and
  // feeds sensors from it, so any divergence in instants visited or
  // actuator writes compounds. Metrics must also agree bit-for-bit.
  auto run = [](Engine engine) {
    auto system = plant::make_three_tank_system({});
    EXPECT_TRUE(system.ok()) << system.status();
    plant::ThreeTankEnvironment env({}, 0.4, 0.3);
    SimulationOptions options;
    options.engine = engine;
    options.periods = 40;
    options.actuator_comms = {"u1", "u2"};
    options.record_values_for = {"l1", "u1"};
    options.faults.host_events.push_back(
        {.time = 5'000, .host = 1, .up = false});
    auto result = simulate(*system->implementation, env, options);
    EXPECT_TRUE(result.ok()) << result.status();
    return std::pair(std::move(result).value(), env.metrics());
  };
  const auto [tick, tick_metrics] = run(Engine::kTick);
  const auto [event, event_metrics] = run(Engine::kEvent);
  expect_identical(tick, event);
  EXPECT_EQ(tick_metrics.samples, event_metrics.samples);
  EXPECT_EQ(tick_metrics.rms_error1, event_metrics.rms_error1);
  EXPECT_EQ(tick_metrics.rms_error2, event_metrics.rms_error2);
  EXPECT_EQ(tick_metrics.max_error1, event_metrics.max_error1);
  EXPECT_EQ(tick_metrics.max_error2, event_metrics.max_error2);
}

TEST(EventRuntimeDifferential, MidRunRemapResynchronizesReleases) {
  // The self-healing controller detects the scripted kill and installs a
  // repair mid-run: the event engine must re-derive its release schedule
  // from the new mapping at the same boundary the tick engine does.
  auto run = [](Engine engine, int host_count) {
    plant::ThreeTankScenario scenario;
    scenario.variant = plant::ThreeTankVariant::kReplicatedTasks;
    scenario.lrc_controls = 0.98;
    scenario.host_count = host_count;
    auto system = plant::make_three_tank_system(scenario);
    EXPECT_TRUE(system.ok()) << system.status();
    adapt::SelfHealingController controller(*system->implementation);
    NullEnvironment env;
    SimulationOptions options;
    options.engine = engine;
    options.periods = 200;
    options.actuator_comms = {"u1", "u2"};
    options.faults.host_events = {{.time = 20'000, .host = 0, .up = false}};
    options.monitor = &controller;
    auto result = simulate(*system->implementation, env, options);
    EXPECT_TRUE(result.ok()) << result.status();
    return std::pair(std::move(result).value(),
                     controller.repairs().empty()
                         ? Time{-1}
                         : controller.repairs().front().committed_at);
  };
  // host_count 3: clean remap. host_count 2: capacity-starved platform,
  // where the repair degrades gracefully (exercises shedding paths).
  for (const int hosts : {3, 2}) {
    const auto [tick, tick_repair_at] = run(Engine::kTick, hosts);
    const auto [event, event_repair_at] = run(Engine::kEvent, hosts);
    expect_identical(tick, event);
    EXPECT_EQ(tick_repair_at, event_repair_at) << hosts << " hosts";
    EXPECT_GE(tick.remaps_installed, 1) << hosts << " hosts";
  }
}

TEST(EventRuntimeDifferential, SharedObsCountersAgree) {
  // Pooled "sim.*" counters must match across engines; the event engine
  // additionally reports its own sim.events / sim.ticks_skipped, and on
  // this sparse-ish workload it must actually skip instants.
  auto counters = [](Engine engine) {
    spec::SpecificationConfig config;
    config.name = "sparse";
    config.communicators = {test::comm("c0", 35, 0.3),
                            test::comm("c1", 50, 0.3)};
    config.tasks = {test::task("task1", {{"c0", 1}}, {{"c1", 2}})};
    test::System system = test::single_host_system(std::move(config));
    obs::MetricsRegistry metrics;
    obs::Sink sink(&metrics, nullptr);
    NullEnvironment env;
    SimulationOptions options;
    options.engine = engine;
    options.periods = 30;
    options.sink = &sink;
    EXPECT_TRUE(simulate(*system.impl, env, options).ok());
    return metrics.snapshot();
  };
  const obs::MetricsSnapshot tick = counters(Engine::kTick);
  const obs::MetricsSnapshot event = counters(Engine::kEvent);
  for (const auto& [name, value] : tick.counters) {
    EXPECT_EQ(event.counter(name), value) << name;
  }
  EXPECT_GT(event.counter("sim.events"), 0);
  // Step gcd(35, 50) = 5, hyperperiod 350: 70 grid ticks per period, but
  // only 10 + 7 + 1 activations — most instants must be skipped.
  EXPECT_GT(event.counter("sim.ticks_skipped"),
            event.counter("sim.events"));
  EXPECT_EQ(tick.counter("sim.events"), 0)
      << "tick engine emits no DES counters";
}

TEST(EventRuntimeDifferential, MonteCarloRunnerAcrossThreadCounts) {
  // The engine choice rides through MonteCarloOptions::simulation; every
  // (engine, threads) combination must produce one identical report.
  auto system = plant::make_three_tank_system({});
  ASSERT_TRUE(system.ok()) << system.status();
  auto report_json = [&](Engine engine, unsigned threads) {
    MonteCarloOptions options;
    options.simulation.engine = engine;
    options.simulation.periods = 20;
    options.simulation.actuator_comms = {"u1", "u2"};
    options.trials = 12;
    options.seed = 20260808;
    options.threads = threads;
    const auto report =
        MonteCarloRunner(options).run(*system->implementation);
    EXPECT_TRUE(report.ok()) << report.status();
    // Wall-clock timing (and the echoed thread count) are the only
    // legitimately varying fields.
    std::string json = to_json(*report);
    json = std::regex_replace(
        json,
        std::regex(
            "\"(elapsed_seconds|trials_per_second|threads)\":[0-9.eE+-]+"),
        "\"$1\":0");
    return json;
  };
  const std::string reference = report_json(Engine::kTick, 1);
  for (const unsigned threads : {1u, 2u, 8u}) {
    EXPECT_EQ(report_json(Engine::kEvent, threads), reference)
        << threads << " threads";
    EXPECT_EQ(report_json(Engine::kTick, threads), reference)
        << threads << " threads (tick determinism)";
  }
}

TEST(EventRuntimeDifferential, FacadeEnginePassthrough) {
  // lrt::simulate forwards SimulationOptions verbatim, so selecting the
  // event engine at the facade must hit the same code path.
  test::System system =
      test::single_host_system(test::chain_spec_config(2, 12, 0.4));
  const lrt::Workload workload =
      lrt::borrow_workload(*system.spec, *system.arch);
  lrt::SimulateOptions options;
  options.simulation.periods = 25;
  options.simulation.broadcast_reliability = 0.9;
  options.simulation.engine = Engine::kTick;
  const auto tick = lrt::simulate(workload, *system.impl, options);
  ASSERT_TRUE(tick.ok()) << tick.status();
  options.simulation.engine = Engine::kEvent;
  const auto event = lrt::simulate(workload, *system.impl, options);
  ASSERT_TRUE(event.ok()) << event.status();
  expect_identical(*tick, *event);
}

}  // namespace
}  // namespace lrt::sim
