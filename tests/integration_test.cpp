// Integration tests: whole-pipeline flows crossing module boundaries —
// HTL source -> compiler -> joint analysis -> synthesis -> E-code ->
// E-machine -> empirical reliability, plus HTL-declared refinement checked
// by the refinement engine.
#include <gtest/gtest.h>

#include "ecode/emachine.h"
#include "htl/compiler.h"
#include "htl/parser.h"
#include "htl/printer.h"
#include "plant/three_tank_system.h"
#include "refine/refinement.h"
#include "reliability/analysis.h"
#include "reliability/rbd.h"
#include "sched/schedulability.h"
#include "sim/runtime.h"
#include "synth/synthesis.h"

namespace lrt {
namespace {

/// The 3TS controller authored in HTL (same shape as
/// examples/htl/three_tank.htl).
constexpr std::string_view kThreeTankHtl = R"(
program three_tank {
  communicator s1 : real period 500 init 0.0 lrc 0.99;
  communicator s2 : real period 500 init 0.0 lrc 0.99;
  communicator l1 : real period 100 init 0.0 lrc 0.97;
  communicator l2 : real period 100 init 0.0 lrc 0.97;
  communicator u1 : real period 100 init 0.0 lrc 0.97;
  communicator u2 : real period 100 init 0.0 lrc 0.97;
  communicator r1 : real period 500 init 0.0 lrc 0.9;
  communicator r2 : real period 500 init 0.0 lrc 0.9;
  module io {
    task read1 input (s1[0]) output (l1[1]) model parallel;
    task read2 input (s2[0]) output (l2[1]) model parallel;
    mode main period 500 { invoke read1; invoke read2; }
    start main;
  }
  module control {
    task t1 input (l1[1]) output (u1[3]) model series;
    task t2 input (l2[1]) output (u2[3]) model series;
    mode main period 500 { invoke t1; invoke t2; }
    start main;
  }
  module estimation {
    task estimate1 input (l1[1], u1[0]) output (r1[1]) model series;
    task estimate2 input (l2[1], u2[0]) output (r2[1]) model series;
    mode main period 500 { invoke estimate1; invoke estimate2; }
    start main;
  }
  architecture {
    host h1 reliability 0.99;
    host h2 reliability 0.99;
    host h3 reliability 0.99;
    sensor sensor1 reliability 0.99;
    sensor sensor2 reliability 0.99;
    metrics default wcet 10 wctt 5;
  }
  mapping {
    map t1 to h1; map t2 to h2;
    map read1 to h3; map read2 to h3;
    map estimate1 to h3; map estimate2 to h3;
    bind s1 to sensor1; bind s2 to sensor2;
  }
}
)";

TEST(Integration, HtlThreeTankMatchesNativeModel) {
  // The HTL-authored 3TS must produce exactly the paper's SRGs, matching
  // the C++-built plant::make_three_tank_system model.
  const auto compiled = htl::compile(kThreeTankHtl);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  ASSERT_NE(compiled->implementation, nullptr);

  const auto srgs = reliability::compute_srgs(*compiled->implementation);
  ASSERT_TRUE(srgs.ok());
  const auto& spec = *compiled->specification;
  EXPECT_NEAR(
      (*srgs)[static_cast<std::size_t>(*spec.find_communicator("l1"))],
      0.9801, 1e-12);
  EXPECT_NEAR(
      (*srgs)[static_cast<std::size_t>(*spec.find_communicator("u1"))],
      0.970299, 1e-12);

  auto native = plant::make_three_tank_system({});
  ASSERT_TRUE(native.ok());
  const auto native_srgs = reliability::compute_srgs(*native->implementation);
  for (const char* name : {"s1", "l1", "u1", "r1"}) {
    const auto a = *spec.find_communicator(name);
    const auto b = *native->specification->find_communicator(name);
    EXPECT_NEAR((*srgs)[static_cast<std::size_t>(a)],
                (*native_srgs)[static_cast<std::size_t>(b)], 1e-12)
        << name;
  }

  const auto sched = sched::analyze_schedulability(*compiled->implementation);
  ASSERT_TRUE(sched.ok());
  EXPECT_TRUE(sched->schedulable);
}

TEST(Integration, SynthesisRepairsHtlProgramUnderRaisedLrc) {
  // Raise LRC(u*) to 0.98 in the HTL source, verify the mapping now fails,
  // then let the synthesizer repair it and run the repaired system on the
  // E-machine; the empirical rate must meet the raised LRC.
  std::string raised(kThreeTankHtl);
  const std::string from =
      "communicator u1 : real period 100 init 0.0 lrc 0.97";
  const std::string to = "communicator u1 : real period 100 init 0.0 lrc 0.98";
  raised.replace(raised.find(from), from.size(), to);
  const std::string from2 =
      "communicator u2 : real period 100 init 0.0 lrc 0.97";
  const std::string to2 = "communicator u2 : real period 100 init 0.0 lrc 0.98";
  raised.replace(raised.find(from2), from2.size(), to2);

  const auto compiled = htl::compile(raised);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  const auto before = reliability::analyze(*compiled->implementation);
  ASSERT_TRUE(before.ok());
  EXPECT_FALSE(before->reliable);

  const auto repair = synth::synthesize(
      *compiled->specification, *compiled->architecture,
      {{"s1", "sensor1"}, {"s2", "sensor2"}});
  ASSERT_TRUE(repair.ok()) << repair.status();
  auto repaired = impl::Implementation::Build(
      *compiled->specification, *compiled->architecture, repair->config);
  ASSERT_TRUE(repaired.ok());
  const auto after = reliability::analyze(*repaired);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->reliable);

  sim::NullEnvironment env;
  sim::SimulationOptions options;
  options.periods = 100'000;
  options.actuator_comms = {"u1", "u2"};
  options.faults.seed = 21;
  const auto run = ecode::run_emachine(*repaired, env, options);
  ASSERT_TRUE(run.ok());
  EXPECT_GE(run->find("u1")->limit_average, 0.98 - 0.003);
  EXPECT_EQ(run->vote_divergences, 0);
}

TEST(Integration, HtlDeclaredRefinementChecksOut) {
  // Parent: abstract task with WCET budget 20 and LRC 0.9 output.
  constexpr std::string_view parent_src = R"(
    program parent {
      communicator in : real period 10 init 0.0 lrc 0.8;
      communicator out : real period 10 init 0.0 lrc 0.9;
      module m {
        task t_abs input (in[0]) output (out[4]);
        mode main period 40 { invoke t_abs; }
        start main;
      }
      architecture {
        host h1 reliability 0.99;
        sensor s reliability 0.95;
        metrics default wcet 20 wctt 2;
      }
      mapping { map t_abs to h1; bind in to s; }
    }
  )";
  // Child: concrete task, smaller WCET, lower LRC, wider LET.
  constexpr std::string_view child_src = R"(
    program child refines parent {
      communicator in : real period 10 init 0.0 lrc 0.8;
      communicator out : real period 10 init 0.0 lrc 0.85;
      module m {
        task t_impl input (in[0]) output (out[4]);
        mode main period 40 { invoke t_impl; }
        start main;
      }
      architecture {
        host h1 reliability 0.99;
        sensor s reliability 0.95;
        metrics default wcet 8 wctt 2;
      }
      mapping { map t_impl to h1; bind in to s; }
      refine task t_impl to t_abs;
    }
  )";

  const auto parent = htl::compile(parent_src);
  const auto child = htl::compile(child_src);
  ASSERT_TRUE(parent.ok()) << parent.status();
  ASSERT_TRUE(child.ok()) << child.status();

  const auto kappa = htl::refinement_map(child->ast);
  ASSERT_TRUE(kappa.ok());
  const auto check = refine::check_refinement(
      *child->implementation, *parent->implementation, *kappa);
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->refines) << check->summary();

  // Prop. 2: parent valid => child valid. Verify both directly.
  EXPECT_TRUE(reliability::analyze(*parent->implementation)->reliable);
  EXPECT_TRUE(sched::analyze_schedulability(*parent->implementation)
                  ->schedulable);
  EXPECT_TRUE(reliability::analyze(*child->implementation)->reliable);
  EXPECT_TRUE(sched::analyze_schedulability(*child->implementation)
                  ->schedulable);
}

TEST(Integration, PrintCompileCycleKeepsAnalysisInvariant) {
  // compile(source) and compile(print(parse(source))) agree on analysis.
  const auto original = htl::compile(kThreeTankHtl);
  ASSERT_TRUE(original.ok());
  const auto reprinted =
      htl::compile(htl::to_source(original->ast));
  ASSERT_TRUE(reprinted.ok()) << reprinted.status();
  const auto a = reliability::compute_srgs(*original->implementation);
  const auto b = reliability::compute_srgs(*reprinted->implementation);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (std::size_t c = 0; c < a->size(); ++c) {
    EXPECT_DOUBLE_EQ((*a)[c], (*b)[c]);
  }
}

TEST(Integration, RbdAgreesWithEmpiricalRates) {
  // Analysis (RBD form) vs E-machine empirical rates on the HTL 3TS.
  const auto compiled = htl::compile(kThreeTankHtl);
  ASSERT_TRUE(compiled.ok());
  sim::NullEnvironment env;
  sim::SimulationOptions options;
  options.periods = 100'000;
  options.actuator_comms = {"u1", "u2"};
  options.faults.seed = 31;
  const auto run = sim::simulate(*compiled->implementation, env, options);
  ASSERT_TRUE(run.ok());
  for (const char* name : {"l1", "u1", "r1"}) {
    const auto comm = *compiled->specification->find_communicator(name);
    const auto diagram =
        reliability::build_srg_rbd(*compiled->implementation, comm);
    ASSERT_TRUE(diagram.ok());
    EXPECT_NEAR(run->find(name)->limit_average,
                diagram->rbd.reliability(diagram->root), 0.005)
        << name;
  }
}

TEST(Integration, AllModeSelectionsOfSwitchingProgramAnalyzable) {
  // A two-mode controller whose modes have identical reliability
  // constraints (the paper's situation): every selection must compile and
  // be reliable.
  constexpr std::string_view source = R"(
    program switching {
      communicator go : bool period 40 init false lrc 0.5;
      communicator in : real period 10 init 0.0 lrc 0.8;
      communicator out : real period 10 init 0.0 lrc 0.9;
      module m {
        task normal_ctrl input (in[0]) output (out[4]);
        task degraded_ctrl input (in[0]) output (out[4]);
        mode normal period 40 { invoke normal_ctrl; switch (go) to degraded; }
        mode degraded period 40 { invoke degraded_ctrl; switch (go) to normal; }
        start normal;
      }
      architecture {
        host h1 reliability 0.99;
        sensor s reliability 0.95;
        metrics default wcet 5 wctt 1;
      }
      mapping {
        map normal_ctrl to h1;
        map degraded_ctrl to h1;
        bind in to s; bind go to s;
      }
    }
  )";
  const auto program = htl::parse(source);
  ASSERT_TRUE(program.ok()) << program.status();
  const auto selections = htl::enumerate_mode_selections(*program);
  ASSERT_TRUE(selections.ok());
  ASSERT_EQ(selections->size(), 2u);
  for (const auto& selection : *selections) {
    const auto system = htl::compile(source, {}, selection);
    ASSERT_TRUE(system.ok()) << system.status();
    const auto report = reliability::analyze(*system->implementation);
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->reliable);
  }
}

}  // namespace
}  // namespace lrt
