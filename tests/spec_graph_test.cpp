// Unit tests for the specification graph: instance-level structure,
// communicator-cycle detection (memory-freedom), cycle safety, and the
// reliability (topological) order.
#include <gtest/gtest.h>

#include <algorithm>

#include "spec/spec_graph.h"
#include "tests/test_util.h"

namespace lrt::spec {
namespace {

using test::comm;
using test::task;

TEST(SpecGraph, ChainIsMemoryFree) {
  const Specification spec =
      test::build_spec(test::chain_spec_config(/*tasks=*/3));
  const SpecificationGraph graph(spec);
  EXPECT_TRUE(graph.is_memory_free());
  EXPECT_TRUE(graph.is_cycle_safe());
  EXPECT_TRUE(graph.cycles().empty());
}

TEST(SpecGraph, SelfLoopDetected) {
  // Task reads and writes the same communicator: the paper's Section 3
  // pathological example.
  SpecificationConfig config;
  config.communicators = {comm("c", 2)};
  config.tasks = {task("t", {{"c", 0}}, {{"c", 1}})};
  const Specification spec = test::build_spec(std::move(config));
  const SpecificationGraph graph(spec);
  EXPECT_FALSE(graph.is_memory_free());
  EXPECT_FALSE(graph.is_cycle_safe());  // model 1 task in the cycle
  ASSERT_EQ(graph.cycles().size(), 1u);
  EXPECT_EQ(graph.cycles()[0].size(), 1u);
}

TEST(SpecGraph, SelfLoopWithIndependentModelIsCycleSafe) {
  SpecificationConfig config;
  config.communicators = {comm("c", 2)};
  config.tasks = {
      task("t", {{"c", 0}}, {{"c", 1}}, FailureModel::kIndependent)};
  const Specification spec = test::build_spec(std::move(config));
  const SpecificationGraph graph(spec);
  EXPECT_FALSE(graph.is_memory_free());
  EXPECT_TRUE(graph.is_cycle_safe());
}

TEST(SpecGraph, TwoTaskCycleDetected) {
  // t1: a -> b, t2: b -> a.
  SpecificationConfig config;
  config.communicators = {comm("a", 2), comm("b", 2)};
  config.tasks = {task("t1", {{"a", 0}}, {{"b", 1}}),
                  task("t2", {{"b", 0}}, {{"a", 1}})};
  const Specification spec = test::build_spec(std::move(config));
  const SpecificationGraph graph(spec);
  EXPECT_FALSE(graph.is_memory_free());
  EXPECT_FALSE(graph.is_cycle_safe());
  ASSERT_EQ(graph.cycles().size(), 1u);
  EXPECT_EQ(graph.cycles()[0].size(), 2u);
}

TEST(SpecGraph, OneIndependentTaskMakesTwoTaskCycleSafe) {
  SpecificationConfig config;
  config.communicators = {comm("a", 2), comm("b", 2)};
  config.tasks = {
      task("t1", {{"a", 0}}, {{"b", 1}}, FailureModel::kIndependent),
      task("t2", {{"b", 0}}, {{"a", 1}})};
  const Specification spec = test::build_spec(std::move(config));
  const SpecificationGraph graph(spec);
  EXPECT_FALSE(graph.is_memory_free());
  EXPECT_TRUE(graph.is_cycle_safe());
}

TEST(SpecGraph, IndependentTaskOutsideCycleDoesNotHelp) {
  // Cycle a <-> b (both series) plus a model-3 task elsewhere.
  SpecificationConfig config;
  config.communicators = {comm("a", 2), comm("b", 2), comm("c", 2)};
  config.tasks = {
      task("t1", {{"a", 0}}, {{"b", 1}}),
      task("t2", {{"b", 0}}, {{"a", 1}}),
      task("t3", {{"a", 0}}, {{"c", 1}}, FailureModel::kIndependent)};
  const Specification spec = test::build_spec(std::move(config));
  const SpecificationGraph graph(spec);
  EXPECT_FALSE(graph.is_cycle_safe());
}

TEST(SpecGraph, ReliabilityOrderRespectsDependencies) {
  const Specification spec =
      test::build_spec(test::chain_spec_config(/*tasks=*/4));
  const SpecificationGraph graph(spec);
  const auto order = graph.reliability_order();
  ASSERT_TRUE(order.ok());
  ASSERT_EQ(order->size(), spec.communicators().size());
  // c0 must come before c1, c1 before c2, ...
  std::vector<std::size_t> position(order->size());
  for (std::size_t i = 0; i < order->size(); ++i) {
    position[static_cast<std::size_t>((*order)[i])] = i;
  }
  for (std::size_t c = 0; c + 1 < order->size(); ++c) {
    EXPECT_LT(position[c], position[c + 1])
        << "c" << c << " must precede c" << c + 1;
  }
}

TEST(SpecGraph, ReliabilityOrderFailsOnUnsafeCycle) {
  SpecificationConfig config;
  config.communicators = {comm("a", 2), comm("b", 2)};
  config.tasks = {task("t1", {{"a", 0}}, {{"b", 1}}),
                  task("t2", {{"b", 0}}, {{"a", 1}})};
  const Specification spec = test::build_spec(std::move(config));
  const SpecificationGraph graph(spec);
  EXPECT_EQ(graph.reliability_order().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(SpecGraph, ReliabilityOrderSucceedsOnSafeCycle) {
  SpecificationConfig config;
  config.communicators = {comm("a", 2), comm("b", 2)};
  config.tasks = {
      task("t1", {{"a", 0}}, {{"b", 1}}, FailureModel::kIndependent),
      task("t2", {{"b", 0}}, {{"a", 1}})};
  const Specification spec = test::build_spec(std::move(config));
  const SpecificationGraph graph(spec);
  EXPECT_TRUE(graph.reliability_order().ok());
}

TEST(SpecGraph, InstanceLevelVertexCount) {
  const Specification spec =
      test::build_spec(test::chain_spec_config(/*tasks=*/2, /*period=*/10));
  // pi_S = 10 * ceil(20/10) = 20; per comm (period 10): instances 0..2.
  const SpecificationGraph graph(spec);
  // 3 comms * 3 instances + 2 tasks.
  EXPECT_EQ(graph.vertices().size(), 3u * 3u + 2u);
  EXPECT_GT(graph.edge_count(), 0u);
}

TEST(SpecGraph, InstanceLevelEdgesForFig1Task) {
  SpecificationConfig config;
  config.communicators = {comm("c1", 2), comm("c2", 3), comm("c3", 4),
                          comm("c4", 2)};
  config.tasks = {task("t", {{"c1", 1}, {"c2", 1}}, {{"c3", 2}, {"c4", 5}})};
  const Specification spec = test::build_spec(std::move(config));
  const SpecificationGraph graph(spec);

  const int tv = graph.task_vertex(0);
  const int in1 = graph.comm_instance_vertex(*spec.find_communicator("c1"), 1);
  const auto& in1_edges = graph.edges()[static_cast<std::size_t>(in1)];
  EXPECT_NE(std::find(in1_edges.begin(), in1_edges.end(), tv),
            in1_edges.end());

  const int out = graph.comm_instance_vertex(*spec.find_communicator("c3"), 2);
  const auto& t_edges = graph.edges()[static_cast<std::size_t>(tv)];
  EXPECT_NE(std::find(t_edges.begin(), t_edges.end(), out), t_edges.end());
}

TEST(SpecGraph, PersistenceEdgesSkipWrittenInstances) {
  SpecificationConfig config;
  config.communicators = {comm("in", 4), comm("out", 4)};
  config.tasks = {task("t", {{"in", 0}}, {{"out", 1}})};
  const Specification spec = test::build_spec(std::move(config));
  const SpecificationGraph graph(spec);
  const CommId out = *spec.find_communicator("out");
  // (out, 0) -> (out, 1) must NOT exist: instance 1 is written by t.
  const int v0 = graph.comm_instance_vertex(out, 0);
  const int v1 = graph.comm_instance_vertex(out, 1);
  const auto& edges0 = graph.edges()[static_cast<std::size_t>(v0)];
  EXPECT_EQ(std::find(edges0.begin(), edges0.end(), v1), edges0.end());
  // The input communicator persists 0 -> 1 (nothing writes it).
  const CommId in = *spec.find_communicator("in");
  const int i0 = graph.comm_instance_vertex(in, 0);
  const int i1 = graph.comm_instance_vertex(in, 1);
  const auto& in_edges = graph.edges()[static_cast<std::size_t>(i0)];
  EXPECT_NE(std::find(in_edges.begin(), in_edges.end(), i1), in_edges.end());
}

TEST(SpecGraph, DotExportContainsNodesAndEdges) {
  const Specification spec =
      test::build_spec(test::chain_spec_config(/*tasks=*/1));
  const SpecificationGraph graph(spec);
  const std::string dot = graph.to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"task1\" [shape=box"), std::string::npos);
  EXPECT_NE(dot.find("\"c0@0\""), std::string::npos);
  EXPECT_NE(dot.find("\"c0@0\" -> \"task1\""), std::string::npos);
  EXPECT_NE(dot.find("\"task1\" -> \"c1@1\""), std::string::npos);
  EXPECT_NE(dot.find("}"), std::string::npos);
}

TEST(SpecGraph, DescribeCyclesMentionsCommunicators) {
  SpecificationConfig config;
  config.communicators = {comm("alpha", 2)};
  config.tasks = {task("t", {{"alpha", 0}}, {{"alpha", 1}})};
  const Specification spec = test::build_spec(std::move(config));
  const SpecificationGraph graph(spec);
  EXPECT_NE(graph.describe_cycles().find("alpha"), std::string::npos);
}

TEST(SpecGraph, DescribeCyclesMemoryFreeText) {
  const Specification spec =
      test::build_spec(test::chain_spec_config(/*tasks=*/2));
  const SpecificationGraph graph(spec);
  EXPECT_EQ(graph.describe_cycles(), "memory-free (no communicator cycles)");
}

TEST(SpecGraph, DescribeCyclesSelfLoopFormat) {
  SpecificationConfig config;
  config.communicators = {comm("c", 2)};
  config.tasks = {task("t", {{"c", 0}}, {{"c", 1}})};
  const Specification spec = test::build_spec(std::move(config));
  const SpecificationGraph graph(spec);
  EXPECT_EQ(graph.describe_cycles(), "cycle 0: {c}\n");
}

TEST(SpecGraph, InterlockingCyclesMergeIntoOneComponent) {
  // d -> b -> d and d -> c -> d share d, so Tarjan reports one strongly
  // connected component, not two separate cycles. Rule 3 still holds:
  // every communicator has a single writer.
  SpecificationConfig config;
  config.communicators = {comm("b", 2), comm("c", 2), comm("d", 2)};
  config.tasks = {task("t1", {{"d", 0}}, {{"b", 1}}),
                  task("t2", {{"d", 0}}, {{"c", 1}}),
                  task("t3", {{"b", 0}, {"c", 0}}, {{"d", 1}})};
  const Specification spec = test::build_spec(std::move(config));
  const SpecificationGraph graph(spec);
  EXPECT_FALSE(graph.is_memory_free());
  ASSERT_EQ(graph.cycles().size(), 1u);
  EXPECT_EQ(graph.cycles()[0].size(), 3u);
  const std::string text = graph.describe_cycles();
  EXPECT_NE(text.find("b"), std::string::npos);
  EXPECT_NE(text.find("c"), std::string::npos);
  EXPECT_NE(text.find("d"), std::string::npos);
  EXPECT_EQ(text.find("cycle 1"), std::string::npos);
}

TEST(SpecGraph, DisjointCyclesReportedSeparately) {
  SpecificationConfig config;
  config.communicators = {comm("a", 2), comm("b", 2), comm("c", 2),
                          comm("d", 2)};
  config.tasks = {task("t1", {{"a", 0}}, {{"b", 1}}),
                  task("t2", {{"b", 0}}, {{"a", 1}}),
                  task("t3", {{"c", 0}}, {{"d", 1}}),
                  task("t4", {{"d", 0}}, {{"c", 1}})};
  const Specification spec = test::build_spec(std::move(config));
  const SpecificationGraph graph(spec);
  EXPECT_EQ(graph.cycles().size(), 2u);
  const std::string text = graph.describe_cycles();
  EXPECT_NE(text.find("cycle 0"), std::string::npos);
  EXPECT_NE(text.find("cycle 1"), std::string::npos);
}

TEST(SpecGraph, CycleBrokenByIndependentTaskStillDescribed) {
  // An independent-model task makes the cycle *safe* (the SRG induction
  // is well-founded) but the specification still has memory, and
  // describe_cycles() must keep reporting the cycle for diagnostics.
  SpecificationConfig config;
  config.communicators = {comm("a", 2), comm("b", 2)};
  config.tasks = {
      task("t1", {{"a", 0}}, {{"b", 1}}, FailureModel::kIndependent),
      task("t2", {{"b", 0}}, {{"a", 1}})};
  const Specification spec = test::build_spec(std::move(config));
  const SpecificationGraph graph(spec);
  EXPECT_TRUE(graph.is_cycle_safe());
  EXPECT_FALSE(graph.is_memory_free());
  const std::string text = graph.describe_cycles();
  EXPECT_NE(text.find("a"), std::string::npos);
  EXPECT_NE(text.find("b"), std::string::npos);
}

}  // namespace
}  // namespace lrt::spec
