// Tests for the WCET-timed execution mode: a schedulable implementation
// behaves exactly like the logical-execution model (no deadline misses,
// same empirical reliability), while an overloaded one misses write
// instants and its observed reliability drops below the SRG — the runtime
// witness for why the paper couples schedulability with reliability.
#include <gtest/gtest.h>

#include <memory>

#include "gen/workload.h"
#include "plant/three_tank_system.h"
#include "reliability/analysis.h"
#include "sched/schedulability.h"
#include "sim/runtime.h"
#include "tests/test_util.h"

namespace lrt::sim {
namespace {

/// Two tasks sharing one host; both have LET [0, period) and the given
/// WCET, so the pair is schedulable iff 2*wcet + wctt fits.
test::System shared_host(spec::Time wcet, spec::Time period = 20) {
  test::System system;
  spec::SpecificationConfig config;
  config.communicators = {test::comm("in", period),
                          test::comm("a", period),
                          test::comm("b", period)};
  config.tasks = {test::task("t1", {{"in", 0}}, {{"a", 1}}),
                  test::task("t2", {{"in", 0}}, {{"b", 1}})};
  system.spec = std::make_unique<spec::Specification>(
      test::build_spec(std::move(config)));
  arch::ArchitectureConfig arch_config;
  arch_config.hosts = {{"h0", 1.0}};
  arch_config.sensors = {{"s", 1.0}};
  arch_config.default_wcet = wcet;
  arch_config.default_wctt = 1;
  system.arch = std::make_unique<arch::Architecture>(
      std::move(arch::Architecture::Build(std::move(arch_config))).value());
  impl::ImplementationConfig impl_config;
  impl_config.task_mappings = {{"t1", {"h0"}}, {"t2", {"h0"}}};
  impl_config.sensor_bindings = {{"in", "s"}};
  system.impl = std::make_unique<impl::Implementation>(
      std::move(impl::Implementation::Build(*system.spec, *system.arch,
                                            std::move(impl_config)))
          .value());
  return system;
}

SimulationOptions timed_options(std::int64_t periods,
                                std::uint64_t seed = 1) {
  SimulationOptions options;
  options.periods = periods;
  options.faults.seed = seed;
  options.model_execution_time = true;
  return options;
}

TEST(TimedExecution, SchedulableSystemHasNoMisses) {
  auto system = shared_host(/*wcet=*/8);  // 2*8 + 1 <= 19: feasible
  ASSERT_TRUE(sched::analyze_schedulability(*system.impl)->schedulable);
  NullEnvironment env;
  const auto result = simulate(*system.impl, env, timed_options(500));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->deadline_misses, 0);
  EXPECT_DOUBLE_EQ(result->find("a")->update_rate(), 1.0);
  EXPECT_DOUBLE_EQ(result->find("b")->update_rate(), 1.0);
}

TEST(TimedExecution, OverloadedSystemMissesDeadlines) {
  auto system = shared_host(/*wcet=*/12);  // 24 > 19: one task must be late
  ASSERT_FALSE(sched::analyze_schedulability(*system.impl)->schedulable);
  NullEnvironment env;
  const auto result = simulate(*system.impl, env, timed_options(500));
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->deadline_misses, 0);
  // The EDF loser's communicator receives bottom every period.
  const double rate_a = result->find("a")->update_rate();
  const double rate_b = result->find("b")->update_rate();
  EXPECT_LT(std::min(rate_a, rate_b), 0.01);
}

TEST(TimedExecution, LogicalModeIgnoresOverload) {
  // The paper's logical-execution semantics: timing is the schedulability
  // analysis' job, so the same overloaded system shows full reliability
  // when execution time is not modeled.
  auto system = shared_host(/*wcet=*/12);
  NullEnvironment env;
  SimulationOptions options;
  options.periods = 200;
  const auto result = simulate(*system.impl, env, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->deadline_misses, 0);
  EXPECT_DOUBLE_EQ(result->find("a")->update_rate(), 1.0);
}

TEST(TimedExecution, ThreeTankMatchesAnalysisUnderFaults) {
  // The 3TS is schedulable, so timed execution must reproduce the SRGs.
  auto system = plant::make_three_tank_system({});
  ASSERT_TRUE(
      sched::analyze_schedulability(*system->implementation)->schedulable);
  const auto srgs = reliability::compute_srgs(*system->implementation);
  NullEnvironment env;
  SimulationOptions options = timed_options(100'000, 23);
  options.actuator_comms = {"u1", "u2"};
  const auto result = simulate(*system->implementation, env, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->deadline_misses, 0);
  for (const char* name : {"l1", "u1", "r1"}) {
    const auto comm = *system->specification->find_communicator(name);
    EXPECT_NEAR(result->find(name)->update_rate(),
                (*srgs)[static_cast<std::size_t>(comm)], 0.005)
        << name;
  }
}

TEST(TimedExecution, ReexecutionBurnsProcessorTime) {
  // One task, wcet 8, window 19, one re-execution allowed: analysis
  // reserves 16 <= 19, feasible. Timed simulation with certain transient
  // failure on the first attempt (host reliability 0.5, forced by seed
  // statistics) still meets every deadline.
  test::System system;
  system.spec = std::make_unique<spec::Specification>(
      test::build_spec(test::chain_spec_config(1, /*period=*/20)));
  arch::ArchitectureConfig arch_config;
  arch_config.hosts = {{"h0", 0.5}};
  arch_config.sensors = {{"s", 1.0}};
  arch_config.default_wcet = 8;
  arch_config.default_wctt = 1;
  system.arch = std::make_unique<arch::Architecture>(
      std::move(arch::Architecture::Build(std::move(arch_config))).value());
  impl::ImplementationConfig impl_config;
  impl_config.task_mappings = {{"task1", {"h0"}, /*reexecutions=*/1}};
  impl_config.sensor_bindings = {{"c0", "s"}};
  system.impl = std::make_unique<impl::Implementation>(
      std::move(impl::Implementation::Build(*system.spec, *system.arch,
                                            std::move(impl_config)))
          .value());
  ASSERT_TRUE(sched::analyze_schedulability(*system.impl)->schedulable);

  NullEnvironment env;
  const auto result = simulate(*system.impl, env, timed_options(50'000, 29));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->deadline_misses, 0);
  // 1 - 0.5^2 = 0.75 with the retry.
  EXPECT_NEAR(result->find("c1")->update_rate(), 0.75, 0.01);
}

// Property: on a SCHEDULABLE implementation, modeling execution time is
// unobservable — with the same seed, timed and logical modes produce the
// identical value trace and statistics (the LET abstraction's core
// guarantee, and why the paper can separate timing from reliability).
TEST(TimedExecution, EquivalentToLogicalModeWhenSchedulable) {
  Xoshiro256 rng(404);
  int tested = 0;
  for (int trial = 0; trial < 20 && tested < 8; ++trial) {
    gen::WorkloadOptions gen_options;
    gen_options.wcet = 1;  // keep most generated systems schedulable
    gen_options.wctt = 1;
    const auto workload = gen::random_workload(rng, gen_options);
    ASSERT_TRUE(workload.ok());
    const auto sched_report =
        sched::analyze_schedulability(*workload->implementation);
    ASSERT_TRUE(sched_report.ok());
    if (!sched_report->schedulable) continue;
    ++tested;

    NullEnvironment env;
    SimulationOptions options;
    options.periods = 500;
    options.faults.seed = 1000 + static_cast<std::uint64_t>(trial);
    for (const auto& comm : workload->specification->communicators()) {
      options.record_values_for.push_back(comm.name);
    }
    const auto logical = simulate(*workload->implementation, env, options);
    ASSERT_TRUE(logical.ok());
    options.model_execution_time = true;
    const auto timed = simulate(*workload->implementation, env, options);
    ASSERT_TRUE(timed.ok());

    EXPECT_EQ(timed->deadline_misses, 0);
    for (const auto& comm : workload->specification->communicators()) {
      const auto& a = logical->value_traces.at(comm.name);
      const auto& b = timed->value_traces.at(comm.name);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i], b[i])
            << "trial " << trial << " comm " << comm.name << " sample " << i;
      }
    }
    EXPECT_EQ(logical->invocation_failures, timed->invocation_failures);
  }
  EXPECT_GE(tested, 4) << "generator produced too few schedulable systems";
}

TEST(TimedExecution, HostKillFreezesItsProcessor) {
  auto system = shared_host(8);
  NullEnvironment env;
  SimulationOptions options = timed_options(100);
  options.faults.host_events = {{0, 0, false}};
  const auto result = simulate(*system.impl, env, options);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->find("a")->update_rate(), 0.0);
}

}  // namespace
}  // namespace lrt::sim
