// Unit tests for src/reliability: task reliability, SRG propagation for the
// three failure models, the Prop. 1 check against the paper's Section 4
// numbers, fixpoint semantics on cyclic specifications, and time-dependent
// implementations (Section 3, "General implementation").
#include <gtest/gtest.h>

#include <array>

#include "plant/three_tank_system.h"
#include "reliability/analysis.h"
#include "tests/test_util.h"

namespace lrt::reliability {
namespace {

using test::comm;
using test::task;

// --- task reliability ---

TEST(TaskReliability, SingleHostEqualsHostReliability) {
  auto system = test::single_host_system(test::chain_spec_config(1),
                                         /*host_rel=*/0.9);
  EXPECT_DOUBLE_EQ(task_reliability(*system.impl, 0), 0.9);
}

TEST(TaskReliability, ReplicationComposesInParallel) {
  // Paper Section 1: two hosts with SRG 0.8 give 1 - 0.2^2 = 0.96 >= 0.9.
  spec::SpecificationConfig spec_config = test::chain_spec_config(1);
  auto spec = std::make_unique<spec::Specification>(
      test::build_spec(std::move(spec_config)));
  arch::ArchitectureConfig arch_config;
  arch_config.hosts = {{"h1", 0.8}, {"h2", 0.8}};
  arch_config.sensors = {{"s", 1.0}};
  auto arch = std::make_unique<arch::Architecture>(
      std::move(arch::Architecture::Build(std::move(arch_config))).value());
  impl::ImplementationConfig impl_config;
  impl_config.task_mappings = {{"task1", {"h1", "h2"}}};
  impl_config.sensor_bindings = {{"c0", "s"}};
  auto impl = impl::Implementation::Build(*spec, *arch,
                                          std::move(impl_config));
  ASSERT_TRUE(impl.ok());
  EXPECT_NEAR(task_reliability(*impl, 0), 0.96, 1e-12);
}

// --- SRG propagation: the paper's 3TS numbers (Section 4) ---

TEST(Srg, ThreeTankBaselineMatchesPaper) {
  plant::ThreeTankScenario scenario;  // baseline, 0.99 everywhere
  auto system = plant::make_three_tank_system(scenario);
  ASSERT_TRUE(system.ok());
  const auto srgs = compute_srgs(*system->implementation);
  ASSERT_TRUE(srgs.ok());
  const auto& spec = *system->specification;

  const auto srg_of = [&](const std::string& name) {
    return (*srgs)[static_cast<std::size_t>(*spec.find_communicator(name))];
  };
  // lambda_s = 0.99 (sensor), lambda_l = 0.99 * 0.99 = 0.9801,
  // lambda_u = lambda_l * 0.99 = 0.970299 — the paper's exact values.
  EXPECT_NEAR(srg_of("s1"), 0.99, 1e-12);
  EXPECT_NEAR(srg_of("l1"), 0.9801, 1e-12);
  EXPECT_NEAR(srg_of("l2"), 0.9801, 1e-12);
  EXPECT_NEAR(srg_of("u1"), 0.970299, 1e-12);
  EXPECT_NEAR(srg_of("u2"), 0.970299, 1e-12);
}

TEST(Srg, ThreeTankBaselineReliableAtPoint97) {
  plant::ThreeTankScenario scenario;
  scenario.lrc_controls = 0.97;
  auto system = plant::make_three_tank_system(scenario);
  ASSERT_TRUE(system.ok());
  const auto report = analyze(*system->implementation);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->reliable);
  EXPECT_TRUE(report->memory_free);
}

TEST(Srg, ThreeTankBaselineViolatesPoint98) {
  plant::ThreeTankScenario scenario;
  scenario.lrc_controls = 0.98;
  auto system = plant::make_three_tank_system(scenario);
  ASSERT_TRUE(system.ok());
  const auto report = analyze(*system->implementation);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->reliable);
  const auto violations = report->violations();
  ASSERT_EQ(violations.size(), 2u);  // u1 and u2
  EXPECT_EQ(violations[0].name, "u1");
  EXPECT_NEAR(violations[0].slack, 0.970299 - 0.98, 1e-12);
}

TEST(Srg, Scenario1TaskReplicationMeetsPoint98) {
  // Paper: t1, t2 replicated on {h1, h2} => lambda_t = 1 - 0.01^2 = 0.9999,
  // lambda_u = 0.9801 * 0.9999 = 0.98000199.
  plant::ThreeTankScenario scenario;
  scenario.variant = plant::ThreeTankVariant::kReplicatedTasks;
  scenario.lrc_controls = 0.98;
  auto system = plant::make_three_tank_system(scenario);
  ASSERT_TRUE(system.ok());
  const auto& spec = *system->specification;
  EXPECT_NEAR(task_reliability(*system->implementation,
                               *spec.find_task("t1")),
              0.9999, 1e-12);
  const auto report = analyze(*system->implementation);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->reliable);
  const auto srgs = compute_srgs(*system->implementation);
  EXPECT_NEAR((*srgs)[static_cast<std::size_t>(*spec.find_communicator("u1"))],
              0.98000199, 1e-9);
}

TEST(Srg, Scenario2SensorReplicationMeetsPoint98) {
  // Paper: two sensors per read task under model 2 =>
  // lambda_l = 0.99 * (1 - 0.01^2) = 0.989901,
  // lambda_u = 0.989901 * 0.99 = 0.98000199.
  plant::ThreeTankScenario scenario;
  scenario.variant = plant::ThreeTankVariant::kReplicatedSensors;
  scenario.lrc_controls = 0.98;
  auto system = plant::make_three_tank_system(scenario);
  ASSERT_TRUE(system.ok());
  const auto& spec = *system->specification;
  const auto srgs = compute_srgs(*system->implementation);
  ASSERT_TRUE(srgs.ok());
  EXPECT_NEAR((*srgs)[static_cast<std::size_t>(*spec.find_communicator("l1"))],
              0.989901, 1e-12);
  EXPECT_NEAR((*srgs)[static_cast<std::size_t>(*spec.find_communicator("u1"))],
              0.98000199, 1e-9);
  const auto report = analyze(*system->implementation);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->reliable);
}

// --- failure-model rules on a hand-built diamond ---
//   sa, sb (sensors) -> t (model X) -> out

test::System diamond(spec::FailureModel model, double host_rel,
                     double sensor_rel) {
  spec::SpecificationConfig config;
  config.communicators = {comm("sa", 10, 0.5), comm("sb", 10, 0.5),
                          comm("out", 10, 0.5)};
  config.tasks = {task("t", {{"sa", 0}, {"sb", 0}}, {{"out", 1}}, model)};
  return test::single_host_system(std::move(config), host_rel, sensor_rel);
}

TEST(Srg, SeriesRuleMultipliesInputs) {
  auto system = diamond(spec::FailureModel::kSeries, 0.9, 0.8);
  const auto srgs = compute_srgs(*system.impl);
  ASSERT_TRUE(srgs.ok());
  const auto out = *system.spec->find_communicator("out");
  EXPECT_NEAR((*srgs)[static_cast<std::size_t>(out)], 0.9 * 0.8 * 0.8, 1e-12);
}

TEST(Srg, ParallelRuleNeedsOneInput) {
  auto system = diamond(spec::FailureModel::kParallel, 0.9, 0.8);
  const auto srgs = compute_srgs(*system.impl);
  ASSERT_TRUE(srgs.ok());
  const auto out = *system.spec->find_communicator("out");
  EXPECT_NEAR((*srgs)[static_cast<std::size_t>(out)],
              0.9 * (1.0 - 0.2 * 0.2), 1e-12);
}

TEST(Srg, IndependentRuleIgnoresInputs) {
  auto system = diamond(spec::FailureModel::kIndependent, 0.9, 0.1);
  const auto srgs = compute_srgs(*system.impl);
  ASSERT_TRUE(srgs.ok());
  const auto out = *system.spec->find_communicator("out");
  EXPECT_NEAR((*srgs)[static_cast<std::size_t>(out)], 0.9, 1e-12);
}

TEST(Srg, ChainMultipliesThroughDepth) {
  auto system = test::single_host_system(test::chain_spec_config(4),
                                         /*host_rel=*/0.9,
                                         /*sensor_rel=*/1.0);
  const auto srgs = compute_srgs(*system.impl);
  ASSERT_TRUE(srgs.ok());
  // c4 = 0.9^4 (four series tasks on a 0.9 host, perfectly reliable sensor).
  const auto c4 = *system.spec->find_communicator("c4");
  EXPECT_NEAR((*srgs)[static_cast<std::size_t>(c4)], 0.9 * 0.9 * 0.9 * 0.9,
              1e-12);
}

TEST(Srg, UnusedCommunicatorIsPerfectlyReliable) {
  spec::SpecificationConfig config;
  config.communicators = {comm("in", 10, 0.5), comm("out", 10, 0.5),
                          comm("unused", 10, 0.5)};
  config.tasks = {task("t", {{"in", 0}}, {{"out", 1}})};
  auto system = test::single_host_system(std::move(config), 0.9, 0.8);
  const auto srgs = compute_srgs(*system.impl);
  ASSERT_TRUE(srgs.ok());
  const auto unused = *system.spec->find_communicator("unused");
  EXPECT_DOUBLE_EQ((*srgs)[static_cast<std::size_t>(unused)], 1.0);
}

// --- cyclic specifications ---

TEST(SrgFixpoint, UnsafeCycleConvergesToZero) {
  // Paper Section 3: model-1 task reading and writing c. Once bottom is
  // written, c stays bottom, so the long-run reliability is 0.
  spec::SpecificationConfig config;
  config.communicators = {comm("c", 10, 0.5)};
  config.tasks = {task("t", {{"c", 0}}, {{"c", 1}})};
  auto system = test::single_host_system(std::move(config), 0.99, 1.0);
  EXPECT_EQ(compute_srgs(*system.impl).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(analyze(*system.impl).status().code(),
            StatusCode::kFailedPrecondition);
  const auto fixpoint = compute_srgs_fixpoint(*system.impl);
  EXPECT_DOUBLE_EQ(fixpoint[0], 0.0);
}

TEST(SrgFixpoint, SafeCycleMatchesInduction) {
  // Paper's fix: an independent-model task in the cycle.
  spec::SpecificationConfig config;
  config.communicators = {comm("c", 10, 0.5)};
  config.tasks = {
      task("t", {{"c", 0}}, {{"c", 1}}, spec::FailureModel::kIndependent)};
  auto system = test::single_host_system(std::move(config), 0.93, 1.0);
  const auto inductive = compute_srgs(*system.impl);
  ASSERT_TRUE(inductive.ok());
  const auto fixpoint = compute_srgs_fixpoint(*system.impl);
  EXPECT_NEAR((*inductive)[0], 0.93, 1e-12);
  EXPECT_NEAR(fixpoint[0], 0.93, 1e-12);
}

TEST(SrgFixpoint, AgreesWithInductionOnAcyclicSpec) {
  auto system = test::single_host_system(test::chain_spec_config(3), 0.9,
                                         0.8);
  const auto inductive = compute_srgs(*system.impl);
  ASSERT_TRUE(inductive.ok());
  const auto fixpoint = compute_srgs_fixpoint(*system.impl);
  ASSERT_EQ(inductive->size(), fixpoint.size());
  for (std::size_t c = 0; c < fixpoint.size(); ++c) {
    EXPECT_NEAR((*inductive)[c], fixpoint[c], 1e-12) << "comm " << c;
  }
}

// --- time-dependent implementations (paper Section 3) ---

struct TimeDependentFixture {
  std::unique_ptr<spec::Specification> spec;
  std::unique_ptr<arch::Architecture> arch;
  std::unique_ptr<impl::Implementation> phase_a;
  std::unique_ptr<impl::Implementation> phase_b;
};

TimeDependentFixture make_time_dependent_fixture() {
  // Paper: LRC 0.9 on c1, c2; hosts h1 (0.95) and h2 (0.85). Either static
  // mapping violates one LRC; alternating the mapping satisfies both.
  TimeDependentFixture f;
  spec::SpecificationConfig spec_config;
  spec_config.communicators = {comm("s", 10, 0.5), comm("c1", 10, 0.9),
                               comm("c2", 10, 0.9)};
  spec_config.tasks = {task("t1", {{"s", 0}}, {{"c1", 1}}),
                       task("t2", {{"s", 0}}, {{"c2", 1}})};
  f.spec = std::make_unique<spec::Specification>(
      test::build_spec(std::move(spec_config)));

  arch::ArchitectureConfig arch_config;
  arch_config.hosts = {{"h1", 0.95}, {"h2", 0.85}};
  arch_config.sensors = {{"s", 1.0}};
  f.arch = std::make_unique<arch::Architecture>(
      std::move(arch::Architecture::Build(std::move(arch_config))).value());

  impl::ImplementationConfig a;
  a.task_mappings = {{"t1", {"h1"}}, {"t2", {"h2"}}};
  a.sensor_bindings = {{"s", "s"}};
  impl::ImplementationConfig b;
  b.task_mappings = {{"t1", {"h2"}}, {"t2", {"h1"}}};
  b.sensor_bindings = {{"s", "s"}};
  f.phase_a = std::make_unique<impl::Implementation>(
      std::move(impl::Implementation::Build(*f.spec, *f.arch, std::move(a)))
          .value());
  f.phase_b = std::make_unique<impl::Implementation>(
      std::move(impl::Implementation::Build(*f.spec, *f.arch, std::move(b)))
          .value());
  return f;
}

TEST(TimeDependent, StaticMappingsViolate) {
  const auto f = make_time_dependent_fixture();
  const auto report_a = analyze(*f.phase_a);
  ASSERT_TRUE(report_a.ok());
  EXPECT_FALSE(report_a->reliable);  // c2 at 0.85 < 0.9
  const auto report_b = analyze(*f.phase_b);
  ASSERT_TRUE(report_b.ok());
  EXPECT_FALSE(report_b->reliable);  // c1 at 0.85 < 0.9
}

TEST(TimeDependent, AlternatingMappingIsReliable) {
  const auto f = make_time_dependent_fixture();
  const std::array<impl::Implementation, 2> phases = {*f.phase_a, *f.phase_b};
  const auto report = analyze_time_dependent(phases);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->reliable);
  // limavg = (0.95 + 0.85) / 2 = 0.9 for both c1 and c2.
  for (const auto& verdict : report->verdicts) {
    if (verdict.name == "c1" || verdict.name == "c2") {
      EXPECT_NEAR(verdict.srg, 0.9, 1e-12);
    }
  }
}

TEST(TimeDependent, RejectsMismatchedPhases) {
  const auto f = make_time_dependent_fixture();
  const auto g = make_time_dependent_fixture();
  const std::array<impl::Implementation, 2> phases = {*f.phase_a,
                                                      *g.phase_b};
  EXPECT_EQ(analyze_time_dependent(phases).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(analyze_time_dependent({}).status().code(),
            StatusCode::kInvalidArgument);
}

// --- report plumbing ---

TEST(Report, SummaryAndViolations) {
  plant::ThreeTankScenario scenario;
  scenario.lrc_controls = 0.98;
  auto system = plant::make_three_tank_system(scenario);
  ASSERT_TRUE(system.ok());
  const auto report = analyze(*system->implementation);
  ASSERT_TRUE(report.ok());
  const std::string summary = report->summary();
  EXPECT_NE(summary.find("NOT RELIABLE"), std::string::npos);
  EXPECT_NE(summary.find("u1"), std::string::npos);
  EXPECT_NE(summary.find("VIOLATED"), std::string::npos);
}

// --- monotonicity property: adding a replica never lowers any SRG ---

class ReplicationMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(ReplicationMonotonicity, AddingHostsRaisesSrgs) {
  const int tasks = GetParam();
  auto base_config = test::chain_spec_config(tasks);
  auto spec = std::make_unique<spec::Specification>(
      test::build_spec(std::move(base_config)));

  arch::ArchitectureConfig arch_config;
  arch_config.hosts = {{"h1", 0.9}, {"h2", 0.8}, {"h3", 0.7}};
  arch_config.sensors = {{"s", 0.95}};
  auto arch = std::make_unique<arch::Architecture>(
      std::move(arch::Architecture::Build(std::move(arch_config))).value());

  const auto build = [&](bool replicate_first) {
    impl::ImplementationConfig config;
    for (int i = 0; i < tasks; ++i) {
      const std::string name = "task" + std::to_string(i + 1);
      if (i == 0 && replicate_first) {
        config.task_mappings.push_back({name, {"h1", "h2", "h3"}});
      } else {
        config.task_mappings.push_back({name, {"h1"}});
      }
    }
    config.sensor_bindings = {{"c0", "s"}};
    return std::make_unique<impl::Implementation>(
        std::move(
            impl::Implementation::Build(*spec, *arch, std::move(config)))
            .value());
  };

  const auto base = build(false);
  const auto replicated = build(true);
  const auto srgs_base = compute_srgs(*base);
  const auto srgs_repl = compute_srgs(*replicated);
  ASSERT_TRUE(srgs_base.ok());
  ASSERT_TRUE(srgs_repl.ok());
  for (std::size_t c = 0; c < srgs_base->size(); ++c) {
    EXPECT_GE((*srgs_repl)[c] + 1e-15, (*srgs_base)[c]) << "comm " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, ReplicationMonotonicity,
                         ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace lrt::reliability
