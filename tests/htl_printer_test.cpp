// Tests for the HTL pretty-printer (round-trip property) and mode
// enumeration.
#include <gtest/gtest.h>

#include "htl/compiler.h"
#include "htl/parser.h"
#include "htl/printer.h"

namespace lrt::htl {
namespace {

constexpr std::string_view kRich = R"(
program rich refines parent {
  communicator a : real period 10 init 1.5 lrc 0.9;
  communicator b : int period 20 init -3 lrc 0.5;
  communicator go : bool period 20 init true lrc 1.0;
  communicator out : real period 20 init 0.0 lrc 0.8;
  module m1 {
    task t1 input (a[0], b[0]) output (out[1])
      model parallel defaults (2.5, 7);
    mode fast period 20 { invoke t1; switch (go) to slow; }
    mode slow period 20 { switch (go) to fast; }
    start fast;
  }
  architecture {
    host h1 reliability 0.99;
    sensor s1 reliability 0.95;
    metrics default wcet 3 wctt 1;
    metrics task t1 on h1 wcet 5 wctt 2;
  }
  mapping {
    map t1 to h1 retries 2;
    bind a to s1;
    bind b to s1;
  }
  refine task t1 to t_abs;
}
)";

/// Structural equality of the pieces the printer must preserve.
void expect_equivalent(const ProgramAst& x, const ProgramAst& y) {
  EXPECT_EQ(x.name, y.name);
  EXPECT_EQ(x.refines, y.refines);
  ASSERT_EQ(x.communicators.size(), y.communicators.size());
  for (std::size_t i = 0; i < x.communicators.size(); ++i) {
    EXPECT_EQ(x.communicators[i].name, y.communicators[i].name);
    EXPECT_EQ(x.communicators[i].type, y.communicators[i].type);
    EXPECT_EQ(x.communicators[i].init, y.communicators[i].init);
    EXPECT_EQ(x.communicators[i].period, y.communicators[i].period);
    EXPECT_DOUBLE_EQ(x.communicators[i].lrc, y.communicators[i].lrc);
  }
  ASSERT_EQ(x.modules.size(), y.modules.size());
  for (std::size_t m = 0; m < x.modules.size(); ++m) {
    const ModuleAst& mx = x.modules[m];
    const ModuleAst& my = y.modules[m];
    EXPECT_EQ(mx.name, my.name);
    EXPECT_EQ(mx.start_mode, my.start_mode);
    ASSERT_EQ(mx.tasks.size(), my.tasks.size());
    for (std::size_t t = 0; t < mx.tasks.size(); ++t) {
      EXPECT_EQ(mx.tasks[t].name, my.tasks[t].name);
      EXPECT_EQ(mx.tasks[t].model, my.tasks[t].model);
      EXPECT_EQ(mx.tasks[t].defaults, my.tasks[t].defaults);
      ASSERT_EQ(mx.tasks[t].inputs.size(), my.tasks[t].inputs.size());
      for (std::size_t j = 0; j < mx.tasks[t].inputs.size(); ++j) {
        EXPECT_EQ(mx.tasks[t].inputs[j].communicator,
                  my.tasks[t].inputs[j].communicator);
        EXPECT_EQ(mx.tasks[t].inputs[j].instance,
                  my.tasks[t].inputs[j].instance);
      }
    }
    ASSERT_EQ(mx.modes.size(), my.modes.size());
    for (std::size_t k = 0; k < mx.modes.size(); ++k) {
      EXPECT_EQ(mx.modes[k].name, my.modes[k].name);
      EXPECT_EQ(mx.modes[k].period, my.modes[k].period);
      EXPECT_EQ(mx.modes[k].invokes, my.modes[k].invokes);
      ASSERT_EQ(mx.modes[k].switches.size(), my.modes[k].switches.size());
      for (std::size_t s = 0; s < mx.modes[k].switches.size(); ++s) {
        EXPECT_EQ(mx.modes[k].switches[s].condition,
                  my.modes[k].switches[s].condition);
        EXPECT_EQ(mx.modes[k].switches[s].target,
                  my.modes[k].switches[s].target);
      }
    }
  }
  EXPECT_EQ(x.architecture.has_value(), y.architecture.has_value());
  if (x.architecture && y.architecture) {
    EXPECT_EQ(x.architecture->hosts.size(), y.architecture->hosts.size());
    EXPECT_EQ(x.architecture->sensors.size(),
              y.architecture->sensors.size());
    EXPECT_EQ(x.architecture->metrics.size(),
              y.architecture->metrics.size());
  }
  EXPECT_EQ(x.mapping.has_value(), y.mapping.has_value());
  if (x.mapping && y.mapping) {
    ASSERT_EQ(x.mapping->maps.size(), y.mapping->maps.size());
    for (std::size_t i = 0; i < x.mapping->maps.size(); ++i) {
      EXPECT_EQ(x.mapping->maps[i].hosts, y.mapping->maps[i].hosts);
      EXPECT_EQ(x.mapping->maps[i].retries, y.mapping->maps[i].retries);
    }
  }
  ASSERT_EQ(x.refinements.size(), y.refinements.size());
  for (std::size_t i = 0; i < x.refinements.size(); ++i) {
    EXPECT_EQ(x.refinements[i].local_task, y.refinements[i].local_task);
    EXPECT_EQ(x.refinements[i].parent_task, y.refinements[i].parent_task);
  }
}

TEST(Printer, RoundTripPreservesAst) {
  const auto original = parse(kRich);
  ASSERT_TRUE(original.ok()) << original.status();
  const std::string printed = to_source(*original);
  const auto reparsed = parse(printed);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << printed;
  expect_equivalent(*original, *reparsed);
}

TEST(Printer, PrintedSourceIsIdempotent) {
  const auto original = parse(kRich);
  ASSERT_TRUE(original.ok());
  const std::string once = to_source(*original);
  const auto reparsed = parse(once);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(once, to_source(*reparsed));
}

TEST(Printer, RealInitAlwaysRelexesAsFloat) {
  // init 2.0 prints as "2.0", not "2" (which would lex as an int literal
  // and fail the real-typed literal check).
  const auto program = parse(R"(
    program p { communicator c : real period 5 init 2.0 lrc 1.0; }
  )");
  ASSERT_TRUE(program.ok());
  const std::string printed = to_source(*program);
  EXPECT_NE(printed.find("init 2.0"), std::string::npos) << printed;
  EXPECT_TRUE(parse(printed).ok());
}

// --- mode enumeration ---

TEST(ModeEnumeration, ProductOfModuleModes) {
  const auto program = parse(R"(
    program p {
      communicator x : real period 10 init 0.0 lrc 0.5;
      communicator y : real period 10 init 0.0 lrc 0.5;
      communicator z : real period 10 init 0.0 lrc 0.5;
      module m1 {
        task t1 input (x[0]) output (y[1]);
        mode a period 10 { invoke t1; }
        mode b period 10 { }
        start a;
      }
      module m2 {
        task t2 input (x[0]) output (z[1]);
        mode c period 10 { invoke t2; }
        mode d period 10 { }
        mode e period 10 { }
        start c;
      }
    }
  )");
  ASSERT_TRUE(program.ok());
  const auto selections = enumerate_mode_selections(*program);
  ASSERT_TRUE(selections.ok());
  EXPECT_EQ(selections->size(), 2u * 3u);
  // Every selection names both modules.
  for (const ModeSelection& selection : *selections) {
    EXPECT_EQ(selection.mode_by_module.size(), 2u);
    EXPECT_TRUE(selection.mode_by_module.count("m1"));
    EXPECT_TRUE(selection.mode_by_module.count("m2"));
  }
  // All selections compile (empty modes are fine: no tasks invoked).
  for (const ModeSelection& selection : *selections) {
    EXPECT_TRUE(compile(to_source(*program), {}, selection).ok());
  }
}

TEST(ModeEnumeration, RespectsLimit) {
  const auto program = parse(R"(
    program p {
      communicator x : real period 10 init 0.0 lrc 0.5;
      module m1 {
        mode a period 10 { } mode b period 10 { } mode c period 10 { }
        start a;
      }
    }
  )");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(enumerate_mode_selections(*program, 2).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(enumerate_mode_selections(*program, 3).ok());
}

}  // namespace
}  // namespace lrt::htl
