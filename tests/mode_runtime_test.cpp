// Tests for the mode-switching HTL runtime: switching on committed bool
// communicators, state persistence across switches, per-mode analysis, and
// reliability accounting under faults.
#include <gtest/gtest.h>

#include "htl/mode_runtime.h"
#include "sim/environment.h"

namespace lrt::htl {
namespace {

// A controller that runs `normal` until the level exceeds a threshold
// (detector task writes the bool `high`), then switches to `drain` mode
// until the level falls back. Sensor-driven, so the environment controls
// the mode trajectory.
constexpr std::string_view kSwitching = R"(
program switching {
  communicator level_raw : real period 10 init 0.0 lrc 0.5;
  communicator high : bool period 20 init false lrc 0.5;
  communicator cmd : real period 20 init 0.0 lrc 0.5;
  module m {
    task detect input (level_raw[0]) output (high[1]);
    mode normal period 20 { invoke detect; switch (high) to drain; }
    mode drain period 20 { invoke detect; }
    start normal;
  }
  module actuate {
    task fill input (level_raw[0]) output (cmd[1]);
    task empty input (level_raw[0]) output (cmd[1]);
    mode filling period 20 { invoke fill; switch (high) to emptying; }
    mode emptying period 20 { invoke empty; }
    start filling;
  }
  architecture {
    host h1 reliability 0.99;
    sensor s reliability 0.99;
    metrics default wcet 2 wctt 1;
  }
  mapping {
    map detect to h1;
    map fill to h1;
    map empty to h1;
    bind level_raw to s;
  }
}
)";

FunctionRegistry switching_functions() {
  FunctionRegistry registry;
  registry["detect"] = [](std::span<const spec::Value> in) {
    return std::vector<spec::Value>{
        spec::Value::boolean(in[0].as_real() > 0.5)};
  };
  registry["fill"] = [](std::span<const spec::Value>) {
    return std::vector<spec::Value>{spec::Value::real(1.0)};
  };
  registry["empty"] = [](std::span<const spec::Value>) {
    return std::vector<spec::Value>{spec::Value::real(-1.0)};
  };
  return registry;
}

/// Level ramps up for the first half of the run, then stays high.
class RampEnvironment final : public sim::Environment {
 public:
  explicit RampEnvironment(double slope) : slope_(slope) {}
  spec::Value read_sensor(std::string_view, spec::Time now) override {
    return spec::Value::real(slope_ * static_cast<double>(now));
  }
  void write_actuator(std::string_view, spec::Time,
                      const spec::Value& value) override {
    last_command_ = value;
  }
  spec::Value last_command_ = spec::Value::bottom();

 private:
  double slope_;
};

sim::SimulationOptions quiet_options(std::int64_t periods) {
  sim::SimulationOptions options;
  options.periods = periods;
  options.faults.inject_invocation_faults = false;
  options.faults.inject_sensor_faults = false;
  options.actuator_comms = {"cmd"};
  return options;
}

TEST(ModeRuntime, SwitchesWhenConditionBecomesTrue) {
  // Level crosses 0.5 at t = 500 (slope 0.001): the `actuate` module must
  // switch from filling to emptying around period 25 of 100.
  RampEnvironment env(0.001);
  const auto result = simulate_with_switching(
      kSwitching, switching_functions(), env, quiet_options(100));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->switches_taken, 0);
  // Both the filling and the emptying selections were occupied.
  std::int64_t filling = 0;
  std::int64_t emptying = 0;
  for (const auto& [key, count] : result->mode_occupancy) {
    if (key.find("actuate=filling") != std::string::npos) filling += count;
    if (key.find("actuate=emptying") != std::string::npos) emptying += count;
  }
  EXPECT_GT(filling, 10);
  EXPECT_GT(emptying, 50);
  EXPECT_EQ(filling + emptying, 100);
  // After the switch the actuator sees `empty`'s command.
  EXPECT_EQ(env.last_command_, spec::Value::real(-1.0));
}

TEST(ModeRuntime, StaysInStartModeWhenConditionNeverFires) {
  RampEnvironment env(0.0);  // level stays at 0: `high` never true
  const auto result = simulate_with_switching(
      kSwitching, switching_functions(), env, quiet_options(50));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->switches_taken, 0);
  ASSERT_EQ(result->mode_occupancy.size(), 1u);
  EXPECT_NE(result->mode_occupancy.begin()->first.find("actuate=filling"),
            std::string::npos);
  EXPECT_EQ(env.last_command_, spec::Value::real(1.0));
}

TEST(ModeRuntime, CommunicatorStatePersistsAcrossSwitch) {
  // `high` is written by detect in both modes; after the switch, cmd keeps
  // updating every period — no value is lost at the boundary.
  RampEnvironment env(0.001);
  sim::SimulationOptions options = quiet_options(100);
  options.record_values_for = {"cmd"};
  const auto result = simulate_with_switching(
      kSwitching, switching_functions(), env, options);
  ASSERT_TRUE(result.ok());
  const auto& trace = result->simulation.value_traces.at("cmd");
  ASSERT_EQ(trace.size(), 100u);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_FALSE(trace[i].is_bottom()) << "sample " << i;
  }
}

TEST(ModeRuntime, FaultInjectionDegradesPerAnalysis) {
  // With faults on, cmd's update rate matches lambda = hrel^2 * srel
  // (detect's chain feeds the switch only; fill/empty read the sensor
  // directly: lambda_cmd = hrel * srel = 0.9801).
  RampEnvironment env(0.0);
  sim::SimulationOptions options = quiet_options(100'000);
  options.faults.inject_invocation_faults = true;
  options.faults.inject_sensor_faults = true;
  options.faults.seed = 47;
  const auto result = simulate_with_switching(
      kSwitching, switching_functions(), env, options);
  ASSERT_TRUE(result.ok());
  const auto* cmd = result->simulation.find("cmd");
  ASSERT_NE(cmd, nullptr);
  EXPECT_NEAR(cmd->update_rate(), 0.99 * 0.99, 0.005);
}

TEST(ModeRuntime, AnalyzeAllSelectionsCoversTheProduct) {
  const auto verdicts = analyze_all_selections(kSwitching);
  ASSERT_TRUE(verdicts.ok()) << verdicts.status();
  EXPECT_EQ(verdicts->size(), 2u * 2u);  // m: 2 modes, actuate: 2 modes
  for (const auto& [key, valid] : *verdicts) {
    EXPECT_TRUE(valid) << key;
  }
}

TEST(ModeRuntime, RejectsBadInput) {
  RampEnvironment env(0.0);
  sim::SimulationOptions options = quiet_options(0);
  EXPECT_FALSE(simulate_with_switching(kSwitching, switching_functions(),
                                       env, options)
                   .ok());
  sim::SimulationOptions timed = quiet_options(10);
  timed.model_execution_time = true;
  EXPECT_FALSE(simulate_with_switching(kSwitching, switching_functions(),
                                       env, timed)
                   .ok());
  // A program without a mapping cannot be executed.
  EXPECT_EQ(simulate_with_switching(R"(
    program p {
      communicator x : real period 10 init 0.0 lrc 0.5;
      communicator y : real period 10 init 0.0 lrc 0.5;
      module m {
        task t input (x[0]) output (y[1]);
        mode a period 10 { invoke t; } start a;
      }
    }
  )", {}, env, quiet_options(10))
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace lrt::htl
