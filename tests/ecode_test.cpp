// Unit tests for src/ecode: code generation shape, disassembly, and — the
// key property — agreement between the E-machine executing generated code
// and the direct runtime interpretation of the specification.
#include <gtest/gtest.h>

#include <algorithm>

#include "ecode/emachine.h"
#include "ecode/program.h"
#include "plant/three_tank_system.h"
#include "reliability/analysis.h"
#include "tests/test_util.h"

namespace lrt::ecode {
namespace {

using test::comm;
using test::task;

int count_op(const EcodeProgram& program, Opcode op) {
  return static_cast<int>(
      std::count_if(program.code.begin(), program.code.end(),
                    [op](const Instruction& inst) { return inst.op == op; }));
}

TEST(Codegen, SingleTaskProgramShape) {
  auto system = test::single_host_system(test::chain_spec_config(1));
  const auto program = generate_ecode(*system.impl, 0);
  ASSERT_TRUE(program.ok()) << program.status();
  // Period 10, comms c0 (sensor) and c1 (written at instance 1).
  EXPECT_EQ(program->period, 10);
  EXPECT_EQ(count_op(*program, Opcode::kCallSensor), 1);   // c0 @ 0
  EXPECT_EQ(count_op(*program, Opcode::kCallVote), 1);     // c1 @ 0 (10%10)
  EXPECT_EQ(count_op(*program, Opcode::kCallLatch), 1);    // t input
  EXPECT_EQ(count_op(*program, Opcode::kRelease), 1);
  EXPECT_EQ(count_op(*program, Opcode::kCallActuate), 1);  // c1 on io host
  // Every block ends with future + halt.
  EXPECT_EQ(count_op(*program, Opcode::kFuture),
            static_cast<int>(program->blocks.size()));
  EXPECT_EQ(count_op(*program, Opcode::kHalt),
            static_cast<int>(program->blocks.size()));
}

TEST(Codegen, NonIoHostOmitsActuation) {
  test::System system;
  system.spec = std::make_unique<spec::Specification>(
      test::build_spec(test::chain_spec_config(1)));
  arch::ArchitectureConfig arch_config;
  arch_config.hosts = {{"h1", 0.9}, {"h2", 0.9}};
  arch_config.sensors = {{"s", 0.9}};
  system.arch = std::make_unique<arch::Architecture>(
      std::move(arch::Architecture::Build(std::move(arch_config))).value());
  impl::ImplementationConfig impl_config;
  impl_config.task_mappings = {{"task1", {"h1"}}};
  impl_config.sensor_bindings = {{"c0", "s"}};
  system.impl = std::make_unique<impl::Implementation>(
      std::move(impl::Implementation::Build(*system.spec, *system.arch,
                                            std::move(impl_config)))
          .value());

  const auto io = generate_ecode(*system.impl, 0);
  const auto other = generate_ecode(*system.impl, 1);
  ASSERT_TRUE(io.ok());
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(count_op(*io, Opcode::kCallActuate), 1);
  EXPECT_EQ(count_op(*other, Opcode::kCallActuate), 0);
  // Host 2 does not run the task, so no release/latch...
  EXPECT_EQ(count_op(*other, Opcode::kRelease), 0);
  EXPECT_EQ(count_op(*other, Opcode::kCallLatch), 0);
  // ... but it still votes (communicators are replicated everywhere).
  EXPECT_EQ(count_op(*other, Opcode::kCallVote), 1);
}

TEST(Codegen, RejectsBadArguments) {
  auto system = test::single_host_system(test::chain_spec_config(1));
  EXPECT_EQ(generate_ecode(*system.impl, 99).status().code(),
            StatusCode::kOutOfRange);
  CodegenOptions options;
  options.actuator_comms = {"ghost"};
  EXPECT_EQ(generate_ecode(*system.impl, 0, options).status().code(),
            StatusCode::kNotFound);
}

TEST(Codegen, DisassemblyIsReadable) {
  auto system = test::single_host_system(test::chain_spec_config(1));
  const auto program = generate_ecode(*system.impl, 0);
  ASSERT_TRUE(program.ok());
  const std::string listing = program->disassemble(*system.spec);
  EXPECT_NE(listing.find("call sensor(c0)"), std::string::npos);
  EXPECT_NE(listing.find("release(task1)"), std::string::npos);
  EXPECT_NE(listing.find("future"), std::string::npos);
  EXPECT_NE(listing.find("@0:"), std::string::npos);
}

TEST(Codegen, ThreeTankBlocksCoverAllInstants) {
  auto system = plant::make_three_tank_system({});
  ASSERT_TRUE(system.ok());
  const auto program = generate_ecode(*system->implementation, 2);
  ASSERT_TRUE(program.ok());
  // Blocks exist exactly at h3's active instants: 0 (sensor updates, r1/r2
  // votes, read releases), 100 (l1/l2 votes, latches), 300 (u1/u2 votes).
  // Idle instants 200 and 400 get no reaction block.
  std::vector<spec::Time> times;
  for (const auto& [time, address] : program->blocks) {
    (void)address;
    times.push_back(time);
  }
  EXPECT_EQ(times, (std::vector<spec::Time>{0, 100, 300}));
}

// --- E-machine vs. direct runtime ---

TEST(EMachine, MatchesRuntimeValueTracesWithoutFaults) {
  // Deterministic (fault-free) execution of the 3TS closed loop: the
  // E-machine executing generated code must produce exactly the value
  // trace of the direct interpreter.
  auto system = plant::make_three_tank_system({});
  ASSERT_TRUE(system.ok());

  sim::SimulationOptions options;
  options.periods = 200;
  options.actuator_comms = {"u1", "u2"};
  options.record_values_for = {"l1", "u1", "r1"};
  options.faults.inject_invocation_faults = false;
  options.faults.inject_sensor_faults = false;

  plant::ThreeTankEnvironment env_direct({}, 0.4, 0.3);
  const auto direct = sim::simulate(*system->implementation, env_direct,
                                    options);
  ASSERT_TRUE(direct.ok());

  plant::ThreeTankEnvironment env_machine({}, 0.4, 0.3);
  const auto machine = run_emachine(*system->implementation, env_machine,
                                    options);
  ASSERT_TRUE(machine.ok()) << machine.status();

  for (const std::string name : {"l1", "u1", "r1"}) {
    const auto& a = direct->value_traces.at(name);
    const auto& b = machine->value_traces.at(name);
    ASSERT_EQ(a.size(), b.size()) << name;
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], b[i]) << name << " diverges at sample " << i;
    }
  }
  EXPECT_EQ(machine->vote_divergences, 0);
}

TEST(EMachine, EmpiricalRatesMatchAnalysisUnderFaults) {
  auto system = plant::make_three_tank_system({});
  ASSERT_TRUE(system.ok());
  const auto srgs = reliability::compute_srgs(*system->implementation);
  ASSERT_TRUE(srgs.ok());

  sim::SimulationOptions options;
  options.periods = 100'000;
  options.actuator_comms = {"u1", "u2"};
  options.faults.seed = 77;
  sim::NullEnvironment env;
  const auto result = run_emachine(*system->implementation, env, options);
  ASSERT_TRUE(result.ok()) << result.status();

  for (const std::string name : {"l1", "u1", "l2", "u2"}) {
    const auto comm_id = *system->specification->find_communicator(name);
    const double analytic = (*srgs)[static_cast<std::size_t>(comm_id)];
    EXPECT_NEAR(result->find(name)->limit_average, analytic, 0.005) << name;
  }
  EXPECT_EQ(result->vote_divergences, 0);
}

TEST(EMachine, ReplicationSurvivesHostKill) {
  // Scenario 1 (t1, t2 on {h1, h2}); kill h1 mid-run: u1/u2 keep updating.
  plant::ThreeTankScenario scenario;
  scenario.variant = plant::ThreeTankVariant::kReplicatedTasks;
  auto system = plant::make_three_tank_system(scenario);
  ASSERT_TRUE(system.ok());

  sim::SimulationOptions options;
  options.periods = 1000;
  options.actuator_comms = {"u1", "u2"};
  options.faults.inject_invocation_faults = false;
  options.faults.inject_sensor_faults = false;
  options.faults.host_events = {{500 * 500, 0, false}};  // kill h1 halfway

  sim::NullEnvironment env;
  const auto result = run_emachine(*system->implementation, env, options);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->find("u1")->update_rate(), 1.0);
  EXPECT_DOUBLE_EQ(result->find("u2")->update_rate(), 1.0);
  EXPECT_EQ(result->vote_divergences, 0);
}

TEST(EMachine, RejectsBadOptions) {
  auto system = test::single_host_system(test::chain_spec_config(1));
  sim::NullEnvironment env;
  sim::SimulationOptions options;
  options.periods = 0;
  EXPECT_FALSE(run_emachine(*system.impl, env, options).ok());
}

}  // namespace
}  // namespace lrt::ecode
