// E5 (paper Section 4, "Implementation in HTL"): the fault-tolerance
// experiment. The paper runs the 3TS controller distributed over redundant
// hosts, unplugs one of the two hosts from the network, and verifies "no
// change in the control performance of the system".
//
// Here the physical rig is the simulated plant, "unplugging" is a scripted
// permanent host-kill event, and control performance is the RMS tracking
// error of the two regulated levels, measured after a warmup and across a
// disturbance. Expectation (shape, as in the paper): with replication the
// error is identical with and without the kill; without replication the
// kill visibly degrades tank-1 control.
//
// A Monte Carlo section cross-checks the redundancy claim statistically:
// across parallel fault-injected trials, the replicated mapping's
// empirical u1 reliability dominates the baseline's and both match their
// analytic SRGs.
//
// Benchmarks: closed-loop simulation throughput (direct runtime vs
// E-machine executing generated code).
#include "bench/bench_util.h"
#include "ecode/emachine.h"
#include "plant/three_tank_system.h"
#include "sim/monte_carlo.h"
#include "sim/runtime.h"
#include "support/rng.h"

namespace {

using namespace lrt;

plant::ControlMetrics closed_loop(const impl::Implementation& impl,
                                  bool unplug) {
  plant::ThreeTankEnvironment env({}, 0.40, 0.30, 1e-3,
                                  /*warmup_seconds=*/300.0);
  env.add_perturbation_event(700.0, 1, 1.0);  // disturbance after the kill
  sim::SimulationOptions options;
  options.periods = 2400;  // 1200 s of plant time
  options.actuator_comms = {"u1", "u2"};
  options.faults.inject_invocation_faults = false;
  options.faults.inject_sensor_faults = false;
  if (unplug) options.faults.host_events = {{600'000, 0, false}};
  const auto result = sim::simulate(impl, env, options);
  if (!result.ok()) return {};
  return env.metrics();
}

void print_table() {
  bench::header("E5 / Section 4", "3TS fault tolerance: unplugging a host");

  plant::ThreeTankScenario replicated;
  replicated.variant = plant::ThreeTankVariant::kReplicatedTasks;
  auto repl = plant::make_three_tank_system(replicated);
  auto base = plant::make_three_tank_system({});

  const auto r_nom = closed_loop(*repl->implementation, false);
  const auto r_kill = closed_loop(*repl->implementation, true);
  const auto b_nom = closed_loop(*base->implementation, false);
  const auto b_kill = closed_loop(*base->implementation, true);

  std::printf("%-34s %-16s %-16s\n", "configuration", "RMS err tank1 [m]",
              "RMS err tank2 [m]");
  std::printf("%-34s %-16.5f %-16.5f\n", "replicated, nominal",
              r_nom.rms_error1, r_nom.rms_error2);
  std::printf("%-34s %-16.5f %-16.5f\n", "replicated, h1 unplugged @600s",
              r_kill.rms_error1, r_kill.rms_error2);
  std::printf("%-34s %-16.5f %-16.5f\n", "baseline, nominal",
              b_nom.rms_error1, b_nom.rms_error2);
  std::printf("%-34s %-16.5f %-16.5f\n", "baseline, h1 unplugged @600s",
              b_kill.rms_error1, b_kill.rms_error2);
  std::printf("\npaper: 'unplugging one of the two hosts ... has indeed no "
              "effect on the control performance'\n");
  std::printf("measured: replicated delta = %.6f m (expected ~0); "
              "baseline delta = %.6f m (controller lost)\n",
              r_kill.rms_error1 - r_nom.rms_error1,
              b_kill.rms_error1 - b_nom.rms_error1);

  // Statistical cross-check via the Monte Carlo engine: with stochastic
  // invocation faults on, the replicated mapping's empirical u1
  // reliability must dominate the baseline's, and both must match their
  // analytic SRGs (0.970299 vs 0.98000199).
  std::printf("\nmonte carlo (96 trials x 500 periods, all cores):\n");
  std::printf("%-14s %-14s %-26s %-12s %-10s\n", "mapping", "empirical u1",
              "99% ci", "analytic", "verdict");
  for (const bool redundant : {false, true}) {
    plant::ThreeTankScenario scenario;
    if (redundant) {
      scenario.variant = plant::ThreeTankVariant::kReplicatedTasks;
    }
    auto system = plant::make_three_tank_system(scenario);
    sim::MonteCarloOptions options;
    options.trials = 96;
    options.simulation.periods = 500;
    options.simulation.actuator_comms = {"u1", "u2"};
    options.seed = kDefaultRngSeed;
    sim::MonteCarloRunner runner(options);
    const auto report = runner.run(*system->implementation);
    const sim::CommAggregate* comm = report->find("u1");
    std::printf("%-14s %-14.6f [%.6f, %.6f]      %-12.6f %-10s\n",
                redundant ? "replicated" : "baseline", comm->empirical,
                comm->interval.low, comm->interval.high, comm->analytic_srg,
                report->analysis_sound && report->implementation_reliable
                    ? "OK"
                    : "FLAGGED");
  }
}

void BM_ClosedLoopRuntime(benchmark::State& state) {
  auto system = plant::make_three_tank_system({});
  for (auto _ : state) {
    plant::ThreeTankEnvironment env({}, 0.40, 0.30);
    sim::SimulationOptions options;
    options.periods = state.range(0);
    options.actuator_comms = {"u1", "u2"};
    auto result = sim::simulate(*system->implementation, env, options);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ClosedLoopRuntime)->Arg(100)->Arg(1000);

void BM_ClosedLoopEMachine(benchmark::State& state) {
  auto system = plant::make_three_tank_system({});
  for (auto _ : state) {
    plant::ThreeTankEnvironment env({}, 0.40, 0.30);
    sim::SimulationOptions options;
    options.periods = state.range(0);
    options.actuator_comms = {"u1", "u2"};
    auto result = ecode::run_emachine(*system->implementation, env, options);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ClosedLoopEMachine)->Arg(100)->Arg(1000);

}  // namespace

LRT_BENCH_MAIN(print_table)
