// Ablation: incremental analysis via refinement. The paper argues the
// joint schedulability/reliability analysis can be reduced "significantly"
// by progressing through refinement steps, because refinement constraints
// are local. This bench quantifies the claim: full joint re-analysis vs
// a refinement check, across system sizes.
#include <memory>

#include "bench/bench_util.h"
#include "refine/refinement.h"
#include "reliability/analysis.h"
#include "sched/schedulability.h"

namespace {

using namespace lrt;

struct Sys {
  std::unique_ptr<spec::Specification> spec;
  std::unique_ptr<arch::Architecture> arch;
  std::unique_ptr<impl::Implementation> impl;
};

/// n independent sensor->task->output triples; `concrete` shrinks WCET and
/// LRC (a legal refinement of the abstract variant).
Sys wide_system(int n, bool concrete) {
  Sys sys;
  spec::SpecificationConfig config;
  config.name = concrete ? "concrete" : "abstract";
  impl::ImplementationConfig impl_config;
  arch::ArchitectureConfig arch_config;
  arch_config.hosts = {{"h1", 0.999}, {"h2", 0.999}};
  arch_config.default_wcet = concrete ? 2 : 4;
  arch_config.default_wctt = 1;
  const std::int64_t period = 16 * n;
  for (int i = 0; i < n; ++i) {
    const std::string suffix = std::to_string(i);
    config.communicators.push_back({"in" + suffix, spec::ValueType::kReal,
                                    spec::Value::real(0.0), period, 0.5});
    config.communicators.push_back({"out" + suffix, spec::ValueType::kReal,
                                    spec::Value::real(0.0), period / 2,
                                    concrete ? 0.9 : 0.95});
    spec::SpecificationConfig::TaskConfig task;
    task.name = "task" + suffix;
    task.inputs = {{"in" + suffix, 0}};
    task.outputs = {{"out" + suffix, 1}};
    config.tasks.push_back(std::move(task));
    impl_config.task_mappings.push_back(
        {"task" + suffix, {i % 2 == 0 ? "h1" : "h2"}});
    arch_config.sensors.push_back({"sens" + suffix, 0.999});
    impl_config.sensor_bindings.push_back({"in" + suffix, "sens" + suffix});
  }
  sys.spec = std::make_unique<spec::Specification>(
      std::move(spec::Specification::Build(std::move(config))).value());
  sys.arch = std::make_unique<arch::Architecture>(
      std::move(arch::Architecture::Build(std::move(arch_config))).value());
  sys.impl = std::make_unique<impl::Implementation>(
      std::move(impl::Implementation::Build(*sys.spec, *sys.arch,
                                            std::move(impl_config)))
          .value());
  return sys;
}

refine::RefinementMap identity_kappa(int n) {
  refine::RefinementMap kappa;
  for (int i = 0; i < n; ++i) {
    kappa.task_map.emplace_back("task" + std::to_string(i),
                                "task" + std::to_string(i));
  }
  return kappa;
}

void print_table() {
  bench::header("Ablation", "incremental (refinement) vs full re-analysis");
  std::printf("benchmarks below compare, for n tasks:\n"
              "  BM_FullJointAnalysis  — reliability + schedulability from "
              "scratch\n"
              "  BM_RefinementCheck    — the local constraint check that "
              "replaces it after a refinement step\n");
  // Sanity: the concrete system refines the abstract one.
  const Sys abstract_sys = wide_system(32, false);
  const Sys concrete_sys = wide_system(32, true);
  const auto check = refine::check_refinement(
      *concrete_sys.impl, *abstract_sys.impl, identity_kappa(32));
  std::printf("\nsanity (n=32): refinement %s\n",
              check->refines ? "holds" : check->summary().c_str());
}

void BM_FullJointAnalysis(benchmark::State& state) {
  const Sys sys = wide_system(static_cast<int>(state.range(0)), true);
  for (auto _ : state) {
    auto rel = reliability::analyze(*sys.impl);
    auto sched = sched::analyze_schedulability(*sys.impl);
    benchmark::DoNotOptimize(rel);
    benchmark::DoNotOptimize(sched);
  }
}
BENCHMARK(BM_FullJointAnalysis)->Arg(8)->Arg(64)->Arg(256);

void BM_RefinementCheck(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Sys abstract_sys = wide_system(n, false);
  const Sys concrete_sys = wide_system(n, true);
  const refine::RefinementMap kappa = identity_kappa(n);
  for (auto _ : state) {
    auto report =
        refine::check_refinement(*concrete_sys.impl, *abstract_sys.impl,
                                 kappa);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_RefinementCheck)->Arg(8)->Arg(64)->Arg(256);

}  // namespace

LRT_BENCH_MAIN(print_table)
