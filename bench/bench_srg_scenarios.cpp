// E2-E4 (paper Section 4): the 3TS SRG computations.
//   E2 baseline:   lambda_l = 0.9801, lambda_u = 0.970299 (paper, exact)
//   E3 scenario 1: t1, t2 replicated on {h1, h2}; lambda_t = 0.9999,
//                  lambda_u = 0.98000199
//   E4 scenario 2: sensors replicated (model-2 read tasks);
//                  lambda_l = 0.989901, lambda_u = 0.98000199
// The published scan of the paper drops several digits; EXPERIMENTS.md
// documents the reconstruction (LRC 0.97 holds for the baseline, 0.98
// requires a repair scenario; both repairs land on the same lambda_u).
//
// An "empirical" column validates every communicator SRG against the
// parallel Monte Carlo engine (pooled update reliability across
// independent fault-injected trials).
//
// Benchmarks: SRG induction and full reliability analysis on the 3TS model.
#include "bench/bench_util.h"
#include "plant/three_tank_system.h"
#include "reliability/analysis.h"
#include "sim/monte_carlo.h"
#include "support/rng.h"

namespace {

using namespace lrt;

double srg_of(const impl::Implementation& impl, const char* name) {
  const auto srgs = reliability::compute_srgs(impl);
  const auto comm = impl.specification().find_communicator(name);
  return (*srgs)[static_cast<std::size_t>(*comm)];
}

/// Pooled empirical update reliability of `name` over a parallel
/// Monte Carlo campaign.
double empirical_of(const impl::Implementation& impl, const char* name) {
  sim::MonteCarloOptions options;
  options.trials = 32;
  options.simulation.periods = 500;
  options.simulation.actuator_comms = {"u1", "u2"};
  options.seed = kDefaultRngSeed;
  sim::MonteCarloRunner runner(options);
  return runner.run(impl)->find(name)->empirical;
}

void print_table() {
  bench::header("E2-E4 / Section 4", "3TS SRGs: baseline and repair scenarios");

  plant::ThreeTankScenario base_scenario;
  auto base = plant::make_three_tank_system(base_scenario);

  plant::ThreeTankScenario s1;
  s1.variant = plant::ThreeTankVariant::kReplicatedTasks;
  auto sys1 = plant::make_three_tank_system(s1);

  plant::ThreeTankScenario s2;
  s2.variant = plant::ThreeTankVariant::kReplicatedSensors;
  auto sys2 = plant::make_three_tank_system(s2);

  std::printf("%-34s %-14s %-14s %-14s\n", "quantity", "paper", "measured",
              "empirical (MC)");
  std::printf("%-34s %-14s %-14.8f %.8f\n", "E2 lambda_s1 (sensor)", "0.99",
              srg_of(*base->implementation, "s1"),
              empirical_of(*base->implementation, "s1"));
  std::printf("%-34s %-14s %-14.8f %.8f\n", "E2 lambda_l1 (baseline)",
              "0.9801", srg_of(*base->implementation, "l1"),
              empirical_of(*base->implementation, "l1"));
  std::printf("%-34s %-14s %-14.8f %.8f\n", "E2 lambda_u1 (baseline)",
              "0.970299", srg_of(*base->implementation, "u1"),
              empirical_of(*base->implementation, "u1"));
  std::printf("%-34s %-14s %-14.8f %s\n", "E3 lambda_t1 (replicated)",
              "0.9999",
              reliability::task_reliability(
                  *sys1->implementation,
                  *sys1->specification->find_task("t1")),
              "-");
  std::printf("%-34s %-14s %-14.8f %.8f\n", "E3 lambda_u1 (scenario 1)",
              "0.98000199", srg_of(*sys1->implementation, "u1"),
              empirical_of(*sys1->implementation, "u1"));
  std::printf("%-34s %-14s %-14.8f %.8f\n", "E4 lambda_l1 (scenario 2)",
              "0.989901", srg_of(*sys2->implementation, "l1"),
              empirical_of(*sys2->implementation, "l1"));
  std::printf("%-34s %-14s %-14.8f %.8f\n", "E4 lambda_u1 (scenario 2)",
              "0.98000199", srg_of(*sys2->implementation, "u1"),
              empirical_of(*sys2->implementation, "u1"));

  std::printf("\nLRC verdicts (paper: baseline fails the raised "
              "requirement; both scenarios meet it):\n");
  for (const double lrc : {0.97, 0.98}) {
    plant::ThreeTankScenario sb;
    sb.lrc_controls = lrc;
    auto b = plant::make_three_tank_system(sb);
    plant::ThreeTankScenario sr1 = sb;
    sr1.variant = plant::ThreeTankVariant::kReplicatedTasks;
    auto r1 = plant::make_three_tank_system(sr1);
    plant::ThreeTankScenario sr2 = sb;
    sr2.variant = plant::ThreeTankVariant::kReplicatedSensors;
    auto r2 = plant::make_three_tank_system(sr2);
    std::printf("  LRC(u) = %.2f: baseline %-12s scenario1 %-12s "
                "scenario2 %s\n",
                lrc,
                reliability::analyze(*b->implementation)->reliable
                    ? "RELIABLE"
                    : "VIOLATED",
                reliability::analyze(*r1->implementation)->reliable
                    ? "RELIABLE"
                    : "VIOLATED",
                reliability::analyze(*r2->implementation)->reliable
                    ? "RELIABLE"
                    : "VIOLATED");
  }
}

void BM_ComputeSrgs3TS(benchmark::State& state) {
  auto system = plant::make_three_tank_system({});
  for (auto _ : state) {
    auto srgs = reliability::compute_srgs(*system->implementation);
    benchmark::DoNotOptimize(srgs);
  }
}
BENCHMARK(BM_ComputeSrgs3TS);

void BM_FullReliabilityAnalysis3TS(benchmark::State& state) {
  auto system = plant::make_three_tank_system({});
  for (auto _ : state) {
    auto report = reliability::analyze(*system->implementation);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_FullReliabilityAnalysis3TS);

void BM_SrgFixpoint3TS(benchmark::State& state) {
  auto system = plant::make_three_tank_system({});
  for (auto _ : state) {
    auto srgs = reliability::compute_srgs_fixpoint(*system->implementation);
    benchmark::DoNotOptimize(srgs);
  }
}
BENCHMARK(BM_SrgFixpoint3TS);

}  // namespace

LRT_BENCH_MAIN(print_table)
