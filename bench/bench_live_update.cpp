// Live-update transaction cost: how much does it cost to verify and
// hot-swap a running workload, and how much does the refinement fast
// path save over pinned re-synthesis?
//
// The workload is the 3TS case study; the update splices a `filter1`
// task into the tank-1 control path (new communicator f1, t1 retimed).
// Three questions, all deterministic:
//   * verify latency: wall time of UpdateEngine::propose on the
//     refinement fast path (same task set, LRCs lowered — zero search)
//     vs the re-synthesis slow path (task set changed, clean region
//     pinned), plus the search effort counter of the latter;
//   * install latency in INSTANTS: the lag from propose to the swap
//     actually landing at an eligible hyper-period boundary;
//   * engine identity: the whole transaction replayed on the tick and
//     event engines must stay bit-identical (spec_swaps included).
//
// `--json <path>` writes the machine-readable summary gated in CI
// against baselines/BENCH_update.json.
//
// Benchmarks: propose() on both verify paths, the full updated run.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "adapt/live_update.h"
#include "bench/bench_util.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "sim/runtime.h"

namespace {

using namespace lrt;

constexpr spec::Time kHyper = 500;
constexpr std::int64_t kPeriods = 20;
constexpr spec::Time kEarliestInstall = 2 * kHyper;

/// The 3TS timing skeleton (paper Fig. 2), optionally with the spliced
/// tank-1 filter. Functionless tasks: this bench times the transaction
/// machinery, not the control law.
spec::SpecificationConfig make_spec(bool with_filter,
                                    double lrc_controls = 0.97) {
  spec::SpecificationConfig config;
  config.name = with_filter ? "three_tank_filtered" : "three_tank";
  const auto comm = [&config](const std::string& name, spec::Time period,
                              double lrc) {
    config.communicators.push_back(
        {name, spec::ValueType::kReal, spec::Value::real(0.0), period, lrc});
  };
  comm("s1", 500, 0.99);
  comm("s2", 500, 0.99);
  comm("l1", 100, 0.97);
  comm("l2", 100, 0.97);
  comm("u1", 100, lrc_controls);
  comm("u2", 100, lrc_controls);
  comm("r1", 500, 0.9);
  comm("r2", 500, 0.9);
  if (with_filter) comm("f1", 100, 0.97);

  const auto task =
      [&config](const std::string& name,
                std::vector<std::pair<std::string, std::int64_t>> inputs,
                std::vector<std::pair<std::string, std::int64_t>> outputs,
                spec::FailureModel model) {
        spec::SpecificationConfig::TaskConfig task_config;
        task_config.name = name;
        task_config.inputs = std::move(inputs);
        task_config.outputs = std::move(outputs);
        task_config.model = model;
        config.tasks.push_back(std::move(task_config));
      };
  task("read1", {{"s1", 0}}, {{"l1", 1}}, spec::FailureModel::kParallel);
  task("read2", {{"s2", 0}}, {{"l2", 1}}, spec::FailureModel::kParallel);
  if (with_filter) {
    task("filter1", {{"l1", 1}}, {{"f1", 2}}, spec::FailureModel::kSeries);
  }
  task("t1", {with_filter ? std::pair<std::string, std::int64_t>{"f1", 2}
                          : std::pair<std::string, std::int64_t>{"l1", 1}},
       {{"u1", 3}}, spec::FailureModel::kSeries);
  task("t2", {{"l2", 1}}, {{"u2", 3}}, spec::FailureModel::kSeries);
  task("estimate1", {{"l1", 1}, {"u1", 0}}, {{"r1", 1}},
       spec::FailureModel::kSeries);
  task("estimate2", {{"l2", 1}, {"u2", 0}}, {{"r2", 1}},
       spec::FailureModel::kSeries);
  return config;
}

struct System {
  std::unique_ptr<spec::Specification> spec;
  std::unique_ptr<arch::Architecture> arch;
  std::unique_ptr<impl::Implementation> impl;
};

System running_system() {
  arch::ArchitectureConfig arch_config;
  arch_config.name = "three_tank_arch";
  for (const std::string name : {"h1", "h2", "h3"}) {
    arch_config.hosts.push_back({name, 0.99});
  }
  for (const std::string name : {"sensor1", "sensor2"}) {
    arch_config.sensors.push_back({name, 0.99});
  }
  arch_config.default_wcet = 10;
  arch_config.default_wctt = 5;

  impl::ImplementationConfig impl_config;
  impl_config.name = "three_tank_impl";
  impl_config.task_mappings.push_back({"t1", {"h1"}});
  impl_config.task_mappings.push_back({"t2", {"h2"}});
  for (const std::string task :
       {"read1", "read2", "estimate1", "estimate2"}) {
    impl_config.task_mappings.push_back({task, {"h3"}});
  }
  impl_config.sensor_bindings = {{"s1", "sensor1"}, {"s2", "sensor2"}};

  System system;
  system.spec = std::make_unique<spec::Specification>(
      std::move(spec::Specification::Build(make_spec(false))).value());
  system.arch = std::make_unique<arch::Architecture>(
      std::move(arch::Architecture::Build(std::move(arch_config))).value());
  system.impl = std::make_unique<impl::Implementation>(
      std::move(impl::Implementation::Build(*system.spec, *system.arch,
                                            std::move(impl_config)))
          .value());
  return system;
}

adapt::LiveUpdateOptions policy(obs::Sink* sink) {
  adapt::LiveUpdateOptions options;
  options.probation_periods = 3;
  options.earliest_install = kEarliestInstall;
  options.sink = sink;
  return options;
}

struct ProposeCost {
  double wall_ms = 0.0;
  std::int64_t synth_candidates = 0;
  adapt::UpdatePath path = adapt::UpdatePath::kNone;
  bool staged = false;
};

/// Times one propose() in isolation: `with_filter` selects the slow
/// (re-synthesis) path, a lowered-LRC same-shape spec the fast one.
ProposeCost time_propose(const System& system, bool with_filter) {
  obs::MetricsRegistry metrics;
  obs::Sink sink(&metrics, nullptr);
  adapt::UpdateEngine engine(*system.impl, policy(&sink));
  const auto spec_config = with_filter
                               ? make_spec(true)
                               : make_spec(false, /*lrc_controls=*/0.9);
  const auto start = std::chrono::steady_clock::now();
  const Status status = engine.propose(0, spec_config);
  const auto stop = std::chrono::steady_clock::now();
  if (!status.ok()) {
    std::fprintf(stderr, "propose failed: %s\n",
                 status.to_string().c_str());
    std::abort();
  }
  ProposeCost cost;
  cost.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  cost.synth_candidates = metrics.snapshot().counter("synth.candidates");
  cost.path = engine.report().path;
  cost.staged = engine.state() == adapt::UpdateState::kStaged;
  return cost;
}

struct TransactionRun {
  sim::SimulationResult result;
  adapt::UpdateReport report;
  double wall_ms = 0.0;
};

TransactionRun run_transaction(const System& system,
                               sim::SimulationOptions::Engine engine) {
  adapt::UpdateEngine update_engine(*system.impl, policy(nullptr));
  if (const Status status = update_engine.propose(0, make_spec(true));
      !status.ok()) {
    std::fprintf(stderr, "propose failed: %s\n",
                 status.to_string().c_str());
    std::abort();
  }
  sim::SimulationOptions options;
  options.engine = engine;
  options.periods = kPeriods;
  options.faults.inject_invocation_faults = false;
  options.faults.inject_sensor_faults = false;
  options.actuator_comms = {"u1", "u2"};
  options.record_values_for = {"u1", "u2"};
  options.monitor = &update_engine;
  sim::NullEnvironment env;
  const auto start = std::chrono::steady_clock::now();
  auto result = sim::simulate(*system.impl, env, options);
  const auto stop = std::chrono::steady_clock::now();
  if (!result.ok()) {
    std::fprintf(stderr, "simulate failed: %s\n",
                 result.status().to_string().c_str());
    std::abort();
  }
  TransactionRun run;
  run.result = std::move(result).value();
  run.report = update_engine.report();
  run.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  return run;
}

struct Summary {
  ProposeCost refine;
  ProposeCost resynth;
  TransactionRun tick;
  TransactionRun event;
  bool identical = false;
  spec::Time install_latency = 0;
};

Summary measure() {
  const System system = running_system();
  Summary summary;
  summary.refine = time_propose(system, /*with_filter=*/false);
  summary.resynth = time_propose(system, /*with_filter=*/true);
  summary.tick =
      run_transaction(system, sim::SimulationOptions::Engine::kTick);
  summary.event =
      run_transaction(system, sim::SimulationOptions::Engine::kEvent);
  summary.identical = sim::to_json(summary.tick.result) ==
                          sim::to_json(summary.event.result) &&
                      summary.tick.report.installed_at ==
                          summary.event.report.installed_at;
  summary.install_latency =
      summary.tick.report.installed_at - summary.tick.report.proposed_at;
  return summary;
}

void print_table() {
  bench::header("live update",
                "transactional hot-swap: verify latency + install lag");
  const Summary s = measure();
  std::printf("%-22s %-10s %-12s %-18s\n", "verify path", "staged",
              "wall ms", "synth candidates");
  std::printf("%-22s %-10s %-12.3f %-18lld\n", "refined (fast)",
              s.refine.staged ? "yes" : "NO", s.refine.wall_ms,
              static_cast<long long>(s.refine.synth_candidates));
  std::printf("%-22s %-10s %-12.3f %-18lld\n", "resynthesized (slow)",
              s.resynth.staged ? "yes" : "NO", s.resynth.wall_ms,
              static_cast<long long>(s.resynth.synth_candidates));
  std::printf("\ninstall latency: %lld instants (proposed@%lld, "
              "installed@%lld, earliest %lld)\n",
              static_cast<long long>(s.install_latency),
              static_cast<long long>(s.tick.report.proposed_at),
              static_cast<long long>(s.tick.report.installed_at),
              static_cast<long long>(kEarliestInstall));
  std::printf("transaction: %s after %lld spec swap(s); tick %.2f ms, "
              "event %.2f ms, results %s\n",
              to_string(s.tick.report.state).data(),
              static_cast<long long>(s.tick.result.spec_swaps),
              s.tick.wall_ms, s.event.wall_ms,
              s.identical ? "identical" : "DIVERGED");
}

bool write_json(const std::string& path) {
  const Summary s = measure();
  bench::JsonWriter json;
  json.text("benchmark", "update_live_swap");
  json.integer("periods", kPeriods);
  json.integer("identical", s.identical ? 1 : 0);
  json.integer("committed",
               s.tick.report.state == adapt::UpdateState::kCommitted ? 1
                                                                     : 0);
  json.integer("spec_swaps", s.tick.result.spec_swaps);
  json.integer("install_latency_instants", s.install_latency);
  json.integer("resynth_candidates", s.resynth.synth_candidates);
  json.number("refine_wall_ms", s.refine.wall_ms);
  json.number("resynth_wall_ms", s.resynth.wall_ms);
  json.number("run_wall_ms", s.tick.wall_ms);
  return json.write(path);
}

void BM_ProposeRefine(benchmark::State& state) {
  const System system = running_system();
  for (auto _ : state) {
    adapt::UpdateEngine engine(*system.impl, policy(nullptr));
    auto status = engine.propose(0, make_spec(false, 0.9));
    benchmark::DoNotOptimize(status);
  }
}
BENCHMARK(BM_ProposeRefine)->Unit(benchmark::kMillisecond);

void BM_ProposeResynth(benchmark::State& state) {
  const System system = running_system();
  for (auto _ : state) {
    adapt::UpdateEngine engine(*system.impl, policy(nullptr));
    auto status = engine.propose(0, make_spec(true));
    benchmark::DoNotOptimize(status);
  }
}
BENCHMARK(BM_ProposeResynth)->Unit(benchmark::kMillisecond);

void BM_UpdatedRun(benchmark::State& state) {
  const System system = running_system();
  for (auto _ : state) {
    auto run = run_transaction(system,
                               sim::SimulationOptions::Engine::kEvent);
    benchmark::DoNotOptimize(run);
  }
}
BENCHMARK(BM_UpdatedRun)->Unit(benchmark::kMillisecond);

}  // namespace

LRT_BENCH_MAIN_JSON(print_table, write_json)
