// Shared helpers for the experiment/benchmark binaries. Each binary prints
// its paper-vs-measured reproduction table first (the content of
// EXPERIMENTS.md), then runs its google-benchmark kernels.
#ifndef LRT_BENCH_BENCH_UTIL_H_
#define LRT_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>

namespace lrt::bench {

inline void header(const char* experiment, const char* title) {
  constexpr const char* kRule =
      "================================================================";
  std::printf("\n%s\n", kRule);
  std::printf("%s — %s\n", experiment, title);
  std::printf("%s\n", kRule);
}

/// Standard main: print the table, then run benchmarks.
#define LRT_BENCH_MAIN(print_table_fn)                       \
  int main(int argc, char** argv) {                          \
    print_table_fn();                                        \
    ::benchmark::Initialize(&argc, argv);                    \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) \
      return 1;                                              \
    ::benchmark::RunSpecifiedBenchmarks();                   \
    ::benchmark::Shutdown();                                 \
    return 0;                                                \
  }

}  // namespace lrt::bench

#endif  // LRT_BENCH_BENCH_UTIL_H_
