// Shared helpers for the experiment/benchmark binaries. Each binary prints
// its paper-vs-measured reproduction table first (the content of
// EXPERIMENTS.md), then runs its google-benchmark kernels.
#ifndef LRT_BENCH_BENCH_UTIL_H_
#define LRT_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "obs/session.h"
#include "support/argparse.h"

namespace lrt::bench {

inline void header(const char* experiment, const char* title) {
  constexpr const char* kRule =
      "================================================================";
  std::printf("\n%s\n", kRule);
  std::printf("%s — %s\n", experiment, title);
  std::printf("%s\n", kRule);
}

/// Minimal flat JSON object writer for machine-readable bench summaries.
/// Keys are emitted in insertion order; values are numbers or strings.
class JsonWriter {
 public:
  void number(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", value);
    fields_.emplace_back(key, buf);
  }
  void integer(const std::string& key, long long value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  void text(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, "\"" + value + "\"");
  }

  /// Writes `{...}` to `path`; returns false (with a message on stderr)
  /// when the file cannot be opened.
  bool write(const std::string& path) const {
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(out, "{\n");
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      std::fprintf(out, "  \"%s\": %s%s\n", fields_[i].first.c_str(),
                   fields_[i].second.c_str(),
                   i + 1 < fields_.size() ? "," : "");
    }
    std::fprintf(out, "}\n");
    std::fclose(out);
    return true;
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Shared main body: permissively parse the uniform flags (plus an
/// optional `--json` sink for the JSON variant), install the scoped
/// observability session, print the table, write the JSON summary, then
/// hand the remaining argv to google-benchmark. Returns from main.
#define LRT_BENCH_MAIN_IMPL(print_table_fn, json_stmt)                     \
  int main(int argc, char** argv) {                                        \
    ::lrt::ArgParser lrt_bench_parser(                                     \
        argv[0], "experiment table + google-benchmark kernels; "           \
                 "unrecognized flags go to google-benchmark");             \
    ::lrt::obs::SessionOptions lrt_bench_obs;                              \
    ::lrt::obs::add_session_flags(lrt_bench_parser, &lrt_bench_obs);       \
    std::string lrt_bench_json_path;                                       \
    lrt_bench_parser.add_string("--json", &lrt_bench_json_path,            \
                                "write a machine-readable bench summary"); \
    if (const ::lrt::Status lrt_bench_status =                             \
            lrt_bench_parser.parse_known(argc, argv);                      \
        !lrt_bench_status.ok()) {                                          \
      std::fprintf(stderr, "%s\n%s",                                       \
                   lrt_bench_status.to_string().c_str(),                   \
                   lrt_bench_parser.usage().c_str());                      \
      return 2;                                                            \
    }                                                                      \
    if (lrt_bench_parser.help_requested()) {                               \
      std::printf("%s", lrt_bench_parser.usage().c_str());                 \
      return 0;                                                            \
    }                                                                      \
    const ::lrt::obs::ScopedSession lrt_bench_session(lrt_bench_obs);      \
    print_table_fn();                                                      \
    json_stmt;                                                             \
    ::benchmark::Initialize(&argc, argv);                                  \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;    \
    ::benchmark::RunSpecifiedBenchmarks();                                 \
    ::benchmark::Shutdown();                                               \
    return 0;                                                              \
  }

/// Standard main: print the table, then run benchmarks. Every bench
/// accepts the uniform --trace-out/--metrics-out observability flags.
#define LRT_BENCH_MAIN(print_table_fn) \
  LRT_BENCH_MAIN_IMPL(print_table_fn, (void)lrt_bench_json_path)

/// Like LRT_BENCH_MAIN but also accepts `--json <path>` and, when present,
/// calls `json_fn(path)` — which writes the machine-readable summary — in
/// addition to the human-readable table.
#define LRT_BENCH_MAIN_JSON(print_table_fn, json_fn)           \
  LRT_BENCH_MAIN_IMPL(                                         \
      print_table_fn,                                          \
      if (!lrt_bench_json_path.empty() &&                      \
          !json_fn(lrt_bench_json_path)) return 1)

}  // namespace lrt::bench

#endif  // LRT_BENCH_BENCH_UTIL_H_
