// Shared helpers for the experiment/benchmark binaries. Each binary prints
// its paper-vs-measured reproduction table first (the content of
// EXPERIMENTS.md), then runs its google-benchmark kernels.
#ifndef LRT_BENCH_BENCH_UTIL_H_
#define LRT_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace lrt::bench {

inline void header(const char* experiment, const char* title) {
  constexpr const char* kRule =
      "================================================================";
  std::printf("\n%s\n", kRule);
  std::printf("%s — %s\n", experiment, title);
  std::printf("%s\n", kRule);
}

/// Extracts `--flag <value>` or `--flag=<value>` from argv (removing it so
/// google-benchmark does not reject it) and returns the value, or "" when
/// the flag is absent.
inline std::string extract_flag(int& argc, char** argv, const char* flag) {
  const std::size_t flag_len = std::strlen(flag);
  for (int i = 1; i < argc; ++i) {
    std::string value;
    int consumed = 0;
    if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
      value = argv[i + 1];
      consumed = 2;
    } else if (std::strncmp(argv[i], flag, flag_len) == 0 &&
               argv[i][flag_len] == '=') {
      value = argv[i] + flag_len + 1;
      consumed = 1;
    } else {
      continue;
    }
    for (int j = i; j + consumed < argc; ++j) argv[j] = argv[j + consumed];
    argc -= consumed;
    return value;
  }
  return "";
}

/// Minimal flat JSON object writer for machine-readable bench summaries.
/// Keys are emitted in insertion order; values are numbers or strings.
class JsonWriter {
 public:
  void number(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", value);
    fields_.emplace_back(key, buf);
  }
  void integer(const std::string& key, long long value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  void text(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, "\"" + value + "\"");
  }

  /// Writes `{...}` to `path`; returns false (with a message on stderr)
  /// when the file cannot be opened.
  bool write(const std::string& path) const {
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(out, "{\n");
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      std::fprintf(out, "  \"%s\": %s%s\n", fields_[i].first.c_str(),
                   fields_[i].second.c_str(),
                   i + 1 < fields_.size() ? "," : "");
    }
    std::fprintf(out, "}\n");
    std::fclose(out);
    return true;
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Standard main: print the table, then run benchmarks.
#define LRT_BENCH_MAIN(print_table_fn)                       \
  int main(int argc, char** argv) {                          \
    print_table_fn();                                        \
    ::benchmark::Initialize(&argc, argv);                    \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) \
      return 1;                                              \
    ::benchmark::RunSpecifiedBenchmarks();                   \
    ::benchmark::Shutdown();                                 \
    return 0;                                                \
  }

/// Like LRT_BENCH_MAIN but first strips `--json <path>` and, when present,
/// calls `json_fn(path)` — which writes the machine-readable summary — in
/// addition to the human-readable table.
#define LRT_BENCH_MAIN_JSON(print_table_fn, json_fn)         \
  int main(int argc, char** argv) {                          \
    const std::string json_path =                            \
        ::lrt::bench::extract_flag(argc, argv, "--json");    \
    print_table_fn();                                        \
    if (!json_path.empty() && !json_fn(json_path)) return 1; \
    ::benchmark::Initialize(&argc, argv);                    \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) \
      return 1;                                              \
    ::benchmark::RunSpecifiedBenchmarks();                   \
    ::benchmark::Shutdown();                                 \
    return 0;                                                \
  }

}  // namespace lrt::bench

#endif  // LRT_BENCH_BENCH_UTIL_H_
