// E8 (paper Section 3, "General implementation"): two tasks t1, t2 with
// LRC 0.9 on their outputs; hosts h1 (0.95) and h2 (0.85). Mapping t2 to
// h2 violates c2's LRC and mapping t1 to h2 violates c1's — but a
// time-dependent implementation that alternates the two mappings across
// iterations achieves limavg 0.9 for both and is reliable.
//
// The empirical row simulates the alternating mapping directly: the
// runtime switches the replication mapping every iteration
// (sim::simulate_time_dependent).
//
// Benchmarks: the time-dependent analysis over growing phase counts.
#include <array>

#include <memory>

#include "bench/bench_util.h"
#include "reliability/analysis.h"
#include "sim/runtime.h"
#include "support/rng.h"

namespace {

using namespace lrt;

struct Fixture {
  std::unique_ptr<spec::Specification> spec;
  std::unique_ptr<arch::Architecture> arch;
  std::unique_ptr<impl::Implementation> phase_a;
  std::unique_ptr<impl::Implementation> phase_b;
};

Fixture make_fixture() {
  Fixture f;
  spec::SpecificationConfig spec_config;
  spec_config.name = "alternating";
  spec_config.communicators = {
      {"s", spec::ValueType::kReal, spec::Value::real(0.0), 10, 0.5},
      {"c1", spec::ValueType::kReal, spec::Value::real(0.0), 10, 0.9},
      {"c2", spec::ValueType::kReal, spec::Value::real(0.0), 10, 0.9}};
  spec::SpecificationConfig::TaskConfig t1;
  t1.name = "t1";
  t1.inputs = {{"s", 0}};
  t1.outputs = {{"c1", 1}};
  spec::SpecificationConfig::TaskConfig t2;
  t2.name = "t2";
  t2.inputs = {{"s", 0}};
  t2.outputs = {{"c2", 1}};
  spec_config.tasks = {t1, t2};
  f.spec = std::make_unique<spec::Specification>(
      std::move(spec::Specification::Build(std::move(spec_config))).value());

  arch::ArchitectureConfig arch_config;
  arch_config.hosts = {{"h1", 0.95}, {"h2", 0.85}};
  arch_config.sensors = {{"s", 1.0}};
  f.arch = std::make_unique<arch::Architecture>(
      std::move(arch::Architecture::Build(std::move(arch_config))).value());

  impl::ImplementationConfig a;
  a.task_mappings = {{"t1", {"h1"}}, {"t2", {"h2"}}};
  a.sensor_bindings = {{"s", "s"}};
  impl::ImplementationConfig b;
  b.task_mappings = {{"t1", {"h2"}}, {"t2", {"h1"}}};
  b.sensor_bindings = {{"s", "s"}};
  f.phase_a = std::make_unique<impl::Implementation>(
      std::move(impl::Implementation::Build(*f.spec, *f.arch, std::move(a)))
          .value());
  f.phase_b = std::make_unique<impl::Implementation>(
      std::move(impl::Implementation::Build(*f.spec, *f.arch, std::move(b)))
          .value());
  return f;
}

void print_table() {
  bench::header("E8 / Section 3",
                "time-dependent implementation: alternating t1,t2 between "
                "h1 (0.95) and h2 (0.85), LRC 0.9");

  const Fixture f = make_fixture();
  const auto report_a = reliability::analyze(*f.phase_a);
  const auto report_b = reliability::analyze(*f.phase_b);
  const std::array<impl::Implementation, 2> phases = {*f.phase_a, *f.phase_b};
  const auto alternating = reliability::analyze_time_dependent(phases);

  sim::NullEnvironment env;
  sim::SimulationOptions options;
  options.periods = 400'000;
  options.faults.seed = kDefaultRngSeed;
  const std::array<impl::Implementation, 2> sim_phases = {*f.phase_a,
                                                          *f.phase_b};
  const auto sim_alt = sim::simulate_time_dependent(sim_phases, env, options);

  std::printf("%-28s %-12s %-12s %-10s\n", "implementation",
              "lambda_c1", "lambda_c2", "verdict");
  const auto row = [](const char* name,
                      const reliability::ReliabilityReport& report) {
    double c1 = 0, c2 = 0;
    for (const auto& verdict : report.verdicts) {
      if (verdict.name == "c1") c1 = verdict.srg;
      if (verdict.name == "c2") c2 = verdict.srg;
    }
    std::printf("%-28s %-12.4f %-12.4f %-10s\n", name, c1, c2,
                report.reliable ? "RELIABLE" : "VIOLATED");
  };
  row("static A (t1>h1, t2>h2)", *report_a);
  row("static B (t1>h2, t2>h1)", *report_b);
  row("alternating A/B", *alternating);

  std::printf("%-28s %-12.4f %-12.4f (empirical, 400k periods)\n",
              "alternating A/B (simulated)",
              sim_alt->find("c1")->limit_average,
              sim_alt->find("c2")->limit_average);
  std::printf("\npaper: neither static mapping is reliable; the "
              "time-dependent implementation is (limavg = 0.9 >= 0.9).\n");
}

void BM_TimeDependentAnalysis(benchmark::State& state) {
  const Fixture f = make_fixture();
  std::vector<impl::Implementation> phases;
  for (int i = 0; i < state.range(0); ++i) {
    phases.push_back(i % 2 == 0 ? *f.phase_a : *f.phase_b);
  }
  for (auto _ : state) {
    auto report = reliability::analyze_time_dependent(phases);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_TimeDependentAnalysis)->Arg(2)->Arg(16)->Arg(128);

}  // namespace

LRT_BENCH_MAIN(print_table)
