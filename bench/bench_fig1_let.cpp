// E1 (paper Fig. 1): communicators c1..c4 with periods 2, 3, 4, 2 and a
// task t reading the second instances of c1, c2 and updating the third and
// sixth instances of c3, c4. The paper states LET(t) = [3, 8].
//
// Reproduces the derived timing quantities and benchmarks specification
// construction + graph analysis.
#include "bench/bench_util.h"
#include "sched/schedulability.h"
#include "spec/spec_graph.h"
#include "spec/specification.h"

namespace {

using namespace lrt;

spec::SpecificationConfig fig1_config() {
  spec::SpecificationConfig config;
  config.name = "fig1";
  const auto comm = [](const char* name, spec::Time period) {
    return spec::Communicator{name, spec::ValueType::kReal,
                              spec::Value::real(0.0), period, 0.9};
  };
  config.communicators = {comm("c1", 2), comm("c2", 3), comm("c3", 4),
                          comm("c4", 2)};
  spec::SpecificationConfig::TaskConfig task;
  task.name = "t";
  task.inputs = {{"c1", 1}, {"c2", 1}};
  task.outputs = {{"c3", 2}, {"c4", 5}};
  config.tasks = {task};
  return config;
}

void print_table() {
  bench::header("E1 / Fig. 1", "communicators, task LET, derived timing");
  const auto spec = spec::Specification::Build(fig1_config());
  const auto t = *spec->find_task("t");
  std::printf("%-28s %-10s %-10s\n", "quantity", "paper", "measured");
  std::printf("%-28s %-10s %lld\n", "read time of t", "3",
              static_cast<long long>(spec->read_time(t)));
  std::printf("%-28s %-10s %lld\n", "write time of t", "8",
              static_cast<long long>(spec->write_time(t)));
  std::printf("%-28s %-10s [%lld, %lld]\n", "LET of t", "[3, 8]",
              static_cast<long long>(spec->read_time(t)),
              static_cast<long long>(spec->write_time(t)));
  std::printf("%-28s %-10s %lld\n", "lcm of periods", "12",
              static_cast<long long>(spec->base_lcm()));
  std::printf("%-28s %-10s %lld\n", "specification period pi_S", "12",
              static_cast<long long>(spec->hyperperiod()));
  const spec::SpecificationGraph graph(*spec);
  std::printf("%-28s %-10s %s\n", "memory-free", "yes",
              graph.is_memory_free() ? "yes" : "no");
  std::printf("%-28s %-10s %zu vertices / %zu edges\n",
              "specification graph G_S", "-", graph.vertices().size(),
              graph.edge_count());
}

void BM_BuildFig1Spec(benchmark::State& state) {
  for (auto _ : state) {
    auto spec = spec::Specification::Build(fig1_config());
    benchmark::DoNotOptimize(spec);
  }
}
BENCHMARK(BM_BuildFig1Spec);

void BM_Fig1GraphAnalysis(benchmark::State& state) {
  const auto spec = spec::Specification::Build(fig1_config());
  for (auto _ : state) {
    spec::SpecificationGraph graph(*spec);
    benchmark::DoNotOptimize(graph.is_memory_free());
  }
}
BENCHMARK(BM_Fig1GraphAnalysis);

}  // namespace

LRT_BENCH_MAIN(print_table)
