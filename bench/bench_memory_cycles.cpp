// E7 (paper Section 3, "Specification with memory"): a model-1 task that
// reads and writes the same communicator. "Once bottom is written, the
// value of c is always bottom from that instant on. Hence if lambda_t < 1,
// then the long-run average ... is 0 with probability 1." The paper's fix:
// an independent-model task in every communicator cycle.
//
// The table sweeps trace lengths for both variants; the unsafe cycle's
// limavg decays toward 0 while the safe cycle sits at lambda_t.
//
// Benchmarks: the greatest-fixpoint SRG computation on deep cycles.
#include <memory>

#include "bench/bench_util.h"
#include "reliability/analysis.h"
#include "sim/runtime.h"
#include "spec/specification.h"
#include "support/rng.h"

namespace {

using namespace lrt;

struct CycleSystem {
  std::unique_ptr<spec::Specification> spec;
  std::unique_ptr<arch::Architecture> arch;
  std::unique_ptr<impl::Implementation> impl;
};

CycleSystem cycle_system(spec::FailureModel model, double host_rel,
                         int cycle_length = 1) {
  CycleSystem system;
  spec::SpecificationConfig config;
  config.name = "cycle";
  for (int i = 0; i < cycle_length; ++i) {
    config.communicators.push_back({"c" + std::to_string(i),
                                    spec::ValueType::kReal,
                                    spec::Value::real(1.0), 10, 0.5});
  }
  for (int i = 0; i < cycle_length; ++i) {
    spec::SpecificationConfig::TaskConfig task;
    task.name = "t" + std::to_string(i);
    task.inputs = {{"c" + std::to_string(i), 0}};
    task.outputs = {{"c" + std::to_string((i + 1) % cycle_length),
                     i + 1 == cycle_length ? cycle_length : i + 1}};
    // Only task 0 gets the chosen model; the rest are series.
    task.model = i == 0 ? model : spec::FailureModel::kSeries;
    config.tasks.push_back(std::move(task));
  }
  // Self-loop special case: one task reading and writing c0.
  if (cycle_length == 1) {
    config.tasks[0].outputs = {{"c0", 1}};
  }
  system.spec = std::make_unique<spec::Specification>(
      std::move(spec::Specification::Build(std::move(config))).value());
  arch::ArchitectureConfig arch_config;
  arch_config.hosts = {{"h", host_rel}};
  system.arch = std::make_unique<arch::Architecture>(
      std::move(arch::Architecture::Build(std::move(arch_config))).value());
  impl::ImplementationConfig impl_config;
  for (const auto& task : system.spec->tasks()) {
    impl_config.task_mappings.push_back({task.name, {"h"}});
  }
  system.impl = std::make_unique<impl::Implementation>(
      std::move(impl::Implementation::Build(*system.spec, *system.arch,
                                            std::move(impl_config)))
          .value());
  return system;
}

void print_table() {
  bench::header("E7 / Section 3",
                "communicator cycles: unsafe (model 1) vs safe (model 3)");

  auto unsafe = cycle_system(spec::FailureModel::kSeries, 0.99);
  auto safe = cycle_system(spec::FailureModel::kIndependent, 0.99);

  const auto unsafe_fix = reliability::compute_srgs_fixpoint(*unsafe.impl);
  const auto safe_srg = reliability::compute_srgs(*safe.impl);
  std::printf("analytic: unsafe fixpoint = %.4f (paper: 0), safe SRG = "
              "%.4f (paper: lambda_t = 0.99)\n\n",
              unsafe_fix[0], (*safe_srg)[0]);

  std::printf("%-12s %-22s %-22s\n", "periods", "unsafe cycle limavg",
              "safe cycle limavg");
  sim::NullEnvironment env;
  for (const std::int64_t periods : {100LL, 1'000LL, 10'000LL, 100'000LL}) {
    sim::SimulationOptions options;
    options.periods = periods;
    options.faults.seed = kDefaultRngSeed;
    const auto u = sim::simulate(*unsafe.impl, env, options);
    const auto s = sim::simulate(*safe.impl, env, options);
    std::printf("%-12lld %-22.6f %-22.6f\n",
                static_cast<long long>(periods),
                u->find("c0")->limit_average, s->find("c0")->limit_average);
  }
  std::printf("\nexpected shape: the unsafe column decays toward 0 as the "
              "trace grows; the safe column stays ~0.99.\n");
}

void BM_FixpointOnCycle(benchmark::State& state) {
  auto system = cycle_system(spec::FailureModel::kIndependent, 0.95,
                             static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto srgs = reliability::compute_srgs_fixpoint(*system.impl);
    benchmark::DoNotOptimize(srgs);
  }
}
BENCHMARK(BM_FixpointOnCycle)->Arg(2)->Arg(8)->Arg(32);

}  // namespace

LRT_BENCH_MAIN(print_table)
