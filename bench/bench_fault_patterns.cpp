// Baseline comparison: the paper argues for LRCs (probabilistic, long-run)
// instead of the failure-pattern/priority view of Pinello et al. This
// bench runs both analyses on the 3TS scenarios and places them side by
// side: the combinatorial fault-tolerance degree of each control
// communicator and its probabilistic SRG slack against LRC 0.98. The two
// orders agree on *which* repair helps, but only the LRC view quantifies
// how close 0.970299 is to 0.98 — the paper's core argument.
//
// Benchmarks: pattern enumeration cost vs bound k.
#include <memory>

#include "bench/bench_util.h"
#include "plant/three_tank_system.h"
#include "reliability/analysis.h"
#include "reliability/fault_patterns.h"

namespace {

using namespace lrt;

void print_table() {
  bench::header("Baseline", "failure patterns (Pinello-style) vs LRC slack "
                            "on the 3TS (LRC(u) = 0.98)");
  std::printf("%-28s %-20s %-20s %-12s\n", "variant", "u1 tolerance degree",
              "u1 SRG", "meets 0.98");
  for (const auto& [variant, name] :
       {std::pair{plant::ThreeTankVariant::kBaseline, "baseline"},
        std::pair{plant::ThreeTankVariant::kReplicatedTasks, "scenario 1"},
        std::pair{plant::ThreeTankVariant::kReplicatedSensors,
                  "scenario 2"}}) {
    plant::ThreeTankScenario scenario;
    scenario.variant = variant;
    scenario.lrc_controls = 0.98;
    auto system = plant::make_three_tank_system(scenario);
    const auto patterns =
        reliability::analyze_fault_patterns(*system->implementation, 2);
    const auto srgs = reliability::compute_srgs(*system->implementation);
    const auto u1 = *system->specification->find_communicator("u1");
    int degree = -1;
    std::string cut;
    for (const auto& verdict : patterns->verdicts) {
      if (verdict.name == "u1") {
        degree = verdict.tolerance_degree;
        cut = verdict.minimal_cut.to_string(*system->architecture);
      }
    }
    const double srg = (*srgs)[static_cast<std::size_t>(u1)];
    std::printf("%-28s %-3d (cut %-12s) %-20.8f %-12s\n", name, degree,
                cut.c_str(), srg, srg >= 0.98 ? "yes" : "no");
  }
  std::printf(
      "\nreading: the pattern view says 'scenario 1 survives one host "
      "failure'; the LRC view additionally\nquantifies the long-run "
      "guarantee (0.98000199 vs the 0.98 requirement) — including sensor "
      "noise the\npattern view cannot see. Both repairs keep degree 0 "
      "against sensor+pipeline failures (h3, sensors\nremain single points "
      "for l1) while meeting the LRC, which is exactly the paper's "
      "separation:\nrequirements are probabilistic, not structural.\n");
}

void BM_PatternEnumeration(benchmark::State& state) {
  plant::ThreeTankScenario scenario;
  scenario.variant = plant::ThreeTankVariant::kReplicatedTasks;
  auto system = plant::make_three_tank_system(scenario);
  for (auto _ : state) {
    auto report = reliability::analyze_fault_patterns(
        *system->implementation, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_PatternEnumeration)->Arg(1)->Arg(2)->Arg(3)->Arg(5);

}  // namespace

LRT_BENCH_MAIN(print_table)
