// Ablation: the three input failure models (paper Section 2). For a task
// with k inputs of equal SRG p on a host of reliability q, the output SRG
// is q*p^k (series), q*(1-(1-p)^k) (parallel), or q (independent). The
// table sweeps k and p; the crossover structure explains when sensor
// replication (paper scenario 2) pays off.
//
// Benchmarks: SRG computation cost vs fan-in.
#include <cmath>

#include <memory>

#include "bench/bench_util.h"
#include "reliability/analysis.h"
#include "spec/specification.h"

namespace {

using namespace lrt;

struct FanInSystem {
  std::unique_ptr<spec::Specification> spec;
  std::unique_ptr<arch::Architecture> arch;
  std::unique_ptr<impl::Implementation> impl;
};

FanInSystem fan_in(int k, double sensor_rel, spec::FailureModel model,
                   double host_rel = 0.99) {
  FanInSystem system;
  spec::SpecificationConfig config;
  config.name = "fanin";
  spec::SpecificationConfig::TaskConfig task;
  task.name = "t";
  for (int i = 0; i < k; ++i) {
    const std::string name = "in" + std::to_string(i);
    config.communicators.push_back({name, spec::ValueType::kReal,
                                    spec::Value::real(0.0), 10, 0.5});
    task.inputs.emplace_back(name, 0);
  }
  config.communicators.push_back({"out", spec::ValueType::kReal,
                                  spec::Value::real(0.0), 10, 0.5});
  task.outputs = {{"out", 1}};
  task.model = model;
  config.tasks = {task};
  system.spec = std::make_unique<spec::Specification>(
      std::move(spec::Specification::Build(std::move(config))).value());

  arch::ArchitectureConfig arch_config;
  arch_config.hosts = {{"h", host_rel}};
  impl::ImplementationConfig impl_config;
  impl_config.task_mappings = {{"t", {"h"}}};
  for (int i = 0; i < k; ++i) {
    const std::string name = "in" + std::to_string(i);
    arch_config.sensors.push_back({"sens" + std::to_string(i), sensor_rel});
    impl_config.sensor_bindings.push_back(
        {name, "sens" + std::to_string(i)});
  }
  system.arch = std::make_unique<arch::Architecture>(
      std::move(arch::Architecture::Build(std::move(arch_config))).value());
  system.impl = std::make_unique<impl::Implementation>(
      std::move(impl::Implementation::Build(*system.spec, *system.arch,
                                            std::move(impl_config)))
          .value());
  return system;
}

double out_srg(const FanInSystem& system) {
  const auto srgs = reliability::compute_srgs(*system.impl);
  return (*srgs)[static_cast<std::size_t>(
      *system.spec->find_communicator("out"))];
}

void print_table() {
  bench::header("Ablation", "output SRG by failure model and fan-in "
                            "(host 0.99)");
  std::printf("%-8s %-8s %-12s %-12s %-12s %-14s\n", "k", "p", "series",
              "parallel", "independent", "closed form");
  for (const double p : {0.8, 0.95, 0.99}) {
    for (const int k : {1, 2, 4, 8}) {
      const double series = out_srg(fan_in(k, p, spec::FailureModel::kSeries));
      const double parallel =
          out_srg(fan_in(k, p, spec::FailureModel::kParallel));
      const double independent =
          out_srg(fan_in(k, p, spec::FailureModel::kIndependent));
      std::printf("%-8d %-8.2f %-12.6f %-12.6f %-12.6f q*p^k=%.6f\n", k, p,
                  series, parallel, independent,
                  0.99 * std::pow(p, k));
    }
  }
  std::printf("\nshape: series decays with k, parallel grows toward q, "
              "independent ignores inputs — the rules of Section 3.\n");
}

void BM_SrgVsFanIn(benchmark::State& state) {
  auto system = fan_in(static_cast<int>(state.range(0)), 0.95,
                       spec::FailureModel::kParallel);
  for (auto _ : state) {
    auto srgs = reliability::compute_srgs(*system.impl);
    benchmark::DoNotOptimize(srgs);
  }
}
BENCHMARK(BM_SrgVsFanIn)->Arg(2)->Arg(16)->Arg(64);

}  // namespace

LRT_BENCH_MAIN(print_table)
