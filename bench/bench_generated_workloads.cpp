// Macro-benchmark over generated workloads: the full pipeline (generate ->
// analyze -> simulate) across dataflow shapes. The table quantifies, at
// population scale, the finding from tests/property_test.cpp: on
// tree-structured dataflow the SRG rules are exact; on general DAGs shared
// dependencies bias them — series-dominated communicators get conservative
// estimates, parallel junctions optimistic ones.
#include <cmath>
#include <memory>

#include "bench/bench_util.h"
#include "gen/workload.h"
#include "reliability/analysis.h"
#include "sim/runtime.h"

namespace {

using namespace lrt;

struct ErrorStats {
  double mean_abs = 0.0;
  double mean_signed = 0.0;  // empirical - analytic
  double worst = 0.0;
  int comms = 0;
};

ErrorStats population_error(bool tree, std::uint64_t seed, int systems) {
  gen::WorkloadOptions options;
  options.tree_structured = tree;
  Xoshiro256 rng(seed);
  ErrorStats stats;
  sim::NullEnvironment env;
  for (int k = 0; k < systems; ++k) {
    const auto workload = gen::random_workload(rng, options);
    if (!workload.ok()) continue;
    const auto srgs = reliability::compute_srgs(*workload->implementation);
    sim::SimulationOptions sim_options;
    sim_options.periods = 40'000;
    sim_options.faults.seed = seed * 131 + static_cast<std::uint64_t>(k);
    const auto run =
        sim::simulate(*workload->implementation, env, sim_options);
    if (!run.ok()) continue;
    for (std::size_t c = 0; c < srgs->size(); ++c) {
      const auto& comm_stats = run->comm_stats[c];
      if (comm_stats.updates == 0) continue;
      const double err = comm_stats.update_rate() - (*srgs)[c];
      stats.mean_abs += std::fabs(err);
      stats.mean_signed += err;
      stats.worst = std::max(stats.worst, std::fabs(err));
      ++stats.comms;
    }
  }
  if (stats.comms > 0) {
    stats.mean_abs /= stats.comms;
    stats.mean_signed /= stats.comms;
  }
  return stats;
}

void print_table() {
  bench::header("Population", "SRG rules vs empirical rates over generated "
                              "workloads (20 systems each, 40k periods)");
  std::printf("%-12s %-10s %-14s %-14s %-14s\n", "shape", "comms",
              "mean |error|", "mean signed", "worst |error|");
  const ErrorStats tree = population_error(true, 101, 20);
  std::printf("%-12s %-10d %-14.5f %-14.5f %-14.5f\n", "tree", tree.comms,
              tree.mean_abs, tree.mean_signed, tree.worst);
  const ErrorStats dag = population_error(false, 101, 20);
  std::printf("%-12s %-10d %-14.5f %-14.5f %-14.5f\n", "general DAG",
              dag.comms, dag.mean_abs, dag.mean_signed, dag.worst);
  std::printf("\nshape: tree errors are pure Monte-Carlo noise; DAG errors "
              "include the shared-dependency bias (see EXPERIMENTS.md, "
              "'A finding').\n");
}

void BM_GenerateWorkload(benchmark::State& state) {
  gen::WorkloadOptions options;
  options.min_layers = options.max_layers = static_cast<int>(state.range(0));
  options.min_tasks_per_layer = options.max_tasks_per_layer = 3;
  Xoshiro256 rng(7);
  for (auto _ : state) {
    auto workload = gen::random_workload(rng, options);
    benchmark::DoNotOptimize(workload);
  }
}
BENCHMARK(BM_GenerateWorkload)->Arg(2)->Arg(8)->Arg(32);

void BM_GenerateAnalyzeSimulate(benchmark::State& state) {
  Xoshiro256 rng(11);
  sim::NullEnvironment env;
  for (auto _ : state) {
    auto workload = gen::random_workload(rng);
    auto report = reliability::analyze(*workload->implementation);
    sim::SimulationOptions options;
    options.periods = state.range(0);
    auto run = sim::simulate(*workload->implementation, env, options);
    benchmark::DoNotOptimize(report);
    benchmark::DoNotOptimize(run);
  }
}
BENCHMARK(BM_GenerateAnalyzeSimulate)->Arg(100)->Arg(1000);

}  // namespace

LRT_BENCH_MAIN(print_table)
