// Ablation: replication synthesis — greedy vs exhaustive, and the fast
// incremental branch-and-bound engine vs the reference full-evaluation
// engine. The table compares cost (total replicas) and search effort on
// the 3TS task set across LRC targets; `--json <path>` additionally
// writes a machine-readable summary (BENCH_synthesis.json) consumed by
// the CI bench-smoke gate.
#include <chrono>
#include <string>

#include "bench/bench_util.h"
#include "plant/three_tank_system.h"
#include "synth/synthesis.h"

namespace {

using namespace lrt;

struct Measured {
  synth::SynthesisResult result;
  double wall_ms = 0.0;
};

/// Runs exhaustive synthesis on 3TS (LRC 0.98) with the given engine and
/// thread count, repeated to amortize noise, and reports the mean wall
/// time of one run.
Measured measure_exhaustive(synth::SynthesisOptions::Engine engine,
                            unsigned threads, int repeats = 5) {
  plant::ThreeTankScenario scenario;
  scenario.lrc_controls = 0.98;
  auto system = plant::make_three_tank_system(scenario);
  synth::SynthesisOptions options;
  options.strategy = synth::SynthesisOptions::Strategy::kExhaustive;
  options.engine = engine;
  options.threads = threads;
  Measured out;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < repeats; ++i) {
    auto result = synth::synthesize(
        *system->specification, *system->architecture,
        {{"s1", "sensor1"}, {"s2", "sensor2"}}, options);
    if (result.ok()) out.result = *result;
  }
  const auto end = std::chrono::steady_clock::now();
  out.wall_ms =
      std::chrono::duration<double, std::milli>(end - start).count() /
      repeats;
  return out;
}

void print_table() {
  bench::header("Ablation", "replication synthesis: greedy vs exhaustive "
                            "(3TS task set)");
  std::printf("%-10s %-22s %-22s\n", "LRC(u)", "greedy (cost/evals)",
              "exhaustive (cost/evals)");
  for (const double lrc : {0.95, 0.97, 0.98, 0.9899}) {
    plant::ThreeTankScenario scenario;
    scenario.lrc_controls = lrc;
    auto system = plant::make_three_tank_system(scenario);
    std::string cells[2];
    int index = 0;
    for (const auto strategy :
         {synth::SynthesisOptions::Strategy::kGreedy,
          synth::SynthesisOptions::Strategy::kExhaustive}) {
      synth::SynthesisOptions options;
      options.strategy = strategy;
      const auto result = synth::synthesize(
          *system->specification, *system->architecture,
          {{"s1", "sensor1"}, {"s2", "sensor2"}}, options);
      cells[index++] =
          result.ok() ? std::to_string(result->replication_count) + " / " +
                            std::to_string(result->candidates_evaluated)
                      : std::string("unsat");
    }
    std::printf("%-10.4f %-22s %-22s\n", lrc, cells[0].c_str(),
                cells[1].c_str());
  }

  bench::header("Ablation", "fast incremental B&B vs reference full "
                            "evaluation (exhaustive, 3TS, LRC 0.98)");
  const Measured ref = measure_exhaustive(
      synth::SynthesisOptions::Engine::kReference, 1);
  const Measured fast1 = measure_exhaustive(
      synth::SynthesisOptions::Engine::kFast, 1);
  const Measured fast0 = measure_exhaustive(
      synth::SynthesisOptions::Engine::kFast, 0);
  std::printf("%-22s %-10s %-12s %-12s %-10s\n", "engine", "cost",
              "full evals", "pruned", "wall(ms)");
  std::printf("%-22s %-10zu %-12lld %-12lld %-10.3f\n", "reference",
              ref.result.replication_count,
              static_cast<long long>(ref.result.full_evals),
              static_cast<long long>(ref.result.subtrees_pruned),
              ref.wall_ms);
  std::printf("%-22s %-10zu %-12lld %-12lld %-10.3f\n", "fast (1 thread)",
              fast1.result.replication_count,
              static_cast<long long>(fast1.result.full_evals),
              static_cast<long long>(fast1.result.subtrees_pruned),
              fast1.wall_ms);
  std::printf("%-22s %-10zu %-12lld %-12lld %-10.3f\n", "fast (all threads)",
              fast0.result.replication_count,
              static_cast<long long>(fast0.result.full_evals),
              static_cast<long long>(fast0.result.subtrees_pruned),
              fast0.wall_ms);
  std::printf("\nshape: identical minimal cost; the fast engine gates a "
              "small fraction of the candidates (%.1fx fewer full evals, "
              "%.1fx wall-clock speedup single-threaded).\n",
              static_cast<double>(ref.result.full_evals) /
                  static_cast<double>(fast1.result.full_evals > 0
                                          ? fast1.result.full_evals
                                          : 1),
              ref.wall_ms / (fast1.wall_ms > 0 ? fast1.wall_ms : 1));
}

/// Machine-readable summary for the CI bench-smoke gate.
bool write_json(const std::string& path) {
  const Measured ref = measure_exhaustive(
      synth::SynthesisOptions::Engine::kReference, 1);
  const Measured fast1 = measure_exhaustive(
      synth::SynthesisOptions::Engine::kFast, 1);
  bench::JsonWriter json;
  json.text("benchmark", "synthesis_exhaustive_3ts_lrc0.98");
  json.integer("reference_cost",
               static_cast<long long>(ref.result.replication_count));
  json.integer("fast_cost",
               static_cast<long long>(fast1.result.replication_count));
  json.integer("reference_full_evals", ref.result.full_evals);
  json.integer("fast_full_evals", fast1.result.full_evals);
  json.integer("fast_candidates_evaluated",
               fast1.result.candidates_evaluated);
  json.integer("fast_incremental_evals", fast1.result.incremental_evals);
  json.integer("fast_subtrees_pruned", fast1.result.subtrees_pruned);
  json.integer("fast_cache_hits", fast1.result.cache_hits);
  json.integer("fast_cache_misses", fast1.result.cache_misses);
  json.number("reference_wall_ms", ref.wall_ms);
  json.number("fast_wall_ms", fast1.wall_ms);
  json.number("speedup",
              ref.wall_ms / (fast1.wall_ms > 0 ? fast1.wall_ms : 1));
  json.number("full_eval_reduction",
              static_cast<double>(ref.result.full_evals) /
                  static_cast<double>(fast1.result.full_evals > 0
                                          ? fast1.result.full_evals
                                          : 1));
  return json.write(path);
}

void BM_SynthesizeGreedy(benchmark::State& state) {
  plant::ThreeTankScenario scenario;
  scenario.lrc_controls = 0.98;
  auto system = plant::make_three_tank_system(scenario);
  for (auto _ : state) {
    synth::SynthesisOptions options;
    options.strategy = synth::SynthesisOptions::Strategy::kGreedy;
    auto result = synth::synthesize(
        *system->specification, *system->architecture,
        {{"s1", "sensor1"}, {"s2", "sensor2"}}, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SynthesizeGreedy);

void BM_SynthesizeExhaustive(benchmark::State& state) {
  plant::ThreeTankScenario scenario;
  scenario.lrc_controls = 0.98;
  auto system = plant::make_three_tank_system(scenario);
  for (auto _ : state) {
    synth::SynthesisOptions options;
    options.strategy = synth::SynthesisOptions::Strategy::kExhaustive;
    auto result = synth::synthesize(
        *system->specification, *system->architecture,
        {{"s1", "sensor1"}, {"s2", "sensor2"}}, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SynthesizeExhaustive);

void BM_SynthesizeExhaustiveReference(benchmark::State& state) {
  plant::ThreeTankScenario scenario;
  scenario.lrc_controls = 0.98;
  auto system = plant::make_three_tank_system(scenario);
  for (auto _ : state) {
    synth::SynthesisOptions options;
    options.strategy = synth::SynthesisOptions::Strategy::kExhaustive;
    options.engine = synth::SynthesisOptions::Engine::kReference;
    auto result = synth::synthesize(
        *system->specification, *system->architecture,
        {{"s1", "sensor1"}, {"s2", "sensor2"}}, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SynthesizeExhaustiveReference);

}  // namespace

LRT_BENCH_MAIN_JSON(print_table, write_json)
