// Ablation: replication synthesis — greedy vs exhaustive branch-and-bound.
// The table compares cost (total replicas) and search effort on the 3TS
// task set across LRC targets; the benchmarks time both strategies.
#include "bench/bench_util.h"
#include "plant/three_tank_system.h"
#include "synth/synthesis.h"

namespace {

using namespace lrt;

void print_table() {
  bench::header("Ablation", "replication synthesis: greedy vs exhaustive "
                            "(3TS task set)");
  std::printf("%-10s %-22s %-22s\n", "LRC(u)", "greedy (cost/evals)",
              "exhaustive (cost/evals)");
  for (const double lrc : {0.95, 0.97, 0.98, 0.9899}) {
    plant::ThreeTankScenario scenario;
    scenario.lrc_controls = lrc;
    auto system = plant::make_three_tank_system(scenario);
    std::string cells[2];
    int index = 0;
    for (const auto strategy :
         {synth::SynthesisOptions::Strategy::kGreedy,
          synth::SynthesisOptions::Strategy::kExhaustive}) {
      synth::SynthesisOptions options;
      options.strategy = strategy;
      const auto result = synth::synthesize(
          *system->specification, *system->architecture,
          {{"s1", "sensor1"}, {"s2", "sensor2"}}, options);
      cells[index++] =
          result.ok() ? std::to_string(result->replication_count) + " / " +
                            std::to_string(result->candidates_evaluated)
                      : std::string("unsat");
    }
    std::printf("%-10.4f %-22s %-22s\n", lrc, cells[0].c_str(),
                cells[1].c_str());
  }
  std::printf("\nshape: greedy finds the same minimal cost with orders of "
              "magnitude fewer candidate evaluations.\n");
}

void BM_SynthesizeGreedy(benchmark::State& state) {
  plant::ThreeTankScenario scenario;
  scenario.lrc_controls = 0.98;
  auto system = plant::make_three_tank_system(scenario);
  for (auto _ : state) {
    synth::SynthesisOptions options;
    options.strategy = synth::SynthesisOptions::Strategy::kGreedy;
    auto result = synth::synthesize(
        *system->specification, *system->architecture,
        {{"s1", "sensor1"}, {"s2", "sensor2"}}, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SynthesizeGreedy);

void BM_SynthesizeExhaustive(benchmark::State& state) {
  plant::ThreeTankScenario scenario;
  scenario.lrc_controls = 0.98;
  auto system = plant::make_three_tank_system(scenario);
  for (auto _ : state) {
    synth::SynthesisOptions options;
    options.strategy = synth::SynthesisOptions::Strategy::kExhaustive;
    auto result = synth::synthesize(
        *system->specification, *system->architecture,
        {{"s1", "sensor1"}, {"s2", "sensor2"}}, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SynthesizeExhaustive);

}  // namespace

LRT_BENCH_MAIN(print_table)
