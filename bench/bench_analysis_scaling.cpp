// Scaling: runtime of the joint analyses as the specification grows.
// SRG induction is linear in the dataflow size; EDF schedulability is
// O(n log n) per host in the number of jobs; refinement checking is linear
// in |kappa|. These benchmarks back the "incremental analysis" motivation:
// full re-analysis cost grows with the system, while the incremental SRG
// evaluator re-propagates only the dirty downstream cone of a mutation.
// `--json <path>` writes a machine-readable incremental-vs-full summary
// (BENCH_analysis.json).
#include <chrono>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "reliability/analysis.h"
#include "reliability/incremental.h"
#include "sched/schedulability.h"
#include "spec/spec_graph.h"

namespace {

using namespace lrt;

struct ChainSystem {
  std::unique_ptr<spec::Specification> spec;
  std::unique_ptr<arch::Architecture> arch;
  std::unique_ptr<impl::Implementation> impl;
};

/// `n` parallel two-task pipelines across three hosts.
ChainSystem pipelines(int n) {
  ChainSystem system;
  spec::SpecificationConfig config;
  config.name = "pipelines";
  impl::ImplementationConfig impl_config;
  arch::ArchitectureConfig arch_config;
  arch_config.hosts = {{"h1", 0.999}, {"h2", 0.999}, {"h3", 0.999}};
  arch_config.default_wcet = 1;
  arch_config.default_wctt = 1;
  const std::int64_t period = 8 * n;  // room for all jobs per host

  for (int i = 0; i < n; ++i) {
    const std::string suffix = std::to_string(i);
    config.communicators.push_back({"in" + suffix, spec::ValueType::kReal,
                                    spec::Value::real(0.0), period, 0.5});
    config.communicators.push_back({"mid" + suffix, spec::ValueType::kReal,
                                    spec::Value::real(0.0), period / 2, 0.5});
    config.communicators.push_back({"out" + suffix, spec::ValueType::kReal,
                                    spec::Value::real(0.0), period, 0.5});
    spec::SpecificationConfig::TaskConfig front;
    front.name = "front" + suffix;
    front.inputs = {{"in" + suffix, 0}};
    front.outputs = {{"mid" + suffix, 1}};
    spec::SpecificationConfig::TaskConfig back;
    back.name = "back" + suffix;
    back.inputs = {{"mid" + suffix, 1}};
    back.outputs = {{"out" + suffix, 1}};
    config.tasks.push_back(std::move(front));
    config.tasks.push_back(std::move(back));
    impl_config.task_mappings.push_back(
        {"front" + suffix, {i % 2 == 0 ? "h1" : "h2"}});
    impl_config.task_mappings.push_back({"back" + suffix, {"h3"}});
    arch_config.sensors.push_back({"sens" + suffix, 0.999});
    impl_config.sensor_bindings.push_back({"in" + suffix, "sens" + suffix});
  }
  system.spec = std::make_unique<spec::Specification>(
      std::move(spec::Specification::Build(std::move(config))).value());
  system.arch = std::make_unique<arch::Architecture>(
      std::move(arch::Architecture::Build(std::move(arch_config))).value());
  system.impl = std::make_unique<impl::Implementation>(
      std::move(impl::Implementation::Build(*system.spec, *system.arch,
                                            std::move(impl_config)))
          .value());
  return system;
}

void print_table() {
  bench::header("Scaling", "analysis cost vs specification size");
  std::printf("benchmarks below: reliability / schedulability / graph "
              "analysis on n parallel pipelines (2n tasks, 3n "
              "communicators), plus incremental vs from-scratch SRG "
              "re-evaluation after a single-task mutation.\n");
}

/// Times `mutations` single-task host-set flips on an n-pipeline system,
/// incrementally (dirty-cone propagation) and from scratch (rebuild +
/// analyze), writing the comparison to `path`.
bool write_json(const std::string& path) {
  constexpr int kPipelines = 100;
  constexpr int kMutations = 200;
  auto system = pipelines(kPipelines);
  auto eval = reliability::SrgEvaluator::FromImplementation(*system.impl);
  if (!eval.ok()) return false;

  // The mutation cycles task t between {h1} and {h1, h2} — a real change
  // each time, so the dirty cone is never empty.
  const auto num_tasks =
      static_cast<spec::TaskId>(system.spec->tasks().size());
  const std::vector<arch::HostId> narrow = {0};
  const std::vector<arch::HostId> wide = {0, 1};

  const auto inc_start = std::chrono::steady_clock::now();
  for (int i = 0; i < kMutations; ++i) {
    const auto t = static_cast<spec::TaskId>(i % num_tasks);
    eval->set_task_hosts(t, i % 2 == 0 ? wide : narrow);
  }
  const auto inc_end = std::chrono::steady_clock::now();
  const double inc_ms =
      std::chrono::duration<double, std::milli>(inc_end - inc_start)
          .count() /
      kMutations;

  impl::ImplementationConfig config = system.impl->to_config();
  const auto full_start = std::chrono::steady_clock::now();
  for (int i = 0; i < kMutations; ++i) {
    const auto t = static_cast<std::size_t>(i % num_tasks);
    config.task_mappings[t].hosts =
        i % 2 == 0 ? std::vector<std::string>{"h1", "h2"}
                   : std::vector<std::string>{"h1"};
    auto impl = impl::Implementation::Build(*system.spec, *system.arch,
                                            config);
    if (!impl.ok()) return false;
    auto report = reliability::analyze(*impl);
    if (!report.ok()) return false;
    benchmark::DoNotOptimize(report);
  }
  const auto full_end = std::chrono::steady_clock::now();
  const double full_ms =
      std::chrono::duration<double, std::milli>(full_end - full_start)
          .count() /
      kMutations;

  bench::JsonWriter json;
  json.text("benchmark", "srg_single_task_mutation_100_pipelines");
  json.integer("tasks", static_cast<long long>(num_tasks));
  json.integer("communicators",
               static_cast<long long>(system.spec->communicators().size()));
  json.integer("mutations", kMutations);
  json.number("incremental_ms_per_mutation", inc_ms);
  json.number("full_rebuild_ms_per_mutation", full_ms);
  json.number("speedup", full_ms / (inc_ms > 0 ? inc_ms : 1));
  json.integer("incremental_comm_updates", eval->comm_updates());
  return json.write(path);
}

void BM_ReliabilityAnalysis(benchmark::State& state) {
  auto system = pipelines(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto report = reliability::analyze(*system.impl);
    benchmark::DoNotOptimize(report);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ReliabilityAnalysis)->Arg(10)->Arg(100)->Arg(500)->Complexity();

void BM_Schedulability(benchmark::State& state) {
  auto system = pipelines(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto report = sched::analyze_schedulability(*system.impl);
    benchmark::DoNotOptimize(report);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Schedulability)->Arg(10)->Arg(100)->Arg(500)->Complexity();

void BM_GraphConstruction(benchmark::State& state) {
  auto system = pipelines(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    spec::SpecificationGraph graph(*system.spec);
    benchmark::DoNotOptimize(graph.is_memory_free());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GraphConstruction)->Arg(10)->Arg(100)->Arg(500)->Complexity();

void BM_IncrementalSrgMutation(benchmark::State& state) {
  auto system = pipelines(static_cast<int>(state.range(0)));
  auto eval = reliability::SrgEvaluator::FromImplementation(*system.impl);
  const std::vector<arch::HostId> narrow = {0};
  const std::vector<arch::HostId> wide = {0, 1};
  std::int64_t i = 0;
  for (auto _ : state) {
    eval->set_task_hosts(
        static_cast<spec::TaskId>(
            i % static_cast<std::int64_t>(system.spec->tasks().size())),
        i % 2 == 0 ? wide : narrow);
    ++i;
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_IncrementalSrgMutation)
    ->Arg(10)
    ->Arg(100)
    ->Arg(500)
    ->Complexity();

}  // namespace

LRT_BENCH_MAIN_JSON(print_table, write_json)
