// Scaling: runtime of the joint analyses as the specification grows.
// SRG induction is linear in the dataflow size; EDF schedulability is
// O(n log n) per host in the number of jobs; refinement checking is linear
// in |kappa|. These benchmarks back the "incremental analysis" motivation:
// full re-analysis cost grows with the system, local refinement checks
// do not.
#include <memory>

#include "bench/bench_util.h"
#include "reliability/analysis.h"
#include "sched/schedulability.h"
#include "spec/spec_graph.h"

namespace {

using namespace lrt;

struct ChainSystem {
  std::unique_ptr<spec::Specification> spec;
  std::unique_ptr<arch::Architecture> arch;
  std::unique_ptr<impl::Implementation> impl;
};

/// `n` parallel two-task pipelines across three hosts.
ChainSystem pipelines(int n) {
  ChainSystem system;
  spec::SpecificationConfig config;
  config.name = "pipelines";
  impl::ImplementationConfig impl_config;
  arch::ArchitectureConfig arch_config;
  arch_config.hosts = {{"h1", 0.999}, {"h2", 0.999}, {"h3", 0.999}};
  arch_config.default_wcet = 1;
  arch_config.default_wctt = 1;
  const std::int64_t period = 8 * n;  // room for all jobs per host

  for (int i = 0; i < n; ++i) {
    const std::string suffix = std::to_string(i);
    config.communicators.push_back({"in" + suffix, spec::ValueType::kReal,
                                    spec::Value::real(0.0), period, 0.5});
    config.communicators.push_back({"mid" + suffix, spec::ValueType::kReal,
                                    spec::Value::real(0.0), period / 2, 0.5});
    config.communicators.push_back({"out" + suffix, spec::ValueType::kReal,
                                    spec::Value::real(0.0), period, 0.5});
    spec::SpecificationConfig::TaskConfig front;
    front.name = "front" + suffix;
    front.inputs = {{"in" + suffix, 0}};
    front.outputs = {{"mid" + suffix, 1}};
    spec::SpecificationConfig::TaskConfig back;
    back.name = "back" + suffix;
    back.inputs = {{"mid" + suffix, 1}};
    back.outputs = {{"out" + suffix, 1}};
    config.tasks.push_back(std::move(front));
    config.tasks.push_back(std::move(back));
    impl_config.task_mappings.push_back(
        {"front" + suffix, {i % 2 == 0 ? "h1" : "h2"}});
    impl_config.task_mappings.push_back({"back" + suffix, {"h3"}});
    arch_config.sensors.push_back({"sens" + suffix, 0.999});
    impl_config.sensor_bindings.push_back({"in" + suffix, "sens" + suffix});
  }
  system.spec = std::make_unique<spec::Specification>(
      std::move(spec::Specification::Build(std::move(config))).value());
  system.arch = std::make_unique<arch::Architecture>(
      std::move(arch::Architecture::Build(std::move(arch_config))).value());
  system.impl = std::make_unique<impl::Implementation>(
      std::move(impl::Implementation::Build(*system.spec, *system.arch,
                                            std::move(impl_config)))
          .value());
  return system;
}

void print_table() {
  bench::header("Scaling", "analysis cost vs specification size");
  std::printf("benchmarks below: reliability / schedulability / graph "
              "analysis on n parallel pipelines (2n tasks, 3n "
              "communicators).\n");
}

void BM_ReliabilityAnalysis(benchmark::State& state) {
  auto system = pipelines(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto report = reliability::analyze(*system.impl);
    benchmark::DoNotOptimize(report);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ReliabilityAnalysis)->Arg(10)->Arg(100)->Arg(500)->Complexity();

void BM_Schedulability(benchmark::State& state) {
  auto system = pipelines(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto report = sched::analyze_schedulability(*system.impl);
    benchmark::DoNotOptimize(report);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Schedulability)->Arg(10)->Arg(100)->Arg(500)->Complexity();

void BM_GraphConstruction(benchmark::State& state) {
  auto system = pipelines(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    spec::SpecificationGraph graph(*system.spec);
    benchmark::DoNotOptimize(graph.is_memory_free());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GraphConstruction)->Arg(10)->Arg(100)->Arg(500)->Complexity();

}  // namespace

LRT_BENCH_MAIN(print_table)
