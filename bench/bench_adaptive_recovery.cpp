// E9 (extension): adaptive recovery — what self-healing costs and buys.
//
// The table reproduces the headline claim of the adaptive layer on the
// three-tank system with an 0.98 control LRC: after a permanent h1 unplug
// the static scenario-1 mapping degrades u1 to the baseline 0.970299 SRG,
// while the self-healing runtime detects the loss, replans onto the
// survivors, and restores the analyzed 0.98000199 — the whole-run
// empirical u1 reliability splits accordingly. The capacity-starved
// two-host platform shows the graceful-degradation path (u1, u2 shed in
// slack order, surviving LRCs intact).
//
// Benchmarks: repair-planner latency (greedy vs exhaustive), simulation
// overhead of the monitor hooks (none vs observe-only vs full
// self-healing), and recovery-campaign throughput.
#include <vector>

#include "adapt/recovery_validation.h"
#include "adapt/repair_planner.h"
#include "adapt/self_healing.h"
#include "bench/bench_util.h"
#include "plant/three_tank_system.h"
#include "sim/monte_carlo.h"
#include "sim/runtime.h"

namespace {

using namespace lrt;

plant::ThreeTankScenario adaptive_scenario(int host_count) {
  plant::ThreeTankScenario scenario;
  scenario.variant = plant::ThreeTankVariant::kReplicatedTasks;
  scenario.lrc_controls = 0.98;
  scenario.host_count = host_count;
  return scenario;
}

sim::SimulationOptions unplug_options(std::int64_t periods) {
  sim::SimulationOptions options;
  options.periods = periods;
  options.actuator_comms = {"u1", "u2"};
  options.faults.host_events = {{periods / 5 * 500, 0, false}};
  return options;
}

double whole_run_u1(const impl::Implementation& impl,
                    sim::RuntimeMonitor* monitor) {
  sim::NullEnvironment env;
  sim::SimulationOptions options = unplug_options(2000);
  options.monitor = monitor;
  const auto result = sim::simulate(impl, env, options);
  if (!result.ok()) return 0.0;
  const sim::CommStats* u1 = result->find("u1");
  return u1 == nullptr ? 0.0 : u1->update_rate();
}

void print_table() {
  bench::header("E9 / adaptive layer",
                "self-healing after a permanent host unplug");

  auto system = plant::make_three_tank_system(adaptive_scenario(3));
  auto starved = plant::make_three_tank_system(adaptive_scenario(2));
  if (!system.ok() || !starved.ok()) return;
  const impl::Implementation& impl = *system->implementation;

  adapt::SelfHealingController healer(impl);
  const double static_u1 = whole_run_u1(impl, nullptr);
  const double healed_u1 = whole_run_u1(impl, &healer);
  std::printf("%-44s %s\n", "configuration (2000 periods, h1 dies at 20%)",
              "whole-run u1 reliability");
  std::printf("%-44s %.6f  (analysis post-kill: 0.970299)\n",
              "static scenario-1 mapping", static_u1);
  std::printf("%-44s %.6f  (re-analyzed: 0.980002)\n",
              "self-healing runtime", healed_u1);

  if (healer.repaired()) {
    std::printf("%s\n", healer.repairs().front().plan.describe().c_str());
  }
  const auto degraded = adapt::plan_repair(
      *starved->implementation, std::vector<arch::HostId>{0});
  if (degraded.ok()) {
    std::printf("2-host platform: %s\n", degraded->describe().c_str());
  }
}

void BM_PlanRepairGreedy(benchmark::State& state) {
  auto system = plant::make_three_tank_system(adaptive_scenario(3));
  for (auto _ : state) {
    auto plan = adapt::plan_repair(*system->implementation,
                                   std::vector<arch::HostId>{0});
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_PlanRepairGreedy);

void BM_PlanRepairExhaustive(benchmark::State& state) {
  auto system = plant::make_three_tank_system(adaptive_scenario(3));
  adapt::RepairPolicy policy;
  policy.strategy = synth::SynthesisOptions::Strategy::kExhaustive;
  policy.max_replication_per_task = 2;
  for (auto _ : state) {
    auto plan = adapt::plan_repair(*system->implementation,
                                   std::vector<arch::HostId>{0}, policy);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_PlanRepairExhaustive);

void BM_PlanRepairDegraded(benchmark::State& state) {
  auto system = plant::make_three_tank_system(adaptive_scenario(2));
  for (auto _ : state) {
    auto plan = adapt::plan_repair(*system->implementation,
                                   std::vector<arch::HostId>{0});
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_PlanRepairDegraded);

/// Simulation with no monitor / observe-only / full self-healing — the
/// per-tick price of the adaptive hooks.
void BM_SimulateMonitored(benchmark::State& state) {
  auto system = plant::make_three_tank_system(adaptive_scenario(3));
  const int mode = static_cast<int>(state.range(0));
  for (auto _ : state) {
    adapt::SelfHealingOptions options;
    options.enable_repair = mode == 2;
    adapt::SelfHealingController controller(*system->implementation,
                                            options);
    sim::NullEnvironment env;
    sim::SimulationOptions run = unplug_options(200);
    run.monitor = mode == 0 ? nullptr : &controller;
    auto result = sim::simulate(*system->implementation, env, run);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SimulateMonitored)->Arg(0)->Arg(1)->Arg(2);

void BM_RecoveryCampaign(benchmark::State& state) {
  auto system = plant::make_three_tank_system(adaptive_scenario(3));
  adapt::RecoveryValidationOptions options;
  options.monte_carlo.trials = 16;
  options.monte_carlo.simulation = unplug_options(100);
  for (auto _ : state) {
    const adapt::RecoveryValidator validator(options);
    auto report = validator.run(*system->implementation);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_RecoveryCampaign);

}  // namespace

LRT_BENCH_MAIN(print_table)
