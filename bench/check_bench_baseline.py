#!/usr/bin/env python3
"""CI bench-smoke gate: compare a fresh bench summary against its
checked-in baseline.

The rule set is selected by the summary's "benchmark" field, so one gate
script serves every bench that writes a --json summary:

  synthesis_*  — the fast synthesis engine must not regress:
    * search effort: candidates_evaluated or full_evals grew beyond a
      small tolerance over the baseline (the counters are deterministic,
      so any real growth is an algorithmic regression, not noise);
    * result quality: the minimal cost changed in either engine;
    * wall clock: fast_wall_ms exceeds an absolute budget.

  longrun_*    — the event-wheel simulation core must stay a faithful
    fast path:
    * identity: the tick and event engines must produce identical
      results (identical == 1) — the CI-level differential oracle;
    * determinism: events and ticks_skipped are exact (same workload,
      same seeds — any drift is a semantics change);
    * performance: the event/tick speedup must stay above a floor far
      below the recorded value (machine noise headroom), and
      event_wall_ms must fit an absolute budget;
    * calendar queue: steady-state allocations must stay near the
      baseline (the bucket/slot pools keep them flat);
    * parallel engine: bit-identity with tick/event and the LP count are
      enforced unconditionally; the >= 2x speedup floor over the
      sequential event core applies only on runners with >= 4 cores.

Wall budgets are generous (~50-100x the recorded times) since CI machines
are slower and noisier than the baseline recorder.

Usage: check_bench_baseline.py <fresh.json> <baseline.json>
"""
import json
import sys

# Deterministic counters get 10% headroom for harmless refactors.
COUNTER_TOLERANCE = 1.10
SYNTHESIS_WALL_BUDGET_MS = 250.0
LONGRUN_SPEEDUP_FLOOR = 10.0
LONGRUN_WALL_BUDGET_MS = 250.0
# Parallel engine floor vs the sequential event core on the 4-island
# workload; only enforceable when the runner actually has >= 4 cores.
PARALLEL_SPEEDUP_FLOOR = 2.0
PARALLEL_MIN_CORES = 4
PARALLEL_WALL_BUDGET_MS = 500.0
UPDATE_WALL_BUDGET_MS = 250.0
LINT_WALL_BUDGET_MS = 250.0
# The lrtd acceptance bar: a cache-hit delta analyze must stay two
# orders of magnitude cheaper than a cold-miss full analysis. The wall
# budget bounds the hit path absolutely (it is machine-dependent but the
# recorded median is ~4 us, so 100x headroom still catches a path that
# started rebuilding or re-serializing the world).
SERVICE_HIT_SPEEDUP_FLOOR = 100.0
SERVICE_HIT_BUDGET_US = 400.0


def check_synthesis(fresh, base):
    failures = []
    for key in ("reference_cost", "fast_cost"):
        if fresh[key] != base[key]:
            failures.append(
                f"{key}: {fresh[key]} != baseline {base[key]} "
                "(synthesis result changed)")

    for key in ("fast_candidates_evaluated", "fast_full_evals"):
        limit = base[key] * COUNTER_TOLERANCE + 1
        if fresh[key] > limit:
            failures.append(
                f"{key}: {fresh[key]} > {limit:.0f} "
                f"(baseline {base[key]} +10%): search effort regressed")

    if fresh["fast_wall_ms"] > SYNTHESIS_WALL_BUDGET_MS:
        failures.append(
            f"fast_wall_ms: {fresh['fast_wall_ms']:.3f} > budget "
            f"{SYNTHESIS_WALL_BUDGET_MS} ms")

    print(f"fresh:    cost={fresh['fast_cost']} "
          f"candidates={fresh['fast_candidates_evaluated']} "
          f"full_evals={fresh['fast_full_evals']} "
          f"wall={fresh['fast_wall_ms']:.3f}ms "
          f"speedup={fresh['speedup']:.0f}x")
    print(f"baseline: cost={base['fast_cost']} "
          f"candidates={base['fast_candidates_evaluated']} "
          f"full_evals={base['fast_full_evals']} "
          f"wall={base['fast_wall_ms']:.3f}ms")
    return failures


def check_longrun(fresh, base):
    failures = []
    if fresh["identical"] != 1:
        failures.append(
            "identical: tick and event engine results DIVERGED — "
            "the event core broke bit-identity")

    # Both engines are seeded and deterministic: the event count and the
    # skipped-tick count must match the baseline exactly.
    for key in ("horizon_ticks", "events", "ticks_skipped"):
        if fresh[key] != base[key]:
            failures.append(
                f"{key}: {fresh[key]} != baseline {base[key]} "
                "(event schedule changed)")

    if fresh["speedup"] < LONGRUN_SPEEDUP_FLOOR:
        failures.append(
            f"speedup: {fresh['speedup']:.1f}x < floor "
            f"{LONGRUN_SPEEDUP_FLOOR}x (baseline {base['speedup']:.1f}x): "
            "the event engine lost its sparse-workload advantage")

    if fresh["event_wall_ms"] > LONGRUN_WALL_BUDGET_MS:
        failures.append(
            f"event_wall_ms: {fresh['event_wall_ms']:.3f} > budget "
            f"{LONGRUN_WALL_BUDGET_MS} ms")

    # Calendar-queue telemetry: a pooled steady state must not start
    # reallocating (10% headroom for harmless stdlib/geometry changes).
    limit = base["queue_allocations"] * COUNTER_TOLERANCE + 1
    if fresh["queue_allocations"] > limit:
        failures.append(
            f"queue_allocations: {fresh['queue_allocations']} > "
            f"{limit:.0f} (baseline {base['queue_allocations']} +10%): "
            "the event queue's bucket/slot pooling regressed")

    # Parallel engine rules. Identity and the LP decomposition are
    # machine-independent (the conservative protocol is deterministic
    # for any thread count, even on one core); the speedup floor only
    # binds when the runner has enough cores to express it.
    if fresh["parallel_identical"] != 1:
        failures.append(
            "parallel_identical: the parallel engine DIVERGED from the "
            "tick/event engines — sharding broke bit-identity")
    if fresh["parallel_lp_count"] != base["parallel_lp_count"]:
        failures.append(
            f"parallel_lp_count: {fresh['parallel_lp_count']} != baseline "
            f"{base['parallel_lp_count']} (partition changed)")
    if fresh["parallel_events"] != base["parallel_events"]:
        failures.append(
            f"parallel_events: {fresh['parallel_events']} != baseline "
            f"{base['parallel_events']} (event schedule changed)")
    if fresh["parallel_wall_ms"] > PARALLEL_WALL_BUDGET_MS:
        failures.append(
            f"parallel_wall_ms: {fresh['parallel_wall_ms']:.3f} > budget "
            f"{PARALLEL_WALL_BUDGET_MS} ms")
    cores = fresh.get("hardware_concurrency", 0)
    if cores >= PARALLEL_MIN_CORES:
        if fresh["parallel_speedup_vs_event"] < PARALLEL_SPEEDUP_FLOOR:
            failures.append(
                f"parallel_speedup_vs_event: "
                f"{fresh['parallel_speedup_vs_event']:.2f}x < floor "
                f"{PARALLEL_SPEEDUP_FLOOR}x on {cores} cores: the "
                "parallel engine lost its scaling advantage")
    else:
        print(f"note: {cores} core(s) < {PARALLEL_MIN_CORES} — parallel "
              "speedup floor not enforced (identity still checked)")

    print(f"fresh:    identical={fresh['identical']} "
          f"events={fresh['events']} "
          f"speedup={fresh['speedup']:.1f}x "
          f"event_wall={fresh['event_wall_ms']:.3f}ms "
          f"parallel={fresh['parallel_identical']}/"
          f"{fresh['parallel_lp_count']}lp/"
          f"{fresh['parallel_speedup_vs_event']:.2f}x")
    print(f"baseline: identical={base['identical']} "
          f"events={base['events']} "
          f"speedup={base['speedup']:.1f}x "
          f"event_wall={base['event_wall_ms']:.3f}ms "
          f"parallel={base['parallel_identical']}/"
          f"{base['parallel_lp_count']}lp/"
          f"{base['parallel_speedup_vs_event']:.2f}x")
    return failures


def check_update(fresh, base):
    failures = []
    if fresh["identical"] != 1:
        failures.append(
            "identical: the updated run DIVERGED between the tick and "
            "event engines — the hot-swap broke bit-identity")
    if fresh["committed"] != 1:
        failures.append(
            "committed: the live update no longer commits (rejected or "
            "rolled back)")

    # The transaction schedule is deterministic: the swap count and the
    # propose-to-install lag (in instants) must match exactly.
    for key in ("spec_swaps", "install_latency_instants"):
        if fresh[key] != base[key]:
            failures.append(
                f"{key}: {fresh[key]} != baseline {base[key]} "
                "(update transaction schedule changed)")

    limit = base["resynth_candidates"] * COUNTER_TOLERANCE + 1
    if fresh["resynth_candidates"] > limit:
        failures.append(
            f"resynth_candidates: {fresh['resynth_candidates']} > "
            f"{limit:.0f} (baseline {base['resynth_candidates']} +10%): "
            "pinned re-synthesis search effort regressed")

    for key in ("refine_wall_ms", "resynth_wall_ms"):
        if fresh[key] > UPDATE_WALL_BUDGET_MS:
            failures.append(
                f"{key}: {fresh[key]:.3f} > budget "
                f"{UPDATE_WALL_BUDGET_MS} ms")

    print(f"fresh:    identical={fresh['identical']} "
          f"swaps={fresh['spec_swaps']} "
          f"install_latency={fresh['install_latency_instants']} "
          f"refine={fresh['refine_wall_ms']:.3f}ms "
          f"resynth={fresh['resynth_wall_ms']:.3f}ms "
          f"candidates={fresh['resynth_candidates']}")
    print(f"baseline: identical={base['identical']} "
          f"swaps={base['spec_swaps']} "
          f"install_latency={base['install_latency_instants']} "
          f"resynth={base['resynth_wall_ms']:.3f}ms "
          f"candidates={base['resynth_candidates']}")
    return failures


def check_lint(fresh, base):
    failures = []
    if fresh["identical"] != 1:
        failures.append(
            "identical: linting the same sources twice rendered "
            "DIFFERENT SARIF — the diagnostics are nondeterministic")
    if fresh["errors"] != 0:
        failures.append(
            f"errors: {fresh['errors']} != 0: a shipped example no longer "
            "lints clean")

    # The analyzer is deterministic over a fixed corpus: the diagnostic
    # yield, the product supergraph size, and the fixpoint effort must
    # match the baseline exactly. Any drift is a rule or engine change
    # that must be re-baselined deliberately.
    for key in ("files", "warnings", "notes", "product_nodes",
                "fixpoint_iterations"):
        if fresh[key] != base[key]:
            failures.append(
                f"{key}: {fresh[key]} != baseline {base[key]} "
                "(analyzer behavior changed)")

    if fresh["lint_wall_ms"] > LINT_WALL_BUDGET_MS:
        failures.append(
            f"lint_wall_ms: {fresh['lint_wall_ms']:.3f} > budget "
            f"{LINT_WALL_BUDGET_MS} ms")

    print(f"fresh:    files={fresh['files']} errors={fresh['errors']} "
          f"warnings={fresh['warnings']} notes={fresh['notes']} "
          f"nodes={fresh['product_nodes']} "
          f"iters={fresh['fixpoint_iterations']} "
          f"identical={fresh['identical']} "
          f"wall={fresh['lint_wall_ms']:.3f}ms")
    print(f"baseline: files={base['files']} errors={base['errors']} "
          f"warnings={base['warnings']} notes={base['notes']} "
          f"nodes={base['product_nodes']} "
          f"iters={base['fixpoint_iterations']} "
          f"wall={base['lint_wall_ms']:.3f}ms")
    return failures


def check_service(fresh, base):
    failures = []
    if fresh["identical"] != 1:
        failures.append(
            "identical: the 1-worker and 8-worker servers answered the "
            "same request log with DIFFERENT bytes — dispatch broke "
            "response determinism")

    if fresh["tasks"] != base["tasks"]:
        failures.append(
            f"tasks: {fresh['tasks']} != baseline {base['tasks']} "
            "(workload changed; re-baseline deliberately)")

    if fresh["hit_speedup"] < SERVICE_HIT_SPEEDUP_FLOOR:
        failures.append(
            f"hit_speedup: {fresh['hit_speedup']:.1f}x < floor "
            f"{SERVICE_HIT_SPEEDUP_FLOOR}x (baseline "
            f"{base['hit_speedup']:.1f}x): the delta analyze path lost "
            "its incremental advantage")

    if fresh["hit_us"] > SERVICE_HIT_BUDGET_US:
        failures.append(
            f"hit_us: {fresh['hit_us']:.1f} > budget "
            f"{SERVICE_HIT_BUDGET_US} us (baseline "
            f"{base['hit_us']:.1f} us)")

    print(f"fresh:    identical={fresh['identical']} "
          f"tasks={fresh['tasks']} "
          f"cold={fresh['cold_us']:.0f}us hit={fresh['hit_us']:.1f}us "
          f"speedup={fresh['hit_speedup']:.0f}x "
          f"throughput={fresh['throughput_rps']:.0f}rps "
          f"p99={fresh['p99_us']:.0f}us")
    print(f"baseline: identical={base['identical']} "
          f"tasks={base['tasks']} "
          f"cold={base['cold_us']:.0f}us hit={base['hit_us']:.1f}us "
          f"speedup={base['hit_speedup']:.0f}x "
          f"throughput={base['throughput_rps']:.0f}rps "
          f"p99={base['p99_us']:.0f}us")
    return failures


RULES = {
    "synthesis": check_synthesis,
    "service": check_service,
    "longrun": check_longrun,
    "update": check_update,
    "lint": check_lint,
}


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        fresh = json.load(f)
    with open(sys.argv[2]) as f:
        base = json.load(f)

    fresh_bench = fresh.get("benchmark", "")
    base_bench = base.get("benchmark", "")
    if fresh_bench != base_bench:
        print(f"REGRESSION: benchmark mismatch: fresh '{fresh_bench}' vs "
              f"baseline '{base_bench}'", file=sys.stderr)
        return 1

    checker = next((fn for prefix, fn in RULES.items()
                    if fresh_bench.startswith(prefix)), None)
    if checker is None:
        print(f"REGRESSION: no gate rules for benchmark '{fresh_bench}'",
              file=sys.stderr)
        return 1

    failures = checker(fresh, base)
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print(f"bench baseline gate ({fresh_bench}): OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
