#!/usr/bin/env python3
"""CI bench-smoke gate: compare a fresh BENCH_synthesis.json against the
checked-in baseline.

Fails (exit 1) when the fast synthesis engine regresses:
  * search effort: candidates_evaluated or full_evals grew beyond a small
    tolerance over the recorded baseline (the counters are deterministic,
    so any real growth is an algorithmic regression, not noise);
  * result quality: the minimal cost changed in either engine;
  * wall clock: fast_wall_ms exceeds an absolute budget (generous, since
    CI machines are slower and noisier than the baseline recorder).

Usage: check_bench_baseline.py <fresh.json> <baseline.json>
"""
import json
import sys

# Deterministic counters get 10% headroom for harmless refactors; the
# absolute wall budget is ~100x the recorded time to stay machine-neutral.
COUNTER_TOLERANCE = 1.10
WALL_BUDGET_MS = 250.0


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        fresh = json.load(f)
    with open(sys.argv[2]) as f:
        base = json.load(f)

    failures = []

    for key in ("reference_cost", "fast_cost"):
        if fresh[key] != base[key]:
            failures.append(
                f"{key}: {fresh[key]} != baseline {base[key]} "
                "(synthesis result changed)")

    for key in ("fast_candidates_evaluated", "fast_full_evals"):
        limit = base[key] * COUNTER_TOLERANCE + 1
        if fresh[key] > limit:
            failures.append(
                f"{key}: {fresh[key]} > {limit:.0f} "
                f"(baseline {base[key]} +10%): search effort regressed")

    if fresh["fast_wall_ms"] > WALL_BUDGET_MS:
        failures.append(
            f"fast_wall_ms: {fresh['fast_wall_ms']:.3f} > budget "
            f"{WALL_BUDGET_MS} ms")

    print(f"fresh:    cost={fresh['fast_cost']} "
          f"candidates={fresh['fast_candidates_evaluated']} "
          f"full_evals={fresh['fast_full_evals']} "
          f"wall={fresh['fast_wall_ms']:.3f}ms "
          f"speedup={fresh['speedup']:.0f}x")
    print(f"baseline: cost={base['fast_cost']} "
          f"candidates={base['fast_candidates_evaluated']} "
          f"full_evals={base['fast_full_evals']} "
          f"wall={base['fast_wall_ms']:.3f}ms")

    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print("bench baseline gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
