// E6 (paper Prop. 1): the strong-law-of-large-numbers argument. The
// probability-1 claim "limavg of the reliability-abstract trace >= mu_c"
// is backed by the empirical limit average converging to the analytical
// SRG as the trace grows. This bench sweeps trace lengths on the 3TS
// system through the parallel MonteCarloRunner — pooling independent
// trials per decade — and reports |empirical - analytic| plus the Wilson
// interval width for u1, followed by the engine's parallel scaling
// (trials/sec and speedup vs 1 thread).
//
// Long horizons are exactly where the simulation engine choice matters,
// so the bench also races Engine::kTick against Engine::kEvent on a
// sparse workload (coprime periods 999/1000 force a unit grid step, so
// ~999 of every 1000 ticks are idle), checks the results are identical,
// and reports horizon/core-second plus events/second. `--json <path>`
// writes the machine-readable summary gated in CI against
// baselines/BENCH_longrun.json.
//
// Benchmarks: Monte Carlo throughput by thread count, raw single-run
// simulation throughput on both engines.
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <thread>
#include <utility>

#include "bench/bench_util.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "plant/three_tank_system.h"
#include "reliability/analysis.h"
#include "sim/monte_carlo.h"
#include "sim/runtime.h"
#include "support/math_util.h"
#include "support/rng.h"

namespace {

using namespace lrt;

sim::MonteCarloOptions mc_options(std::int64_t trials, std::int64_t periods,
                                  unsigned threads) {
  sim::MonteCarloOptions options;
  options.trials = trials;
  options.simulation.periods = periods;
  options.simulation.actuator_comms = {"u1", "u2"};
  options.seed = kDefaultRngSeed;
  options.threads = threads;
  return options;
}

/// The harmonic grid step, derived ONCE per workload from the
/// communicator periods — and cross-checked against the step the
/// specification itself cached at Build time, so the bench's
/// horizon/core-second arithmetic can never drift from the grid the
/// engines actually run on.
spec::Time harmonic_step(const spec::Specification& specification) {
  std::vector<std::int64_t> periods;
  periods.reserve(specification.communicators().size());
  for (const auto& comm : specification.communicators()) {
    periods.push_back(comm.period);
  }
  const spec::Time step = gcd_all(periods);
  if (step != specification.base_period()) {
    std::fprintf(stderr,
                 "grid mismatch: gcd(periods) = %lld but spec caches %lld\n",
                 static_cast<long long>(step),
                 static_cast<long long>(specification.base_period()));
    std::abort();
  }
  return step;
}

// --- tick vs event engine on a sparse workload ---

struct SparseSystem {
  std::unique_ptr<spec::Specification> spec;
  std::unique_ptr<arch::Architecture> arch;
  std::unique_ptr<impl::Implementation> impl;
};

/// Coprime periods 999 and 1000: grid step 1, hyperperiod 999000, but
/// only ~2000 activation instants per period — the regime the DES core
/// exists for (a dense workload keeps both engines near parity). With
/// `groups` > 1 the workload is replicated onto host-disjoint islands,
/// which the parallel engine partitions into one LP per island.
SparseSystem make_sparse_system(int groups = 1) {
  spec::SpecificationConfig config;
  config.name = "sparse_des";
  arch::ArchitectureConfig arch_config;
  impl::ImplementationConfig impl_config;
  for (int g = 0; g < groups; ++g) {
    const std::string suffix = std::to_string(g);
    config.communicators.push_back({"c" + suffix + "a",
                                    spec::ValueType::kReal,
                                    spec::Value::real(0.0), 999, 0.5});
    config.communicators.push_back({"c" + suffix + "b",
                                    spec::ValueType::kReal,
                                    spec::Value::real(0.0), 1000, 0.5});
    spec::SpecificationConfig::TaskConfig task;
    task.name = "task" + suffix;
    task.inputs = {{"c" + suffix + "a", 1}};
    task.outputs = {{"c" + suffix + "b", 1}};
    config.tasks.push_back(std::move(task));
    arch_config.hosts.push_back({"h" + suffix, 0.99});
    arch_config.sensors.push_back({"s" + suffix, 0.99});
    impl_config.task_mappings.push_back({"task" + suffix, {"h" + suffix}});
    impl_config.sensor_bindings.push_back({"c" + suffix + "a", "s" + suffix});
  }

  SparseSystem system;
  system.spec = std::make_unique<spec::Specification>(
      std::move(spec::Specification::Build(std::move(config))).value());
  system.arch = std::make_unique<arch::Architecture>(
      std::move(arch::Architecture::Build(std::move(arch_config))).value());
  system.impl = std::make_unique<impl::Implementation>(
      std::move(impl::Implementation::Build(*system.spec, *system.arch,
                                            std::move(impl_config)))
          .value());
  return system;
}

constexpr std::int64_t kSparsePeriods = 20;

struct EngineRun {
  sim::SimulationResult result;
  double wall_ms = 0.0;
  std::int64_t events = 0;
  std::int64_t ticks_skipped = 0;
  std::int64_t queue_allocations = 0;
  std::int64_t queue_resizes = 0;
  std::int64_t lp_count = 0;
  std::int64_t null_messages = 0;
};

EngineRun run_engine(const impl::Implementation& impl,
                     sim::SimulationOptions::Engine engine,
                     int threads = 0) {
  obs::MetricsRegistry metrics;
  obs::Sink sink(&metrics, nullptr);
  sim::NullEnvironment env;
  sim::SimulationOptions options;
  options.engine = engine;
  options.threads = threads;
  options.periods = kSparsePeriods;
  options.sink = &sink;
  const auto start = std::chrono::steady_clock::now();
  auto result = sim::simulate(impl, env, options);
  const auto stop = std::chrono::steady_clock::now();
  if (!result.ok()) {
    std::fprintf(stderr, "simulate failed: %s\n",
                 result.status().to_string().c_str());
    std::abort();
  }
  const auto snapshot = metrics.snapshot();
  EngineRun run;
  run.result = std::move(result).value();
  run.wall_ms = std::chrono::duration<double, std::milli>(stop - start)
                    .count();
  run.events = snapshot.counter("sim.events");
  run.ticks_skipped = snapshot.counter("sim.ticks_skipped");
  run.queue_allocations = snapshot.counter("sim.queue_allocations");
  run.queue_resizes = snapshot.counter("sim.queue_resizes");
  run.lp_count = snapshot.counter("sim.lp_count");
  run.null_messages = snapshot.counter("sim.null_messages");
  return run;
}

struct EngineComparison {
  spec::Time horizon_ticks = 0;
  EngineRun tick;
  EngineRun event;
  bool identical = false;
};

EngineComparison compare_engines() {
  const SparseSystem system = make_sparse_system();
  const spec::Time step = harmonic_step(*system.spec);
  EngineComparison cmp;
  cmp.horizon_ticks = kSparsePeriods * system.spec->hyperperiod() / step;
  cmp.tick = run_engine(*system.impl, sim::SimulationOptions::Engine::kTick);
  cmp.event = run_engine(*system.impl,
                         sim::SimulationOptions::Engine::kEvent);
  cmp.identical =
      sim::to_json(cmp.tick.result) == sim::to_json(cmp.event.result);
  return cmp;
}

/// Simulated grid ticks covered per second of one core.
double horizon_per_core_second(const EngineComparison& cmp, double wall_ms) {
  return static_cast<double>(cmp.horizon_ticks) / (wall_ms / 1e3);
}

// --- the parallel engine on a sharded sparse workload ---

constexpr int kParallelGroups = 4;
constexpr int kParallelThreads = 4;

struct ParallelComparison {
  spec::Time horizon_ticks = 0;
  EngineRun tick;
  EngineRun event;     ///< sequential event engine, same workload
  EngineRun parallel;  ///< kParallelEvent at kParallelThreads
  bool identical = false;
};

/// Four host-disjoint sparse islands: the partition yields one LP per
/// island, so the parallel engine's speedup over the sequential event
/// core is pure scaling overhead (thread pool, per-LP calendars) —
/// there are no inter-LP channels to throttle it.
ParallelComparison compare_parallel() {
  const SparseSystem system = make_sparse_system(kParallelGroups);
  const spec::Time step = harmonic_step(*system.spec);
  ParallelComparison cmp;
  cmp.horizon_ticks = kSparsePeriods * system.spec->hyperperiod() / step;
  cmp.tick = run_engine(*system.impl, sim::SimulationOptions::Engine::kTick);
  cmp.event =
      run_engine(*system.impl, sim::SimulationOptions::Engine::kEvent);
  cmp.parallel = run_engine(*system.impl,
                            sim::SimulationOptions::Engine::kParallelEvent,
                            kParallelThreads);
  cmp.identical =
      sim::to_json(cmp.tick.result) == sim::to_json(cmp.parallel.result) &&
      sim::to_json(cmp.event.result) == sim::to_json(cmp.parallel.result);
  return cmp;
}

void print_table() {
  bench::header("E6 / Prop. 1",
                "SLLN: empirical limavg -> analytical SRG (3TS, comm u1)");

  auto system = plant::make_three_tank_system({});
  const auto srgs = reliability::compute_srgs(*system->implementation);
  const auto u1 = *system->specification->find_communicator("u1");
  const double analytic = (*srgs)[static_cast<std::size_t>(u1)];
  std::printf("analytical SRG lambda_u1 = %.8f\n\n", analytic);
  std::printf("%-10s %-8s %-14s %-12s %-12s %-12s\n", "periods", "trials",
              "empirical", "|error|", "ci width", "1/sqrt(n)");

  for (const std::int64_t periods :
       {100LL, 1'000LL, 10'000LL, 100'000LL}) {
    sim::MonteCarloRunner runner(mc_options(16, periods, 0));
    const auto report = runner.run(*system->implementation);
    const sim::CommAggregate* comm = report->find("u1");
    std::printf("%-10lld %-8lld %-14.6f %-12.6f %-12.6f %-12.6f\n",
                static_cast<long long>(periods),
                static_cast<long long>(report->trials), comm->empirical,
                std::fabs(comm->empirical - analytic),
                comm->interval.high - comm->interval.low,
                1.0 / std::sqrt(static_cast<double>(comm->updates)));
  }
  std::printf("\nexpected shape: error and interval width shrink like "
              "1/sqrt(pooled updates) (SLLN / CLT rate).\n");

  std::printf("\nparallel scaling (64 trials x 2000 periods):\n");
  std::printf("%-10s %-14s %-10s %-10s\n", "threads", "trials/s", "speedup",
              "identical");
  double base_rate = 0.0;
  std::int64_t reference = -1;
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    sim::MonteCarloRunner runner(mc_options(64, 2'000, threads));
    const auto report = runner.run(*system->implementation);
    if (threads == 1u) {
      base_rate = report->trials_per_second;
      reference = report->find("u1")->reliable_updates;
    }
    std::printf("%-10u %-14.1f %-10.2f %-10s\n", threads,
                report->trials_per_second,
                base_rate > 0.0 ? report->trials_per_second / base_rate
                                : 0.0,
                report->find("u1")->reliable_updates == reference ? "yes"
                                                                  : "NO");
  }
  std::printf("(hardware_concurrency = %u; speedup saturates there)\n",
              std::thread::hardware_concurrency());

  const EngineComparison cmp = compare_engines();
  std::printf("\ntick vs event engine (sparse periods 999/1000, %lld "
              "periods, horizon %lld ticks):\n",
              static_cast<long long>(kSparsePeriods),
              static_cast<long long>(cmp.horizon_ticks));
  std::printf("%-8s %-12s %-18s %-12s %-14s\n", "engine", "wall ms",
              "horizon/core-s", "events", "ticks skipped");
  std::printf("%-8s %-12.2f %-18.3g %-12s %-14s\n", "tick", cmp.tick.wall_ms,
              horizon_per_core_second(cmp, cmp.tick.wall_ms), "-", "-");
  std::printf("%-8s %-12.2f %-18.3g %-12lld %-14lld\n", "event",
              cmp.event.wall_ms,
              horizon_per_core_second(cmp, cmp.event.wall_ms),
              static_cast<long long>(cmp.event.events),
              static_cast<long long>(cmp.event.ticks_skipped));
  std::printf("speedup %.1fx, results %s\n",
              cmp.tick.wall_ms / std::max(cmp.event.wall_ms, 1e-6),
              cmp.identical ? "identical" : "DIVERGED");
  std::printf("event queue: %lld allocations, %lld resizes\n",
              static_cast<long long>(cmp.event.queue_allocations),
              static_cast<long long>(cmp.event.queue_resizes));

  const ParallelComparison par = compare_parallel();
  std::printf("\nparallel event engine (%d sparse islands, %d threads, "
              "horizon %lld ticks):\n",
              kParallelGroups, kParallelThreads,
              static_cast<long long>(par.horizon_ticks));
  std::printf("%-10s %-12s %-18s %-10s %-14s\n", "engine", "wall ms",
              "horizon/core-s", "LPs", "null msgs");
  std::printf("%-10s %-12.2f %-18.3g %-10s %-14s\n", "tick",
              par.tick.wall_ms,
              static_cast<double>(par.horizon_ticks) /
                  (par.tick.wall_ms / 1e3),
              "-", "-");
  std::printf("%-10s %-12.2f %-18.3g %-10s %-14s\n", "event",
              par.event.wall_ms,
              static_cast<double>(par.horizon_ticks) /
                  (par.event.wall_ms / 1e3),
              "-", "-");
  std::printf("%-10s %-12.2f %-18.3g %-10lld %-14lld\n", "parallel",
              par.parallel.wall_ms,
              static_cast<double>(par.horizon_ticks) /
                  (par.parallel.wall_ms / 1e3),
              static_cast<long long>(par.parallel.lp_count),
              static_cast<long long>(par.parallel.null_messages));
  std::printf("parallel vs event %.2fx, vs tick %.1fx, results %s\n",
              par.event.wall_ms / std::max(par.parallel.wall_ms, 1e-6),
              par.tick.wall_ms / std::max(par.parallel.wall_ms, 1e-6),
              par.identical ? "identical" : "DIVERGED");
}

bool write_json(const std::string& path) {
  const EngineComparison cmp = compare_engines();
  bench::JsonWriter json;
  json.text("benchmark", "longrun_des_sparse");
  json.integer("periods", kSparsePeriods);
  json.integer("horizon_ticks", cmp.horizon_ticks);
  json.integer("identical", cmp.identical ? 1 : 0);
  json.integer("events", cmp.event.events);
  json.integer("ticks_skipped", cmp.event.ticks_skipped);
  json.number("tick_wall_ms", cmp.tick.wall_ms);
  json.number("event_wall_ms", cmp.event.wall_ms);
  json.number("speedup",
              cmp.tick.wall_ms / std::max(cmp.event.wall_ms, 1e-6));
  json.number("events_per_second",
              static_cast<double>(cmp.event.events) /
                  std::max(cmp.event.wall_ms / 1e3, 1e-9));
  json.number("tick_horizon_per_core_second",
              horizon_per_core_second(cmp, cmp.tick.wall_ms));
  json.number("event_horizon_per_core_second",
              horizon_per_core_second(cmp, cmp.event.wall_ms));
  json.integer("queue_allocations", cmp.event.queue_allocations);
  json.integer("queue_resizes", cmp.event.queue_resizes);

  const ParallelComparison par = compare_parallel();
  json.integer("parallel_groups", kParallelGroups);
  json.integer("parallel_threads", kParallelThreads);
  json.integer("hardware_concurrency",
               static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  json.integer("parallel_identical", par.identical ? 1 : 0);
  json.integer("parallel_lp_count", par.parallel.lp_count);
  json.integer("parallel_events", par.parallel.events);
  json.number("parallel_tick_wall_ms", par.tick.wall_ms);
  json.number("parallel_event_wall_ms", par.event.wall_ms);
  json.number("parallel_wall_ms", par.parallel.wall_ms);
  json.number("parallel_speedup_vs_event",
              par.event.wall_ms / std::max(par.parallel.wall_ms, 1e-6));
  json.number("parallel_speedup_vs_tick",
              par.tick.wall_ms / std::max(par.parallel.wall_ms, 1e-6));
  return json.write(path);
}

void BM_MonteCarloThroughput(benchmark::State& state) {
  auto system = plant::make_three_tank_system({});
  const auto options =
      mc_options(16, 1'000, static_cast<unsigned>(state.range(0)));
  sim::MonteCarloRunner runner(options);
  for (auto _ : state) {
    auto report = runner.run(*system->implementation);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() * options.trials);
}
BENCHMARK(BM_MonteCarloThroughput)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_SimulationThroughput(benchmark::State& state) {
  auto system = plant::make_three_tank_system({});
  sim::NullEnvironment env;
  for (auto _ : state) {
    sim::SimulationOptions options;
    options.periods = state.range(0);
    options.actuator_comms = {"u1", "u2"};
    auto result = sim::simulate(*system->implementation, env, options);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulationThroughput)->Arg(1'000)->Arg(10'000);

void BM_SparseHorizonThroughput(benchmark::State& state) {
  const SparseSystem system = make_sparse_system();
  sim::NullEnvironment env;
  const auto engine =
      static_cast<sim::SimulationOptions::Engine>(state.range(0));
  for (auto _ : state) {
    sim::SimulationOptions options;
    options.engine = engine;
    options.periods = 2;
    auto result = sim::simulate(*system.impl, env, options);
    benchmark::DoNotOptimize(result);
  }
  // Items = simulated grid ticks: the horizon/core-second metric.
  state.SetItemsProcessed(state.iterations() * 2 *
                          system.spec->hyperperiod());
}
BENCHMARK(BM_SparseHorizonThroughput)
    ->Arg(static_cast<int>(sim::SimulationOptions::Engine::kTick))
    ->Arg(static_cast<int>(sim::SimulationOptions::Engine::kEvent))
    ->Unit(benchmark::kMillisecond);

void BM_ParallelHorizonThroughput(benchmark::State& state) {
  const SparseSystem system = make_sparse_system(kParallelGroups);
  sim::NullEnvironment env;
  for (auto _ : state) {
    sim::SimulationOptions options;
    options.engine = sim::SimulationOptions::Engine::kParallelEvent;
    options.threads = static_cast<int>(state.range(0));
    options.periods = 2;
    auto result = sim::simulate(*system.impl, env, options);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * 2 *
                          system.spec->hyperperiod());
}
BENCHMARK(BM_ParallelHorizonThroughput)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

LRT_BENCH_MAIN_JSON(print_table, write_json)
