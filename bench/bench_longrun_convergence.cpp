// E6 (paper Prop. 1): the strong-law-of-large-numbers argument. The
// probability-1 claim "limavg of the reliability-abstract trace >= mu_c"
// is backed by the empirical limit average converging to the analytical
// SRG as the trace grows. This bench sweeps trace lengths on the 3TS
// system and reports |empirical - analytic| per decade for u1.
//
// Benchmarks: raw simulation throughput at two period counts.
#include <cmath>

#include "bench/bench_util.h"
#include "plant/three_tank_system.h"
#include "reliability/analysis.h"
#include "sim/runtime.h"

namespace {

using namespace lrt;

void print_table() {
  bench::header("E6 / Prop. 1",
                "SLLN: empirical limavg -> analytical SRG (3TS, comm u1)");

  auto system = plant::make_three_tank_system({});
  const auto srgs = reliability::compute_srgs(*system->implementation);
  const auto u1 = *system->specification->find_communicator("u1");
  const double analytic = (*srgs)[static_cast<std::size_t>(u1)];
  std::printf("analytical SRG lambda_u1 = %.8f\n\n", analytic);
  std::printf("%-12s %-14s %-14s %-12s\n", "periods", "empirical",
              "|error|", "1/sqrt(n)");

  sim::NullEnvironment env;
  for (const std::int64_t periods :
       {100LL, 1'000LL, 10'000LL, 100'000LL, 1'000'000LL}) {
    sim::SimulationOptions options;
    options.periods = periods;
    options.actuator_comms = {"u1", "u2"};
    options.faults.seed = 6;
    const auto result = sim::simulate(*system->implementation, env, options);
    const double empirical = result->find("u1")->limit_average;
    std::printf("%-12lld %-14.6f %-14.6f %-12.6f\n",
                static_cast<long long>(periods), empirical,
                std::fabs(empirical - analytic),
                1.0 / std::sqrt(static_cast<double>(periods)));
  }
  std::printf("\nexpected shape: the error column shrinks roughly like "
              "1/sqrt(n) (SLLN / CLT rate).\n");
}

void BM_SimulationThroughput(benchmark::State& state) {
  auto system = plant::make_three_tank_system({});
  sim::NullEnvironment env;
  for (auto _ : state) {
    sim::SimulationOptions options;
    options.periods = state.range(0);
    options.actuator_comms = {"u1", "u2"};
    auto result = sim::simulate(*system->implementation, env, options);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulationThroughput)->Arg(1'000)->Arg(10'000);

}  // namespace

LRT_BENCH_MAIN(print_table)
