// E6 (paper Prop. 1): the strong-law-of-large-numbers argument. The
// probability-1 claim "limavg of the reliability-abstract trace >= mu_c"
// is backed by the empirical limit average converging to the analytical
// SRG as the trace grows. This bench sweeps trace lengths on the 3TS
// system through the parallel MonteCarloRunner — pooling independent
// trials per decade — and reports |empirical - analytic| plus the Wilson
// interval width for u1, followed by the engine's parallel scaling
// (trials/sec and speedup vs 1 thread).
//
// Benchmarks: Monte Carlo throughput by thread count, raw single-run
// simulation throughput.
#include <cmath>
#include <thread>

#include "bench/bench_util.h"
#include "plant/three_tank_system.h"
#include "reliability/analysis.h"
#include "sim/monte_carlo.h"
#include "sim/runtime.h"
#include "support/rng.h"

namespace {

using namespace lrt;

sim::MonteCarloOptions mc_options(std::int64_t trials, std::int64_t periods,
                                  unsigned threads) {
  sim::MonteCarloOptions options;
  options.trials = trials;
  options.simulation.periods = periods;
  options.simulation.actuator_comms = {"u1", "u2"};
  options.seed = kDefaultRngSeed;
  options.threads = threads;
  return options;
}

void print_table() {
  bench::header("E6 / Prop. 1",
                "SLLN: empirical limavg -> analytical SRG (3TS, comm u1)");

  auto system = plant::make_three_tank_system({});
  const auto srgs = reliability::compute_srgs(*system->implementation);
  const auto u1 = *system->specification->find_communicator("u1");
  const double analytic = (*srgs)[static_cast<std::size_t>(u1)];
  std::printf("analytical SRG lambda_u1 = %.8f\n\n", analytic);
  std::printf("%-10s %-8s %-14s %-12s %-12s %-12s\n", "periods", "trials",
              "empirical", "|error|", "ci width", "1/sqrt(n)");

  for (const std::int64_t periods :
       {100LL, 1'000LL, 10'000LL, 100'000LL}) {
    sim::MonteCarloRunner runner(mc_options(16, periods, 0));
    const auto report = runner.run(*system->implementation);
    const sim::CommAggregate* comm = report->find("u1");
    std::printf("%-10lld %-8lld %-14.6f %-12.6f %-12.6f %-12.6f\n",
                static_cast<long long>(periods),
                static_cast<long long>(report->trials), comm->empirical,
                std::fabs(comm->empirical - analytic),
                comm->interval.high - comm->interval.low,
                1.0 / std::sqrt(static_cast<double>(comm->updates)));
  }
  std::printf("\nexpected shape: error and interval width shrink like "
              "1/sqrt(pooled updates) (SLLN / CLT rate).\n");

  std::printf("\nparallel scaling (64 trials x 2000 periods):\n");
  std::printf("%-10s %-14s %-10s %-10s\n", "threads", "trials/s", "speedup",
              "identical");
  double base_rate = 0.0;
  std::int64_t reference = -1;
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    sim::MonteCarloRunner runner(mc_options(64, 2'000, threads));
    const auto report = runner.run(*system->implementation);
    if (threads == 1u) {
      base_rate = report->trials_per_second;
      reference = report->find("u1")->reliable_updates;
    }
    std::printf("%-10u %-14.1f %-10.2f %-10s\n", threads,
                report->trials_per_second,
                base_rate > 0.0 ? report->trials_per_second / base_rate
                                : 0.0,
                report->find("u1")->reliable_updates == reference ? "yes"
                                                                  : "NO");
  }
  std::printf("(hardware_concurrency = %u; speedup saturates there)\n",
              std::thread::hardware_concurrency());
}

void BM_MonteCarloThroughput(benchmark::State& state) {
  auto system = plant::make_three_tank_system({});
  const auto options =
      mc_options(16, 1'000, static_cast<unsigned>(state.range(0)));
  sim::MonteCarloRunner runner(options);
  for (auto _ : state) {
    auto report = runner.run(*system->implementation);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() * options.trials);
}
BENCHMARK(BM_MonteCarloThroughput)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_SimulationThroughput(benchmark::State& state) {
  auto system = plant::make_three_tank_system({});
  sim::NullEnvironment env;
  for (auto _ : state) {
    sim::SimulationOptions options;
    options.periods = state.range(0);
    options.actuator_comms = {"u1", "u2"};
    auto result = sim::simulate(*system->implementation, env, options);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulationThroughput)->Arg(1'000)->Arg(10'000);

}  // namespace

LRT_BENCH_MAIN(print_table)
