// Ablation: space redundancy (replication, the paper's mechanism) vs time
// redundancy (re-execution, the related-work mechanism of Izosimov et
// al.). Both lift the task reliability 1 - (1-p)^n with n = replicas or
// attempts — but they pay differently: replication consumes *hosts* (and
// broadcast/voting bandwidth), re-execution consumes *processor
// utilization inside the LET*. The table shows, per target task
// reliability, the minimal n for hosts at p = 0.9, the per-host utilization
// of each strategy, and the empirical rate of both (they must agree).
//
// Benchmarks: simulation cost of replication vs re-execution.
#include <cmath>
#include <memory>

#include "bench/bench_util.h"
#include "reliability/analysis.h"
#include "sched/schedulability.h"
#include "sim/runtime.h"
#include "spec/specification.h"
#include "support/rng.h"

namespace {

using namespace lrt;

struct Sys {
  std::unique_ptr<spec::Specification> spec;
  std::unique_ptr<arch::Architecture> arch;
  std::unique_ptr<impl::Implementation> impl;
};

/// One sensor->task->out chain; `replicas` hosts, `retries` re-executions
/// per replica, and optional checkpointing. Period 100, wcet 10.
Sys redundant(int replicas, int retries, double host_rel = 0.9,
              int checkpoints = 0) {
  Sys sys;
  spec::SpecificationConfig config;
  config.name = "redundant";
  config.communicators = {{"in", spec::ValueType::kReal,
                           spec::Value::real(0.0), 100, 0.5},
                          {"out", spec::ValueType::kReal,
                           spec::Value::real(0.0), 100, 0.5}};
  spec::SpecificationConfig::TaskConfig task;
  task.name = "t";
  task.inputs = {{"in", 0}};
  task.outputs = {{"out", 1}};
  config.tasks = {task};
  sys.spec = std::make_unique<spec::Specification>(
      std::move(spec::Specification::Build(std::move(config))).value());

  arch::ArchitectureConfig arch_config;
  std::vector<std::string> hosts;
  for (int h = 0; h < replicas; ++h) {
    arch_config.hosts.push_back({"h" + std::to_string(h), host_rel});
    hosts.push_back("h" + std::to_string(h));
  }
  arch_config.sensors = {{"s", 1.0}};
  arch_config.default_wcet = 10;
  arch_config.default_wctt = 2;
  sys.arch = std::make_unique<arch::Architecture>(
      std::move(arch::Architecture::Build(std::move(arch_config))).value());
  impl::ImplementationConfig impl_config;
  impl::ImplementationConfig::TaskMapping mapping;
  mapping.task = "t";
  mapping.hosts = hosts;
  mapping.reexecutions = retries;
  mapping.checkpoints = checkpoints;
  mapping.checkpoint_overhead = checkpoints > 0 ? 1 : 0;
  impl_config.task_mappings = {mapping};
  impl_config.sensor_bindings = {{"in", "s"}};
  sys.impl = std::make_unique<impl::Implementation>(
      std::move(impl::Implementation::Build(*sys.spec, *sys.arch,
                                            std::move(impl_config)))
          .value());
  return sys;
}

void print_table() {
  bench::header("Ablation",
                "space (replication) vs time (re-execution) redundancy, "
                "hosts at p = 0.9");
  std::printf("%-10s %-4s %-14s %-12s %-14s %-14s\n", "target", "n",
              "strategy", "lambda_t", "util/host", "empirical");

  sim::NullEnvironment env;
  sim::SimulationOptions options;
  options.periods = 100'000;
  options.faults.seed = kDefaultRngSeed;

  for (const double target : {0.99, 0.999, 0.9999}) {
    const int n = static_cast<int>(
        std::ceil(std::log(1.0 - target) / std::log(0.1) - 1e-9));
    // Space: n replicas, no retries.
    {
      Sys sys = redundant(n, 0);
      const double lambda = reliability::task_reliability(*sys.impl, 0);
      const auto sched = sched::analyze_schedulability(*sys.impl);
      const double util =
          static_cast<double>(sched->jobs[0].wcet) / 100.0;
      const auto run = sim::simulate(*sys.impl, env, options);
      std::printf("%-10.4f %-4d %-14s %-12.6f %-14.2f %-14.6f\n", target, n,
                  "space", lambda, util, run->find("out")->update_rate());
    }
    // Time: 1 host, n-1 retries.
    {
      Sys sys = redundant(1, n - 1);
      const double lambda = reliability::task_reliability(*sys.impl, 0);
      const auto sched = sched::analyze_schedulability(*sys.impl);
      const double util =
          static_cast<double>(sched->jobs[0].wcet) / 100.0;
      const auto run = sim::simulate(*sys.impl, env, options);
      std::printf("%-10.4f %-4d %-14s %-12.6f %-14.2f %-14.6f\n", target, n,
                  "time", lambda, util, run->find("out")->update_rate());
    }
    // Time + checkpointing: 4 checkpoints (segment 2, overhead 1) shrink
    // the reserved recovery budget per retry.
    if (n > 1) {
      Sys sys = redundant(1, n - 1, 0.9, /*checkpoints=*/4);
      const double lambda = reliability::task_reliability(*sys.impl, 0);
      const auto sched = sched::analyze_schedulability(*sys.impl);
      const double util =
          static_cast<double>(sched->jobs[0].wcet) / 100.0;
      const auto run = sim::simulate(*sys.impl, env, options);
      std::printf("%-10.4f %-4d %-14s %-12.6f %-14.2f %-14.6f\n", target, n,
                  "time+ckpt", lambda, util,
                  run->find("out")->update_rate());
    }
  }
  std::printf("\nshape: identical lambda_t for equal n; space redundancy "
              "keeps per-host utilization flat (but needs n hosts and "
              "voting), time redundancy multiplies utilization by n on one "
              "host. Re-execution cannot mask a permanently failed host.\n");
}

void BM_SpaceRedundancy(benchmark::State& state) {
  Sys sys = redundant(static_cast<int>(state.range(0)), 0);
  sim::NullEnvironment env;
  for (auto _ : state) {
    sim::SimulationOptions options;
    options.periods = 5000;
    auto result = sim::simulate(*sys.impl, env, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SpaceRedundancy)->Arg(1)->Arg(2)->Arg(4);

void BM_TimeRedundancy(benchmark::State& state) {
  Sys sys = redundant(1, static_cast<int>(state.range(0)) - 1);
  sim::NullEnvironment env;
  for (auto _ : state) {
    sim::SimulationOptions options;
    options.periods = 5000;
    auto result = sim::simulate(*sys.impl, env, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_TimeRedundancy)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

LRT_BENCH_MAIN(print_table)
