// E-machine vs direct runtime: instruction dispatch rate and the voting
// overhead of replication. The paper's code-generation change ("the output
// of each task is sent to all other hosts. Each host then performs a
// voting routine") costs broadcast + vote work per replica; this bench
// measures it as a function of the replication factor.
#include <memory>

#include "bench/bench_util.h"
#include "ecode/emachine.h"
#include "plant/three_tank_system.h"
#include "sim/runtime.h"

namespace {

using namespace lrt;

struct ReplSystem {
  std::unique_ptr<spec::Specification> spec;
  std::unique_ptr<arch::Architecture> arch;
  std::unique_ptr<impl::Implementation> impl;
};

/// One sensor->task->out chain replicated on r of 4 hosts.
ReplSystem replicated(int r) {
  ReplSystem system;
  spec::SpecificationConfig config;
  config.name = "repl";
  config.communicators = {{"in", spec::ValueType::kReal,
                           spec::Value::real(0.0), 10, 0.5},
                          {"out", spec::ValueType::kReal,
                           spec::Value::real(0.0), 10, 0.5}};
  spec::SpecificationConfig::TaskConfig task;
  task.name = "t";
  task.inputs = {{"in", 0}};
  task.outputs = {{"out", 1}};
  config.tasks = {task};
  system.spec = std::make_unique<spec::Specification>(
      std::move(spec::Specification::Build(std::move(config))).value());

  arch::ArchitectureConfig arch_config;
  std::vector<std::string> hosts;
  for (int h = 0; h < 4; ++h) {
    arch_config.hosts.push_back({"h" + std::to_string(h), 0.99});
    if (h < r) hosts.push_back("h" + std::to_string(h));
  }
  arch_config.sensors = {{"s", 0.99}};
  system.arch = std::make_unique<arch::Architecture>(
      std::move(arch::Architecture::Build(std::move(arch_config))).value());
  impl::ImplementationConfig impl_config;
  impl_config.task_mappings = {{"t", hosts}};
  impl_config.sensor_bindings = {{"in", "s"}};
  system.impl = std::make_unique<impl::Implementation>(
      std::move(impl::Implementation::Build(*system.spec, *system.arch,
                                            std::move(impl_config)))
          .value());
  return system;
}

void print_table() {
  bench::header("Runtime", "E-machine dispatch rate and voting overhead");
  std::printf("BM_VotingOverhead/r measures periods/second with the task "
              "replicated on r of 4 hosts;\nthe slowdown from r=1 to r=4 "
              "is the voting + broadcast cost of space redundancy.\n");
}

void BM_VotingOverhead(benchmark::State& state) {
  auto system = replicated(static_cast<int>(state.range(0)));
  sim::NullEnvironment env;
  for (auto _ : state) {
    sim::SimulationOptions options;
    options.periods = 2000;
    auto result = ecode::run_emachine(*system.impl, env, options);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_VotingOverhead)->Arg(1)->Arg(2)->Arg(4);

void BM_EMachine3TS(benchmark::State& state) {
  auto system = plant::make_three_tank_system({});
  sim::NullEnvironment env;
  for (auto _ : state) {
    sim::SimulationOptions options;
    options.periods = 2000;
    options.actuator_comms = {"u1", "u2"};
    auto result = ecode::run_emachine(*system->implementation, env, options);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_EMachine3TS);

void BM_DirectRuntime3TS(benchmark::State& state) {
  auto system = plant::make_three_tank_system({});
  sim::NullEnvironment env;
  for (auto _ : state) {
    sim::SimulationOptions options;
    options.periods = 2000;
    options.actuator_comms = {"u1", "u2"};
    auto result = sim::simulate(*system->implementation, env, options);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_DirectRuntime3TS);

}  // namespace

LRT_BENCH_MAIN(print_table)
