// Ablation: why the paper couples schedulability WITH reliability. Using
// the WCET-timed execution mode, this bench sweeps the demand of two tasks
// sharing one (perfectly reliable) host across the schedulability
// boundary: as soon as the analysis says "not schedulable", late outputs
// commit bottom and the *observed* reliability collapses — a requirement
// failure no purely probabilistic analysis would predict.
#include <memory>

#include "bench/bench_util.h"
#include "sched/schedulability.h"
#include "sim/runtime.h"
#include "spec/specification.h"

namespace {

using namespace lrt;

struct Sys {
  std::unique_ptr<spec::Specification> spec;
  std::unique_ptr<arch::Architecture> arch;
  std::unique_ptr<impl::Implementation> impl;
};

Sys shared_host(spec::Time wcet) {
  Sys sys;
  spec::SpecificationConfig config;
  config.name = "overload";
  const auto comm = [](const char* name) {
    return spec::Communicator{name, spec::ValueType::kReal,
                              spec::Value::real(0.0), 20, 0.5};
  };
  config.communicators = {comm("in"), comm("a"), comm("b")};
  spec::SpecificationConfig::TaskConfig t1;
  t1.name = "t1";
  t1.inputs = {{"in", 0}};
  t1.outputs = {{"a", 1}};
  spec::SpecificationConfig::TaskConfig t2;
  t2.name = "t2";
  t2.inputs = {{"in", 0}};
  t2.outputs = {{"b", 1}};
  config.tasks = {t1, t2};
  sys.spec = std::make_unique<spec::Specification>(
      std::move(spec::Specification::Build(std::move(config))).value());
  arch::ArchitectureConfig arch_config;
  arch_config.hosts = {{"h0", 1.0}};
  arch_config.sensors = {{"s", 1.0}};
  arch_config.default_wcet = wcet;
  arch_config.default_wctt = 1;
  sys.arch = std::make_unique<arch::Architecture>(
      std::move(arch::Architecture::Build(std::move(arch_config))).value());
  impl::ImplementationConfig impl_config;
  impl_config.task_mappings = {{"t1", {"h0"}}, {"t2", {"h0"}}};
  impl_config.sensor_bindings = {{"in", "s"}};
  sys.impl = std::make_unique<impl::Implementation>(
      std::move(impl::Implementation::Build(*sys.spec, *sys.arch,
                                            std::move(impl_config)))
          .value());
  return sys;
}

void print_table() {
  bench::header("Ablation", "overload: analysis verdict vs observed "
                            "reliability (timed execution, perfect host)");
  std::printf("%-8s %-12s %-14s %-14s %-14s %-10s\n", "wcet",
              "utilization", "schedulable?", "rate(a)", "rate(b)",
              "misses/period");
  for (const spec::Time wcet : {4, 6, 8, 9, 10, 12, 16}) {
    Sys sys = shared_host(wcet);
    const auto verdict = sched::analyze_schedulability(*sys.impl);
    sim::NullEnvironment env;
    sim::SimulationOptions options;
    options.periods = 2000;
    options.model_execution_time = true;
    const auto run = sim::simulate(*sys.impl, env, options);
    std::printf("%-8lld %-12.2f %-14s %-14.4f %-14.4f %-10.3f\n",
                static_cast<long long>(wcet),
                static_cast<double>(2 * wcet) / 20.0,
                verdict->schedulable ? "yes" : "NO",
                run->find("a")->update_rate(),
                run->find("b")->update_rate(),
                static_cast<double>(run->deadline_misses) / 2000.0);
  }
  std::printf("\nshape: observed reliability is 1.0 exactly while the "
              "analysis says schedulable, and collapses for one task the "
              "moment it does not — deadline misses convert timing "
              "overload into LRC violations.\n");
}

void BM_TimedSimulation(benchmark::State& state) {
  Sys sys = shared_host(8);
  sim::NullEnvironment env;
  for (auto _ : state) {
    sim::SimulationOptions options;
    options.periods = state.range(0);
    options.model_execution_time = true;
    auto result = sim::simulate(*sys.impl, env, options);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TimedSimulation)->Arg(1000)->Arg(10'000);

void BM_LogicalSimulation(benchmark::State& state) {
  Sys sys = shared_host(8);
  sim::NullEnvironment env;
  for (auto _ : state) {
    sim::SimulationOptions options;
    options.periods = state.range(0);
    auto result = sim::simulate(*sys.impl, env, options);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LogicalSimulation)->Arg(1000)->Arg(10'000);

}  // namespace

LRT_BENCH_MAIN(print_table)
