// Compiler throughput: lexing, parsing, and full compilation of generated
// HTL programs of growing size, plus E-code generation.
#include <string>

#include "bench/bench_util.h"
#include "ecode/program.h"
#include "htl/compiler.h"
#include "htl/lexer.h"
#include "htl/parser.h"

namespace {

using namespace lrt;

/// Generates a syntactically valid program with n independent task chains,
/// architecture, and mapping.
std::string generate_source(int n) {
  std::string src = "program generated {\n";
  const std::string period = std::to_string(16 * n);
  for (int i = 0; i < n; ++i) {
    const std::string s = std::to_string(i);
    src += "  communicator in" + s + " : real period " + period +
           " init 0.0 lrc 0.5;\n";
    src += "  communicator out" + s + " : real period " +
           std::to_string(8 * n) + " init 0.0 lrc 0.9;\n";
  }
  src += "  module m {\n";
  for (int i = 0; i < n; ++i) {
    const std::string s = std::to_string(i);
    src += "    task task" + s + " input (in" + s + "[0]) output (out" + s +
           "[1]) model series;\n";
  }
  src += "    mode main period " + period + " {\n";
  for (int i = 0; i < n; ++i) {
    src += "      invoke task" + std::to_string(i) + ";\n";
  }
  src += "    }\n    start main;\n  }\n";
  src += "  architecture {\n    host h1 reliability 0.999;\n"
         "    host h2 reliability 0.999;\n"
         "    metrics default wcet 2 wctt 1;\n";
  for (int i = 0; i < n; ++i) {
    src += "    sensor sens" + std::to_string(i) + " reliability 0.99;\n";
  }
  src += "  }\n  mapping {\n";
  for (int i = 0; i < n; ++i) {
    const std::string s = std::to_string(i);
    src += "    map task" + s + " to h" + (i % 2 == 0 ? "1" : "2") + ";\n";
    src += "    bind in" + s + " to sens" + s + ";\n";
  }
  src += "  }\n}\n";
  return src;
}

void print_table() {
  bench::header("Compiler", "HTL frontend + E-code generation throughput");
  const std::string src = generate_source(64);
  std::printf("generated benchmark program: %zu bytes, 64 tasks\n",
              src.size());
  const auto system = htl::compile(src);
  std::printf("compiles: %s\n",
              system.ok() ? "yes" : system.status().to_string().c_str());
}

void BM_Lex(benchmark::State& state) {
  const std::string src = generate_source(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto tokens = htl::lex(src);
    benchmark::DoNotOptimize(tokens);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(src.size()));
}
BENCHMARK(BM_Lex)->Arg(16)->Arg(128);

void BM_Parse(benchmark::State& state) {
  const std::string src = generate_source(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto program = htl::parse(src);
    benchmark::DoNotOptimize(program);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(src.size()));
}
BENCHMARK(BM_Parse)->Arg(16)->Arg(128);

void BM_CompileFull(benchmark::State& state) {
  const std::string src = generate_source(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto system = htl::compile(src);
    benchmark::DoNotOptimize(system);
  }
}
BENCHMARK(BM_CompileFull)->Arg(16)->Arg(128);

void BM_GenerateEcode(benchmark::State& state) {
  const std::string src = generate_source(static_cast<int>(state.range(0)));
  const auto system = htl::compile(src);
  for (auto _ : state) {
    auto program = ecode::generate_ecode(*system->implementation, 0);
    benchmark::DoNotOptimize(program);
  }
}
BENCHMARK(BM_GenerateEcode)->Arg(16)->Arg(128);

}  // namespace

LRT_BENCH_MAIN(print_table)
