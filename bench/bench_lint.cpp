// Analyzer cost and determinism on the shipped corpus: lrt-lint runs in
// the repo's own CI gate over examples/htl/*.htl, so its wall time, its
// diagnostic yield, and the size of the mode-product supergraph it builds
// are part of the contract.
//
// Three deterministic questions:
//   * yield: the exact number of errors / warnings / notes over the
//     shipped examples — any drift means a rule changed behavior;
//   * analysis size: total product nodes and dataflow fixpoint
//     iterations across the corpus — the whole-program engine's effort
//     counters, deterministic for fixed inputs;
//   * determinism: linting every file twice must render byte-identical
//     SARIF (the CI artifact).
//
// `--json <path>` writes the machine-readable summary gated in CI
// against baselines/BENCH_lint.json.
//
// Benchmarks: the full corpus sweep, and a synthetic 27-node
// mode-product supergraph (3 modules x 3 switching modes).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "lint/lint.h"
#include "lint/sarif.h"

namespace {

using namespace lrt;

std::vector<std::pair<std::string, std::string>> load_examples() {
  std::vector<std::pair<std::string, std::string>> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(LRT_EXAMPLES_HTL_DIR)) {
    if (entry.path().extension() != ".htl") continue;
    std::ifstream in(entry.path());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    files.emplace_back(entry.path().filename().string(), buffer.str());
  }
  std::sort(files.begin(), files.end());
  return files;
}

struct Sweep {
  long long files = 0;
  long long errors = 0;
  long long warnings = 0;
  long long notes = 0;
  long long product_nodes = 0;
  long long fixpoint_iterations = 0;
  bool identical = true;
  double wall_ms = 0.0;
};

Sweep run_sweep(const std::vector<std::pair<std::string, std::string>>&
                    files) {
  Sweep sweep;
  const auto start = std::chrono::steady_clock::now();
  for (const auto& [name, source] : files) {
    lint::LintOptions options;
    options.file = name;
    const auto result = lint::lint_source(source, options);
    if (!result.ok()) continue;  // fixed options: cannot happen
    ++sweep.files;
    sweep.errors += result->errors();
    sweep.warnings += result->warnings();
    for (const lint::Diagnostic& diag : result->diagnostics) {
      if (diag.severity == lint::Severity::kNote) ++sweep.notes;
    }
    sweep.product_nodes += result->product_nodes;
    sweep.fixpoint_iterations += result->fixpoint_iterations;
    const auto again = lint::lint_source(source, options);
    sweep.identical = sweep.identical && again.ok() &&
                      lint::to_sarif(result->diagnostics) ==
                          lint::to_sarif(again->diagnostics);
  }
  const auto stop = std::chrono::steady_clock::now();
  sweep.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  return sweep;
}

const std::vector<std::pair<std::string, std::string>>& examples() {
  static const auto files = load_examples();
  return files;
}

const Sweep& sweep() {
  static const Sweep result = run_sweep(examples());
  return result;
}

/// 3 modules, each cycling through 3 modes on a self-written guard: the
/// product supergraph has 3^3 = 27 reachable nodes, exercising the BFS,
/// the guard-feasibility pruning, and both dataflow fixpoints.
std::string synthetic_product_program() {
  std::string source = "program synthetic {\n";
  source += "  communicator raw : real period 10 init 0.0 lrc 0.5;\n";
  for (int m = 0; m < 3; ++m) {
    const std::string i = std::to_string(m);
    source += "  communicator g" + i +
              " : bool period 10 init false lrc 0.5;\n";
    source += "  communicator o" + i +
              " : real period 10 init 0.0 lrc 0.5;\n";
  }
  for (int m = 0; m < 3; ++m) {
    const std::string i = std::to_string(m);
    source += "  module m" + i + " {\n";
    source += "    task t" + i + " input (raw[0]) output (o" + i +
              "[1], g" + i + "[1]) model series;\n";
    for (int k = 0; k < 3; ++k) {
      source += "    mode k" + std::to_string(k) + " period 10 { invoke t" +
                i + "; switch (g" + i + ") to k" +
                std::to_string((k + 1) % 3) + "; }\n";
    }
    source += "    start k0;\n  }\n";
  }
  source += "}\n";
  return source;
}

void print_table() {
  bench::header("BENCH lint", "analyzer yield and determinism gate");
  const Sweep& s = sweep();
  std::printf("  shipped examples      : %lld file(s)\n", s.files);
  std::printf("  diagnostics           : %lld error(s), %lld warning(s), "
              "%lld note(s)\n",
              s.errors, s.warnings, s.notes);
  std::printf("  product supergraph    : %lld node(s) total\n",
              s.product_nodes);
  std::printf("  dataflow fixpoints    : %lld iteration(s) total\n",
              s.fixpoint_iterations);
  std::printf("  SARIF deterministic   : %s\n", s.identical ? "yes" : "NO");
  std::printf("  corpus sweep wall     : %.3f ms (both runs)\n", s.wall_ms);
}

bool write_json(const std::string& path) {
  const Sweep& s = sweep();
  bench::JsonWriter json;
  json.text("benchmark", "lint_examples");
  json.integer("files", s.files);
  json.integer("errors", s.errors);
  json.integer("warnings", s.warnings);
  json.integer("notes", s.notes);
  json.integer("product_nodes", s.product_nodes);
  json.integer("fixpoint_iterations", s.fixpoint_iterations);
  json.integer("identical", s.identical ? 1 : 0);
  json.number("lint_wall_ms", s.wall_ms);
  return json.write(path);
}

void BM_LintExampleCorpus(benchmark::State& state) {
  const auto& files = examples();
  for (auto _ : state) {
    long long errors = 0;
    for (const auto& [name, source] : files) {
      lint::LintOptions options;
      options.file = name;
      const auto result = lint::lint_source(source, options);
      if (result.ok()) errors += result->errors();
    }
    benchmark::DoNotOptimize(errors);
  }
}
BENCHMARK(BM_LintExampleCorpus)->Unit(benchmark::kMicrosecond);

void BM_LintProductSupergraph(benchmark::State& state) {
  const std::string source = synthetic_product_program();
  for (auto _ : state) {
    const auto result = lint::lint_source(source, {});
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_LintProductSupergraph)->Unit(benchmark::kMicrosecond);

}  // namespace

LRT_BENCH_MAIN_JSON(print_table, write_json)
