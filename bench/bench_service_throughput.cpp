// The lrtd service's two core claims, measured (DESIGN.md §5k):
//
//   * incrementality: on a resident 200-task workload, a delta analyze
//     (mutate one task's host set) must be two orders of magnitude
//     cheaper than a cold-miss full analysis (ship the whole spec +
//     arch + implementation and rebuild), because the resident
//     SrgEvaluator only re-propagates the dirty cone;
//   * determinism: the same single-connection request log answered by a
//     1-worker server and an 8-worker server must produce byte-identical
//     response streams — worker count is a pure throughput knob.
//
// Also reports closed-loop socket throughput (requests/sec, p50/p99/p999
// latency) for the hot path. `--json <path>` writes the summary gated in
// CI against baselines/BENCH_service.json.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <unistd.h>
#include <vector>

#include "arch/arch_json.h"
#include "bench/bench_util.h"
#include "gen/workload.h"
#include "impl/impl_json.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/server.h"
#include "service/service.h"
#include "spec/spec_json.h"
#include "support/json.h"
#include "support/rng.h"

namespace {

using namespace lrt;

constexpr int kHitSamples = 64;
constexpr int kColdSamples = 8;
constexpr int kLogMutates = 50;
constexpr int kThroughputRequests = 400;

struct Corpus {
  std::string spec_json;
  std::string arch_json;
  std::string impl_json;
  std::vector<std::string> tasks;
  std::vector<std::string> hosts;
};

Corpus make_corpus() {
  Xoshiro256 rng(2008);
  gen::WorkloadOptions options;
  // 10 layers x 20 tasks: the 200-task workload from the acceptance bar.
  options.min_layers = 10;
  options.max_layers = 10;
  options.min_tasks_per_layer = 20;
  options.max_tasks_per_layer = 20;
  options.min_hosts = 4;
  options.max_hosts = 4;
  auto workload = gen::random_workload(rng, options);
  if (!workload.ok()) {
    std::fprintf(stderr, "workload generation failed: %s\n",
                 workload.status().to_string().c_str());
    std::exit(1);
  }
  Corpus corpus;
  corpus.spec_json = spec::to_json(workload->specification->to_config());
  corpus.arch_json = arch::to_json(workload->architecture_config);
  corpus.impl_json = impl::to_json(workload->implementation_config);
  for (const auto& mapping :
       workload->implementation_config.task_mappings) {
    corpus.tasks.push_back(mapping.task);
  }
  for (const auto& host : workload->architecture_config.hosts) {
    corpus.hosts.push_back(host.name);
  }
  return corpus;
}

std::string cold_frame(const Corpus& corpus, const std::string& id) {
  JsonWriter json;
  json.begin_object();
  json.key("schema");
  json.value(service::kWireSchemaVersion);
  json.key("id");
  json.value(id);
  json.key("verb");
  json.value("analyze");
  json.key("spec");
  json.raw(corpus.spec_json);
  json.key("arch");
  json.raw(corpus.arch_json);
  json.key("implementation");
  json.raw(corpus.impl_json);
  json.end_object();
  return std::move(json).str();
}

std::string mutate_frame(const Corpus& corpus,
                         const std::string& fingerprint,
                         const std::string& id, std::size_t step) {
  const std::string& task = corpus.tasks[step % corpus.tasks.size()];
  const std::string& host =
      corpus.hosts[(step / corpus.tasks.size()) % corpus.hosts.size()];
  JsonWriter json;
  json.begin_object();
  json.key("schema");
  json.value(service::kWireSchemaVersion);
  json.key("id");
  json.value(id);
  json.key("verb");
  json.value("analyze");
  json.key("fingerprint");
  json.value(fingerprint);
  json.key("mutate");
  json.begin_object();
  json.key("task");
  json.value(task);
  json.key("hosts");
  json.begin_array();
  json.value(host);
  json.end_array();
  json.end_object();
  json.end_object();
  return std::move(json).str();
}

std::string ping_frame(const std::string& id) {
  JsonWriter json;
  json.begin_object();
  json.key("schema");
  json.value(service::kWireSchemaVersion);
  json.key("id");
  json.value(id);
  json.key("verb");
  json.value("ping");
  json.end_object();
  return std::move(json).str();
}

std::string response_fingerprint(const std::string& frame) {
  const auto document = parse_json(frame);
  if (!document.ok()) return "";
  const JsonValue* result = document->find("result");
  if (result == nullptr) return "";
  const JsonValue* fingerprint = result->find("fingerprint");
  if (fingerprint == nullptr || !fingerprint->is_string()) return "";
  return fingerprint->string;
}

double median_us(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

double percentile(const std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted_us.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_us.size() - 1);
  return sorted_us[lo] +
         (sorted_us[hi] - sorted_us[lo]) *
             (rank - static_cast<double>(lo));
}

double handle_us(service::Service& service, const std::string& frame) {
  const auto start = std::chrono::steady_clock::now();
  const service::ServiceReply reply = service.handle(frame);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  if (reply.frame.find("\"ok\":true") == std::string::npos) {
    std::fprintf(stderr, "request failed: %s\n", reply.frame.c_str());
    std::exit(1);
  }
  return std::chrono::duration<double, std::micro>(elapsed).count();
}

/// The same single-connection log the differential harness replays
/// through both servers: one cold analysis, then rotating mutates
/// interleaved with pings.
std::vector<std::string> make_request_log(const Corpus& corpus,
                                          const std::string& fingerprint) {
  std::vector<std::string> log;
  log.push_back(cold_frame(corpus, "log-cold"));
  for (int i = 0; i < kLogMutates; ++i) {
    log.push_back(mutate_frame(corpus, fingerprint,
                               "log-mut-" + std::to_string(i),
                               static_cast<std::size_t>(i)));
    if (i % 10 == 0) {
      log.push_back(ping_frame("log-ping-" + std::to_string(i)));
    }
  }
  return log;
}

/// Replays the log over one connection against a fresh server with
/// `threads` workers; returns the concatenated response stream.
std::string replay_log(const std::vector<std::string>& log,
                       unsigned threads) {
  service::ServerOptions options;
  options.socket_path = "/tmp/lrt_bench_service_" +
                        std::to_string(::getpid()) + "_" +
                        std::to_string(threads) + ".sock";
  options.threads = threads;
  auto server = service::Server::Start(std::move(options));
  if (!server.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 server.status().to_string().c_str());
    std::exit(1);
  }
  auto client = service::Client::Connect((*server)->socket_path());
  if (!client.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 client.status().to_string().c_str());
    std::exit(1);
  }
  std::string stream;
  for (const std::string& frame : log) {
    auto response = client->call(frame);
    if (!response.ok()) {
      std::fprintf(stderr, "call failed: %s\n",
                   response.status().to_string().c_str());
      std::exit(1);
    }
    stream += *response;
    stream += '\n';
  }
  (*server)->Stop();
  (*server)->Wait();
  return stream;
}

struct Numbers {
  long long tasks = 0;
  double cold_us = 0.0;
  double hit_us = 0.0;
  double hit_speedup = 0.0;
  bool identical = false;
  long long requests = 0;
  double throughput_rps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
};

Numbers g_numbers;

void run_experiment() {
  const Corpus corpus = make_corpus();
  g_numbers.tasks = static_cast<long long>(corpus.tasks.size());

  // -- incrementality: cold-miss full analysis vs cache-hit delta.
  service::Service service{service::ServiceOptions{}};
  std::vector<double> cold_us;
  std::string fingerprint;
  for (int i = 0; i < kColdSamples; ++i) {
    const std::string frame =
        cold_frame(corpus, "cold-" + std::to_string(i));
    const auto start = std::chrono::steady_clock::now();
    const service::ServiceReply reply = service.handle(frame);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    cold_us.push_back(
        std::chrono::duration<double, std::micro>(elapsed).count());
    fingerprint = response_fingerprint(reply.frame);
    if (fingerprint.empty()) {
      std::fprintf(stderr, "cold analyze failed: %s\n",
                   reply.frame.c_str());
      std::exit(1);
    }
  }
  std::vector<double> hit_us;
  for (int i = 0; i < kHitSamples; ++i) {
    hit_us.push_back(handle_us(
        service, mutate_frame(corpus, fingerprint,
                              "hit-" + std::to_string(i),
                              static_cast<std::size_t>(i))));
  }
  g_numbers.cold_us = median_us(cold_us);
  g_numbers.hit_us = median_us(hit_us);
  g_numbers.hit_speedup = g_numbers.cold_us / g_numbers.hit_us;

  // -- determinism: 1-worker vs 8-worker response streams.
  const std::vector<std::string> log =
      make_request_log(corpus, fingerprint);
  const std::string serial = replay_log(log, 1);
  const std::string parallel = replay_log(log, 8);
  g_numbers.identical = serial == parallel;

  // -- closed-loop socket throughput on the hot path.
  {
    service::ServerOptions options;
    options.socket_path = "/tmp/lrt_bench_service_" +
                          std::to_string(::getpid()) + "_tp.sock";
    options.threads = 8;
    auto server = service::Server::Start(std::move(options));
    if (!server.ok()) {
      std::fprintf(stderr, "server start failed: %s\n",
                   server.status().to_string().c_str());
      std::exit(1);
    }
    auto client = service::Client::Connect((*server)->socket_path());
    if (!client.ok()) {
      std::fprintf(stderr, "connect failed: %s\n",
                   client.status().to_string().c_str());
      std::exit(1);
    }
    auto primed = client->call(cold_frame(corpus, "tp-prime"));
    const std::string tp_fingerprint =
        primed.ok() ? response_fingerprint(*primed) : "";
    if (tp_fingerprint.empty()) {
      std::fprintf(stderr, "throughput prime failed\n");
      std::exit(1);
    }
    std::vector<double> latencies_us;
    const auto wall_start = std::chrono::steady_clock::now();
    for (int i = 0; i < kThroughputRequests; ++i) {
      const std::string frame =
          mutate_frame(corpus, tp_fingerprint,
                       "tp-" + std::to_string(i),
                       static_cast<std::size_t>(i));
      const auto start = std::chrono::steady_clock::now();
      auto response = client->call(frame);
      const auto elapsed = std::chrono::steady_clock::now() - start;
      if (!response.ok()) {
        std::fprintf(stderr, "throughput call failed: %s\n",
                     response.status().to_string().c_str());
        std::exit(1);
      }
      latencies_us.push_back(
          std::chrono::duration<double, std::micro>(elapsed).count());
    }
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    (*server)->Stop();
    (*server)->Wait();
    std::sort(latencies_us.begin(), latencies_us.end());
    g_numbers.requests = kThroughputRequests;
    g_numbers.throughput_rps =
        static_cast<double>(kThroughputRequests) / wall_s;
    g_numbers.p50_us = percentile(latencies_us, 0.50);
    g_numbers.p99_us = percentile(latencies_us, 0.99);
    g_numbers.p999_us = percentile(latencies_us, 0.999);
  }
}

void print_table() {
  bench::header("SERVICE", "lrtd dispatch: incrementality + determinism");
  run_experiment();
  std::printf("  workload: %lld tasks\n", g_numbers.tasks);
  std::printf("  cold-miss full analysis: %10.1f us (median of %d)\n",
              g_numbers.cold_us, kColdSamples);
  std::printf("  cache-hit delta analyze: %10.1f us (median of %d)\n",
              g_numbers.hit_us, kHitSamples);
  std::printf("  hit speedup:             %10.1fx (floor: 100x)\n",
              g_numbers.hit_speedup);
  std::printf("  1-thread vs 8-thread response streams: %s\n",
              g_numbers.identical ? "IDENTICAL" : "DIVERGED");
  std::printf("  socket throughput: %.0f req/s over %lld requests\n",
              g_numbers.throughput_rps, g_numbers.requests);
  std::printf("  latency: p50 %.1f us  p99 %.1f us  p999 %.1f us\n",
              g_numbers.p50_us, g_numbers.p99_us, g_numbers.p999_us);
}

bool write_json(const std::string& path) {
  bench::JsonWriter json;
  json.text("benchmark", "service_throughput");
  json.integer("tasks", g_numbers.tasks);
  json.number("cold_us", g_numbers.cold_us);
  json.number("hit_us", g_numbers.hit_us);
  json.number("hit_speedup", g_numbers.hit_speedup);
  json.integer("identical", g_numbers.identical ? 1 : 0);
  json.integer("requests", g_numbers.requests);
  json.number("throughput_rps", g_numbers.throughput_rps);
  json.number("p50_us", g_numbers.p50_us);
  json.number("p99_us", g_numbers.p99_us);
  json.number("p999_us", g_numbers.p999_us);
  return json.write(path);
}

void BM_AnalyzeHit(benchmark::State& state) {
  const Corpus corpus = make_corpus();
  service::Service service{service::ServiceOptions{}};
  const service::ServiceReply primed =
      service.handle(cold_frame(corpus, "bm-prime"));
  const std::string fingerprint = response_fingerprint(primed.frame);
  std::size_t step = 0;
  for (auto _ : state) {
    const service::ServiceReply reply = service.handle(
        mutate_frame(corpus, fingerprint,
                     "bm-hit-" + std::to_string(step), step));
    benchmark::DoNotOptimize(reply.frame.data());
    ++step;
  }
}
BENCHMARK(BM_AnalyzeHit)->Unit(benchmark::kMicrosecond);

void BM_AnalyzeCold(benchmark::State& state) {
  const Corpus corpus = make_corpus();
  service::Service service{service::ServiceOptions{}};
  std::size_t step = 0;
  for (auto _ : state) {
    const service::ServiceReply reply = service.handle(
        cold_frame(corpus, "bm-cold-" + std::to_string(step)));
    benchmark::DoNotOptimize(reply.frame.data());
    ++step;
  }
}
BENCHMARK(BM_AnalyzeCold)->Unit(benchmark::kMillisecond);

}  // namespace

LRT_BENCH_MAIN_JSON(print_table, write_json)
