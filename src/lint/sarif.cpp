#include "lint/sarif.h"

#include "lint/rules.h"
#include "support/json.h"

namespace lrt::lint {
namespace {

/// SARIF "level" values happen to coincide with our severity names for
/// note/warning/error (SARIF additionally has "none", which we never
/// emit: disabled rules are filtered before recording).
std::string_view sarif_level(Severity severity) {
  return to_string(severity == Severity::kOff ? Severity::kNote : severity);
}

/// Emits a SARIF physicalLocation object for `location`.
void emit_physical_location(JsonWriter& json,
                            const SourceLocation& location) {
  json.key("physicalLocation");
  json.begin_object();
  json.key("artifactLocation");
  json.begin_object();
  json.key("uri");
  json.value(location.file);
  json.end_object();
  if (location.line > 0) {
    json.key("region");
    json.begin_object();
    json.key("startLine");
    json.value(location.line);
    if (location.column > 0) {
      json.key("startColumn");
      json.value(location.column);
    }
    json.end_object();
  }
  json.end_object();  // physicalLocation
}

}  // namespace

std::string render_text(std::span<const Diagnostic> diags) {
  std::string out;
  for (const Diagnostic& diag : diags) {
    out += diag.to_string() + "\n";
    for (const RelatedLocation& related : diag.related) {
      out += "    related: " + related.location.to_string() + ": " +
             related.message + "\n";
    }
    if (!diag.fixit.empty()) {
      out += "    fix-it: " + diag.fixit + "\n";
    }
  }
  return out;
}

std::string to_json(std::span<const Diagnostic> diags) {
  JsonWriter json;
  json.begin_object();
  json.key("diagnostics");
  json.begin_array();
  int errors = 0;
  int warnings = 0;
  int notes = 0;
  for (const Diagnostic& diag : diags) {
    switch (diag.severity) {
      case Severity::kError: ++errors; break;
      case Severity::kWarning: ++warnings; break;
      default: ++notes; break;
    }
    json.begin_object();
    json.key("rule");
    json.value(diag.rule_id);
    json.key("name");
    json.value(diag.rule_name);
    json.key("severity");
    json.value(to_string(diag.severity));
    json.key("file");
    json.value(diag.location.file);
    json.key("line");
    json.value(diag.location.line);
    json.key("column");
    json.value(diag.location.column);
    json.key("message");
    json.value(diag.message);
    if (!diag.fixit.empty()) {
      json.key("fixit");
      json.value(diag.fixit);
    }
    if (!diag.related.empty()) {
      json.key("related");
      json.begin_array();
      for (const RelatedLocation& related : diag.related) {
        json.begin_object();
        json.key("file");
        json.value(related.location.file);
        json.key("line");
        json.value(related.location.line);
        json.key("column");
        json.value(related.location.column);
        json.key("message");
        json.value(related.message);
        json.end_object();
      }
      json.end_array();
    }
    json.end_object();
  }
  json.end_array();
  json.key("counts");
  json.begin_object();
  json.key("errors");
  json.value(errors);
  json.key("warnings");
  json.value(warnings);
  json.key("notes");
  json.value(notes);
  json.end_object();
  json.end_object();
  return std::move(json).str();
}

std::string to_sarif(std::span<const Diagnostic> diags) {
  const std::span<const RuleInfo> catalog = rule_catalog();
  JsonWriter json;
  json.begin_object();
  json.key("$schema");
  json.value(
      "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
      "Schemata/sarif-schema-2.1.0.json");
  json.key("version");
  json.value("2.1.0");
  json.key("runs");
  json.begin_array();
  json.begin_object();

  json.key("tool");
  json.begin_object();
  json.key("driver");
  json.begin_object();
  json.key("name");
  json.value("lrt_lint");
  json.key("version");
  json.value("1.0.0");
  json.key("informationUri");
  json.value("https://github.com/lrt/lrt#lrt-lint");
  json.key("rules");
  json.begin_array();
  for (const RuleInfo& rule : catalog) {
    json.begin_object();
    json.key("id");
    json.value(rule.id);
    json.key("name");
    json.value(rule.name);
    json.key("shortDescription");
    json.begin_object();
    json.key("text");
    json.value(rule.summary);
    json.end_object();
    json.key("defaultConfiguration");
    json.begin_object();
    json.key("level");
    json.value(sarif_level(rule.default_severity));
    json.end_object();
    json.end_object();
  }
  json.end_array();
  json.end_object();  // driver
  json.end_object();  // tool

  json.key("results");
  json.begin_array();
  for (const Diagnostic& diag : diags) {
    json.begin_object();
    json.key("ruleId");
    json.value(diag.rule_id);
    for (std::size_t i = 0; i < catalog.size(); ++i) {
      if (catalog[i].id == diag.rule_id) {
        json.key("ruleIndex");
        json.value(static_cast<std::int64_t>(i));
        break;
      }
    }
    json.key("level");
    json.value(sarif_level(diag.severity));
    json.key("message");
    json.begin_object();
    json.key("text");
    json.value(diag.message);
    json.end_object();
    json.key("locations");
    json.begin_array();
    json.begin_object();
    emit_physical_location(json, diag.location);
    json.end_object();  // location
    json.end_array();
    if (!diag.related.empty()) {
      json.key("relatedLocations");
      json.begin_array();
      for (const RelatedLocation& related : diag.related) {
        json.begin_object();
        emit_physical_location(json, related.location);
        json.key("message");
        json.begin_object();
        json.key("text");
        json.value(related.message);
        json.end_object();
        json.end_object();  // relatedLocation
      }
      json.end_array();
    }
    if (!diag.fixit.empty()) {
      json.key("properties");
      json.begin_object();
      json.key("fixit");
      json.value(diag.fixit);
      json.end_object();
    }
    json.end_object();  // result
  }
  json.end_array();

  json.end_object();  // run
  json.end_array();
  json.end_object();
  return std::move(json).str();
}

}  // namespace lrt::lint
