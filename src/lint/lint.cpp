#include "lint/lint.h"

#include <algorithm>
#include <cctype>
#include <charconv>

#include "htl/parser.h"
#include "lint/product_rules.h"

namespace lrt::lint {
namespace {

/// Extracts "line L:C" from a frontend error message, which the lexer,
/// parser, and compiler all emit as a prefix (satellite of this PR: every
/// compiler error path carries one).
SourceLocation locate_frontend_error(std::string_view message,
                                     const std::string& file) {
  SourceLocation location;
  location.file = file;
  const std::string_view prefix = "line ";
  const std::size_t start = message.find(prefix);
  if (start == std::string_view::npos) return location;
  const char* begin = message.data() + start + prefix.size();
  const char* end = message.data() + message.size();
  int line = 0;
  const auto [after_line, ec] = std::from_chars(begin, end, line);
  if (ec != std::errc() || line <= 0) return location;
  location.line = line;
  if (after_line < end && *after_line == ':') {
    int column = 0;
    const auto [_, ec2] = std::from_chars(after_line + 1, end, column);
    if (ec2 == std::errc() && column > 0) location.column = column;
  }
  return location;
}

/// Drops a leading "line L[:C]: " from a frontend message — redundant
/// once locate_frontend_error has turned it into a structured location.
std::string strip_location_prefix(std::string_view message) {
  const std::string_view prefix = "line ";
  if (message.substr(0, prefix.size()) != prefix) {
    return std::string(message);
  }
  std::size_t i = prefix.size();
  const auto skip_digits = [&message, &i] {
    const std::size_t start = i;
    while (i < message.size() &&
           std::isdigit(static_cast<unsigned char>(message[i])) != 0) {
      ++i;
    }
    return i > start;
  };
  if (!skip_digits()) return std::string(message);
  if (i < message.size() && message[i] == ':') {
    const std::size_t before_column = i;
    ++i;
    if (!skip_digits()) i = before_column;
  }
  if (message.substr(i, 2) != ": ") return std::string(message);
  return std::string(message.substr(i + 2));
}

Status configure_engine(DiagnosticEngine& engine,
                        const LintOptions& options) {
  for (const std::string& flag : options.rule_flags) {
    const std::size_t eq = flag.find('=');
    const std::string_view key =
        std::string_view(flag).substr(0, std::min(eq, flag.size()));
    if (find_rule(key) == nullptr) {
      return NotFoundError("rule flag '" + flag +
                           "' names no known rule (see rule_catalog())");
    }
    LRT_RETURN_IF_ERROR(engine.configure_flag(flag));
  }
  return Status::Ok();
}

void run_ast_passes(const htl::ProgramAst& program,
                    const SourceLocation& origin, DiagnosticEngine& engine) {
  check_write_races(program, origin, engine);
  check_duplicate_write_ports(program, origin, engine);
  check_missing_defaults(program, origin, engine);
  check_period_mismatch(program, origin, engine);
  check_unreachable_modes(program, origin, engine);
  check_dead_communicators(program, origin, engine);
}

LintResult finish(DiagnosticEngine& engine, bool flattened,
                  bool arch_checked, const ProductStats& stats = {}) {
  engine.sort_and_dedupe();
  LintResult result;
  result.diagnostics = engine.take();
  result.flattened = flattened;
  result.arch_checked = arch_checked;
  result.product_nodes = stats.product_nodes;
  result.fixpoint_iterations = stats.fixpoint_iterations;
  return result;
}

/// Reports a frontend failure as LRT000 — unless an AST pass already
/// produced an error explaining why the program is ill-formed, in which
/// case the redundant Status text would only repeat it with less context.
void report_frontend_failure(const Status& status, const std::string& file,
                             DiagnosticEngine& engine) {
  if (engine.error_count() > 0) return;
  report_rule(engine, kRuleCompileError,
              locate_frontend_error(status.message(), file),
              strip_location_prefix(status.message()));
}

/// Flushes the per-run "lint.*" counters and hands `result` back
/// unchanged; every public entry point counts exactly once.
Result<LintResult> with_counters(const obs::Sink* sink,
                                 Result<LintResult> result) {
  if (sink != nullptr && result.ok()) {
    sink->counter_add("lint.runs");
    sink->counter_add("lint.diagnostics",
                      static_cast<std::int64_t>(result->diagnostics.size()));
    sink->counter_add("lint.errors", result->errors());
    sink->counter_add("lint.warnings", result->warnings());
    sink->counter_add("lint.product_nodes", result->product_nodes);
    sink->counter_add("lint.fixpoint_iterations",
                      result->fixpoint_iterations);
  }
  return result;
}

}  // namespace

int LintResult::count(Severity severity) const {
  return static_cast<int>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [severity](const Diagnostic& diag) {
                      return diag.severity == severity;
                    }));
}

Result<LintResult> run(const htl::ProgramAst& program,
                       const spec::Specification* spec,
                       const arch::Architecture* arch,
                       const LintOptions& options) {
  const obs::Sink* sink = obs::resolve_sink(options.sink);
  const obs::SpanGuard span(sink, "lint", "run");
  DiagnosticEngine engine;
  LRT_RETURN_IF_ERROR(configure_engine(engine, options));
  const SourceLocation origin{options.file, 0, 0};
  run_ast_passes(program, origin, engine);
  ProductStats stats;
  run_product_passes(program, arch, {options.max_product_nodes}, origin,
                     engine, &stats);
  if (spec != nullptr) {
    check_cycles(program, *spec, origin, engine);
    if (arch != nullptr) {
      check_lrc_feasibility(program, *spec, *arch, origin, engine);
    }
  }
  return with_counters(
      sink, finish(engine, spec != nullptr, spec != nullptr && arch != nullptr,
                   stats));
}

namespace {

/// The flatten-and-lint pipeline; lint_program() wraps it with
/// observability.
Result<LintResult> lint_program_impl(const htl::ProgramAst& program,
                                     const LintOptions& options) {
  DiagnosticEngine engine;
  LRT_RETURN_IF_ERROR(configure_engine(engine, options));
  const SourceLocation origin{options.file, 0, 0};
  run_ast_passes(program, origin, engine);

  ProductStats stats;
  const auto product_passes = [&](const arch::Architecture* arch_ptr) {
    run_product_passes(program, arch_ptr, {options.max_product_nodes},
                       origin, engine, &stats);
  };

  auto spec = htl::flatten(program, /*functions=*/{}, options.selection);
  if (!spec.ok()) {
    product_passes(nullptr);
    report_frontend_failure(spec.status(), options.file, engine);
    return finish(engine, /*flattened=*/false, /*arch_checked=*/false,
                  stats);
  }
  check_cycles(program, *spec, origin, engine);

  if (!program.architecture.has_value()) {
    product_passes(nullptr);
    return finish(engine, /*flattened=*/true, /*arch_checked=*/false, stats);
  }
  arch::ArchitectureConfig config;
  config.name = program.name + "_arch";
  for (const htl::HostAst& host : program.architecture->hosts) {
    config.hosts.push_back({host.name, host.reliability});
  }
  for (const htl::SensorAst& sensor : program.architecture->sensors) {
    config.sensors.push_back({sensor.name, sensor.reliability});
  }
  auto arch = arch::Architecture::Build(std::move(config));
  if (!arch.ok()) {
    product_passes(nullptr);
    report_frontend_failure(arch.status(), options.file, engine);
    return finish(engine, /*flattened=*/true, /*arch_checked=*/false, stats);
  }
  product_passes(&*arch);
  check_lrc_feasibility(program, *spec, *arch, origin, engine);
  return finish(engine, /*flattened=*/true, /*arch_checked=*/true, stats);
}

}  // namespace

Result<LintResult> lint_program(const htl::ProgramAst& program,
                                const LintOptions& options) {
  const obs::Sink* sink = obs::resolve_sink(options.sink);
  const obs::SpanGuard span(sink, "lint", "run");
  return with_counters(sink, lint_program_impl(program, options));
}

Result<LintResult> lint_source(std::string_view source,
                               const LintOptions& options) {
  auto program = htl::parse(source);
  if (!program.ok()) {
    const obs::Sink* sink = obs::resolve_sink(options.sink);
    const obs::SpanGuard span(sink, "lint", "run");
    DiagnosticEngine engine;
    LRT_RETURN_IF_ERROR(configure_engine(engine, options));
    report_rule(
        engine, kRuleCompileError,
        locate_frontend_error(program.status().message(), options.file),
        strip_location_prefix(program.status().message()));
    return with_counters(
        sink, finish(engine, /*flattened=*/false, /*arch_checked=*/false));
  }
  return lint_program(*program, options);
}

}  // namespace lrt::lint
