// Structured diagnostics for lrt-lint (DESIGN.md section 5d).
//
// A Diagnostic is one finding of one rule at one source location; the
// DiagnosticEngine collects them, applying per-rule configuration
// (enable/disable and severity overrides) before a finding is recorded.
// Rules themselves live in lint/rules.h; this layer is policy-free and is
// what later PRs' new rules plug into.
#ifndef LRT_LINT_DIAGNOSTIC_H_
#define LRT_LINT_DIAGNOSTIC_H_

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "support/status.h"

namespace lrt::lint {

/// Severity of a diagnostic. kOff is only meaningful as a per-rule
/// configuration value ("silence this rule"), never on a recorded
/// diagnostic.
enum class Severity {
  kOff = 0,
  kNote,     ///< stylistic or informational; never fails a gate
  kWarning,  ///< likely mistake; gate-neutral by default
  kError,    ///< violates a paper precondition or makes analysis vacuous
};

std::string_view to_string(Severity severity);

/// Parses "off", "note", "warning", or "error".
[[nodiscard]] std::optional<Severity> parse_severity(std::string_view text);

/// A position in an HTL source file. line/column are 1-based; 0 means
/// "whole file" (used for findings without a syntactic anchor).
struct SourceLocation {
  std::string file;
  int line = 0;
  int column = 0;

  /// "file:line:col" (omitting zero components).
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const SourceLocation&,
                         const SourceLocation&) = default;
};

/// A secondary source location attached to a finding — the other racing
/// writer, one hop of the switch path that reaches an uninitialized read.
/// Rendered as SARIF relatedLocations and as indented "related:" lines in
/// text output.
struct RelatedLocation {
  SourceLocation location;
  std::string message;

  friend bool operator==(const RelatedLocation&,
                         const RelatedLocation&) = default;
};

/// One mechanical edit a rule can attach to its finding, precise enough
/// for lint::apply_fixits to execute. Anchored at a (line, column) the
/// parser recorded (statement keyword or port name); the applier scans
/// the source text for the statement/port extent, so edits stay valid
/// across reformatting.
struct FixEdit {
  enum class Kind {
    /// Delete from the anchor through the statement's closing ';'.
    kDeleteStatement,
    /// Insert `text` immediately before the statement's closing ';'.
    kInsertBeforeStatementEnd,
    /// Delete the `name[instance]` port at the anchor plus one adjoining
    /// list comma.
    kDeletePortRef,
  };
  Kind kind = Kind::kDeleteStatement;
  int line = 0;
  int column = 0;
  std::string text;  ///< only for kInsertBeforeStatementEnd

  friend bool operator==(const FixEdit&, const FixEdit&) = default;
};

/// One finding: a rule id + severity + location + message, with an
/// optional fix-it hint ("add 'defaults (...)'") for tooling.
struct Diagnostic {
  std::string rule_id;    ///< e.g. "LRT001"
  std::string rule_name;  ///< e.g. "race-write-write"
  Severity severity = Severity::kWarning;
  SourceLocation location;
  std::string message;
  std::string fixit;  ///< empty when the rule has no mechanical fix
  /// Secondary locations that complete the finding (may be empty).
  std::vector<RelatedLocation> related;
  /// Machine-applicable edits realizing `fixit` (may be empty).
  std::vector<FixEdit> edits;

  /// "file:line:col: severity: message [rule_id]".
  [[nodiscard]] std::string to_string() const;
};

/// Collects diagnostics, applying per-rule configuration before recording.
///
/// Configuration is keyed by rule id or rule name; a rule may be disabled
/// outright or have its severity overridden (e.g. promote a warning to an
/// error for a strict CI gate).
class DiagnosticEngine {
 public:
  struct RuleConfig {
    bool enabled = true;
    /// Overrides the diagnostic's default severity when set.
    std::optional<Severity> severity;
  };

  /// Sets the configuration for one rule (by id or name, per the caller's
  /// key choice; lint::run resolves names to ids first).
  void configure(std::string_view rule_key, RuleConfig config);

  /// Parses a "<rule>=<severity|off>" flag, e.g. "LRT004=off" or
  /// "race-write-write=error". The rule key is validated by the caller
  /// (lint::run) against the rule catalog.
  Status configure_flag(std::string_view flag);

  /// Records `diag` unless its rule is disabled; returns true iff
  /// recorded. A configured severity override is applied first.
  bool report(Diagnostic diag);

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diagnostics_;
  }
  /// Moves the collected diagnostics out, leaving the engine empty.
  [[nodiscard]] std::vector<Diagnostic> take() {
    return std::move(diagnostics_);
  }

  /// Stable-sorts by (file, line, column, rule id).
  void sort_by_location();

  /// sort_by_location() plus removal of identical findings — overlapping
  /// passes (e.g. the per-mode and mode-product race checks) may report
  /// the same (rule, location, message) twice; renderers and gates see
  /// each finding once. Deterministic: the first (lowest-sorted) copy
  /// survives.
  void sort_and_dedupe();

  [[nodiscard]] int count(Severity severity) const;
  [[nodiscard]] int error_count() const {
    return count(Severity::kError);
  }
  [[nodiscard]] int warning_count() const {
    return count(Severity::kWarning);
  }

 private:
  [[nodiscard]] const RuleConfig* config_for(const Diagnostic& diag) const;

  std::unordered_map<std::string, RuleConfig> configs_;
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace lrt::lint

#endif  // LRT_LINT_DIAGNOSTIC_H_
