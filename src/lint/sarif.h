// Output renderers for lrt-lint diagnostics: compiler-style text, a
// compact tool-native JSON document, and SARIF 2.1.0 (the Static Analysis
// Results Interchange Format, OASIS standard) for CI upload and code
// scanning services.
#ifndef LRT_LINT_SARIF_H_
#define LRT_LINT_SARIF_H_

#include <span>
#include <string>

#include "lint/diagnostic.h"

namespace lrt::lint {

/// "file:line:col: severity: message [id]" lines, one per diagnostic,
/// each followed by an indented "fix-it:" line when the rule has one.
[[nodiscard]] std::string render_text(std::span<const Diagnostic> diags);

/// {diagnostics: [{rule, name, severity, file, line, column, message,
/// fixit}], counts: {errors, warnings, notes}}.
[[nodiscard]] std::string to_json(std::span<const Diagnostic> diags);

/// A complete SARIF 2.1.0 document with one run: the lrt_lint driver with
/// the full rule catalog (id, name, descriptions, default level) and one
/// result per diagnostic carrying its physical location.
[[nodiscard]] std::string to_sarif(std::span<const Diagnostic> diags);

}  // namespace lrt::lint

#endif  // LRT_LINT_SARIF_H_
