#include "lint/product_rules.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "htl/compiler.h"
#include "htl/queries.h"
#include "lint/dataflow.h"
#include "lint/rules.h"
#include "support/strings.h"
#include "synth/synthesis.h"

namespace lrt::lint {
namespace {

SourceLocation at(const SourceLocation& origin, int line, int column) {
  return {origin.file, line, column};
}

/// The switch path start -> node as related locations, one per hop.
std::vector<RelatedLocation> path_related(const FlowGraph& graph,
                                          const htl::ProgramAst& program,
                                          const SourceLocation& origin,
                                          int node) {
  std::vector<RelatedLocation> related;
  for (const ProductEdge* hop : graph.path_to(node)) {
    related.push_back(
        {at(origin, hop->edge->line, hop->edge->column),
         "module '" +
             program.modules[static_cast<std::size_t>(hop->module)].name +
             "' switches on '" + hop->edge->condition + "' to mode '" +
             hop->edge->target + "' here"});
  }
  return related;
}

/// LRT011: two tasks of different modules writing the same communicator
/// while their modes are co-active in some reachable combination. The
/// per-mode LRT001 pass assumes every invoked pair is co-invocable; this
/// is the precise version — a pair that only "races" behind a statically
/// dead switch does not fire here.
void check_cross_mode_races(const FlowGraph& graph,
                            const htl::ProgramAst& program,
                            const SourceLocation& origin,
                            DiagnosticEngine& engine) {
  const auto module_name = [&program](int m) -> const std::string& {
    return program.modules[static_cast<std::size_t>(m)].name;
  };
  // (comm, writer A, writer B) pairs already reported, by name so the
  // key order is deterministic.
  std::set<std::tuple<int, std::string, std::string>> reported;
  for (std::size_t id = 0; id < graph.nodes().size(); ++id) {
    const ProductNode& node = graph.nodes()[id];
    // Writes grouped per communicator, in timeline order.
    std::map<int, std::vector<const CommAccess*>> writes;
    for (const CommAccess& access : node.accesses) {
      if (access.is_write) writes[access.comm].push_back(&access);
    }
    for (const auto& [comm, accesses] : writes) {
      for (std::size_t i = 0; i < accesses.size(); ++i) {
        for (std::size_t j = i + 1; j < accesses.size(); ++j) {
          const CommAccess& a = *accesses[i];
          const CommAccess& b = *accesses[j];
          if (a.module == b.module) continue;  // LRT001's in-module beat
          std::string key_a = module_name(a.module) + "." + a.task->name;
          std::string key_b = module_name(b.module) + "." + b.task->name;
          if (key_b < key_a) std::swap(key_a, key_b);
          if (!reported.insert({comm, key_a, key_b}).second) continue;
          const std::string& name =
              graph.comm_names()[static_cast<std::size_t>(comm)];
          const bool same_instance = a.instance == b.instance;
          Diagnostic diag;
          diag.location = at(origin, b.line, b.column);
          diag.message =
              (same_instance
                   ? "write-write race on '" + name + "[" +
                         std::to_string(b.instance) + "]'"
                   : "communicator '" + name + "' has two writers") +
              " in reachable mode combination " +
              graph.describe(static_cast<int>(id)) + ": task '" +
              a.task->name + "' (module '" + module_name(a.module) +
              "') and task '" + b.task->name + "' (module '" +
              module_name(b.module) + "')";
          diag.fixit =
              "route one of the writers through a separate communicator";
          diag.related.push_back(
              {at(origin, a.line, a.column),
               "the other writer: task '" + a.task->name + "' writes '" +
                   name + "' here"});
          report_rule(engine, kRuleCrossModeRace, std::move(diag));
        }
      }
    }
  }
}

/// LRT012: a read that some switch path can reach before any task has
/// written the communicator (forward may analysis of "possibly
/// unwritten"). Reads co-located with a write of the same communicator
/// are fine (the init-read idiom); communicators nobody ever writes are
/// sensor inputs or LRT005/LRT006 territory, not path findings.
std::int64_t check_read_never_written(const FlowGraph& graph,
                                      const htl::ProgramAst& program,
                                      const SourceLocation& origin,
                                      DiagnosticEngine& engine) {
  const std::size_t universe = graph.comm_names().size();
  const MayLattice lattice{universe};
  const auto result = solve(
      graph.graph(), Direction::kForward, lattice, {0},
      CommSet::all(universe), [&graph](int node, const CommSet& in) {
        CommSet out = in;
        out.subtract(graph.nodes()[static_cast<std::size_t>(node)].writes);
        return out;
      });

  // Sensor-bound communicators are written by the environment.
  std::set<std::string_view> sensor_bound;
  if (program.mapping.has_value()) {
    for (const htl::BindAst& bind : program.mapping->binds) {
      sensor_bound.insert(bind.communicator);
    }
  }

  std::set<int> reported;
  for (std::size_t id = 0; id < graph.nodes().size(); ++id) {
    const ProductNode& node = graph.nodes()[id];
    for (const CommAccess& access : node.accesses) {
      if (access.is_write || access.comm < 0) continue;
      const auto comm = static_cast<std::size_t>(access.comm);
      if (!result.in[id].contains(comm)) continue;
      if (node.writes.contains(comm)) continue;  // init-read idiom
      const std::string& name = graph.comm_names()[comm];
      if (sensor_bound.count(name) != 0) continue;
      if (htl::writers_of(program, name).empty()) continue;
      if (!reported.insert(access.comm).second) continue;
      Diagnostic diag;
      diag.location = at(origin, access.line, access.column);
      diag.message =
          (access.is_guard
               ? "switch guard reads '" + name + "'"
               : "task '" + access.task->name + "' reads '" + name + "[" +
                     std::to_string(access.instance) + "]'") +
          " in mode combination " + graph.describe(static_cast<int>(id)) +
          ", but no task has written '" + name +
          "' on a path reaching it — the read sees only the declared init "
          "value";
      diag.fixit =
          "write the communicator before this combination is reachable, or "
          "make the init value the intended one";
      diag.related = path_related(graph, program, origin, static_cast<int>(id));
      report_rule(engine, kRuleReadNeverWritten, std::move(diag));
    }
  }
  return result.iterations;
}

/// LRT013: a write overwritten before any read on *every* path (backward
/// must analysis of "dead after this point"). Communicators read nowhere
/// in the program are excluded — that is LRT006's actuator-output note,
/// not a path finding.
std::int64_t check_dead_writes(const FlowGraph& graph,
                               const htl::ProgramAst& program,
                               const SourceLocation& origin,
                               DiagnosticEngine& engine) {
  const std::size_t universe = graph.comm_names().size();
  const MustLattice lattice{universe};
  const auto result = solve(
      graph.graph(), Direction::kBackward, lattice, {},
      CommSet::all(universe), [&graph](int node, const CommSet& in) {
        const ProductNode& product =
            graph.nodes()[static_cast<std::size_t>(node)];
        // Read here => live at entry; written (and not read) => dead.
        CommSet out = in;
        out.unite(product.writes);
        out.subtract(product.reads);
        return out;
      });

  std::set<std::string_view> read_somewhere;
  for (const htl::ModuleAst& module : program.modules) {
    for (const htl::TaskAst& task : module.tasks) {
      for (const htl::PortAst& port : task.inputs) {
        read_somewhere.insert(port.communicator);
      }
    }
    for (const htl::ModeAst& mode : module.modes) {
      for (const htl::SwitchAst& edge : mode.switches) {
        read_somewhere.insert(edge.condition);
      }
    }
  }

  std::set<std::tuple<int, std::string>> reported;
  for (std::size_t id = 0; id < graph.nodes().size(); ++id) {
    const ProductNode& node = graph.nodes()[id];
    for (const CommAccess& access : node.accesses) {
      if (!access.is_write || access.comm < 0) continue;
      const auto comm = static_cast<std::size_t>(access.comm);
      if (node.reads.contains(comm)) continue;
      // result.in[id] is the value at the node's exit for a backward
      // analysis: the communicators dead after this combination runs.
      if (!result.in[id].contains(comm)) continue;
      const std::string& name = graph.comm_names()[comm];
      if (read_somewhere.count(name) == 0) continue;
      if (!reported.insert({access.comm, access.task->name}).second) {
        continue;
      }
      Diagnostic diag;
      diag.location = at(origin, access.line, access.column);
      diag.message =
          "task '" + access.task->name + "' writes '" + name + "[" +
          std::to_string(access.instance) + "]' in mode combination " +
          graph.describe(static_cast<int>(id)) +
          ", but on every path the value is overwritten before any task or "
          "switch reads it — the computation is wasted";
      diag.fixit =
          "drop the output port or route the value to a reader before it "
          "is overwritten";
      diag.related = path_related(graph, program, origin,
                                  static_cast<int>(id));
      report_rule(engine, kRuleDeadWrite, std::move(diag));
    }
  }
  return result.iterations;
}

/// LRT014: (a) switch edges whose guard can never become true, and
/// (b) modes the per-module reachability (LRT009) accepts but that occur
/// in no reachable product node once dead edges are pruned.
void check_dead_switches(const FlowGraph& graph,
                         const htl::ProgramAst& program,
                         const SourceLocation& origin,
                         DiagnosticEngine& engine) {
  for (const FlowGraph::DeadSwitch& dead : graph.dead_switches()) {
    const htl::ModuleAst& module =
        program.modules[static_cast<std::size_t>(dead.module)];
    const htl::ModeAst& mode =
        module.modes[static_cast<std::size_t>(dead.mode)];
    Diagnostic diag;
    diag.location = at(origin, dead.edge->line, dead.edge->column);
    diag.message = "switch on '" + dead.edge->condition + "' to mode '" +
                   dead.edge->target + "' in mode '" + mode.name +
                   "' of module '" + module.name +
                   "' can never fire: the guard inits false and no "
                   "reachable task writes it";
    diag.fixit = "delete the switch, or write the guard communicator";
    diag.edits.push_back({FixEdit::Kind::kDeleteStatement, dead.edge->line,
                          dead.edge->column, ""});
    report_rule(engine, kRuleDeadSwitch, std::move(diag));
  }

  for (std::size_t m = 0; m < program.modules.size(); ++m) {
    const htl::ModuleAst& module = program.modules[m];
    if (module.modes.empty()) continue;
    // Raw per-module reachability, as LRT009 computes it; modes LRT009
    // already flags are not re-reported here.
    const htl::ModeAst* start = htl::start_mode(module);
    std::set<std::string_view> raw_reachable;
    std::vector<std::string_view> worklist = {start->name};
    while (!worklist.empty()) {
      const std::string_view current = worklist.back();
      worklist.pop_back();
      if (!raw_reachable.insert(current).second) continue;
      for (const htl::ModeAst& mode : module.modes) {
        if (mode.name != current) continue;
        for (const htl::SwitchAst& edge : mode.switches) {
          worklist.push_back(edge.target);
        }
      }
    }
    for (std::size_t i = 0; i < module.modes.size(); ++i) {
      const htl::ModeAst& mode = module.modes[i];
      if (raw_reachable.count(mode.name) == 0) continue;
      if (graph.mode_occurs(static_cast<int>(m), static_cast<int>(i))) {
        continue;
      }
      report_rule(engine, kRuleDeadSwitch,
                  at(origin, mode.line, mode.column),
                  "mode '" + mode.name + "' of module '" + module.name +
                      "' is unreachable in the mode product: every switch "
                      "path into it crosses a statically dead guard",
                  "write the guard communicators on the path, or remove "
                  "the mode");
    }
  }
}

/// LRT015: LRC feasibility per reachable mode combination. The start
/// combination is LRT004's job; this pass catches constraints that are
/// satisfiable there but not after a switch, because the combination
/// invokes a different (less replicable) task set.
void check_mode_lrc_feasibility(const FlowGraph& graph,
                                const htl::ProgramAst& program,
                                const arch::Architecture& arch,
                                const SourceLocation& origin,
                                DiagnosticEngine& engine) {
  std::vector<impl::ImplementationConfig::SensorBinding> bindings;
  if (program.mapping.has_value()) {
    for (const htl::BindAst& bind : program.mapping->binds) {
      bindings.push_back({bind.communicator, bind.sensor});
    }
  }

  // lrc-violating communicator names for one product node; empty result
  // for combinations the flattener rejects (other rules own those).
  const auto infeasible_comms = [&](std::size_t id) {
    std::vector<std::pair<std::string, std::string>> violations;
    const ProductNode& node = graph.nodes()[id];
    htl::ModeSelection selection;
    for (std::size_t m = 0; m < node.mode_of.size(); ++m) {
      if (node.mode_of[m] < 0) continue;
      selection.mode_by_module[program.modules[m].name] =
          program.modules[m]
              .modes[static_cast<std::size_t>(node.mode_of[m])]
              .name;
    }
    const auto spec = htl::flatten(program, /*functions=*/{}, selection);
    if (!spec.ok()) return violations;
    const auto ceiling = synth::max_achievable_srgs(*spec, arch, bindings);
    if (!ceiling.ok()) return violations;
    for (spec::CommId c = 0;
         c < static_cast<spec::CommId>(spec->communicators().size()); ++c) {
      const spec::Communicator& comm = spec->communicator(c);
      const double max_srg = (*ceiling)[static_cast<std::size_t>(c)];
      if (comm.lrc <= max_srg + 1e-12) continue;
      violations.emplace_back(comm.name,
                              "lrc " + format_double(comm.lrc) +
                                  " exceeds the achievable SRG ceiling " +
                                  format_double(max_srg));
    }
    return violations;
  };

  // Constraints already infeasible at the start combination are LRT004
  // findings; re-reporting them per node would only repeat the message.
  std::set<std::string> start_infeasible;
  for (const auto& [name, why] : infeasible_comms(0)) {
    start_infeasible.insert(name);
  }

  std::set<std::string> reported;
  for (std::size_t id = 1; id < graph.nodes().size(); ++id) {
    if (!graph.nodes()[id].harmonic) continue;  // LRT017's finding
    for (const auto& [name, why] : infeasible_comms(id)) {
      if (start_infeasible.count(name) != 0) continue;
      if (!reported.insert(name).second) continue;
      const htl::CommunicatorAst* comm =
          htl::find_communicator(program, name);
      Diagnostic diag;
      diag.location = comm != nullptr
                          ? at(origin, comm->line, comm->column)
                          : at(origin, 0, 0);
      diag.message = "communicator '" + name +
                     "' becomes infeasible in reachable mode combination " +
                     graph.describe(static_cast<int>(id)) + ": " + why +
                     " of full replication for that combination's task set";
      diag.fixit =
          "lower the lrc, strengthen the architecture, or make the "
          "combination unreachable";
      diag.related = path_related(graph, program, origin,
                                  static_cast<int>(id));
      report_rule(engine, kRuleModeLrcInfeasible, std::move(diag));
    }
  }
}

/// LRT016: a reachable mode that declares switches — it intends to move
/// on — all of whose guards are statically dead. Modes with no switches
/// are intentionally terminal and stay silent.
void check_switch_livelock(const FlowGraph& graph,
                           const htl::ProgramAst& program,
                           const SourceLocation& origin,
                           DiagnosticEngine& engine) {
  std::set<const htl::SwitchAst*> dead;
  for (const FlowGraph::DeadSwitch& entry : graph.dead_switches()) {
    dead.insert(entry.edge);
  }
  for (std::size_t m = 0; m < program.modules.size(); ++m) {
    const htl::ModuleAst& module = program.modules[m];
    for (std::size_t i = 0; i < module.modes.size(); ++i) {
      const htl::ModeAst& mode = module.modes[i];
      if (mode.switches.empty()) continue;
      if (!graph.mode_occurs(static_cast<int>(m), static_cast<int>(i))) {
        continue;
      }
      const bool all_dead =
          std::all_of(mode.switches.begin(), mode.switches.end(),
                      [&dead](const htl::SwitchAst& edge) {
                        return dead.count(&edge) != 0;
                      });
      if (!all_dead) continue;
      report_rule(engine, kRuleSwitchLivelock,
                  at(origin, mode.line, mode.column),
                  "mode '" + mode.name + "' of module '" + module.name +
                      "' declares " + std::to_string(mode.switches.size()) +
                      " switch(es) but every guard is statically dead; "
                      "once entered the mode can never be left",
                  "write one of the guard communicators, or drop the "
                  "switches if the mode is meant to be terminal");
    }
  }
}

/// LRT017: a reachable combination whose active mode periods disagree —
/// the flattening subset rejects it, so the switch leading there is a
/// latent compile error.
void check_period_disharmony(const FlowGraph& graph,
                             const htl::ProgramAst& program,
                             const SourceLocation& origin,
                             DiagnosticEngine& engine) {
  std::set<const htl::SwitchAst*> reported;
  for (std::size_t id = 0; id < graph.nodes().size(); ++id) {
    const ProductNode& node = graph.nodes()[id];
    if (node.harmonic) continue;
    std::vector<std::string> periods;
    for (std::size_t m = 0; m < node.mode_of.size(); ++m) {
      if (node.mode_of[m] < 0) continue;
      const htl::ModeAst& mode =
          program.modules[m].modes[static_cast<std::size_t>(node.mode_of[m])];
      periods.push_back(program.modules[m].name + "." + mode.name + "=" +
                        std::to_string(mode.period));
    }
    const auto path = graph.path_to(static_cast<int>(id));
    const htl::SwitchAst* entering =
        path.empty() ? nullptr : path.back()->edge;
    if (!reported.insert(entering).second) continue;
    Diagnostic diag;
    diag.location = entering != nullptr
                        ? at(origin, entering->line, entering->column)
                        : at(origin, 0, 0);
    diag.message =
        "switching reaches mode combination " +
        graph.describe(static_cast<int>(id)) +
        " whose mode periods disagree (" + join(periods, ", ") +
        "); the flattening subset requires equal periods across modules";
    diag.fixit = "align the mode periods or remove the switch path";
    diag.related = path_related(graph, program, origin, static_cast<int>(id));
    report_rule(engine, kRulePeriodDisharmony, std::move(diag));
  }
}

/// LRT018: static preconditions of refine::check_refinement on the
/// declared kappa — total on the refining program's tasks, a function,
/// and injective — plus dangling task names. Mirrors constraint (a) of
/// the paper's refinement rules so the full check fails with a source
/// location instead of a late Status.
void check_refinement_preconditions(const htl::ProgramAst& program,
                                    const SourceLocation& origin,
                                    DiagnosticEngine& engine) {
  if (!program.refines.has_value() && program.refinements.empty()) return;

  std::map<std::string_view, const htl::RefineAst*> by_local;
  std::map<std::string_view, const htl::RefineAst*> by_parent;
  for (const htl::RefineAst& decl : program.refinements) {
    if (const auto [it, inserted] = by_local.emplace(decl.local_task, &decl);
        !inserted) {
      Diagnostic diag;
      diag.location = at(origin, decl.line, decl.column);
      diag.message = "task '" + decl.local_task +
                     "' is mapped twice by refine declarations; kappa must "
                     "be a function";
      diag.fixit = "keep exactly one refine declaration per task";
      diag.related.push_back(
          {at(origin, it->second->line, it->second->column),
           "first mapped here, to parent task '" + it->second->parent_task +
               "'"});
      report_rule(engine, kRuleRefinementPrecheck, std::move(diag));
    }
    if (const auto [it, inserted] =
            by_parent.emplace(decl.parent_task, &decl);
        !inserted) {
      Diagnostic diag;
      diag.location = at(origin, decl.line, decl.column);
      diag.message = "parent task '" + decl.parent_task +
                     "' is the target of two refine declarations; kappa "
                     "must be injective (constraint a)";
      diag.fixit = "map each parent task from at most one local task";
      diag.related.push_back(
          {at(origin, it->second->line, it->second->column),
           "also targeted here, from task '" + it->second->local_task +
               "'"});
      report_rule(engine, kRuleRefinementPrecheck, std::move(diag));
    }
  }

  std::map<std::string_view, const htl::TaskAst*> tasks;
  for (const htl::ModuleAst& module : program.modules) {
    for (const htl::TaskAst& task : module.tasks) {
      tasks.emplace(task.name, &task);
    }
  }
  for (const htl::RefineAst& decl : program.refinements) {
    if (tasks.count(decl.local_task) != 0) continue;
    report_rule(engine, kRuleRefinementPrecheck,
                at(origin, decl.line, decl.column),
                "refine declaration names task '" + decl.local_task +
                    "', which no module declares",
                "fix the task name or delete the declaration");
  }
  if (program.refines.has_value()) {
    for (const htl::ModuleAst& module : program.modules) {
      for (const htl::TaskAst& task : module.tasks) {
        if (by_local.count(task.name) != 0) continue;
        report_rule(
            engine, kRuleRefinementPrecheck,
            at(origin, task.line, task.column),
            "task '" + task.name + "' has no refine declaration, but the "
                "program refines '" + *program.refines +
                "'; kappa must be total on the refining program's tasks",
            "add 'refine task " + task.name + " to <parent task>;'");
      }
    }
  }
}

}  // namespace

void run_product_passes(const htl::ProgramAst& program,
                        const arch::Architecture* arch,
                        const FlowGraphOptions& options,
                        const SourceLocation& origin, DiagnosticEngine& engine,
                        ProductStats* stats) {
  // The refinement precheck is whole-program but needs no product graph.
  check_refinement_preconditions(program, origin, engine);

  const FlowGraph graph = FlowGraph::build(program, options);
  if (stats != nullptr) {
    stats->product_nodes = static_cast<std::int64_t>(graph.nodes().size());
    stats->capped = graph.capped();
  }
  if (graph.capped()) {
    report_rule(engine, kRuleSupergraphCapped, at(origin, 0, 0),
                "the mode-product supergraph exceeded the cap of " +
                    std::to_string(options.max_nodes) +
                    " nodes; cross-mode rules LRT011-LRT017 were skipped "
                    "and only the per-module rules apply",
                "raise --max-product-nodes, or reduce the number of "
                "switch-reachable mode combinations");
    return;
  }
  if (graph.nodes().empty()) return;

  check_cross_mode_races(graph, program, origin, engine);
  std::int64_t iterations =
      check_read_never_written(graph, program, origin, engine);
  iterations += check_dead_writes(graph, program, origin, engine);
  if (stats != nullptr) stats->fixpoint_iterations = iterations;
  check_dead_switches(graph, program, origin, engine);
  check_switch_livelock(graph, program, origin, engine);
  check_period_disharmony(graph, program, origin, engine);
  if (arch != nullptr) {
    check_mode_lrc_feasibility(graph, program, *arch, origin, engine);
  }
}

}  // namespace lrt::lint
