// lrt-lint: multi-pass static analysis of HTL programs against the
// paper's preconditions (DESIGN.md section 5d).
//
// Three entry points, from most to least pre-digested input:
//   * run(program, spec, arch, options)    — lint an already-compiled
//     system; spec/arch may be null and the corresponding passes skip;
//   * lint_program(program, options)       — flatten and build the
//     architecture internally, converting frontend failures into LRT000
//     diagnostics instead of hard errors;
//   * lint_source(source, options)         — parse first; syntax errors
//     also become LRT000 diagnostics with their source location.
//
// The CLI (examples/lrt_lint.cpp) and the CI SARIF gate sit on
// lint_source; programmatic callers that already hold a CompiledSystem
// use run() directly.
#ifndef LRT_LINT_LINT_H_
#define LRT_LINT_LINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "arch/architecture.h"
#include "htl/ast.h"
#include "htl/compiler.h"
#include "lint/diagnostic.h"
#include "lint/rules.h"
#include "obs/sink.h"
#include "spec/specification.h"

namespace lrt::lint {

struct LintOptions {
  /// File name recorded in diagnostic locations.
  std::string file = "<input>";
  /// Mode selection for the flattening-level passes; unlisted modules use
  /// their start modes (matching htl::compile).
  htl::ModeSelection selection;
  /// Per-rule "<id-or-name>=<off|note|warning|error>" overrides.
  std::vector<std::string> rule_flags;
  /// Node cap for the mode-product supergraph the cross-mode passes
  /// (LRT011-LRT017) analyze. Exceeding it degrades those passes to the
  /// per-module rules and reports LRT019 — never a silent truncation.
  std::size_t max_product_nodes = 1024;
  /// Observability sink: per-run "lint.*" counters and a "lint.run" span.
  /// Null falls back to the process-global sink (null = disabled).
  obs::Sink* sink = nullptr;
};

struct LintResult {
  std::vector<Diagnostic> diagnostics;
  /// True when the flattening-level passes ran (the program flattened).
  bool flattened = false;
  /// True when the architecture-level passes ran.
  bool arch_checked = false;
  /// Reachable mode-product supergraph size and total dataflow fixpoint
  /// iterations of the cross-mode passes (the lint.product_nodes and
  /// lint.fixpoint_iterations observability counters).
  std::int64_t product_nodes = 0;
  std::int64_t fixpoint_iterations = 0;

  [[nodiscard]] int count(Severity severity) const;
  [[nodiscard]] int errors() const { return count(Severity::kError); }
  [[nodiscard]] int warnings() const { return count(Severity::kWarning); }
  /// No error-severity findings (the CI gate condition).
  [[nodiscard]] bool clean() const { return errors() == 0; }
};

/// Lints a parsed program plus optional flattened models. Null spec/arch
/// skip the corresponding passes (recorded in the result flags). Fails
/// only on invalid options (unknown rule in rule_flags).
[[nodiscard]] Result<LintResult> run(const htl::ProgramAst& program,
                                     const spec::Specification* spec,
                                     const arch::Architecture* arch,
                                     const LintOptions& options = {});

/// Flattens `program` (and builds its architecture block, if any), then
/// runs all applicable passes. Frontend failures become LRT000
/// diagnostics — unless an AST pass already explained the program's
/// rejection with a more precise finding.
[[nodiscard]] Result<LintResult> lint_program(
    const htl::ProgramAst& program, const LintOptions& options = {});

/// Parses `source` and lints it. Parse failures yield a single LRT000
/// diagnostic located from the parser's "line L:C:" message prefix.
[[nodiscard]] Result<LintResult> lint_source(
    std::string_view source, const LintOptions& options = {});

}  // namespace lrt::lint

#endif  // LRT_LINT_LINT_H_
