// A small generic dataflow fixpoint framework over the mode-product
// supergraph (DESIGN.md section 5i).
//
// The framework is deliberately classic: join-semilattice values,
// forward or backward propagation, and a worklist that always pops the
// smallest node id — so the iteration order (and therefore every
// diagnostic derived from an analysis result) is bit-stable across runs,
// platforms, and thread counts. May analyses use a union lattice seeded
// from empty sets (least fixpoint); must analyses use an intersection
// lattice seeded from the full universe (greatest fixpoint). Both
// terminate because the lattices are finite and the transfer functions
// monotone.
#ifndef LRT_LINT_DATAFLOW_H_
#define LRT_LINT_DATAFLOW_H_

#include <cstdint>
#include <set>
#include <vector>

namespace lrt::lint {

/// A directed graph over nodes 0..size()-1 with both adjacency
/// directions materialized (the solver walks one or the other depending
/// on the analysis direction).
struct Digraph {
  std::vector<std::vector<int>> succ;
  std::vector<std::vector<int>> pred;

  [[nodiscard]] int size() const { return static_cast<int>(succ.size()); }

  void resize(int nodes) {
    succ.resize(static_cast<std::size_t>(nodes));
    pred.resize(static_cast<std::size_t>(nodes));
  }
  void add_edge(int from, int to) {
    succ[static_cast<std::size_t>(from)].push_back(to);
    pred[static_cast<std::size_t>(to)].push_back(from);
  }
};

enum class Direction { kForward, kBackward };

/// A fixed-size bitset over the program's communicators — the value
/// domain of every shipped analysis. Word-level ops keep the transfer
/// functions cheap even on wide programs.
class CommSet {
 public:
  CommSet() = default;
  explicit CommSet(std::size_t universe)
      : size_(universe), words_((universe + 63) / 64, 0) {}

  /// The full universe (top of the must lattice).
  static CommSet all(std::size_t universe) {
    CommSet set(universe);
    for (std::size_t i = 0; i < universe; ++i) set.insert(i);
    return set;
  }

  [[nodiscard]] std::size_t universe() const { return size_; }

  void insert(std::size_t i) {
    words_[i / 64] |= std::uint64_t{1} << (i % 64);
  }
  void erase(std::size_t i) {
    words_[i / 64] &= ~(std::uint64_t{1} << (i % 64));
  }
  [[nodiscard]] bool contains(std::size_t i) const {
    return (words_[i / 64] >> (i % 64) & 1) != 0;
  }

  /// this |= other; returns true iff this changed.
  bool unite(const CommSet& other) {
    bool changed = false;
    for (std::size_t w = 0; w < words_.size(); ++w) {
      const std::uint64_t merged = words_[w] | other.words_[w];
      changed |= merged != words_[w];
      words_[w] = merged;
    }
    return changed;
  }
  /// this &= other; returns true iff this changed.
  bool intersect(const CommSet& other) {
    bool changed = false;
    for (std::size_t w = 0; w < words_.size(); ++w) {
      const std::uint64_t met = words_[w] & other.words_[w];
      changed |= met != words_[w];
      words_[w] = met;
    }
    return changed;
  }
  /// this &= ~other.
  void subtract(const CommSet& other) {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      words_[w] &= ~other.words_[w];
    }
  }

  friend bool operator==(const CommSet&, const CommSet&) = default;

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

/// The ascending members of `set`, for deterministic reporting.
[[nodiscard]] std::vector<std::size_t> members(const CommSet& set);

/// May lattice: join is set union, the seed is the empty set.
struct MayLattice {
  std::size_t universe = 0;
  using Value = CommSet;
  [[nodiscard]] Value initial() const { return CommSet(universe); }
  // NOLINTNEXTLINE(readability-convert-member-functions-to-static)
  bool join(Value& into, const Value& from) const { return into.unite(from); }
};

/// Must lattice: join is set intersection, the seed is the universe.
struct MustLattice {
  std::size_t universe = 0;
  using Value = CommSet;
  [[nodiscard]] Value initial() const { return CommSet::all(universe); }
  // NOLINTNEXTLINE(readability-convert-member-functions-to-static)
  bool join(Value& into, const Value& from) const {
    return into.intersect(from);
  }
};

template <typename Lattice>
struct FixpointResult {
  /// Value at node entry (forward) / node exit (backward) — the joined
  /// value the transfer function was applied to.
  std::vector<typename Lattice::Value> in;
  /// Value after the node's transfer function.
  std::vector<typename Lattice::Value> out;
  /// Transfer-function applications until the fixpoint (the
  /// lint.fixpoint_iterations observability counter).
  std::int64_t iterations = 0;
};

/// Solves the dataflow instance to its fixpoint. `boundary` is joined
/// into the input of every node listed in `boundary_nodes` (the
/// execution entry for a forward analysis, the exits for a backward
/// one) — an explicit list because in a graph where every node has a
/// self-loop no node is structurally an entry. `transfer` is any
/// callable `Value(int node, const Value& in)` and must be monotone.
template <typename Lattice, typename Transfer>
FixpointResult<Lattice> solve(const Digraph& graph, Direction direction,
                              const Lattice& lattice,
                              const std::vector<int>& boundary_nodes,
                              const typename Lattice::Value& boundary,
                              Transfer&& transfer) {
  const int n = graph.size();
  const auto& flow_pred =
      direction == Direction::kForward ? graph.pred : graph.succ;
  const auto& flow_succ =
      direction == Direction::kForward ? graph.succ : graph.pred;

  std::vector<bool> is_boundary(static_cast<std::size_t>(n), false);
  for (const int node : boundary_nodes) {
    is_boundary[static_cast<std::size_t>(node)] = true;
  }

  FixpointResult<Lattice> result;
  result.in.assign(static_cast<std::size_t>(n), lattice.initial());
  result.out.assign(static_cast<std::size_t>(n), lattice.initial());

  // Smallest-id-first worklist: deterministic pop order regardless of
  // how edges happened to be inserted.
  std::set<int> worklist;
  for (int node = 0; node < n; ++node) worklist.insert(node);

  while (!worklist.empty()) {
    const int node = *worklist.begin();
    worklist.erase(worklist.begin());
    const auto index = static_cast<std::size_t>(node);

    // Recompute the node's input from scratch: the boundary (if this is
    // a boundary node) joined with the flow-predecessors' outputs.
    typename Lattice::Value in = lattice.initial();
    if (is_boundary[index]) lattice.join(in, boundary);
    for (const int pred : flow_pred[index]) {
      lattice.join(in, result.out[static_cast<std::size_t>(pred)]);
    }
    result.in[index] = std::move(in);

    typename Lattice::Value next = transfer(node, result.in[index]);
    ++result.iterations;
    if (next == result.out[index]) continue;
    result.out[index] = std::move(next);
    for (const int succ : flow_succ[index]) worklist.insert(succ);
  }
  return result;
}

}  // namespace lrt::lint

#endif  // LRT_LINT_DATAFLOW_H_
