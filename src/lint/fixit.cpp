#include "lint/fixit.h"

#include <algorithm>
#include <cctype>
#include <optional>
#include <string>
#include <tuple>

namespace lrt::lint {
namespace {

/// One resolved edit: replace source[start, end) with `replacement`.
struct Splice {
  std::size_t start = 0;
  std::size_t end = 0;
  std::string replacement;

  friend bool operator==(const Splice&, const Splice&) = default;
};

bool is_space(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}
bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Byte offset of 1-based (line, column), or nullopt when outside the
/// text. Column 0 means "start of line".
std::optional<std::size_t> offset_of(std::string_view source, int line,
                                     int column) {
  if (line <= 0) return std::nullopt;
  std::size_t offset = 0;
  for (int current = 1; current < line; ++current) {
    const std::size_t newline = source.find('\n', offset);
    if (newline == std::string_view::npos) return std::nullopt;
    offset = newline + 1;
  }
  const std::size_t target =
      offset + static_cast<std::size_t>(std::max(column - 1, 0));
  if (target > source.size()) return std::nullopt;
  return target;
}

/// Resolves one FixEdit to a concrete splice, or nullopt when the
/// expected syntax is not at the anchor (the edit is then skipped).
std::optional<Splice> resolve(std::string_view source, const FixEdit& edit,
                              std::size_t anchor) {
  switch (edit.kind) {
    case FixEdit::Kind::kDeleteStatement: {
      const std::size_t semi = source.find(';', anchor);
      if (semi == std::string_view::npos) return std::nullopt;
      std::size_t start = anchor;
      std::size_t end = semi + 1;
      // Take the whole line when nothing else lives on it.
      std::size_t line_start = start;
      while (line_start > 0 && source[line_start - 1] != '\n') --line_start;
      std::size_t line_end = end;
      while (line_end < source.size() && source[line_end] != '\n') {
        ++line_end;
      }
      const auto blank = [&source](std::size_t from, std::size_t to) {
        for (std::size_t i = from; i < to; ++i) {
          if (!is_space(source[i])) return false;
        }
        return true;
      };
      if (blank(line_start, start) && blank(end, line_end)) {
        start = line_start;
        end = line_end < source.size() ? line_end + 1 : line_end;
      }
      return Splice{start, end, ""};
    }
    case FixEdit::Kind::kInsertBeforeStatementEnd: {
      const std::size_t semi = source.find(';', anchor);
      if (semi == std::string_view::npos) return std::nullopt;
      return Splice{semi, semi, edit.text};
    }
    case FixEdit::Kind::kDeletePortRef: {
      std::size_t end = anchor;
      while (end < source.size() && is_ident(source[end])) ++end;
      if (end == anchor) return std::nullopt;  // no identifier here
      std::size_t cursor = end;
      while (cursor < source.size() && is_space(source[cursor])) ++cursor;
      if (cursor >= source.size() || source[cursor] != '[') {
        return std::nullopt;
      }
      const std::size_t close = source.find(']', cursor);
      if (close == std::string_view::npos) return std::nullopt;
      end = close + 1;
      // Swallow one list comma: the preceding one if present, else the
      // following one — so "(a, b)" minus b is "(a)" and minus a too.
      std::size_t start = anchor;
      std::size_t before = start;
      while (before > 0 && is_space(source[before - 1])) --before;
      if (before > 0 && source[before - 1] == ',') {
        start = before - 1;
      } else {
        std::size_t after = end;
        while (after < source.size() && is_space(source[after])) ++after;
        if (after < source.size() && source[after] == ',') {
          end = after + 1;
          while (end < source.size() && source[end] == ' ') ++end;
        }
      }
      return Splice{start, end, ""};
    }
  }
  return std::nullopt;
}

}  // namespace

Result<FixResult> apply_fixits(std::string_view source,
                               const std::vector<Diagnostic>& diagnostics) {
  FixResult result;
  std::vector<Splice> splices;
  for (const Diagnostic& diag : diagnostics) {
    for (const FixEdit& edit : diag.edits) {
      const auto anchor = offset_of(source, edit.line, edit.column);
      if (!anchor.has_value()) {
        return InvalidArgumentError(
            "fix-it anchor " + std::to_string(edit.line) + ":" +
            std::to_string(edit.column) +
            " lies outside the source text; the diagnostics were not "
            "produced from this source");
      }
      const auto splice = resolve(source, edit, *anchor);
      if (!splice.has_value()) {
        ++result.skipped;
        continue;
      }
      splices.push_back(*splice);
    }
  }

  // Identical edits (e.g. the same deletion attached to two findings)
  // collapse to one; overlapping distinct edits are applied first-wins.
  std::sort(splices.begin(), splices.end(),
            [](const Splice& a, const Splice& b) {
              return std::tie(a.start, a.end, a.replacement) <
                     std::tie(b.start, b.end, b.replacement);
            });
  splices.erase(std::unique(splices.begin(), splices.end()), splices.end());

  std::string text(source);
  // Back-to-front, so earlier offsets never shift.
  std::size_t applied_start = text.size() + 1;
  for (auto it = splices.rbegin(); it != splices.rend(); ++it) {
    const bool pure_insert = it->start == it->end;
    const bool overlaps = pure_insert ? it->start > applied_start
                                      : it->end > applied_start;
    if (overlaps) {
      ++result.skipped;
      continue;
    }
    text.replace(it->start, it->end - it->start, it->replacement);
    ++result.applied;
    applied_start = it->start;
  }
  result.text = std::move(text);
  return result;
}

}  // namespace lrt::lint
