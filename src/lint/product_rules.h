// The cross-mode lint passes (LRT011-LRT019): whole-program rules that
// analyze the mode-product supergraph (lint/flowgraph.h) with the
// dataflow fixpoint framework (lint/dataflow.h) instead of looking at
// one mode or one module at a time. See DESIGN.md section 5i.
//
// The passes need only a parsed program; the architecture (when given)
// additionally enables the per-combination LRC feasibility probe
// (LRT015). When the supergraph exceeds its node cap the product-graph
// rules step aside and the degradation itself is reported as LRT019 —
// never silently.
#ifndef LRT_LINT_PRODUCT_RULES_H_
#define LRT_LINT_PRODUCT_RULES_H_

#include <cstdint>

#include "arch/architecture.h"
#include "htl/ast.h"
#include "lint/diagnostic.h"
#include "lint/flowgraph.h"

namespace lrt::lint {

/// Whole-program analysis volume, surfaced as the lint.product_nodes and
/// lint.fixpoint_iterations observability counters.
struct ProductStats {
  std::int64_t product_nodes = 0;
  std::int64_t fixpoint_iterations = 0;
  bool capped = false;
};

/// Runs LRT011-LRT019 over `program`. `arch` may be null (LRT015 is
/// skipped without one). `stats` may be null.
void run_product_passes(const htl::ProgramAst& program,
                        const arch::Architecture* arch,
                        const FlowGraphOptions& options,
                        const SourceLocation& origin, DiagnosticEngine& engine,
                        ProductStats* stats);

}  // namespace lrt::lint

#endif  // LRT_LINT_PRODUCT_RULES_H_
