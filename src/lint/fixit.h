// Applies the structured FixEdits attached to diagnostics to HTL source
// text — the engine behind `lrt_lint --fix`.
//
// Edits are anchored at parser-recorded (line, column) positions (the
// statement keyword or the port name token); the applier scans the text
// for the statement or port extent, so an edit stays valid however the
// source is formatted. Edits are applied back-to-front so earlier
// offsets never shift, and overlapping edits are skipped (counted, not
// silently dropped) — re-running lint after a fix pass converges on the
// remainder.
#ifndef LRT_LINT_FIXIT_H_
#define LRT_LINT_FIXIT_H_

#include <string>
#include <string_view>
#include <vector>

#include "lint/diagnostic.h"
#include "support/status.h"

namespace lrt::lint {

struct FixResult {
  std::string text;  ///< the source with edits applied
  int applied = 0;
  int skipped = 0;  ///< overlapping or unresolvable edits left in place
};

/// Applies every edit carried by `diagnostics` to `source`. Returns an
/// error only when an anchor lies outside the text (which indicates the
/// diagnostics came from different source); unresolvable single edits
/// are skipped and counted instead.
[[nodiscard]] Result<FixResult> apply_fixits(
    std::string_view source, const std::vector<Diagnostic>& diagnostics);

}  // namespace lrt::lint

#endif  // LRT_LINT_FIXIT_H_
