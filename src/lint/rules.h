// The lrt-lint rule catalog and the analysis passes behind it.
//
// Rules verify the paper's preconditions *before* analysis or synthesis
// runs, with source-located diagnostics instead of late Status failures:
// Proposition 1 certifies reliability only for memory-free (or cycle-safe),
// race-free specifications, and synthesis can only ever reach the SRG
// ceiling of full replication — so races, unsafe cycles, and infeasible
// LRCs are reported here, at the declaration that causes them.
//
// Passes run at three levels:
//   * AST passes need only a parsed program (they survive programs the
//     flattener rejects — which is the point for race detection);
//   * specification passes run on the flattened spec::Specification and
//     surface the spec_graph cycle analyses as diagnostics;
//   * architecture passes additionally need the architecture (and use the
//     synthesis feasibility probe for the LRC ceiling).
#ifndef LRT_LINT_RULES_H_
#define LRT_LINT_RULES_H_

#include <span>
#include <string_view>

#include "arch/architecture.h"
#include "htl/ast.h"
#include "lint/diagnostic.h"
#include "spec/specification.h"

namespace lrt::lint {

/// Catalog entry for one rule: stable id, human name, default severity,
/// and a one-line rationale (with the paper reference where applicable).
struct RuleInfo {
  std::string_view id;
  std::string_view name;
  Severity default_severity = Severity::kWarning;
  std::string_view summary;
};

// Rule ids (stable; new rules append, ids are never reused).
inline constexpr std::string_view kRuleCompileError = "LRT000";
inline constexpr std::string_view kRuleWriteRace = "LRT001";
inline constexpr std::string_view kRuleMemoryCycle = "LRT002";
inline constexpr std::string_view kRuleUnsafeCycle = "LRT003";
inline constexpr std::string_view kRuleLrcInfeasible = "LRT004";
inline constexpr std::string_view kRuleDeadCommunicator = "LRT005";
inline constexpr std::string_view kRuleNeverReadOutput = "LRT006";
inline constexpr std::string_view kRuleMissingDefault = "LRT007";
inline constexpr std::string_view kRulePeriodMismatch = "LRT008";
inline constexpr std::string_view kRuleUnreachableMode = "LRT009";
inline constexpr std::string_view kRuleDuplicateWritePort = "LRT010";
inline constexpr std::string_view kRuleCrossModeRace = "LRT011";
inline constexpr std::string_view kRuleReadNeverWritten = "LRT012";
inline constexpr std::string_view kRuleDeadWrite = "LRT013";
inline constexpr std::string_view kRuleDeadSwitch = "LRT014";
inline constexpr std::string_view kRuleModeLrcInfeasible = "LRT015";
inline constexpr std::string_view kRuleSwitchLivelock = "LRT016";
inline constexpr std::string_view kRulePeriodDisharmony = "LRT017";
inline constexpr std::string_view kRuleRefinementPrecheck = "LRT018";
inline constexpr std::string_view kRuleSupergraphCapped = "LRT019";

/// All known rules, in id order.
[[nodiscard]] std::span<const RuleInfo> rule_catalog();

/// Looks a rule up by id ("LRT004") or name ("lrc-infeasible").
[[nodiscard]] const RuleInfo* find_rule(std::string_view id_or_name);

/// Reports `diag`'s rule at its catalog default severity. Convenience for
/// rule implementations; the engine may still override or suppress.
bool report_rule(DiagnosticEngine& engine, std::string_view rule_id,
                 SourceLocation location, std::string message,
                 std::string fixit = "");

/// Same, for findings carrying related locations or structured edits:
/// fills `diag`'s rule_name and default severity from the catalog and
/// reports it. `diag.rule_id` is overwritten with `rule_id`.
bool report_rule(DiagnosticEngine& engine, std::string_view rule_id,
                 Diagnostic diag);

// --- AST passes (no flattened specification required) ---

/// LRT001: write-write races on communicator instances, and two
/// co-invocable tasks writing the same communicator at all (the paper's
/// rule 3 / Prop. 1 race-freedom precondition). Co-invocable means: both
/// invoked by one mode, or invoked by modes of different modules.
void check_write_races(const htl::ProgramAst& program,
                       const SourceLocation& origin,
                       DiagnosticEngine& engine);

/// LRT010: one task writing the same communicator instance twice (rule 4).
void check_duplicate_write_ports(const htl::ProgramAst& program,
                                 const SourceLocation& origin,
                                 DiagnosticEngine& engine);

/// LRT007: parallel/independent-model tasks whose inputs have no explicit
/// defaults — the flattener silently substitutes zero values, which is
/// almost never the intended degraded-mode behaviour.
void check_missing_defaults(const htl::ProgramAst& program,
                            const SourceLocation& origin,
                            DiagnosticEngine& engine);

/// LRT008: a mode invoking a task whose communicator's period does not
/// divide the mode period (instances drift across periods), or whose port
/// instance lies beyond the mode period.
void check_period_mismatch(const htl::ProgramAst& program,
                           const SourceLocation& origin,
                           DiagnosticEngine& engine);

/// LRT009: modes not reachable from the start mode via switch edges.
void check_unreachable_modes(const htl::ProgramAst& program,
                             const SourceLocation& origin,
                             DiagnosticEngine& engine);

/// LRT005 + LRT006: communicators never accessed by any task or switch
/// (dead), and task outputs never read anywhere (actuator candidates;
/// reported as notes).
void check_dead_communicators(const htl::ProgramAst& program,
                              const SourceLocation& origin,
                              DiagnosticEngine& engine);

// --- specification passes ---

/// LRT002 + LRT003: surfaces the spec_graph cycle analyses. Every
/// communicator cycle is reported (LRT002, warning: the specification has
/// memory, so Prop. 1 does not apply directly); if some cycle contains no
/// independent-model task the SRG induction is ill-founded and the
/// long-run reliability is 0 (LRT003, error).
void check_cycles(const htl::ProgramAst& program,
                  const spec::Specification& spec,
                  const SourceLocation& origin, DiagnosticEngine& engine);

// --- architecture passes ---

/// LRT004: mu_c exceeds the SRG ceiling lambda_c of full replication on
/// the declared architecture — no mapping (and no synthesis result) can
/// ever satisfy the constraint.
void check_lrc_feasibility(const htl::ProgramAst& program,
                           const spec::Specification& spec,
                           const arch::Architecture& arch,
                           const SourceLocation& origin,
                           DiagnosticEngine& engine);

}  // namespace lrt::lint

#endif  // LRT_LINT_RULES_H_
