#include "lint/flowgraph.h"

#include <algorithm>
#include <deque>
#include <map>
#include <numeric>

#include "htl/queries.h"

namespace lrt::lint {
namespace {

spec::Time lcm_time(spec::Time a, spec::Time b) {
  if (a <= 0) a = 1;
  if (b <= 0) b = 1;
  return a / std::gcd(a, b) * b;
}

bool access_before(const CommAccess& a, const CommAccess& b) {
  if (a.time != b.time) return a.time < b.time;
  if (a.is_write != b.is_write) return !a.is_write;
  if (a.module != b.module) return a.module < b.module;
  if (a.comm != b.comm) return a.comm < b.comm;
  return a.instance < b.instance;
}

}  // namespace

int FlowGraph::comm_index(std::string_view name) const {
  for (std::size_t i = 0; i < comm_names_.size(); ++i) {
    if (comm_names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

bool FlowGraph::mode_occurs(int module, int mode) const {
  for (const ProductNode& node : nodes_) {
    if (node.mode_of[static_cast<std::size_t>(module)] == mode) return true;
  }
  return false;
}

std::string FlowGraph::describe(int id) const {
  const ProductNode& node = nodes_[static_cast<std::size_t>(id)];
  std::string out = "(";
  bool first = true;
  for (std::size_t m = 0; m < node.mode_of.size(); ++m) {
    const int mode = node.mode_of[m];
    if (mode < 0) continue;
    if (!first) out += ", ";
    first = false;
    out += program_->modules[m].name;
    out += '=';
    out += program_->modules[m].modes[static_cast<std::size_t>(mode)].name;
  }
  out += ')';
  return out;
}

std::vector<const ProductEdge*> FlowGraph::path_to(int id) const {
  std::vector<const ProductEdge*> path;
  int node = id;
  while (node > 0) {
    const int edge = discovered_by_[static_cast<std::size_t>(node)];
    if (edge < 0) break;
    path.push_back(&edges_[static_cast<std::size_t>(edge)]);
    node = edges_[static_cast<std::size_t>(edge)].from;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

FlowGraph FlowGraph::build(const htl::ProgramAst& program,
                           const FlowGraphOptions& options) {
  FlowGraph fg;
  fg.program_ = &program;

  // Fix the communicator universe up front (CommSet widths depend on it):
  // declarations first, then ports and guards in first-reference order.
  auto add_comm = [&fg](const std::string& name) {
    if (fg.comm_index(name) < 0) fg.comm_names_.push_back(name);
  };
  for (const htl::CommunicatorAst& comm : program.communicators) {
    add_comm(comm.name);
  }
  for (const htl::ModuleAst& module : program.modules) {
    for (const htl::TaskAst& task : module.tasks) {
      for (const htl::PortAst& port : task.inputs) add_comm(port.communicator);
      for (const htl::PortAst& port : task.outputs) add_comm(port.communicator);
    }
    for (const htl::ModeAst& mode : module.modes) {
      for (const htl::SwitchAst& edge : mode.switches) add_comm(edge.condition);
    }
  }
  const std::size_t universe = fg.comm_names_.size();

  // Start tuple; modules without modes hold index -1 (inactive).
  std::vector<int> start(program.modules.size(), -1);
  bool any_mode = false;
  for (std::size_t m = 0; m < program.modules.size(); ++m) {
    const htl::ModeAst* mode = htl::start_mode(program.modules[m]);
    if (mode == nullptr) continue;
    start[m] = static_cast<int>(mode - program.modules[m].modes.data());
    any_mode = true;
  }
  if (!any_mode) return fg;

  const auto make_node = [&](const std::vector<int>& mode_of) {
    ProductNode node;
    node.mode_of = mode_of;
    node.reads = CommSet(universe);
    node.writes = CommSet(universe);
    spec::Time common = 0;
    for (std::size_t m = 0; m < mode_of.size(); ++m) {
      if (mode_of[m] < 0) continue;
      const htl::ModuleAst& module = program.modules[m];
      const htl::ModeAst& mode =
          module.modes[static_cast<std::size_t>(mode_of[m])];
      if (common == 0) {
        common = mode.period;
      } else if (common != mode.period) {
        node.harmonic = false;
      }
      node.hyper_period = lcm_time(node.hyper_period, mode.period);
      for (const std::string& invoke : mode.invokes) {
        const htl::TaskAst* task = htl::find_task(module, invoke);
        if (task == nullptr) continue;
        const auto add_port = [&](const htl::PortAst& port, bool is_write) {
          CommAccess access;
          access.comm = fg.comm_index(port.communicator);
          access.instance = port.instance;
          const htl::CommunicatorAst* comm =
              htl::find_communicator(program, port.communicator);
          access.time = port.instance * (comm != nullptr ? comm->period : 1);
          access.is_write = is_write;
          access.module = static_cast<int>(m);
          access.task = task;
          access.line = port.line;
          access.column = port.column;
          node.accesses.push_back(access);
          if (access.comm >= 0) {
            const auto index = static_cast<std::size_t>(access.comm);
            if (is_write) {
              node.writes.insert(index);
            } else {
              node.reads.insert(index);
            }
          }
        };
        for (const htl::PortAst& port : task->inputs) add_port(port, false);
        for (const htl::PortAst& port : task->outputs) add_port(port, true);
      }
      // Every declared switch evaluates its guard at the end of the mode
      // period, dead or not.
      for (const htl::SwitchAst& edge : mode.switches) {
        CommAccess access;
        access.comm = fg.comm_index(edge.condition);
        access.time = mode.period;
        access.is_guard = true;
        access.module = static_cast<int>(m);
        access.line = edge.line;
        access.column = edge.column;
        node.accesses.push_back(access);
        if (access.comm >= 0) {
          node.reads.insert(static_cast<std::size_t>(access.comm));
        }
      }
    }
    std::stable_sort(node.accesses.begin(), node.accesses.end(),
                     access_before);
    return node;
  };

  // Initial guard feasibility: declared-init true or written anywhere.
  std::map<const htl::SwitchAst*, bool> enabled;
  for (const htl::ModuleAst& module : program.modules) {
    for (const htl::ModeAst& mode : module.modes) {
      for (const htl::SwitchAst& edge : mode.switches) {
        enabled[&edge] = htl::guard_info(program, edge).statically_enabled();
      }
    }
  }

  // Expand the reachable product under the current guard set, then
  // re-derive feasibility from what the *reachable* nodes actually write;
  // repeat until the (monotonically shrinking) guard set is stable.
  while (true) {
    fg.nodes_.clear();
    fg.edges_.clear();
    fg.discovered_by_.clear();
    fg.capped_ = false;

    std::map<std::vector<int>, int> id_of;
    id_of[start] = 0;
    fg.nodes_.push_back(make_node(start));
    fg.discovered_by_.push_back(-1);
    std::deque<int> bfs{0};
    while (!bfs.empty() && !fg.capped_) {
      const int current = bfs.front();
      bfs.pop_front();
      const std::vector<int> mode_of =
          fg.nodes_[static_cast<std::size_t>(current)].mode_of;
      for (std::size_t m = 0; m < mode_of.size(); ++m) {
        if (mode_of[m] < 0) continue;
        const htl::ModuleAst& module = program.modules[m];
        const htl::ModeAst& mode =
            module.modes[static_cast<std::size_t>(mode_of[m])];
        for (const htl::SwitchAst& edge : mode.switches) {
          if (!enabled[&edge]) continue;
          const htl::ModeAst* target = htl::find_mode(module, edge.target);
          if (target == nullptr) continue;  // LRT-frontend territory
          std::vector<int> next = mode_of;
          next[m] = static_cast<int>(target - module.modes.data());
          auto [it, inserted] =
              id_of.try_emplace(next, static_cast<int>(fg.nodes_.size()));
          if (inserted) {
            if (fg.nodes_.size() >= options.max_nodes) {
              id_of.erase(it);
              fg.capped_ = true;
              break;
            }
            fg.nodes_.push_back(make_node(next));
            fg.discovered_by_.push_back(static_cast<int>(fg.edges_.size()));
            bfs.push_back(it->second);
          }
          fg.edges_.push_back({current, it->second, static_cast<int>(m),
                               &edge});
        }
        if (fg.capped_) break;
      }
    }
    if (fg.capped_) break;

    CommSet written(universe);
    for (const ProductNode& node : fg.nodes_) written.unite(node.writes);
    bool changed = false;
    for (auto& [edge, is_enabled] : enabled) {
      if (!is_enabled) continue;
      const htl::GuardInfo info = htl::guard_info(program, *edge);
      if (info.condition == nullptr || info.init_true) continue;
      const int comm = fg.comm_index(edge->condition);
      if (comm < 0 || !written.contains(static_cast<std::size_t>(comm))) {
        is_enabled = false;
        changed = true;
      }
    }
    if (!changed) break;
  }

  for (const htl::ModuleAst& module : program.modules) {
    const auto module_index =
        static_cast<int>(&module - program.modules.data());
    for (const htl::ModeAst& mode : module.modes) {
      const auto mode_index = static_cast<int>(&mode - module.modes.data());
      for (const htl::SwitchAst& edge : mode.switches) {
        if (!enabled[&edge]) {
          fg.dead_switches_.push_back({module_index, mode_index, &edge});
        }
      }
    }
  }

  fg.graph_.resize(static_cast<int>(fg.nodes_.size()));
  for (int node = 0; node < fg.graph_.size(); ++node) {
    // Staying in the current mode combination is always a possible step.
    fg.graph_.add_edge(node, node);
  }
  for (const ProductEdge& edge : fg.edges_) {
    fg.graph_.add_edge(edge.from, edge.to);
  }
  return fg;
}

}  // namespace lrt::lint
