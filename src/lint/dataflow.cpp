#include "lint/dataflow.h"

namespace lrt::lint {

std::vector<std::size_t> members(const CommSet& set) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < set.universe(); ++i) {
    if (set.contains(i)) out.push_back(i);
  }
  return out;
}

}  // namespace lrt::lint
