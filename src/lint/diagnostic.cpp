#include "lint/diagnostic.h"

#include <algorithm>
#include <tuple>

namespace lrt::lint {

std::string_view to_string(Severity severity) {
  switch (severity) {
    case Severity::kOff: return "off";
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

std::optional<Severity> parse_severity(std::string_view text) {
  if (text == "off") return Severity::kOff;
  if (text == "note") return Severity::kNote;
  if (text == "warning") return Severity::kWarning;
  if (text == "error") return Severity::kError;
  return std::nullopt;
}

std::string SourceLocation::to_string() const {
  std::string out = file;
  if (line > 0) {
    out += ":" + std::to_string(line);
    if (column > 0) out += ":" + std::to_string(column);
  }
  return out;
}

std::string Diagnostic::to_string() const {
  std::string out = location.to_string();
  if (!out.empty()) out += ": ";
  out += std::string(lint::to_string(severity)) + ": " + message + " [" +
         rule_id + "]";
  return out;
}

void DiagnosticEngine::configure(std::string_view rule_key,
                                 RuleConfig config) {
  configs_[std::string(rule_key)] = config;
}

Status DiagnosticEngine::configure_flag(std::string_view flag) {
  const std::size_t eq = flag.find('=');
  if (eq == std::string_view::npos || eq == 0 || eq + 1 >= flag.size()) {
    return InvalidArgumentError("rule flag '" + std::string(flag) +
                                "' is not of the form <rule>=<severity>");
  }
  const std::string_view key = flag.substr(0, eq);
  const auto severity = parse_severity(flag.substr(eq + 1));
  if (!severity.has_value()) {
    return InvalidArgumentError(
        "rule flag '" + std::string(flag) +
        "' has unknown severity (want off, note, warning, or error)");
  }
  RuleConfig config;
  if (*severity == Severity::kOff) {
    config.enabled = false;
  } else {
    config.severity = *severity;
  }
  configure(key, config);
  return Status::Ok();
}

const DiagnosticEngine::RuleConfig* DiagnosticEngine::config_for(
    const Diagnostic& diag) const {
  auto it = configs_.find(diag.rule_id);
  if (it == configs_.end()) it = configs_.find(diag.rule_name);
  return it == configs_.end() ? nullptr : &it->second;
}

bool DiagnosticEngine::report(Diagnostic diag) {
  if (const RuleConfig* config = config_for(diag)) {
    if (!config->enabled) return false;
    if (config->severity.has_value()) diag.severity = *config->severity;
  }
  diagnostics_.push_back(std::move(diag));
  return true;
}

void DiagnosticEngine::sort_by_location() {
  std::stable_sort(diagnostics_.begin(), diagnostics_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return std::tie(a.location.file, a.location.line,
                                     a.location.column, a.rule_id) <
                            std::tie(b.location.file, b.location.line,
                                     b.location.column, b.rule_id);
                   });
}

void DiagnosticEngine::sort_and_dedupe() {
  // Refines sort_by_location's key with (message, fixit) so identical
  // findings are adjacent even when a different message shares their
  // location, then drops exact duplicates.
  std::stable_sort(diagnostics_.begin(), diagnostics_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return std::tie(a.location.file, a.location.line,
                                     a.location.column, a.rule_id, a.message,
                                     a.fixit) <
                            std::tie(b.location.file, b.location.line,
                                     b.location.column, b.rule_id, b.message,
                                     b.fixit);
                   });
  const auto last = std::unique(
      diagnostics_.begin(), diagnostics_.end(),
      [](const Diagnostic& a, const Diagnostic& b) {
        return a.rule_id == b.rule_id && a.severity == b.severity &&
               a.location.file == b.location.file &&
               a.location.line == b.location.line &&
               a.location.column == b.location.column &&
               a.message == b.message && a.fixit == b.fixit &&
               a.related == b.related && a.edits == b.edits;
      });
  diagnostics_.erase(last, diagnostics_.end());
}

int DiagnosticEngine::count(Severity severity) const {
  return static_cast<int>(
      std::count_if(diagnostics_.begin(), diagnostics_.end(),
                    [severity](const Diagnostic& diag) {
                      return diag.severity == severity;
                    }));
}

}  // namespace lrt::lint
