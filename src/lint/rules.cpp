#include "lint/rules.h"

#include <algorithm>
#include <array>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "spec/spec_graph.h"
#include "support/strings.h"
#include "synth/synthesis.h"

namespace lrt::lint {
namespace {

constexpr std::array<RuleInfo, 20> kCatalog = {{
    {kRuleCompileError, "compile-error", Severity::kError,
     "the HTL frontend rejected the program; lint passes that need the "
     "flattened specification were skipped"},
    {kRuleWriteRace, "race-write-write", Severity::kError,
     "two co-invocable tasks write the same communicator (instance) — "
     "Prop. 1 certifies reliability only for race-free specifications "
     "(rule 3)"},
    {kRuleMemoryCycle, "memory-cycle", Severity::kWarning,
     "the specification has a communicator cycle (memory), so Prop. 1 "
     "does not apply directly (Section 3)"},
    {kRuleUnsafeCycle, "unsafe-cycle", Severity::kError,
     "a communicator cycle contains no independent-model task: the SRG "
     "induction is ill-founded and the long-run reliability is 0"},
    {kRuleLrcInfeasible, "lrc-infeasible", Severity::kError,
     "mu_c exceeds the SRG ceiling of full replication on the declared "
     "architecture — no mapping can satisfy the constraint"},
    {kRuleDeadCommunicator, "dead-communicator", Severity::kWarning,
     "communicator is never read, written, or used as a switch condition"},
    {kRuleNeverReadOutput, "never-read-output", Severity::kNote,
     "task output communicator is never read — expected for actuator "
     "outputs, dead weight otherwise"},
    {kRuleMissingDefault, "missing-default", Severity::kWarning,
     "parallel/independent-model task declares no defaults; the compiler "
     "substitutes zeros, which is rarely the intended degraded value"},
    {kRulePeriodMismatch, "period-mismatch", Severity::kError,
     "communicator period does not divide the invoking mode period, or a "
     "port instance lies beyond the mode period"},
    {kRuleUnreachableMode, "unreachable-mode", Severity::kWarning,
     "mode is not reachable from the start mode via switches"},
    {kRuleDuplicateWritePort, "duplicate-write-port", Severity::kError,
     "a task writes the same communicator instance more than once "
     "(rule 4)"},
    {kRuleCrossModeRace, "cross-mode-race", Severity::kError,
     "in a reachable mode combination, tasks of different modules write "
     "the same communicator — the whole-program refinement of LRT001 over "
     "the mode-product supergraph"},
    {kRuleReadNeverWritten, "read-never-written", Severity::kWarning,
     "a communicator can be read before any task has written it on some "
     "switch path from the start modes (may analysis); the reader sees "
     "only the declared init value"},
    {kRuleDeadWrite, "dead-write", Severity::kWarning,
     "a write is overwritten before any task or switch reads it on every "
     "switch path (must analysis) — the computation is wasted"},
    {kRuleDeadSwitch, "dead-switch", Severity::kWarning,
     "a switch guard can never become true (init false and no reachable "
     "writer), or a mode never appears in any reachable mode combination"},
    {kRuleModeLrcInfeasible, "mode-lrc-infeasible", Severity::kError,
     "a reachable mode combination has an LRC above its SRG ceiling of "
     "full replication — entering it makes the constraint unsatisfiable "
     "even though the start combination is feasible"},
    {kRuleSwitchLivelock, "switch-livelock", Severity::kWarning,
     "a reachable mode declares switches but every guard is statically "
     "dead — the mode can never be left despite trying to"},
    {kRulePeriodDisharmony, "switch-period-disharmony", Severity::kError,
     "switching leads to a reachable mode combination with unequal mode "
     "periods, which the flattening subset rejects"},
    {kRuleRefinementPrecheck, "refinement-precheck", Severity::kWarning,
     "the refine declarations cannot form a valid task-map kappa "
     "(total, functional, injective), so check_refinement must fail"},
    {kRuleSupergraphCapped, "supergraph-capped", Severity::kNote,
     "the mode-product supergraph exceeded the node cap; cross-mode rules "
     "LRT011-LRT017 degraded to per-module analysis"},
}};

SourceLocation at(const SourceLocation& origin, int line, int column) {
  return {origin.file, line, column};
}

/// Name -> declaration lookup for communicators.
std::map<std::string_view, const htl::CommunicatorAst*> comm_index(
    const htl::ProgramAst& program) {
  std::map<std::string_view, const htl::CommunicatorAst*> index;
  for (const htl::CommunicatorAst& comm : program.communicators) {
    index.emplace(comm.name, &comm);
  }
  return index;
}

/// Name -> declaration lookup for one module's tasks.
std::map<std::string_view, const htl::TaskAst*> task_index(
    const htl::ModuleAst& module) {
  std::map<std::string_view, const htl::TaskAst*> index;
  for (const htl::TaskAst& task : module.tasks) {
    index.emplace(task.name, &task);
  }
  return index;
}

/// All tasks of `module` invoked by at least one of its modes.
std::vector<const htl::TaskAst*> invoked_tasks(
    const htl::ModuleAst& module) {
  const auto index = task_index(module);
  std::set<const htl::TaskAst*> seen;
  std::vector<const htl::TaskAst*> tasks;
  for (const htl::ModeAst& mode : module.modes) {
    for (const std::string& name : mode.invokes) {
      const auto it = index.find(name);
      if (it != index.end() && seen.insert(it->second).second) {
        tasks.push_back(it->second);
      }
    }
  }
  return tasks;
}

/// Reports LRT001 findings for one co-invocable task pair.
void report_pair_races(const htl::TaskAst& first, const htl::TaskAst& second,
                       std::string_view how, const SourceLocation& origin,
                       DiagnosticEngine& engine) {
  std::map<std::string_view, const htl::PortAst*> first_writes;
  for (const htl::PortAst& port : first.outputs) {
    first_writes.emplace(port.communicator, &port);
  }
  std::set<std::string_view> reported;
  for (const htl::PortAst& port : second.outputs) {
    const auto it = first_writes.find(port.communicator);
    if (it == first_writes.end()) continue;
    if (!reported.insert(port.communicator).second) continue;
    const bool same_instance = std::any_of(
        first.outputs.begin(), first.outputs.end(),
        [&port](const htl::PortAst& other) {
          return other.communicator == port.communicator &&
                 other.instance == port.instance;
        });
    std::string message =
        same_instance
            ? "write-write race on communicator instance '" +
                  port.communicator + "[" + std::to_string(port.instance) +
                  "]': "
            : "communicator '" + port.communicator +
                  "' has two writers (rule 3): ";
    message += "task '" + first.name + "' (line " +
               std::to_string(it->second->line) + ") and task '" +
               second.name + "' " + std::string(how);
    Diagnostic diag;
    diag.location = at(origin, port.line, port.column);
    diag.message = std::move(message);
    diag.fixit = "route one of the writers through a separate communicator";
    diag.related.push_back(
        {at(origin, it->second->line, it->second->column),
         "the other writer: task '" + first.name + "' writes '" +
             port.communicator + "' here"});
    report_rule(engine, kRuleWriteRace, std::move(diag));
  }
}

}  // namespace

std::span<const RuleInfo> rule_catalog() { return kCatalog; }

const RuleInfo* find_rule(std::string_view id_or_name) {
  for (const RuleInfo& rule : kCatalog) {
    if (rule.id == id_or_name || rule.name == id_or_name) return &rule;
  }
  return nullptr;
}

bool report_rule(DiagnosticEngine& engine, std::string_view rule_id,
                 Diagnostic diag) {
  const RuleInfo* rule = find_rule(rule_id);
  diag.rule_id = std::string(rule_id);
  diag.rule_name = rule != nullptr ? std::string(rule->name) : "";
  diag.severity =
      rule != nullptr ? rule->default_severity : Severity::kWarning;
  return engine.report(std::move(diag));
}

bool report_rule(DiagnosticEngine& engine, std::string_view rule_id,
                 SourceLocation location, std::string message,
                 std::string fixit) {
  Diagnostic diag;
  diag.location = std::move(location);
  diag.message = std::move(message);
  diag.fixit = std::move(fixit);
  return report_rule(engine, rule_id, std::move(diag));
}

void check_write_races(const htl::ProgramAst& program,
                       const SourceLocation& origin,
                       DiagnosticEngine& engine) {
  // Within a module, tasks co-execute iff one mode invokes both; across
  // modules every invoked pair can co-execute (one mode runs per module).
  for (const htl::ModuleAst& module : program.modules) {
    const auto index = task_index(module);
    for (const htl::ModeAst& mode : module.modes) {
      for (std::size_t i = 0; i < mode.invokes.size(); ++i) {
        for (std::size_t j = i + 1; j < mode.invokes.size(); ++j) {
          const auto a = index.find(mode.invokes[i]);
          const auto b = index.find(mode.invokes[j]);
          if (a == index.end() || b == index.end()) continue;
          report_pair_races(*a->second, *b->second,
                            "(both invoked by mode '" + mode.name + "')",
                            origin, engine);
        }
      }
    }
  }
  for (std::size_t m1 = 0; m1 < program.modules.size(); ++m1) {
    const auto tasks1 = invoked_tasks(program.modules[m1]);
    for (std::size_t m2 = m1 + 1; m2 < program.modules.size(); ++m2) {
      const auto tasks2 = invoked_tasks(program.modules[m2]);
      for (const htl::TaskAst* t1 : tasks1) {
        for (const htl::TaskAst* t2 : tasks2) {
          report_pair_races(
              *t1, *t2,
              "(modules '" + program.modules[m1].name + "' and '" +
                  program.modules[m2].name + "' run concurrently)",
              origin, engine);
        }
      }
    }
  }
}

void check_duplicate_write_ports(const htl::ProgramAst& program,
                                 const SourceLocation& origin,
                                 DiagnosticEngine& engine) {
  for (const htl::ModuleAst& module : program.modules) {
    for (const htl::TaskAst& task : module.tasks) {
      std::set<std::pair<std::string_view, std::int64_t>> seen;
      for (const htl::PortAst& port : task.outputs) {
        if (seen.emplace(port.communicator, port.instance).second) continue;
        Diagnostic diag;
        diag.location = at(origin, port.line, port.column);
        diag.message = "task '" + task.name + "' writes '" +
                       port.communicator + "[" +
                       std::to_string(port.instance) +
                       "]' more than once (rule 4)";
        diag.fixit = "drop the repeated output port";
        diag.edits.push_back(
            {FixEdit::Kind::kDeletePortRef, port.line, port.column, ""});
        report_rule(engine, kRuleDuplicateWritePort, std::move(diag));
      }
    }
  }
}

void check_missing_defaults(const htl::ProgramAst& program,
                            const SourceLocation& origin,
                            DiagnosticEngine& engine) {
  const auto comms = comm_index(program);
  for (const htl::ModuleAst& module : program.modules) {
    for (const htl::TaskAst& task : module.tasks) {
      if (task.model == spec::FailureModel::kSeries) continue;
      if (!task.defaults.empty()) continue;
      Diagnostic diag;
      diag.location = at(origin, task.line, task.column);
      diag.message = "task '" + task.name + "' uses the " +
                     std::string(spec::to_string(task.model)) +
                     " input-failure model but declares no defaults; "
                     "unreliable inputs will be replaced by zeros";
      diag.fixit = "add 'defaults (...)' with one literal per input port";
      if (!task.inputs.empty()) {
        // The mechanical edit spells out the zeros the compiler would
        // substitute, making the degraded values explicit and editable.
        std::vector<std::string> zeros;
        zeros.reserve(task.inputs.size());
        for (const htl::PortAst& port : task.inputs) {
          const auto it = comms.find(port.communicator);
          const spec::ValueType type = it != comms.end()
                                           ? it->second->type
                                           : spec::ValueType::kReal;
          switch (type) {
            case spec::ValueType::kReal: zeros.emplace_back("0.0"); break;
            case spec::ValueType::kInt: zeros.emplace_back("0"); break;
            case spec::ValueType::kBool: zeros.emplace_back("false"); break;
          }
        }
        diag.edits.push_back({FixEdit::Kind::kInsertBeforeStatementEnd,
                              task.line, task.column,
                              " defaults (" + join(zeros, ", ") + ")"});
      }
      report_rule(engine, kRuleMissingDefault, std::move(diag));
    }
  }
}

void check_period_mismatch(const htl::ProgramAst& program,
                           const SourceLocation& origin,
                           DiagnosticEngine& engine) {
  const auto comms = comm_index(program);
  for (const htl::ModuleAst& module : program.modules) {
    const auto tasks = task_index(module);
    for (const htl::ModeAst& mode : module.modes) {
      if (mode.period <= 0) continue;
      for (const std::string& name : mode.invokes) {
        const auto task_it = tasks.find(name);
        if (task_it == tasks.end()) continue;
        const htl::TaskAst& task = *task_it->second;
        const auto check_port = [&](const htl::PortAst& port) {
          const auto comm_it = comms.find(port.communicator);
          if (comm_it == comms.end()) return;
          const htl::CommunicatorAst& comm = *comm_it->second;
          if (comm.period <= 0) return;
          if (mode.period % comm.period != 0) {
            report_rule(
                engine, kRulePeriodMismatch,
                at(origin, port.line, port.column),
                "communicator '" + comm.name + "' (period " +
                    std::to_string(comm.period) +
                    ") does not divide the period " +
                    std::to_string(mode.period) + " of mode '" + mode.name +
                    "' invoking task '" + task.name +
                    "'; instances drift across mode periods",
                "make the mode period a multiple of the communicator "
                "period");
          } else if (port.instance * comm.period > mode.period) {
            report_rule(
                engine, kRulePeriodMismatch,
                at(origin, port.line, port.column),
                "port '" + comm.name + "[" + std::to_string(port.instance) +
                    "]' of task '" + task.name + "' lies at time " +
                    std::to_string(port.instance * comm.period) +
                    ", beyond the period " + std::to_string(mode.period) +
                    " of mode '" + mode.name + "'",
                "lower the instance or widen the mode period");
          }
        };
        for (const htl::PortAst& port : task.inputs) check_port(port);
        for (const htl::PortAst& port : task.outputs) check_port(port);
      }
    }
  }
}

void check_unreachable_modes(const htl::ProgramAst& program,
                             const SourceLocation& origin,
                             DiagnosticEngine& engine) {
  for (const htl::ModuleAst& module : program.modules) {
    if (module.modes.empty()) continue;
    const std::string& start = module.start_mode.empty()
                                   ? module.modes.front().name
                                   : module.start_mode;
    std::set<std::string_view> reachable;
    std::vector<std::string_view> worklist = {start};
    while (!worklist.empty()) {
      const std::string_view current = worklist.back();
      worklist.pop_back();
      if (!reachable.insert(current).second) continue;
      for (const htl::ModeAst& mode : module.modes) {
        if (mode.name != current) continue;
        for (const htl::SwitchAst& edge : mode.switches) {
          worklist.push_back(edge.target);
        }
      }
    }
    for (const htl::ModeAst& mode : module.modes) {
      if (reachable.count(mode.name) != 0) continue;
      report_rule(engine, kRuleUnreachableMode,
                  at(origin, mode.line, mode.column),
                  "mode '" + mode.name + "' of module '" + module.name +
                      "' is not reachable from start mode '" + start +
                      "' via switches",
                  "add a switch into the mode or remove it");
    }
  }
}

void check_dead_communicators(const htl::ProgramAst& program,
                              const SourceLocation& origin,
                              DiagnosticEngine& engine) {
  std::set<std::string_view> read;
  std::set<std::string_view> written;
  for (const htl::ModuleAst& module : program.modules) {
    for (const htl::TaskAst& task : module.tasks) {
      for (const htl::PortAst& port : task.inputs) {
        read.insert(port.communicator);
      }
      for (const htl::PortAst& port : task.outputs) {
        written.insert(port.communicator);
      }
    }
    for (const htl::ModeAst& mode : module.modes) {
      for (const htl::SwitchAst& edge : mode.switches) {
        read.insert(edge.condition);
      }
    }
  }
  for (const htl::CommunicatorAst& comm : program.communicators) {
    const bool is_read = read.count(comm.name) != 0;
    const bool is_written = written.count(comm.name) != 0;
    if (!is_read && !is_written) {
      Diagnostic diag;
      diag.location = at(origin, comm.line, comm.column);
      diag.message = "communicator '" + comm.name +
                     "' is never read, written, or used as a switch "
                     "condition";
      diag.fixit = "remove the declaration";
      diag.edits.push_back(
          {FixEdit::Kind::kDeleteStatement, comm.line, comm.column, ""});
      report_rule(engine, kRuleDeadCommunicator, std::move(diag));
    } else if (is_written && !is_read) {
      report_rule(engine, kRuleNeverReadOutput,
                  at(origin, comm.line, comm.column),
                  "communicator '" + comm.name +
                      "' is written but never read — fine for an actuator "
                      "output, dead weight otherwise");
    }
  }
}

void check_cycles(const htl::ProgramAst& program,
                  const spec::Specification& spec,
                  const SourceLocation& origin, DiagnosticEngine& engine) {
  const spec::SpecificationGraph graph(spec);
  if (graph.is_memory_free()) return;
  const auto comms = comm_index(program);
  const auto locate = [&](spec::CommId id) {
    const auto it = comms.find(spec.communicator(id).name);
    if (it == comms.end()) return at(origin, 0, 0);
    return at(origin, it->second->line, it->second->column);
  };
  for (const std::vector<spec::CommId>& cycle : graph.cycles()) {
    std::vector<std::string> names;
    names.reserve(cycle.size());
    for (const spec::CommId id : cycle) {
      names.push_back(spec.communicator(id).name);
    }
    report_rule(engine, kRuleMemoryCycle, locate(cycle.front()),
                "communicator cycle {" + join(names, ", ") +
                    "}: the specification has memory, so Prop. 1 does not "
                    "apply directly (Section 3)");
  }
  if (!graph.is_cycle_safe()) {
    report_rule(engine, kRuleUnsafeCycle,
                locate(graph.cycles().front().front()),
                "a communicator cycle contains no independent-model task; "
                "the SRG induction is ill-founded and the long-run "
                "reliability of the cycle is 0:\n" +
                    graph.describe_cycles(),
                "give one task in each cycle 'model independent' (with "
                "defaults)");
  }
}

void check_lrc_feasibility(const htl::ProgramAst& program,
                           const spec::Specification& spec,
                           const arch::Architecture& arch,
                           const SourceLocation& origin,
                           DiagnosticEngine& engine) {
  std::vector<impl::ImplementationConfig::SensorBinding> bindings;
  if (program.mapping.has_value()) {
    for (const htl::BindAst& bind : program.mapping->binds) {
      bindings.push_back({bind.communicator, bind.sensor});
    }
  }
  const auto ceiling =
      synth::max_achievable_srgs(spec, arch, std::move(bindings));
  // An unbindable or cyclically unsafe specification is reported by other
  // rules (LRT000/LRT003); feasibility is simply not checkable here.
  if (!ceiling.ok()) return;
  const auto comms = comm_index(program);
  for (spec::CommId c = 0;
       c < static_cast<spec::CommId>(spec.communicators().size()); ++c) {
    const spec::Communicator& comm = spec.communicator(c);
    const double max_srg = (*ceiling)[static_cast<std::size_t>(c)];
    if (comm.lrc <= max_srg + 1e-12) continue;
    const auto it = comms.find(comm.name);
    const SourceLocation location =
        it == comms.end()
            ? at(origin, 0, 0)
            : at(origin, it->second->line, it->second->column);
    report_rule(
        engine, kRuleLrcInfeasible, location,
        "lrc " + format_double(comm.lrc) + " of communicator '" +
            comm.name + "' exceeds the maximum achievable SRG " +
            format_double(max_srg) +
            " under full replication on this architecture; no mapping "
            "(or synthesis result) can satisfy it",
        "lower the lrc to at most " + format_double(max_srg) +
            " or add more reliable hosts/sensors");
  }
}

}  // namespace lrt::lint
