// The mode-product supergraph: the whole-program control-flow object the
// cross-mode lint rules (LRT011-LRT018) analyze (DESIGN.md section 5i).
//
// A node is one reachable tuple of per-module modes; the start node pairs
// every module's start mode, and a switch edge of one module steps that
// module's component while the others hold (one switch per step — any
// simultaneous combination is reachable through a sequence of single
// steps because modules switch independently). Edges whose guard can
// never be true (a bool communicator with init false that no task in any
// *reachable* node writes) are pruned before expansion; the pruning and
// the reachable set are themselves a small fixpoint, since removing an
// edge can strand the only writer of another guard.
//
// Every node additionally has a self-edge — staying in the current mode
// combination for another period is always a possible step — so the
// dataflow analyses never see a spurious "end of execution".
//
// Each node carries the unrolled communicator access timeline of its
// active modes over the node's hyper-period: one (time, read/write)
// access per port instance per task invocation, plus one guard read per
// switch, merged across modules and sorted deterministically. When the
// active mode periods disagree the node is marked disharmonic (rule
// LRT017) and each mode is unrolled over its own period instead.
//
// Expansion is bounded by FlowGraphOptions::max_nodes. Hitting the cap
// never silently truncates an analysis: the graph is marked capped, the
// product rules step aside (degrading to the per-module catalog
// LRT000-LRT010), and lint reports the degradation as LRT019.
#ifndef LRT_LINT_FLOWGRAPH_H_
#define LRT_LINT_FLOWGRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "htl/ast.h"
#include "lint/dataflow.h"
#include "spec/declarations.h"

namespace lrt::lint {

struct FlowGraphOptions {
  /// Product-node cap; expansion beyond it marks the graph capped.
  std::size_t max_nodes = 1024;
};

/// One communicator access in a node's merged timeline.
struct CommAccess {
  int comm = -1;             ///< index into FlowGraph::comm_names()
  std::int64_t instance = 0; ///< port instance (0 for guard reads)
  spec::Time time = 0;       ///< instant within the node's hyper-period
  bool is_write = false;
  bool is_guard = false;     ///< a switch-condition read
  int module = -1;           ///< module index in the program
  const htl::TaskAst* task = nullptr;  ///< null for guard reads
  int line = 0;
  int column = 0;
};

/// One reachable tuple of per-module modes.
struct ProductNode {
  /// Mode index per module (aligned with ProgramAst::modules).
  std::vector<int> mode_of;
  /// lcm of the active mode periods (the unroll horizon); equals the
  /// common period when `harmonic`.
  spec::Time hyper_period = 0;
  /// True iff every active mode declares the same period (what the
  /// flattener requires of a selectable combination).
  bool harmonic = true;
  /// Merged accesses, sorted by (time, is_write, module, comm, instance).
  std::vector<CommAccess> accesses;
  /// Communicators read (task inputs + guards) / written in this node.
  CommSet reads;
  CommSet writes;
};

/// One pruned-in switch edge between product nodes.
struct ProductEdge {
  int from = -1;
  int to = -1;
  int module = -1;               ///< the module that switched
  const htl::SwitchAst* edge = nullptr;
};

/// The supergraph. Node 0 is the start tuple; node and edge order are
/// discovery order (deterministic BFS: modules, then switches, in
/// declaration order), so ids are bit-stable across runs.
class FlowGraph {
 public:
  /// Builds the guard-pruned reachable product of `program`'s modules.
  /// Programs without modules yield an empty graph.
  static FlowGraph build(const htl::ProgramAst& program,
                         const FlowGraphOptions& options = {});

  [[nodiscard]] const std::vector<ProductNode>& nodes() const {
    return nodes_;
  }
  [[nodiscard]] const std::vector<ProductEdge>& edges() const {
    return edges_;
  }
  /// Switch adjacency plus the per-node self-edge, for the dataflow
  /// solver.
  [[nodiscard]] const Digraph& graph() const { return graph_; }
  [[nodiscard]] bool capped() const { return capped_; }

  /// Communicator universe: every name referenced by a port, guard, or
  /// declaration, in deterministic first-reference order.
  [[nodiscard]] const std::vector<std::string>& comm_names() const {
    return comm_names_;
  }
  [[nodiscard]] int comm_index(std::string_view name) const;

  /// Switch edges discarded because their guard can never be true.
  struct DeadSwitch {
    int module = -1;
    int mode = -1;  ///< mode index within the module
    const htl::SwitchAst* edge = nullptr;
  };
  [[nodiscard]] const std::vector<DeadSwitch>& dead_switches() const {
    return dead_switches_;
  }

  /// True iff the module's mode appears in some reachable product node.
  [[nodiscard]] bool mode_occurs(int module, int mode) const;

  /// "(module=mode, module=mode, ...)" for node `id` — the mode
  /// combination in diagnostics.
  [[nodiscard]] std::string describe(int id) const;

  /// The switch edges of one shortest path start -> `id` (empty for the
  /// start node), for relatedLocations on path-sensitive findings.
  [[nodiscard]] std::vector<const ProductEdge*> path_to(int id) const;

 private:
  const htl::ProgramAst* program_ = nullptr;
  std::vector<ProductNode> nodes_;
  std::vector<ProductEdge> edges_;
  Digraph graph_;
  bool capped_ = false;
  std::vector<std::string> comm_names_;
  std::vector<DeadSwitch> dead_switches_;
  /// BFS tree: the edge index that discovered each node (-1 for start).
  std::vector<int> discovered_by_;
};

}  // namespace lrt::lint

#endif  // LRT_LINT_FLOWGRAPH_H_
