// Small numeric helpers shared by the timing and reliability analyses.
#ifndef LRT_SUPPORT_MATH_UTIL_H_
#define LRT_SUPPORT_MATH_UTIL_H_

#include <cstdint>
#include <span>

namespace lrt {

/// Tolerance for comparing analytically computed probabilities. SRGs are
/// products of at most a few hundred doubles, so 1e-12 absolute error is a
/// generous bound on accumulated rounding.
inline constexpr double kProbabilityTolerance = 1e-9;

/// True iff |a - b| <= tol.
[[nodiscard]] bool approx_equal(double a, double b,
                                double tol = kProbabilityTolerance);

/// a >= b up to tolerance (used for "lambda_c >= mu_c" checks so that an
/// exactly tight requirement is not rejected by rounding).
[[nodiscard]] bool approx_ge(double a, double b,
                             double tol = kProbabilityTolerance);

/// lcm over a span of positive integers. Returns 1 for an empty span.
/// Asserts on overflow in debug builds.
[[nodiscard]] std::int64_t lcm_all(std::span<const std::int64_t> values);

/// gcd over a span of positive integers. Returns 0 for an empty span.
[[nodiscard]] std::int64_t gcd_all(std::span<const std::int64_t> values);

/// ceil(a / b) for positive b.
[[nodiscard]] std::int64_t ceil_div(std::int64_t a, std::int64_t b);

/// True iff p is a valid probability in [0, 1].
[[nodiscard]] bool is_probability(double p);

/// True iff p is a valid *reliability* in the paper's sense: (0, 1].
[[nodiscard]] bool is_reliability(double p);

/// 1 - prod(1 - p_i): probability that at least one of independent events
/// with probabilities p_i occurs. This is the paper's parallel composition,
/// used both for replicated tasks and the model-2 input rule.
[[nodiscard]] double parallel_or(std::span<const double> probabilities);

/// prod(p_i): probability that all independent events occur (series rule).
[[nodiscard]] double series_and(std::span<const double> probabilities);

}  // namespace lrt

#endif  // LRT_SUPPORT_MATH_UTIL_H_
