#include "support/thread_pool.h"

#include <algorithm>

namespace lrt {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  threads_ = threads;
  workers_.reserve(threads - 1);
  for (unsigned i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::parallel_for(std::int64_t count,
                              const std::function<void(std::int64_t)>& body) {
  if (count <= 0) return;
  if (workers_.empty()) {
    for (std::int64_t i = 0; i < count; ++i) body(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    body_ = &body;
    count_ = count;
    next_.store(0, std::memory_order_relaxed);
    error_ = nullptr;
    active_ = static_cast<unsigned>(workers_.size());
    ++generation_;
  }
  work_cv_.notify_all();
  drain_current_job();  // the caller is worker number N
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return active_ == 0; });
  body_ = nullptr;
  if (error_) std::rethrow_exception(error_);
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(
          lock, [&, this] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
    }
    drain_current_job();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--active_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::drain_current_job() {
  // One atomic fetch per item: items here are whole simulations, so the
  // counter is nowhere near contended; finer chunking would only hurt
  // load balance.
  try {
    for (;;) {
      const std::int64_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= count_) break;
      (*body_)(i);
    }
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!error_) error_ = std::current_exception();
  }
}

}  // namespace lrt
