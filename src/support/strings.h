// String helpers for the HTL frontend and report formatting.
#ifndef LRT_SUPPORT_STRINGS_H_
#define LRT_SUPPORT_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace lrt {

/// Splits on a single character; empty fields are preserved.
[[nodiscard]] std::vector<std::string_view> split(std::string_view text,
                                                  char sep);

/// Removes leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view text);

/// True iff `text` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);

/// Joins items with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& items,
                               std::string_view sep);

/// True iff `name` is a valid lrt identifier: [A-Za-z_][A-Za-z0-9_]*.
[[nodiscard]] bool is_identifier(std::string_view name);

/// Formats a double with enough digits to round-trip (%.12g).
[[nodiscard]] std::string format_double(double value);

}  // namespace lrt

#endif  // LRT_SUPPORT_STRINGS_H_
