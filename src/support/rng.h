// Deterministic random number generation for the fault-injection simulator.
//
// Every stochastic element in lrt (host failures, workload generators)
// draws from an explicitly seeded generator so that every experiment in
// EXPERIMENTS.md is exactly reproducible.
#ifndef LRT_SUPPORT_RNG_H_
#define LRT_SUPPORT_RNG_H_

#include <cstdint>

namespace lrt {

/// Default seed shared by every stochastic component (fault plans, Monte
/// Carlo campaigns). One constant, one place: experiments that do not
/// override the seed all derive from the same reproducible stream root.
inline constexpr std::uint64_t kDefaultRngSeed = 0x1eda2008;

/// One SplitMix64 absorb-and-finalize step: folds `word` into `state` and
/// avalanches. Chaining absorb() over a key tuple yields a well-mixed
/// 64-bit hash of (seed, key...) — the primitive behind the keyed draws
/// below.
constexpr std::uint64_t absorb(std::uint64_t state, std::uint64_t word) {
  std::uint64_t z = state + 0x9E3779B97F4A7C15ull + word;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Stateless counter-based draw: a uniform 64-bit value that is a pure
/// function of (seed, words...), independent of any generator state and
/// hence of the order draws are made in. The simulation engines key every
/// fault draw by its site (kind, time, entity, attempt), which is what
/// lets the parallel engine's shards consume "the same randomness" as the
/// sequential engines without replaying a shared stream.
template <typename... Words>
constexpr std::uint64_t keyed_bits(std::uint64_t seed, Words... words) {
  std::uint64_t state = absorb(0x243F6A8885A308D3ull, seed);
  ((state = absorb(state, static_cast<std::uint64_t>(words))), ...);
  return state;
}

/// Uniform double in [0, 1), keyed like keyed_bits().
template <typename... Words>
constexpr double keyed_double(std::uint64_t seed, Words... words) {
  return static_cast<double>(keyed_bits(seed, words...) >> 11) * 0x1.0p-53;
}

/// Keyed Bernoulli trial: true with probability p (clamped to [0,1]).
template <typename... Words>
constexpr bool keyed_bernoulli(double p, std::uint64_t seed, Words... words) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return keyed_double(seed, words...) < p;
}

/// SplitMix64: used to expand a user seed into the xoshiro state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna) — fast, high-quality, 2^256-1 period.
///
/// Satisfies the UniformRandomBitGenerator requirements, so it composes
/// with <random> distributions where convenient.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial: true with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Uniform integer in [0, bound) via Lemire's multiply-shift rejection.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Creates an independent stream for a child component (e.g. one per
  /// simulated host) so adding components never perturbs others' draws.
  Xoshiro256 split();

 private:
  std::uint64_t state_[4];
};

}  // namespace lrt

#endif  // LRT_SUPPORT_RNG_H_
