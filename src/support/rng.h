// Deterministic random number generation for the fault-injection simulator.
//
// Every stochastic element in lrt (host failures, workload generators)
// draws from an explicitly seeded generator so that every experiment in
// EXPERIMENTS.md is exactly reproducible.
#ifndef LRT_SUPPORT_RNG_H_
#define LRT_SUPPORT_RNG_H_

#include <cstdint>

namespace lrt {

/// Default seed shared by every stochastic component (fault plans, Monte
/// Carlo campaigns). One constant, one place: experiments that do not
/// override the seed all derive from the same reproducible stream root.
inline constexpr std::uint64_t kDefaultRngSeed = 0x1eda2008;

/// SplitMix64: used to expand a user seed into the xoshiro state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna) — fast, high-quality, 2^256-1 period.
///
/// Satisfies the UniformRandomBitGenerator requirements, so it composes
/// with <random> distributions where convenient.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial: true with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Uniform integer in [0, bound) via Lemire's multiply-shift rejection.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Creates an independent stream for a child component (e.g. one per
  /// simulated host) so adding components never perturbs others' draws.
  Xoshiro256 split();

 private:
  std::uint64_t state_[4];
};

}  // namespace lrt

#endif  // LRT_SUPPORT_RNG_H_
