#include "support/status.h"

namespace lrt {

std::string_view to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kUnsatisfiable: return "UNSATISFIABLE";
    case StatusCode::kParseError: return "PARSE_ERROR";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (ok()) return "OK";
  std::string out(lrt::to_string(code_));
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.to_string();
}

Status InvalidArgumentError(std::string message) {
  return {StatusCode::kInvalidArgument, std::move(message)};
}
Status NotFoundError(std::string message) {
  return {StatusCode::kNotFound, std::move(message)};
}
Status AlreadyExistsError(std::string message) {
  return {StatusCode::kAlreadyExists, std::move(message)};
}
Status FailedPreconditionError(std::string message) {
  return {StatusCode::kFailedPrecondition, std::move(message)};
}
Status OutOfRangeError(std::string message) {
  return {StatusCode::kOutOfRange, std::move(message)};
}
Status UnsatisfiableError(std::string message) {
  return {StatusCode::kUnsatisfiable, std::move(message)};
}
Status ParseError(std::string message) {
  return {StatusCode::kParseError, std::move(message)};
}
Status InternalError(std::string message) {
  return {StatusCode::kInternal, std::move(message)};
}

}  // namespace lrt
