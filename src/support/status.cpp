#include "support/status.h"

namespace lrt {

std::string_view to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kUnsatisfiable: return "UNSATISFIABLE";
    case StatusCode::kParseError: return "PARSE_ERROR";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

std::string_view status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "kOk";
    case StatusCode::kInvalidArgument: return "kInvalidArgument";
    case StatusCode::kNotFound: return "kNotFound";
    case StatusCode::kAlreadyExists: return "kAlreadyExists";
    case StatusCode::kFailedPrecondition: return "kFailedPrecondition";
    case StatusCode::kOutOfRange: return "kOutOfRange";
    case StatusCode::kUnsatisfiable: return "kUnsatisfiable";
    case StatusCode::kParseError: return "kParseError";
    case StatusCode::kInternal: return "kInternal";
    case StatusCode::kUnavailable: return "kUnavailable";
    case StatusCode::kDeadlineExceeded: return "kDeadlineExceeded";
  }
  return "kInternal";
}

std::optional<StatusCode> status_code_from_name(std::string_view name) {
  static constexpr StatusCode kAll[] = {
      StatusCode::kOk,
      StatusCode::kInvalidArgument,
      StatusCode::kNotFound,
      StatusCode::kAlreadyExists,
      StatusCode::kFailedPrecondition,
      StatusCode::kOutOfRange,
      StatusCode::kUnsatisfiable,
      StatusCode::kParseError,
      StatusCode::kInternal,
      StatusCode::kUnavailable,
      StatusCode::kDeadlineExceeded,
  };
  for (const StatusCode code : kAll) {
    if (status_code_name(code) == name) return code;
  }
  return std::nullopt;
}

std::string Status::to_string() const {
  if (ok()) return "OK";
  std::string out(lrt::to_string(code_));
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.to_string();
}

Status InvalidArgumentError(std::string message) {
  return {StatusCode::kInvalidArgument, std::move(message)};
}
Status NotFoundError(std::string message) {
  return {StatusCode::kNotFound, std::move(message)};
}
Status AlreadyExistsError(std::string message) {
  return {StatusCode::kAlreadyExists, std::move(message)};
}
Status FailedPreconditionError(std::string message) {
  return {StatusCode::kFailedPrecondition, std::move(message)};
}
Status OutOfRangeError(std::string message) {
  return {StatusCode::kOutOfRange, std::move(message)};
}
Status UnsatisfiableError(std::string message) {
  return {StatusCode::kUnsatisfiable, std::move(message)};
}
Status ParseError(std::string message) {
  return {StatusCode::kParseError, std::move(message)};
}
Status InternalError(std::string message) {
  return {StatusCode::kInternal, std::move(message)};
}
Status UnavailableError(std::string message) {
  return {StatusCode::kUnavailable, std::move(message)};
}
Status DeadlineExceededError(std::string message) {
  return {StatusCode::kDeadlineExceeded, std::move(message)};
}

}  // namespace lrt
