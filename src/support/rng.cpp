#include "support/rng.h"

#include <algorithm>

namespace lrt {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : state_) word = sm.next();
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Xoshiro256::next_double() {
  // 53 high bits -> uniform [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Xoshiro256::bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

std::uint64_t Xoshiro256::next_below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

Xoshiro256 Xoshiro256::split() {
  // Deriving the child from two fresh draws keeps parent/child streams
  // statistically independent for our purposes.
  const std::uint64_t s = next() ^ rotl(next(), 31);
  return Xoshiro256(s);
}

}  // namespace lrt
