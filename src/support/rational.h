// Exact rational arithmetic over int64.
//
// The paper's timing model ("time instants ... denote the harmonic fraction
// of all communicator periods") requires exact period/LET computations;
// Rational backs those so that e.g. lcm/gcd reasoning over communicator
// periods never suffers floating-point drift.
#ifndef LRT_SUPPORT_RATIONAL_H_
#define LRT_SUPPORT_RATIONAL_H_

#include <compare>
#include <cstdint>
#include <ostream>
#include <string>

namespace lrt {

/// A normalized rational number p/q with q > 0 and gcd(|p|, q) == 1.
///
/// Overflow behaviour: operations assert in debug builds; the magnitudes
/// arising from communicator periods (bounded hyperperiods) stay far below
/// 2^63 in practice.
class Rational {
 public:
  constexpr Rational() = default;
  // Intentionally implicit so integer literals work in arithmetic.
  constexpr Rational(std::int64_t value) : num_(value) {}  // NOLINT
  Rational(std::int64_t num, std::int64_t den);

  [[nodiscard]] constexpr std::int64_t num() const { return num_; }
  [[nodiscard]] constexpr std::int64_t den() const { return den_; }

  [[nodiscard]] bool is_integer() const { return den_ == 1; }
  /// Precondition: is_integer().
  [[nodiscard]] std::int64_t to_integer() const;
  [[nodiscard]] double to_double() const {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }

  Rational& operator+=(const Rational& rhs);
  Rational& operator-=(const Rational& rhs);
  Rational& operator*=(const Rational& rhs);
  /// Precondition: rhs != 0.
  Rational& operator/=(const Rational& rhs);

  friend Rational operator+(Rational a, const Rational& b) { return a += b; }
  friend Rational operator-(Rational a, const Rational& b) { return a -= b; }
  friend Rational operator*(Rational a, const Rational& b) { return a *= b; }
  friend Rational operator/(Rational a, const Rational& b) { return a /= b; }
  friend Rational operator-(const Rational& a) { return {-a.num_, a.den_}; }

  friend bool operator==(const Rational&, const Rational&) = default;
  friend std::strong_ordering operator<=>(const Rational& a,
                                          const Rational& b);

  /// "p" for integers, "p/q" otherwise.
  [[nodiscard]] std::string to_string() const;

 private:
  std::int64_t num_ = 0;
  std::int64_t den_ = 1;
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

/// Largest integer <= r.
std::int64_t floor(const Rational& r);
/// Smallest integer >= r.
std::int64_t ceil(const Rational& r);

}  // namespace lrt

#endif  // LRT_SUPPORT_RATIONAL_H_
