#include "support/rational.h"

#include <cassert>
#include <numeric>

namespace lrt {
namespace {

// Normalizes (num, den) to den > 0 and coprime components.
void normalize(std::int64_t& num, std::int64_t& den) {
  assert(den != 0 && "rational with zero denominator");
  if (den < 0) {
    num = -num;
    den = -den;
  }
  const std::int64_t g = std::gcd(num, den);
  if (g > 1) {
    num /= g;
    den /= g;
  }
}

}  // namespace

Rational::Rational(std::int64_t num, std::int64_t den) : num_(num), den_(den) {
  normalize(num_, den_);
}

std::int64_t Rational::to_integer() const {
  assert(is_integer() && "to_integer() on non-integer rational");
  return num_;
}

Rational& Rational::operator+=(const Rational& rhs) {
  // Use gcd of denominators to keep intermediates small.
  const std::int64_t g = std::gcd(den_, rhs.den_);
  const std::int64_t scale = rhs.den_ / g;
  num_ = num_ * scale + rhs.num_ * (den_ / g);
  den_ = den_ * scale;
  normalize(num_, den_);
  return *this;
}

Rational& Rational::operator-=(const Rational& rhs) {
  return *this += -rhs;
}

Rational& Rational::operator*=(const Rational& rhs) {
  // Cross-reduce before multiplying to delay overflow.
  const std::int64_t g1 = std::gcd(num_, rhs.den_);
  const std::int64_t g2 = std::gcd(rhs.num_, den_);
  num_ = (num_ / g1) * (rhs.num_ / g2);
  den_ = (den_ / g2) * (rhs.den_ / g1);
  normalize(num_, den_);
  return *this;
}

Rational& Rational::operator/=(const Rational& rhs) {
  assert(rhs.num_ != 0 && "division by zero rational");
  return *this *= Rational(rhs.den_, rhs.num_);
}

std::strong_ordering operator<=>(const Rational& a, const Rational& b) {
  // a.num/a.den <=> b.num/b.den, denominators positive.
  // Compare via the difference's numerator with gcd reduction.
  const std::int64_t g = std::gcd(a.den_, b.den_);
  const std::int64_t lhs = a.num_ * (b.den_ / g);
  const std::int64_t rhs = b.num_ * (a.den_ / g);
  return lhs <=> rhs;
}

std::string Rational::to_string() const {
  if (is_integer()) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  return os << r.to_string();
}

std::int64_t floor(const Rational& r) {
  const std::int64_t q = r.num() / r.den();
  // Integer division truncates toward zero; adjust for negatives.
  return (r.num() % r.den() != 0 && r.num() < 0) ? q - 1 : q;
}

std::int64_t ceil(const Rational& r) {
  const std::int64_t q = r.num() / r.den();
  return (r.num() % r.den() != 0 && r.num() > 0) ? q + 1 : q;
}

}  // namespace lrt
