#include "support/argparse.h"

#include <cerrno>
#include <cstdlib>
#include <utility>

namespace lrt {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::add_flag(std::string name, bool* out, std::string help) {
  options_.push_back(
      {std::move(name), Kind::kFlag, out, std::move(help)});
}

void ArgParser::add_string(std::string name, std::string* out,
                           std::string help) {
  options_.push_back(
      {std::move(name), Kind::kString, out, std::move(help)});
}

void ArgParser::add_int(std::string name, std::int64_t* out,
                        std::string help) {
  options_.push_back({std::move(name), Kind::kInt, out, std::move(help)});
}

void ArgParser::add_uint(std::string name, unsigned* out,
                         std::string help) {
  options_.push_back(
      {std::move(name), Kind::kUint, out, std::move(help)});
}

void ArgParser::add_double(std::string name, double* out,
                           std::string help) {
  options_.push_back(
      {std::move(name), Kind::kDouble, out, std::move(help)});
}

void ArgParser::add_repeated(std::string name,
                             std::vector<std::string>* out,
                             std::string help) {
  options_.push_back(
      {std::move(name), Kind::kRepeated, out, std::move(help)});
}

void ArgParser::set_positional_usage(std::string usage) {
  positional_usage_ = std::move(usage);
}

ArgParser& ArgParser::add_subcommand(std::string name,
                                     std::string description) {
  subcommands_.push_back(
      {name, std::make_unique<ArgParser>(program_ + " " + name,
                                         std::move(description))});
  return *subcommands_.back().parser;
}

ArgParser* ArgParser::subcommand_parser() {
  for (Subcommand& sub : subcommands_)
    if (sub.name == selected_subcommand_) return sub.parser.get();
  return nullptr;
}

bool ArgParser::help_requested() const {
  if (help_requested_) return true;
  for (const Subcommand& sub : subcommands_)
    if (sub.name == selected_subcommand_ &&
        sub.parser->help_requested())
      return true;
  return false;
}

ArgParser::Option* ArgParser::find(std::string_view name) {
  for (Option& option : options_)
    if (option.name == name) return &option;
  return nullptr;
}

Status ArgParser::store(const Option& option, std::string_view text) {
  const std::string value(text);
  char* end = nullptr;
  errno = 0;
  switch (option.kind) {
    case Kind::kFlag:
      break;  // handled by the caller
    case Kind::kString:
      *static_cast<std::string*>(option.target) = value;
      break;
    case Kind::kRepeated:
      static_cast<std::vector<std::string>*>(option.target)
          ->push_back(value);
      break;
    case Kind::kInt: {
      const long long parsed = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || errno == ERANGE)
        return InvalidArgumentError(option.name + " expects an integer, got '" +
                                    value + "'");
      *static_cast<std::int64_t*>(option.target) = parsed;
      break;
    }
    case Kind::kUint: {
      const unsigned long parsed = std::strtoul(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || errno == ERANGE ||
          value.front() == '-')
        return InvalidArgumentError(option.name +
                                    " expects a non-negative integer, got '" +
                                    value + "'");
      *static_cast<unsigned*>(option.target) =
          static_cast<unsigned>(parsed);
      break;
    }
    case Kind::kDouble: {
      const double parsed = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0' || errno == ERANGE)
        return InvalidArgumentError(option.name + " expects a number, got '" +
                                    value + "'");
      *static_cast<double*>(option.target) = parsed;
      break;
    }
  }
  return Status::Ok();
}

Status ArgParser::run(int& argc, char** argv, bool strict) {
  positionals_.clear();
  selected_subcommand_.clear();
  help_requested_ = false;
  int write = 1;
  Status failure = Status::Ok();
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (!failure.ok()) {
      argv[write++] = argv[i];
      continue;
    }
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (strict && !subcommands_.empty() && !arg.empty() &&
        arg[0] != '-') {
      // First bare word selects the command; everything after it
      // belongs to the nested parser (argv[i] fills its program slot).
      for (Subcommand& sub : subcommands_) {
        if (sub.name == arg) {
          selected_subcommand_ = sub.name;
          const int remaining = argc - i;
          argc = write;
          return sub.parser->parse(remaining, argv + i);
        }
      }
      failure = InvalidArgumentError("unknown command '" +
                                     std::string(arg) + "'");
      continue;
    }
    std::string_view name = arg;
    std::string_view inline_value;
    bool has_inline_value = false;
    const std::size_t eq = arg.find('=');
    if (arg.size() >= 2 && arg[0] == '-' && eq != std::string_view::npos) {
      name = arg.substr(0, eq);
      inline_value = arg.substr(eq + 1);
      has_inline_value = true;
    }
    Option* option = find(name);
    if (option == nullptr) {
      if (strict && arg.size() >= 2 && arg[0] == '-' && arg[1] == '-') {
        failure = InvalidArgumentError("unknown flag '" +
                                       std::string(arg) + "'");
        continue;
      }
      argv[write++] = argv[i];
      if (strict) positionals_.emplace_back(arg);
      continue;
    }
    if (option->kind == Kind::kFlag) {
      if (has_inline_value) {
        failure = InvalidArgumentError(option->name +
                                       " does not take a value");
        continue;
      }
      *static_cast<bool*>(option->target) = true;
      continue;
    }
    std::string_view value;
    if (has_inline_value) {
      value = inline_value;
    } else if (i + 1 < argc) {
      value = argv[++i];
    } else {
      failure =
          InvalidArgumentError(option->name + " expects a value");
      continue;
    }
    const Status stored = store(*option, value);
    if (!stored.ok()) failure = stored;
  }
  argc = write;
  if (strict && !subcommands_.empty() && failure.ok() &&
      !help_requested_) {
    return InvalidArgumentError(program_ + " expects a command");
  }
  return failure;
}

Status ArgParser::parse(int argc, char** argv) {
  // Strict parsing never hands argv back, so consume a scratch count.
  int scratch = argc;
  return run(scratch, argv, /*strict=*/true);
}

Status ArgParser::parse_known(int& argc, char** argv) {
  return run(argc, argv, /*strict=*/false);
}

std::string ArgParser::usage() const {
  std::string out = "usage: " + program_;
  if (!subcommands_.empty()) out += " COMMAND";
  for (const Option& option : options_) {
    out += " [" + option.name;
    if (option.kind != Kind::kFlag) out += " VALUE";
    out += "]";
    if (option.kind == Kind::kRepeated) out += "...";
  }
  if (!positional_usage_.empty()) out += " " + positional_usage_;
  out += "\n";
  if (!description_.empty()) out += "\n" + description_ + "\n";
  if (!options_.empty()) out += "\n";
  for (const Option& option : options_) {
    out += "  " + option.name;
    if (option.kind != Kind::kFlag) out += " VALUE";
    if (!option.help.empty()) {
      if (out.back() != '\n') out += "\n";
      out += "      " + option.help + "\n";
    } else {
      out += "\n";
    }
  }
  if (!subcommands_.empty()) {
    out += "\ncommands:\n";
    for (const Subcommand& sub : subcommands_) {
      out += "  " + sub.name;
      if (!sub.parser->description_.empty()) {
        out += "\n      " + sub.parser->description_ + "\n";
      } else {
        out += "\n";
      }
    }
  }
  return out;
}

}  // namespace lrt
