// Error-handling primitives used across all lrt libraries.
//
// Library boundaries never throw: fallible operations return Status (when
// there is no payload) or Result<T> (when there is). This mirrors the
// "constructors that can fail become factory functions" rule in DESIGN.md.
#ifndef LRT_SUPPORT_STATUS_H_
#define LRT_SUPPORT_STATUS_H_

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace lrt {

/// Machine-readable classification of an error.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,     ///< caller data violates a documented precondition
  kNotFound,            ///< named entity (task, communicator, host) absent
  kAlreadyExists,       ///< duplicate declaration of a named entity
  kFailedPrecondition,  ///< object state does not allow the operation
  kOutOfRange,          ///< index/instance outside its valid interval
  kUnsatisfiable,       ///< an analysis proved the requirement cannot be met
  kParseError,          ///< HTL frontend: malformed source text
  kInternal,            ///< invariant violation inside lrt itself
  kUnavailable,         ///< transient overload: retry later (load-shed)
  kDeadlineExceeded,    ///< the caller's deadline expired mid-operation
};

/// Human-readable name of a StatusCode ("kOk" -> "OK", ...).
std::string_view to_string(StatusCode code);

/// Wire-stable enumerator name ("kInvalidArgument", ...). Unlike
/// to_string(), these spellings are part of the lrtd frame schema and
/// must never change once published.
std::string_view status_code_name(StatusCode code);

/// Inverse of status_code_name(). Returns std::nullopt for unknown names
/// (including the legacy "INVALID_ARGUMENT" spellings).
std::optional<StatusCode> status_code_from_name(std::string_view name);

/// Outcome of a fallible operation: a code plus a human-readable message.
///
/// An engaged (ok) Status is cheap to copy; error statuses carry a message
/// describing *which* entity failed *which* check, suitable for surfacing to
/// a user of the compiler or analysis CLI.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk && "use Status() / Ok() for success");
  }

  static Status Ok() { return Status(); }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;  // messages are informational only
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Convenience factories, mirroring the StatusCode enumerators.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status UnsatisfiableError(std::string message);
Status ParseError(std::string message);
Status InternalError(std::string message);
Status UnavailableError(std::string message);
Status DeadlineExceededError(std::string message);

/// Either a value of type T or an error Status. Analogous to
/// std::expected<T, Status> (which libstdc++ 12 does not yet ship).
template <typename T>
class Result {
 public:
  // Intentionally implicit: allows `return value;` and `return status;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result from Status requires an error status");
  }

  [[nodiscard]] bool ok() const { return value_.has_value(); }
  [[nodiscard]] const Status& status() const { return status_; }

  // value() on an errored Result aborts with the error message in every
  // build mode — a loud failure beats undefined behaviour in release.
  [[nodiscard]] const T& value() const& {
    check_ok();
    return *value_;
  }
  [[nodiscard]] T& value() & {
    check_ok();
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    check_ok();
    return std::move(*value_);
  }

  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }
  [[nodiscard]] T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when errored.
  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void check_ok() const {
    if (ok()) return;
    std::fprintf(stderr, "fatal: Result::value() on error: %s\n",
                 status_.to_string().c_str());
    std::abort();
  }

  std::optional<T> value_;
  Status status_;
};

/// Propagates an error status out of the enclosing function.
#define LRT_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::lrt::Status lrt_status_ = (expr);             \
    if (!lrt_status_.ok()) return lrt_status_;      \
  } while (false)

/// Assigns the value of a Result<T> expression or propagates its error.
#define LRT_ASSIGN_OR_RETURN(lhs, expr)             \
  LRT_ASSIGN_OR_RETURN_IMPL_(                       \
      LRT_STATUS_CONCAT_(lrt_result_, __LINE__), lhs, expr)

#define LRT_STATUS_CONCAT_INNER_(a, b) a##b
#define LRT_STATUS_CONCAT_(a, b) LRT_STATUS_CONCAT_INNER_(a, b)
#define LRT_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr)  \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

}  // namespace lrt

#endif  // LRT_SUPPORT_STATUS_H_
