// Minimal declarative command-line parser shared by the example and
// bench binaries (previously each hand-rolled its own strcmp loop).
// Flags bind to caller-owned storage; `--name value` and `--name=value`
// both work; `--help` is always recognized. Two parse modes:
//
//   parse(argc, argv)        strict — unknown flags are errors, leftover
//                            arguments become positionals.
//   parse_known(argc, argv)  permissive — recognized flags are removed
//                            from argv (argc is updated) and everything
//                            else is left in place, so the remainder can
//                            be handed to another parser (e.g.
//                            google-benchmark).
#ifndef LRT_SUPPORT_ARGPARSE_H_
#define LRT_SUPPORT_ARGPARSE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/status.h"

namespace lrt {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  /// Boolean switch: present -> true (no value consumed).
  void add_flag(std::string name, bool* out, std::string help);
  void add_string(std::string name, std::string* out, std::string help);
  void add_int(std::string name, std::int64_t* out, std::string help);
  void add_uint(std::string name, unsigned* out, std::string help);
  void add_double(std::string name, double* out, std::string help);
  /// Value flag that may repeat; each occurrence appends.
  void add_repeated(std::string name, std::vector<std::string>* out,
                    std::string help);
  /// One-line description of the trailing positional arguments, for
  /// usage() only (e.g. "<file.htl>...").
  void set_positional_usage(std::string usage);

  /// Registers a subcommand and returns its nested parser (owned by this
  /// parser; the reference stays valid for this parser's lifetime). With
  /// subcommands registered, strict parse() treats the first
  /// non-flag argument as the command name and hands every later
  /// argument to the nested parser; parent flags may precede it. A
  /// missing or unknown command is a kInvalidArgument error.
  /// parse_known() ignores subcommands, so flat CLIs are unaffected.
  ArgParser& add_subcommand(std::string name, std::string description);

  [[nodiscard]] Status parse(int argc, char** argv);
  [[nodiscard]] Status parse_known(int& argc, char** argv);

  [[nodiscard]] const std::vector<std::string>& positionals() const {
    return positionals_;
  }
  /// Name of the subcommand selected by the last parse() ("" if none).
  [[nodiscard]] const std::string& selected_subcommand() const {
    return selected_subcommand_;
  }
  /// Nested parser for the selected subcommand, or nullptr.
  [[nodiscard]] ArgParser* subcommand_parser();
  /// True when --help was seen (here or in the selected subcommand);
  /// the caller should print usage() and exit.
  [[nodiscard]] bool help_requested() const;
  [[nodiscard]] std::string usage() const;

 private:
  enum class Kind { kFlag, kString, kInt, kUint, kDouble, kRepeated };
  struct Option {
    std::string name;  // including the leading "--"
    Kind kind = Kind::kFlag;
    void* target = nullptr;
    std::string help;
  };

  struct Subcommand {
    std::string name;
    std::unique_ptr<ArgParser> parser;
  };

  [[nodiscard]] Status run(int& argc, char** argv, bool strict);
  [[nodiscard]] Option* find(std::string_view name);
  [[nodiscard]] Status store(const Option& option, std::string_view text);

  std::string program_;
  std::string description_;
  std::string positional_usage_;
  std::vector<Option> options_;
  std::vector<Subcommand> subcommands_;
  std::vector<std::string> positionals_;
  std::string selected_subcommand_;
  bool help_requested_ = false;
};

}  // namespace lrt

#endif  // LRT_SUPPORT_ARGPARSE_H_
