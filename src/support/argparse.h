// Minimal declarative command-line parser shared by the example and
// bench binaries (previously each hand-rolled its own strcmp loop).
// Flags bind to caller-owned storage; `--name value` and `--name=value`
// both work; `--help` is always recognized. Two parse modes:
//
//   parse(argc, argv)        strict — unknown flags are errors, leftover
//                            arguments become positionals.
//   parse_known(argc, argv)  permissive — recognized flags are removed
//                            from argv (argc is updated) and everything
//                            else is left in place, so the remainder can
//                            be handed to another parser (e.g.
//                            google-benchmark).
#ifndef LRT_SUPPORT_ARGPARSE_H_
#define LRT_SUPPORT_ARGPARSE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "support/status.h"

namespace lrt {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  /// Boolean switch: present -> true (no value consumed).
  void add_flag(std::string name, bool* out, std::string help);
  void add_string(std::string name, std::string* out, std::string help);
  void add_int(std::string name, std::int64_t* out, std::string help);
  void add_uint(std::string name, unsigned* out, std::string help);
  void add_double(std::string name, double* out, std::string help);
  /// Value flag that may repeat; each occurrence appends.
  void add_repeated(std::string name, std::vector<std::string>* out,
                    std::string help);
  /// One-line description of the trailing positional arguments, for
  /// usage() only (e.g. "<file.htl>...").
  void set_positional_usage(std::string usage);

  [[nodiscard]] Status parse(int argc, char** argv);
  [[nodiscard]] Status parse_known(int& argc, char** argv);

  [[nodiscard]] const std::vector<std::string>& positionals() const {
    return positionals_;
  }
  /// True when --help was seen; the caller should print usage() and exit.
  [[nodiscard]] bool help_requested() const { return help_requested_; }
  [[nodiscard]] std::string usage() const;

 private:
  enum class Kind { kFlag, kString, kInt, kUint, kDouble, kRepeated };
  struct Option {
    std::string name;  // including the leading "--"
    Kind kind = Kind::kFlag;
    void* target = nullptr;
    std::string help;
  };

  [[nodiscard]] Status run(int& argc, char** argv, bool strict);
  [[nodiscard]] Option* find(std::string_view name);
  [[nodiscard]] Status store(const Option& option, std::string_view text);

  std::string program_;
  std::string description_;
  std::string positional_usage_;
  std::vector<Option> options_;
  std::vector<std::string> positionals_;
  bool help_requested_ = false;
};

}  // namespace lrt

#endif  // LRT_SUPPORT_ARGPARSE_H_
