// A minimal JSON writer for exporting analysis reports to tooling.
// Streaming, allocation-light, and strict about structure (asserts on
// misuse in debug builds); values are escaped per RFC 8259.
#ifndef LRT_SUPPORT_JSON_H_
#define LRT_SUPPORT_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/status.h"

namespace lrt {

/// Usage:
///   JsonWriter json;
///   json.begin_object();
///   json.key("name"); json.value("u1");
///   json.key("srg");  json.value(0.97);
///   json.key("hosts");
///   json.begin_array(); json.value(1); json.value(2); json.end_array();
///   json.end_object();
///   std::string text = std::move(json).str();
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Emits an object key; must be followed by exactly one value or
  /// container.
  void key(std::string_view name);

  void value(std::string_view text);
  void value(const char* text) { value(std::string_view(text)); }
  void value(double number);
  void value(std::int64_t number);
  void value(int number) { value(static_cast<std::int64_t>(number)); }
  void value(std::size_t number) {
    value(static_cast<std::int64_t>(number));
  }
  void value(bool flag);
  void null();
  /// Embeds `json` — one pre-serialized JSON value — verbatim where a
  /// value is expected (nesting a codec's document inside an envelope).
  /// The caller vouches for its well-formedness.
  void raw(std::string_view json);

  /// The document; the writer is spent afterwards.
  [[nodiscard]] std::string str() &&;

 private:
  void comma_if_needed();
  void write_escaped(std::string_view text);

  std::string out_;
  /// One entry per open container: true iff it already has an element.
  std::vector<bool> has_elements_;
  bool after_key_ = false;
};

/// A parsed JSON document node. Numbers are doubles (all the JSON this
/// library writes stays within double precision); object members keep
/// their source order.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }

  /// Object member by key, or nullptr (also for non-objects).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
};

/// Strict RFC 8259 parser for round-tripping this library's own output
/// (full grammar, `\uXXXX` escapes decoded to UTF-8, trailing garbage
/// rejected). Returns kParse errors with a byte offset on malformed
/// input.
[[nodiscard]] Result<JsonValue> parse_json(std::string_view text);

// Typed member accessors for decoding wire documents (the canonical
// config codecs and the lrtd frame protocol). parse_json already
// rejected malformed text, so every failure here is a *schema*
// violation and reports kInvalidArgument naming the `where` path.

/// Required member lookup; `where` prefixes the error ("request.spec").
[[nodiscard]] Result<const JsonValue*> json_member(const JsonValue& object,
                                                   std::string_view key,
                                                   std::string_view where);
[[nodiscard]] Result<std::string> json_member_string(
    const JsonValue& object, std::string_view key, std::string_view where);
[[nodiscard]] Result<std::int64_t> json_member_int(const JsonValue& object,
                                                   std::string_view key,
                                                   std::string_view where);
[[nodiscard]] Result<double> json_member_double(const JsonValue& object,
                                                std::string_view key,
                                                std::string_view where);
[[nodiscard]] Result<bool> json_member_bool(const JsonValue& object,
                                            std::string_view key,
                                            std::string_view where);
/// A number that must be integral (JsonValue stores doubles; exact for
/// the int64 range this library emits).
[[nodiscard]] Result<std::int64_t> json_to_int(const JsonValue& value,
                                               std::string_view where);
/// Verifies `object` carries `"schema": version`.
[[nodiscard]] Status json_check_schema(const JsonValue& object,
                                       std::int64_t version,
                                       std::string_view where);

}  // namespace lrt

#endif  // LRT_SUPPORT_JSON_H_
