// Hash composition helpers for flat cache keys (the synthesis engine's
// memoized schedulability gate keys on (host, task-bitset) pairs).
#ifndef LRT_SUPPORT_HASH_H_
#define LRT_SUPPORT_HASH_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace lrt {

/// Mixes `value` into `seed` (boost::hash_combine's 64-bit variant with
/// the splitmix64 finalizer — good diffusion for small integer keys).
inline std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value) {
  std::uint64_t z = value + 0x9E3779B97F4A7C15ull + (seed << 6) + (seed >> 2);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return seed ^ (z ^ (z >> 31));
}

/// Hash of a word span (order-sensitive).
inline std::uint64_t hash_words(std::span<const std::uint64_t> words,
                                std::uint64_t seed = 0) {
  for (const std::uint64_t w : words) seed = hash_combine(seed, w);
  return seed;
}

/// FNV-1a over a byte string, finished through hash_combine so short
/// inputs still diffuse into all 64 bits. Deterministic across
/// processes and platforms — safe for persistent fingerprints
/// (lrt::Workload::fingerprint keys the lrtd evaluator cache on it).
inline std::uint64_t hash_bytes(std::string_view bytes,
                                std::uint64_t seed = 0) {
  std::uint64_t h = 0xCBF29CE484222325ull;  // FNV offset basis
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;  // FNV prime
  }
  return hash_combine(seed, h);
}

}  // namespace lrt

#endif  // LRT_SUPPORT_HASH_H_
