// A small fixed-size thread pool for fanning independent work items
// (Monte Carlo trials, parameter sweeps) across cores.
//
// Design: N-1 persistent workers plus the calling thread; parallel_for
// hands out indices through one atomic counter, so the pool is
// work-stealing at item granularity — a worker that finishes early simply
// claims the next unclaimed index. Determinism is the caller's concern:
// callers that write results into an index-addressed slot (and reduce
// sequentially afterwards) get bit-identical output for every pool size.
#ifndef LRT_SUPPORT_THREAD_POOL_H_
#define LRT_SUPPORT_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lrt {

class ThreadPool {
 public:
  /// `threads` = total parallelism, including the calling thread; 0 picks
  /// std::thread::hardware_concurrency(). A pool of size 1 spawns nothing
  /// and runs every parallel_for inline.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total worker count (background threads + the caller).
  [[nodiscard]] unsigned size() const { return threads_; }

  /// Runs body(i) exactly once for every i in [0, count), distributed
  /// across the pool; blocks until all items finish. The first exception
  /// thrown by any item is rethrown here (remaining items still run).
  /// Not reentrant: one parallel_for at a time per pool.
  void parallel_for(std::int64_t count,
                    const std::function<void(std::int64_t)>& body);

 private:
  void worker_loop();
  void drain_current_job();

  unsigned threads_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;  ///< bumped once per parallel_for
  bool shutdown_ = false;

  // Current job; written under mutex_ before workers are woken.
  const std::function<void(std::int64_t)>* body_ = nullptr;
  std::int64_t count_ = 0;
  std::atomic<std::int64_t> next_{0};
  unsigned active_ = 0;  ///< background workers still inside the job
  std::exception_ptr error_;
};

}  // namespace lrt

#endif  // LRT_SUPPORT_THREAD_POOL_H_
