#include "support/strings.h"

#include <cctype>
#include <cstdio>

namespace lrt {

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += sep;
    out += items[i];
  }
  return out;
}

bool is_identifier(std::string_view name) {
  if (name.empty()) return false;
  const auto head = static_cast<unsigned char>(name.front());
  if (std::isalpha(head) == 0 && head != '_') return false;
  for (const char c : name.substr(1)) {
    const auto uc = static_cast<unsigned char>(c);
    if (std::isalnum(uc) == 0 && uc != '_') return false;
  }
  return true;
}

std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.12g", value);
  return buffer;
}

}  // namespace lrt
