#include "support/json.h"

#include <cassert>
#include <cmath>

#include "support/strings.h"

namespace lrt {

void JsonWriter::comma_if_needed() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_elements_.empty()) {
    if (has_elements_.back()) out_ += ',';
    has_elements_.back() = true;
  }
}

void JsonWriter::begin_object() {
  comma_if_needed();
  out_ += '{';
  has_elements_.push_back(false);
}

void JsonWriter::end_object() {
  assert(!has_elements_.empty());
  has_elements_.pop_back();
  out_ += '}';
}

void JsonWriter::begin_array() {
  comma_if_needed();
  out_ += '[';
  has_elements_.push_back(false);
}

void JsonWriter::end_array() {
  assert(!has_elements_.empty());
  has_elements_.pop_back();
  out_ += ']';
}

void JsonWriter::key(std::string_view name) {
  assert(!after_key_ && "key() must be followed by a value");
  if (!has_elements_.empty()) {
    if (has_elements_.back()) out_ += ',';
    has_elements_.back() = true;
  }
  out_ += '"';
  write_escaped(name);
  out_ += "\":";
  after_key_ = true;
}

void JsonWriter::value(std::string_view text) {
  comma_if_needed();
  out_ += '"';
  write_escaped(text);
  out_ += '"';
}

void JsonWriter::value(double number) {
  comma_if_needed();
  if (std::isfinite(number)) {
    out_ += format_double(number);
  } else {
    out_ += "null";  // JSON has no Inf/NaN
  }
}

void JsonWriter::value(std::int64_t number) {
  comma_if_needed();
  out_ += std::to_string(number);
}

void JsonWriter::value(bool flag) {
  comma_if_needed();
  out_ += flag ? "true" : "false";
}

void JsonWriter::null() {
  comma_if_needed();
  out_ += "null";
}

std::string JsonWriter::str() && {
  assert(has_elements_.empty() && "unclosed container");
  assert(!after_key_ && "dangling key");
  return std::move(out_);
}

void JsonWriter::write_escaped(std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(c));
          out_ += buffer;
        } else {
          out_ += c;
        }
    }
  }
}

}  // namespace lrt
