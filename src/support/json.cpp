#include "support/json.h"

#include <cassert>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "support/strings.h"

namespace lrt {

void JsonWriter::comma_if_needed() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_elements_.empty()) {
    if (has_elements_.back()) out_ += ',';
    has_elements_.back() = true;
  }
}

void JsonWriter::begin_object() {
  comma_if_needed();
  out_ += '{';
  has_elements_.push_back(false);
}

void JsonWriter::end_object() {
  assert(!has_elements_.empty());
  has_elements_.pop_back();
  out_ += '}';
}

void JsonWriter::begin_array() {
  comma_if_needed();
  out_ += '[';
  has_elements_.push_back(false);
}

void JsonWriter::end_array() {
  assert(!has_elements_.empty());
  has_elements_.pop_back();
  out_ += ']';
}

void JsonWriter::key(std::string_view name) {
  assert(!after_key_ && "key() must be followed by a value");
  if (!has_elements_.empty()) {
    if (has_elements_.back()) out_ += ',';
    has_elements_.back() = true;
  }
  out_ += '"';
  write_escaped(name);
  out_ += "\":";
  after_key_ = true;
}

void JsonWriter::value(std::string_view text) {
  comma_if_needed();
  out_ += '"';
  write_escaped(text);
  out_ += '"';
}

void JsonWriter::value(double number) {
  comma_if_needed();
  if (std::isfinite(number)) {
    out_ += format_double(number);
  } else {
    out_ += "null";  // JSON has no Inf/NaN
  }
}

void JsonWriter::value(std::int64_t number) {
  comma_if_needed();
  out_ += std::to_string(number);
}

void JsonWriter::value(bool flag) {
  comma_if_needed();
  out_ += flag ? "true" : "false";
}

void JsonWriter::null() {
  comma_if_needed();
  out_ += "null";
}

void JsonWriter::raw(std::string_view json) {
  comma_if_needed();
  out_ += json;
}

std::string JsonWriter::str() && {
  assert(has_elements_.empty() && "unclosed container");
  assert(!after_key_ && "dangling key");
  return std::move(out_);
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object)
    if (name == key) return &value;
  return nullptr;
}

namespace {

/// Recursive-descent JSON reader over a string_view.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> run() {
    JsonValue value;
    LRT_RETURN_IF_ERROR(parse_value(value, /*depth=*/0));
    skip_whitespace();
    if (pos_ != text_.size())
      return error("trailing characters after document");
    return value;
  }

 private:
  static constexpr int kMaxDepth = 128;

  Status error(const std::string& message) const {
    return ParseError("json: " + message + " at offset " +
                      std::to_string(pos_));
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status expect_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal)
      return error("invalid literal");
    pos_ += literal.size();
    return Status::Ok();
  }

  Status parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return error("nesting too deep");
    skip_whitespace();
    if (pos_ >= text_.size()) return error("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.string);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return expect_literal("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return expect_literal("false");
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return expect_literal("null");
      default: return parse_number(out);
    }
  }

  Status parse_object(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_whitespace();
    if (consume('}')) return Status::Ok();
    while (true) {
      skip_whitespace();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"')
        return error("expected object key");
      LRT_RETURN_IF_ERROR(parse_string(key));
      skip_whitespace();
      if (!consume(':')) return error("expected ':'");
      JsonValue value;
      LRT_RETURN_IF_ERROR(parse_value(value, depth + 1));
      out.object.emplace_back(std::move(key), std::move(value));
      skip_whitespace();
      if (consume('}')) return Status::Ok();
      if (!consume(',')) return error("expected ',' or '}'");
    }
  }

  Status parse_array(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_whitespace();
    if (consume(']')) return Status::Ok();
    while (true) {
      JsonValue value;
      LRT_RETURN_IF_ERROR(parse_value(value, depth + 1));
      out.array.push_back(std::move(value));
      skip_whitespace();
      if (consume(']')) return Status::Ok();
      if (!consume(',')) return error("expected ',' or ']'");
    }
  }

  Status parse_string(std::string& out) {
    ++pos_;  // '"'
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::Ok();
      }
      if (static_cast<unsigned char>(c) < 0x20)
        return error("unescaped control character in string");
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return error("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          LRT_RETURN_IF_ERROR(parse_hex4(code));
          append_utf8(out, code);
          break;
        }
        default: return error("invalid escape");
      }
    }
    return error("unterminated string");
  }

  Status parse_hex4(unsigned& out) {
    if (pos_ + 4 > text_.size()) return error("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      out <<= 4U;
      if (c >= '0' && c <= '9') {
        out |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return error("invalid \\u escape");
      }
    }
    return Status::Ok();
  }

  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0U | (code >> 6U));
      out += static_cast<char>(0x80U | (code & 0x3FU));
    } else {
      out += static_cast<char>(0xE0U | (code >> 12U));
      out += static_cast<char>(0x80U | ((code >> 6U) & 0x3FU));
      out += static_cast<char>(0x80U | (code & 0x3FU));
    }
  }

  Status parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (consume('-')) {
      // fall through to digits
    }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9')
      return error("invalid number");
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9')
        ++pos_;
    }
    if (consume('.')) {
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9')
        return error("invalid fraction");
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9')
        ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9')
        return error("invalid exponent");
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9')
        ++pos_;
    }
    out.kind = JsonValue::Kind::kNumber;
    out.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                             nullptr);
    return Status::Ok();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> parse_json(std::string_view text) {
  return JsonParser(text).run();
}

namespace {

std::string member_path(std::string_view where, std::string_view key) {
  std::string path(where);
  if (!path.empty()) path += '.';
  path += key;
  return path;
}

}  // namespace

Result<const JsonValue*> json_member(const JsonValue& object,
                                     std::string_view key,
                                     std::string_view where) {
  if (!object.is_object()) {
    return InvalidArgumentError(std::string(where) + " must be an object");
  }
  const JsonValue* member = object.find(key);
  if (member == nullptr) {
    return InvalidArgumentError(member_path(where, key) + " is missing");
  }
  return member;
}

Result<std::string> json_member_string(const JsonValue& object,
                                       std::string_view key,
                                       std::string_view where) {
  LRT_ASSIGN_OR_RETURN(const JsonValue* member,
                       json_member(object, key, where));
  if (!member->is_string()) {
    return InvalidArgumentError(member_path(where, key) +
                                " must be a string");
  }
  return member->string;
}

Result<std::int64_t> json_member_int(const JsonValue& object,
                                     std::string_view key,
                                     std::string_view where) {
  LRT_ASSIGN_OR_RETURN(const JsonValue* member,
                       json_member(object, key, where));
  return json_to_int(*member, member_path(where, key));
}

Result<double> json_member_double(const JsonValue& object,
                                  std::string_view key,
                                  std::string_view where) {
  LRT_ASSIGN_OR_RETURN(const JsonValue* member,
                       json_member(object, key, where));
  if (!member->is_number()) {
    return InvalidArgumentError(member_path(where, key) +
                                " must be a number");
  }
  return member->number;
}

Result<bool> json_member_bool(const JsonValue& object, std::string_view key,
                              std::string_view where) {
  LRT_ASSIGN_OR_RETURN(const JsonValue* member,
                       json_member(object, key, where));
  if (member->kind != JsonValue::Kind::kBool) {
    return InvalidArgumentError(member_path(where, key) +
                                " must be a boolean");
  }
  return member->boolean;
}

Result<std::int64_t> json_to_int(const JsonValue& value,
                                 std::string_view where) {
  if (!value.is_number()) {
    return InvalidArgumentError(std::string(where) + " must be a number");
  }
  const double number = value.number;
  // Exactly representable int64 doubles only; 2^63 itself overflows.
  if (number != std::floor(number) || number < -9.2233720368547758e18 ||
      number >= 9.2233720368547758e18) {
    return InvalidArgumentError(std::string(where) +
                                " must be an integer");
  }
  return static_cast<std::int64_t>(number);
}

Status json_check_schema(const JsonValue& object, std::int64_t version,
                         std::string_view where) {
  LRT_ASSIGN_OR_RETURN(const std::int64_t seen,
                       json_member_int(object, "schema", where));
  if (seen != version) {
    return InvalidArgumentError(
        std::string(where) + ".schema " + std::to_string(seen) +
        " is not supported (expected " + std::to_string(version) + ")");
  }
  return Status::Ok();
}

void JsonWriter::write_escaped(std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(c));
          out_ += buffer;
        } else {
          out_ += c;
        }
    }
  }
}

}  // namespace lrt
