#include "support/math_util.h"

#include <cassert>
#include <cmath>
#include <numeric>

namespace lrt {

bool approx_equal(double a, double b, double tol) {
  return std::fabs(a - b) <= tol;
}

bool approx_ge(double a, double b, double tol) {
  return a >= b - tol;
}

std::int64_t lcm_all(std::span<const std::int64_t> values) {
  std::int64_t acc = 1;
  for (const std::int64_t v : values) {
    assert(v > 0 && "lcm_all requires positive values");
    const std::int64_t g = std::gcd(acc, v);
    assert(acc <= INT64_MAX / (v / g) && "lcm overflow");
    acc = acc / g * v;
  }
  return acc;
}

std::int64_t gcd_all(std::span<const std::int64_t> values) {
  std::int64_t acc = 0;
  for (const std::int64_t v : values) {
    assert(v > 0 && "gcd_all requires positive values");
    acc = std::gcd(acc, v);
  }
  return acc;
}

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  assert(b > 0 && "ceil_div requires positive divisor");
  return a / b + (a % b > 0 ? 1 : 0);
}

bool is_probability(double p) {
  return std::isfinite(p) && p >= 0.0 && p <= 1.0;
}

bool is_reliability(double p) {
  return std::isfinite(p) && p > 0.0 && p <= 1.0;
}

double parallel_or(std::span<const double> probabilities) {
  double none = 1.0;
  for (const double p : probabilities) {
    assert(is_probability(p));
    none *= 1.0 - p;
  }
  return 1.0 - none;
}

double series_and(std::span<const double> probabilities) {
  double all = 1.0;
  for (const double p : probabilities) {
    assert(is_probability(p));
    all *= p;
  }
  return all;
}

}  // namespace lrt
