#include "sched/timeline.h"

#include <algorithm>
#include <set>

namespace lrt::sched {
namespace {

char task_letter(int index) {
  if (index < 26) return static_cast<char>('A' + index);
  if (index < 52) return static_cast<char>('a' + index - 26);
  return '#';
}

}  // namespace

std::string render_timeline(const SchedulabilityReport& report,
                            const impl::Implementation& impl, int width) {
  const spec::Specification& spec = impl.specification();
  const arch::Architecture& arch = impl.architecture();
  const Time period = spec.hyperperiod();
  width = std::max(10, width);

  std::string out = "period: " + std::to_string(period) +
                    " ticks, 1 column ~ " +
                    std::to_string(std::max<Time>(
                        1, period / static_cast<Time>(width))) +
                    " tick(s)\n";

  // Column of a time instant (clamped to [0, width]).
  const auto column = [&](Time t) {
    return static_cast<std::size_t>(
        std::min<Time>(width, t * static_cast<Time>(width) / period));
  };

  std::set<TaskId> used;
  for (const HostSchedule& host : report.host_schedules) {
    std::string row(static_cast<std::size_t>(width), '.');
    for (const ScheduleSlice& slice : host.slices) {
      used.insert(slice.task);
      const std::size_t begin = column(slice.start);
      // Every slice paints at least one column so short tasks stay visible.
      const std::size_t end = std::max(begin + 1, column(slice.end));
      for (std::size_t i = begin; i < end && i < row.size(); ++i) {
        row[i] = task_letter(slice.task);
      }
    }
    out += arch.host(host.host).name + " |" + row + "|";
    if (!host.feasible) out += "  INFEASIBLE: " + host.diagnostic;
    out += "\n";
  }

  out += "legend:";
  for (const TaskId task : used) {
    out += " ";
    out += task_letter(task);
    out += "=" + spec.task(task).name;
  }
  out += "\n";
  return out;
}

}  // namespace lrt::sched
