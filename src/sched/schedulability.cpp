#include "sched/schedulability.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>

#include "support/json.h"
#include "support/strings.h"

namespace lrt::sched {
namespace {

/// Outcome of the shared EDF core: how (and where) the job set failed.
enum class MissKind {
  kNone,      ///< feasible
  kWindow,    ///< WCET exceeds the job's own LET window
  kLate,      ///< job completed after its deadline
  kHopeless,  ///< deadline passed with work remaining
};

struct EdfOutcome {
  MissKind miss = MissKind::kNone;
  std::size_t job = 0;  ///< index into the (sorted) job vector
  Time deadline = 0;
  Time completion = 0;  ///< for kLate
  std::vector<ScheduleSlice> slices;
};

/// Preemptive EDF simulation of one host's jobs over one period — the one
/// core behind both the reporting path (analyze_schedulability) and the
/// lean memoized gate (edf_feasible), so the two can never disagree.
/// Sorts `jobs` by release in place.
EdfOutcome run_edf(std::vector<JobWindow>& jobs) {
  EdfOutcome outcome;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].deadline - jobs[i].release < jobs[i].wcet) {
      outcome.miss = MissKind::kWindow;
      outcome.job = i;
      outcome.deadline = jobs[i].deadline;
      return outcome;
    }
  }

  std::sort(jobs.begin(), jobs.end(),
            [](const JobWindow& a, const JobWindow& b) {
              return a.release < b.release;
            });
  std::vector<Time> remaining;
  remaining.reserve(jobs.size());
  for (const JobWindow& job : jobs) remaining.push_back(job.wcet);

  Time now = 0;
  std::size_t released = 0;
  std::set<std::pair<Time, std::size_t>> ready;  // (deadline, job index)
  std::size_t done = 0;

  while (done < jobs.size()) {
    while (released < jobs.size() && jobs[released].release <= now) {
      ready.emplace(jobs[released].deadline, released);
      ++released;
    }
    if (ready.empty()) {
      // Idle until the next release.
      now = jobs[released].release;
      continue;
    }
    const auto [deadline, index] = *ready.begin();
    // Run the earliest-deadline job until it finishes or a new release can
    // preempt it.
    const Time next_release = released < jobs.size()
                                  ? jobs[released].release
                                  : std::numeric_limits<Time>::max();
    const Time run = std::min(remaining[index], next_release - now);
    const Time end = now + run;

    // Coalesce with the previous slice when the same task continues.
    if (!outcome.slices.empty() &&
        outcome.slices.back().task == jobs[index].task &&
        outcome.slices.back().end == now) {
      outcome.slices.back().end = end;
    } else {
      outcome.slices.push_back({jobs[index].task, now, end});
    }

    remaining[index] -= run;
    now = end;
    if (remaining[index] == 0) {
      ready.erase(ready.begin());
      ++done;
      if (now > deadline) {
        outcome.miss = MissKind::kLate;
        outcome.job = index;
        outcome.deadline = deadline;
        outcome.completion = now;
        return outcome;
      }
    } else if (now > deadline) {
      outcome.miss = MissKind::kHopeless;
      outcome.job = index;
      outcome.deadline = deadline;
      return outcome;
    }
  }
  return outcome;
}

/// Reporting wrapper: run the core, then render the first miss as a
/// human-readable diagnostic.
HostSchedule simulate_edf(const impl::Implementation& impl, HostId host,
                          std::vector<JobWindow> jobs) {
  HostSchedule schedule;
  schedule.host = host;

  EdfOutcome outcome = run_edf(jobs);
  schedule.feasible = outcome.miss == MissKind::kNone;
  schedule.slices = std::move(outcome.slices);
  if (schedule.feasible) return schedule;

  const spec::Specification& spec = impl.specification();
  const JobWindow& job = jobs[outcome.job];
  const std::string where = "task '" + spec.task(job.task).name +
                            "' on host '" +
                            impl.architecture().host(host).name + "'";
  switch (outcome.miss) {
    case MissKind::kWindow:
      schedule.diagnostic =
          where + ": WCET " + std::to_string(job.wcet) +
          " exceeds LET window [" + std::to_string(job.release) + ", " +
          std::to_string(job.deadline) + ")";
      break;
    case MissKind::kLate:
      schedule.diagnostic =
          where + " misses deadline " + std::to_string(outcome.deadline) +
          " (completes at " + std::to_string(outcome.completion) + ")";
      break;
    case MissKind::kHopeless:
      schedule.diagnostic = where + " cannot meet deadline " +
                            std::to_string(outcome.deadline);
      break;
    case MissKind::kNone:
      break;
  }
  return schedule;
}

}  // namespace

bool edf_feasible(std::vector<JobWindow> jobs) {
  return run_edf(jobs).miss == MissKind::kNone;
}

Result<SchedulabilityReport> analyze_schedulability(
    const impl::Implementation& impl) {
  const spec::Specification& spec = impl.specification();
  const arch::Architecture& arch = impl.architecture();

  SchedulabilityReport report;
  Time bus_demand = 0;

  for (TaskId t = 0; t < static_cast<TaskId>(spec.tasks().size()); ++t) {
    const spec::Task& task = spec.task(t);
    for (const HostId h : impl.hosts_for(t)) {
      LRT_ASSIGN_OR_RETURN(const Time wcet, arch.wcet(task.name, h));
      LRT_ASSIGN_OR_RETURN(const Time wctt, arch.wctt(task.name, h));
      JobWindow job;
      job.task = t;
      job.host = h;
      job.release = spec.read_time(t);
      job.deadline = spec.write_time(t) - wctt;
      // Time redundancy reserves recovery budget for every re-execution;
      // checkpointing shrinks the per-retry segment (Izosimov et al.).
      job.wcet = impl.reserved_demand(t, wcet);
      job.wctt = wctt;
      report.jobs.push_back(job);
      bus_demand += wctt;
    }
  }

  report.bus_utilization = static_cast<double>(bus_demand) /
                           static_cast<double>(spec.hyperperiod());
  report.bus_feasible = bus_demand <= spec.hyperperiod();

  report.schedulable = report.bus_feasible;
  for (HostId h = 0; h < static_cast<HostId>(arch.hosts().size()); ++h) {
    std::vector<JobWindow> host_jobs;
    std::copy_if(report.jobs.begin(), report.jobs.end(),
                 std::back_inserter(host_jobs),
                 [h](const JobWindow& job) { return job.host == h; });
    HostSchedule schedule = simulate_edf(impl, h, std::move(host_jobs));
    report.schedulable = report.schedulable && schedule.feasible;
    report.host_schedules.push_back(std::move(schedule));
  }
  return report;
}

bool demand_bound_feasible(const std::vector<JobWindow>& jobs) {
  // Group by host; the criterion is per processor.
  std::set<HostId> hosts;
  for (const JobWindow& job : jobs) hosts.insert(job.host);

  for (const HostId h : hosts) {
    std::vector<const JobWindow*> host_jobs;
    for (const JobWindow& job : jobs) {
      if (job.host == h) host_jobs.push_back(&job);
    }
    for (const JobWindow* a_job : host_jobs) {
      for (const JobWindow* b_job : host_jobs) {
        const Time a = a_job->release;
        const Time b = b_job->deadline;
        if (a >= b) continue;
        Time demand = 0;
        for (const JobWindow* job : host_jobs) {
          if (job->release >= a && job->deadline <= b) demand += job->wcet;
        }
        if (demand > b - a) return false;
      }
    }
  }
  return true;
}

Result<BusSchedule> analyze_bus_schedule(const impl::Implementation& impl,
                                         const SchedulabilityReport& report) {
  const spec::Specification& spec = impl.specification();

  // Broadcast job per (task, host): ready when the replication completes
  // on its host, due at the task's write time.
  struct BusJob {
    TaskId task = -1;
    HostId host = -1;
    Time ready = 0;
    Time deadline = 0;
    Time duration = 0;
  };
  std::vector<BusJob> jobs;
  for (const HostSchedule& host : report.host_schedules) {
    if (!host.feasible) {
      return FailedPreconditionError(
          "bus scheduling needs feasible host schedules (host " +
          std::to_string(host.host) + ": " + host.diagnostic + ")");
    }
    std::map<TaskId, Time> completion;
    for (const ScheduleSlice& slice : host.slices) {
      completion[slice.task] = std::max(completion[slice.task], slice.end);
    }
    for (const auto& [task, end] : completion) {
      LRT_ASSIGN_OR_RETURN(const Time wctt,
                           impl.architecture().wctt(spec.task(task).name,
                                                    host.host));
      jobs.push_back({task, host.host, end, spec.write_time(task), wctt});
    }
  }

  // Non-preemptive EDF over the bus: at each decision point transmit the
  // ready job with the earliest deadline.
  std::sort(jobs.begin(), jobs.end(), [](const BusJob& a, const BusJob& b) {
    return a.ready < b.ready;
  });
  BusSchedule schedule;
  schedule.feasible = true;
  std::vector<bool> done(jobs.size(), false);
  std::size_t remaining = jobs.size();
  Time now = 0;
  while (remaining > 0) {
    // Earliest-deadline ready job; if none ready, jump to the next ready.
    std::size_t best = jobs.size();
    Time next_ready = std::numeric_limits<Time>::max();
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      if (done[j]) continue;
      if (jobs[j].ready <= now) {
        if (best == jobs.size() || jobs[j].deadline < jobs[best].deadline) {
          best = j;
        }
      } else {
        next_ready = std::min(next_ready, jobs[j].ready);
      }
    }
    if (best == jobs.size()) {
      now = next_ready;
      continue;
    }
    const BusJob& job = jobs[best];
    const Time end = now + job.duration;
    schedule.slices.push_back({job.task, job.host, now, end});
    if (end > job.deadline) {
      schedule.feasible = false;
      schedule.diagnostic =
          "broadcast of task '" + spec.task(job.task).name + "' from host " +
          std::to_string(job.host) + " misses write time " +
          std::to_string(job.deadline) + " (transmitted by " +
          std::to_string(end) + ")";
      return schedule;
    }
    now = end;
    done[best] = true;
    --remaining;
  }
  return schedule;
}

std::string to_json(const SchedulabilityReport& report,
                    const impl::Implementation& impl) {
  const spec::Specification& spec = impl.specification();
  JsonWriter json;
  json.begin_object();
  json.key("schedulable");
  json.value(report.schedulable);
  json.key("bus_utilization");
  json.value(report.bus_utilization);
  json.key("bus_feasible");
  json.value(report.bus_feasible);
  json.key("hosts");
  json.begin_array();
  for (const HostSchedule& host : report.host_schedules) {
    json.begin_object();
    json.key("host");
    json.value(impl.architecture().host(host.host).name);
    json.key("feasible");
    json.value(host.feasible);
    if (!host.feasible) {
      json.key("diagnostic");
      json.value(host.diagnostic);
    }
    json.key("slices");
    json.begin_array();
    for (const ScheduleSlice& slice : host.slices) {
      json.begin_object();
      json.key("task");
      json.value(spec.task(slice.task).name);
      json.key("start");
      json.value(slice.start);
      json.key("end");
      json.value(slice.end);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return std::move(json).str();
}

std::string SchedulabilityReport::summary() const {
  std::string out = schedulable ? "SCHEDULABLE" : "NOT SCHEDULABLE";
  out += " (bus utilization " + format_double(bus_utilization) + ")\n";
  for (const HostSchedule& host : host_schedules) {
    out += "  host " + std::to_string(host.host) + ": " +
           (host.feasible ? "feasible, " +
                                std::to_string(host.slices.size()) + " slices"
                          : host.diagnostic) +
           "\n";
  }
  return out;
}

}  // namespace lrt::sched
