// Schedulability analysis (paper Section 2, "Analysis").
//
// "The implementation I is schedulable if (all replications of) all tasks
// complete execution and transmission (of the outputs) between the read and
// the write time of the respective task."
//
// Model: each task replication (t, h) contributes one job per specification
// period with
//     release  = read_t
//     deadline = write_t - wtmap(t, h)   (execution AND broadcast must fit)
//     demand   = wemap(t, h)
// Hosts are single processors running preemptive EDF, which is optimal on
// one processor, so EDF simulation over one specification period decides
// feasibility exactly; the simulation also yields a concrete static cyclic
// schedule (the slices handed to the E-code generator). A processor-demand
// criterion is provided as an independent oracle for property tests.
//
// The broadcast bus is reliable and atomic (paper assumption). Its timing
// is modeled conservatively: every replication's WCTT is reserved inside
// the task's LET by the deadline shrink above, and total bus traffic per
// period must not exceed the period (utilization bound).
#ifndef LRT_SCHED_SCHEDULABILITY_H_
#define LRT_SCHED_SCHEDULABILITY_H_

#include <string>
#include <vector>

#include "impl/implementation.h"
#include "support/status.h"

namespace lrt::sched {

using arch::HostId;
using spec::TaskId;
using spec::Time;

/// One job: the work of task replication (task, host) within a period.
struct JobWindow {
  TaskId task = -1;
  HostId host = -1;
  Time release = 0;   ///< read_t
  Time deadline = 0;  ///< write_t - wctt
  Time wcet = 0;
  Time wctt = 0;
};

/// A contiguous execution slice of a task on a host.
struct ScheduleSlice {
  TaskId task = -1;
  Time start = 0;
  Time end = 0;
};

/// The synthesized schedule of one host over one specification period.
struct HostSchedule {
  HostId host = -1;
  bool feasible = false;
  std::vector<ScheduleSlice> slices;  ///< chronological, non-overlapping
  /// Empty when feasible; otherwise names the first deadline miss.
  std::string diagnostic;
};

struct SchedulabilityReport {
  bool schedulable = false;  ///< every host feasible and the bus fits
  std::vector<JobWindow> jobs;
  std::vector<HostSchedule> host_schedules;  ///< one per architecture host
  double bus_utilization = 0.0;  ///< total WCTT per period / period
  bool bus_feasible = false;
  [[nodiscard]] std::string summary() const;
};

/// JSON document for tooling: {schedulable, bus_utilization, hosts:
/// [{host, feasible, slices: [{task, start, end}]}]}.
[[nodiscard]] std::string to_json(const SchedulabilityReport& report,
                                  const impl::Implementation& impl);

/// Builds the job set and runs EDF per host. Fails only when a WCET/WCTT
/// lookup fails; an infeasible job set yields schedulable == false.
[[nodiscard]] Result<SchedulabilityReport> analyze_schedulability(
    const impl::Implementation& impl);

/// EDF feasibility of one host's job set, with no report, no diagnostics,
/// and no Implementation — the synthesis fast path's memoized gate runs
/// this on jobs built from precomputed (task, host) tables. Shares the
/// simulation core with analyze_schedulability, so the verdict is
/// identical to the corresponding HostSchedule::feasible.
[[nodiscard]] bool edf_feasible(std::vector<JobWindow> jobs);

/// Independent feasibility oracle: the processor-demand criterion. For
/// synchronous jobs within one period, the set is EDF-feasible iff for
/// every interval [a, b] (a a release, b a deadline) the total demand of
/// jobs with release >= a and deadline <= b is at most b - a.
[[nodiscard]] bool demand_bound_feasible(const std::vector<JobWindow>& jobs);

/// One broadcast transmission occupying the bus.
struct BusSlice {
  TaskId task = -1;
  HostId host = -1;
  Time start = 0;
  Time end = 0;  ///< start + wctt
};

/// A constructive schedule for the shared broadcast bus: each task
/// replication transmits non-preemptively after its computed completion
/// (taken from the per-host EDF schedule) and before its write instant.
/// Scheduled with non-preemptive EDF — sufficient, not necessary, so
/// `feasible` may be false for job sets a cleverer bus schedule could fit;
/// the utilization bound in SchedulabilityReport stays the necessary
/// check.
struct BusSchedule {
  bool feasible = false;
  std::vector<BusSlice> slices;  ///< chronological, non-overlapping
  std::string diagnostic;        ///< first missed transmission deadline
};

/// Synthesizes the bus schedule on top of an existing schedulability
/// report (which must carry feasible host schedules).
[[nodiscard]] Result<BusSchedule> analyze_bus_schedule(
    const impl::Implementation& impl, const SchedulabilityReport& report);

}  // namespace lrt::sched

#endif  // LRT_SCHED_SCHEDULABILITY_H_
