// ASCII rendering of synthesized schedules — one Gantt row per host over
// the specification period, for examples, CLI output, and debugging.
#ifndef LRT_SCHED_TIMELINE_H_
#define LRT_SCHED_TIMELINE_H_

#include <string>

#include "sched/schedulability.h"

namespace lrt::sched {

/// Renders `report` as a per-host timeline, e.g.
///
///   period: 20 ticks, 1 column = 2 ticks
///   h1 |AAAAA.BB..|  A=filter B=control
///   h2 |.....BB...|
///
/// Each task is assigned a letter (A, B, ..., then a-z); '.' is idle.
/// `width` is the number of columns the period is scaled to.
[[nodiscard]] std::string render_timeline(const SchedulabilityReport& report,
                                          const impl::Implementation& impl,
                                          int width = 60);

}  // namespace lrt::sched

#endif  // LRT_SCHED_TIMELINE_H_
