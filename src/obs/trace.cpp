#include "obs/trace.h"

#include <algorithm>

#include "obs/metrics.h"
#include "support/json.h"

namespace lrt::obs {
namespace {

/// Shared event rendering for both exports (no surrounding braces).
void write_event(JsonWriter& json, const TraceEvent& event) {
  json.begin_object();
  json.key("ph");
  json.value(event.phase == TraceEvent::Phase::kComplete ? "X" : "i");
  json.key("cat");
  json.value(event.category);
  json.key("name");
  json.value(event.name);
  json.key("pid");
  json.value(1);
  json.key("tid");
  json.value(static_cast<std::int64_t>(event.tid));
  json.key("ts");
  json.value(event.ts_us);
  if (event.phase == TraceEvent::Phase::kComplete) {
    json.key("dur");
    json.value(event.dur_us);
  } else {
    json.key("s");
    json.value("t");  // instant scope: thread
  }
  if (!event.args.empty()) {
    json.key("args");
    json.begin_object();
    for (const TraceArg& arg : event.args) {
      json.key(arg.key);
      json.value(arg.value);
    }
    json.end_object();
  }
  json.end_object();
}

}  // namespace

Tracer::Tracer(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)),
      epoch_(std::chrono::steady_clock::now()) {}

void Tracer::set_drop_counter(MetricsRegistry* metrics) {
  const std::lock_guard<std::mutex> lock(mutex_);
  drop_metrics_ = metrics;
}

std::int64_t Tracer::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::uint32_t Tracer::dense_tid() {
  const auto id = std::this_thread::get_id();
  const auto it = tids_.find(id);
  if (it != tids_.end()) return it->second;
  const auto dense = static_cast<std::uint32_t>(tids_.size());
  tids_.emplace(id, dense);
  return dense;
}

void Tracer::push(TraceEvent&& event) {
  MetricsRegistry* dropped_into = nullptr;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    event.tid = dense_tid();
    if (ring_.size() < capacity_) {
      ring_.push_back(std::move(event));
    } else {
      ring_[next_] = std::move(event);
      next_ = (next_ + 1) % capacity_;
      ++dropped_;
      dropped_into = drop_metrics_;
    }
  }
  // Outside the ring lock: the registry has its own (sharded) locking.
  if (dropped_into != nullptr) dropped_into->counter_add("trace.dropped");
}

void Tracer::complete(std::string_view category, std::string_view name,
                      std::int64_t start_us, std::int64_t end_us,
                      std::initializer_list<TraceArg> args) {
  TraceEvent event;
  event.phase = TraceEvent::Phase::kComplete;
  event.ts_us = start_us;
  event.dur_us = std::max<std::int64_t>(end_us - start_us, 0);
  event.category = category;
  event.name = name;
  event.args.assign(args.begin(), args.end());
  push(std::move(event));
}

void Tracer::instant(std::string_view category, std::string_view name,
                     std::initializer_list<TraceArg> args) {
  TraceEvent event;
  event.phase = TraceEvent::Phase::kInstant;
  event.ts_us = now_us();
  event.category = category;
  event.name = name;
  event.args.assign(args.begin(), args.end());
  push(std::move(event));
}

std::vector<TraceEvent> Tracer::events() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // Once full, `next_` points at the oldest event.
  for (std::size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  return out;
}

std::int64_t Tracer::dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::string Tracer::to_chrome_json() const {
  const std::vector<TraceEvent> snapshot = events();
  JsonWriter json;
  json.begin_object();
  json.key("traceEvents");
  json.begin_array();
  for (const TraceEvent& event : snapshot) write_event(json, event);
  json.end_array();
  json.key("displayTimeUnit");
  json.value("ms");
  json.end_object();
  return std::move(json).str();
}

std::string Tracer::to_jsonl() const {
  const std::vector<TraceEvent> snapshot = events();
  std::string out;
  for (const TraceEvent& event : snapshot) {
    JsonWriter json;
    write_event(json, event);
    out += std::move(json).str();
    out += '\n';
  }
  return out;
}

}  // namespace lrt::obs
