#include "obs/session.h"

#include <cstdio>
#include <fstream>
#include <utility>

namespace lrt::obs {
namespace {

Status write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) return InternalError("cannot open " + path);
  out << content;
  out.close();
  if (!out) return InternalError("cannot write " + path);
  return Status::Ok();
}

}  // namespace

ScopedSession::ScopedSession(SessionOptions options)
    : options_(std::move(options)) {
  if (options_.trace_out.empty() && options_.metrics_out.empty()) return;
  metrics_ = std::make_unique<MetricsRegistry>();
  if (!options_.trace_out.empty()) {
    tracer_ = std::make_unique<Tracer>(options_.trace_capacity);
    tracer_->set_drop_counter(metrics_.get());
  }
  sink_ = Sink(metrics_.get(), tracer_.get());
  previous_ = set_global_sink(&sink_);
  installed_ = true;
}

ScopedSession::~ScopedSession() {
  if (!installed_) return;
  set_global_sink(previous_);
  const Status status = flush();
  if (!status.ok())
    std::fprintf(stderr, "obs: %s\n", status.to_string().c_str());
}

Status ScopedSession::flush() {
  if (!options_.trace_out.empty() && tracer_ != nullptr)
    LRT_RETURN_IF_ERROR(
        write_file(options_.trace_out, tracer_->to_chrome_json()));
  if (!options_.metrics_out.empty() && metrics_ != nullptr)
    LRT_RETURN_IF_ERROR(
        write_file(options_.metrics_out, metrics_->snapshot().to_json()));
  return Status::Ok();
}

void add_session_flags(ArgParser& parser, SessionOptions* options) {
  parser.add_string("--trace-out", &options->trace_out,
                    "write a Chrome trace_event JSON (Perfetto-loadable)");
  parser.add_string("--metrics-out", &options->metrics_out,
                    "write a metrics snapshot JSON");
}

}  // namespace lrt::obs
