// Scoped observability session for CLI binaries: owns a registry and a
// tracer, installs them as the process-global sink for its lifetime, and
// writes `--metrics-out` (metrics snapshot JSON) and `--trace-out`
// (Chrome trace_event JSON) on flush/destruction. When neither output
// path is requested the session is inert — no sink is installed and the
// instrumented code keeps its disabled-path cost.
#ifndef LRT_OBS_SESSION_H_
#define LRT_OBS_SESSION_H_

#include <memory>
#include <string>

#include "obs/sink.h"
#include "support/argparse.h"
#include "support/status.h"

namespace lrt::obs {

struct SessionOptions {
  /// Chrome trace_event JSON output path ("" = no tracing).
  std::string trace_out;
  /// Metrics snapshot JSON output path ("" = no metrics file; the
  /// registry still runs when tracing is on, for the drop counter).
  std::string metrics_out;
  std::size_t trace_capacity = Tracer::kDefaultCapacity;
};

class ScopedSession {
 public:
  explicit ScopedSession(SessionOptions options);
  /// Flushes (stderr on failure) and restores the previous global sink.
  ~ScopedSession();
  ScopedSession(const ScopedSession&) = delete;
  ScopedSession& operator=(const ScopedSession&) = delete;

  [[nodiscard]] bool enabled() const { return sink_.enabled(); }
  /// The installed sink (empty when the session is inert).
  [[nodiscard]] const Sink& sink() const { return sink_; }
  [[nodiscard]] MetricsRegistry* metrics() const { return sink_.metrics(); }
  [[nodiscard]] Tracer* tracer() const { return sink_.tracer(); }

  /// Writes the requested output files; idempotent (later events after a
  /// flush are written by the next flush or the destructor).
  Status flush();

 private:
  SessionOptions options_;
  std::unique_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<Tracer> tracer_;
  Sink sink_;
  Sink* previous_ = nullptr;
  bool installed_ = false;
};

/// Registers the uniform observability flags (--trace-out FILE,
/// --metrics-out FILE) on `parser`, bound to `options`.
void add_session_flags(ArgParser& parser, SessionOptions* options);

}  // namespace lrt::obs

#endif  // LRT_OBS_SESSION_H_
