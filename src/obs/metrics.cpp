#include "obs/metrics.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "support/json.h"

namespace lrt::obs {
namespace {

std::uint64_t next_registry_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

const std::vector<double>& MetricsRegistry::default_bucket_edges() {
  static const std::vector<double> kEdges = {1e-3, 1e-2, 1e-1, 1.0,
                                             1e1,  1e2,  1e3,  1e4};
  return kEdges;
}

MetricsRegistry::MetricsRegistry() : id_(next_registry_id()) {}

MetricsRegistry::Shard& MetricsRegistry::local_shard() {
  thread_local std::unordered_map<std::uint64_t, Shard*> cache;
  const auto it = cache.find(id_);
  if (it != cache.end()) return *it->second;
  const std::lock_guard<std::mutex> lock(shards_mutex_);
  shards_.push_back(std::make_unique<Shard>());
  Shard* shard = shards_.back().get();
  cache.emplace(id_, shard);
  return *shard;
}

void MetricsRegistry::counter_add(std::string_view name,
                                  std::int64_t delta) {
  Shard& shard = local_shard();
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.counters.find(name);
  if (it != shard.counters.end()) {
    it->second += delta;
  } else {
    shard.counters.emplace(std::string(name), delta);
  }
}

void MetricsRegistry::gauge_set(std::string_view name, double value) {
  const std::uint64_t version =
      gauge_clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  Shard& shard = local_shard();
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.gauges.find(name);
  GaugeCell& cell = it != shard.gauges.end()
                        ? it->second
                        : shard.gauges.emplace(std::string(name), GaugeCell{})
                              .first->second;
  cell.value = value;
  cell.version = version;
}

std::vector<double> MetricsRegistry::edges_for(
    std::string_view name) const {
  const std::lock_guard<std::mutex> lock(config_mutex_);
  const auto it = bucket_config_.find(name);
  return it != bucket_config_.end() ? it->second : default_bucket_edges();
}

void MetricsRegistry::set_histogram_buckets(
    std::string_view name, std::vector<double> upper_edges) {
  std::sort(upper_edges.begin(), upper_edges.end());
  const std::lock_guard<std::mutex> lock(config_mutex_);
  bucket_config_.insert_or_assign(std::string(name),
                                  std::move(upper_edges));
}

void MetricsRegistry::histogram_record(std::string_view name,
                                       double value) {
  Shard& shard = local_shard();
  const std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.histograms.find(name);
  if (it == shard.histograms.end()) {
    HistogramCell fresh;
    fresh.upper_edges = edges_for(name);
    fresh.buckets.assign(fresh.upper_edges.size() + 1, 0);
    it = shard.histograms.emplace(std::string(name), std::move(fresh))
             .first;
  }
  HistogramCell* cell = &it->second;
  const auto bucket = static_cast<std::size_t>(
      std::lower_bound(cell->upper_edges.begin(), cell->upper_edges.end(),
                       value) -
      cell->upper_edges.begin());
  ++cell->buckets[bucket];
  if (cell->count == 0) {
    cell->min = value;
    cell->max = value;
  } else {
    cell->min = std::min(cell->min, value);
    cell->max = std::max(cell->max, value);
  }
  ++cell->count;
  cell->sum += value;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::vector<Shard*> shards;
  {
    const std::lock_guard<std::mutex> lock(shards_mutex_);
    shards.reserve(shards_.size());
    for (const auto& shard : shards_) shards.push_back(shard.get());
  }

  std::map<std::string, std::int64_t> counters;
  std::map<std::string, GaugeCell> gauges;
  std::map<std::string, HistogramCell> histograms;
  for (Shard* shard : shards) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    for (const auto& [name, value] : shard->counters)
      counters[name] += value;
    for (const auto& [name, cell] : shard->gauges) {
      GaugeCell& merged = gauges[name];
      if (cell.version >= merged.version) merged = cell;
    }
    for (const auto& [name, cell] : shard->histograms) {
      const auto it = histograms.find(name);
      if (it == histograms.end()) {
        histograms.emplace(name, cell);
        continue;
      }
      HistogramCell& merged = it->second;
      if (merged.upper_edges != cell.upper_edges) continue;  // see header
      for (std::size_t i = 0; i < merged.buckets.size(); ++i)
        merged.buckets[i] += cell.buckets[i];
      if (cell.count > 0) {
        merged.min = merged.count > 0 ? std::min(merged.min, cell.min)
                                      : cell.min;
        merged.max = merged.count > 0 ? std::max(merged.max, cell.max)
                                      : cell.max;
        merged.count += cell.count;
        merged.sum += cell.sum;
      }
    }
  }

  MetricsSnapshot out;
  out.counters.assign(counters.begin(), counters.end());
  out.gauges.reserve(gauges.size());
  for (const auto& [name, cell] : gauges)
    out.gauges.emplace_back(name, cell.value);
  out.histograms.reserve(histograms.size());
  for (const auto& [name, cell] : histograms) {
    HistogramSnapshot hist;
    hist.name = name;
    hist.upper_edges = cell.upper_edges;
    hist.buckets = cell.buckets;
    hist.count = cell.count;
    hist.sum = cell.sum;
    hist.min = cell.min;
    hist.max = cell.max;
    out.histograms.push_back(std::move(hist));
  }
  return out;
}

std::int64_t MetricsSnapshot::counter(std::string_view name) const {
  for (const auto& [key, value] : counters)
    if (key == name) return value;
  return 0;
}

const HistogramSnapshot* MetricsSnapshot::histogram(
    std::string_view name) const {
  for (const auto& hist : histograms)
    if (hist.name == name) return &hist;
  return nullptr;
}

std::string MetricsSnapshot::to_json() const {
  JsonWriter json;
  json.begin_object();
  json.key("counters");
  json.begin_object();
  for (const auto& [name, value] : counters) {
    json.key(name);
    json.value(value);
  }
  json.end_object();
  json.key("gauges");
  json.begin_object();
  for (const auto& [name, value] : gauges) {
    json.key(name);
    json.value(value);
  }
  json.end_object();
  json.key("histograms");
  json.begin_object();
  for (const auto& hist : histograms) {
    json.key(hist.name);
    json.begin_object();
    json.key("upper_edges");
    json.begin_array();
    for (const double edge : hist.upper_edges) json.value(edge);
    json.end_array();
    json.key("buckets");
    json.begin_array();
    for (const std::int64_t bucket : hist.buckets) json.value(bucket);
    json.end_array();
    json.key("count");
    json.value(hist.count);
    json.key("sum");
    json.value(hist.sum);
    json.key("min");
    json.value(hist.min);
    json.key("max");
    json.value(hist.max);
    json.end_object();
  }
  json.end_object();
  json.end_object();
  return std::move(json).str();
}

}  // namespace lrt::obs
