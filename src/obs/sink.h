// The observability attachment point. A Sink bundles an optional
// MetricsRegistry and an optional Tracer; library layers resolve a sink
// once per run (`options.sink` if set, else the process-global sink) and
// every helper is null-safe, so the disabled path costs one pointer test.
// The process-global sink defaults to null: the LRT_* macros below
// compile to a relaxed atomic load plus a branch when no sink is
// installed, and to nothing observable beyond that.
#ifndef LRT_OBS_SINK_H_
#define LRT_OBS_SINK_H_

#include <cstdint>
#include <initializer_list>
#include <string_view>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace lrt::obs {

class Sink {
 public:
  Sink() = default;
  Sink(MetricsRegistry* metrics, Tracer* tracer)
      : metrics_(metrics), tracer_(tracer) {}

  [[nodiscard]] MetricsRegistry* metrics() const { return metrics_; }
  [[nodiscard]] Tracer* tracer() const { return tracer_; }
  [[nodiscard]] bool enabled() const {
    return metrics_ != nullptr || tracer_ != nullptr;
  }

  void counter_add(std::string_view name, std::int64_t delta = 1) const {
    if (metrics_ != nullptr) metrics_->counter_add(name, delta);
  }
  void gauge_set(std::string_view name, double value) const {
    if (metrics_ != nullptr) metrics_->gauge_set(name, value);
  }
  void histogram_record(std::string_view name, double value) const {
    if (metrics_ != nullptr) metrics_->histogram_record(name, value);
  }
  void instant(std::string_view category, std::string_view name,
               std::initializer_list<TraceArg> args = {}) const {
    if (tracer_ != nullptr) tracer_->instant(category, name, args);
  }

 private:
  MetricsRegistry* metrics_ = nullptr;
  Tracer* tracer_ = nullptr;
};

/// The process-global sink; null until set_global_sink() installs one.
[[nodiscard]] Sink* global_sink();

/// Installs (or clears, with nullptr) the process-global sink and
/// returns the previous one. The caller keeps ownership of the Sink and
/// must clear it before destroying the sink's registry/tracer.
Sink* set_global_sink(Sink* sink);

/// `preferred` when non-null, else the global sink (which may be null).
[[nodiscard]] Sink* resolve_sink(Sink* preferred);

/// RAII span: opens at construction, records a kComplete event at scope
/// exit. Category/name must outlive the guard (string literals in
/// practice). A null sink or a sink without a tracer makes both ends a
/// no-op.
class SpanGuard {
 public:
  SpanGuard(const Sink* sink, const char* category, const char* name)
      : tracer_(sink != nullptr ? sink->tracer() : nullptr),
        category_(category),
        name_(name) {
    if (tracer_ != nullptr) start_us_ = tracer_->now_us();
  }
  ~SpanGuard() {
    if (tracer_ != nullptr)
      tracer_->complete(category_, name_, start_us_, tracer_->now_us());
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  Tracer* tracer_;
  const char* category_;
  const char* name_;
  std::int64_t start_us_ = 0;
};

}  // namespace lrt::obs

#define LRT_OBS_CONCAT_INNER(a, b) a##b
#define LRT_OBS_CONCAT(a, b) LRT_OBS_CONCAT_INNER(a, b)

/// Scope span against the process-global sink.
#define LRT_TRACE_SPAN(category, name)                             \
  const ::lrt::obs::SpanGuard LRT_OBS_CONCAT(lrt_obs_span_,        \
                                             __LINE__)(            \
      ::lrt::obs::global_sink(), category, name)

/// Counter bump against the process-global sink.
#define LRT_COUNTER_ADD(name, delta)                                  \
  do {                                                                \
    if (const ::lrt::obs::Sink* lrt_obs_sink_ =                       \
            ::lrt::obs::global_sink())                                \
      lrt_obs_sink_->counter_add((name), (delta));                    \
  } while (false)

#endif  // LRT_OBS_SINK_H_
