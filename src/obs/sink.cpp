#include "obs/sink.h"

#include <atomic>

namespace lrt::obs {
namespace {

std::atomic<Sink*>& global_sink_slot() {
  static std::atomic<Sink*> slot{nullptr};
  return slot;
}

}  // namespace

Sink* global_sink() {
  return global_sink_slot().load(std::memory_order_relaxed);
}

Sink* set_global_sink(Sink* sink) {
  return global_sink_slot().exchange(sink, std::memory_order_acq_rel);
}

Sink* resolve_sink(Sink* preferred) {
  return preferred != nullptr ? preferred : global_sink();
}

}  // namespace lrt::obs
