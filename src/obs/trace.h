// Structured trace events (spans and instants) in a bounded in-memory
// ring. When the ring is full the oldest event is dropped and a drop
// counter is bumped (optionally mirrored into a MetricsRegistry as
// "trace.dropped"). The buffer exports as Chrome `trace_event` JSON —
// loadable in Perfetto / chrome://tracing — and as JSONL, one event per
// line, both rendered through support/json.
#ifndef LRT_OBS_TRACE_H_
#define LRT_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace lrt::obs {

class MetricsRegistry;

/// One named numeric payload on an event ("args" in the Chrome schema).
struct TraceArg {
  std::string key;
  double value = 0.0;
};

struct TraceEvent {
  enum class Phase : std::uint8_t {
    kComplete,  // Chrome "X": a span with an explicit duration.
    kInstant,   // Chrome "i": a point event.
  };
  Phase phase = Phase::kInstant;
  /// Dense per-tracer thread id (0, 1, ...) in first-seen order.
  std::uint32_t tid = 0;
  /// Microseconds since the tracer was constructed.
  std::int64_t ts_us = 0;
  /// Span duration in microseconds (kComplete only).
  std::int64_t dur_us = 0;
  std::string category;
  std::string name;
  std::vector<TraceArg> args;
};

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit Tracer(std::size_t capacity = kDefaultCapacity);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Mirrors ring drops into `metrics` as the "trace.dropped" counter.
  void set_drop_counter(MetricsRegistry* metrics);

  /// Microseconds since construction, for building span endpoints.
  [[nodiscard]] std::int64_t now_us() const;

  /// Records a completed span [start_us, end_us].
  void complete(std::string_view category, std::string_view name,
                std::int64_t start_us, std::int64_t end_us,
                std::initializer_list<TraceArg> args = {});
  /// Records a point event stamped now.
  void instant(std::string_view category, std::string_view name,
               std::initializer_list<TraceArg> args = {});

  /// Buffered events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> events() const;
  [[nodiscard]] std::int64_t dropped() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// {"traceEvents": [...]} in Chrome trace_event format.
  [[nodiscard]] std::string to_chrome_json() const;
  /// One event object per line, same field schema as the Chrome export.
  [[nodiscard]] std::string to_jsonl() const;

 private:
  void push(TraceEvent&& event);
  /// Caller holds mutex_.
  std::uint32_t dense_tid();

  const std::size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  /// Ring storage: grows to capacity_, then `next_` wraps over the oldest.
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;
  std::int64_t dropped_ = 0;
  MetricsRegistry* drop_metrics_ = nullptr;
  std::map<std::thread::id, std::uint32_t> tids_;
};

}  // namespace lrt::obs

#endif  // LRT_OBS_TRACE_H_
