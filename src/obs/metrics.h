// Lock-cheap metrics registry: named counters, gauges, and fixed-bucket
// histograms. Writers append into per-thread shards (one uncontended
// mutex per shard, found through a thread-local cache), so hot-path
// updates never contend with each other; snapshot() merges every shard
// under the registry lock and emits a deterministically ordered view —
// the same program run with 1 or N threads produces the same counters,
// histograms, and (for single-writer gauges) gauges.
#ifndef LRT_OBS_METRICS_H_
#define LRT_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lrt::obs {

/// Merged view of one histogram. Bucket i counts samples with
/// `value <= upper_edges[i]` (and greater than the previous edge); the
/// final bucket counts overflow samples above the last edge, so
/// `buckets.size() == upper_edges.size() + 1`.
struct HistogramSnapshot {
  std::string name;
  std::vector<double> upper_edges;
  std::vector<std::int64_t> buckets;
  std::int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// A merged, immutable view of the registry. Entries are sorted by name
/// so the serialization is stable across thread counts and runs.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Counter value, or 0 when the counter was never touched.
  [[nodiscard]] std::int64_t counter(std::string_view name) const;
  /// Histogram by name, or nullptr when absent.
  [[nodiscard]] const HistogramSnapshot* histogram(
      std::string_view name) const;
  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  [[nodiscard]] std::string to_json() const;
};

class MetricsRegistry {
 public:
  /// Decade edges 1e-3 .. 1e4 — a broad default for millisecond timings.
  static const std::vector<double>& default_bucket_edges();

  MetricsRegistry();
  ~MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void counter_add(std::string_view name, std::int64_t delta = 1);
  void gauge_set(std::string_view name, double value);
  void histogram_record(std::string_view name, double value);

  /// Installs ascending upper edges for `name`. Must be called before the
  /// first record of that histogram; later records bucket against these
  /// edges, earlier shard cells keep the edges they were created with.
  void set_histogram_buckets(std::string_view name,
                             std::vector<double> upper_edges);

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  struct GaugeCell {
    double value = 0.0;
    /// Registry-global stamp; the merge keeps the latest write.
    std::uint64_t version = 0;
  };
  struct HistogramCell {
    std::vector<double> upper_edges;
    std::vector<std::int64_t> buckets;  // upper_edges.size() + 1 cells
    std::int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::map<std::string, std::int64_t, std::less<>> counters;
    std::map<std::string, GaugeCell, std::less<>> gauges;
    std::map<std::string, HistogramCell, std::less<>> histograms;
  };

  /// This thread's shard, created (under the registry lock) on first use.
  Shard& local_shard();
  [[nodiscard]] std::vector<double> edges_for(std::string_view name) const;

  /// Process-unique id keying the thread-local shard cache; never reused,
  /// so a recycled registry address cannot alias a stale cache entry.
  const std::uint64_t id_;
  mutable std::mutex shards_mutex_;
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::mutex config_mutex_;
  std::map<std::string, std::vector<double>, std::less<>> bucket_config_;
  std::atomic<std::uint64_t> gauge_clock_{0};
};

}  // namespace lrt::obs

#endif  // LRT_OBS_METRICS_H_
