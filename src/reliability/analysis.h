// Reliability analysis (paper Section 3).
//
// Given an implementation I, the analysis computes:
//   * task reliability  lambda_t = 1 - prod_{h in I(t)} (1 - hrel(h)),
//     the least probability that (some replication of) t executes at every
//     iteration;
//   * the singular reliability guarantee (SRG) lambda_c of each
//     communicator, by induction over the dataflow:
//       (a) input communicator updated by sensor s: lambda_c = srel(s);
//       (b) communicator written by task t:
//           model 1 (series):      lambda_t * prod lambda_c'
//           model 2 (parallel):    lambda_t * (1 - prod (1 - lambda_c'))
//           model 3 (independent): lambda_t
//         where c' ranges over icset_t.
//
// Proposition 1: for a memory-free (more generally, cycle-safe), race-free
// specification, the implementation is reliable — every reliability-based
// abstract trace satisfies limavg >= mu_c with probability 1 — iff checking
// lambda_c >= mu_c for all c succeeds (sufficiency; by the SLLN).
//
// For specifications with communicator cycles, SRGs are the greatest
// fixpoint of the update operator: cycle-safe cycles are cut by
// independent-model tasks and yield the same values as the induction, while
// an unsafe cycle (no model-3 task) drives the fixpoint — and, per the
// paper, the actual long-run average — to 0.
#ifndef LRT_RELIABILITY_ANALYSIS_H_
#define LRT_RELIABILITY_ANALYSIS_H_

#include <span>
#include <string>
#include <vector>

#include "impl/implementation.h"
#include "support/json.h"
#include "support/status.h"

namespace lrt::reliability {

/// lambda_t for the replication set I(t).
[[nodiscard]] double task_reliability(const impl::Implementation& impl,
                                      spec::TaskId task);

/// SRGs for all communicators by induction over the (model-3-cut) dataflow
/// order. Fails (kFailedPrecondition) when the specification has a
/// communicator cycle with no independent-model task.
[[nodiscard]] Result<std::vector<double>> compute_srgs(
    const impl::Implementation& impl);

/// SRGs as the greatest fixpoint of the update operator, starting from 1.
/// Converges for every specification; on cycle-safe specifications the
/// result agrees with compute_srgs(), and on unsafe cycles it converges to
/// the paper's long-run value 0.
[[nodiscard]] std::vector<double> compute_srgs_fixpoint(
    const impl::Implementation& impl, int max_iterations = 10'000,
    double epsilon = 1e-15);

/// Per-communicator outcome of the LRC check.
struct CommunicatorVerdict {
  spec::CommId comm = -1;
  std::string name;
  double srg = 0.0;   ///< analyzed lambda_c
  double lrc = 1.0;   ///< required mu_c
  bool satisfied = false;
  /// lambda_c - mu_c; negative slack quantifies the violation.
  double slack = 0.0;
};

struct ReliabilityReport {
  bool reliable = false;     ///< all communicators satisfied
  bool memory_free = false;  ///< Prop. 1 precondition
  bool cycle_safe = false;   ///< relaxed precondition (paper Section 3)
  std::vector<CommunicatorVerdict> verdicts;

  /// Verdicts for unsatisfied communicators only.
  [[nodiscard]] std::vector<CommunicatorVerdict> violations() const;
  /// Multi-line table of all verdicts.
  [[nodiscard]] std::string summary() const;
};

/// JSON document for tooling: {reliable, memory_free, cycle_safe,
/// communicators: [{name, srg, lrc, satisfied, slack}]}.
[[nodiscard]] std::string to_json(const ReliabilityReport& report);
/// Same document written into an enclosing writer (lrtd frame payloads).
void write_json(const ReliabilityReport& report, JsonWriter& json);
/// Exact inverse of write_json/to_json; verdict comm ids are recovered
/// from the array order (verdicts are emitted in CommId order).
[[nodiscard]] Result<ReliabilityReport> report_from_json(
    const JsonValue& document);

/// Full reliability analysis of one implementation (Prop. 1 check).
/// Fails only when SRGs are not well-defined (unsafe cycles); an
/// implementation that misses its LRCs yields a report with
/// reliable == false, not an error.
[[nodiscard]] Result<ReliabilityReport> analyze(
    const impl::Implementation& impl);

/// Time-dependent implementation (paper Section 3, "General
/// implementation"): the mapping cycles through `phases` across iterations
/// (phase k at iterations k, k+N, k+2N, ...). The long-run average of the
/// reliability-abstract trace is then the mean over phases of the per-phase
/// SRGs, so the LRC check compares that mean against mu_c.
/// All phases must target the same specification and architecture.
[[nodiscard]] Result<ReliabilityReport> analyze_time_dependent(
    std::span<const impl::Implementation> phases);

}  // namespace lrt::reliability

#endif  // LRT_RELIABILITY_ANALYSIS_H_
