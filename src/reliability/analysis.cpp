#include "reliability/analysis.h"

#include <algorithm>
#include <cmath>

#include "spec/spec_graph.h"
#include "support/json.h"
#include "support/math_util.h"
#include "support/strings.h"

namespace lrt::reliability {
namespace {

using spec::CommId;
using spec::FailureModel;
using spec::TaskId;

/// One SRG update for communicator `c` given current input SRGs.
double srg_rule(const impl::Implementation& impl, CommId c,
                const std::vector<double>& srgs,
                const std::vector<double>& task_lambdas) {
  const spec::Specification& spec = impl.specification();
  const auto writer = spec.writer_of(c);
  if (!writer.has_value()) {
    // Rule (a): sensor-updated input communicator. A communicator that is
    // neither written nor read keeps its (reliable) initial value forever.
    if (spec.is_input_communicator(c) && !spec.readers_of(c).empty()) {
      return impl.architecture()
          .sensor(impl.sensor_for(c))
          .reliability;
    }
    return 1.0;
  }
  const TaskId t = *writer;
  const double lambda_t = task_lambdas[static_cast<std::size_t>(t)];
  const spec::Task& task = spec.task(t);
  std::vector<double> inputs;
  inputs.reserve(spec.input_comm_set(t).size());
  for (const CommId in : spec.input_comm_set(t)) {
    inputs.push_back(srgs[static_cast<std::size_t>(in)]);
  }
  switch (task.model) {
    case FailureModel::kSeries:
      return lambda_t * series_and(inputs);
    case FailureModel::kParallel:
      return lambda_t * parallel_or(inputs);
    case FailureModel::kIndependent:
      return lambda_t;
  }
  return 0.0;
}

std::vector<double> all_task_lambdas(const impl::Implementation& impl) {
  const std::size_t n = impl.specification().tasks().size();
  std::vector<double> lambdas(n);
  for (std::size_t t = 0; t < n; ++t) {
    lambdas[t] = task_reliability(impl, static_cast<TaskId>(t));
  }
  return lambdas;
}

ReliabilityReport make_report(const impl::Implementation& impl,
                              const std::vector<double>& srgs,
                              bool memory_free, bool cycle_safe) {
  const spec::Specification& spec = impl.specification();
  ReliabilityReport report;
  report.memory_free = memory_free;
  report.cycle_safe = cycle_safe;
  report.reliable = true;
  for (CommId c = 0; c < static_cast<CommId>(spec.communicators().size());
       ++c) {
    const spec::Communicator& comm = spec.communicator(c);
    CommunicatorVerdict verdict;
    verdict.comm = c;
    verdict.name = comm.name;
    verdict.srg = srgs[static_cast<std::size_t>(c)];
    verdict.lrc = comm.lrc;
    verdict.slack = verdict.srg - verdict.lrc;
    verdict.satisfied = approx_ge(verdict.srg, verdict.lrc);
    report.reliable = report.reliable && verdict.satisfied;
    report.verdicts.push_back(std::move(verdict));
  }
  return report;
}

}  // namespace

double task_reliability(const impl::Implementation& impl, TaskId task) {
  // Time redundancy: k re-executions make the per-host invocation succeed
  // with 1 - (1 - hrel)^(k+1) (independent transient faults).
  const int attempts = impl.reexecutions(task) + 1;
  std::vector<double> host_rels;
  for (const arch::HostId h : impl.hosts_for(task)) {
    const double fail_once = 1.0 - impl.architecture().host(h).reliability;
    host_rels.push_back(1.0 - std::pow(fail_once, attempts));
  }
  // lambda_t = 1 - prod (1 - hrel(h)): at least one replication survives.
  return parallel_or(host_rels);
}

Result<std::vector<double>> compute_srgs(const impl::Implementation& impl) {
  const spec::Specification& spec = impl.specification();
  const spec::SpecificationGraph graph(spec);
  LRT_ASSIGN_OR_RETURN(const std::vector<CommId> order,
                       graph.reliability_order());

  const std::vector<double> lambdas = all_task_lambdas(impl);
  std::vector<double> srgs(spec.communicators().size(), 1.0);
  for (const CommId c : order) {
    srgs[static_cast<std::size_t>(c)] = srg_rule(impl, c, srgs, lambdas);
  }
  return srgs;
}

std::vector<double> compute_srgs_fixpoint(const impl::Implementation& impl,
                                          int max_iterations,
                                          double epsilon) {
  const spec::Specification& spec = impl.specification();
  const std::vector<double> lambdas = all_task_lambdas(impl);
  std::vector<double> srgs(spec.communicators().size(), 1.0);
  // The update operator is monotone and starts at the top element, so the
  // iteration descends to the greatest fixpoint.
  for (int iter = 0; iter < max_iterations; ++iter) {
    double delta = 0.0;
    std::vector<double> next(srgs.size());
    for (CommId c = 0; c < static_cast<CommId>(srgs.size()); ++c) {
      next[static_cast<std::size_t>(c)] = srg_rule(impl, c, srgs, lambdas);
      delta = std::max(delta,
                       std::fabs(next[static_cast<std::size_t>(c)] -
                                 srgs[static_cast<std::size_t>(c)]));
    }
    srgs = std::move(next);
    if (delta <= epsilon) break;
  }
  // Snap vanishing values: an unsafe cycle converges geometrically to 0 but
  // the iteration stops at a tiny residual. 1e-9 is far below any
  // meaningful reliability, so the snap cannot mask a real fixpoint.
  constexpr double kZeroSnap = 1e-9;
  for (double& srg : srgs) {
    if (srg < kZeroSnap) srg = 0.0;
  }
  return srgs;
}

std::vector<CommunicatorVerdict> ReliabilityReport::violations() const {
  std::vector<CommunicatorVerdict> out;
  std::copy_if(verdicts.begin(), verdicts.end(), std::back_inserter(out),
               [](const CommunicatorVerdict& v) { return !v.satisfied; });
  return out;
}

std::string ReliabilityReport::summary() const {
  std::string out = reliable ? "RELIABLE" : "NOT RELIABLE";
  out += memory_free ? " (memory-free)" : (cycle_safe ? " (cycle-safe)" : "");
  out += "\n";
  for (const CommunicatorVerdict& v : verdicts) {
    out += "  " + v.name + ": srg=" + format_double(v.srg) +
           " lrc=" + format_double(v.lrc) +
           (v.satisfied ? " OK" : " VIOLATED") + "\n";
  }
  return out;
}

std::string to_json(const ReliabilityReport& report) {
  JsonWriter json;
  write_json(report, json);
  return std::move(json).str();
}

void write_json(const ReliabilityReport& report, JsonWriter& json) {
  json.begin_object();
  json.key("reliable");
  json.value(report.reliable);
  json.key("memory_free");
  json.value(report.memory_free);
  json.key("cycle_safe");
  json.value(report.cycle_safe);
  json.key("communicators");
  json.begin_array();
  for (const CommunicatorVerdict& verdict : report.verdicts) {
    json.begin_object();
    json.key("name");
    json.value(verdict.name);
    json.key("srg");
    json.value(verdict.srg);
    json.key("lrc");
    json.value(verdict.lrc);
    json.key("satisfied");
    json.value(verdict.satisfied);
    json.key("slack");
    json.value(verdict.slack);
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

Result<ReliabilityReport> report_from_json(const JsonValue& document) {
  ReliabilityReport report;
  LRT_ASSIGN_OR_RETURN(report.reliable,
                       json_member_bool(document, "reliable", "report"));
  LRT_ASSIGN_OR_RETURN(
      report.memory_free,
      json_member_bool(document, "memory_free", "report"));
  LRT_ASSIGN_OR_RETURN(report.cycle_safe,
                       json_member_bool(document, "cycle_safe", "report"));
  LRT_ASSIGN_OR_RETURN(const JsonValue* comms,
                       json_member(document, "communicators", "report"));
  if (!comms->is_array()) {
    return InvalidArgumentError("report.communicators must be an array");
  }
  for (std::size_t i = 0; i < comms->array.size(); ++i) {
    const std::string path =
        "report.communicators[" + std::to_string(i) + "]";
    const JsonValue& entry = comms->array[i];
    CommunicatorVerdict verdict;
    verdict.comm = static_cast<spec::CommId>(i);
    LRT_ASSIGN_OR_RETURN(verdict.name,
                         json_member_string(entry, "name", path));
    LRT_ASSIGN_OR_RETURN(verdict.srg,
                         json_member_double(entry, "srg", path));
    LRT_ASSIGN_OR_RETURN(verdict.lrc,
                         json_member_double(entry, "lrc", path));
    LRT_ASSIGN_OR_RETURN(verdict.satisfied,
                         json_member_bool(entry, "satisfied", path));
    LRT_ASSIGN_OR_RETURN(verdict.slack,
                         json_member_double(entry, "slack", path));
    report.verdicts.push_back(std::move(verdict));
  }
  return report;
}

Result<ReliabilityReport> analyze(const impl::Implementation& impl) {
  const spec::SpecificationGraph graph(impl.specification());
  if (!graph.is_cycle_safe()) {
    return FailedPreconditionError(
        "reliability analysis requires a cycle-safe specification:\n" +
        graph.describe_cycles());
  }
  LRT_ASSIGN_OR_RETURN(const std::vector<double> srgs, compute_srgs(impl));
  return make_report(impl, srgs, graph.is_memory_free(),
                     graph.is_cycle_safe());
}

Result<ReliabilityReport> analyze_time_dependent(
    std::span<const impl::Implementation> phases) {
  if (phases.empty()) {
    return InvalidArgumentError("time-dependent analysis needs >= 1 phase");
  }
  const spec::Specification& spec = phases.front().specification();
  for (const impl::Implementation& phase : phases) {
    if (&phase.specification() != &spec ||
        &phase.architecture() != &phases.front().architecture()) {
      return InvalidArgumentError(
          "all phases of a time-dependent implementation must share one "
          "specification and architecture");
    }
  }
  const spec::SpecificationGraph graph(spec);
  if (!graph.is_cycle_safe()) {
    return FailedPreconditionError(
        "reliability analysis requires a cycle-safe specification:\n" +
        graph.describe_cycles());
  }

  // Long-run average over phases: iterations cycle deterministically, so by
  // the SLLN applied per congruence class the limit average of the abstract
  // trace is the mean of the per-phase SRGs.
  std::vector<double> mean(spec.communicators().size(), 0.0);
  for (const impl::Implementation& phase : phases) {
    LRT_ASSIGN_OR_RETURN(const std::vector<double> srgs,
                         compute_srgs(phase));
    for (std::size_t c = 0; c < mean.size(); ++c) mean[c] += srgs[c];
  }
  for (double& m : mean) m /= static_cast<double>(phases.size());
  return make_report(phases.front(), mean, graph.is_memory_free(),
                     graph.is_cycle_safe());
}

}  // namespace lrt::reliability
