#include "reliability/incremental.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "spec/spec_graph.h"
#include "support/math_util.h"

namespace lrt::reliability {

namespace {

using arch::HostId;
using arch::SensorId;
using spec::CommId;
using spec::TaskId;

}  // namespace

Result<SrgEvaluator> SrgEvaluator::Create(
    const spec::Specification& spec, const arch::Architecture& arch,
    std::vector<SensorId> sensor_by_comm, std::vector<int> reexecutions) {
  const auto num_comms = spec.communicators().size();
  const auto num_tasks = spec.tasks().size();
  const spec::SpecificationGraph graph(spec);
  LRT_ASSIGN_OR_RETURN(std::vector<CommId> order, graph.reliability_order());

  if (sensor_by_comm.size() != num_comms) {
    return InvalidArgumentError(
        "SrgEvaluator needs one sensor slot per communicator (got " +
        std::to_string(sensor_by_comm.size()) + ", want " +
        std::to_string(num_comms) + ")");
  }
  if (!reexecutions.empty() && reexecutions.size() != num_tasks) {
    return InvalidArgumentError(
        "SrgEvaluator re-execution counts must be empty or one per task");
  }
  if (reexecutions.empty()) reexecutions.assign(num_tasks, 0);

  SrgEvaluator eval;
  eval.spec_ = &spec;
  eval.arch_ = &arch;
  eval.topo_order_ = std::move(order);
  eval.topo_pos_.assign(num_comms, 0);
  for (std::size_t i = 0; i < eval.topo_order_.size(); ++i) {
    eval.topo_pos_[static_cast<std::size_t>(eval.topo_order_[i])] =
        static_cast<int>(i);
  }
  eval.rule_.assign(num_comms, Rule::kConstantOne);
  eval.sensor_rel_.assign(num_comms, 1.0);
  eval.writer_.assign(num_comms, -1);
  eval.lrc_.assign(num_comms, 1.0);
  eval.task_outputs_.assign(num_tasks, {});
  eval.downstream_.assign(num_comms, {});
  eval.reexecutions_ = std::move(reexecutions);

  for (CommId c = 0; c < static_cast<CommId>(num_comms); ++c) {
    const auto cs = static_cast<std::size_t>(c);
    eval.lrc_[cs] = spec.communicator(c).lrc;
    const auto writer = spec.writer_of(c);
    if (writer.has_value()) {
      eval.rule_[cs] = Rule::kTask;
      eval.writer_[cs] = *writer;
      eval.task_outputs_[static_cast<std::size_t>(*writer)].push_back(c);
    } else if (spec.is_input_communicator(c) && !spec.readers_of(c).empty()) {
      const SensorId s = sensor_by_comm[cs];
      if (s < 0 || s >= static_cast<SensorId>(arch.sensors().size())) {
        return InvalidArgumentError(
            "read input communicator '" + spec.communicator(c).name +
            "' needs a valid sensor binding");
      }
      eval.rule_[cs] = Rule::kSensor;
      eval.sensor_rel_[cs] = arch.sensor(s).reliability;
    }
  }
  // Dataflow edges for dirty propagation: c feeds d when d's writer reads
  // c and is not independent-model (model 3 cuts the dependency).
  for (CommId d = 0; d < static_cast<CommId>(num_comms); ++d) {
    const TaskId t = eval.writer_[static_cast<std::size_t>(d)];
    if (t < 0) continue;
    if (spec.task(t).model == spec::FailureModel::kIndependent) continue;
    for (const CommId c : spec.input_comm_set(t)) {
      eval.downstream_[static_cast<std::size_t>(c)].push_back(d);
    }
  }

  eval.srg_.assign(num_comms, 1.0);
  eval.lambda_.assign(num_tasks, 0.0);
  eval.satisfied_.assign(num_comms, 0);
  eval.relaxed_.assign(num_comms, 0);
  eval.dirty_.assign(num_comms, 0);

  // Initial full pass (every task still hostless: lambda_t = 0).
  for (const CommId c : eval.topo_order_) {
    const auto cs = static_cast<std::size_t>(c);
    eval.srg_[cs] = eval.compute_rule(cs);
  }
  eval.unsatisfied_ = 0;
  for (std::size_t c = 0; c < num_comms; ++c) {
    eval.satisfied_[c] = approx_ge(eval.srg_[c], eval.lrc_[c]) ? 1 : 0;
    if (eval.satisfied_[c] == 0) ++eval.unsatisfied_;
  }
  eval.recording_ = true;
  return eval;
}

Result<SrgEvaluator> SrgEvaluator::FromImplementation(
    const impl::Implementation& impl) {
  const spec::Specification& spec = impl.specification();
  const auto num_comms = spec.communicators().size();
  std::vector<SensorId> sensors(num_comms, -1);
  for (CommId c = 0; c < static_cast<CommId>(num_comms); ++c) {
    if (spec.is_input_communicator(c) && !spec.readers_of(c).empty()) {
      sensors[static_cast<std::size_t>(c)] = impl.sensor_for(c);
    }
  }
  std::vector<int> reexecutions(spec.tasks().size(), 0);
  for (TaskId t = 0; t < static_cast<TaskId>(spec.tasks().size()); ++t) {
    reexecutions[static_cast<std::size_t>(t)] = impl.reexecutions(t);
  }
  LRT_ASSIGN_OR_RETURN(SrgEvaluator eval,
                       Create(spec, impl.architecture(), std::move(sensors),
                              std::move(reexecutions)));
  eval.recording_ = false;  // the snapshot is the baseline, not undoable
  for (TaskId t = 0; t < static_cast<TaskId>(spec.tasks().size()); ++t) {
    eval.set_task_hosts(t, impl.hosts_for(t));
  }
  eval.recording_ = true;
  eval.comm_updates_ = 0;
  eval.evals_ = 0;
  return eval;
}

double SrgEvaluator::slack(CommId c) const {
  const auto cs = static_cast<std::size_t>(c);
  return srg_[cs] - lrc_[cs];
}

void SrgEvaluator::set_relaxed(std::span<const CommId> relaxed) {
  std::fill(relaxed_.begin(), relaxed_.end(), 0);
  for (const CommId c : relaxed) relaxed_[static_cast<std::size_t>(c)] = 1;
  unsatisfied_ = 0;
  for (std::size_t c = 0; c < srg_.size(); ++c) {
    if (relaxed_[c] == 0 && satisfied_[c] == 0) ++unsatisfied_;
  }
}

void SrgEvaluator::refresh_satisfied(std::size_t c) {
  const std::uint8_t now = approx_ge(srg_[c], lrc_[c]) ? 1 : 0;
  if (now == satisfied_[c]) return;
  satisfied_[c] = now;
  if (relaxed_[c] == 0) unsatisfied_ += now ? -1 : 1;
}

void SrgEvaluator::store_srg(std::size_t c, double value) {
  if (recording_) {
    trail_.push_back({static_cast<std::int32_t>(c), srg_[c]});
  }
  srg_[c] = value;
  refresh_satisfied(c);
}

void SrgEvaluator::store_lambda(std::size_t t, double value) {
  if (recording_) {
    trail_.push_back({static_cast<std::int32_t>(srg_.size() + t),
                      lambda_[t]});
  }
  lambda_[t] = value;
}

double SrgEvaluator::compute_rule(std::size_t c) {
  switch (rule_[c]) {
    case Rule::kConstantOne:
      return 1.0;
    case Rule::kSensor:
      return sensor_rel_[c];
    case Rule::kTask:
      break;
  }
  const TaskId t = writer_[c];
  const double lambda_t = lambda_[static_cast<std::size_t>(t)];
  const spec::Task& task = spec_->task(t);
  // Same buffer-fill order and reduction calls as analysis.cpp's srg_rule,
  // so the rounding is bit-identical.
  input_buf_.clear();
  for (const CommId in : spec_->input_comm_set(t)) {
    input_buf_.push_back(srg_[static_cast<std::size_t>(in)]);
  }
  switch (task.model) {
    case spec::FailureModel::kSeries:
      return lambda_t * series_and(input_buf_);
    case spec::FailureModel::kParallel:
      return lambda_t * parallel_or(input_buf_);
    case spec::FailureModel::kIndependent:
      return lambda_t;
  }
  return 0.0;
}

std::size_t SrgEvaluator::set_task_hosts(TaskId task,
                                         std::span<const HostId> hosts) {
  ++evals_;
  const auto ts = static_cast<std::size_t>(task);
  // lambda_t exactly as analysis.cpp's task_reliability: per-host
  // 1 - (1 - hrel)^attempts, reduced with parallel_or in host order.
  const int attempts = reexecutions_[ts] + 1;
  host_rel_buf_.clear();
  for (const HostId h : hosts) {
    const double fail_once = 1.0 - arch_->host(h).reliability;
    host_rel_buf_.push_back(1.0 - std::pow(fail_once, attempts));
  }
  const double lambda = parallel_or(host_rel_buf_);
  if (lambda == lambda_[ts]) {
    return 0;  // same lambda_t => every downstream SRG is unchanged
  }
  store_lambda(ts, lambda);

  // Seed the dirty cone with the task's outputs and propagate.
  for (const CommId c : task_outputs_[ts]) {
    const auto cs = static_cast<std::size_t>(c);
    if (dirty_[cs] == 0) {
      dirty_[cs] = 1;
      heap_.push_back(topo_pos_[cs]);
      std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
    }
  }
  const std::int64_t before = comm_updates_;
  propagate();
  return static_cast<std::size_t>(comm_updates_ - before);
}

void SrgEvaluator::propagate() {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
    const int pos = heap_.back();
    heap_.pop_back();
    const CommId c = topo_order_[static_cast<std::size_t>(pos)];
    const auto cs = static_cast<std::size_t>(c);
    dirty_[cs] = 0;
    const double value = compute_rule(cs);
    ++comm_updates_;
    if (value == srg_[cs]) continue;  // unchanged: the cone ends here
    store_srg(cs, value);
    for (const CommId d : downstream_[cs]) {
      const auto ds = static_cast<std::size_t>(d);
      if (dirty_[ds] == 0) {
        dirty_[ds] = 1;
        heap_.push_back(topo_pos_[ds]);
        std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
      }
    }
  }
}

void SrgEvaluator::rollback(Mark m) {
  while (trail_.size() > m) {
    const TrailEntry entry = trail_.back();
    trail_.pop_back();
    const auto slot = static_cast<std::size_t>(entry.slot);
    if (slot < srg_.size()) {
      srg_[slot] = entry.old_value;
      refresh_satisfied(slot);
    } else {
      lambda_[slot - srg_.size()] = entry.old_value;
    }
  }
}

}  // namespace lrt::reliability
