// Failure-pattern analysis: the baseline the paper positions itself
// against (Section 1, related work: "Reliability requirements can also be
// specified by assigning priorities to faults and tasks. Each failure
// pattern (a combination of faulty processors and channels) ... a
// synthesis procedure determines the replication of tasks ...", Pinello
// et al. [13]. "Our approach differs because LRCs are used instead of
// priorities.")
//
// A failure pattern is a set of permanently failed hosts and sensors.
// Under a pattern, a communicator stays *live* iff it keeps receiving
// reliable updates: an input communicator is live iff its sensor survives;
// a task-written communicator is live iff some replication host survives
// and the task's input failure model is satisfiable from live inputs
// (series: all live; parallel: at least one; independent: any).
//
// The analysis enumerates patterns by cardinality and reports, per
// communicator, its *fault-tolerance degree*: the largest k such that
// every pattern with at most k failed components leaves the communicator
// live — the combinatorial counterpart of the paper's probabilistic LRC.
// bench_fault_patterns compares the two views on the 3TS scenarios.
#ifndef LRT_RELIABILITY_FAULT_PATTERNS_H_
#define LRT_RELIABILITY_FAULT_PATTERNS_H_

#include <string>
#include <vector>

#include "impl/implementation.h"
#include "support/status.h"

namespace lrt::reliability {

/// A set of permanently failed components.
struct FaultPattern {
  std::vector<arch::HostId> hosts;
  std::vector<arch::SensorId> sensors;

  [[nodiscard]] std::size_t size() const {
    return hosts.size() + sensors.size();
  }
  /// "{h1, sensor2}" using architecture names.
  [[nodiscard]] std::string to_string(const arch::Architecture& arch) const;
};

/// True iff communicator `comm` keeps receiving reliable updates under
/// `pattern`. Requires a cycle-safe specification.
[[nodiscard]] Result<bool> live_under_pattern(const impl::Implementation& impl,
                                              spec::CommId comm,
                                              const FaultPattern& pattern);

struct PatternVerdict {
  spec::CommId comm = -1;
  std::string name;
  /// Largest k with "live under every pattern of size <= k". Saturates at
  /// the analysis bound: degree == max_failures means "at least".
  int tolerance_degree = 0;
  /// A smallest pattern that kills the communicator (empty when none was
  /// found within the bound).
  FaultPattern minimal_cut;
};

struct FaultPatternReport {
  int max_failures = 0;
  std::int64_t patterns_checked = 0;
  std::vector<PatternVerdict> verdicts;
  [[nodiscard]] std::string summary(const arch::Architecture& arch) const;
};

/// Exhaustive enumeration of all failure patterns of size <= max_failures
/// over the implementation's hosts and bound sensors. Exponential in
/// max_failures; intended for the small architectures of this domain.
[[nodiscard]] Result<FaultPatternReport> analyze_fault_patterns(
    const impl::Implementation& impl, int max_failures);

}  // namespace lrt::reliability

#endif  // LRT_RELIABILITY_FAULT_PATTERNS_H_
