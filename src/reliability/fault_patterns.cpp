#include "reliability/fault_patterns.h"

#include <algorithm>

#include "spec/spec_graph.h"

namespace lrt::reliability {
namespace {

using arch::HostId;
using arch::SensorId;
using spec::CommId;
using spec::TaskId;

/// Evaluates liveness of every communicator under a pattern, in the
/// reliability (model-3-cut topological) order.
std::vector<bool> liveness(const impl::Implementation& impl,
                           const std::vector<CommId>& order,
                           const std::vector<bool>& host_failed,
                           const std::vector<bool>& sensor_failed) {
  const spec::Specification& spec = impl.specification();
  std::vector<bool> live(spec.communicators().size(), true);
  for (const CommId c : order) {
    const auto writer = spec.writer_of(c);
    if (!writer.has_value()) {
      if (spec.is_input_communicator(c) && !spec.readers_of(c).empty()) {
        live[static_cast<std::size_t>(c)] =
            !sensor_failed[static_cast<std::size_t>(impl.sensor_for(c))];
      }
      continue;  // unused communicator: init persists, live
    }
    const TaskId t = *writer;
    bool host_alive = false;
    for (const HostId h : impl.hosts_for(t)) {
      if (!host_failed[static_cast<std::size_t>(h)]) {
        host_alive = true;
        break;
      }
    }
    if (!host_alive) {
      live[static_cast<std::size_t>(c)] = false;
      continue;
    }
    const spec::Task& task = spec.task(t);
    bool inputs_ok = true;
    switch (task.model) {
      case spec::FailureModel::kSeries: {
        for (const CommId in : spec.input_comm_set(t)) {
          inputs_ok = inputs_ok && live[static_cast<std::size_t>(in)];
        }
        break;
      }
      case spec::FailureModel::kParallel: {
        inputs_ok = false;
        for (const CommId in : spec.input_comm_set(t)) {
          inputs_ok = inputs_ok || live[static_cast<std::size_t>(in)];
        }
        break;
      }
      case spec::FailureModel::kIndependent:
        inputs_ok = true;
        break;
    }
    live[static_cast<std::size_t>(c)] = inputs_ok;
  }
  return live;
}

/// Visits every component subset of size exactly `k` (components indexed
/// 0..n-1); `visit` returns false to stop the enumeration.
template <typename Visit>
bool for_each_subset(int n, int k, const Visit& visit) {
  std::vector<int> indices(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) indices[static_cast<std::size_t>(i)] = i;
  if (k == 0) return visit(indices);
  while (true) {
    if (!visit(indices)) return false;
    // Next combination.
    int i = k - 1;
    while (i >= 0 &&
           indices[static_cast<std::size_t>(i)] == n - k + i) {
      --i;
    }
    if (i < 0) return true;
    ++indices[static_cast<std::size_t>(i)];
    for (int j = i + 1; j < k; ++j) {
      indices[static_cast<std::size_t>(j)] =
          indices[static_cast<std::size_t>(j - 1)] + 1;
    }
  }
}

}  // namespace

std::string FaultPattern::to_string(const arch::Architecture& arch) const {
  std::string out = "{";
  bool first = true;
  for (const HostId h : hosts) {
    if (!first) out += ", ";
    out += arch.host(h).name;
    first = false;
  }
  for (const SensorId s : sensors) {
    if (!first) out += ", ";
    out += arch.sensor(s).name;
    first = false;
  }
  return out + "}";
}

Result<bool> live_under_pattern(const impl::Implementation& impl,
                                spec::CommId comm,
                                const FaultPattern& pattern) {
  const spec::Specification& spec = impl.specification();
  if (comm < 0 ||
      comm >= static_cast<CommId>(spec.communicators().size())) {
    return OutOfRangeError("live_under_pattern: communicator out of range");
  }
  const spec::SpecificationGraph graph(spec);
  LRT_ASSIGN_OR_RETURN(const std::vector<CommId> order,
                       graph.reliability_order());
  std::vector<bool> host_failed(impl.architecture().hosts().size(), false);
  std::vector<bool> sensor_failed(impl.architecture().sensors().size(),
                                  false);
  for (const HostId h : pattern.hosts) {
    if (h < 0 || h >= static_cast<HostId>(host_failed.size())) {
      return OutOfRangeError("live_under_pattern: host out of range");
    }
    host_failed[static_cast<std::size_t>(h)] = true;
  }
  for (const SensorId s : pattern.sensors) {
    if (s < 0 || s >= static_cast<SensorId>(sensor_failed.size())) {
      return OutOfRangeError("live_under_pattern: sensor out of range");
    }
    sensor_failed[static_cast<std::size_t>(s)] = true;
  }
  return static_cast<bool>(liveness(
      impl, order, host_failed, sensor_failed)[static_cast<std::size_t>(comm)]);
}

Result<FaultPatternReport> analyze_fault_patterns(
    const impl::Implementation& impl, int max_failures) {
  if (max_failures < 0) {
    return InvalidArgumentError("max_failures must be >= 0");
  }
  const spec::Specification& spec = impl.specification();
  const arch::Architecture& arch = impl.architecture();
  const spec::SpecificationGraph graph(spec);
  LRT_ASSIGN_OR_RETURN(const std::vector<CommId> order,
                       graph.reliability_order());

  // Components: hosts first, then the sensors actually bound.
  const int num_hosts = static_cast<int>(arch.hosts().size());
  std::vector<SensorId> bound_sensors;
  for (CommId c = 0; c < static_cast<CommId>(spec.communicators().size());
       ++c) {
    if (spec.is_input_communicator(c) && !spec.readers_of(c).empty()) {
      const SensorId s = impl.sensor_for(c);
      if (std::find(bound_sensors.begin(), bound_sensors.end(), s) ==
          bound_sensors.end()) {
        bound_sensors.push_back(s);
      }
    }
  }
  const int num_components = num_hosts + static_cast<int>(bound_sensors.size());

  FaultPatternReport report;
  report.max_failures = max_failures;
  const auto num_comms = static_cast<CommId>(spec.communicators().size());
  std::vector<int> degree(static_cast<std::size_t>(num_comms), max_failures);
  std::vector<FaultPattern> cuts(static_cast<std::size_t>(num_comms));
  std::vector<bool> killed(static_cast<std::size_t>(num_comms), false);

  std::vector<bool> host_failed(static_cast<std::size_t>(num_hosts), false);
  std::vector<bool> sensor_failed(arch.sensors().size(), false);

  for (int k = 1; k <= max_failures; ++k) {
    for_each_subset(num_components, k, [&](const std::vector<int>& subset) {
      ++report.patterns_checked;
      FaultPattern pattern;
      std::fill(host_failed.begin(), host_failed.end(), false);
      std::fill(sensor_failed.begin(), sensor_failed.end(), false);
      for (const int component : subset) {
        if (component < num_hosts) {
          host_failed[static_cast<std::size_t>(component)] = true;
          pattern.hosts.push_back(component);
        } else {
          const SensorId s =
              bound_sensors[static_cast<std::size_t>(component - num_hosts)];
          sensor_failed[static_cast<std::size_t>(s)] = true;
          pattern.sensors.push_back(s);
        }
      }
      const std::vector<bool> live =
          liveness(impl, order, host_failed, sensor_failed);
      for (CommId c = 0; c < num_comms; ++c) {
        const auto cs = static_cast<std::size_t>(c);
        if (!killed[cs] && !live[cs]) {
          killed[cs] = true;
          degree[cs] = k - 1;
          cuts[cs] = pattern;
        }
      }
      return true;
    });
  }

  for (CommId c = 0; c < num_comms; ++c) {
    PatternVerdict verdict;
    verdict.comm = c;
    verdict.name = spec.communicator(c).name;
    verdict.tolerance_degree = degree[static_cast<std::size_t>(c)];
    verdict.minimal_cut = cuts[static_cast<std::size_t>(c)];
    report.verdicts.push_back(std::move(verdict));
  }
  return report;
}

std::string FaultPatternReport::summary(const arch::Architecture& arch) const {
  std::string out = "fault-pattern analysis (bound " +
                    std::to_string(max_failures) + " failures, " +
                    std::to_string(patterns_checked) + " patterns)\n";
  for (const PatternVerdict& verdict : verdicts) {
    out += "  " + verdict.name + ": tolerates " +
           std::to_string(verdict.tolerance_degree) +
           (verdict.tolerance_degree == max_failures ? "+" : "") +
           " failure(s)";
    if (verdict.minimal_cut.size() > 0) {
      out += ", killed by " + verdict.minimal_cut.to_string(arch);
    }
    out += "\n";
  }
  return out;
}

}  // namespace lrt::reliability
