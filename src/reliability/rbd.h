// Reliability block diagrams (paper Section 1: "Our approach is closest
// to that of RBDs [Kececioglu], where systems are modeled as networks with
// AND/OR junctions: an OR junction works reliably when any of its inputs
// is reliable, and an AND junction requires that all inputs be reliable").
//
// This module provides the RBD algebra (components, series/AND,
// parallel/OR, and k-of-n junctions over independent components) and a
// bridge that materializes the RBD corresponding to the paper's SRG
// computation for a communicator. Evaluating that RBD reproduces
// compute_srgs() exactly — the structural justification for the SRG rules.
//
// Independence caveat (inherited from the paper's rules): when two inputs
// of a junction share an ancestor (a diamond in the dataflow), the SRG
// rules — and therefore the generated RBD — treat them as independent.
#ifndef LRT_RELIABILITY_RBD_H_
#define LRT_RELIABILITY_RBD_H_

#include <string>
#include <vector>

#include "impl/implementation.h"
#include "support/status.h"

namespace lrt::reliability {

/// A reliability block diagram over independent components. Nodes are
/// created through the builder methods and referenced by id; the diagram
/// is immutable once built and evaluation is memoized.
class Rbd {
 public:
  using NodeId = int;

  /// A leaf component with the given reliability in [0, 1].
  NodeId component(double reliability, std::string label = "");

  /// AND junction: reliable iff every child is reliable.
  NodeId series(std::vector<NodeId> children);

  /// OR junction: reliable iff at least one child is reliable.
  NodeId parallel(std::vector<NodeId> children);

  /// Reliable iff at least k of the children are reliable (children
  /// independent but not necessarily identical; O(n^2) dynamic program).
  /// k == 1 coincides with parallel, k == n with series.
  NodeId k_of_n(int k, std::vector<NodeId> children);

  /// Probability the (sub)system rooted at `node` is reliable.
  [[nodiscard]] double reliability(NodeId node) const;

  /// "AND(h1=0.99, OR(s1=0.9, s2=0.9))" — for diagnostics and docs.
  [[nodiscard]] std::string to_string(NodeId node) const;

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

 private:
  enum class Kind { kComponent, kSeries, kParallel, kKofN };
  struct Node {
    Kind kind = Kind::kComponent;
    double reliability = 1.0;  ///< kComponent only
    int k = 0;                 ///< kKofN only
    std::vector<NodeId> children;
    std::string label;
  };
  NodeId add(Node node);

  std::vector<Node> nodes_;
};

/// The RBD of communicator `comm`'s SRG under `impl`: task replication
/// sets become OR junctions of host components, series/parallel input
/// failure models become AND / AND-over-OR junctions, sensors become
/// components. Returns the diagram and its root. Fails on specifications
/// that are not cycle-safe.
struct SrgRbd {
  Rbd rbd;
  Rbd::NodeId root = -1;
};
[[nodiscard]] Result<SrgRbd> build_srg_rbd(const impl::Implementation& impl,
                                           spec::CommId comm);

}  // namespace lrt::reliability

#endif  // LRT_RELIABILITY_RBD_H_
