#include "reliability/rbd.h"

#include <cassert>

#include "spec/spec_graph.h"
#include "support/math_util.h"
#include "support/strings.h"

namespace lrt::reliability {

Rbd::NodeId Rbd::add(Node node) {
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size()) - 1;
}

Rbd::NodeId Rbd::component(double reliability, std::string label) {
  assert(is_probability(reliability));
  Node node;
  node.kind = Kind::kComponent;
  node.reliability = reliability;
  node.label = std::move(label);
  return add(std::move(node));
}

Rbd::NodeId Rbd::series(std::vector<NodeId> children) {
  assert(!children.empty());
  Node node;
  node.kind = Kind::kSeries;
  node.children = std::move(children);
  return add(std::move(node));
}

Rbd::NodeId Rbd::parallel(std::vector<NodeId> children) {
  assert(!children.empty());
  Node node;
  node.kind = Kind::kParallel;
  node.children = std::move(children);
  return add(std::move(node));
}

Rbd::NodeId Rbd::k_of_n(int k, std::vector<NodeId> children) {
  assert(k >= 1 && k <= static_cast<int>(children.size()));
  Node node;
  node.kind = Kind::kKofN;
  node.k = k;
  node.children = std::move(children);
  return add(std::move(node));
}

double Rbd::reliability(NodeId id) const {
  const Node& node = nodes_[static_cast<std::size_t>(id)];
  switch (node.kind) {
    case Kind::kComponent:
      return node.reliability;
    case Kind::kSeries: {
      double all = 1.0;
      for (const NodeId child : node.children) all *= reliability(child);
      return all;
    }
    case Kind::kParallel: {
      double none = 1.0;
      for (const NodeId child : node.children) {
        none *= 1.0 - reliability(child);
      }
      return 1.0 - none;
    }
    case Kind::kKofN: {
      // dp[j]: probability that exactly j of the processed children work.
      std::vector<double> dp(node.children.size() + 1, 0.0);
      dp[0] = 1.0;
      std::size_t processed = 0;
      for (const NodeId child : node.children) {
        const double p = reliability(child);
        ++processed;
        for (std::size_t j = processed; j > 0; --j) {
          dp[j] = dp[j] * (1.0 - p) + dp[j - 1] * p;
        }
        dp[0] *= 1.0 - p;
      }
      double at_least_k = 0.0;
      for (std::size_t j = static_cast<std::size_t>(node.k);
           j <= node.children.size(); ++j) {
        at_least_k += dp[j];
      }
      return at_least_k;
    }
  }
  return 0.0;
}

std::string Rbd::to_string(NodeId id) const {
  const Node& node = nodes_[static_cast<std::size_t>(id)];
  switch (node.kind) {
    case Kind::kComponent:
      return (node.label.empty() ? "c" : node.label) + "=" +
             format_double(node.reliability);
    case Kind::kSeries:
    case Kind::kParallel:
    case Kind::kKofN: {
      std::string out = node.kind == Kind::kSeries ? "AND("
                        : node.kind == Kind::kParallel
                            ? "OR("
                            : std::to_string(node.k) + "-of-" +
                                  std::to_string(node.children.size()) + "(";
      for (std::size_t i = 0; i < node.children.size(); ++i) {
        if (i > 0) out += ", ";
        out += to_string(node.children[i]);
      }
      return out + ")";
    }
  }
  return "?";
}

namespace {

/// Recursively expands communicator `comm` into `rbd`, per the SRG rules.
Rbd::NodeId expand(const impl::Implementation& impl, Rbd& rbd,
                   spec::CommId comm) {
  const spec::Specification& spec = impl.specification();
  const arch::Architecture& arch = impl.architecture();

  const auto writer = spec.writer_of(comm);
  if (!writer.has_value()) {
    if (spec.is_input_communicator(comm) && !spec.readers_of(comm).empty()) {
      const arch::Sensor& sensor = arch.sensor(impl.sensor_for(comm));
      return rbd.component(sensor.reliability, sensor.name);
    }
    // Never updated: the initial value persists reliably.
    return rbd.component(1.0, spec.communicator(comm).name + "_init");
  }

  const spec::TaskId t = *writer;
  const spec::Task& task = spec.task(t);
  // Replication set: an OR junction of host components.
  std::vector<Rbd::NodeId> replicas;
  for (const arch::HostId h : impl.hosts_for(t)) {
    replicas.push_back(
        rbd.component(arch.host(h).reliability, arch.host(h).name));
  }
  const Rbd::NodeId task_node =
      replicas.size() == 1 ? replicas.front() : rbd.parallel(replicas);

  if (task.model == spec::FailureModel::kIndependent) return task_node;

  std::vector<Rbd::NodeId> inputs;
  for (const spec::CommId in : spec.input_comm_set(t)) {
    inputs.push_back(expand(impl, rbd, in));
  }
  if (task.model == spec::FailureModel::kSeries) {
    std::vector<Rbd::NodeId> children = {task_node};
    children.insert(children.end(), inputs.begin(), inputs.end());
    return rbd.series(std::move(children));
  }
  // Parallel model: the task in series with an OR over its inputs.
  const Rbd::NodeId any_input =
      inputs.size() == 1 ? inputs.front() : rbd.parallel(inputs);
  return rbd.series({task_node, any_input});
}

}  // namespace

Result<SrgRbd> build_srg_rbd(const impl::Implementation& impl,
                             spec::CommId comm) {
  const spec::Specification& spec = impl.specification();
  if (comm < 0 ||
      comm >= static_cast<spec::CommId>(spec.communicators().size())) {
    return OutOfRangeError("build_srg_rbd: communicator id out of range");
  }
  const spec::SpecificationGraph graph(spec);
  if (!graph.is_cycle_safe()) {
    return FailedPreconditionError(
        "build_srg_rbd requires a cycle-safe specification:\n" +
        graph.describe_cycles());
  }
  SrgRbd result;
  result.root = expand(impl, result.rbd, comm);
  return result;
}

}  // namespace lrt::reliability
