// Incremental SRG evaluation — the synthesis fast path's kernel.
//
// reliability::analyze() recomputes everything from scratch: it rebuilds
// the specification graph, re-derives every task reliability lambda_t, and
// re-runs the Section-3 induction over all communicators. That is the
// right shape for a one-shot analysis, but a synthesis search evaluates
// thousands of candidate mappings that differ in a *single* task's host
// set. The SRG induction is monotone and local: changing I(t) can only
// affect lambda_t and the SRGs of communicators downstream of t (where
// independent-model tasks cut the dataflow). SrgEvaluator exploits this:
//
//  * the topological order of the (model-3-cut) dataflow is computed once
//    at construction;
//  * per-task lambda_t and per-communicator SRGs live in flat
//    std::vector<double> state; evaluating a single-task host-set change
//    re-propagates only through the dirty downstream cone, with no
//    impl::Implementation::Build and no per-candidate allocation;
//  * an undo trail (mark()/rollback()) lets a branch-and-bound search
//    backtrack in O(|changes|) without re-propagating.
//
// Bit-identity contract: srgs() is bitwise identical to what
// reliability::analyze() reports for an Implementation with the same host
// sets, sensor bindings, and re-execution counts — same formulas
// (math_util's series_and / parallel_or, std::pow), same evaluation order
// (hosts ascending, inputs in input_comm_set order, communicators in
// reliability_order). tests/incremental_test.cpp enforces this against
// randomized workloads and mutations.
#ifndef LRT_RELIABILITY_INCREMENTAL_H_
#define LRT_RELIABILITY_INCREMENTAL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "impl/implementation.h"
#include "support/status.h"

namespace lrt::reliability {

class SrgEvaluator {
 public:
  /// Builds the evaluator for (spec, arch) with the given sensor binding
  /// per communicator (by CommId; -1 = unbound, required to be bound for
  /// every read input communicator) and re-execution count per task
  /// (empty = none anywhere). Every task starts with an empty host set
  /// (lambda_t = 0); call set_task_hosts() to populate. `spec` and `arch`
  /// must outlive the evaluator. Fails with kFailedPrecondition when the
  /// specification is not cycle-safe (the induction is ill-founded) and
  /// kInvalidArgument for missing/out-of-range bindings.
  static Result<SrgEvaluator> Create(const spec::Specification& spec,
                                     const arch::Architecture& arch,
                                     std::vector<arch::SensorId> sensor_by_comm,
                                     std::vector<int> reexecutions = {});

  /// Convenience: evaluator snapshotting an existing implementation's
  /// sensor bindings, re-execution counts, and host sets. srgs() of the
  /// result is bit-identical to compute_srgs(impl).
  static Result<SrgEvaluator> FromImplementation(
      const impl::Implementation& impl);

  /// Replaces I(t) and re-propagates SRGs through the dirty downstream
  /// cone. `hosts` must be duplicate-free and ascending (the order
  /// Implementation stores, which the bit-identity contract depends on).
  /// Returns the number of communicator updates performed (0 when the new
  /// host set yields the same lambda_t).
  std::size_t set_task_hosts(spec::TaskId task,
                             std::span<const arch::HostId> hosts);

  // --- current state ---
  [[nodiscard]] const std::vector<double>& srgs() const { return srg_; }
  [[nodiscard]] double srg(spec::CommId c) const {
    return srg_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] double task_lambda(spec::TaskId t) const {
    return lambda_[static_cast<std::size_t>(t)];
  }
  /// lambda_c - mu_c of communicator `c` under the current assignment.
  [[nodiscard]] double slack(spec::CommId c) const;
  /// approx_ge(lambda_c, mu_c), exactly analyze()'s verdict.
  [[nodiscard]] bool satisfied(spec::CommId c) const {
    return satisfied_[static_cast<std::size_t>(c)] != 0;
  }
  /// True iff every non-relaxed communicator's LRC holds. O(1): the
  /// violation count is maintained incrementally.
  [[nodiscard]] bool all_lrcs_satisfied() const { return unsatisfied_ == 0; }

  /// Declares the waived-LRC set (the synthesis options' relaxed_lrcs).
  /// Relaxed communicators keep their SRGs but stop counting as
  /// violations. Ids must be in range.
  void set_relaxed(std::span<const spec::CommId> relaxed);

  // --- backtracking ---
  /// An undo-trail position. Changes after mark() can be reverted with
  /// rollback(); marks nest (LIFO).
  using Mark = std::size_t;
  [[nodiscard]] Mark mark() const { return trail_.size(); }
  /// Reverts every lambda/SRG change recorded after `m`, restoring
  /// bit-identical state (including the violation count).
  void rollback(Mark m);
  /// Drops the undo history (long-running callers that never roll back).
  void discard_trail() { trail_.clear(); }

  // --- effort counters ---
  /// Total communicator SRG recomputations across all set_task_hosts
  /// calls (the "dirty cone" work; a full analyze() costs |cset|).
  [[nodiscard]] std::int64_t comm_updates() const { return comm_updates_; }
  /// Number of set_task_hosts calls.
  [[nodiscard]] std::int64_t evals() const { return evals_; }

 private:
  SrgEvaluator() = default;

  /// How a communicator's SRG is produced (paper Section 3 rules).
  enum class Rule : std::uint8_t { kConstantOne, kSensor, kTask };

  void store_srg(std::size_t c, double value);
  void store_lambda(std::size_t t, double value);
  [[nodiscard]] double compute_rule(std::size_t c);
  void propagate();
  void refresh_satisfied(std::size_t c);

  const spec::Specification* spec_ = nullptr;
  const arch::Architecture* arch_ = nullptr;

  // Static structure (built once).
  std::vector<spec::CommId> topo_order_;
  std::vector<int> topo_pos_;                   // by CommId
  std::vector<Rule> rule_;                      // by CommId
  std::vector<double> sensor_rel_;              // by CommId (kSensor only)
  std::vector<spec::TaskId> writer_;            // by CommId (-1 = none)
  std::vector<double> lrc_;                     // by CommId
  std::vector<std::vector<spec::CommId>> task_outputs_;     // by TaskId
  std::vector<std::vector<spec::CommId>> downstream_;       // by CommId
  std::vector<int> reexecutions_;               // by TaskId

  // Flat mutable state.
  std::vector<double> srg_;           // by CommId
  std::vector<double> lambda_;        // by TaskId
  std::vector<std::uint8_t> satisfied_;  // by CommId
  std::vector<std::uint8_t> relaxed_;    // by CommId
  std::int64_t unsatisfied_ = 0;  // non-relaxed communicators violated

  // Reused buffers (no per-candidate allocation in steady state).
  std::vector<double> input_buf_;
  std::vector<double> host_rel_buf_;
  std::vector<int> heap_;                 // topo positions, min-heap
  std::vector<std::uint8_t> dirty_;       // by CommId

  // Undo trail: slot < |cset| is an SRG, slot >= |cset| is a lambda.
  struct TrailEntry {
    std::int32_t slot;
    double old_value;
  };
  std::vector<TrailEntry> trail_;
  bool recording_ = false;

  std::int64_t comm_updates_ = 0;
  std::int64_t evals_ = 0;
};

}  // namespace lrt::reliability

#endif  // LRT_RELIABILITY_INCREMENTAL_H_
