// The architecture A = (hset, sset, C_S) of paper Section 2: fail-silent
// hosts and sensors on a reliable atomic broadcast network, with host and
// sensor reliability maps (hrel, srel) and per-(task, host) WCET/WCTT maps.
//
// Reliabilities here are *singular* (per-invocation) guarantees: hrel(h) is
// the probability that host h does not fail during one task invocation.
#ifndef LRT_ARCH_ARCHITECTURE_H_
#define LRT_ARCH_ARCHITECTURE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "spec/declarations.h"
#include "support/status.h"

namespace lrt::arch {

using HostId = std::int32_t;
using SensorId = std::int32_t;
using spec::Time;

/// A fail-silent host: if it fails it produces no (garbage) output.
struct Host {
  std::string name;
  /// hrel(h) in (0, 1]: probability a task invocation on this host
  /// completes (the host does not fail during the invocation).
  double reliability = 1.0;
};

/// A sensor updating an input communicator.
struct Sensor {
  std::string name;
  /// srel(s) in (0, 1].
  double reliability = 1.0;
};

/// Builder-side description. WCET/WCTT entries are keyed by task and host
/// *name* so an architecture can be declared before (or independently of)
/// the specification it will serve.
struct ArchitectureConfig {
  std::string name = "arch";
  std::vector<Host> hosts;
  std::vector<Sensor> sensors;

  struct MetricEntry {
    std::string task;
    std::string host;
    Time wcet = 1;  ///< worst-case execution time, ticks
    Time wctt = 1;  ///< worst-case (broadcast) transmission time, ticks
  };
  std::vector<MetricEntry> metrics;

  /// Fallback used for any (task, host) pair without an explicit entry;
  /// disable by setting to nullopt, making missing entries an error at
  /// lookup validation time.
  std::optional<Time> default_wcet = 1;
  std::optional<Time> default_wctt = 1;
};

/// An immutable, validated architecture.
class Architecture {
 public:
  static Result<Architecture> Build(ArchitectureConfig config);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Host>& hosts() const { return hosts_; }
  [[nodiscard]] const std::vector<Sensor>& sensors() const {
    return sensors_;
  }

  [[nodiscard]] const Host& host(HostId id) const {
    return hosts_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const Sensor& sensor(SensorId id) const {
    return sensors_[static_cast<std::size_t>(id)];
  }

  [[nodiscard]] std::optional<HostId> find_host(std::string_view name) const;
  [[nodiscard]] std::optional<SensorId> find_sensor(
      std::string_view name) const;

  /// wemap(t, h): worst-case execution time of task `task` on host `id`.
  /// Falls back to the config default; errors when neither exists.
  [[nodiscard]] Result<Time> wcet(std::string_view task, HostId id) const;
  /// wtmap(t, h): worst-case broadcast transmission time.
  [[nodiscard]] Result<Time> wctt(std::string_view task, HostId id) const;

  /// Reconstructs a by-name config equivalent to this architecture, with
  /// the explicit metric entries sorted by (task, host). Build(to_config())
  /// round-trips; arch::to_json(to_config()) is the canonical wire
  /// document of this architecture.
  [[nodiscard]] ArchitectureConfig to_config() const;

 private:
  Architecture() = default;

  [[nodiscard]] Result<Time> metric(std::string_view task, HostId id,
                                    bool want_wcet) const;

  std::string name_;
  std::vector<Host> hosts_;
  std::vector<Sensor> sensors_;
  std::unordered_map<std::string, HostId> host_index_;
  std::unordered_map<std::string, SensorId> sensor_index_;
  /// (task name) -> per-host (wcet, wctt); -1 marks "no explicit entry".
  std::unordered_map<std::string, std::vector<std::pair<Time, Time>>>
      metrics_;
  std::optional<Time> default_wcet_;
  std::optional<Time> default_wctt_;
};

}  // namespace lrt::arch

#endif  // LRT_ARCH_ARCHITECTURE_H_
