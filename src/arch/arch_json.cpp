#include "arch/arch_json.h"

#include <algorithm>
#include <tuple>
#include <utility>
#include <vector>

#include "spec/spec_json.h"

namespace lrt::arch {

namespace {

void write_optional_time(const std::optional<Time>& value,
                         JsonWriter& json) {
  if (value.has_value()) {
    json.value(*value);
  } else {
    json.null();
  }
}

Result<std::optional<Time>> optional_time_from_json(
    const JsonValue& object, std::string_view key, std::string_view where) {
  LRT_ASSIGN_OR_RETURN(const JsonValue* member,
                       json_member(object, key, where));
  if (member->kind == JsonValue::Kind::kNull) return std::optional<Time>();
  LRT_ASSIGN_OR_RETURN(
      const std::int64_t value,
      json_to_int(*member, std::string(where) + "." + std::string(key)));
  return std::optional<Time>(value);
}

}  // namespace

void write_json(const ArchitectureConfig& config, JsonWriter& json) {
  // The metric map is the one order-insensitive field of the config:
  // Build keys it by (task, host), so the canonical form sorts it.
  std::vector<const ArchitectureConfig::MetricEntry*> metrics;
  metrics.reserve(config.metrics.size());
  for (const auto& entry : config.metrics) metrics.push_back(&entry);
  std::sort(metrics.begin(), metrics.end(),
            [](const auto* a, const auto* b) {
              return std::tie(a->task, a->host) < std::tie(b->task, b->host);
            });

  json.begin_object();
  json.key("schema");
  json.value(spec::kConfigSchemaVersion);
  json.key("name");
  json.value(config.name);
  json.key("hosts");
  json.begin_array();
  for (const Host& host : config.hosts) {
    json.begin_object();
    json.key("name");
    json.value(host.name);
    json.key("reliability");
    json.value(host.reliability);
    json.end_object();
  }
  json.end_array();
  json.key("sensors");
  json.begin_array();
  for (const Sensor& sensor : config.sensors) {
    json.begin_object();
    json.key("name");
    json.value(sensor.name);
    json.key("reliability");
    json.value(sensor.reliability);
    json.end_object();
  }
  json.end_array();
  json.key("metrics");
  json.begin_array();
  for (const ArchitectureConfig::MetricEntry* entry : metrics) {
    json.begin_object();
    json.key("task");
    json.value(entry->task);
    json.key("host");
    json.value(entry->host);
    json.key("wcet");
    json.value(entry->wcet);
    json.key("wctt");
    json.value(entry->wctt);
    json.end_object();
  }
  json.end_array();
  json.key("default_wcet");
  write_optional_time(config.default_wcet, json);
  json.key("default_wctt");
  write_optional_time(config.default_wctt, json);
  json.end_object();
}

std::string to_json(const ArchitectureConfig& config) {
  JsonWriter json;
  write_json(config, json);
  return std::move(json).str();
}

Result<ArchitectureConfig> architecture_config_from_json(
    const JsonValue& document) {
  LRT_RETURN_IF_ERROR(
      json_check_schema(document, spec::kConfigSchemaVersion, "arch"));
  ArchitectureConfig config;
  LRT_ASSIGN_OR_RETURN(config.name,
                       json_member_string(document, "name", "arch"));

  LRT_ASSIGN_OR_RETURN(const JsonValue* hosts,
                       json_member(document, "hosts", "arch"));
  if (!hosts->is_array()) {
    return InvalidArgumentError("arch.hosts must be an array");
  }
  for (std::size_t i = 0; i < hosts->array.size(); ++i) {
    const std::string path = "arch.hosts[" + std::to_string(i) + "]";
    const JsonValue& entry = hosts->array[i];
    Host host;
    LRT_ASSIGN_OR_RETURN(host.name, json_member_string(entry, "name", path));
    LRT_ASSIGN_OR_RETURN(host.reliability,
                         json_member_double(entry, "reliability", path));
    config.hosts.push_back(std::move(host));
  }

  LRT_ASSIGN_OR_RETURN(const JsonValue* sensors,
                       json_member(document, "sensors", "arch"));
  if (!sensors->is_array()) {
    return InvalidArgumentError("arch.sensors must be an array");
  }
  for (std::size_t i = 0; i < sensors->array.size(); ++i) {
    const std::string path = "arch.sensors[" + std::to_string(i) + "]";
    const JsonValue& entry = sensors->array[i];
    Sensor sensor;
    LRT_ASSIGN_OR_RETURN(sensor.name,
                         json_member_string(entry, "name", path));
    LRT_ASSIGN_OR_RETURN(sensor.reliability,
                         json_member_double(entry, "reliability", path));
    config.sensors.push_back(std::move(sensor));
  }

  LRT_ASSIGN_OR_RETURN(const JsonValue* metrics,
                       json_member(document, "metrics", "arch"));
  if (!metrics->is_array()) {
    return InvalidArgumentError("arch.metrics must be an array");
  }
  for (std::size_t i = 0; i < metrics->array.size(); ++i) {
    const std::string path = "arch.metrics[" + std::to_string(i) + "]";
    const JsonValue& entry = metrics->array[i];
    ArchitectureConfig::MetricEntry metric;
    LRT_ASSIGN_OR_RETURN(metric.task,
                         json_member_string(entry, "task", path));
    LRT_ASSIGN_OR_RETURN(metric.host,
                         json_member_string(entry, "host", path));
    LRT_ASSIGN_OR_RETURN(metric.wcet, json_member_int(entry, "wcet", path));
    LRT_ASSIGN_OR_RETURN(metric.wctt, json_member_int(entry, "wctt", path));
    config.metrics.push_back(std::move(metric));
  }

  LRT_ASSIGN_OR_RETURN(
      config.default_wcet,
      optional_time_from_json(document, "default_wcet", "arch"));
  LRT_ASSIGN_OR_RETURN(
      config.default_wctt,
      optional_time_from_json(document, "default_wctt", "arch"));
  return config;
}

Result<ArchitectureConfig> architecture_config_from_json(
    std::string_view text) {
  LRT_ASSIGN_OR_RETURN(const JsonValue document, parse_json(text));
  return architecture_config_from_json(document);
}

}  // namespace lrt::arch
