#include "arch/architecture.h"

#include <algorithm>
#include <tuple>

#include "support/math_util.h"
#include "support/strings.h"

namespace lrt::arch {

Result<Architecture> Architecture::Build(ArchitectureConfig config) {
  Architecture arch;
  arch.name_ = std::move(config.name);
  arch.default_wcet_ = config.default_wcet;
  arch.default_wctt_ = config.default_wctt;

  for (auto& host : config.hosts) {
    if (!is_identifier(host.name)) {
      return InvalidArgumentError("host name '" + host.name +
                                  "' is not a valid identifier");
    }
    if (!is_reliability(host.reliability)) {
      return InvalidArgumentError("host '" + host.name +
                                  "' reliability outside (0,1]: " +
                                  format_double(host.reliability));
    }
    const auto id = static_cast<HostId>(arch.hosts_.size());
    if (!arch.host_index_.emplace(host.name, id).second) {
      return AlreadyExistsError("duplicate host '" + host.name + "'");
    }
    arch.hosts_.push_back(std::move(host));
  }
  if (arch.hosts_.empty()) {
    return InvalidArgumentError("architecture '" + arch.name_ +
                                "' declares no hosts");
  }

  for (auto& sensor : config.sensors) {
    if (!is_identifier(sensor.name)) {
      return InvalidArgumentError("sensor name '" + sensor.name +
                                  "' is not a valid identifier");
    }
    if (!is_reliability(sensor.reliability)) {
      return InvalidArgumentError("sensor '" + sensor.name +
                                  "' reliability outside (0,1]: " +
                                  format_double(sensor.reliability));
    }
    const auto id = static_cast<SensorId>(arch.sensors_.size());
    if (!arch.sensor_index_.emplace(sensor.name, id).second) {
      return AlreadyExistsError("duplicate sensor '" + sensor.name + "'");
    }
    arch.sensors_.push_back(std::move(sensor));
  }

  for (const auto& entry : config.metrics) {
    const auto host_it = arch.host_index_.find(entry.host);
    if (host_it == arch.host_index_.end()) {
      return NotFoundError("metric entry for task '" + entry.task +
                           "' references unknown host '" + entry.host + "'");
    }
    if (entry.wcet <= 0 || entry.wctt <= 0) {
      return InvalidArgumentError("metric entry for task '" + entry.task +
                                  "' on host '" + entry.host +
                                  "' must have positive WCET and WCTT");
    }
    auto& row = arch.metrics_[entry.task];
    if (row.empty()) {
      row.assign(arch.hosts_.size(), {-1, -1});
    }
    auto& cell = row[static_cast<std::size_t>(host_it->second)];
    if (cell.first != -1) {
      return AlreadyExistsError("duplicate metric entry for task '" +
                                entry.task + "' on host '" + entry.host +
                                "'");
    }
    cell = {entry.wcet, entry.wctt};
  }

  return arch;
}

std::optional<HostId> Architecture::find_host(std::string_view name) const {
  const auto it = host_index_.find(std::string(name));
  if (it == host_index_.end()) return std::nullopt;
  return it->second;
}

std::optional<SensorId> Architecture::find_sensor(
    std::string_view name) const {
  const auto it = sensor_index_.find(std::string(name));
  if (it == sensor_index_.end()) return std::nullopt;
  return it->second;
}

Result<Time> Architecture::metric(std::string_view task, HostId id,
                                  bool want_wcet) const {
  const auto it = metrics_.find(std::string(task));
  if (it != metrics_.end()) {
    const auto& cell = it->second[static_cast<std::size_t>(id)];
    const Time value = want_wcet ? cell.first : cell.second;
    if (value != -1) return value;
  }
  const std::optional<Time>& fallback =
      want_wcet ? default_wcet_ : default_wctt_;
  if (fallback.has_value()) return *fallback;
  return NotFoundError(std::string("no ") + (want_wcet ? "WCET" : "WCTT") +
                       " for task '" + std::string(task) + "' on host '" +
                       host(id).name + "' and no default configured");
}

Result<Time> Architecture::wcet(std::string_view task, HostId id) const {
  return metric(task, id, /*want_wcet=*/true);
}

Result<Time> Architecture::wctt(std::string_view task, HostId id) const {
  return metric(task, id, /*want_wcet=*/false);
}

ArchitectureConfig Architecture::to_config() const {
  ArchitectureConfig config;
  config.name = name_;
  config.hosts = hosts_;
  config.sensors = sensors_;
  for (const auto& [task, row] : metrics_) {
    for (std::size_t h = 0; h < row.size(); ++h) {
      if (row[h].first == -1) continue;
      config.metrics.push_back(
          {task, hosts_[h].name, row[h].first, row[h].second});
    }
  }
  std::sort(config.metrics.begin(), config.metrics.end(),
            [](const ArchitectureConfig::MetricEntry& a,
               const ArchitectureConfig::MetricEntry& b) {
              return std::tie(a.task, a.host) < std::tie(b.task, b.host);
            });
  config.default_wcet = default_wcet_;
  config.default_wctt = default_wctt_;
  return config;
}

}  // namespace lrt::arch
