// Canonical JSON codec for the architecture config vocabulary (lrtd
// wire schema, DESIGN.md §5k). to_json fixes the field order and sorts
// the map-like WCET/WCTT metric entries by (task, host), so two configs
// that Build into the same architecture serialize to the same bytes —
// the property lrt::Workload::fingerprint() relies on. from_json
// accepts exactly what to_json emits, gated by `"schema": 1`.
#ifndef LRT_ARCH_ARCH_JSON_H_
#define LRT_ARCH_ARCH_JSON_H_

#include <string>
#include <string_view>

#include "arch/architecture.h"
#include "support/json.h"
#include "support/status.h"

namespace lrt::arch {

/// Canonical document: {"schema": 1, "name", "hosts": [...],
/// "sensors": [...], "metrics": [... sorted by (task, host)],
/// "default_wcet": n|null, "default_wctt": n|null}.
[[nodiscard]] std::string to_json(const ArchitectureConfig& config);
/// Same document written into an enclosing writer (for frame payloads).
void write_json(const ArchitectureConfig& config, JsonWriter& json);

[[nodiscard]] Result<ArchitectureConfig> architecture_config_from_json(
    const JsonValue& document);
[[nodiscard]] Result<ArchitectureConfig> architecture_config_from_json(
    std::string_view text);

}  // namespace lrt::arch

#endif  // LRT_ARCH_ARCH_JSON_H_
