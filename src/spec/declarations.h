// Declaration-level types of the specification model (paper Section 2).
//
// A specification S = (tset, cset) consists of communicator declarations
// (c, type_c, init_c, pi_c, mu_c) and task declarations
// (t, ins_t, outs_t, fn_t, model_t, def_t). These structs are the exact
// counterparts; Specification (specification.h) resolves and validates them.
#ifndef LRT_SPEC_DECLARATIONS_H_
#define LRT_SPEC_DECLARATIONS_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "spec/value.h"

namespace lrt::spec {

/// Index of a communicator within its Specification.
using CommId = std::int32_t;
/// Index of a task within its Specification.
using TaskId = std::int32_t;

/// Time in ticks. A tick is the harmonic base of all communicator periods
/// ("time instants ... denote the harmonic fraction of all communicator
/// periods"); in the 3TS example one tick is one millisecond.
using Time = std::int64_t;

/// The paper's input failure models (model_t in {1, 2, 3}).
enum class FailureModel : int {
  /// Model 1: if any input is unreliable, the task invocation fails.
  kSeries = 1,
  /// Model 2: unreliable inputs are replaced by defaults; the invocation
  /// fails only when *all* inputs are unreliable.
  kParallel = 2,
  /// Model 3: every unreliable input is replaced by its default; the
  /// invocation executes even if all inputs are unreliable.
  kIndependent = 3,
};

std::string_view to_string(FailureModel model);

/// A communicator instance reference (c, i): communicator `comm` at the
/// time instant `instance * period(comm)` within a specification period.
struct PortRef {
  CommId comm = -1;
  std::int64_t instance = 0;

  friend bool operator==(const PortRef&, const PortRef&) = default;
  friend auto operator<=>(const PortRef&, const PortRef&) = default;
};

/// Communicator declaration (c, type_c, init_c, pi_c, mu_c).
struct Communicator {
  std::string name;
  ValueType type = ValueType::kReal;
  Value init;          ///< value of instance 0 (must conform to `type`)
  Time period = 1;     ///< accessibility period pi_c > 0, in ticks
  double lrc = 1.0;    ///< logical reliability constraint mu_c in (0, 1]
};

/// The function computed by a task: outputs from (failure-model-processed)
/// inputs. Inputs arrive in declaration order and are never bottom — the
/// runtime applies the failure model before invoking the function. The
/// result must have exactly outs_t entries, conforming to the declared
/// output communicator types.
using TaskFunction =
    std::function<std::vector<Value>(std::span<const Value>)>;

/// Task declaration (t, ins_t, outs_t, fn_t, model_t, def_t).
struct Task {
  std::string name;
  std::vector<PortRef> inputs;    ///< ins_t, nonempty
  std::vector<PortRef> outputs;   ///< outs_t, nonempty
  TaskFunction function;          ///< fn_t (may be empty for analysis-only)
  FailureModel model = FailureModel::kSeries;
  /// def_t: default values aligned with `inputs`; consulted by models 2/3.
  std::vector<Value> defaults;
};

}  // namespace lrt::spec

#endif  // LRT_SPEC_DECLARATIONS_H_
