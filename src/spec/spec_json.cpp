#include "spec/spec_json.h"

#include <unordered_map>
#include <utility>

namespace lrt::spec {

namespace {

Result<ValueType> value_type_from_name(std::string_view name,
                                       std::string_view where) {
  if (name == "real") return ValueType::kReal;
  if (name == "int") return ValueType::kInt;
  if (name == "bool") return ValueType::kBool;
  return InvalidArgumentError(std::string(where) + " has unknown type '" +
                              std::string(name) + "'");
}

Result<FailureModel> failure_model_from_name(std::string_view name,
                                             std::string_view where) {
  if (name == "series") return FailureModel::kSeries;
  if (name == "parallel") return FailureModel::kParallel;
  if (name == "independent") return FailureModel::kIndependent;
  return InvalidArgumentError(std::string(where) +
                              " has unknown failure model '" +
                              std::string(name) + "'");
}

void write_ports(
    const std::vector<std::pair<std::string, std::int64_t>>& ports,
    JsonWriter& json) {
  json.begin_array();
  for (const auto& [comm, instance] : ports) {
    json.begin_object();
    json.key("comm");
    json.value(comm);
    json.key("instance");
    json.value(instance);
    json.end_object();
  }
  json.end_array();
}

Result<std::vector<std::pair<std::string, std::int64_t>>> ports_from_json(
    const JsonValue& document, std::string_view where) {
  if (!document.is_array()) {
    return InvalidArgumentError(std::string(where) + " must be an array");
  }
  std::vector<std::pair<std::string, std::int64_t>> ports;
  ports.reserve(document.array.size());
  for (std::size_t i = 0; i < document.array.size(); ++i) {
    const std::string path =
        std::string(where) + "[" + std::to_string(i) + "]";
    const JsonValue& port = document.array[i];
    LRT_ASSIGN_OR_RETURN(std::string comm,
                         json_member_string(port, "comm", path));
    LRT_ASSIGN_OR_RETURN(const std::int64_t instance,
                         json_member_int(port, "instance", path));
    ports.emplace_back(std::move(comm), instance);
  }
  return ports;
}

}  // namespace

void write_json(const Value& value, JsonWriter& json) {
  if (value.is_bottom()) {
    json.null();
    return;
  }
  json.begin_object();
  if (value.is_real()) {
    json.key("real");
    json.value(value.as_real());
  } else if (value.is_int()) {
    json.key("int");
    json.value(value.as_int());
  } else {
    json.key("bool");
    json.value(value.as_bool());
  }
  json.end_object();
}

Result<Value> value_from_json(const JsonValue& document,
                              std::string_view where) {
  if (document.kind == JsonValue::Kind::kNull) return Value::bottom();
  if (!document.is_object() || document.object.size() != 1) {
    return InvalidArgumentError(
        std::string(where) +
        " must be null or a single-member {real|int|bool: ...} object");
  }
  const auto& [key, payload] = document.object.front();
  if (key == "real") {
    if (!payload.is_number()) {
      return InvalidArgumentError(std::string(where) +
                                  ".real must be a number");
    }
    return Value::real(payload.number);
  }
  if (key == "int") {
    LRT_ASSIGN_OR_RETURN(const std::int64_t number,
                         json_to_int(payload, std::string(where) + ".int"));
    return Value::integer(number);
  }
  if (key == "bool") {
    if (payload.kind != JsonValue::Kind::kBool) {
      return InvalidArgumentError(std::string(where) +
                                  ".bool must be a boolean");
    }
    return Value::boolean(payload.boolean);
  }
  return InvalidArgumentError(std::string(where) +
                              " has unknown value kind '" + key + "'");
}

void write_json(const SpecificationConfig& config, JsonWriter& json) {
  // Build-time defaults materialization, mirrored here so a config with
  // empty defaults and its built round-trip serialize identically.
  std::unordered_map<std::string_view, ValueType> comm_types;
  for (const Communicator& comm : config.communicators) {
    comm_types.emplace(comm.name, comm.type);
  }

  json.begin_object();
  json.key("schema");
  json.value(kConfigSchemaVersion);
  json.key("name");
  json.value(config.name);
  json.key("communicators");
  json.begin_array();
  for (const Communicator& comm : config.communicators) {
    json.begin_object();
    json.key("name");
    json.value(comm.name);
    json.key("type");
    json.value(to_string(comm.type));
    json.key("init");
    write_json(comm.init, json);
    json.key("period");
    json.value(comm.period);
    json.key("lrc");
    json.value(comm.lrc);
    json.end_object();
  }
  json.end_array();
  json.key("tasks");
  json.begin_array();
  for (const SpecificationConfig::TaskConfig& task : config.tasks) {
    json.begin_object();
    json.key("name");
    json.value(task.name);
    json.key("model");
    json.value(to_string(task.model));
    json.key("inputs");
    write_ports(task.inputs, json);
    json.key("outputs");
    write_ports(task.outputs, json);
    json.key("defaults");
    json.begin_array();
    if (task.defaults.empty()) {
      for (const auto& [comm, instance] : task.inputs) {
        const auto type = comm_types.find(comm);
        if (type == comm_types.end()) {
          json.null();  // unresolvable input; Build will reject anyway
        } else {
          write_json(zero_value(type->second), json);
        }
      }
    } else {
      for (const Value& value : task.defaults) write_json(value, json);
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

std::string to_json(const SpecificationConfig& config) {
  JsonWriter json;
  write_json(config, json);
  return std::move(json).str();
}

Result<SpecificationConfig> specification_config_from_json(
    const JsonValue& document) {
  LRT_RETURN_IF_ERROR(
      json_check_schema(document, kConfigSchemaVersion, "spec"));
  SpecificationConfig config;
  LRT_ASSIGN_OR_RETURN(config.name,
                       json_member_string(document, "name", "spec"));

  LRT_ASSIGN_OR_RETURN(const JsonValue* comms,
                       json_member(document, "communicators", "spec"));
  if (!comms->is_array()) {
    return InvalidArgumentError("spec.communicators must be an array");
  }
  for (std::size_t i = 0; i < comms->array.size(); ++i) {
    const std::string path =
        "spec.communicators[" + std::to_string(i) + "]";
    const JsonValue& entry = comms->array[i];
    Communicator comm;
    LRT_ASSIGN_OR_RETURN(comm.name, json_member_string(entry, "name", path));
    LRT_ASSIGN_OR_RETURN(const std::string type_name,
                         json_member_string(entry, "type", path));
    LRT_ASSIGN_OR_RETURN(comm.type,
                         value_type_from_name(type_name, path + ".type"));
    LRT_ASSIGN_OR_RETURN(const JsonValue* init,
                         json_member(entry, "init", path));
    LRT_ASSIGN_OR_RETURN(comm.init,
                         value_from_json(*init, path + ".init"));
    LRT_ASSIGN_OR_RETURN(comm.period,
                         json_member_int(entry, "period", path));
    LRT_ASSIGN_OR_RETURN(comm.lrc, json_member_double(entry, "lrc", path));
    config.communicators.push_back(std::move(comm));
  }

  LRT_ASSIGN_OR_RETURN(const JsonValue* tasks,
                       json_member(document, "tasks", "spec"));
  if (!tasks->is_array()) {
    return InvalidArgumentError("spec.tasks must be an array");
  }
  for (std::size_t i = 0; i < tasks->array.size(); ++i) {
    const std::string path = "spec.tasks[" + std::to_string(i) + "]";
    const JsonValue& entry = tasks->array[i];
    SpecificationConfig::TaskConfig task;
    LRT_ASSIGN_OR_RETURN(task.name, json_member_string(entry, "name", path));
    LRT_ASSIGN_OR_RETURN(const std::string model_name,
                         json_member_string(entry, "model", path));
    LRT_ASSIGN_OR_RETURN(
        task.model, failure_model_from_name(model_name, path + ".model"));
    LRT_ASSIGN_OR_RETURN(const JsonValue* inputs,
                         json_member(entry, "inputs", path));
    LRT_ASSIGN_OR_RETURN(task.inputs,
                         ports_from_json(*inputs, path + ".inputs"));
    LRT_ASSIGN_OR_RETURN(const JsonValue* outputs,
                         json_member(entry, "outputs", path));
    LRT_ASSIGN_OR_RETURN(task.outputs,
                         ports_from_json(*outputs, path + ".outputs"));
    LRT_ASSIGN_OR_RETURN(const JsonValue* defaults,
                         json_member(entry, "defaults", path));
    if (!defaults->is_array()) {
      return InvalidArgumentError(path + ".defaults must be an array");
    }
    for (std::size_t d = 0; d < defaults->array.size(); ++d) {
      LRT_ASSIGN_OR_RETURN(
          Value value,
          value_from_json(defaults->array[d], path + ".defaults[" +
                                                  std::to_string(d) + "]"));
      task.defaults.push_back(std::move(value));
    }
    config.tasks.push_back(std::move(task));
  }
  return config;
}

Result<SpecificationConfig> specification_config_from_json(
    std::string_view text) {
  LRT_ASSIGN_OR_RETURN(const JsonValue document, parse_json(text));
  return specification_config_from_json(document);
}

}  // namespace lrt::spec
